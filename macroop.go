// Package macroop is a cycle-level reproduction of "Macro-op Scheduling:
// Relaxing Scheduling Loop Constraints" (Kim & Lipasti, MICRO-36, 2003).
//
// It provides, from scratch and on the standard library only:
//
//   - a 13-stage, 4-wide out-of-order processor timing model with
//     speculative scheduling and selective replay (the paper's base
//     machine, Table 1);
//   - five instruction schedulers: base (atomic-equivalent), pipelined
//     2-cycle, macro-op scheduling on CAM-2src and wired-OR wakeup
//     arrays, and select-free scheduling (squash-dep and scoreboard);
//   - macro-op detection (dependence matrix, cycle heuristic, MOP
//     pointers, last-arriving filter) and formation (pending-bit
//     insertion, dependence translation);
//   - branch prediction (combined bimodal/gshare + BTB + RAS) and a
//     three-level memory hierarchy;
//   - twelve synthetic SPEC CINT2000-like benchmarks calibrated to the
//     characterization the paper reports;
//   - an experiment harness regenerating every table and figure of the
//     paper's evaluation.
//
// # Quick start
//
//	prog, _ := macroop.GenerateBenchmark("gzip")
//	res, _ := macroop.Simulate(macroop.DefaultMachine().WithSched(macroop.SchedMOP), prog, 1_000_000)
//	fmt.Println(res)
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package macroop

import (
	"context"

	"macroop/internal/checker"
	"macroop/internal/config"
	"macroop/internal/core"
	"macroop/internal/experiments"
	"macroop/internal/functional"
	"macroop/internal/isa"
	"macroop/internal/mop"
	"macroop/internal/program"
	"macroop/internal/simerr"
	"macroop/internal/stats"
	"macroop/internal/workload"
)

// Typed simulation failures. Every error a Simulate* function returns
// from a running simulation matches exactly one of these sentinels under
// errors.Is, so callers can distinguish a stuck machine from a failed
// differential check from their own cancellation.
var (
	// ErrDeadlock: the forward-progress watchdog saw no commit for a full
	// window (Machine.WatchdogCycles), or the cycle budget was exhausted.
	ErrDeadlock = simerr.ErrDeadlock
	// ErrLivelock: one scheduler entry replayed more times than
	// Machine.ReplayStormLimit allows.
	ErrLivelock = simerr.ErrLivelock
	// ErrCheckFailed: the lockstep differential oracle detected a
	// divergence or pipeline invariant violation (SimulateChecked).
	ErrCheckFailed = simerr.ErrCheckFailed
	// ErrCancelled: the caller's context expired (SimulateContext).
	ErrCancelled = simerr.ErrCancelled
	// ErrInternal: a simulator bug, recovered and reported with a repro
	// fingerprint instead of crashing the process.
	ErrInternal = simerr.ErrInternal
)

// ErrorDump returns the diagnostic state dump attached to a simulation
// error (pipeline occupancy, ROB head age, active scheduler entries for
// ErrDeadlock/ErrLivelock), or "" if the error carries none.
func ErrorDump(err error) string { return simerr.DumpOf(err) }

// Machine is the full machine configuration (Table 1 of the paper).
type Machine = config.Machine

// SchedModel selects the scheduling logic variant.
type SchedModel = config.SchedModel

// Scheduler models (Section 6.2 of the paper).
const (
	SchedBase                 = config.SchedBase
	SchedTwoCycle             = config.SchedTwoCycle
	SchedMOP                  = config.SchedMOP
	SchedSelectFreeSquashDep  = config.SchedSelectFreeSquashDep
	SchedSelectFreeScoreboard = config.SchedSelectFreeScoreboard
)

// WakeupStyle selects the wakeup array style for macro-op scheduling.
type WakeupStyle = config.WakeupStyle

// Wakeup styles (Section 2.2).
const (
	WakeupCAM2Src = config.WakeupCAM2Src
	WakeupWiredOR = config.WakeupWiredOR
)

// MOPConfig parameterizes macro-op detection and formation.
type MOPConfig = config.MOPConfig

// Program is a static program plus its initial memory image.
type Program = program.Program

// ProgramBuilder constructs custom programs with labels and branches.
type ProgramBuilder = program.Builder

// Result is one simulation's output.
type Result = core.Result

// Experiments drives the paper-reproduction harness.
type Experiments = experiments.Runner

// Table is the text-table type the harness reports with.
type Table = stats.Table

// BenchmarkProfile parameterizes one synthetic benchmark.
type BenchmarkProfile = workload.Profile

// DynInst is one dynamically executed instruction (for characterization
// sinks and custom analyses).
type DynInst = functional.DynInst

// EdgeDistance accumulates the Figure 6 characterization.
type EdgeDistance = mop.EdgeDistance

// Grouping accumulates the Figure 7 characterization.
type Grouping = mop.Grouping

// DefaultMachine returns Table 1's machine (32-entry issue queue, base
// scheduler).
func DefaultMachine() Machine { return config.Default() }

// UnrestrictedMachine returns the machine with an unrestricted issue
// queue (ROB-bounded window).
func UnrestrictedMachine() Machine { return config.Unrestricted() }

// DefaultMOPConfig returns the paper's main macro-op configuration:
// wired-OR wakeup, 2x MOPs over an 8-instruction scope, 1 extra formation
// stage, 3-cycle detection delay, independent MOPs, last-arriving filter.
func DefaultMOPConfig() MOPConfig { return config.DefaultMOP() }

// Benchmarks returns the 12 benchmark names in the paper's order.
func Benchmarks() []string { return workload.Names() }

// BenchmarkProfiles returns the 12 calibrated benchmark profiles.
func BenchmarkProfiles() []BenchmarkProfile { return workload.Profiles() }

// GenerateBenchmark synthesizes the named SPEC-like benchmark program.
func GenerateBenchmark(name string) (*Program, error) {
	p, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	return workload.Generate(p)
}

// GenerateProfile synthesizes a program from a custom profile.
func GenerateProfile(p BenchmarkProfile) (*Program, error) {
	return workload.Generate(p)
}

// NewProgram starts a custom program builder.
func NewProgram(name string) *ProgramBuilder { return program.NewBuilder(name) }

// Assemble parses assembly text into a program (see internal/program's
// assembler syntax: mnemonics, labels, @N targets, st pseudo-op, .mem).
func Assemble(name, text string) (*Program, error) { return program.Assemble(name, text) }

// Timeline is a pipeline tracer recording fetch/insert/issue/commit
// cycles per instruction; attach with SimulateTraced.
type Timeline = core.Timeline

// NewTimeline returns a Timeline recording the first limit instructions.
func NewTimeline(limit int) *Timeline { return core.NewTimeline(limit) }

// SimulateTraced runs like Simulate with a pipeline tracer attached.
func SimulateTraced(m Machine, p *Program, maxInsts int64, tl *Timeline) (*Result, error) {
	return SimulateTracedContext(context.Background(), m, p, maxInsts, tl)
}

// SimulateTracedContext is SimulateTraced honouring ctx cancellation.
func SimulateTracedContext(ctx context.Context, m Machine, p *Program, maxInsts int64, tl *Timeline) (*Result, error) {
	c, err := core.New(m, p)
	if err != nil {
		return nil, err
	}
	c.SetTracer(tl)
	return c.RunContext(ctx, maxInsts)
}

// Simulate runs the program on the machine until maxInsts instructions
// commit (or the program halts) and returns timing results.
func Simulate(m Machine, p *Program, maxInsts int64) (*Result, error) {
	return SimulateContext(context.Background(), m, p, maxInsts)
}

// SimulateContext is Simulate honouring ctx: cancellation or deadline
// expiry stops the simulation within one poll window (a thousand or so
// simulated cycles) with an error matching simulation-cancelled. The run
// is also protected by the machine's forward-progress watchdog
// (Machine.WatchdogCycles; 0 selects the default window, negative
// disables), which aborts a stuck pipeline with a diagnostic deadlock
// error instead of spinning forever.
func SimulateContext(ctx context.Context, m Machine, p *Program, maxInsts int64) (*Result, error) {
	c, err := core.New(m, p)
	if err != nil {
		return nil, err
	}
	return c.RunContext(ctx, maxInsts)
}

// CheckSummary is the outcome of a checked simulation: how many commits
// the lockstep differential oracle cross-checked and the architectural
// checksum over them (identical across scheduler configurations for the
// same program and instruction budget).
type CheckSummary = checker.Summary

// SimulateChecked runs like Simulate with a lockstep differential oracle
// attached: at every commit, the timing core's architectural work is
// cross-checked against an independent functional execution, and pipeline
// invariants (commit order, replay resolution, MOP atomicity, issue queue
// occupancy) are verified. Any divergence aborts the run with an error.
func SimulateChecked(m Machine, p *Program, maxInsts int64) (*Result, CheckSummary, error) {
	return checker.CheckedRun(m, p, maxInsts, maxInsts)
}

// SimulateCheckedContext is SimulateChecked honouring ctx cancellation.
func SimulateCheckedContext(ctx context.Context, m Machine, p *Program, maxInsts int64) (*Result, CheckSummary, error) {
	return checker.CheckedRunContext(ctx, m, p, maxInsts, maxInsts)
}

// Characterize streams up to maxInsts committed instructions of the
// program through sink (machine-independent analyses, Figures 6 and 7).
func Characterize(p *Program, maxInsts int64, sink func(*DynInst)) error {
	e := functional.NewExecutor(p)
	var d functional.DynInst
	for n := int64(0); n < maxInsts; n++ {
		if err := e.Step(&d); err != nil {
			return nil // halted
		}
		sink(&d)
	}
	return nil
}

// NewEdgeDistance returns a Figure 6 accumulator.
func NewEdgeDistance() *EdgeDistance { return mop.NewEdgeDistance() }

// NewGrouping returns a Figure 7 accumulator for the given MOP size.
func NewGrouping(maxSize int) *Grouping { return mop.NewGrouping(maxSize) }

// NewExperiments returns the paper-reproduction harness with the given
// per-simulation instruction budget.
func NewExperiments(maxInsts int64) *Experiments {
	return experiments.NewRunner(maxInsts)
}

// MachineTable renders Table 1.
func MachineTable() *Table { return experiments.Table1() }

// Reg is an architectural register identifier for the builder DSL.
type Reg = isa.Reg

// Op is an instruction opcode for the builder DSL.
type Op = isa.Op

// Instruction is one static instruction for the builder DSL.
type Instruction = isa.Instruction

// R0 is the hardwired zero register.
const R0 = isa.R0

// Opcodes for the builder DSL (single-cycle ALU ops are MOP candidates).
const (
	OpAdd  = isa.ADD
	OpAddI = isa.ADDI
	OpSub  = isa.SUB
	OpAnd  = isa.AND
	OpOr   = isa.OR
	OpXor  = isa.XOR
	OpSll  = isa.SLL
	OpSrl  = isa.SRL
	OpSlt  = isa.SLT
	OpSeq  = isa.SEQ
	OpMovI = isa.MOVI
	OpMul  = isa.MUL
	OpDiv  = isa.DIV
	OpLoad = isa.LD
	OpBeq  = isa.BEQ
	OpBne  = isa.BNE
	OpBlt  = isa.BLT
	OpBge  = isa.BGE
)
