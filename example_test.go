package macroop_test

import (
	"fmt"

	"macroop"
)

// ExampleSimulate runs the paper's worked Figure 5 snippet under base and
// macro-op scheduling and reports the fused fraction.
func ExampleSimulate() {
	prog, err := macroop.Assemble("fig5", `
	        movi r7, 100000
	top:    addi r1, r1, 1      ; 1: add r1
	        ld   r4, 0(r1)      ; 2: lw r4, 0(r1)
	        sub  r5, r1, r1     ; 3: sub r5 <- r1
	        beq  r5, r0, top    ; 4: bez r5 (taken while r5 == 0)
	        halt
	`)
	if err != nil {
		panic(err)
	}
	mop, err := macroop.Simulate(macroop.DefaultMachine().WithMOP(macroop.DefaultMOPConfig()), prog, 100_000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("about half the instructions fused: %v\n", mop.GroupedFrac() > 0.4)
	// Output:
	// about half the instructions fused: true
}

// ExampleCharacterize reproduces a slice of the paper's Figure 6 analysis
// for one benchmark.
func ExampleCharacterize() {
	prog, _ := macroop.GenerateBenchmark("gap")
	acc := macroop.NewEdgeDistance()
	_ = macroop.Characterize(prog, 100_000, acc.Push)
	acc.Flush()
	withTail := acc.Dist1to3 + acc.Dist4to7 + acc.Dist8plus
	within8 := float64(acc.Dist1to3+acc.Dist4to7) / float64(withTail)
	fmt.Printf("gap pairs within 8 instructions: %v\n", within8 > 0.85)
	// Output:
	// gap pairs within 8 instructions: true
}

// ExampleNewTimeline shows pipeline tracing of a dependent pair.
func ExampleNewTimeline() {
	prog, _ := macroop.Assemble("pair", `
	        movi r7, 1000
	top:    addi r1, r1, 1
	        add  r2, r1, r1
	        addi r7, r7, -1
	        bne  r7, r0, top
	        halt
	`)
	tl := macroop.NewTimeline(50)
	mc := macroop.DefaultMOPConfig()
	mc.ExtraFormationStages = 0
	res, _ := macroop.SimulateTraced(macroop.UnrestrictedMachine().WithMOP(mc), prog, 2_000, tl)
	// In steady state the fused pair issues back to back: the add (tail)
	// is sequenced one cycle after its addi (head).
	head, tail := tl.IssueCycle(45), tl.IssueCycle(46)
	fmt.Printf("fused pair spacing: %d cycle(s), IPC > 1: %v\n", tail-head, res.IPC > 1)
	// Output:
	// fused pair spacing: 1 cycle(s), IPC > 1: true
}
