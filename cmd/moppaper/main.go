// Command moppaper regenerates every table and figure of the paper's
// evaluation, in order, printing each as a text table. This is the
// one-shot reproduction harness behind EXPERIMENTS.md.
//
// Usage:
//
//	moppaper -insts 1000000            # full suite (takes a few minutes)
//	moppaper -only fig14,fig16
//	moppaper -journal paper.journal    # crash-safe: re-run resumes the sweep
//	moppaper -journal paper.journal -from-journal   # render without simulating
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"macroop/internal/experiments"
	"macroop/internal/journal"
	"macroop/internal/stats"
)

func main() {
	var (
		insts   = flag.Int64("insts", 1_000_000, "committed instructions per simulation")
		only    = flag.String("only", "", "comma-separated subset: table1,table2,fig6,fig7,fig13,fig14,fig15,fig16,delay,lastarrive,indep,mopsize,heuristic,qsweep,wsweep")
		bench   = flag.String("bench", "", "comma-separated benchmark subset (default: all 12)")
		check   = flag.Bool("check", false, "attach the lockstep differential oracle to every simulation (slower; any divergence fails that cell)")
		timeout = flag.Duration("cell-timeout", 0, "wall-clock limit per simulation cell (0 = none); a timed-out cell renders as zeros and is reported")
		jpath   = flag.String("journal", "", "write-ahead journal: every finished cell is durably recorded as it completes, and a re-run over the same journal skips recorded cells (crash-safe resume)")
		fromJ   = flag.Bool("from-journal", false, "render from the journal without simulating; cells the sweep never completed render as zeros and are reported as missing")
	)
	flag.Parse()

	r := experiments.NewRunner(*insts)
	r.Check = *check
	r.CellTimeout = *timeout
	if *jpath != "" {
		j, err := journal.Open(*jpath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "moppaper: journal: %v\n", err)
			os.Exit(1)
		}
		defer j.Close()
		r.Journal = j
		r.JournalOnly = *fromJ
	} else if *fromJ {
		fmt.Fprintln(os.Stderr, "moppaper: -from-journal requires -journal")
		os.Exit(1)
	}
	if *bench != "" {
		r.Benchmarks = strings.Split(*bench, ",")
	}
	want := map[string]bool{}
	for _, k := range strings.Split(*only, ",") {
		if k = strings.TrimSpace(k); k != "" {
			want[k] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	type exp struct {
		key string
		run func() (*stats.Table, error)
	}
	suite := []exp{
		{"table1", func() (*stats.Table, error) { return experiments.Table1(), nil }},
		{"table2", r.Table2},
		{"fig6", r.Figure6},
		{"fig7", r.Figure7},
		{"fig13", r.Figure13},
		{"fig14", r.Figure14},
		{"fig15", r.Figure15},
		{"fig16", r.Figure16},
		{"delay", r.DetectionDelay},
		{"lastarrive", r.LastArriving},
		{"indep", r.IndependentMOPs},
		{"mopsize", r.MOPSize},
		{"heuristic", r.HeuristicCoverage},
		{"qsweep", func() (*stats.Table, error) { return r.QueueSweep("gap") }},
		{"wsweep", func() (*stats.Table, error) { return r.WidthSweep("gap") }},
	}
	failures := 0
	for _, e := range suite {
		if !sel(e.key) {
			continue
		}
		start := time.Now()
		t, err := e.run()
		if t != nil {
			fmt.Println(t)
			fmt.Printf("(%s in %.1fs)\n\n", e.key, time.Since(start).Seconds())
		}
		if err != nil {
			// Failed cells render as zero rows above; say which and why
			// instead of discarding the experiments that did succeed.
			fmt.Fprintf(os.Stderr, "moppaper: %s: %v\n", e.key, err)
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "moppaper: %d experiment(s) had failures\n", failures)
		os.Exit(1)
	}
}
