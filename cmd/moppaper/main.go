// Command moppaper regenerates every table and figure of the paper's
// evaluation, in order, printing each as a text table. This is the
// one-shot reproduction harness behind EXPERIMENTS.md.
//
// Usage:
//
//	moppaper -insts 1000000            # full suite (takes a few minutes)
//	moppaper -only fig14,fig16
//	moppaper -only gap -bench gzip,mcf,vortex -gap-budget 50000
//	moppaper -journal paper.journal    # crash-safe: re-run resumes the sweep
//	moppaper -journal paper.journal -from-journal   # render without simulating
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"macroop/internal/config"
	"macroop/internal/experiments"
	"macroop/internal/journal"
	"macroop/internal/optsched"
	"macroop/internal/stats"
)

// exp is one registered experiment. The suite slice below is the single
// source of truth: the -only flag's help text and key matching are both
// derived from it, so adding an experiment here is the whole change —
// the flag documentation cannot drift.
type exp struct {
	key string
	run func(r *experiments.Runner) (*stats.Table, error)
}

// Gap knobs (the "gap" experiment only; zero values take the
// optsched defaults: 32-uop windows, 8 windows/bench, 200k nodes).
var (
	gapWindow = flag.Int("gap-window", 0, "gap: uop window size, 4..64 (0 = default 32)")
	gapStride = flag.Int("gap-stride", 0, "gap: start-to-start window distance (0 = window size)")
	gapCount  = flag.Int("gap-max-windows", 0, "gap: windows per benchmark (0 = default 8)")
	gapBudget = flag.Int64("gap-budget", 0, "gap: branch-and-bound node budget per window (0 = default 200000)")
	gapStrict = flag.Bool("gap-strict", true, "gap: fail if any window shows an admissibility violation")
)

var suite = []exp{
	{"table1", func(*experiments.Runner) (*stats.Table, error) { return experiments.Table1(), nil }},
	{"table2", (*experiments.Runner).Table2},
	{"fig6", (*experiments.Runner).Figure6},
	{"fig7", (*experiments.Runner).Figure7},
	{"fig13", (*experiments.Runner).Figure13},
	{"fig14", (*experiments.Runner).Figure14},
	{"fig15", (*experiments.Runner).Figure15},
	{"fig16", (*experiments.Runner).Figure16},
	{"delay", (*experiments.Runner).DetectionDelay},
	{"lastarrive", (*experiments.Runner).LastArriving},
	{"indep", (*experiments.Runner).IndependentMOPs},
	{"mopsize", (*experiments.Runner).MOPSize},
	{"heuristic", (*experiments.Runner).HeuristicCoverage},
	{"qsweep", func(r *experiments.Runner) (*stats.Table, error) { return r.QueueSweep("gap") }},
	{"wsweep", func(r *experiments.Runner) (*stats.Table, error) { return r.WidthSweep("gap") }},
	{"gap", runGapTable},
}

// runGapTable runs the heuristic-vs-optimum oracle over the runner's
// benchmark set on the paper's Table 1 machine and renders the gap
// table. Unlike the simulation experiments it needs no instruction
// budget: the oracle works on extracted instruction windows.
func runGapTable(r *experiments.Runner) (*stats.Table, error) {
	spec := optsched.GapSpec{
		Window:     *gapWindow,
		Stride:     *gapStride,
		MaxWindows: *gapCount,
		NodeBudget: *gapBudget,
	}
	rep, err := r.Gap(context.Background(), nil, config.Default(), spec)
	if err != nil {
		return nil, err
	}
	t := experiments.GapTable(rep)
	if v := rep.Violations(); v > 0 && *gapStrict {
		return t, fmt.Errorf("gap: %d admissibility violation(s) — the oracle exceeded a heuristic", v)
	}
	return t, nil
}

// suiteKeys renders the registered experiment keys for the -only help.
func suiteKeys() string {
	keys := make([]string, len(suite))
	for i, e := range suite {
		keys[i] = e.key
	}
	return strings.Join(keys, ",")
}

func main() {
	var (
		insts   = flag.Int64("insts", 1_000_000, "committed instructions per simulation")
		only    = flag.String("only", "", "comma-separated subset: "+suiteKeys())
		bench   = flag.String("bench", "", "comma-separated benchmark subset (default: all 12)")
		check   = flag.Bool("check", false, "attach the lockstep differential oracle to every simulation (slower; any divergence fails that cell)")
		timeout = flag.Duration("cell-timeout", 0, "wall-clock limit per simulation cell (0 = none); a timed-out cell renders as zeros and is reported")
		jpath   = flag.String("journal", "", "write-ahead journal: every finished cell is durably recorded as it completes, and a re-run over the same journal skips recorded cells (crash-safe resume)")
		fromJ   = flag.Bool("from-journal", false, "render from the journal without simulating; cells the sweep never completed render as zeros and are reported as missing")
	)
	flag.Parse()

	r := experiments.NewRunner(*insts)
	r.Check = *check
	r.CellTimeout = *timeout
	if *jpath != "" {
		j, err := journal.Open(*jpath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "moppaper: journal: %v\n", err)
			os.Exit(1)
		}
		defer j.Close()
		r.Journal = j
		r.JournalOnly = *fromJ
	} else if *fromJ {
		fmt.Fprintln(os.Stderr, "moppaper: -from-journal requires -journal")
		os.Exit(1)
	}
	if *bench != "" {
		r.Benchmarks = strings.Split(*bench, ",")
	}
	want := map[string]bool{}
	for _, k := range strings.Split(*only, ",") {
		if k = strings.TrimSpace(k); k != "" {
			if !knownKey(k) {
				fmt.Fprintf(os.Stderr, "moppaper: unknown experiment %q (want one of: %s)\n", k, suiteKeys())
				os.Exit(2)
			}
			want[k] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	failures := 0
	for _, e := range suite {
		if !sel(e.key) {
			continue
		}
		start := time.Now()
		t, err := e.run(r)
		if t != nil {
			fmt.Println(t)
			fmt.Printf("(%s in %.1fs)\n\n", e.key, time.Since(start).Seconds())
		}
		if err != nil {
			// Failed cells render as zero rows above; say which and why
			// instead of discarding the experiments that did succeed.
			fmt.Fprintf(os.Stderr, "moppaper: %s: %v\n", e.key, err)
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "moppaper: %d experiment(s) had failures\n", failures)
		os.Exit(1)
	}
}

// knownKey reports whether k names a registered experiment.
func knownKey(k string) bool {
	for _, e := range suite {
		if e.key == k {
			return true
		}
	}
	return false
}
