// Command mopserve is the long-running simulation service: an HTTP/JSON
// API over the checked simulator with a bounded job queue, a worker pool,
// a content-addressed result cache with singleflight deduplication, live
// Prometheus metrics, and journal-backed graceful drain/resume.
//
// Usage:
//
//	mopserve -addr :8344                       # serve
//	mopserve -addr :8344 -journal serve.journal  # crash-consistent
//	mopserve -workers 8 -queue 512 -cache 8192
//
// Cluster mode shards the cell keyspace by consistent hashing with
// replicated ownership (R=2 by default: the primary executes and
// write-through-replicates each record to its successors), heartbeat
// failure detection, peer cache-fill with replica fallback, work
// stealing, an anti-entropy repair loop, and journal-backed failover
// (see internal/cluster):
//
//	mopserve -addr :8344 -node n1 \
//	  -peers n1=http://h1:8344,n2=http://h2:8344,n3=http://h3:8344 \
//	  -cluster-dir /shared/journals -replication 2
//
// A new node joins a live fleet without restarting anyone:
//
//	mopserve -addr :8345 -node n4 \
//	  -join http://h1:8344 -advertise http://h4:8345 \
//	  -cluster-dir /shared/journals
//
// Endpoints:
//
//	POST /v1/simulate          {"benchmark":"gzip","config":{"sched":"mop"},"max_insts":100000}
//	POST /v1/matrix            {"benchmarks":[...],"configs":{"name":{...}},"wait":true|"stream":true}
//	GET  /v1/jobs, /v1/jobs/{id}, /v1/jobs/{id}/stream
//	GET  /metrics, /healthz, /debug/pprof/
//	GET  /cluster/v1/ring, /cluster/v1/heartbeat   (cluster mode)
//
// SIGTERM/SIGINT begins a graceful drain: admission stops (healthz turns
// 503, submits are rejected with Retry-After), in-flight cells finish and
// are journaled, unfinished batches stay journaled for the next start to
// resume, and the process exits 0. See cmd/mopctl for the client.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"macroop/internal/cluster"
	"macroop/internal/service"
)

// parsePeers decodes "-peers id=url,id=url,..." into a member map.
func parsePeers(spec string) (map[string]string, error) {
	members := map[string]string{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=url)", part)
		}
		if _, dup := members[id]; dup {
			return nil, fmt.Errorf("duplicate -peers entry %q", id)
		}
		members[id] = url
	}
	return members, nil
}

func main() {
	var (
		addr         = flag.String("addr", ":8344", "listen address")
		workers      = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 256, "admission bound: maximum admitted-but-unfinished cells")
		cacheEntries = flag.Int("cache", 4096, "result cache entries")
		cacheBytes   = flag.Int64("cache-bytes", 0, "result cache byte quota (0 = entry bound only)")
		jpath        = flag.String("journal", "", "write-ahead journal path; a restart with the same path warms the cache and resumes unfinished batches")
		defInsts     = flag.Int64("default-insts", 200_000, "per-cell instruction budget when a request leaves max_insts unset")
		maxInsts     = flag.Int64("max-insts", 5_000_000, "per-cell instruction budget cap")
		cellTimeout  = flag.Duration("cell-timeout", 2*time.Minute, "wall-clock bound per cell")
		drainGrace   = flag.Duration("drain-grace", 60*time.Second, "how long a drain waits for in-flight cells before hard-cancelling them")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint attached to queue-full rejections")

		node        = flag.String("node", "", "cluster member ID of this node (enables cluster mode with -peers or -join)")
		peers       = flag.String("peers", "", "full cluster membership as id=url,id=url,... (must include -node)")
		join        = flag.String("join", "", "base URL of any live fleet member to join through (alternative to a full -peers list; requires -advertise)")
		advertise   = flag.String("advertise", "", "base URL peers reach this node at (required with -join; defaults to the -peers entry for -node otherwise)")
		clusterDir  = flag.String("cluster-dir", "", "shared directory of per-node journals (<dir>/<node>.journal); enables journal-backed failover and overrides -journal")
		vnodes      = flag.Int("vnodes", 0, "virtual nodes per member on the hash ring (0 = 64)")
		replication = flag.Int("replication", 2, "replica-set size R: the primary write-through-replicates each record to R-1 successors (1 = single-owner)")
		repairEvery = flag.Duration("repair-interval", 30*time.Second, "anti-entropy period: offer cell digests to replica peers and repair holes (0 disables)")
		hbInterval  = flag.Duration("hb-interval", 500*time.Millisecond, "heartbeat probe period")
		suspectTO   = flag.Duration("suspect-after", 0, "silence before a peer turns suspect (0 = 4x hb-interval)")
		deadTO      = flag.Duration("dead-after", 0, "silence before a peer is declared dead and failover runs (0 = 10x hb-interval)")
		fillTimeout = flag.Duration("fill-timeout", 30*time.Second, "deadline for one peer cache-fill before degrading to local execution")
		stealAt     = flag.Float64("steal-threshold", 0.75, "queue-depth fraction past which own cells are handed to the idlest peer (negative disables)")
	)
	flag.Parse()
	logf := log.New(os.Stderr, "mopserve: ", log.LstdFlags).Printf

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "mopserve: %v\n", err)
		os.Exit(1)
	}

	opts := service.Options{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cacheEntries,
		CacheBytes:   *cacheBytes,
		DefaultInsts: *defInsts,
		MaxInsts:     *maxInsts,
		CellTimeout:  *cellTimeout,
		JournalPath:  *jpath,
		RetryAfter:   *retryAfter,
		Logf:         logf,
	}

	var node1 *cluster.Node
	if *node != "" || *peers != "" || *join != "" {
		members, err := parsePeers(*peers)
		if err != nil {
			fail(err)
		}
		if *join != "" {
			// Join mode: the member map starts as just this node; the
			// handshake with the live fleet fills in the rest.
			if *peers != "" {
				fail(errors.New("-join and -peers are mutually exclusive"))
			}
			if *advertise == "" {
				fail(errors.New("-join requires -advertise (the URL peers reach this node at)"))
			}
			members = map[string]string{*node: *advertise}
		}
		if *clusterDir != "" {
			if err := os.MkdirAll(*clusterDir, 0o755); err != nil {
				fail(err)
			}
			opts.JournalPath = filepath.Join(*clusterDir, *node+".journal")
		}
		node1, err = cluster.New(cluster.Config{
			Self:     *node,
			Members:  members,
			JoinAddr: *join,
			Timings: cluster.Timings{
				HeartbeatInterval: *hbInterval,
				SuspectAfter:      *suspectTO,
				DeadAfter:         *deadTO,
			},
			Replicas:       *vnodes,
			Replication:    *replication,
			RepairInterval: *repairEvery,
			FillTimeout:    *fillTimeout,
			StealThreshold: *stealAt,
			JournalDir:     *clusterDir,
			Logf:           logf,
		})
		if err != nil {
			fail(err)
		}
		opts = node1.ServiceOptions(opts)
	}

	s, err := service.New(opts)
	if err != nil {
		fail(err)
	}
	s.Start()

	handler := s.Handler()
	if node1 != nil {
		node1.Attach(s)
		node1.Start()
		handler = node1.Handler()
		if *join != "" {
			logf("cluster node %s joining fleet via %s (replication %d, journals in %q)", *node, *join, *replication, *clusterDir)
		} else {
			logf("cluster node %s of %d members (replication %d, journals in %q)", *node, len(strings.Split(*peers, ",")), *replication, *clusterDir)
		}
	}

	srv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() {
		logf("listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		logf("%v: draining (in-flight cells finish, queued batches stay journaled)", sig)
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "mopserve: %v\n", err)
		if node1 != nil {
			node1.Close()
		}
		s.Close()
		os.Exit(1)
	}

	// Drain order: stop the cluster prober (no failovers triggered from a
	// half-dead node), stop admitting (Drain flips healthz to 503 and
	// rejects submits), finish in-flight cells, then close the HTTP
	// server so waiting/streaming handlers have seen their jobs reach a
	// terminal state before Shutdown reaps connections.
	if node1 != nil {
		node1.Close()
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		logf("drain: %v (in-flight cells were cancelled; they resume on restart)", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil {
		logf("http shutdown: %v", err)
	}
	if err := s.Close(); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "mopserve: close: %v\n", err)
		os.Exit(1)
	}
	logf("drained cleanly")
}
