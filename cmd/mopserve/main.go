// Command mopserve is the long-running simulation service: an HTTP/JSON
// API over the checked simulator with a bounded job queue, a worker pool,
// a content-addressed result cache with singleflight deduplication, live
// Prometheus metrics, and journal-backed graceful drain/resume.
//
// Usage:
//
//	mopserve -addr :8344                       # serve
//	mopserve -addr :8344 -journal serve.journal  # crash-consistent
//	mopserve -workers 8 -queue 512 -cache 8192
//
// Endpoints:
//
//	POST /v1/simulate          {"benchmark":"gzip","config":{"sched":"mop"},"max_insts":100000}
//	POST /v1/matrix            {"benchmarks":[...],"configs":{"name":{...}},"wait":true|"stream":true}
//	GET  /v1/jobs, /v1/jobs/{id}, /v1/jobs/{id}/stream
//	GET  /metrics, /healthz, /debug/pprof/
//
// SIGTERM/SIGINT begins a graceful drain: admission stops (healthz turns
// 503, submits are rejected with Retry-After), in-flight cells finish and
// are journaled, unfinished batches stay journaled for the next start to
// resume, and the process exits 0. See cmd/mopctl for the client.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"macroop/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", ":8344", "listen address")
		workers      = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 256, "admission bound: maximum admitted-but-unfinished cells")
		cacheEntries = flag.Int("cache", 4096, "result cache entries")
		jpath        = flag.String("journal", "", "write-ahead journal path; a restart with the same path warms the cache and resumes unfinished batches")
		defInsts     = flag.Int64("default-insts", 200_000, "per-cell instruction budget when a request leaves max_insts unset")
		maxInsts     = flag.Int64("max-insts", 5_000_000, "per-cell instruction budget cap")
		cellTimeout  = flag.Duration("cell-timeout", 2*time.Minute, "wall-clock bound per cell")
		drainGrace   = flag.Duration("drain-grace", 60*time.Second, "how long a drain waits for in-flight cells before hard-cancelling them")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint attached to queue-full rejections")
	)
	flag.Parse()
	logf := log.New(os.Stderr, "mopserve: ", log.LstdFlags).Printf

	s, err := service.New(service.Options{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cacheEntries,
		DefaultInsts: *defInsts,
		MaxInsts:     *maxInsts,
		CellTimeout:  *cellTimeout,
		JournalPath:  *jpath,
		RetryAfter:   *retryAfter,
		Logf:         logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mopserve: %v\n", err)
		os.Exit(1)
	}
	s.Start()

	srv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() {
		logf("listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		logf("%v: draining (in-flight cells finish, queued batches stay journaled)", sig)
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "mopserve: %v\n", err)
		s.Close()
		os.Exit(1)
	}

	// Drain order: stop admitting first (Drain flips healthz to 503 and
	// rejects submits), finish in-flight cells, then close the HTTP
	// server so waiting/streaming handlers have seen their jobs reach a
	// terminal state before Shutdown reaps connections.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		logf("drain: %v (in-flight cells were cancelled; they resume on restart)", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil {
		logf("http shutdown: %v", err)
	}
	if err := s.Close(); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "mopserve: close: %v\n", err)
		os.Exit(1)
	}
	logf("drained cleanly")
}
