// Command moptrace records and replays dynamic instruction traces,
// enabling trace-driven simulation (bring your own workloads) and exact
// repeatability across machines.
//
// Record a benchmark's committed stream:
//
//	moptrace -record gap.trace -bench gap -insts 500000
//
// Replay it through any scheduler:
//
//	moptrace -replay gap.trace -sched mop
package main

import (
	"flag"
	"fmt"
	"os"

	"macroop/internal/config"
	"macroop/internal/core"
	"macroop/internal/functional"
	"macroop/internal/tracefile"
	"macroop/internal/workload"
)

func main() {
	var (
		record = flag.String("record", "", "record the benchmark's stream to this file")
		replay = flag.String("replay", "", "replay a trace file through the timing core")
		bench  = flag.String("bench", "gzip", "benchmark to record")
		sched  = flag.String("sched", "base", "scheduler for -replay: base, 2cycle, mop, sf-squash, sf-scoreboard")
		iq     = flag.Int("iq", 32, "issue queue entries (0 = unrestricted)")
		insts  = flag.Int64("insts", 500_000, "instructions to record / replay")
	)
	flag.Parse()

	switch {
	case *record != "":
		prof, err := workload.ByName(*bench)
		if err != nil {
			fatalf("%v", err)
		}
		prog, err := workload.Generate(prof)
		if err != nil {
			fatalf("generate: %v", err)
		}
		f, err := os.Create(*record)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w := tracefile.NewWriter(f)
		e := functional.NewExecutor(prog)
		var d functional.DynInst
		for i := int64(0); i < *insts; i++ {
			if err := e.Step(&d); err != nil {
				break
			}
			w.Record(&d)
		}
		if err := w.Flush(); err != nil {
			fatalf("write: %v", err)
		}
		fmt.Printf("recorded %d instructions of %s to %s\n", w.Count(), *bench, *record)

	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		m := config.Default().WithIQ(*iq)
		switch *sched {
		case "base":
			m = m.WithSched(config.SchedBase)
		case "2cycle":
			m = m.WithSched(config.SchedTwoCycle)
		case "mop":
			m = m.WithMOP(config.DefaultMOP())
		case "sf-squash":
			m = m.WithSched(config.SchedSelectFreeSquashDep)
		case "sf-scoreboard":
			m = m.WithSched(config.SchedSelectFreeScoreboard)
		default:
			fatalf("unknown scheduler %q", *sched)
		}
		c, err := core.NewFromSource(m, *replay, tracefile.NewReader(f))
		if err != nil {
			fatalf("configure: %v", err)
		}
		res, err := c.Run(*insts)
		if err != nil {
			fatalf("simulate: %v", err)
		}
		fmt.Print(res)

	default:
		fatalf("need -record or -replay; see -h")
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "moptrace: "+format+"\n", args...)
	os.Exit(1)
}
