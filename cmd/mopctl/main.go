// Command mopctl is the client for cmd/mopserve: it submits simulation
// jobs over the HTTP/JSON API and pretty-prints the results.
//
// Usage:
//
//	mopctl -addr http://127.0.0.1:8344 simulate -bench gzip -sched mop -insts 100000
//	mopctl matrix -benchmarks gzip,mcf -scheds base,mop -insts 50000
//	mopctl matrix -scheds base,2cycle,mop -stream        # NDJSON live progress
//	mopctl gap -benchmarks gzip,mcf -window 32           # heuristic-vs-optimum report
//	mopctl job job-n1-3                                  # job status
//	mopctl jobs                                          # list jobs
//	mopctl health
//	mopctl metrics
//	mopctl -seeds http://h1:8344,http://h2:8344 ring     # cluster membership
//
// mopctl is cluster-aware: -seeds lists several nodes and the client
// rotates to the next seed when one stops answering; 307 redirects
// carrying X-Mop-Owner (a cell routed to its owning shard) are followed
// transparently. Busy rejections (503) are retried up to -max-retries
// times with capped exponential backoff and jitter, honouring the
// server's Retry-After hint; when the budget runs out the server's final
// typed error (kind and repro fingerprint included) is what you see.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"macroop/internal/cluster"
	"macroop/internal/experiments"
	"macroop/internal/service"
	"macroop/internal/stats"
)

func main() {
	addr := flag.String("addr", envOr("MOPSERVE_ADDR", "http://127.0.0.1:8344"), "mopserve base URL (or $MOPSERVE_ADDR)")
	seeds := flag.String("seeds", envOr("MOPSERVE_SEEDS", ""), "comma-separated cluster seed URLs; the client rotates to the next seed when one stops answering (overrides -addr)")
	var maxRetries int
	flag.IntVar(&maxRetries, "retries", 5, "alias for -max-retries")
	flag.IntVar(&maxRetries, "max-retries", 5, "attempt budget for busy (503) rejections and unreachable seeds, with capped exponential backoff honouring Retry-After")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	list := splitList(*seeds)
	if len(list) == 0 {
		list = []string{*addr}
	}
	for i := range list {
		list[i] = strings.TrimRight(list[i], "/")
	}
	c := &client{seeds: list, maxRetries: maxRetries}
	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "simulate":
		c.simulate(args)
	case "matrix":
		c.matrix(args)
	case "gap":
		c.gap(args)
	case "job":
		c.job(args)
	case "jobs":
		c.jobs()
	case "health":
		c.health()
	case "metrics":
		c.metrics()
	case "ring":
		c.ring()
	default:
		fatalf("unknown command %q", cmd)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: mopctl [-addr URL | -seeds URL,URL,...] [-max-retries N] <command> [flags]

commands:
  simulate  run one cell synchronously   (-bench, -sched, -wakeup, -iq, -stages, -insts)
  matrix    submit a batched sweep       (-benchmarks, -scheds, -insts, -wait, -stream, -async)
  gap       heuristic-vs-optimum report  (-benchmarks, -window, -stride, -max-windows, -budget)
  job <id>  print one job's status and results
  jobs      list jobs, newest first
  health    check /healthz
  metrics   dump /metrics
  ring      print cluster membership and liveness
`)
}

type client struct {
	seeds      []string
	cur        int
	maxRetries int
}

func (c *client) base() string { return c.seeds[c.cur] }

func (c *client) rotate() { c.cur = (c.cur + 1) % len(c.seeds) }

// noFollow keeps 307s visible so do can log the owning shard and re-POST
// the body itself (http.Client only auto-follows GET-safe redirects).
var noFollow = &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
	return http.ErrUseLastResponse
}}

// backoff computes the wait before the next attempt: the server's
// Retry-After hint verbatim when present, otherwise capped exponential
// (500ms doubling to 8s) with ±25% jitter so synchronized clients do not
// retry in lockstep.
func backoff(attempt int, retryAfter string) time.Duration {
	if ra, err := strconv.Atoi(retryAfter); err == nil && ra > 0 {
		return time.Duration(ra) * time.Second
	}
	d := 500 * time.Millisecond
	for i := 1; i < attempt && d < 8*time.Second; i++ {
		d *= 2
	}
	if d > 8*time.Second {
		d = 8 * time.Second
	}
	return d + time.Duration(rand.Int63n(int64(d)/2)) - d/4
}

// do performs one logical request with the client's resilience policy:
// unreachable seeds rotate to the next one, 503s back off and retry, and
// 307s (a clustered node pointing at the cell's owning shard) are
// followed. When the retry budget runs out, the final response — with
// the server's typed error envelope — is returned for decode to surface.
func (c *client) do(method, path string, body []byte) *http.Response {
	url := c.base() + path
	redirects := 0
	for attempt := 1; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			fatalf("%v", err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := noFollow.Do(req)
		switch {
		case err != nil:
			if attempt >= c.maxRetries {
				fatalf("%v (after %d attempts across %d seed(s))", err, attempt, len(c.seeds))
			}
			c.rotate()
			url = c.base() + path
			d := backoff(attempt, "")
			fmt.Fprintf(os.Stderr, "mopctl: %v; retrying against %s in %v (%d/%d)\n",
				err, c.base(), d.Round(time.Millisecond), attempt, c.maxRetries)
			time.Sleep(d)
		case resp.StatusCode == http.StatusTemporaryRedirect:
			loc := resp.Header.Get("Location")
			owner := resp.Header.Get("X-Mop-Owner")
			resp.Body.Close()
			if loc == "" || redirects >= 4 {
				fatalf("redirect loop or missing Location (owner %q)", owner)
			}
			redirects++
			url = loc
			if owner != "" {
				fmt.Fprintf(os.Stderr, "mopctl: cell owned by shard %s; following redirect\n", owner)
			}
		case resp.StatusCode == http.StatusServiceUnavailable && attempt < c.maxRetries:
			d := backoff(attempt, resp.Header.Get("Retry-After"))
			resp.Body.Close()
			fmt.Fprintf(os.Stderr, "mopctl: server busy (503), retrying in %v (%d/%d)\n",
				d.Round(time.Millisecond), attempt, c.maxRetries)
			time.Sleep(d)
		default:
			return resp
		}
	}
}

func (c *client) post(path string, body any) *http.Response {
	data, err := json.Marshal(body)
	if err != nil {
		fatalf("%v", err)
	}
	return c.do(http.MethodPost, path, data)
}

func (c *client) get(path string) *http.Response {
	return c.do(http.MethodGet, path, nil)
}

// decode reads a JSON response, converting error envelopes into fatal
// diagnostics that preserve the typed kind and repro fingerprint.
func decode(resp *http.Response, v any) {
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e struct {
			Error            string `json:"error"`
			Kind             string `json:"kind"`
			ReproFingerprint string `json:"repro_fingerprint"`
		}
		data, _ := io.ReadAll(resp.Body)
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			msg := fmt.Sprintf("server: %s (HTTP %d", e.Error, resp.StatusCode)
			if e.Kind != "" {
				msg += ", kind " + e.Kind
			}
			if e.ReproFingerprint != "" {
				msg += ", repro fingerprint " + e.ReproFingerprint
			}
			fatalf("%s)", msg)
		}
		fatalf("server: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		fatalf("decode response: %v", err)
	}
}

func (c *client) simulate(args []string) {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	var (
		bench  = fs.String("bench", "gzip", "benchmark name")
		sched  = fs.String("sched", "base", "scheduler: base, 2cycle, mop, sf-squash, sf-scoreboard")
		wakeup = fs.String("wakeup", "", "MOP wakeup style: 2src, wired-or (mop only)")
		iq     = fs.Int("iq", -1, "issue queue entries (-1 = server default, 0 = unrestricted)")
		stages = fs.Int("stages", -1, "extra MOP formation stages (-1 = default)")
		insts  = fs.Int64("insts", 0, "committed-instruction budget (0 = server default)")
	)
	fs.Parse(args)
	req := service.SimRequest{
		Benchmark: *bench,
		Config:    configSpec(*sched, *wakeup, *iq, *stages),
		MaxInsts:  *insts,
	}
	var cr service.CellResult
	decode(c.post("/v1/simulate", &req), &cr)
	printCell(&cr)
}

func (c *client) matrix(args []string) {
	fs := flag.NewFlagSet("matrix", flag.ExitOnError)
	var (
		benches = fs.String("benchmarks", "", "comma-separated benchmarks (empty = full suite)")
		scheds  = fs.String("scheds", "base,mop", "comma-separated scheduler configs (base, 2cycle, mop, mop-2src, sf-squash, sf-scoreboard)")
		insts   = fs.Int64("insts", 0, "per-cell committed-instruction budget (0 = server default)")
		stream  = fs.Bool("stream", false, "stream per-cell results as they complete (NDJSON)")
		async   = fs.Bool("async", false, "submit and print the job ID without waiting")
	)
	fs.Parse(args)
	req := map[string]any{
		"configs": schedConfigs(*scheds),
		"wait":    !*stream && !*async,
		"stream":  *stream,
	}
	if *benches != "" {
		req["benchmarks"] = splitList(*benches)
	}
	if *insts > 0 {
		req["max_insts"] = *insts
	}
	resp := c.post("/v1/matrix", req)
	if *stream {
		c.streamCells(resp)
		return
	}
	var st service.JobStatus
	decode(resp, &st)
	if *async {
		fmt.Printf("accepted %s (%d cells): poll with `mopctl job %s`\n", st.ID, st.Cells, st.ID)
		return
	}
	printStatus(&st, true)
	if st.Failed > 0 {
		os.Exit(1)
	}
}

// gap requests a heuristic-vs-optimum gap report (POST /v1/gap) and
// renders it as the paper-style table. The shared do() policy applies:
// busy servers (503) are retried with Retry-After-honouring backoff, and
// a clustered node's 307 owner redirect is followed. A report carrying
// admissibility violations exits non-zero: it means the oracle found a
// "optimal" schedule worse than a heuristic, which must never happen.
func (c *client) gap(args []string) {
	fs := flag.NewFlagSet("gap", flag.ExitOnError)
	var (
		benches    = fs.String("benchmarks", "", "comma-separated benchmarks (empty = full suite)")
		sched      = fs.String("sched", "base", "machine config supplying the window model (scheduler choice does not matter; all heuristics are replayed)")
		window     = fs.Int("window", 0, "uop window size, 4..64 (0 = server default, 32)")
		stride     = fs.Int("stride", 0, "start-to-start window distance (0 = window size)")
		maxWindows = fs.Int("max-windows", 0, "windows per benchmark (0 = server default, 8)")
		budget     = fs.Int64("budget", 0, "branch-and-bound node budget per window (0 = server default)")
	)
	fs.Parse(args)
	req := service.GapRequest{
		Benchmarks: splitList(*benches),
		Config:     service.ConfigSpec{Sched: *sched},
		Window:     *window,
		Stride:     *stride,
		MaxWindows: *maxWindows,
		NodeBudget: *budget,
	}
	var gr service.GapResponse
	decode(c.post("/v1/gap", &req), &gr)
	if gr.Report == nil {
		fatalf("server returned no gap report (fingerprint %s)", gr.Fingerprint)
	}
	fmt.Print(experiments.GapTable(gr.Report))
	opt, total := gr.Report.OptimalWindows()
	src := "ran"
	switch {
	case gr.Cached:
		src = "cache"
	case gr.Shared:
		src = "shared"
	}
	fmt.Printf("%d/%d windows proven optimal, %d violations, fingerprint %s, %.1fms (%s)\n",
		opt, total, gr.Report.Violations(), gr.Fingerprint, gr.WallMS, src)
	if gr.Report.Violations() > 0 {
		os.Exit(1)
	}
}

func (c *client) streamCells(resp *http.Response) {
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		decode(resp, &struct{}{}) // renders the error envelope and exits
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	failed := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		// The stream is cell lines with a terminal job-status line.
		var cr service.CellResult
		if err := json.Unmarshal(line, &cr); err == nil && cr.Bench != "" {
			printCell(&cr)
			failed = failed || cr.Error != ""
			continue
		}
		var st service.JobStatus
		if err := json.Unmarshal(line, &st); err == nil && st.ID != "" {
			fmt.Printf("%s: %s (%d/%d cells, %d failed, %d cache hits)\n",
				st.ID, st.State, st.Completed, st.Cells, st.Failed, st.CacheHits)
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("stream: %v", err)
	}
	if failed {
		os.Exit(1)
	}
}

func (c *client) job(args []string) {
	if len(args) != 1 {
		fatalf("usage: mopctl job <id>")
	}
	var st service.JobStatus
	decode(c.get("/v1/jobs/"+args[0]), &st)
	printStatus(&st, true)
}

func (c *client) jobs() {
	var sts []service.JobStatus
	decode(c.get("/v1/jobs"), &sts)
	t := stats.NewTable("jobs", "id", "state", "cells", "completed", "failed", "cache-hits", "created")
	for i := range sts {
		st := &sts[i]
		t.AddRow(st.ID, string(st.State), st.Cells, st.Completed, st.Failed, st.CacheHits,
			st.Created.Format(time.RFC3339))
	}
	fmt.Print(t)
}

func (c *client) health() {
	resp := c.get("/healthz")
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	fmt.Printf("%d %s", resp.StatusCode, body)
	if resp.StatusCode != http.StatusOK {
		os.Exit(1)
	}
}

func (c *client) metrics() {
	resp := c.get("/metrics")
	defer resp.Body.Close()
	io.Copy(os.Stdout, resp.Body)
}

// ring prints the cluster's membership as the contacted node sees it:
// liveness state, advertised load, and how stale each peer's last ack is.
func (c *client) ring() {
	var info cluster.RingInfo
	decode(c.get("/cluster/v1/ring"), &info)
	fmt.Printf("cluster as seen by %s (epoch %d, membership v%d, replication %d)\n",
		info.Self, info.Epoch, info.Version, info.Replication)
	t := stats.NewTable("members", "node", "addr", "state", "queue", "draining", "last-ack")
	for _, m := range info.Members {
		age := time.Since(m.LastAck).Round(time.Millisecond)
		self := ""
		if m.ID == info.Self {
			self = " (self)"
		}
		t.AddRow(m.ID+self, m.Addr, m.State, m.QueueDepth, m.Draining, age.String())
	}
	fmt.Print(t)
	if len(info.Samples) == 0 {
		return
	}
	fmt.Println()
	rt := stats.NewTable("replica sets (sampled keys)", "key", "primary", "replicas", "health")
	degraded := 0
	for _, s := range info.Samples {
		primary, rest := "-", "-"
		if len(s.Replicas) > 0 {
			primary = s.Replicas[0]
		}
		if len(s.Replicas) > 1 {
			rest = strings.Join(s.Replicas[1:], ",")
		}
		health := "ok"
		if s.Degraded {
			health = fmt.Sprintf("DEGRADED (%d/%d alive)", len(s.Replicas), info.Replication)
			degraded++
		}
		rt.AddRow(s.Key, primary, rest, health)
	}
	fmt.Print(rt)
	if degraded > 0 {
		fmt.Printf("\n%d of %d sampled replica sets are below R=%d — records there have fewer live copies than configured\n",
			degraded, len(info.Samples), info.Replication)
	}
}

// configSpec builds the wire config from CLI knobs; unset knobs stay
// absent so the server applies its defaults.
func configSpec(sched, wakeup string, iq, stages int) service.ConfigSpec {
	spec := service.ConfigSpec{Sched: sched, Wakeup: wakeup}
	if iq >= 0 {
		spec.IQ = &iq
	}
	if stages >= 0 {
		spec.Stages = &stages
	}
	return spec
}

// schedConfigs expands -scheds shorthand names into the config map.
// "mop" is wired-OR macro-op scheduling; "mop-2src" selects the CAM
// wakeup array.
func schedConfigs(list string) map[string]service.ConfigSpec {
	out := make(map[string]service.ConfigSpec)
	for _, name := range splitList(list) {
		switch name {
		case "mop-2src":
			out[name] = service.ConfigSpec{Sched: "mop", Wakeup: "2src"}
		default:
			out[name] = service.ConfigSpec{Sched: name}
		}
	}
	return out
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func printCell(cr *service.CellResult) {
	if cr.Error != "" {
		fmt.Printf("%-10s %-14s FAILED (%s): %s [repro %s]\n",
			cr.Bench, cr.Config, cr.ErrorKind, cr.Error, cr.ReproFingerprint)
		return
	}
	fmt.Printf("%-10s %-14s IPC %6.3f  %9d insts %9d cycles  checksum %s  %7.1fms (%s)\n",
		cr.Bench, cr.Config, cr.IPC, cr.Committed, cr.Cycles, cr.Checksum, cr.WallMS, cellSource(cr))
}

// cellSource labels where a result came from: executed here, the local
// cache, a coalesced in-flight execution, or the cell's owning shard.
func cellSource(cr *service.CellResult) string {
	switch {
	case cr.Cached:
		return "cache"
	case cr.Shared:
		return "shared"
	case cr.PeerFilled:
		return "peer"
	}
	return "ran"
}

func printStatus(st *service.JobStatus, withResults bool) {
	fmt.Printf("%s: %s (%d/%d cells, %d failed, %d cache hits)\n",
		st.ID, st.State, st.Completed, st.Cells, st.Failed, st.CacheHits)
	if !withResults || len(st.Results) == 0 {
		return
	}
	t := stats.NewTable("results", "benchmark", "config", "IPC", "insts", "cycles", "checksum", "ms", "source")
	for _, cr := range st.Results {
		if cr.Error != "" {
			t.AddRow(cr.Bench, cr.Config, "FAILED", cr.ErrorKind, "-", cr.ReproFingerprint, fmt.Sprintf("%.1f", cr.WallMS), "-")
			continue
		}
		t.AddRow(cr.Bench, cr.Config, cr.IPC, cr.Committed, cr.Cycles, cr.Checksum,
			fmt.Sprintf("%.1f", cr.WallMS), cellSource(cr))
	}
	fmt.Print(t)
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mopctl: "+format+"\n", args...)
	os.Exit(1)
}
