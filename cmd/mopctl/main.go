// Command mopctl is the client for cmd/mopserve: it submits simulation
// jobs over the HTTP/JSON API and pretty-prints the results.
//
// Usage:
//
//	mopctl -addr http://127.0.0.1:8344 simulate -bench gzip -sched mop -insts 100000
//	mopctl matrix -benchmarks gzip,mcf -scheds base,mop -insts 50000
//	mopctl matrix -scheds base,2cycle,mop -stream        # NDJSON live progress
//	mopctl job job-3                                     # job status
//	mopctl jobs                                          # list jobs
//	mopctl health
//	mopctl metrics
//
// Queue-full rejections (503 + Retry-After) are retried automatically up
// to -retries times.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"macroop/internal/service"
	"macroop/internal/stats"
)

func main() {
	addr := flag.String("addr", envOr("MOPSERVE_ADDR", "http://127.0.0.1:8344"), "mopserve base URL (or $MOPSERVE_ADDR)")
	retries := flag.Int("retries", 5, "attempts for queue-full (503) rejections, honouring Retry-After")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	c := &client{base: strings.TrimRight(*addr, "/"), retries: *retries}
	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "simulate":
		c.simulate(args)
	case "matrix":
		c.matrix(args)
	case "job":
		c.job(args)
	case "jobs":
		c.jobs()
	case "health":
		c.health()
	case "metrics":
		c.metrics()
	default:
		fatalf("unknown command %q", cmd)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: mopctl [-addr URL] [-retries N] <command> [flags]

commands:
  simulate  run one cell synchronously   (-bench, -sched, -wakeup, -iq, -stages, -insts)
  matrix    submit a batched sweep       (-benchmarks, -scheds, -insts, -wait, -stream)
  job <id>  print one job's status and results
  jobs      list jobs, newest first
  health    check /healthz
  metrics   dump /metrics
`)
}

type client struct {
	base    string
	retries int
}

// post submits JSON, retrying 503 rejections with the server's
// Retry-After hint (admission control pushes back; the client waits).
func (c *client) post(path string, body any) *http.Response {
	data, err := json.Marshal(body)
	if err != nil {
		fatalf("%v", err)
	}
	for attempt := 1; ; attempt++ {
		resp, err := http.Post(c.base+path, "application/json", bytes.NewReader(data))
		if err != nil {
			fatalf("%v", err)
		}
		if resp.StatusCode != http.StatusServiceUnavailable || attempt >= c.retries {
			return resp
		}
		delay := time.Second
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
			delay = time.Duration(ra) * time.Second
		}
		resp.Body.Close()
		fmt.Fprintf(os.Stderr, "mopctl: server busy (503), retrying in %v (%d/%d)\n", delay, attempt, c.retries)
		time.Sleep(delay)
	}
}

func (c *client) get(path string) *http.Response {
	resp, err := http.Get(c.base + path)
	if err != nil {
		fatalf("%v", err)
	}
	return resp
}

// decode reads a JSON response, converting error envelopes into fatal
// diagnostics that preserve the typed kind and repro fingerprint.
func decode(resp *http.Response, v any) {
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e struct {
			Error            string `json:"error"`
			Kind             string `json:"kind"`
			ReproFingerprint string `json:"repro_fingerprint"`
		}
		data, _ := io.ReadAll(resp.Body)
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			msg := fmt.Sprintf("server: %s (HTTP %d", e.Error, resp.StatusCode)
			if e.Kind != "" {
				msg += ", kind " + e.Kind
			}
			if e.ReproFingerprint != "" {
				msg += ", repro fingerprint " + e.ReproFingerprint
			}
			fatalf("%s)", msg)
		}
		fatalf("server: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		fatalf("decode response: %v", err)
	}
}

func (c *client) simulate(args []string) {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	var (
		bench  = fs.String("bench", "gzip", "benchmark name")
		sched  = fs.String("sched", "base", "scheduler: base, 2cycle, mop, sf-squash, sf-scoreboard")
		wakeup = fs.String("wakeup", "", "MOP wakeup style: 2src, wired-or (mop only)")
		iq     = fs.Int("iq", -1, "issue queue entries (-1 = server default, 0 = unrestricted)")
		stages = fs.Int("stages", -1, "extra MOP formation stages (-1 = default)")
		insts  = fs.Int64("insts", 0, "committed-instruction budget (0 = server default)")
	)
	fs.Parse(args)
	req := service.SimRequest{
		Benchmark: *bench,
		Config:    configSpec(*sched, *wakeup, *iq, *stages),
		MaxInsts:  *insts,
	}
	var cr service.CellResult
	decode(c.post("/v1/simulate", &req), &cr)
	printCell(&cr)
}

func (c *client) matrix(args []string) {
	fs := flag.NewFlagSet("matrix", flag.ExitOnError)
	var (
		benches = fs.String("benchmarks", "", "comma-separated benchmarks (empty = full suite)")
		scheds  = fs.String("scheds", "base,mop", "comma-separated scheduler configs (base, 2cycle, mop, mop-2src, sf-squash, sf-scoreboard)")
		insts   = fs.Int64("insts", 0, "per-cell committed-instruction budget (0 = server default)")
		stream  = fs.Bool("stream", false, "stream per-cell results as they complete (NDJSON)")
		async   = fs.Bool("async", false, "submit and print the job ID without waiting")
	)
	fs.Parse(args)
	req := map[string]any{
		"configs": schedConfigs(*scheds),
		"wait":    !*stream && !*async,
		"stream":  *stream,
	}
	if *benches != "" {
		req["benchmarks"] = splitList(*benches)
	}
	if *insts > 0 {
		req["max_insts"] = *insts
	}
	resp := c.post("/v1/matrix", req)
	if *stream {
		c.streamCells(resp)
		return
	}
	var st service.JobStatus
	decode(resp, &st)
	if *async {
		fmt.Printf("accepted %s (%d cells): poll with `mopctl job %s`\n", st.ID, st.Cells, st.ID)
		return
	}
	printStatus(&st, true)
	if st.Failed > 0 {
		os.Exit(1)
	}
}

func (c *client) streamCells(resp *http.Response) {
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		decode(resp, &struct{}{}) // renders the error envelope and exits
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	failed := false
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		// The stream is cell lines with a terminal job-status line.
		var cr service.CellResult
		if err := json.Unmarshal(line, &cr); err == nil && cr.Bench != "" {
			printCell(&cr)
			failed = failed || cr.Error != ""
			continue
		}
		var st service.JobStatus
		if err := json.Unmarshal(line, &st); err == nil && st.ID != "" {
			fmt.Printf("%s: %s (%d/%d cells, %d failed, %d cache hits)\n",
				st.ID, st.State, st.Completed, st.Cells, st.Failed, st.CacheHits)
		}
	}
	if err := sc.Err(); err != nil {
		fatalf("stream: %v", err)
	}
	if failed {
		os.Exit(1)
	}
}

func (c *client) job(args []string) {
	if len(args) != 1 {
		fatalf("usage: mopctl job <id>")
	}
	var st service.JobStatus
	decode(c.get("/v1/jobs/"+args[0]), &st)
	printStatus(&st, true)
}

func (c *client) jobs() {
	var sts []service.JobStatus
	decode(c.get("/v1/jobs"), &sts)
	t := stats.NewTable("jobs", "id", "state", "cells", "completed", "failed", "cache-hits", "created")
	for i := range sts {
		st := &sts[i]
		t.AddRow(st.ID, string(st.State), st.Cells, st.Completed, st.Failed, st.CacheHits,
			st.Created.Format(time.RFC3339))
	}
	fmt.Print(t)
}

func (c *client) health() {
	resp := c.get("/healthz")
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	fmt.Printf("%d %s", resp.StatusCode, body)
	if resp.StatusCode != http.StatusOK {
		os.Exit(1)
	}
}

func (c *client) metrics() {
	resp := c.get("/metrics")
	defer resp.Body.Close()
	io.Copy(os.Stdout, resp.Body)
}

// configSpec builds the wire config from CLI knobs; unset knobs stay
// absent so the server applies its defaults.
func configSpec(sched, wakeup string, iq, stages int) service.ConfigSpec {
	spec := service.ConfigSpec{Sched: sched, Wakeup: wakeup}
	if iq >= 0 {
		spec.IQ = &iq
	}
	if stages >= 0 {
		spec.Stages = &stages
	}
	return spec
}

// schedConfigs expands -scheds shorthand names into the config map.
// "mop" is wired-OR macro-op scheduling; "mop-2src" selects the CAM
// wakeup array.
func schedConfigs(list string) map[string]service.ConfigSpec {
	out := make(map[string]service.ConfigSpec)
	for _, name := range splitList(list) {
		switch name {
		case "mop-2src":
			out[name] = service.ConfigSpec{Sched: "mop", Wakeup: "2src"}
		default:
			out[name] = service.ConfigSpec{Sched: name}
		}
	}
	return out
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func printCell(cr *service.CellResult) {
	if cr.Error != "" {
		fmt.Printf("%-10s %-14s FAILED (%s): %s [repro %s]\n",
			cr.Bench, cr.Config, cr.ErrorKind, cr.Error, cr.ReproFingerprint)
		return
	}
	src := "ran"
	switch {
	case cr.Cached:
		src = "cache"
	case cr.Shared:
		src = "shared"
	}
	fmt.Printf("%-10s %-14s IPC %6.3f  %9d insts %9d cycles  checksum %s  %7.1fms (%s)\n",
		cr.Bench, cr.Config, cr.IPC, cr.Committed, cr.Cycles, cr.Checksum, cr.WallMS, src)
}

func printStatus(st *service.JobStatus, withResults bool) {
	fmt.Printf("%s: %s (%d/%d cells, %d failed, %d cache hits)\n",
		st.ID, st.State, st.Completed, st.Cells, st.Failed, st.CacheHits)
	if !withResults || len(st.Results) == 0 {
		return
	}
	t := stats.NewTable("results", "benchmark", "config", "IPC", "insts", "cycles", "checksum", "ms", "source")
	for _, cr := range st.Results {
		if cr.Error != "" {
			t.AddRow(cr.Bench, cr.Config, "FAILED", cr.ErrorKind, "-", cr.ReproFingerprint, fmt.Sprintf("%.1f", cr.WallMS), "-")
			continue
		}
		src := "ran"
		switch {
		case cr.Cached:
			src = "cache"
		case cr.Shared:
			src = "shared"
		}
		t.AddRow(cr.Bench, cr.Config, cr.IPC, cr.Committed, cr.Cycles, cr.Checksum,
			fmt.Sprintf("%.1f", cr.WallMS), src)
	}
	fmt.Print(t)
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mopctl: "+format+"\n", args...)
	os.Exit(1)
}
