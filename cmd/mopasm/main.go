// Command mopasm assembles a program from a text file and runs it on the
// simulated machine, optionally printing a pipeline timeline. It is the
// quickest way to study how a specific instruction sequence schedules
// under the different wakeup/select models.
//
// Usage:
//
//	mopasm -sched mop -trace 40 kernel.s
//	mopasm -disasm kernel.s
//
// See internal/program's assembler documentation for the syntax.
package main

import (
	"flag"
	"fmt"
	"os"

	"macroop/internal/config"
	"macroop/internal/core"
	"macroop/internal/program"
)

func main() {
	var (
		sched  = flag.String("sched", "base", "scheduler: base, 2cycle, mop, sf-squash, sf-scoreboard")
		iq     = flag.Int("iq", 32, "issue queue entries (0 = unrestricted)")
		insts  = flag.Int64("insts", 100_000, "committed instructions to simulate")
		trace  = flag.Int("trace", 0, "print a pipeline timeline for the first N instructions")
		disasm = flag.Bool("disasm", false, "print the assembled program and exit")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fatalf("usage: mopasm [flags] <file.s>")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	prog, err := program.Assemble(flag.Arg(0), string(src))
	if err != nil {
		fatalf("assemble: %v", err)
	}
	if *disasm {
		fmt.Print(prog.Disassemble())
		return
	}

	m := config.Default().WithIQ(*iq)
	switch *sched {
	case "base":
		m = m.WithSched(config.SchedBase)
	case "2cycle":
		m = m.WithSched(config.SchedTwoCycle)
	case "mop":
		m = m.WithMOP(config.DefaultMOP())
	case "sf-squash":
		m = m.WithSched(config.SchedSelectFreeSquashDep)
	case "sf-scoreboard":
		m = m.WithSched(config.SchedSelectFreeScoreboard)
	default:
		fatalf("unknown scheduler %q", *sched)
	}

	c, err := core.New(m, prog)
	if err != nil {
		fatalf("configure: %v", err)
	}
	var tl *core.Timeline
	if *trace > 0 {
		tl = core.NewTimeline(*trace)
		c.SetTracer(tl)
	}
	res, err := c.Run(*insts)
	if err != nil {
		fatalf("simulate: %v", err)
	}
	if tl != nil {
		fmt.Println(tl)
	}
	fmt.Print(res)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mopasm: "+format+"\n", args...)
	os.Exit(1)
}
