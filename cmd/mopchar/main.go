// Command mopchar runs the machine-independent MOP characterizations of
// the paper's Section 4: dependence edge distance (Figure 6) and
// groupability into 2x/8x MOPs (Figure 7).
//
// Usage:
//
//	mopchar -insts 2000000            # all benchmarks, both figures
//	mopchar -bench gap -fig 6
package main

import (
	"flag"
	"fmt"
	"os"

	"macroop/internal/experiments"
)

func main() {
	var (
		bench = flag.String("bench", "", "single benchmark (default: all)")
		fig   = flag.Int("fig", 0, "figure to run: 6, 7, or 0 for both")
		insts = flag.Int64("insts", 2_000_000, "committed instructions per benchmark")
	)
	flag.Parse()

	r := experiments.NewRunner(*insts)
	if *bench != "" {
		r.Benchmarks = []string{*bench}
	}
	if *fig == 0 || *fig == 6 {
		t, err := r.Figure6()
		if err != nil {
			fatalf("figure 6: %v", err)
		}
		fmt.Println(t)
	}
	if *fig == 0 || *fig == 7 {
		t, err := r.Figure7()
		if err != nil {
			fatalf("figure 7: %v", err)
		}
		fmt.Println(t)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mopchar: "+format+"\n", args...)
	os.Exit(1)
}
