// Command mopsoak is the crash-consistency soak harness behind the
// nightly CI job. It proves, end to end and with real SIGKILLs, that the
// write-ahead journal makes sweeps and fault campaigns resumable:
//
//  1. matrix phase — it computes a reference experiment matrix
//     in-process, then repeatedly re-executes itself as a child process
//     running the same sweep against a journal, kill -9s the child at a
//     random point, and finally resumes the sweep from whatever the
//     journal holds (including a possibly torn final record). The
//     resumed matrix must be byte-identical to the uninterrupted
//     reference, and must re-simulate only the cells the kills left
//     unfinished.
//  2. campaign phase — the same treatment for a randomized fault
//     campaign (random benchmark, fault subset, and trigger point,
//     derived from the seed). Resumed verdicts must match an
//     uninterrupted campaign, no fired fault may escape detection, and a
//     couple of detections are minimized into repro bundles (uploaded as
//     CI artifacts).
//
// A third mode (-cluster) is the cluster chaos harness: it boots a real
// 5-node R=2 mopserve fleet sharing a journal directory, submits a sweep
// through mopctl, SIGKILLs the coordinating node once its journal shows
// partial progress, and requires the survivors to adopt and finish the
// job with checksums identical to an uninterrupted reference — re-running
// only the cells the dead node had not journaled. It then rolling-restarts
// one survivor with a wiped disk through the -join handshake and requires
// the anti-entropy loop to repair the holes (repair_total > 0).
//
// Usage:
//
//	mopsoak                      # random seed, journals in a temp dir
//	mopsoak -seed 42 -kills 5 -bundles repros
//	mopsoak -cluster -mopserve ./mopserve -mopctl ./mopctl
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"macroop/internal/config"
	"macroop/internal/experiments"
	"macroop/internal/fault"
	"macroop/internal/journal"
	"macroop/internal/shrink"
	"macroop/internal/simerr"
)

func main() {
	var (
		seed    = flag.Int64("seed", 0, "randomness seed for kill timing and the campaign shape (0 = time-derived; printed so a run can be replayed)")
		kills   = flag.Int("kills", 3, "kill -9 rounds per phase before the final resume")
		bundles = flag.String("bundles", "repros", "directory for shrunken repro bundles of campaign detections")
		work    = flag.String("work", "", "directory for the journals (default: a temp dir, removed afterwards)")

		clusterMode = flag.Bool("cluster", false, "run the cluster chaos phase instead: boot a 5-node R=2 mopserve fleet, SIGKILL the coordinator mid-sweep, rolling-restart a survivor through -join, require failover, identical checksums, and anti-entropy repairs")
		mopserveBin = flag.String("mopserve", "", "path to the mopserve binary (-cluster)")
		mopctlBin   = flag.String("mopctl", "", "path to the mopctl binary (-cluster)")

		childMatrix   = flag.String("child-matrix", "", "internal: run the soak matrix sweep against this journal and exit")
		childCampaign = flag.String("child-campaign", "", "internal: run the soak fault campaign against this journal and exit")
	)
	flag.Parse()
	if *childMatrix != "" {
		childRunMatrix(*childMatrix)
		return
	}
	if *childCampaign != "" {
		childRunCampaign(*childCampaign, *seed)
		return
	}

	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	fmt.Printf("mopsoak: seed %d\n", *seed)
	rng := rand.New(rand.NewSource(*seed))

	dir := *work
	if dir == "" {
		d, err := os.MkdirTemp("", "mopsoak")
		if err != nil {
			fatalf("%v", err)
		}
		defer os.RemoveAll(d)
		dir = d
	}

	if *clusterMode {
		if *mopserveBin == "" || *mopctlBin == "" {
			fatalf("-cluster needs -mopserve and -mopctl binary paths")
		}
		if !soakCluster(dir, *mopserveBin, *mopctlBin) {
			os.Exit(1)
		}
		fmt.Println("mopsoak: PASS")
		return
	}

	ok := soakMatrix(rng, dir, *kills)
	if !soakCampaign(rng, dir, *kills, *bundles, *seed) {
		ok = false
	}
	if !ok {
		os.Exit(1)
	}
	fmt.Println("mopsoak: PASS")
}

// ---------------------------------------------------------------------
// Shared sweep/campaign shapes. Parent and child must agree exactly:
// the journal cell keys fingerprint these parameters.

func matrixRunner() *experiments.Runner {
	r := experiments.NewRunner(20_000)
	r.Benchmarks = []string{"gzip", "mcf", "twolf"}
	r.Concurrency = 1 // serial cells so kills land between, not after, cells
	return r
}

func matrixCfgs() map[string]config.Machine {
	return map[string]config.Machine{
		"base":    config.Default().WithSched(config.SchedBase),
		"2-cycle": config.Default().WithSched(config.SchedTwoCycle),
		"mop":     config.Default().WithSched(config.SchedMOP),
	}
}

// campaignFor derives the randomized campaign shape from the seed, so the
// parent (reference + resume) and the killed children all run the same
// campaign without shipping the config across the process boundary.
func campaignFor(seed int64) fault.CampaignConfig {
	rng := rand.New(rand.NewSource(seed))
	kinds := fault.Kinds()
	rng.Shuffle(len(kinds), func(i, j int) { kinds[i], kinds[j] = kinds[j], kinds[i] })
	cfg := fault.DefaultCampaign()
	cfg.Benchmarks = []string{[]string{"gzip", "mcf", "twolf"}[rng.Intn(3)]}
	cfg.Faults = kinds[:2+rng.Intn(len(kinds)-1)]
	cfg.TriggerCommits = int64(100 + rng.Intn(900))
	return cfg
}

// ---------------------------------------------------------------------
// Child modes: run the work against the journal and exit. The parent
// SIGKILLs this process at a random point — there is no cleanup path, by
// design.

func childRunMatrix(jpath string) {
	j, err := journal.Open(jpath)
	if err != nil {
		fatalf("child: %v", err)
	}
	r := matrixRunner()
	r.Journal = j
	if _, err := r.RunMatrix(matrixCfgs()); err != nil {
		fatalf("child: %v", err)
	}
}

func childRunCampaign(jpath string, seed int64) {
	j, err := journal.Open(jpath)
	if err != nil {
		fatalf("child: %v", err)
	}
	cfg := campaignFor(seed)
	cfg.Journal = j
	if _, err := fault.RunCampaign(cfg); err != nil {
		fatalf("child: %v", err)
	}
}

// killRounds re-executes this binary with the given child args, SIGKILLs
// it after a random delay, and reports how many journal records survived.
// Stops early once a child finishes the whole job before its kill.
func killRounds(rng *rand.Rand, rounds int, jpath string, childArgs ...string) {
	self, err := os.Executable()
	if err != nil {
		fatalf("%v", err)
	}
	for round := 1; round <= rounds; round++ {
		cmd := exec.Command(self, childArgs...)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Start(); err != nil {
			fatalf("%v", err)
		}
		delay := time.Duration(20+rng.Intn(300)) * time.Millisecond
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			fmt.Printf("mopsoak: round %d: child finished before the kill (%v)\n", round, err)
			return
		case <-time.After(delay):
			_ = cmd.Process.Kill()
			<-done
			fmt.Printf("mopsoak: round %d: killed child after %v (%d records journaled)\n",
				round, delay, countRecords(jpath))
		}
	}
}

// countRecords reads the journal without opening it for append (the child
// may have just been killed mid-write; Load tolerates the torn tail).
func countRecords(jpath string) int {
	recs, err := journal.Load(jpath)
	if err != nil {
		return 0
	}
	keys := map[string]bool{}
	for _, r := range recs {
		keys[r.Key] = true
	}
	return len(keys)
}

func soakMatrix(rng *rand.Rand, dir string, kills int) bool {
	fmt.Println("mopsoak: matrix phase: reference sweep...")
	ref, err := matrixRunner().RunMatrix(matrixCfgs())
	if err != nil {
		fatalf("reference sweep: %v", err)
	}
	want, err := json.Marshal(ref)
	if err != nil {
		fatalf("%v", err)
	}

	jpath := filepath.Join(dir, "matrix.journal")
	killRounds(rng, kills, jpath, "-child-matrix", jpath)

	j, err := journal.Open(jpath)
	if err != nil {
		fatalf("reopen journal: %v", err)
	}
	defer j.Close()
	before := j.Len()
	r := matrixRunner()
	r.Journal = j
	got, err := r.RunMatrix(matrixCfgs())
	if err != nil {
		fmt.Printf("mopsoak: FAIL: resumed sweep: %v\n", err)
		return false
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		fatalf("%v", err)
	}
	if !bytes.Equal(gotJSON, want) {
		fmt.Printf("mopsoak: FAIL: resumed matrix differs from uninterrupted reference\n got %s\nwant %s\n", gotJSON, want)
		return false
	}
	total := len(matrixRunner().Benchmarks) * len(matrixCfgs())
	if int(r.ExecutedCells()) != total-before {
		fmt.Printf("mopsoak: FAIL: resume executed %d cells, want %d (had %d of %d journaled)\n",
			r.ExecutedCells(), total-before, before, total)
		return false
	}
	fmt.Printf("mopsoak: matrix phase OK: %d cells journaled across kills, %d resumed, matrix byte-identical\n",
		before, r.ExecutedCells())
	return true
}

func soakCampaign(rng *rand.Rand, dir string, kills int, bundleDir string, seed int64) bool {
	cfg := campaignFor(seed)
	fmt.Printf("mopsoak: campaign phase: bench=%s faults=%v trigger=%d\n",
		cfg.Benchmarks[0], cfg.Faults, cfg.TriggerCommits)
	ref, err := fault.RunCampaign(cfg)
	if err != nil {
		fatalf("reference campaign: %v", err)
	}

	jpath := filepath.Join(dir, "campaign.journal")
	killRounds(rng, kills, jpath, "-child-campaign", jpath, "-seed", fmt.Sprint(seed))

	j, err := journal.Open(jpath)
	if err != nil {
		fatalf("reopen journal: %v", err)
	}
	defer j.Close()
	before := j.Len()
	resumedCfg := campaignFor(seed)
	resumedCfg.Journal = j
	res, err := fault.RunCampaign(resumedCfg)
	if err != nil {
		fmt.Printf("mopsoak: FAIL: resumed campaign: %v\n", err)
		return false
	}
	ok := true
	if res.Executed != len(ref.Outcomes)-before {
		fmt.Printf("mopsoak: FAIL: resume executed %d cells, want %d\n", res.Executed, len(ref.Outcomes)-before)
		ok = false
	}
	if len(res.Outcomes) != len(ref.Outcomes) {
		fmt.Printf("mopsoak: FAIL: resumed campaign has %d outcomes, want %d\n", len(res.Outcomes), len(ref.Outcomes))
		return false
	}
	for i := range ref.Outcomes {
		if g, w := outcomeFacts(res.Outcomes[i]), outcomeFacts(ref.Outcomes[i]); g != w {
			fmt.Printf("mopsoak: FAIL: outcome %d diverged after resume:\n got %s\nwant %s\n", i, g, w)
			ok = false
		}
	}
	if esc := res.Escapes(); len(esc) > 0 {
		fmt.Printf("mopsoak: FAIL: %d fault(s) escaped detection:\n%v\n", len(esc), esc)
		ok = false
	}

	// Minimize a couple of detections into artifacts.
	shrunk := 0
	for _, o := range res.Outcomes {
		if shrunk >= 2 || !o.Fired || !o.Detected {
			continue
		}
		if err := os.MkdirAll(bundleDir, 0o755); err != nil {
			fatalf("%v", err)
		}
		b := shrink.New(o.Bench, config.Default().WithSched(o.Sched).WithWatchdog(cfg.WatchdogCycles), cfg.MaxInsts)
		b.Fault = &shrink.FaultSpec{Kind: o.Fault.String(), TriggerCommits: cfg.TriggerCommits}
		min, err := shrink.Minimize(b)
		if err != nil {
			fmt.Printf("mopsoak: FAIL: shrink %s/%s/%s: %v\n", o.Bench, o.Sched, o.Fault, err)
			ok = false
			continue
		}
		out := filepath.Join(bundleDir, fmt.Sprintf("%s-%s-%s.json", o.Bench, o.Sched, o.Fault))
		if err := min.Save(out); err != nil {
			fatalf("%v", err)
		}
		if err := min.Verify(); err != nil {
			fmt.Printf("mopsoak: FAIL: bundle %s does not verify: %v\n", out, err)
			ok = false
			continue
		}
		fmt.Printf("mopsoak: wrote %s (%s, maxInsts %d -> %d)\n", out, min.ExpectKind, min.OriginalMaxInsts, min.MaxInsts)
		shrunk++
	}
	if ok {
		fmt.Printf("mopsoak: campaign phase OK: %d cells journaled across kills, %d resumed, verdicts identical\n",
			before, res.Executed)
	}
	return ok
}

// outcomeFacts flattens an Outcome into its comparable verdict: resumed
// outcomes carry reconstituted errors, so comparison goes through kind
// and fingerprint rather than error identity.
func outcomeFacts(o fault.Outcome) string {
	fp := ""
	if o.Err != nil {
		fp = simerr.FingerprintOf(o.Err)
	}
	return fmt.Sprintf("%s/%s/%s fired=%v detected=%v by=%s fp=%s",
		o.Bench, o.Sched, o.Fault, o.Fired, o.Detected, o.DetectedBy, fp)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mopsoak: "+format+"\n", args...)
	os.Exit(1)
}
