package main

// Cluster chaos mode (-cluster): the end-to-end failover proof behind
// the cluster-smoke CI job. It boots a real 5-node R=2 mopserve fleet as
// child processes sharing a journal directory, submits a sweep through
// mopctl, SIGKILLs the coordinating node once the journal shows partial
// progress, and requires the survivors to finish the job with results
// byte-identical to an uninterrupted single-process reference —
// re-simulating only the cells the dead node had not journaled. It then
// rolling-restarts one survivor with a wiped disk through the -join
// handshake (no other member restarts) and requires the anti-entropy
// loop to repair the holes: mopserve_cluster_repair_total must go
// positive across the fleet.

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"macroop/internal/cluster"
	"macroop/internal/journal"
	"macroop/internal/service"
)

// clusterInsts is sized so each cell takes long enough that the SIGKILL
// reliably lands mid-sweep, while the 9-cell matrix stays CI-cheap.
const clusterInsts = 150_000

var (
	clusterBenches = []string{"gzip", "mcf", "twolf"}
	clusterScheds  = []string{"base", "2cycle", "mop"}
	clusterIDs     = []string{"n1", "n2", "n3", "n4", "n5"}
)

// proc is one mopserve child process.
type proc struct {
	id   string
	base string // http://127.0.0.1:port
	cmd  *exec.Cmd
	done chan error
}

func (p *proc) kill9() {
	_ = p.cmd.Process.Kill()
	<-p.done
}

func soakCluster(dir, mopserveBin, mopctlBin string) bool {
	total := len(clusterBenches) * len(clusterScheds)
	fmt.Printf("mopsoak: cluster phase: reference sweep (%d cells)...\n", total)
	ref, ok := referenceChecksums()
	if !ok {
		return false
	}

	cdir := filepath.Join(dir, "cluster")
	if err := os.MkdirAll(cdir, 0o755); err != nil {
		fatalf("%v", err)
	}
	members, err := clusterMembers(clusterIDs)
	if err != nil {
		fatalf("%v", err)
	}

	// The coordinator runs a single worker so the sweep is slow enough to
	// kill mid-flight; the survivors keep normal parallelism.
	var procs []*proc
	defer func() {
		for _, p := range procs {
			if p.cmd.ProcessState == nil {
				p.kill9()
			}
		}
	}()
	for _, id := range clusterIDs {
		workers := 2
		if id == "n1" {
			workers = 1
		}
		p, err := startNode(mopserveBin, id, members, cdir, workers)
		if err != nil {
			fmt.Printf("mopsoak: FAIL: start %s: %v\n", id, err)
			return false
		}
		procs = append(procs, p)
	}
	for _, p := range procs {
		if !waitHealthy(p, 30*time.Second) {
			fmt.Printf("mopsoak: FAIL: %s never became healthy at %s\n", p.id, p.base)
			return false
		}
	}
	n1, survivors := procs[0], procs[1:]

	// Submit the sweep through mopctl against the coordinator.
	out, err := exec.Command(mopctlBin, "-seeds", n1.base, "matrix",
		"-benchmarks", strings.Join(clusterBenches, ","),
		"-scheds", strings.Join(clusterScheds, ","),
		"-insts", strconv.Itoa(clusterInsts),
		"-async").Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Stderr.Write(ee.Stderr)
		}
		fmt.Printf("mopsoak: FAIL: mopctl matrix: %v\n", err)
		return false
	}
	fields := strings.Fields(string(out))
	if len(fields) < 2 || fields[0] != "accepted" {
		fmt.Printf("mopsoak: FAIL: unexpected mopctl output %q\n", out)
		return false
	}
	jobID := fields[1]
	fmt.Printf("mopsoak: submitted %s via mopctl; waiting for partial progress in %s's journal\n", jobID, n1.id)

	// Kill -9 the coordinator once its journal holds at least two
	// completed cells but before the job is done — a real mid-sweep crash.
	jnlPath := filepath.Join(cdir, "n1.journal")
	killAt := time.Now().Add(60 * time.Second)
	for {
		cells, jobDone := journalProgress(jnlPath, jobID)
		if jobDone {
			fmt.Printf("mopsoak: FAIL: sweep finished (%d cells) before the kill; raise clusterInsts\n", len(cells))
			return false
		}
		if len(cells) >= 2 {
			break
		}
		if time.Now().After(killAt) {
			fmt.Printf("mopsoak: FAIL: journal never reached 2 cells (has %d)\n", len(cells))
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
	n1.kill9()
	journaled, _ := journalProgress(jnlPath, jobID)
	fmt.Printf("mopsoak: SIGKILLed %s with %d/%d cells journaled\n", n1.id, len(journaled), total)

	// The survivors must detect the death, adopt the job from the dead
	// node's journal, and drive it to completion.
	final, adopter := awaitAdoptedJob(survivors, jobID, 120*time.Second)
	if final == nil {
		fmt.Printf("mopsoak: FAIL: job %s never completed on a survivor\n", jobID)
		return false
	}
	ok = true
	if final.State != service.JobDone || final.Failed != 0 || final.Completed != total {
		fmt.Printf("mopsoak: FAIL: adopted job %s: state=%s completed=%d failed=%d\n",
			jobID, final.State, final.Completed, final.Failed)
		ok = false
	}
	for _, cr := range final.Results {
		key := cr.Bench + "|" + cr.Config
		if cr.Checksum != ref[key] {
			fmt.Printf("mopsoak: FAIL: %s checksum %s != reference %s\n", key, cr.Checksum, ref[key])
			ok = false
		}
	}

	// Failover accounting, from the survivors' metrics: exactly one node
	// adopted the job, every cell was either resumed from the journal or
	// re-run, and nothing the dead node had completed was lost.
	var failovers, jobs, resumed, rerun float64
	for _, p := range survivors {
		m := fetchMetrics(p.base)
		failovers += metricValue(m, "mopserve_cluster_failovers_total")
		jobs += metricValue(m, "mopserve_cluster_failover_jobs_total")
		resumed += metricValue(m, `mopserve_cluster_failover_cells_total{disposition="resumed"}`)
		rerun += metricValue(m, `mopserve_cluster_failover_cells_total{disposition="rerun"}`)
	}
	if failovers < 1 || jobs != 1 {
		fmt.Printf("mopsoak: FAIL: failovers=%v adopted jobs=%v, want >=1 and exactly 1\n", failovers, jobs)
		ok = false
	}
	if int(resumed+rerun) != total {
		fmt.Printf("mopsoak: FAIL: resumed %v + rerun %v != %d cells\n", resumed, rerun, total)
		ok = false
	}
	if int(resumed) < len(journaled) {
		fmt.Printf("mopsoak: FAIL: resumed %v cells < %d the dead node had journaled (completed work was lost)\n",
			resumed, len(journaled))
		ok = false
	}

	// Rolling restart: the last survivor drains cleanly on SIGTERM, loses
	// its disk, and rejoins the live fleet through the -join handshake —
	// no other member restarts.
	last := survivors[len(survivors)-1]
	_ = last.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-last.done:
		if code := last.cmd.ProcessState.ExitCode(); code != 0 {
			fmt.Printf("mopsoak: FAIL: %s exited %d on SIGTERM before the rolling restart\n", last.id, code)
			return false
		}
	case <-time.After(30 * time.Second):
		fmt.Printf("mopsoak: FAIL: %s did not exit on SIGTERM\n", last.id)
		last.kill9()
		return false
	}
	if err := os.Remove(filepath.Join(cdir, last.id+".journal")); err != nil {
		fmt.Printf("mopsoak: FAIL: wipe %s journal: %v\n", last.id, err)
		return false
	}
	rejoined, err := startNode(mopserveBin, last.id, members, cdir, 2,
		"-join", survivors[0].base, "-advertise", members[last.id])
	if err != nil {
		fmt.Printf("mopsoak: FAIL: restart %s with -join: %v\n", last.id, err)
		return false
	}
	procs = append(procs, rejoined)
	survivors[len(survivors)-1] = rejoined
	if !waitHealthy(rejoined, 30*time.Second) {
		fmt.Printf("mopsoak: FAIL: rejoined %s never became healthy\n", rejoined.id)
		return false
	}
	if !awaitMembers(rejoined, len(clusterIDs), 30*time.Second) {
		fmt.Printf("mopsoak: FAIL: rejoined %s never converged to %d known members\n", rejoined.id, len(clusterIDs))
		ok = false
	} else {
		fmt.Printf("mopsoak: %s rejoined via -join with a wiped disk, no other member restarted\n", rejoined.id)
	}

	// Anti-entropy must backfill the holes the dead n1 and the wiped
	// rejoiner left: surviving holders push the records to the promoted
	// replicas, so the repair counter goes positive fleet-wide.
	repairDeadline := time.Now().Add(90 * time.Second)
	var repairs float64
	for {
		repairs = 0
		for _, p := range survivors {
			repairs += metricValue(fetchMetrics(p.base), "mopserve_cluster_repair_total")
		}
		if repairs > 0 {
			break
		}
		if time.Now().After(repairDeadline) {
			fmt.Printf("mopsoak: FAIL: mopserve_cluster_repair_total stayed 0 across the fleet\n")
			ok = false
			break
		}
		time.Sleep(250 * time.Millisecond)
	}

	// mopctl must see the degraded ring and the replica sets through a
	// surviving seed.
	ring, err := exec.Command(mopctlBin, "-seeds", adopter, "ring").CombinedOutput()
	os.Stdout.Write(ring)
	if err != nil || !strings.Contains(string(ring), "dead") {
		fmt.Printf("mopsoak: FAIL: mopctl ring via survivor: err=%v (no dead member shown)\n", err)
		ok = false
	}
	if !strings.Contains(string(ring), "replica sets") {
		fmt.Printf("mopsoak: FAIL: mopctl ring shows no replica-set table\n")
		ok = false
	}

	// Survivors must drain cleanly on SIGTERM.
	for _, p := range survivors {
		_ = p.cmd.Process.Signal(syscall.SIGTERM)
	}
	for _, p := range survivors {
		select {
		case <-p.done:
			if code := p.cmd.ProcessState.ExitCode(); code != 0 {
				fmt.Printf("mopsoak: FAIL: %s exited %d on SIGTERM\n", p.id, code)
				ok = false
			}
		case <-time.After(30 * time.Second):
			fmt.Printf("mopsoak: FAIL: %s did not exit on SIGTERM\n", p.id)
			p.kill9()
			ok = false
		}
	}
	if ok {
		fmt.Printf("mopsoak: cluster phase OK: %d cells journaled at the kill, %v resumed + %v re-run on the adopter, %v holes repaired by anti-entropy, checksums identical\n",
			len(journaled), resumed, rerun, repairs)
	}
	return ok
}

// referenceChecksums runs the sweep uninterrupted in-process and returns
// bench|config -> architectural checksum.
func referenceChecksums() (map[string]string, bool) {
	cfgs := map[string]service.ConfigSpec{}
	for _, s := range clusterScheds {
		cfgs[s] = service.ConfigSpec{Sched: s}
	}
	svc, err := service.New(service.Options{Workers: 4})
	if err != nil {
		fmt.Printf("mopsoak: FAIL: reference service: %v\n", err)
		return nil, false
	}
	svc.Start()
	defer svc.Close()
	j, err := svc.SubmitMatrix(service.MatrixRequest{
		Benchmarks: clusterBenches,
		Configs:    cfgs,
		MaxInsts:   clusterInsts,
	})
	if err != nil {
		fmt.Printf("mopsoak: FAIL: reference submit: %v\n", err)
		return nil, false
	}
	<-j.Done()
	st := j.Status(true)
	if st.State != service.JobDone || st.Failed != 0 {
		fmt.Printf("mopsoak: FAIL: reference sweep %s (%d failed)\n", st.State, st.Failed)
		return nil, false
	}
	out := map[string]string{}
	for _, cr := range st.Results {
		out[cr.Bench+"|"+cr.Config] = cr.Checksum
	}
	return out, true
}

// clusterMembers binds a loopback port per node ID and returns the
// member map mopserve expects. The listeners are closed immediately; the
// children re-bind the same ports moments later.
func clusterMembers(ids []string) (map[string]string, error) {
	members := map[string]string{}
	var ls []net.Listener
	defer func() {
		for _, l := range ls {
			l.Close()
		}
	}()
	for _, id := range ids {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		ls = append(ls, l)
		members[id] = "http://" + l.Addr().String()
	}
	return members, nil
}

// startNode boots one mopserve child. Extra args come last so a caller
// can switch the node into join mode ("-join", seed, "-advertise", url)
// — when they do, the full -peers list is omitted (the two are mutually
// exclusive; the handshake supplies the membership).
func startNode(bin, id string, members map[string]string, cdir string, workers int, extra ...string) (*proc, error) {
	args := []string{
		"-addr", strings.TrimPrefix(members[id], "http://"),
		"-node", id,
		"-cluster-dir", cdir,
		"-workers", strconv.Itoa(workers),
		"-queue", "64",
		"-replication", "2",
		"-repair-interval", "2s",
		// Fast failure detection so the soak converges in CI time.
		"-hb-interval", "100ms",
		"-suspect-after", "500ms",
		"-dead-after", "1500ms",
	}
	joining := false
	for _, a := range extra {
		if a == "-join" {
			joining = true
		}
	}
	if !joining {
		var peers []string
		for mid, url := range members {
			peers = append(peers, mid+"="+url)
		}
		sort.Strings(peers)
		args = append(args, "-peers", strings.Join(peers, ","))
	}
	args = append(args, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &proc{id: id, base: members[id], cmd: cmd, done: make(chan error, 1)}
	go func() { p.done <- cmd.Wait() }()
	return p, nil
}

// awaitMembers polls a node's ring view until it knows the wanted
// member count — how the soak observes a join converging.
func awaitMembers(p *proc, want int, deadline time.Duration) bool {
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		resp, err := http.Get(p.base + "/cluster/v1/ring")
		if err == nil {
			var info cluster.RingInfo
			decodeErr := json.NewDecoder(resp.Body).Decode(&info)
			resp.Body.Close()
			if decodeErr == nil && len(info.Members) >= want {
				return true
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return false
}

func waitHealthy(p *proc, deadline time.Duration) bool {
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		resp, err := http.Get(p.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return true
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return false
}

// journalProgress reads a node's journal without opening it for append
// (the node may be running, or freshly SIGKILLed with a torn tail) and
// reports the distinct completed-cell fingerprints plus whether the job
// has a done record.
func journalProgress(jpath, jobID string) (cells map[string]bool, jobDone bool) {
	cells = map[string]bool{}
	recs, err := journal.Load(jpath)
	if err != nil {
		return cells, false
	}
	for _, r := range recs {
		if strings.HasPrefix(r.Key, service.KeyCell) {
			cells[strings.TrimPrefix(r.Key, service.KeyCell)] = true
		}
		if r.Key == service.KeyJobDone+jobID {
			jobDone = true
		}
	}
	return cells, jobDone
}

// awaitAdoptedJob polls the survivors until one of them reports the dead
// node's job in a terminal state; returns that status and the adopter's
// base URL.
func awaitAdoptedJob(survivors []*proc, jobID string, deadline time.Duration) (*service.JobStatus, string) {
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		for _, p := range survivors {
			resp, err := http.Get(p.base + "/v1/jobs/" + jobID)
			if err != nil {
				continue
			}
			var st service.JobStatus
			decodeErr := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || decodeErr != nil {
				continue
			}
			switch st.State {
			case service.JobDone, service.JobFailed, service.JobInterrupted:
				return &st, p.base
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return nil, ""
}

func fetchMetrics(base string) string {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

// metricValue extracts one series from a Prometheus text exposition.
func metricValue(body, series string) float64 {
	for _, line := range strings.Split(body, "\n") {
		rest, ok := strings.CutPrefix(line, series)
		if !ok || !strings.HasPrefix(rest, " ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err == nil {
			return v
		}
	}
	return 0
}
