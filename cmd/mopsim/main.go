// Command mopsim runs one benchmark under one scheduler configuration and
// prints detailed timing results.
//
// Usage:
//
//	mopsim -bench gzip -sched mop -wakeup wired-or -iq 32 -insts 1000000
//	mopsim -bench gzip -sched mop -check              # lockstep verification
//	mopsim -bench gzip -check -inject-fault 5000      # prove the oracle bites
//	mopsim -bench gzip -timeout 30s                   # wall-clock bound
//	mopsim -bench gzip -insts 20000 -faults all       # fault-injection campaign
//
// Schedulers: base, 2cycle, mop, sf-squash, sf-scoreboard.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"macroop/internal/checker"
	"macroop/internal/config"
	"macroop/internal/core"
	"macroop/internal/fault"
	"macroop/internal/functional"
	"macroop/internal/workload"
)

func main() {
	var (
		bench    = flag.String("bench", "gzip", "benchmark name ("+strings.Join(workload.Names(), ", ")+")")
		sched    = flag.String("sched", "base", "scheduler: base, 2cycle, mop, sf-squash, sf-scoreboard")
		wakeup   = flag.String("wakeup", "wired-or", "MOP wakeup style: 2src, wired-or")
		iq       = flag.Int("iq", 32, "issue queue entries (0 = unrestricted)")
		stages   = flag.Int("stages", 1, "extra MOP formation stages (0..2)")
		delay    = flag.Int("detect-delay", 3, "MOP detection delay in cycles")
		insts    = flag.Int64("insts", 1_000_000, "committed instructions to simulate")
		noIndep  = flag.Bool("no-indep", false, "disable independent MOP grouping")
		trace    = flag.Int("trace", 0, "print a pipeline timeline for the first N instructions")
		noFilter = flag.Bool("no-filter", false, "disable the last-arriving operand filter")
		check    = flag.Bool("check", false, "attach the lockstep differential oracle (cross-checks every commit against the functional model)")
		inject   = flag.Int64("inject-fault", -1, "corrupt the dynamic instruction at/after this sequence number (with -check: demonstrates divergence detection)")
		timeout  = flag.Duration("timeout", 0, "wall-clock limit for the simulation (0 = none); expiry aborts with a typed cancellation error")
		watchdog = flag.Int("watchdog-cycles", 0, "forward-progress watchdog window in cycles (0 = default, negative = disabled)")
		faults   = flag.String("faults", "", "run a fault-injection campaign on the selected benchmark instead of one simulation: \"all\" or a comma-separated subset of "+strings.Join(faultNames(), ", "))
	)
	flag.Parse()

	if *faults != "" {
		runCampaign(*bench, *faults, *insts, *watchdog)
		return
	}

	m := config.Default().WithIQ(*iq).WithWatchdog(*watchdog)
	switch *sched {
	case "base":
		m = m.WithSched(config.SchedBase)
	case "2cycle":
		m = m.WithSched(config.SchedTwoCycle)
	case "mop":
		mc := config.DefaultMOP()
		mc.ExtraFormationStages = *stages
		mc.DetectionDelay = *delay
		mc.GroupIndependent = !*noIndep
		mc.LastArrivingFilter = !*noFilter
		switch *wakeup {
		case "2src":
			mc.Wakeup = config.WakeupCAM2Src
		case "wired-or":
			mc.Wakeup = config.WakeupWiredOR
		default:
			fatalf("unknown wakeup style %q", *wakeup)
		}
		m = m.WithMOP(mc)
	case "sf-squash":
		m = m.WithSched(config.SchedSelectFreeSquashDep)
	case "sf-scoreboard":
		m = m.WithSched(config.SchedSelectFreeScoreboard)
	default:
		fatalf("unknown scheduler %q", *sched)
	}

	prof, err := workload.ByName(*bench)
	if err != nil {
		fatalf("%v", err)
	}
	prog, err := workload.Generate(prof)
	if err != nil {
		fatalf("generate: %v", err)
	}
	var src functional.Source = functional.NewExecutor(prog)
	if *inject >= 0 {
		src = &checker.CorruptSource{Src: src, At: *inject}
	}
	c, err := core.NewFromSource(m, prog.Name, src)
	if err != nil {
		fatalf("configure: %v", err)
	}
	var tl *core.Timeline
	if *trace > 0 {
		tl = core.NewTimeline(*trace)
		c.SetTracer(tl)
	}
	var k *checker.Checker
	if *check {
		k = checker.New(prog, m.IQEntries, *insts)
		c.SetHooks(k)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := c.RunContext(ctx, *insts)
	if err != nil {
		fatalf("simulate: %v", err)
	}
	if tl != nil {
		fmt.Println(tl)
	}
	fmt.Print(res)
	if k != nil {
		s := k.Summary()
		fmt.Printf("  check: ok, %d commits cross-checked, checksum %016x\n", s.Commits, s.Checksum)
	}
}

func faultNames() []string {
	ks := fault.Kinds()
	names := make([]string, len(ks))
	for i, k := range ks {
		names[i] = k.String()
	}
	return names
}

// runCampaign injects the selected fault kinds into the benchmark under
// every scheduler model and reports which verification layer caught each.
// Exits nonzero if any fired fault escaped detection.
func runCampaign(bench, kinds string, insts int64, watchdog int) {
	cfg := fault.DefaultCampaign()
	cfg.Benchmarks = []string{bench}
	cfg.MaxInsts = insts
	if watchdog != 0 {
		cfg.WatchdogCycles = watchdog
	}
	if kinds != "all" {
		cfg.Faults = nil
		for _, s := range strings.Split(kinds, ",") {
			k, err := fault.ParseKind(strings.TrimSpace(s))
			if err != nil {
				fatalf("%v", err)
			}
			cfg.Faults = append(cfg.Faults, k)
		}
	}
	start := time.Now()
	res, err := fault.RunCampaign(cfg)
	if err != nil {
		fatalf("campaign: %v", err)
	}
	fmt.Print(res)
	fmt.Printf("(%d cells in %.1fs)\n", len(res.Outcomes), time.Since(start).Seconds())
	if esc := res.Escapes(); len(esc) > 0 {
		fatalf("%d fault(s) escaped detection", len(esc))
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mopsim: "+format+"\n", args...)
	os.Exit(1)
}
