// Command mopsim runs one benchmark under one scheduler configuration and
// prints detailed timing results.
//
// Usage:
//
//	mopsim -bench gzip -sched mop -wakeup wired-or -iq 32 -insts 1000000
//	mopsim -bench gzip -sched mop -check              # lockstep verification
//	mopsim -bench gzip -check -inject-fault 5000      # prove the oracle bites
//	mopsim -bench gzip -timeout 30s                   # wall-clock bound
//	mopsim -bench gzip -insts 20000 -faults all       # fault-injection campaign
//	mopsim -faults all -journal c.journal             # crash-safe campaign
//	mopsim -faults all -journal c.journal -resume     # continue after a crash
//	mopsim -faults all -shrink                        # minimize detections to repros/
//	mopsim -repro repros/gzip-base-dropped-wakeup.json  # replay a bundle
//	mopsim -bench gzip -cpuprofile cpu.pprof          # profile the simulation
//
// Schedulers: base, 2cycle, mop, sf-squash, sf-scoreboard.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"
	"time"

	"macroop/internal/checker"
	"macroop/internal/config"
	"macroop/internal/core"
	"macroop/internal/fault"
	"macroop/internal/functional"
	"macroop/internal/journal"
	"macroop/internal/shrink"
	"macroop/internal/workload"
)

func main() {
	var (
		bench    = flag.String("bench", "gzip", "benchmark name ("+strings.Join(workload.Names(), ", ")+")")
		sched    = flag.String("sched", "base", "scheduler: base, 2cycle, mop, sf-squash, sf-scoreboard")
		kernel   = flag.String("kernel", "bitset", "scheduler kernel: bitset (bit-parallel SoA, default) or entry (linked reference); results are identical, only speed differs")
		layout   = flag.String("layout", "soa", "core pipeline layout: soa (uop-arena, default) or entry (pointer-linked reference); results are identical, only speed differs")
		wakeup   = flag.String("wakeup", "wired-or", "MOP wakeup style: 2src, wired-or")
		iq       = flag.Int("iq", 32, "issue queue entries (0 = unrestricted)")
		stages   = flag.Int("stages", 1, "extra MOP formation stages (0..2)")
		delay    = flag.Int("detect-delay", 3, "MOP detection delay in cycles")
		insts    = flag.Int64("insts", 1_000_000, "committed instructions to simulate")
		noIndep  = flag.Bool("no-indep", false, "disable independent MOP grouping")
		trace    = flag.Int("trace", 0, "print a pipeline timeline for the first N instructions")
		noFilter = flag.Bool("no-filter", false, "disable the last-arriving operand filter")
		check    = flag.Bool("check", false, "attach the lockstep differential oracle (cross-checks every commit against the functional model)")
		inject   = flag.Int64("inject-fault", -1, "corrupt the dynamic instruction at/after this sequence number (with -check: demonstrates divergence detection)")
		timeout  = flag.Duration("timeout", 0, "wall-clock limit for the simulation (0 = none); expiry aborts with a typed cancellation error")
		watchdog = flag.Int("watchdog-cycles", 0, "forward-progress watchdog window in cycles (0 = default, negative = disabled)")
		faults   = flag.String("faults", "", "run a fault-injection campaign on the selected benchmark instead of one simulation: \"all\" or a comma-separated subset of "+strings.Join(faultNames(), ", "))
		jpath    = flag.String("journal", "", "write-ahead journal for the campaign (-faults): completed cells are durably recorded as they finish, and a re-run with -resume skips them")
		resume   = flag.Bool("resume", false, "continue a previous campaign from the -journal file (without this flag an existing non-empty journal is refused)")
		repro    = flag.String("repro", "", "replay a repro bundle (JSON, written by -shrink) and verify it still fails exactly as recorded; all other flags are ignored")
		doShrink = flag.Bool("shrink", false, "minimize failures into replayable repro bundles: every detected campaign cell (with -faults), or the single failing run otherwise")
		shrOut   = flag.String("shrink-out", "", "where -shrink writes bundles (default repro.json, or the repros/ directory for a campaign)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with go tool pprof)")
		memProf  = flag.String("memprofile", "", "write an allocation profile at exit to this file (inspect with go tool pprof -sample_index=alloc_objects)")
		exeTrace = flag.String("exectrace", "", "write a runtime execution trace to this file (inspect with go tool trace); -trace prints the pipeline timeline instead")
	)
	flag.Parse()
	validateFlags(*sched, *repro, *faults)
	defer startProfiling(*cpuProf, *memProf, *exeTrace)()

	if *repro != "" {
		replayBundle(*repro)
		return
	}

	if *faults != "" {
		runCampaign(*bench, *faults, *insts, *watchdog, openJournal(*jpath, *resume), *doShrink, *shrOut)
		return
	}

	m := config.Default().WithIQ(*iq).WithWatchdog(*watchdog)
	switch *sched {
	case "base":
		m = m.WithSched(config.SchedBase)
	case "2cycle":
		m = m.WithSched(config.SchedTwoCycle)
	case "mop":
		mc := config.DefaultMOP()
		mc.ExtraFormationStages = *stages
		mc.DetectionDelay = *delay
		mc.GroupIndependent = !*noIndep
		mc.LastArrivingFilter = !*noFilter
		switch *wakeup {
		case "2src":
			mc.Wakeup = config.WakeupCAM2Src
		case "wired-or":
			mc.Wakeup = config.WakeupWiredOR
		default:
			fatalf("unknown wakeup style %q", *wakeup)
		}
		m = m.WithMOP(mc)
	case "sf-squash":
		m = m.WithSched(config.SchedSelectFreeSquashDep)
	case "sf-scoreboard":
		m = m.WithSched(config.SchedSelectFreeScoreboard)
	default:
		fatalf("unknown scheduler %q", *sched)
	}
	switch *kernel {
	case "bitset":
		m = m.WithKernel(config.KernelBitset)
	case "entry":
		m = m.WithKernel(config.KernelEntry)
	default:
		fatalf("unknown kernel %q", *kernel)
	}
	switch *layout {
	case "soa":
		m = m.WithLayout(config.LayoutSoA)
	case "entry":
		m = m.WithLayout(config.LayoutEntry)
	default:
		fatalf("unknown layout %q", *layout)
	}

	prof, err := workload.ByName(*bench)
	if err != nil {
		fatalf("%v", err)
	}
	prog, err := workload.Generate(prof)
	if err != nil {
		fatalf("generate: %v", err)
	}
	var src functional.Source = functional.NewExecutor(prog)
	if *inject >= 0 {
		src = &checker.CorruptSource{Src: src, At: *inject}
	}
	c, err := core.NewFromSource(m, prog.Name, src)
	if err != nil {
		fatalf("configure: %v", err)
	}
	var tl *core.Timeline
	if *trace > 0 {
		tl = core.NewTimeline(*trace)
		c.SetTracer(tl)
	}
	var k *checker.Checker
	if *check {
		k = checker.New(prog, m.IQEntries, *insts)
		c.SetHooks(k)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := c.RunContext(ctx, *insts)
	if err != nil {
		if *doShrink {
			out := *shrOut
			if out == "" {
				out = "repro.json"
			}
			b := shrink.New(*bench, m, *insts)
			b.Check = *check
			if *inject >= 0 {
				at := *inject
				b.CorruptAt = &at
			}
			shrinkTo(b, out)
		}
		fatalf("simulate: %v", err)
	}
	if tl != nil {
		fmt.Println(tl)
	}
	fmt.Print(res)
	if k != nil {
		s := k.Summary()
		fmt.Printf("  check: ok, %d commits cross-checked, checksum %016x\n", s.Commits, s.Checksum)
	}
}

// validateFlags cross-checks flag combinations so misuse fails fast with
// a pointed message instead of silently ignoring a flag (or worse,
// silently changing what ran — an unchecked -inject-fault corrupts the
// simulation with nothing watching for the divergence).
func validateFlags(sched, repro, faults string) {
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	if flag.NArg() > 0 {
		fatalf("unexpected argument %q: mopsim takes flags only (did you mean -bench %s?)", flag.Arg(0), flag.Arg(0))
	}
	if repro != "" {
		// Replay is self-contained: the bundle records the machine, budget
		// and fault. Any other simulation flag would be silently ignored.
		for name := range set {
			switch name {
			case "repro", "cpuprofile", "memprofile", "exectrace":
			default:
				fatalf("-%s conflicts with -repro: a repro bundle fixes the whole configuration", name)
			}
		}
		return
	}
	if set["resume"] && !set["journal"] {
		fatalf("-resume needs -journal: there is no journal to continue from")
	}
	if set["shrink-out"] && !set["shrink"] {
		fatalf("-shrink-out needs -shrink: nothing would be written there")
	}
	if set["inject-fault"] && !set["check"] && faults == "" {
		fatalf("-inject-fault needs -check: without the oracle the corruption runs silently and the timing numbers are garbage")
	}
	if faults != "" {
		// A campaign sweeps every scheduler and drives the oracle itself.
		for _, name := range []string{"sched", "wakeup", "iq", "stages", "detect-delay", "no-indep", "no-filter", "trace", "check", "inject-fault", "timeout"} {
			if set[name] {
				fatalf("-%s conflicts with -faults: the campaign sweeps all schedulers with the oracle attached", name)
			}
		}
		return
	}
	if set["journal"] {
		fatalf("-journal only applies to campaign mode (-faults); sweep journaling lives in moppaper -journal")
	}
	if sched != "mop" {
		for _, name := range []string{"wakeup", "stages", "detect-delay", "no-indep", "no-filter"} {
			if set[name] {
				fatalf("-%s only applies to -sched mop (got -sched %s)", name, sched)
			}
		}
	}
}

// startProfiling starts the requested CPU profile and execution trace and
// returns the shutdown function that also writes the allocation profile.
func startProfiling(cpu, mem, trace string) func() {
	var stops []func()
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if trace != "" {
		f, err := os.Create(trace)
		if err != nil {
			fatalf("exectrace: %v", err)
		}
		if err := rtrace.Start(f); err != nil {
			fatalf("exectrace: %v", err)
		}
		stops = append(stops, func() {
			rtrace.Stop()
			f.Close()
		})
	}
	return func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fatalf("memprofile: %v", err)
			}
			runtime.GC() // settle the heap so the profile shows retained objects accurately
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatalf("memprofile: %v", err)
			}
			f.Close()
		}
	}
}

func faultNames() []string {
	ks := fault.Kinds()
	names := make([]string, len(ks))
	for i, k := range ks {
		names[i] = k.String()
	}
	return names
}

// openJournal opens (or creates) a campaign journal. Continuing into an
// existing non-empty journal changes behaviour — already-recorded cells
// are skipped — so that requires the explicit -resume opt-in.
func openJournal(path string, resume bool) *journal.Journal {
	if path == "" {
		return nil
	}
	j, err := journal.Open(path)
	if err != nil {
		fatalf("journal: %v", err)
	}
	if j.Len() > 0 && !resume {
		fatalf("journal %s already holds %d record(s); pass -resume to continue it, or remove the file to start over", path, j.Len())
	}
	return j
}

// replayBundle replays a shrunken repro bundle and verifies it fails
// exactly as recorded.
func replayBundle(path string) {
	b, err := shrink.Load(path)
	if err != nil {
		fatalf("repro: %v", err)
	}
	if err := b.Verify(); err != nil {
		fatalf("repro %s: %v", path, err)
	}
	fmt.Printf("repro %s: %s/%s reproduced %s (fingerprint %s, %d insts)\n",
		path, b.Benchmark, b.Machine.Sched, b.ExpectKind, b.ExpectFingerprint, b.MaxInsts)
}

// shrinkTo minimizes a failing configuration and writes the bundle.
func shrinkTo(b *shrink.Bundle, out string) {
	min, err := shrink.Minimize(b)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mopsim: shrink: %v\n", err)
		return
	}
	if err := min.Save(out); err != nil {
		fmt.Fprintf(os.Stderr, "mopsim: shrink: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "mopsim: wrote %s (%s, maxInsts %d -> %d)\n",
		out, min.ExpectKind, min.OriginalMaxInsts, min.MaxInsts)
}

// runCampaign injects the selected fault kinds into the benchmark under
// every scheduler model and reports which verification layer caught each.
// Exits nonzero if any fired fault escaped detection.
func runCampaign(bench, kinds string, insts int64, watchdog int, j *journal.Journal, doShrink bool, shrOut string) {
	cfg := fault.DefaultCampaign()
	cfg.Benchmarks = []string{bench}
	cfg.MaxInsts = insts
	cfg.Journal = j
	if j != nil {
		defer j.Close()
	}
	if watchdog != 0 {
		cfg.WatchdogCycles = watchdog
	}
	if kinds != "all" {
		cfg.Faults = nil
		for _, s := range strings.Split(kinds, ",") {
			k, err := fault.ParseKind(strings.TrimSpace(s))
			if err != nil {
				fatalf("%v", err)
			}
			cfg.Faults = append(cfg.Faults, k)
		}
	}
	start := time.Now()
	res, err := fault.RunCampaign(cfg)
	if err != nil {
		fatalf("campaign: %v", err)
	}
	fmt.Print(res)
	fmt.Printf("(%d cells in %.1fs, %d simulated here)\n", len(res.Outcomes), time.Since(start).Seconds(), res.Executed)
	if doShrink {
		dir := shrOut
		if dir == "" {
			dir = "repros"
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatalf("shrink: %v", err)
		}
		for _, o := range res.Outcomes {
			if !o.Fired || !o.Detected {
				continue
			}
			b := shrink.New(o.Bench, config.Default().WithSched(o.Sched).WithWatchdog(cfg.WatchdogCycles), cfg.MaxInsts)
			b.Fault = &shrink.FaultSpec{Kind: o.Fault.String(), TriggerCommits: cfg.TriggerCommits}
			shrinkTo(b, filepath.Join(dir, fmt.Sprintf("%s-%s-%s.json", o.Bench, o.Sched, o.Fault)))
		}
	}
	if esc := res.Escapes(); len(esc) > 0 {
		fatalf("%d fault(s) escaped detection", len(esc))
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mopsim: "+format+"\n", args...)
	os.Exit(1)
}
