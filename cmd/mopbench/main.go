// Command mopbench measures simulator performance — not simulated-machine
// performance — and records it in a machine-readable trajectory file so
// perf regressions are visible across commits.
//
// Two sections are produced, each measured under both scheduler kernels
// (the bit-parallel "bitset" default and the retained "entry" reference):
//
//   - configs: one steady-state measurement per scheduler model
//     (baseline, 2-cycle, MOP-CAM, MOP-wired-OR, select-free) on one
//     benchmark, reporting simulated uops/sec, cycles/sec, and — after a
//     warm-up run that grows every pool and scratch buffer — allocations
//     and bytes per simulated cycle. The steady-state cycle loop is
//     required to be allocation-free under either kernel; the run exits
//     non-zero when any config exceeds -max-allocs-per-cycle.
//   - table2: the end-to-end Table 2 experiment (every benchmark, base
//     scheduler, two queue sizes), the same work BenchmarkTable2 does,
//     reporting aggregate simulated uops/sec. The bitset kernel's number
//     is the headline tracked across PRs; the entry kernel's rides along
//     as the baseline, and the run exits non-zero if the bitset kernel
//     falls below -min-kernel-speedup times it.
//
// Usage:
//
//	go run ./cmd/mopbench                   # full suite -> BENCH_core.json
//	go run ./cmd/mopbench -short            # CI smoke (reduced budgets)
//	go run ./cmd/mopbench -out /tmp/b.json  # write elsewhere (-o is an alias)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"macroop/internal/config"
	"macroop/internal/core"
	"macroop/internal/experiments"
	"macroop/internal/program"
	"macroop/internal/workload"
)

// ConfigResult is one steady-state measurement of the cycle loop.
type ConfigResult struct {
	Name           string  `json:"name"`
	Kernel         string  `json:"kernel"`
	Benchmark      string  `json:"benchmark"`
	Insts          int64   `json:"insts"`
	Cycles         int64   `json:"cycles"`
	WallSec        float64 `json:"wall_sec"`
	UopsPerSec     float64 `json:"uops_per_sec"`
	CyclesPerSec   float64 `json:"cycles_per_sec"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	BytesPerCycle  float64 `json:"bytes_per_cycle"`
}

// Table2Result is the end-to-end experiment measurement.
type Table2Result struct {
	InstsPerCell int64   `json:"insts_per_cell"`
	Cells        int     `json:"cells"`
	Committed    int64   `json:"committed"`
	WallSec      float64 `json:"wall_sec"`
	UopsPerSec   float64 `json:"uops_per_sec"`
}

// Report is the BENCH_core.json schema.
type Report struct {
	GoVersion string         `json:"go_version"`
	Short     bool           `json:"short"`
	Configs   []ConfigResult `json:"configs"`
	// Table2 is the bitset (default) kernel; Table2Entry the reference
	// kernel on identical work; KernelSpeedup their uops/sec ratio.
	Table2        Table2Result `json:"table2"`
	Table2Entry   Table2Result `json:"table2_entry"`
	KernelSpeedup float64      `json:"kernel_speedup"`
}

func schedConfigs() []struct {
	name string
	m    config.Machine
} {
	camMOP := config.DefaultMOP()
	camMOP.Wakeup = config.WakeupCAM2Src
	worMOP := config.DefaultMOP()
	worMOP.Wakeup = config.WakeupWiredOR
	return []struct {
		name string
		m    config.Machine
	}{
		{"baseline", config.Default()},
		{"two-cycle", config.Default().WithSched(config.SchedTwoCycle)},
		{"mop-cam", config.Default().WithMOP(camMOP)},
		{"mop-wired-or", config.Default().WithMOP(worMOP)},
		{"select-free", config.Default().WithSched(config.SchedSelectFreeScoreboard)},
	}
}

var kernels = []config.SchedKernel{config.KernelBitset, config.KernelEntry}

// allocWindow is the number of bare cycles stepped between MemStats
// snapshots for the allocs/cycle gate. Large enough that a per-cycle
// leak dominates any measurement noise, small enough to stay inside the
// region the warm-up leg has already paged in.
const allocWindow = 20_000

// allocWindows is how many alloc windows are sampled per config; the
// minimum is reported.
const allocWindows = 3

// measureConfig runs one (scheduler config, kernel) cell: warm-up,
// allocation windows, then a timed throughput leg.
func measureConfig(name, bench string, m config.Machine, prog *program.Program, insts int64) (ConfigResult, error) {
	c, err := core.New(m, prog)
	if err != nil {
		return ConfigResult{}, fmt.Errorf("%s/%v: configure: %w", name, m.Kernel, err)
	}
	// Warm-up leg: grow every pool, ring, and scratch buffer (and the
	// functional model's memory pages the warm window touches) before
	// measuring. The returned result aliases the core's own struct, so
	// snapshot the cumulative counters by value.
	warm := insts / 5
	if warm < 30_000 {
		warm = 30_000
	}
	if _, err := c.Run(warm); err != nil {
		return ConfigResult{}, fmt.Errorf("%s/%v: warmup: %w", name, m.Kernel, err)
	}

	// Allocation window: a bounded span of bare cycles right after
	// warm-up, so the allocs/cycle gate covers exactly the steady-state
	// cycle loop — the property the zero-alloc tests assert. An
	// unmeasured settle leg first absorbs any last high-water-mark
	// growth (a pool or scratch slice doubling once more as occupancy
	// peaks just past the warm-up point).
	if _, err := c.StepCycles(allocWindow); err != nil {
		return ConfigResult{}, fmt.Errorf("%s/%v: settle: %w", name, m.Kernel, err)
	}
	// Take the minimum over a few windows: the Go runtime itself makes
	// a rare tiny allocation on a background thread (e.g. the scavenger
	// re-arming its timer) that MemStats cannot distinguish from
	// simulator work. A real per-cycle leak shows up in every window;
	// one-off runtime noise cannot.
	var winAllocs, winBytes uint64
	var allocCycles int64
	for w := 0; w < allocWindows; w++ {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		cycles, err := c.StepCycles(allocWindow)
		if err != nil {
			return ConfigResult{}, fmt.Errorf("%s/%v: alloc window: %w", name, m.Kernel, err)
		}
		runtime.ReadMemStats(&after)
		allocs, bytes := after.Mallocs-before.Mallocs, after.TotalAlloc-before.TotalAlloc
		if w == 0 || allocs < winAllocs || (allocs == winAllocs && bytes < winBytes) {
			winAllocs, winBytes, allocCycles = allocs, bytes, cycles
		}
	}

	// Throughput leg: timed wall-clock run of insts further
	// instructions (Run's budget is cumulative).
	preCycles, preInsts := c.Progress()
	start := time.Now()
	res, err := c.Run(preInsts + insts)
	wall := time.Since(start).Seconds()
	if err != nil {
		return ConfigResult{}, fmt.Errorf("%s/%v: simulate: %w", name, m.Kernel, err)
	}

	measuredInsts := res.Committed - preInsts
	measuredCycles := res.Cycles - preCycles
	return ConfigResult{
		Name:           name,
		Kernel:         m.Kernel.String(),
		Benchmark:      bench,
		Insts:          measuredInsts,
		Cycles:         measuredCycles,
		WallSec:        wall,
		UopsPerSec:     float64(measuredInsts) / wall,
		CyclesPerSec:   float64(measuredCycles) / wall,
		AllocsPerCycle: float64(winAllocs) / float64(allocCycles),
		BytesPerCycle:  float64(winBytes) / float64(allocCycles),
	}, nil
}

// runTable2 runs the end-to-end Table 2 sweep under one kernel.
func runTable2(r *experiments.Runner, k config.SchedKernel, insts int64) (Table2Result, error) {
	start := time.Now()
	res, err := r.RunMatrix(map[string]config.Machine{
		"iq32":  config.Default().WithSched(config.SchedBase).WithKernel(k),
		"unres": config.Unrestricted().WithSched(config.SchedBase).WithKernel(k),
	})
	wall := time.Since(start).Seconds()
	if err != nil {
		return Table2Result{}, fmt.Errorf("table2/%v: %w", k, err)
	}
	var committed int64
	cells := 0
	for _, byCfg := range res {
		for _, cell := range byCfg {
			committed += cell.Committed
			cells++
		}
	}
	return Table2Result{
		InstsPerCell: insts,
		Cells:        cells,
		Committed:    committed,
		WallSec:      wall,
		UopsPerSec:   float64(committed) / wall,
	}, nil
}

func main() {
	var (
		out        = flag.String("out", "BENCH_core.json", "output file for the JSON report")
		outAlias   = flag.String("o", "", "alias for -out")
		short      = flag.Bool("short", false, "reduced budgets for CI smoke runs")
		insts      = flag.Int64("insts", 400_000, "per-config instruction budget (steady-state section)")
		t2Insts    = flag.Int64("table2-insts", 120_000, "per-cell instruction budget (table2 section)")
		bench      = flag.String("bench", "gzip", "benchmark for the steady-state section")
		maxAllocs  = flag.Float64("max-allocs-per-cycle", 0, "fail when any config allocates more than this per steady-state cycle")
		minSpeedup = flag.Float64("min-kernel-speedup", 0.9, "fail when the bitset kernel's table2 uops/sec falls below this multiple of the entry kernel's (slack absorbs wall-clock noise)")
	)
	flag.Parse()
	if *outAlias != "" {
		if ex := explicitly("out"); ex && *outAlias != *out {
			fatalf("-o and -out disagree (%q vs %q); pass one of them", *outAlias, *out)
		}
		*out = *outAlias
	}
	if *short {
		*insts = 100_000
		*t2Insts = 30_000
	}

	rep := Report{GoVersion: runtime.Version(), Short: *short}

	prof, err := workload.ByName(*bench)
	if err != nil {
		fatalf("%v", err)
	}
	prog, err := workload.Generate(prof)
	if err != nil {
		fatalf("generate: %v", err)
	}

	failed := false
	for _, sc := range schedConfigs() {
		for _, k := range kernels {
			cr, err := measureConfig(sc.name, *bench, sc.m.WithKernel(k), prog, *insts)
			if err != nil {
				fatalf("%v", err)
			}
			rep.Configs = append(rep.Configs, cr)
			status := "ok"
			if cr.AllocsPerCycle > *maxAllocs {
				status = fmt.Sprintf("FAIL (> %.3f)", *maxAllocs)
				failed = true
			}
			fmt.Printf("%-13s %-6s %8.0f kuops/s %9.0f kcycles/s %8.4f allocs/cycle %8.1f B/cycle  %s\n",
				sc.name, cr.Kernel, cr.UopsPerSec/1e3, cr.CyclesPerSec/1e3, cr.AllocsPerCycle, cr.BytesPerCycle, status)
		}
	}

	// End-to-end Table 2 sweep, the BenchmarkTable2 workload, once per
	// kernel on identical pre-generated programs.
	r := experiments.NewRunner(*t2Insts)
	for _, b := range workload.Names() {
		if _, err := r.Program(b); err != nil {
			fatalf("generate %s: %v", b, err)
		}
	}
	if rep.Table2, err = runTable2(r, config.KernelBitset, *t2Insts); err != nil {
		fatalf("%v", err)
	}
	if rep.Table2Entry, err = runTable2(r, config.KernelEntry, *t2Insts); err != nil {
		fatalf("%v", err)
	}
	rep.KernelSpeedup = rep.Table2.UopsPerSec / rep.Table2Entry.UopsPerSec
	fmt.Printf("table2 bitset %8.0f kuops/s (%d cells, %.2fs wall)\n",
		rep.Table2.UopsPerSec/1e3, rep.Table2.Cells, rep.Table2.WallSec)
	fmt.Printf("table2 entry  %8.0f kuops/s (%d cells, %.2fs wall)\n",
		rep.Table2Entry.UopsPerSec/1e3, rep.Table2Entry.Cells, rep.Table2Entry.WallSec)
	status := "ok"
	if rep.KernelSpeedup < *minSpeedup {
		status = fmt.Sprintf("FAIL (< %.2f)", *minSpeedup)
		failed = true
	}
	fmt.Printf("kernel speedup %.2fx  %s\n", rep.KernelSpeedup, status)

	f, err := os.Create(*out)
	if err != nil {
		fatalf("%v", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		fatalf("write: %v", err)
	}
	if err := f.Close(); err != nil {
		fatalf("write: %v", err)
	}
	fmt.Printf("wrote %s\n", *out)
	if failed {
		fmt.Fprintln(os.Stderr, "mopbench: perf gate failed (allocs/cycle or kernel speedup)")
		os.Exit(1)
	}
}

// explicitly reports whether the named flag was set on the command line
// (as opposed to holding its default).
func explicitly(name string) bool {
	found := false
	flag.Visit(func(f *flag.Flag) { found = found || f.Name == name })
	return found
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mopbench: "+format+"\n", args...)
	os.Exit(1)
}
