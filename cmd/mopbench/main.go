// Command mopbench measures simulator performance — not simulated-machine
// performance — and records it in a machine-readable trajectory file so
// perf regressions are visible across commits.
//
// Two sections are produced, each measured across both scheduler kernels
// (the bit-parallel "bitset" default and the retained "entry" reference)
// and both core layouts (the "soa" uop-arena default and the retained
// pointer-linked "entry" reference):
//
//   - configs: one steady-state measurement per scheduler model
//     (baseline, 2-cycle, MOP-CAM, MOP-wired-OR, select-free) on one
//     benchmark, reporting simulated uops/sec, cycles/sec, a per-stage
//     wall-time breakdown from a separate accounting leg, and — after a
//     warm-up run that grows every pool and scratch buffer — allocations
//     and bytes per simulated cycle. Throughput legs run interleaved
//     round-robin across all cells, best of -config-reps per cell, so a
//     transient host slowdown cannot land on one cell and skew the
//     cross-cell ratios the regression gate compares. The steady-state
//     cycle loop is required to be allocation-free under every
//     kernel×layout; the run exits non-zero when any config exceeds
//     -max-allocs-per-cycle.
//   - table2: the end-to-end Table 2 experiment (every benchmark, base
//     scheduler, two queue sizes), the same work BenchmarkTable2 does,
//     reporting aggregate simulated uops/sec. The bitset-kernel/soa-layout
//     number is the headline tracked across PRs; the entry kernel and the
//     entry layout ride along as baselines, and the run exits non-zero if
//     the headline falls below -min-kernel-speedup (resp.
//     -min-layout-speedup) times them.
//
// When -baseline names a previous report, the reports are compared using
// same-work normalization: each optimized configs cell is divided by its
// own model's reference-implementation corner (entry kernel, entry
// layout) from the same report, and the table2 section is compared via
// its recorded kernel/layout speedup ratios. Host speed and instruction
// budgets cancel out of every ratio, so a -short CI run gates cleanly
// against a committed full-budget baseline; any cell whose normalized
// throughput drops more than -max-regress fails the run. Cells absent
// from the baseline (new models, schema growth) are skipped.
//
// Usage:
//
//	go run ./cmd/mopbench                   # full suite -> BENCH_core.json
//	go run ./cmd/mopbench -short            # CI smoke (reduced budgets)
//	go run ./cmd/mopbench -out /tmp/b.json  # write elsewhere (-o is an alias)
//	go run ./cmd/mopbench -short -baseline BENCH_core.json   # regression gate
//	go run ./cmd/mopbench -cpuprofile cpu.prof -memprofile mem.prof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"macroop/internal/config"
	"macroop/internal/core"
	"macroop/internal/experiments"
	"macroop/internal/program"
	"macroop/internal/workload"
)

// ConfigResult is one steady-state measurement of the cycle loop.
type ConfigResult struct {
	Name           string              `json:"name"`
	Kernel         string              `json:"kernel"`
	Layout         string              `json:"layout"`
	Benchmark      string              `json:"benchmark"`
	Insts          int64               `json:"insts"`
	Cycles         int64               `json:"cycles"`
	WallSec        float64             `json:"wall_sec"`
	UopsPerSec     float64             `json:"uops_per_sec"`
	CyclesPerSec   float64             `json:"cycles_per_sec"`
	AllocsPerCycle float64             `json:"allocs_per_cycle"`
	BytesPerCycle  float64             `json:"bytes_per_cycle"`
	Stages         core.StageBreakdown `json:"stage_breakdown"`
}

// Table2Result is the end-to-end experiment measurement.
type Table2Result struct {
	InstsPerCell int64   `json:"insts_per_cell"`
	Cells        int     `json:"cells"`
	Committed    int64   `json:"committed"`
	WallSec      float64 `json:"wall_sec"`
	UopsPerSec   float64 `json:"uops_per_sec"`
}

// Report is the BENCH_core.json schema.
type Report struct {
	GoVersion string         `json:"go_version"`
	Short     bool           `json:"short"`
	Configs   []ConfigResult `json:"configs"`
	// Table2 is the default bitset kernel on the default soa layout.
	// Table2Entry swaps in the reference kernel, Table2EntryLayout the
	// reference core layout, each on identical work; the speedups are the
	// corresponding uops/sec ratios against Table2.
	Table2            Table2Result `json:"table2"`
	Table2Entry       Table2Result `json:"table2_entry"`
	Table2EntryLayout Table2Result `json:"table2_entry_layout"`
	KernelSpeedup     float64      `json:"kernel_speedup"`
	LayoutSpeedup     float64      `json:"layout_speedup"`
}

func schedConfigs() []struct {
	name string
	m    config.Machine
} {
	camMOP := config.DefaultMOP()
	camMOP.Wakeup = config.WakeupCAM2Src
	worMOP := config.DefaultMOP()
	worMOP.Wakeup = config.WakeupWiredOR
	return []struct {
		name string
		m    config.Machine
	}{
		{"baseline", config.Default()},
		{"two-cycle", config.Default().WithSched(config.SchedTwoCycle)},
		{"mop-cam", config.Default().WithMOP(camMOP)},
		{"mop-wired-or", config.Default().WithMOP(worMOP)},
		{"select-free", config.Default().WithSched(config.SchedSelectFreeScoreboard)},
	}
}

var kernels = []config.SchedKernel{config.KernelBitset, config.KernelEntry}

var layouts = []config.CoreLayout{config.LayoutSoA, config.LayoutEntry}

// refKernel/refLayout identify the reference-implementation corner used
// as the denominator of the cross-report regression gate: the retained
// entry kernel on the retained entry layout. Dividing each optimized
// cell by its own model's reference corner (measured in the same
// process, on the same work) cancels both host speed and instruction
// budgets, so reports from different machines and budget modes remain
// comparable.
var (
	refKernel = config.KernelEntry.String()
	refLayout = config.LayoutEntry.String()
)

// allocWindow is the number of bare cycles stepped between MemStats
// snapshots for the allocs/cycle gate. Large enough that a per-cycle
// leak dominates any measurement noise, small enough to stay inside the
// region the warm-up leg has already paged in.
const allocWindow = 20_000

// allocWindows is how many alloc windows are sampled per config; the
// minimum is reported.
const allocWindows = 3

// stageWindow is the number of cycles run with per-stage wall-time
// accounting on. The accounting leg is separate from (and precedes) the
// throughput leg because bracketing every stage with clock reads roughly
// doubles the cost of a cycle.
const stageWindow = 60_000

// cell is one (scheduler config, kernel, layout) measurement in flight:
// the live warmed core plus everything measured so far. Cells stay alive
// across the whole configs section so their timed throughput legs can be
// interleaved (see run).
type cell struct {
	m     config.Machine
	c     *core.Core
	insts int64
	res   ConfigResult
}

// prepareConfig runs one cell's untimed legs — warm-up, allocation
// windows, stage-accounting window — and returns the live cell ready for
// timed throughput legs.
func prepareConfig(name, bench string, m config.Machine, prog *program.Program, insts int64) (*cell, error) {
	c, err := core.New(m, prog)
	if err != nil {
		return nil, fmt.Errorf("%s/%v/%v: configure: %w", name, m.Kernel, m.Layout, err)
	}
	// Warm-up leg: grow every pool, ring, and scratch buffer (and the
	// functional model's memory pages the warm window touches) before
	// measuring. The returned result aliases the core's own struct, so
	// snapshot the cumulative counters by value.
	warm := insts / 5
	if warm < 30_000 {
		warm = 30_000
	}
	if _, err := c.Run(warm); err != nil {
		return nil, fmt.Errorf("%s/%v/%v: warmup: %w", name, m.Kernel, m.Layout, err)
	}

	// Allocation window: a bounded span of bare cycles right after
	// warm-up, so the allocs/cycle gate covers exactly the steady-state
	// cycle loop — the property the zero-alloc tests assert. An
	// unmeasured settle leg first absorbs any last high-water-mark
	// growth (a pool or scratch slice doubling once more as occupancy
	// peaks just past the warm-up point).
	if _, err := c.StepCycles(allocWindow); err != nil {
		return nil, fmt.Errorf("%s/%v/%v: settle: %w", name, m.Kernel, m.Layout, err)
	}
	// Take the minimum over a few windows: the Go runtime itself makes
	// a rare tiny allocation on a background thread (e.g. the scavenger
	// re-arming its timer) that MemStats cannot distinguish from
	// simulator work. A real per-cycle leak shows up in every window;
	// one-off runtime noise cannot.
	var winAllocs, winBytes uint64
	var allocCycles int64
	for w := 0; w < allocWindows; w++ {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		cycles, err := c.StepCycles(allocWindow)
		if err != nil {
			return nil, fmt.Errorf("%s/%v/%v: alloc window: %w", name, m.Kernel, m.Layout, err)
		}
		runtime.ReadMemStats(&after)
		allocs, bytes := after.Mallocs-before.Mallocs, after.TotalAlloc-before.TotalAlloc
		if w == 0 || allocs < winAllocs || (allocs == winAllocs && bytes < winBytes) {
			winAllocs, winBytes, allocCycles = allocs, bytes, cycles
		}
	}

	// Stage-accounting leg: attribute wall time to pipeline stages over a
	// bounded cycle window, then switch accounting back off so the timed
	// throughput leg below runs the unbracketed cycle loop.
	c.SetStageAccounting(true)
	if _, err := c.StepCycles(stageWindow); err != nil {
		return nil, fmt.Errorf("%s/%v/%v: stage window: %w", name, m.Kernel, m.Layout, err)
	}
	stages := c.StageBreakdown()
	c.SetStageAccounting(false)

	return &cell{
		m:     m,
		c:     c,
		insts: insts,
		res: ConfigResult{
			Name:           name,
			Kernel:         m.Kernel.String(),
			Layout:         m.Layout.String(),
			Benchmark:      bench,
			AllocsPerCycle: float64(winAllocs) / float64(allocCycles),
			BytesPerCycle:  float64(winBytes) / float64(allocCycles),
			Stages:         stages,
		},
	}, nil
}

// measureThroughput runs one timed wall-clock leg of the cell's
// instruction budget (Run's budget is cumulative) and keeps it if it
// beats the cell's best leg so far. Cells are measured by the caller in
// interleaved rounds for the same reason runTable2Corners interleaves
// its corners: the regression gate compares cells as ratios, and a
// transient host slowdown landing entirely on one back-to-back leg
// corrupts the ratio; best-of-N over interleaved legs cancels it.
func (cl *cell) measureThroughput() error {
	preCycles, preInsts := cl.c.Progress()
	start := time.Now()
	res, err := cl.c.Run(preInsts + cl.insts)
	wall := time.Since(start).Seconds()
	if err != nil {
		return fmt.Errorf("%s/%v/%v: simulate: %w", cl.res.Name, cl.m.Kernel, cl.m.Layout, err)
	}
	measuredInsts := res.Committed - preInsts
	measuredCycles := res.Cycles - preCycles
	if ups := float64(measuredInsts) / wall; ups > cl.res.UopsPerSec {
		cl.res.Insts = measuredInsts
		cl.res.Cycles = measuredCycles
		cl.res.WallSec = wall
		cl.res.UopsPerSec = ups
		cl.res.CyclesPerSec = float64(measuredCycles) / wall
	}
	return nil
}

// runTable2Corners measures the three table2 corners (default, reference
// kernel, reference layout) interleaved round-robin, keeping each
// corner's best of reps repetitions. Interleaving matters on busy hosts:
// the corners' throughputs are compared as ratios (kernel/layout
// speedups), and running each corner once back-to-back lets a transient
// host slowdown land entirely on one corner and corrupt the ratio by
// 2x. Best-of-N of interleaved runs cancels such transients instead.
func runTable2Corners(r *experiments.Runner, insts int64, reps int) (soa, entryK, entryL Table2Result, err error) {
	corners := []struct {
		k   config.SchedKernel
		l   config.CoreLayout
		dst *Table2Result
	}{
		{config.KernelBitset, config.LayoutSoA, &soa},
		{config.KernelEntry, config.LayoutSoA, &entryK},
		{config.KernelBitset, config.LayoutEntry, &entryL},
	}
	for rep := 0; rep < reps; rep++ {
		for _, c := range corners {
			res, rerr := runTable2(r, c.k, c.l, insts)
			if rerr != nil {
				err = rerr
				return
			}
			if rep == 0 || res.UopsPerSec > c.dst.UopsPerSec {
				*c.dst = res
			}
		}
	}
	return
}

// runTable2 runs the end-to-end Table 2 sweep under one kernel×layout.
func runTable2(r *experiments.Runner, k config.SchedKernel, l config.CoreLayout, insts int64) (Table2Result, error) {
	start := time.Now()
	res, err := r.RunMatrix(map[string]config.Machine{
		"iq32":  config.Default().WithSched(config.SchedBase).WithKernel(k).WithLayout(l),
		"unres": config.Unrestricted().WithSched(config.SchedBase).WithKernel(k).WithLayout(l),
	})
	wall := time.Since(start).Seconds()
	if err != nil {
		return Table2Result{}, fmt.Errorf("table2/%v/%v: %w", k, l, err)
	}
	var committed int64
	cells := 0
	for _, byCfg := range res {
		for _, cell := range byCfg {
			committed += cell.Committed
			cells++
		}
	}
	return Table2Result{
		InstsPerCell: insts,
		Cells:        cells,
		Committed:    committed,
		WallSec:      wall,
		UopsPerSec:   float64(committed) / wall,
	}, nil
}

// refUops finds the reference-implementation corner (entry kernel, entry
// layout) of the named config in a report — 0 if the report predates the
// layout dimension or lacks the row.
func refUops(rep *Report, name string) float64 {
	for i := range rep.Configs {
		c := &rep.Configs[i]
		if c.Name == name && c.Kernel == refKernel && c.Layout == refLayout {
			return c.UopsPerSec
		}
	}
	return 0
}

// gateRegressions compares the two reports cell by cell using same-work
// normalization: each configs cell is divided by the same model's
// reference-implementation corner (entry kernel, entry layout) from its
// own report, and the table2 section is compared via its recorded
// kernel/layout speedup ratios. Both cells of every ratio measure the
// same simulated work in the same process, so host speed and instruction
// budgets cancel — what is gated is precisely the optimized
// implementations' advantage over the retained references, the thing a
// perf PR can silently lose. Returns one message per cell whose
// normalized throughput dropped more than maxRegress; cells missing from
// the baseline are skipped, so schema growth never trips the gate.
func gateRegressions(rep, base *Report, maxRegress float64) []string {
	var fails []string
	check := func(cell string, now, then float64) {
		if then <= 0 || now <= 0 {
			return
		}
		if now < (1-maxRegress)*then {
			fails = append(fails, fmt.Sprintf("%s: normalized %.3f vs baseline %.3f (-%.1f%%)",
				cell, now, then, 100*(1-now/then)))
		}
	}
	baseCells := make(map[string]float64, len(base.Configs))
	for i := range base.Configs {
		c := &base.Configs[i]
		baseCells[c.Name+"/"+c.Kernel+"/"+c.Layout] = c.UopsPerSec
	}
	for i := range rep.Configs {
		c := &rep.Configs[i]
		if c.Kernel == refKernel && c.Layout == refLayout {
			continue // the reference corner itself is each ratio's denominator
		}
		newRef, oldRef := refUops(rep, c.Name), refUops(base, c.Name)
		if newRef <= 0 || oldRef <= 0 {
			continue // old-schema baseline: nothing comparable
		}
		key := c.Name + "/" + c.Kernel + "/" + c.Layout
		if bv := baseCells[key]; bv > 0 {
			check(key, c.UopsPerSec/newRef, bv/oldRef)
		}
	}
	check("table2 kernel_speedup", rep.KernelSpeedup, base.KernelSpeedup)
	check("table2 layout_speedup", rep.LayoutSpeedup, base.LayoutSpeedup)
	return fails
}

func main() {
	var (
		out        = flag.String("out", "BENCH_core.json", "output file for the JSON report")
		outAlias   = flag.String("o", "", "alias for -out")
		short      = flag.Bool("short", false, "reduced budgets for CI smoke runs")
		insts      = flag.Int64("insts", 400_000, "per-config instruction budget (steady-state section)")
		cfgReps    = flag.Int("config-reps", 3, "interleaved throughput legs per config cell (best-of-N, stabilizes cell ratios on busy hosts)")
		t2Insts    = flag.Int64("table2-insts", 120_000, "per-cell instruction budget (table2 section)")
		t2Reps     = flag.Int("table2-reps", 3, "interleaved repetitions per table2 corner (best-of-N, stabilizes the speedup ratios on busy hosts)")
		bench      = flag.String("bench", "gzip", "benchmark for the steady-state section")
		maxAllocs  = flag.Float64("max-allocs-per-cycle", 0, "fail when any config allocates more than this per steady-state cycle")
		minKSpeed  = flag.Float64("min-kernel-speedup", 0.9, "fail when the bitset kernel's table2 uops/sec falls below this multiple of the entry kernel's (slack absorbs wall-clock noise)")
		minLSpeed  = flag.Float64("min-layout-speedup", 0.9, "fail when the soa layout's table2 uops/sec falls below this multiple of the entry layout's (slack absorbs wall-clock noise)")
		baseline   = flag.String("baseline", "", "previous report to gate normalized per-cell regressions against")
		maxRegress = flag.Float64("max-regress", 0.15, "with -baseline: fail when any cell's reference-normalized uops/sec drops more than this fraction")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	)
	flag.Parse()
	if *outAlias != "" {
		if ex := explicitly("out"); ex && *outAlias != *out {
			fatalf("-o and -out disagree (%q vs %q); pass one of them", *outAlias, *out)
		}
		*out = *outAlias
	}
	if *short {
		*insts = 100_000
		*t2Insts = 30_000
		// Short throughput legs are cheap, so buy back their extra noise
		// with more best-of-N repetitions (unless reps were set by hand).
		if !explicitly("config-reps") {
			*cfgReps = 5
		}
		if !explicitly("table2-reps") {
			*t2Reps = 5
		}
	}

	// Load the baseline before anything can overwrite it: -out often
	// points at the same file the baseline was committed as.
	var base *Report
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fatalf("baseline: %v", err)
		}
		base = &Report{}
		if err := json.Unmarshal(raw, base); err != nil {
			fatalf("baseline %s: %v", *baseline, err)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
	}

	// The steady-state loop is allocation-free, so GC work is pure
	// measurement noise: collections only re-scan the long-lived arenas.
	// Raising the GC target makes throughput numbers noticeably more
	// stable without hiding leaks (the alloc windows force explicit GCs
	// and count mallocs, not collections).
	debug.SetGCPercent(400)

	failed := run(base, *out, *short, *insts, *cfgReps, *t2Insts, *t2Reps, *bench, *maxAllocs, *minKSpeed, *minLSpeed, *maxRegress)

	if *cpuprofile != "" {
		pprof.StopCPUProfile()
		fmt.Printf("wrote %s\n", *cpuprofile)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatalf("%v", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("memprofile: %v", err)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *memprofile)
	}
	if failed {
		os.Exit(1)
	}
}

// run executes the whole suite and returns whether any gate failed.
func run(base *Report, out string, short bool, insts int64, cfgReps int, t2Insts int64, t2Reps int, bench string, maxAllocs, minKSpeed, minLSpeed, maxRegress float64) bool {
	rep := Report{GoVersion: runtime.Version(), Short: short}

	prof, err := workload.ByName(bench)
	if err != nil {
		fatalf("%v", err)
	}
	prog, err := workload.Generate(prof)
	if err != nil {
		fatalf("generate: %v", err)
	}

	failed := false
	var cells []*cell
	for _, sc := range schedConfigs() {
		for _, k := range kernels {
			for _, l := range layouts {
				cl, err := prepareConfig(sc.name, bench, sc.m.WithKernel(k).WithLayout(l), prog, insts)
				if err != nil {
					fatalf("%v", err)
				}
				cells = append(cells, cl)
			}
		}
	}
	// Timed throughput legs, interleaved round-robin across all cells,
	// best of cfgReps per cell (see measureThroughput for why).
	for r := 0; r < cfgReps; r++ {
		for _, cl := range cells {
			if err := cl.measureThroughput(); err != nil {
				fatalf("%v", err)
			}
		}
	}
	for _, cl := range cells {
		cr := cl.res
		rep.Configs = append(rep.Configs, cr)
		status := "ok"
		if cr.AllocsPerCycle > maxAllocs {
			status = fmt.Sprintf("FAIL (> %.3f)", maxAllocs)
			failed = true
		}
		fmt.Printf("%-13s %-6s %-5s %8.0f kuops/s %9.0f kcycles/s %7.4f allocs/cycle %6.1f B/cycle  sched %2.0f%% insert %2.0f%% fetch %2.0f%%  %s\n",
			cr.Name, cr.Kernel, cr.Layout, cr.UopsPerSec/1e3, cr.CyclesPerSec/1e3,
			cr.AllocsPerCycle, cr.BytesPerCycle,
			100*cr.Stages.Sched, 100*cr.Stages.Insert, 100*cr.Stages.Fetch, status)
	}

	// End-to-end Table 2 sweep, the BenchmarkTable2 workload, once per
	// kernel×layout corner on identical pre-generated programs.
	r := experiments.NewRunner(t2Insts)
	for _, b := range workload.Names() {
		if _, err := r.Program(b); err != nil {
			fatalf("generate %s: %v", b, err)
		}
	}
	if rep.Table2, rep.Table2Entry, rep.Table2EntryLayout, err = runTable2Corners(r, t2Insts, t2Reps); err != nil {
		fatalf("%v", err)
	}
	rep.KernelSpeedup = rep.Table2.UopsPerSec / rep.Table2Entry.UopsPerSec
	rep.LayoutSpeedup = rep.Table2.UopsPerSec / rep.Table2EntryLayout.UopsPerSec
	fmt.Printf("table2 bitset/soa    %8.0f kuops/s (%d cells, %.2fs wall)\n",
		rep.Table2.UopsPerSec/1e3, rep.Table2.Cells, rep.Table2.WallSec)
	fmt.Printf("table2 entry-kernel  %8.0f kuops/s (%d cells, %.2fs wall)\n",
		rep.Table2Entry.UopsPerSec/1e3, rep.Table2Entry.Cells, rep.Table2Entry.WallSec)
	fmt.Printf("table2 entry-layout  %8.0f kuops/s (%d cells, %.2fs wall)\n",
		rep.Table2EntryLayout.UopsPerSec/1e3, rep.Table2EntryLayout.Cells, rep.Table2EntryLayout.WallSec)
	kStatus, lStatus := "ok", "ok"
	if rep.KernelSpeedup < minKSpeed {
		kStatus = fmt.Sprintf("FAIL (< %.2f)", minKSpeed)
		failed = true
	}
	if rep.LayoutSpeedup < minLSpeed {
		lStatus = fmt.Sprintf("FAIL (< %.2f)", minLSpeed)
		failed = true
	}
	fmt.Printf("kernel speedup %.2fx  %s\nlayout speedup %.2fx  %s\n",
		rep.KernelSpeedup, kStatus, rep.LayoutSpeedup, lStatus)

	if base != nil {
		fails := gateRegressions(&rep, base, maxRegress)
		for _, m := range fails {
			fmt.Printf("regression %s\n", m)
			failed = true
		}
		if len(fails) == 0 {
			fmt.Printf("baseline gate ok (max regress %.0f%%)\n", 100*maxRegress)
		}
	}

	f, err := os.Create(out)
	if err != nil {
		fatalf("%v", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		fatalf("write: %v", err)
	}
	if err := f.Close(); err != nil {
		fatalf("write: %v", err)
	}
	fmt.Printf("wrote %s\n", out)
	if failed {
		fmt.Fprintln(os.Stderr, "mopbench: perf gate failed (allocs/cycle, speedup, or baseline regression)")
	}
	return failed
}

// explicitly reports whether the named flag was set on the command line
// (as opposed to holding its default).
func explicitly(name string) bool {
	found := false
	flag.Visit(func(f *flag.Flag) { found = found || f.Name == name })
	return found
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mopbench: "+format+"\n", args...)
	os.Exit(1)
}
