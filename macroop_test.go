package macroop_test

import (
	"strings"
	"testing"

	"macroop"
)

func TestPublicAPIQuickstart(t *testing.T) {
	prog, err := macroop.GenerateBenchmark("gzip")
	if err != nil {
		t.Fatal(err)
	}
	base, err := macroop.Simulate(macroop.DefaultMachine(), prog, 20000)
	if err != nil {
		t.Fatal(err)
	}
	mop, err := macroop.Simulate(macroop.DefaultMachine().WithMOP(macroop.DefaultMOPConfig()), prog, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if base.IPC <= 0 || mop.IPC <= 0 {
		t.Fatal("no progress")
	}
	if mop.GroupedFrac() < 0.2 {
		t.Fatalf("MOP grouping %.2f", mop.GroupedFrac())
	}
	if !strings.Contains(base.String(), "gzip") {
		t.Fatal("result rendering broken")
	}
}

func TestPublicAPIBenchmarkList(t *testing.T) {
	names := macroop.Benchmarks()
	if len(names) != 12 {
		t.Fatalf("benchmarks: %v", names)
	}
	if len(macroop.BenchmarkProfiles()) != 12 {
		t.Fatal("profiles list wrong")
	}
	if _, err := macroop.GenerateBenchmark("nosuch"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestPublicAPIBuilder(t *testing.T) {
	b := macroop.NewProgram("mini")
	b.MovI(7, 100)
	b.Label("top")
	b.OpImm(macroop.OpAddI, 8, 8, 1)
	b.OpImm(macroop.OpAddI, 7, 7, -1)
	b.Branch(macroop.OpBne, 7, macroop.R0, "top")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := macroop.Simulate(macroop.UnrestrictedMachine(), prog, 1000000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 1+3*100 {
		t.Fatalf("committed %d", res.Committed)
	}
}

func TestPublicAPICharacterize(t *testing.T) {
	prog, _ := macroop.GenerateBenchmark("gap")
	ed := macroop.NewEdgeDistance()
	g := macroop.NewGrouping(2)
	if err := macroop.Characterize(prog, 30000, func(d *macroop.DynInst) {
		ed.Push(d)
		g.Push(d)
	}); err != nil {
		t.Fatal(err)
	}
	ed.Flush()
	g.Flush()
	if ed.Heads == 0 || g.GroupedInsts == 0 {
		t.Fatal("characterization empty")
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	r := macroop.NewExperiments(3000)
	r.Benchmarks = []string{"gzip"}
	tab, err := r.Figure14()
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 1 {
		t.Fatalf("rows: %d", tab.NumRows())
	}
	if macroop.MachineTable().NumRows() == 0 {
		t.Fatal("machine table empty")
	}
}

func TestPublicAPICustomProfile(t *testing.T) {
	p := macroop.BenchmarkProfile{
		Name: "custom", Seed: 7,
		FracLoad: 0.2, FracStore: 0.1, FracBranch: 0.1,
		ChainFrac: 0.3, ChainRegs: 1,
		DepMean: 2, FootprintLog2: 16, StrideBytes: 128,
		Blocks: 8, BlockLen: 30,
	}
	prog, err := macroop.GenerateProfile(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := macroop.Simulate(macroop.DefaultMachine(), prog, 5000); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIAssembleAndTrace(t *testing.T) {
	prog, err := macroop.Assemble("k", `
	        movi r7, 50
	top:    addi r1, r1, 1
	        add  r2, r1, r1
	        addi r7, r7, -1
	        bne  r7, r0, top
	        halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	tl := macroop.NewTimeline(20)
	res, err := macroop.SimulateTraced(macroop.DefaultMachine().WithMOP(macroop.DefaultMOPConfig()), prog, 100000, tl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 || tl.IssueCycle(1) < 0 {
		t.Fatal("trace or run empty")
	}
	if !strings.Contains(tl.String(), "addi") {
		t.Fatal("timeline missing instructions")
	}
}
