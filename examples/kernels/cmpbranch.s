; Compare-and-branch kernel: the classic macro-op fusion idiom.
; Try:
;   go run ./cmd/mopasm -sched 2cycle -trace 24 examples/kernels/cmpbranch.s
;   go run ./cmd/mopasm -sched mop    -trace 24 examples/kernels/cmpbranch.s
; and watch the slt/bne pair issue back to back under macro-op scheduling.

        movi r7, 1000000        ; loop counter
        movi r9, 0x8000         ; data pointer
top:    addi r1, r1, 1          ; induction chain (MOP head candidate)
        add  r2, r1, r1         ; dependent (its tail)
        ld   r4, 0(r9)          ; independent load
        slt  r5, r0, r2         ; compare (head)
        bne  r5, r0, skip       ; branch  (tail: cmp+branch fusion)
        addi r6, r6, 1
skip:   addi r7, r7, -1
        bne  r7, r0, top
        halt
