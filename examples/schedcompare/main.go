// schedcompare sweeps the issue queue size for every scheduler model on
// one benchmark, showing the paper's second benefit of macro-op
// scheduling: two instructions per queue entry enlarge the effective
// window, so MOP scheduling degrades much more gracefully as the queue
// shrinks (and can beat atomic scheduling under contention, Figure 15).
package main

import (
	"flag"
	"fmt"
	"log"

	"macroop"
)

func main() {
	bench := flag.String("bench", "gap", "benchmark to sweep")
	insts := flag.Int64("insts", 300_000, "instructions per run")
	flag.Parse()

	prog, err := macroop.GenerateBenchmark(*bench)
	if err != nil {
		log.Fatal(err)
	}

	models := []struct {
		name string
		mk   func(iq int) macroop.Machine
	}{
		{"base", func(iq int) macroop.Machine {
			return macroop.DefaultMachine().WithIQ(iq).WithSched(macroop.SchedBase)
		}},
		{"2-cycle", func(iq int) macroop.Machine {
			return macroop.DefaultMachine().WithIQ(iq).WithSched(macroop.SchedTwoCycle)
		}},
		{"macro-op", func(iq int) macroop.Machine {
			return macroop.DefaultMachine().WithIQ(iq).WithMOP(macroop.DefaultMOPConfig())
		}},
		{"select-free(sb)", func(iq int) macroop.Machine {
			return macroop.DefaultMachine().WithIQ(iq).WithSched(macroop.SchedSelectFreeScoreboard)
		}},
	}
	sizes := []int{8, 12, 16, 24, 32, 64, 0}

	fmt.Printf("IPC for %s as the issue queue shrinks (0 = unrestricted)\n\n", *bench)
	fmt.Printf("%-16s", "scheduler")
	for _, s := range sizes {
		if s == 0 {
			fmt.Printf("%8s", "unres")
		} else {
			fmt.Printf("%8d", s)
		}
	}
	fmt.Println()
	for _, m := range models {
		fmt.Printf("%-16s", m.name)
		for _, s := range sizes {
			res, err := macroop.Simulate(m.mk(s), prog, *insts)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%8.3f", res.IPC)
		}
		fmt.Println()
	}
	fmt.Println("\nThe macro-op row holds up best at small queues: grouped pairs occupy")
	fmt.Println("a single entry, so the same silicon tracks up to twice the window.")
}
