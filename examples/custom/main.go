// custom shows the two extension points of the library: defining a new
// synthetic workload profile, and characterizing + simulating it. The
// profile below models a hash-join-style kernel: pointer-heavy, with a
// single hot dependence chain — exactly the shape that suffers under
// pipelined 2-cycle scheduling and that macro-op scheduling repairs.
package main

import (
	"fmt"
	"log"

	"macroop"
)

func main() {
	profile := macroop.BenchmarkProfile{
		Name: "hashjoin", Seed: 42,
		FracLoad: 0.30, FracStore: 0.08, FracBranch: 0.12, FracMul: 0.02,
		ChainFrac: 0.55, ChainRegs: 1,
		DepMean: 1.6, LongDepFrac: 0.05,
		NoisyBranchFrac: 0.20, NoisyBias: 0.45,
		FootprintLog2: 18, StrideBytes: 264,
		Blocks: 24, BlockLen: 48,
	}
	prog, err := macroop.GenerateProfile(profile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %q: %d static instructions\n\n", profile.Name, prog.Len())

	// Machine-independent characterization (the paper's Figure 6 view).
	ed := macroop.NewEdgeDistance()
	g2 := macroop.NewGrouping(2)
	if err := macroop.Characterize(prog, 400_000, func(d *macroop.DynInst) {
		ed.Push(d)
		g2.Push(d)
	}); err != nil {
		log.Fatal(err)
	}
	ed.Flush()
	g2.Flush()
	fmt.Printf("value-generating candidates: %.1f%% of instructions\n",
		100*float64(ed.Heads)/float64(ed.TotalInsts))
	fmt.Printf("nearest MOP tail within 1~3 insts: %.1f%%, 4~7: %.1f%%, 8+: %.1f%%\n",
		100*float64(ed.Dist1to3)/float64(ed.Heads),
		100*float64(ed.Dist4to7)/float64(ed.Heads),
		100*float64(ed.Dist8plus)/float64(ed.Heads))
	fmt.Printf("ideal 2x-MOP coverage: %.1f%% of instructions groupable\n\n",
		100*float64(g2.GroupedInsts)/float64(g2.TotalInsts))

	// Timing: does macro-op scheduling pay off for this kernel?
	for _, mc := range []struct {
		name string
		m    macroop.Machine
	}{
		{"base", macroop.DefaultMachine().WithSched(macroop.SchedBase)},
		{"2-cycle", macroop.DefaultMachine().WithSched(macroop.SchedTwoCycle)},
		{"macro-op", macroop.DefaultMachine().WithMOP(macroop.DefaultMOPConfig())},
	} {
		res, err := macroop.Simulate(mc.m, prog, 400_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s IPC %.3f", mc.name, res.IPC)
		if res.GroupedFrac() > 0 {
			fmt.Printf("  (%.0f%% grouped, %.0f%% fewer queue entries)",
				100*res.GroupedFrac(), 100*res.InsertReduction())
		}
		fmt.Println()
	}
}
