// Figure 4 from the paper, end to end: a 16-instruction dependence graph
// (taken from gzip) scheduled under 1-cycle, 2-cycle, and 2-cycle macro-op
// scheduling. The paper reports dependence-tree depths of 9, 17, and 10
// cycles; this example reproduces the ordering by running the pattern in
// a loop and comparing steady-state IPC.
package main

import (
	"fmt"
	"log"

	"macroop"
)

// buildFigure4 encodes the dependence edges of the paper's Figure 4(a):
//
//	1→2, 1→3, 2→5, 3→4(…), 5→9, 4→8, 6→7, 7→8(second input), 8→12, …
//
// as a chain-and-diamond pattern of single-cycle ALU ops, repeated in an
// outer loop so MOP pointers are detected once and reused (as in the
// paper's instruction-cache pointer storage).
func buildFigure4() *macroop.Program {
	b := macroop.NewProgram("figure4")
	const (
		r1, r2, r3, r4, r5, r6, r7, r8 macroop.Reg = 8, 9, 10, 11, 12, 13, 14, 15
		rc                             macroop.Reg = 7 // loop counter
	)
	b.MovI(rc, 1<<40)
	for r := r1; r <= r8; r++ {
		b.MovI(r, int64(r))
	}
	b.Label("top")
	// One iteration = the 16-node graph of Figure 4 (numbered as in the
	// paper; all single-cycle ALU operations).
	b.OpImm(macroop.OpSub, r1, r1, 1) //  1
	b.OpImm(macroop.OpAdd, r2, r1, 5) //  2: dep on 1
	b.OpImm(macroop.OpAdd, r3, r1, 7) //  3: dep on 1
	b.OpImm(macroop.OpAdd, r4, r3, 1) //  4: dep on 3
	b.OpImm(macroop.OpAdd, r5, r2, 2) //  5: dep on 2
	b.OpImm(macroop.OpSub, r6, r6, 3) //  6: independent chain
	b.OpImm(macroop.OpAdd, r7, r6, 1) //  7: dep on 6
	b.Op3(macroop.OpAdd, r8, r4, r7)  //  8: dep on 4, 7
	b.OpImm(macroop.OpAdd, r2, r5, 1) //  9: dep on 5
	b.OpImm(macroop.OpAdd, r3, r2, 1) // 10: dep on 9
	b.OpImm(macroop.OpAdd, r5, r3, 2) // 11: dep on 10
	b.OpImm(macroop.OpAdd, r4, r8, 1) // 12: dep on 8
	b.Op3(macroop.OpAdd, r6, r4, r5)  // 13: dep on 11, 12
	b.OpImm(macroop.OpAdd, r7, r6, 1) // 14: dep on 13
	b.OpImm(macroop.OpAdd, r8, r7, 3) // 15: dep on 14
	b.OpImm(macroop.OpAdd, r1, r8, 1) // 16: dep on 15 (feeds next iteration)
	b.OpImm(macroop.OpAddI, rc, rc, -1)
	b.Branch(macroop.OpBne, rc, macroop.R0, "top")
	b.Halt()
	return b.MustBuild()
}

func main() {
	prog := buildFigure4()
	const insts = 200_000

	type row struct {
		name string
		m    macroop.Machine
	}
	rows := []row{
		{"1-cycle (atomic) scheduling", macroop.UnrestrictedMachine().WithSched(macroop.SchedBase)},
		{"2-cycle scheduling", macroop.UnrestrictedMachine().WithSched(macroop.SchedTwoCycle)},
		{"2-cycle macro-op scheduling", func() macroop.Machine {
			mc := macroop.DefaultMOPConfig()
			mc.ExtraFormationStages = 0
			return macroop.UnrestrictedMachine().WithMOP(mc)
		}()},
	}
	fmt.Println("Figure 4: 16-instruction gzip dependence graph, looped")
	fmt.Println("(paper: dependence tree depth 9 / 17 / 10 cycles per iteration)")
	fmt.Println()
	var base float64
	for _, r := range rows {
		res, err := macroop.Simulate(r.m, prog, insts)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.IPC
		}
		cyclesPerIter := 18 / res.IPC
		fmt.Printf("%-30s IPC %.3f  ~%.1f cycles/iteration  (%.0f%% of 1-cycle)",
			r.name, res.IPC, cyclesPerIter, 100*res.IPC/base)
		if g := res.GroupedFrac(); g > 0 {
			fmt.Printf("  [%.0f%% grouped]", 100*g)
		}
		fmt.Println()
	}
}
