// Quickstart: generate a benchmark, simulate it under three schedulers,
// and compare. This is the 30-second tour of the public API.
package main

import (
	"fmt"
	"log"

	"macroop"
)

func main() {
	prog, err := macroop.GenerateBenchmark("gzip")
	if err != nil {
		log.Fatal(err)
	}

	const insts = 500_000
	models := []struct {
		name string
		m    macroop.Machine
	}{
		{"base (atomic-equivalent)", macroop.DefaultMachine().WithSched(macroop.SchedBase)},
		{"2-cycle (pipelined)", macroop.DefaultMachine().WithSched(macroop.SchedTwoCycle)},
		{"macro-op (pipelined)", macroop.DefaultMachine().WithMOP(macroop.DefaultMOPConfig())},
	}

	var baseIPC float64
	for _, mc := range models {
		res, err := macroop.Simulate(mc.m, prog, insts)
		if err != nil {
			log.Fatal(err)
		}
		if baseIPC == 0 {
			baseIPC = res.IPC
		}
		fmt.Printf("%-28s IPC %.3f (%.1f%% of base)", mc.name, res.IPC, 100*res.IPC/baseIPC)
		if g := res.GroupedFrac(); g > 0 {
			fmt.Printf("  [%.0f%% of instructions fused into MOPs, %.0f%% fewer queue entries]",
				100*g, 100*res.InsertReduction())
		}
		fmt.Println()
	}
	fmt.Println("\nMacro-op scheduling runs the pipelined (2-cycle) scheduler but recovers")
	fmt.Println("most of the lost back-to-back execution by fusing dependent pairs.")
}
