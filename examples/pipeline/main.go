// pipeline assembles a small kernel from text, runs it under 2-cycle and
// macro-op scheduling with the pipeline tracer attached, and prints both
// timelines side by side — the one-cycle bubble after every single-cycle
// producer, and the fused pairs that remove it, are directly visible.
package main

import (
	"fmt"
	"log"

	"macroop"
)

const kernel = `
        ; dependent chain with a compare-and-branch: classic MOP material
        movi r7, 1000000
        movi r9, 0x8000
top:    addi r1, r1, 1      ; chain link        (head candidate)
        add  r2, r1, r1     ; dependent          (tail of the pair above)
        ld   r4, 0(r9)      ; independent load
        slt  r5, r0, r2     ; compare            (head)
        bne  r5, r0, skip   ; branch             (tail: cmp+branch fusion)
        addi r6, r6, 1
skip:   addi r7, r7, -1
        bne  r7, r0, top
        halt
`

func main() {
	prog, err := macroop.Assemble("kernel", kernel)
	if err != nil {
		log.Fatal(err)
	}
	for _, mc := range []struct {
		name string
		m    macroop.Machine
	}{
		{"2-cycle scheduling", macroop.UnrestrictedMachine().WithSched(macroop.SchedTwoCycle)},
		{"macro-op scheduling", func() macroop.Machine {
			c := macroop.DefaultMOPConfig()
			c.ExtraFormationStages = 0
			return macroop.UnrestrictedMachine().WithMOP(c)
		}()},
	} {
		// Warm up past pointer detection, then trace one steady window.
		tl := macroop.NewTimeline(400)
		res, err := macroop.SimulateTraced(mc.m, prog, 400, tl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s (IPC %.3f", mc.name, res.IPC)
		if res.GroupedFrac() > 0 {
			fmt.Printf(", %.0f%% grouped", 100*res.GroupedFrac())
		}
		fmt.Println(") ===")
		// Print the last recorded iterations (steady state).
		lines := splitLines(tl.String())
		fmt.Println(lines[0])
		for _, l := range lines[max(1, len(lines)-18):] {
			fmt.Println(l)
		}
		fmt.Println()
	}
	fmt.Println("Watch the issue column: under 2-cycle scheduling each dependent pair")
	fmt.Println("is 2 cycles apart; fused pairs issue back-to-back under macro-op.")
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
