package checker

import (
	"bufio"
	"context"
	"fmt"
	"sort"
	"strings"

	"macroop/internal/config"
	"macroop/internal/core"
	"macroop/internal/program"
)

// Record is one benchmark's golden reference under one machine
// configuration: the architectural checksum plus the key timing stats
// whose drift would silently invalidate the EXPERIMENTS.md tables.
type Record struct {
	Bench       string
	Checksum    uint64  // architectural-effect checksum (config-invariant)
	Committed   int64   // committed instructions
	Cycles      int64   // total cycles
	IPC         float64
	ReplayRate  float64 // replays per committed instruction
	MOPCoverage float64 // fraction of committed instructions grouped into MOPs
}

// Line renders the record as one golden-file line. Comparisons are done
// on this exact text, so the format is the compatibility contract; bump
// the golden files (go test ./internal/checker -update) when changing it.
func (r Record) Line() string {
	return fmt.Sprintf("%-10s checksum=%016x committed=%d cycles=%d ipc=%.4f replay=%.6f mop=%.6f",
		r.Bench, r.Checksum, r.Committed, r.Cycles, r.IPC, r.ReplayRate, r.MOPCoverage)
}

// RecordOf distills a checked run into its golden record.
func RecordOf(sum Summary, res *core.Result) Record {
	return Record{
		Bench:       res.Benchmark,
		Checksum:    sum.Checksum,
		Committed:   res.Committed,
		Cycles:      res.Cycles,
		IPC:         res.IPC,
		ReplayRate:  res.ReplayRate(),
		MOPCoverage: res.GroupedFrac(),
	}
}

// CheckedRun simulates prog on m with a lockstep checker attached and
// returns the timing result plus the check summary. sumLimit caps the
// commits folded into the checksum (normally the maxInsts budget, so
// checksums compare equal across machine configurations).
func CheckedRun(m config.Machine, prog *program.Program, maxInsts, sumLimit int64) (*core.Result, Summary, error) {
	return CheckedRunContext(context.Background(), m, prog, maxInsts, sumLimit)
}

// CheckedRunContext is CheckedRun honouring ctx cancellation: the
// simulation stops with a typed cancellation error within one poll window
// of ctx expiring.
func CheckedRunContext(ctx context.Context, m config.Machine, prog *program.Program, maxInsts, sumLimit int64) (*core.Result, Summary, error) {
	c, err := core.New(m, prog)
	if err != nil {
		return nil, Summary{}, err
	}
	k := New(prog, m.IQEntries, sumLimit)
	c.SetHooks(k)
	res, err := c.RunContext(ctx, maxInsts)
	if err != nil {
		return nil, Summary{}, err
	}
	return res, k.Summary(), nil
}

// FormatGolden renders records as golden-file content, sorted by
// benchmark name for byte-stable output.
func FormatGolden(title string, recs []Record) []byte {
	sorted := append([]Record(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Bench < sorted[j].Bench })
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", title)
	for _, r := range sorted {
		b.WriteString(r.Line())
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// ParseGolden reads golden-file content into benchmark -> exact line.
// Blank lines and '#' comments are skipped.
func ParseGolden(data []byte) (map[string]string, error) {
	out := make(map[string]string)
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	for n := 1; sc.Scan(); n++ {
		line := strings.TrimRight(sc.Text(), " \t")
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		fields := strings.Fields(trimmed)
		if len(fields) < 2 {
			return nil, fmt.Errorf("golden line %d: malformed: %q", n, line)
		}
		if _, dup := out[fields[0]]; dup {
			return nil, fmt.Errorf("golden line %d: duplicate benchmark %q", n, fields[0])
		}
		out[fields[0]] = line
	}
	return out, sc.Err()
}
