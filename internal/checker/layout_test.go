package checker_test

import (
	"runtime"
	"sync"
	"testing"

	"macroop/internal/checker"
	"macroop/internal/config"
	"macroop/internal/workload"
)

// TestLayoutDifferential runs the golden matrix over the full
// kernel×layout grid — {entry, bitset} scheduler kernels × {entry, soa}
// core layouts — and requires byte-identical checker Record lines for
// every corner of every cell. TestKernelDifferential already pins the two
// kernels against each other on the default layout; this adds the layout
// axis, so together the four corners are proven observationally
// equivalent: same checksums, same cycle counts, same replay/MOP
// statistics on every benchmark and scheduling model.
func TestLayoutDifferential(t *testing.T) {
	benches := workload.Names()
	cfgs := goldenConfigs()
	if testing.Short() {
		benches = benches[:3]
		cfgs = cfgs[:3]
	}
	type corner struct {
		kernel config.SchedKernel
		layout config.CoreLayout
	}
	corners := []corner{
		{config.KernelBitset, config.LayoutSoA}, // the default: reference corner
		{config.KernelBitset, config.LayoutEntry},
		{config.KernelEntry, config.LayoutSoA},
		{config.KernelEntry, config.LayoutEntry},
	}

	type key struct {
		cfg, bench string
		c          corner
	}
	lines := make(map[key]string)
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for _, gc := range cfgs {
		for _, b := range benches {
			for _, cr := range corners {
				wg.Add(1)
				go func(gc goldenConfig, b string, cr corner) {
					defer wg.Done()
					sem <- struct{}{}
					defer func() { <-sem }()
					prof, err := workload.ByName(b)
					if err != nil {
						t.Errorf("%s/%s/%v/%v: %v", gc.name, b, cr.kernel, cr.layout, err)
						return
					}
					prog, err := workload.Generate(prof)
					if err != nil {
						t.Errorf("%s/%s/%v/%v: generate: %v", gc.name, b, cr.kernel, cr.layout, err)
						return
					}
					m := gc.m.WithKernel(cr.kernel).WithLayout(cr.layout)
					res, sum, err := checker.CheckedRun(m, prog, goldenInsts, goldenInsts)
					if err != nil {
						t.Errorf("%s/%s/%v/%v: %v", gc.name, b, cr.kernel, cr.layout, err)
						return
					}
					mu.Lock()
					lines[key{gc.name, b, cr}] = checker.RecordOf(sum, res).Line()
					mu.Unlock()
				}(gc, b, cr)
			}
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	for _, gc := range cfgs {
		for _, b := range benches {
			ref := lines[key{gc.name, b, corners[0]}]
			for _, cr := range corners[1:] {
				if got := lines[key{gc.name, b, cr}]; got != ref {
					t.Errorf("%s/%s: %v/%v diverged from %v/%v:\n  ref: %s\n  got: %s",
						gc.name, b, cr.kernel, cr.layout,
						corners[0].kernel, corners[0].layout, ref, got)
				}
			}
		}
	}
}
