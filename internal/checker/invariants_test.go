package checker

import (
	"errors"
	"testing"

	"macroop/internal/config"
	"macroop/internal/core"
	"macroop/internal/functional"
	"macroop/internal/simerr"
	"macroop/internal/workload"
)

// TestInvariantNamesRoundTrip: every mask subset survives Names/Parse.
func TestInvariantNamesRoundTrip(t *testing.T) {
	for v := Invariant(0); v <= InvAll; v++ {
		got, err := ParseInvariants(v.Names())
		if err != nil || got != v {
			t.Fatalf("mask %b: round trip = %b, %v", v, got, err)
		}
	}
	if _, err := ParseInvariants([]string{"bogus"}); err == nil {
		t.Error("ParseInvariants accepted an unknown name")
	}
}

// TestDisabledInvariantTolerates: a divergence that only the differential
// group can see is caught with InvAll and ignored once that group is
// stripped — the knob the repro minimizer turns.
func TestDisabledInvariantTolerates(t *testing.T) {
	prof, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := workload.Generate(prof)
	if err != nil {
		t.Fatal(err)
	}
	run := func(inv Invariant) error {
		m := config.Default()
		src := &CorruptSource{Src: functional.NewExecutor(prog), At: 500}
		c, err := core.NewFromSource(m, prog.Name, src)
		if err != nil {
			t.Fatal(err)
		}
		k := New(prog, m.IQEntries, 5000)
		k.SetInvariants(inv)
		c.SetHooks(k)
		_, err = c.Run(5000)
		return err
	}
	if err := run(InvAll); !errors.Is(err, simerr.ErrCheckFailed) {
		t.Fatalf("full mask missed the corruption: %v", err)
	}
	if err := run(InvAll &^ InvDifferential); err != nil {
		t.Fatalf("with differential stripped the run should tolerate the corruption, got %v", err)
	}
}
