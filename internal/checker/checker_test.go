package checker_test

import (
	"strings"
	"testing"

	"macroop/internal/checker"
	"macroop/internal/config"
	"macroop/internal/core"
	"macroop/internal/functional"
	"macroop/internal/program"
	"macroop/internal/workload"
)

func genBench(t *testing.T, name string) *program.Program {
	t.Helper()
	prof, err := workload.ByName(name)
	if err != nil {
		t.Fatalf("profile %s: %v", name, err)
	}
	p, err := workload.Generate(prof)
	if err != nil {
		t.Fatalf("generate %s: %v", name, err)
	}
	return p
}

func mopMachine() config.Machine {
	return config.Default().WithMOP(config.DefaultMOP())
}

// TestCheckerCleanRun: a healthy core passes the oracle, cross-checking
// every commit, and the checksum is reproducible.
func TestCheckerCleanRun(t *testing.T) {
	prog := genBench(t, "gzip")
	res, sum, err := checker.CheckedRun(mopMachine(), prog, 20_000, 20_000)
	if err != nil {
		t.Fatalf("checked run: %v", err)
	}
	if sum.Commits != res.Committed {
		t.Errorf("checker saw %d commits, core reports %d", sum.Commits, res.Committed)
	}
	if sum.Commits < 20_000 {
		t.Errorf("checked only %d commits, want >= 20000", sum.Commits)
	}
	_, sum2, err := checker.CheckedRun(mopMachine(), genBench(t, "gzip"), 20_000, 20_000)
	if err != nil {
		t.Fatalf("second checked run: %v", err)
	}
	if sum.Checksum != sum2.Checksum {
		t.Errorf("checksum not reproducible: %016x vs %016x", sum.Checksum, sum2.Checksum)
	}
}

// TestCheckerDetectsInjectedFault proves the oracle is not vacuous: a
// core fed a deliberately corrupted dynamic stream (one wrong-value
// commit) must be rejected, under both the base and MOP schedulers.
func TestCheckerDetectsInjectedFault(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    config.Machine
	}{
		{"base", config.Default().WithSched(config.SchedBase)},
		{"mop", mopMachine()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prog := genBench(t, "gzip")
			src := &checker.CorruptSource{Src: functional.NewExecutor(prog), At: 5_000}
			c, err := core.NewFromSource(tc.m, prog.Name, src)
			if err != nil {
				t.Fatalf("core: %v", err)
			}
			c.SetHooks(checker.New(prog, tc.m.IQEntries, 0))
			_, err = c.Run(20_000)
			if err == nil {
				t.Fatal("corrupted commit stream passed the checker")
			}
			if !strings.Contains(err.Error(), "diverged") {
				t.Errorf("error does not name the divergence: %v", err)
			}
		})
	}
}

// TestCheckerDetectsWrongALUValue pins the fault injection on a concrete
// hand-written program: the corrupted instruction is an immediate ALU op,
// so the committed destination value is architecturally wrong.
func TestCheckerDetectsWrongALUValue(t *testing.T) {
	prog := program.MustAssemble("alu", `
	        movi  r1, 1000
	loop:   addi  r2, r2, 3
	        addi  r1, r1, -1
	        bne   r1, r0, loop
	        halt
	`)
	src := &checker.CorruptSource{Src: functional.NewExecutor(prog), At: 10}
	m := config.Default()
	c, err := core.NewFromSource(m, prog.Name, src)
	if err != nil {
		t.Fatalf("core: %v", err)
	}
	c.SetHooks(checker.New(prog, m.IQEntries, 0))
	if _, err = c.Run(1_000); err == nil {
		t.Fatal("wrong-value ALU commit passed the checker")
	} else if !strings.Contains(err.Error(), "instruction diverged") {
		t.Errorf("want instruction divergence, got: %v", err)
	}
}

// TestCheckerRejectsSkippedCommit: a source that silently drops one
// instruction must trip the sequence-order invariant.
func TestCheckerRejectsSkippedCommit(t *testing.T) {
	prog := genBench(t, "gzip")
	src := &skipSource{src: functional.NewExecutor(prog), at: 3_000}
	m := config.Default()
	c, err := core.NewFromSource(m, prog.Name, src)
	if err != nil {
		t.Fatalf("core: %v", err)
	}
	c.SetHooks(checker.New(prog, m.IQEntries, 0))
	if _, err = c.Run(10_000); err == nil {
		t.Fatal("a skipped instruction passed the checker")
	}
}

// skipSource drops the dynamic instruction with Seq == at (taking care to
// drop a whole fused pair if it lands on an STA, so the core's store
// fusion still sees well-formed input).
type skipSource struct {
	src  functional.Source
	at   int64
	done bool
}

func (s *skipSource) Step(d *functional.DynInst) error {
	if err := s.src.Step(d); err != nil {
		return err
	}
	if !s.done && d.Seq >= s.at && !d.Inst.Op.IsControl() && !d.Inst.Op.IsStore() {
		s.done = true
		return s.src.Step(d)
	}
	return nil
}
