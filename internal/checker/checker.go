// Package checker implements a lockstep differential oracle for the
// timing core: it re-executes the program on an independent functional
// model and, at every commit the core reports through the core.Hooks
// interface, cross-checks the architectural work (PC, opcode, operands,
// memory effective address, branch outcome and target, destination and
// store values) plus pipeline invariants:
//
//   - committed sequence numbers are strictly increasing (no instruction
//     commits twice, none is skipped out of order);
//   - every committed instruction was issued, its scheduler entry is
//     final (all speculative-scheduling replays resolved), and its
//     result was architecturally available before the commit cycle —
//     replayed uops therefore re-executed before committing;
//   - macro-op members commit exactly as formed: same entry, in op
//     order, in program order, with no member missing or duplicated;
//   - issue queue occupancy never exceeds its configured capacity.
//
// The checker also folds every committed architectural effect into a
// running FNV-1a checksum. Two runs that commit the same architectural
// work — e.g. MOP scheduling on vs off — produce identical checksums even
// though their timing differs, which is what the golden-result harness
// (golden.go) and the property tests record and compare.
//
// Attach a checker with core.SetHooks; it is timing-passive and costs
// one extra functional execution of the committed stream.
package checker

import (
	"fmt"

	"macroop/internal/core"
	"macroop/internal/functional"
	"macroop/internal/isa"
	"macroop/internal/program"
	"macroop/internal/simerr"
)

// Invariant is a bitmask selecting which of the checker's invariant
// groups are active. The default is InvAll; the repro minimizer
// (internal/shrink) strips groups that are not needed to reproduce a
// given check failure, so a minimized bundle names the one invariant
// that actually bites.
type Invariant uint

// Invariant groups.
const (
	// InvCommitOrder: committed sequence numbers strictly increase and
	// commit cycles never go backwards.
	InvCommitOrder Invariant = 1 << iota
	// InvScheduling: every committed op issued, no later than it commits,
	// with its entry final and its result ready.
	InvScheduling
	// InvMOPAtomicity: macro-op members commit exactly as formed.
	InvMOPAtomicity
	// InvOccupancy: issue queue occupancy respects capacity.
	InvOccupancy
	// InvDifferential: lockstep cross-check against the reference
	// functional model (and the architectural checksum, which needs it).
	InvDifferential

	// InvAll enables every invariant group.
	InvAll = InvCommitOrder | InvScheduling | InvMOPAtomicity | InvOccupancy | InvDifferential
)

// invariantNames orders the stable names used by repro bundles.
var invariantNames = []struct {
	bit  Invariant
	name string
}{
	{InvCommitOrder, "commit-order"},
	{InvScheduling, "scheduling"},
	{InvMOPAtomicity, "mop-atomicity"},
	{InvOccupancy, "occupancy"},
	{InvDifferential, "differential"},
}

// Names renders the active invariant groups as their stable names.
func (v Invariant) Names() []string {
	var out []string
	for _, in := range invariantNames {
		if v&in.bit != 0 {
			out = append(out, in.name)
		}
	}
	return out
}

// ParseInvariants resolves stable invariant names back into a mask.
func ParseInvariants(names []string) (Invariant, error) {
	var v Invariant
	for _, name := range names {
		found := false
		for _, in := range invariantNames {
			if in.name == name {
				v |= in.bit
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("checker: unknown invariant %q", name)
		}
	}
	return v, nil
}

// Checker is a core.Hooks implementation performing lockstep differential
// checking against a reference functional execution of the same program.
type Checker struct {
	name string
	ref  *functional.Executor
	inv  Invariant

	sum      uint64 // FNV-1a over committed architectural effects
	sumLimit int64  // commits folded into sum (0 = all); see New
	commits  int64
	lastSeq  int64
	lastCyc  int64

	iqCap int

	// lastIssue[entryID<<4|opIdx] is the most recent grant cycle for an
	// in-flight op; entries are deleted as their ops commit, so the map
	// stays bounded by the instruction window.
	lastIssue map[int64]int64
	// mop[entryID] is the member sequence list reported by OnMOPFormed,
	// deleted when the entry's last op commits.
	mop map[int64][]int64
	// mopNext[entryID] is the next expected OpIdx for a multi-op entry.
	mopNext map[int64]int
}

var _ core.Hooks = (*Checker)(nil)

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// New builds a checker for one simulation of prog. iqEntries is the
// machine's issue queue capacity (0 = unrestricted, disabling the
// occupancy invariant). sumLimit bounds how many commits fold into the
// checksum (0 = all): because the core may overshoot its instruction
// budget by up to one commit group, callers comparing checksums across
// machine configurations pass the common budget here so both runs
// checksum the same prefix.
func New(prog *program.Program, iqEntries int, sumLimit int64) *Checker {
	return &Checker{
		name:      prog.Name,
		ref:       functional.NewExecutor(prog),
		inv:       InvAll,
		sum:       fnvOffset,
		sumLimit:  sumLimit,
		lastSeq:   -1,
		lastCyc:   -1,
		iqCap:     iqEntries,
		lastIssue: make(map[int64]int64),
		mop:       make(map[int64][]int64),
		mopNext:   make(map[int64]int),
	}
}

// SetInvariants restricts the checker to the given invariant groups.
// Disabling InvDifferential also disables the architectural checksum
// (it is computed from the reference model's state).
func (k *Checker) SetInvariants(v Invariant) { k.inv = v }

// Invariants returns the active invariant groups.
func (k *Checker) Invariants() Invariant { return k.inv }

// Summary is the distilled outcome of a checked run.
type Summary struct {
	Benchmark string
	Commits   int64  // commits cross-checked
	Checksum  uint64 // FNV-1a over the first min(Commits, limit) commits
}

// Summary returns the check outcome so far.
func (k *Checker) Summary() Summary {
	return Summary{Benchmark: k.name, Commits: k.commits, Checksum: k.sum}
}

// Checksum returns the architectural-effect checksum so far.
func (k *Checker) Checksum() uint64 { return k.sum }

// Commits returns how many commits were cross-checked so far.
func (k *Checker) Commits() int64 { return k.commits }

// errorf reports an invariant violation or divergence as a typed
// *simerr.Error classified under ErrCheckFailed, carrying the benchmark
// and how many commits had been cross-checked when the check tripped.
func (k *Checker) errorf(format string, args ...any) error {
	ctx := simerr.Context{Benchmark: k.name, Committed: k.commits}
	if k.lastCyc > 0 {
		ctx.Cycle = k.lastCyc
	}
	return simerr.New(simerr.KindCheckFailed, ctx, "commit %d: "+format,
		append([]any{k.commits}, args...)...)
}

// mix folds 64-bit words into the running FNV-1a checksum.
func (k *Checker) mix(vs ...uint64) {
	h := k.sum
	for _, v := range vs {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= fnvPrime
		}
	}
	k.sum = h
}

// OnIssue implements core.Hooks: it records the grant so the commit-side
// invariant "committed ops were issued, and issued no later than they
// committed" has something to check against.
func (k *Checker) OnIssue(ev *core.IssueEvent) error {
	k.lastIssue[ev.EntryID<<4|int64(ev.OpIdx)] = ev.Cycle
	return nil
}

// OnMOPFormed implements core.Hooks: it records the closed macro-op's
// membership for commit-side atomicity checking.
func (k *Checker) OnMOPFormed(entryID int64, seqs []int64) error {
	if k.inv&InvMOPAtomicity == 0 {
		return nil
	}
	if len(seqs) < 2 {
		return simerr.New(simerr.KindCheckFailed, simerr.Context{Benchmark: k.name},
			"entry %d formed a MOP with %d member(s)", entryID, len(seqs))
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			return simerr.New(simerr.KindCheckFailed, simerr.Context{Benchmark: k.name},
				"entry %d MOP members out of program order: %v", entryID, seqs)
		}
	}
	k.mop[entryID] = append([]int64(nil), seqs...)
	return nil
}

// OnCycle implements core.Hooks: issue queue occupancy must respect the
// configured capacity.
func (k *Checker) OnCycle(cycle int64, iqOccupied int) error {
	if k.inv&InvOccupancy == 0 {
		return nil
	}
	if k.iqCap > 0 && iqOccupied > k.iqCap {
		return simerr.New(simerr.KindCheckFailed,
			simerr.Context{Benchmark: k.name, Cycle: cycle, Committed: k.commits},
			"issue queue occupancy %d exceeds capacity %d", iqOccupied, k.iqCap)
	}
	return nil
}

// OnCommit implements core.Hooks: the differential cross-check proper.
func (k *Checker) OnCommit(ev *core.CommitEvent) error {
	d := ev.Dyn

	// Commit-order invariants.
	if k.inv&InvCommitOrder != 0 {
		if d.Seq <= k.lastSeq {
			return k.errorf("sequence %d commits at or before already-committed %d (double or out-of-order commit)", d.Seq, k.lastSeq)
		}
		if ev.Cycle < k.lastCyc {
			return k.errorf("commit cycle went backwards: %d after %d", ev.Cycle, k.lastCyc)
		}
	}

	// Scheduling invariants: the op issued, no later than it commits, and
	// its entry settled with the result available before now. The issue
	// record is consumed regardless so the map stays window-bounded with
	// the group disabled.
	key := ev.EntryID<<4 | int64(ev.OpIdx)
	issued, ok := k.lastIssue[key]
	delete(k.lastIssue, key)
	if k.inv&InvScheduling != 0 {
		if !ok {
			return k.errorf("seq %d (entry %d op %d) commits without ever issuing", d.Seq, ev.EntryID, ev.OpIdx)
		}
		if issued > ev.Cycle {
			return k.errorf("seq %d issued at cycle %d after its commit cycle %d", d.Seq, issued, ev.Cycle)
		}
		if !ev.EntryFinal {
			return k.errorf("seq %d commits while its scheduler entry %d is not final (replay outstanding)", d.Seq, ev.EntryID)
		}
		if ev.Cycle < ev.ReadyAt {
			return k.errorf("seq %d commits at cycle %d before its result is ready at %d", d.Seq, ev.Cycle, ev.ReadyAt)
		}
	}

	// MOP atomicity: members commit exactly as formed, in op order.
	if k.inv&InvMOPAtomicity != 0 && ev.NumOps > 1 {
		seqs, ok := k.mop[ev.EntryID]
		if !ok {
			return k.errorf("seq %d commits from multi-op entry %d that never reported formation", d.Seq, ev.EntryID)
		}
		next := k.mopNext[ev.EntryID]
		if ev.OpIdx != next {
			return k.errorf("entry %d commits op %d before op %d (MOP not committing in op order)", ev.EntryID, ev.OpIdx, next)
		}
		if len(seqs) != ev.NumOps {
			return k.errorf("entry %d formed with %d members but commits with %d ops", ev.EntryID, len(seqs), ev.NumOps)
		}
		if seqs[ev.OpIdx] != d.Seq {
			return k.errorf("entry %d op %d commits seq %d, formed as seq %d", ev.EntryID, ev.OpIdx, d.Seq, seqs[ev.OpIdx])
		}
		if ev.OpIdx == ev.NumOps-1 {
			delete(k.mop, ev.EntryID)
			delete(k.mopNext, ev.EntryID)
		} else {
			k.mopNext[ev.EntryID] = next + 1
		}
	}

	// Differential cross-check against the reference functional model
	// (and the architectural checksum, which is built from the reference
	// state and so rides on the same invariant group).
	if k.inv&InvDifferential != 0 {
		var ref functional.DynInst
		if err := k.ref.Step(&ref); err != nil {
			return k.errorf("reference model cannot execute seq %d: %v", d.Seq, err)
		}
		if err := k.compare(&ref, d); err != nil {
			return err
		}

		// Destination value from the reference architectural state.
		var destVal uint64
		if ref.Inst.WritesReg() {
			destVal = k.ref.Reg(ref.Inst.Dest)
		}

		// A fused store commits as one uop but is two reference steps; the
		// merged STD supplies the store data.
		var storeVal uint64
		if ref.Inst.Op == isa.STA {
			var std functional.DynInst
			if err := k.ref.Step(&std); err != nil {
				return k.errorf("reference model cannot execute STD for store seq %d: %v", d.Seq, err)
			}
			if std.Inst.Op != isa.STD {
				return k.errorf("store seq %d not followed by STD in reference stream (got %s)", d.Seq, std.Inst.Op)
			}
			if std.MemAddr != ref.MemAddr {
				return k.errorf("store seq %d: STD address %#x != STA address %#x", d.Seq, std.MemAddr, ref.MemAddr)
			}
			if ev.DataReg != std.Inst.Src1 {
				return k.errorf("store seq %d commits data register %s, reference says %s", d.Seq, ev.DataReg, std.Inst.Src1)
			}
			storeVal = k.ref.Mem().Read(ref.MemAddr)
		}

		if k.sumLimit <= 0 || k.commits < k.sumLimit {
			k.mix(uint64(d.Seq), uint64(int64(d.PC)), uint64(d.Inst.Op),
				uint64(d.Inst.Dest), destVal, d.MemAddr, boolWord(d.Taken),
				uint64(int64(d.NextPC)), storeVal)
		}
	}
	k.lastSeq = d.Seq
	k.lastCyc = ev.Cycle
	k.commits++
	return nil
}

// compare checks the committed dynamic instruction against the reference
// model's independently computed one.
func (k *Checker) compare(ref, got *functional.DynInst) error {
	switch {
	case ref.Seq != got.Seq:
		return k.errorf("sequence diverged: core commits seq %d, reference executes seq %d", got.Seq, ref.Seq)
	case ref.PC != got.PC:
		return k.errorf("seq %d: PC diverged: core %d, reference %d", got.Seq, got.PC, ref.PC)
	case ref.Inst != got.Inst:
		return k.errorf("seq %d: instruction diverged: core commits %s, reference executes %s", got.Seq, got.Inst, ref.Inst)
	case ref.MemAddr != got.MemAddr:
		return k.errorf("seq %d (%s): memory address diverged: core %#x, reference %#x", got.Seq, got.Inst, got.MemAddr, ref.MemAddr)
	case ref.Taken != got.Taken:
		return k.errorf("seq %d (%s): branch outcome diverged: core taken=%v, reference taken=%v", got.Seq, got.Inst, got.Taken, ref.Taken)
	case ref.NextPC != got.NextPC:
		return k.errorf("seq %d (%s): next PC diverged: core %d, reference %d", got.Seq, got.Inst, got.NextPC, ref.NextPC)
	}
	return nil
}

func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// CorruptSource wraps a dynamic instruction source and corrupts exactly
// one instruction at or after sequence At: loads and store-address ops
// get their effective address flipped; other register writers get their
// immediate perturbed. Control instructions and STDs are skipped so the
// corruption stays on the committed path. It exists to prove the oracle
// is not vacuous — a core driven through a CorruptSource commits wrong
// architectural work that an attached Checker must detect.
type CorruptSource struct {
	Src functional.Source
	At  int64

	done bool
}

// Step implements functional.Source.
func (s *CorruptSource) Step(d *functional.DynInst) error {
	if err := s.Src.Step(d); err != nil {
		return err
	}
	if s.done || d.Seq < s.At || d.Inst.Op.IsControl() || d.Inst.Op == isa.STD {
		return nil
	}
	switch {
	case d.Inst.Op == isa.LD || d.Inst.Op == isa.STA:
		d.MemAddr ^= 8 // wrong word: the committed value is now wrong
	case d.Inst.WritesReg():
		d.Inst.Imm++ // wrong operand: the committed result is now wrong
	default:
		return nil
	}
	s.done = true
	return nil
}
