package checker_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"macroop/internal/checker"
	"macroop/internal/config"
	"macroop/internal/workload"
)

var update = flag.Bool("update", false, "regenerate testdata/golden files")

// goldenInsts is the committed-instruction budget per golden simulation.
// It matches the checksum limit, so the recorded checksums are identical
// across all scheduler configurations.
const goldenInsts = 50_000

// goldenConfig is one named machine configuration of the golden matrix.
type goldenConfig struct {
	name string
	m    config.Machine
}

// goldenConfigs returns the five scheduler configurations the paper's
// evaluation rests on (Section 6.2), all with the 32-entry issue queue.
func goldenConfigs() []goldenConfig {
	mopCfg := func(w config.WakeupStyle) config.Machine {
		mc := config.DefaultMOP()
		mc.Wakeup = w
		return config.Default().WithMOP(mc)
	}
	return []goldenConfig{
		{"base", config.Default().WithSched(config.SchedBase)},
		{"2cycle", config.Default().WithSched(config.SchedTwoCycle)},
		{"mop-2src", mopCfg(config.WakeupCAM2Src)},
		{"mop-wiredor", mopCfg(config.WakeupWiredOR)},
		{"sf-squash", config.Default().WithSched(config.SchedSelectFreeSquashDep)},
	}
}

// TestGolden simulates every benchmark under every scheduler config with
// the lockstep oracle attached and compares checksums and key stats
// against testdata/golden/<config>.golden. Regenerate with:
//
//	go test ./internal/checker -run Golden -update
func TestGolden(t *testing.T) {
	benches := workload.Names()
	if testing.Short() {
		if *update {
			t.Fatal("-update needs the full benchmark suite; drop -short")
		}
		benches = benches[:3]
	}
	cfgs := goldenConfigs()

	type key struct{ cfg, bench string }
	recs := make(map[key]checker.Record)
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for _, gc := range cfgs {
		for _, b := range benches {
			wg.Add(1)
			go func(gc goldenConfig, b string) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				prof, err := workload.ByName(b)
				if err != nil {
					t.Errorf("%s/%s: %v", gc.name, b, err)
					return
				}
				prog, err := workload.Generate(prof)
				if err != nil {
					t.Errorf("%s/%s: generate: %v", gc.name, b, err)
					return
				}
				res, sum, err := checker.CheckedRun(gc.m, prog, goldenInsts, goldenInsts)
				if err != nil {
					t.Errorf("%s/%s: %v", gc.name, b, err)
					return
				}
				mu.Lock()
				recs[key{gc.name, b}] = checker.RecordOf(sum, res)
				mu.Unlock()
			}(gc, b)
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// The architectural checksum is config-invariant: every scheduler
	// must have committed exactly the same work.
	for _, b := range benches {
		want := recs[key{cfgs[0].name, b}].Checksum
		for _, gc := range cfgs[1:] {
			if got := recs[key{gc.name, b}].Checksum; got != want {
				t.Errorf("%s: checksum under %s (%016x) differs from %s (%016x)",
					b, gc.name, got, cfgs[0].name, want)
			}
		}
	}

	if *update {
		for _, gc := range cfgs {
			var rs []checker.Record
			for _, b := range benches {
				rs = append(rs, recs[key{gc.name, b}])
			}
			title := fmt.Sprintf("golden results: %s scheduler, %d insts per benchmark", gc.name, goldenInsts)
			if err := os.WriteFile(goldenPath(gc.name), checker.FormatGolden(title, rs), 0o644); err != nil {
				t.Fatalf("write golden: %v", err)
			}
		}
		return
	}

	for _, gc := range cfgs {
		data, err := os.ReadFile(goldenPath(gc.name))
		if err != nil {
			t.Fatalf("missing golden file for %s (run: go test ./internal/checker -run Golden -update): %v", gc.name, err)
		}
		want, err := checker.ParseGolden(data)
		if err != nil {
			t.Fatalf("%s: %v", gc.name, err)
		}
		for _, b := range benches {
			got := recs[key{gc.name, b}].Line()
			switch w, ok := want[b]; {
			case !ok:
				t.Errorf("%s/%s: no golden record (rerun with -update?)", gc.name, b)
			case w != got:
				t.Errorf("%s/%s: result drifted from golden:\n  golden:  %s\n  current: %s",
					gc.name, b, w, got)
			}
		}
	}
}

func goldenPath(cfg string) string {
	return filepath.Join("testdata", "golden", cfg+".golden")
}

// TestKernelDifferential runs the full golden matrix under both scheduler
// kernels — the entry-linked reference and the bit-parallel default — and
// requires byte-identical checker Record lines for every cell: same
// checksums, same cycle counts, same replay/MOP statistics. Together with
// the goldens (pinned under the bitset kernel) this proves the kernels
// are observationally equivalent on every benchmark and scheduling model,
// not just on the unit-test scripts.
func TestKernelDifferential(t *testing.T) {
	benches := workload.Names()
	cfgs := goldenConfigs()
	if testing.Short() {
		benches = benches[:3]
		cfgs = cfgs[:3]
	}
	kernels := []config.SchedKernel{config.KernelEntry, config.KernelBitset}

	type key struct {
		cfg, bench string
		kernel     config.SchedKernel
	}
	lines := make(map[key]string)
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for _, gc := range cfgs {
		for _, b := range benches {
			for _, kn := range kernels {
				wg.Add(1)
				go func(gc goldenConfig, b string, kn config.SchedKernel) {
					defer wg.Done()
					sem <- struct{}{}
					defer func() { <-sem }()
					prof, err := workload.ByName(b)
					if err != nil {
						t.Errorf("%s/%s/%v: %v", gc.name, b, kn, err)
						return
					}
					prog, err := workload.Generate(prof)
					if err != nil {
						t.Errorf("%s/%s/%v: generate: %v", gc.name, b, kn, err)
						return
					}
					res, sum, err := checker.CheckedRun(gc.m.WithKernel(kn), prog, goldenInsts, goldenInsts)
					if err != nil {
						t.Errorf("%s/%s/%v: %v", gc.name, b, kn, err)
						return
					}
					mu.Lock()
					lines[key{gc.name, b, kn}] = checker.RecordOf(sum, res).Line()
					mu.Unlock()
				}(gc, b, kn)
			}
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	for _, gc := range cfgs {
		for _, b := range benches {
			ref := lines[key{gc.name, b, config.KernelEntry}]
			bit := lines[key{gc.name, b, config.KernelBitset}]
			if ref != bit {
				t.Errorf("%s/%s: kernels diverged:\n  entry:  %s\n  bitset: %s", gc.name, b, ref, bit)
			}
		}
	}
}
