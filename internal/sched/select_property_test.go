package sched

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"macroop/internal/config"
	"macroop/internal/isa"
)

// Property test for the bit kernel's select phase: for random ready
// masks, issue widths, port (FU) counts, and age orders — including ring
// wrap-around and mid-ring oldest positions — the priority-decoder bit
// scan must grant exactly the entries a straightforward reference select
// grants, in the same (oldest-first) order.
//
// The test owns the ready mask: it overwrites it with an arbitrary
// subset of the waiting entries before every tick (draining each insert
// round's deferred readiness events first, so nothing mutates the mask
// mid-tick), which decouples the property from wakeup timing and lets it
// probe mask shapes ordinary dependence graphs would rarely produce.

// refSelect is the reference: requesters in ascending age order, width
// and per-class port gates applied in scan order, ClassNone exempt from
// port accounting.
func refSelect(req []*Entry, width int, fu [isa.NumClasses]int) []*Entry {
	sorted := append([]*Entry(nil), req...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].age < sorted[b].age })
	var used [isa.NumClasses]int
	var out []*Entry
	for _, e := range sorted {
		if len(out) == width {
			break
		}
		c := e.ops[0].FU
		if c != isa.ClassNone {
			if used[c] >= fu[c] {
				continue
			}
			used[c]++
		}
		out = append(out, e)
	}
	return out
}

func TestSelectProperty(t *testing.T) {
	classes := []isa.Class{isa.ClassIntALU, isa.ClassIntMul, isa.ClassFP, isa.ClassMem, isa.ClassNone}
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	rounds := 60
	if testing.Short() {
		seeds = seeds[:3]
		rounds = 25
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			cfg := Config{
				Model:         config.SchedBase,
				Width:         1 + rng.Intn(6),
				IQEntries:     0,
				ReplayPenalty: 2,
				// A small ring forces several wrap-arounds over the run.
				Window: 16,
			}
			for c := range cfg.FU {
				cfg.FU[c] = rng.Intn(4) // 0 ports = that class never issues
			}
			k := NewBit(cfg)

			var live []*Entry
			insert := func(now int64, n int) {
				for i := 0; i < n; i++ {
					cl := classes[rng.Intn(len(classes))]
					e := k.Insert(OpInfo{FU: cl, Latency: 1, Seq: int64(len(live))}, nil, false)
					live = append(live, e)
				}
				// The insert round's readiness re-checks are due next
				// cycle; drain them now so the test's mask assignment is
				// the only thing that sets ready bits during the tick.
				k.readyEvents.take(now + 1)
			}

			insert(0, 8+rng.Intn(8))
			for now := int64(1); now <= int64(rounds); now++ {
				// Random requester subset of the waiting entries.
				var waiting, req []*Entry
				for _, e := range live {
					if e.GetState() == StateWaiting && k.ent[e.slot] == e {
						waiting = append(waiting, e)
					}
				}
				for i := range k.ready {
					k.ready[i] = 0
				}
				for _, e := range waiting {
					if rng.Intn(100) < 60 {
						bitSet(k.ready, e.slot)
						req = append(req, e)
					}
				}

				want := refSelect(req, cfg.Width, cfg.FU)
				got := k.Tick(now)

				if len(got) != len(want) {
					t.Fatalf("cycle %d (width %d, fu %v): got %d grants, want %d",
						now, cfg.Width, cfg.FU, len(got), len(want))
				}
				for i := range got {
					if got[i].Entry != want[i] {
						t.Fatalf("cycle %d grant %d: got entry age %d (class %v), want age %d (class %v)",
							now, i, got[i].Entry.age, got[i].Entry.ops[0].FU, want[i].age, want[i].ops[0].FU)
					}
					if got[i].OpIdx != 0 || got[i].Cycle != now {
						t.Fatalf("cycle %d grant %d: op %d cycle %d", now, i, got[i].OpIdx, got[i].Cycle)
					}
				}

				// Recycle finalized entries and top the queue back up so
				// ages keep advancing around the ring.
				n := 0
				for _, e := range live {
					if e.Final() {
						k.Release(e)
						continue
					}
					live[n] = e
					n++
				}
				live = live[:n]
				insert(now, 1+rng.Intn(4))
				if err := k.Err(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestAgeScanOrder checks the scan primitive itself: for random masks
// and start positions, ageScan yields exactly the set bits, each once,
// in circular order starting from the start position.
func TestAgeScanOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		words := 1 + rng.Intn(4)
		n := words * 64
		mask := make([]uint64, words)
		for i := range mask {
			switch rng.Intn(3) {
			case 0:
				mask[i] = rng.Uint64()
			case 1:
				mask[i] = rng.Uint64() & rng.Uint64() & rng.Uint64()
			case 2: // leave zero: whole-word skip paths
			}
		}
		start := rng.Intn(n)

		var want []int
		for off := 0; off < n; off++ {
			p := (start + off) % n
			if mask[p>>6]&(1<<uint(p&63)) != 0 {
				want = append(want, p)
			}
		}

		var got []int
		sc := newAgeScan(mask, start)
		for {
			p, ok := sc.next()
			if !ok {
				break
			}
			got = append(got, p)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d (words %d start %d): got %d positions, want %d", trial, words, start, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d (words %d start %d): position %d: got %d want %d", trial, words, start, i, got[i], want[i])
			}
		}
	}
}
