package sched

import (
	"fmt"
	"math/bits"
	"strings"

	"macroop/internal/config"
	"macroop/internal/isa"
	"macroop/internal/simerr"
)

// This file implements the bit-parallel structure-of-arrays scheduler
// kernel (config.KernelBitset), a cycle-exact re-implementation of the
// entry-linked reference kernel in sched.go with the data layout the
// paper's hardware actually has:
//
//   - issue queue entries live in parallel arrays indexed by a slot on a
//     power-of-two age ring (slot = age & (n-1); the live age span is
//     bounded by the ROB, so slots are unique and ascending bit position
//     from the oldest slot is ascending age);
//   - wakeup is a tag broadcast over per-producer consumer masks: each
//     producer slot owns an n-bit mask of its consumers' slots, and a
//     broadcast walks the mask words with bits.TrailingZeros64;
//   - select is a priority decoder: a bit scan over the packed ready
//     mask, oldest slot first (bitscan.go), gated by width and FUs;
//   - readiness is event-driven instead of recomputed per entry per
//     cycle: each wake-time update re-derives the entry's ready cycle,
//     sets its ready bit when due, or schedules a re-check on a
//     cycle-keyed ring; finality likewise settles from a candidate
//     bitmap triggered by grants, last-operand finality, and load
//     resolution, instead of re-scanning every active entry every cycle.
//
// Both kernels share the Entry handle (identity, refcounts, ops, grant
// and result times stay on the struct, surviving slot recycling for the
// core's post-commit reads); the per-edge scheduling state (producers,
// assumed latencies, wake/actual times) lives only in the slot arrays.
// The differential tests (differential_test.go, internal/checker)
// enforce grant-stream equality between the kernels.

// edgeStride is the per-slot capacity of the edge arrays: a full MOP
// chain of MaxMOPOps ops with two sources each.
const edgeStride = 2 * MaxMOPOps

// Edge flag bits.
const (
	edgeFinal uint8 = 1 << iota
	edgeDeaf
)

// BitScheduler is the bit-parallel wakeup/select engine.
type BitScheduler struct {
	cfg   Config
	stats Stats

	now     int64
	nextID  int64
	nextAge int64

	// Age ring geometry: n slots (power of two, >= 64), words = n/64
	// packed mask words.
	n     int
	words int

	// oldestAge is the age of the oldest live entry (== nextAge when the
	// queue is empty); its slot is where age-order scans start.
	oldestAge int64

	occupied int

	// ent maps slot -> live entry (nil when free).
	ent []*Entry

	// Per-slot source edges, stride edgeStride. eProd is the producer's
	// slot (-1 once final/severed); eOp the producer op index; eAssumed
	// the assumed latency; eWake/eActual the scheduler-visible and
	// actual operand-ready cycles; eFlags the final/deaf bits. nsrc is
	// the edge count, open the number of not-yet-final edges.
	nsrc     []int32
	open     []int32
	eProd    []int32
	eOp      []int8
	eAssumed []int32
	eWake    []int64
	eActual  []int64
	eFlags   []uint8

	// Packed n-bit masks: live entries, ready requesters, finalize
	// candidates, and the per-tick ready snapshot select works from.
	live  []uint64
	ready []uint64
	cand  []uint64
	snap  []uint64

	// recheckAt[s] is the earliest pending readyEvents cycle for the
	// slot's current occupant (0 = none): refreshReady skips pushing a
	// re-check that an already-scheduled earlier or equal event covers.
	// Losing a marker only costs a harmless duplicate push, so it is
	// reset freely on slot claim and free.
	recheckAt []int64

	// cons holds one n-bit consumer mask per producer slot (row p starts
	// at p*words): bit c means live entry at slot c has at least one
	// non-final edge from producer p.
	cons []uint64

	// seen/depStack are DependsOn scratch.
	seen     []uint64
	depStack []int32

	free []*Entry

	grantBuf []Grant

	futureGrants grantRing
	futureFU     fuRing

	loadEvents  entryRing // load miss discoveries
	sbEvents    entryRing // scoreboard detections of invalid issues
	readyEvents entryRing // deferred readiness re-checks
	finalEvents entryRing // deferred finality re-checks (load discovery)

	err error

	// Fault-injection state (see Scheduler).
	suppressReplay bool
	suppressed     *Entry
}

// NewBit creates a bit-parallel scheduler.
func NewBit(cfg Config) *BitScheduler {
	if cfg.Width <= 0 {
		panic(simerr.Internalf(simerr.Context{}, "sched: non-positive width %d", cfg.Width))
	}
	if cfg.ScoreboardDelay <= 0 {
		cfg.ScoreboardDelay = 2
	}
	window := cfg.Window
	if window <= 0 {
		window = 128
	}
	// Twice the live-window bound keeps slots collision-free with slack;
	// Insert still grows the ring if a caller exceeds the hint.
	n := 64
	for n < 2*window {
		n *= 2
	}
	k := &BitScheduler{
		cfg:          cfg,
		n:            n,
		words:        n / 64,
		loadEvents:   newEntryRing(),
		sbEvents:     newEntryRing(),
		readyEvents:  newEntryRing(),
		finalEvents:  newEntryRing(),
		futureGrants: newGrantRing(),
		futureFU:     newFURing(),
	}
	k.allocArrays()
	return k
}

func (k *BitScheduler) allocArrays() {
	n, w := k.n, k.words
	k.ent = make([]*Entry, n)
	k.nsrc = make([]int32, n)
	k.open = make([]int32, n)
	k.eProd = make([]int32, n*edgeStride)
	k.eOp = make([]int8, n*edgeStride)
	k.eAssumed = make([]int32, n*edgeStride)
	k.eWake = make([]int64, n*edgeStride)
	k.eActual = make([]int64, n*edgeStride)
	k.eFlags = make([]uint8, n*edgeStride)
	k.live = make([]uint64, w)
	k.ready = make([]uint64, w)
	k.cand = make([]uint64, w)
	k.snap = make([]uint64, w)
	k.seen = make([]uint64, w)
	k.cons = make([]uint64, n*w)
	k.recheckAt = make([]int64, n)
}

// grow doubles the age ring and re-places every live entry at its new
// slot (ages are unique, so slots stay unique). Rare: only reached when
// a caller exceeds the Window hint.
func (k *BitScheduler) grow() {
	oldEnt := k.ent
	oldN := k.n
	oldNsrc := k.nsrc
	oldOpen := k.open
	oldProd := k.eProd
	oldOp := k.eOp
	oldAssumed := k.eAssumed
	oldWake := k.eWake
	oldActual := k.eActual
	oldFlags := k.eFlags
	oldReady := k.ready
	oldCand := k.cand
	oldRecheck := k.recheckAt

	k.n = oldN * 2
	k.words = k.n / 64
	k.allocArrays()

	mask := int64(k.n - 1)
	for s := 0; s < oldN; s++ {
		e := oldEnt[s]
		if e == nil {
			continue
		}
		ns := int(e.age & mask)
		e.slot = ns
		k.ent[ns] = e
		bitSet(k.live, ns)
		if bitTest(oldReady, s) {
			bitSet(k.ready, ns)
		}
		if bitTest(oldCand, s) {
			bitSet(k.cand, ns)
		}
		k.nsrc[ns] = oldNsrc[s]
		k.open[ns] = oldOpen[s]
		k.recheckAt[ns] = oldRecheck[s]
		ob, nb := s*edgeStride, ns*edgeStride
		cnt := int(oldNsrc[s])
		copy(k.eProd[nb:nb+cnt], oldProd[ob:ob+cnt])
		copy(k.eOp[nb:nb+cnt], oldOp[ob:ob+cnt])
		copy(k.eAssumed[nb:nb+cnt], oldAssumed[ob:ob+cnt])
		copy(k.eWake[nb:nb+cnt], oldWake[ob:ob+cnt])
		copy(k.eActual[nb:nb+cnt], oldActual[ob:ob+cnt])
		copy(k.eFlags[nb:nb+cnt], oldFlags[ob:ob+cnt])
	}
	// Remap edge producer slots and rebuild the consumer masks from the
	// edges (old slot -> entry -> new slot).
	for s := 0; s < oldN; s++ {
		e := oldEnt[s]
		if e == nil {
			continue
		}
		ns := e.slot
		base := ns * edgeStride
		for i := 0; i < int(k.nsrc[ns]); i++ {
			ei := base + i
			if k.eFlags[ei]&edgeFinal != 0 {
				continue
			}
			p := oldEnt[k.eProd[ei]]
			k.eProd[ei] = int32(p.slot)
			bitSet(k.cons[p.slot*k.words:(p.slot+1)*k.words], ns)
		}
	}
}

// Stats returns accumulated counters.
func (k *BitScheduler) Stats() Stats { return k.stats }

// Err returns the first fatal scheduling failure, or nil.
func (k *BitScheduler) Err() error { return k.err }

// Occupied returns the number of issue queue entries currently in use.
func (k *BitScheduler) Occupied() int { return k.occupied }

// HasSpace reports whether n more entries can be inserted.
func (k *BitScheduler) HasSpace(n int) bool {
	return k.cfg.IQEntries == 0 || k.occupied+n <= k.cfg.IQEntries
}

func (k *BitScheduler) selectFree() bool { return modelSelectFree(k.cfg.Model) }

func (k *BitScheduler) startPos() int { return int(k.oldestAge & int64(k.n-1)) }

// Insert creates a new entry with one op and the given sources; see
// Scheduler.Insert.
func (k *BitScheduler) Insert(op OpInfo, srcs []SrcSpec, pendingTail bool) *Entry {
	e := k.allocEntry()
	e.id = k.nextID
	e.age = k.nextAge
	e.numOps = 1
	e.isMOP = false
	e.pendingTail = pendingTail
	e.state = StateWaiting
	e.grant = -1
	e.earliestSelect = k.now + 1
	e.everRequested = false
	e.firstReq = -1
	e.replays = 0
	e.refs = 1 // the inserted op's own reference, dropped at its commit
	e.ops[0] = op
	// Per-op result state is initialised lazily, one index per op as it
	// is added (here and in AttachOp): no reader ever indexes past
	// numOps-1, so clearing all MaxMOPOps slots of a pooled entry per
	// insert is wasted work.
	e.actualReady[0] = never
	e.loadDiscover[0] = 0
	e.loadResolved[0] = false
	k.nextID++
	k.nextAge++

	s := int(e.age & int64(k.n-1))
	for k.ent[s] != nil {
		k.grow()
		s = int(e.age & int64(k.n-1))
	}
	e.slot = s
	k.ent[s] = e
	bitSet(k.live, s)
	k.nsrc[s] = 0
	k.open[s] = 0
	k.recheckAt[s] = 0

	k.occupied++
	if k.occupied > k.stats.MaxOccupancy {
		k.stats.MaxOccupancy = k.occupied
	}
	k.stats.EntriesInserted++
	k.stats.OpsInserted++
	k.addSources(e, srcs)
	k.refreshReady(e)
	return e
}

// AttachTail completes a two-instruction MOP; see Scheduler.AttachTail.
func (k *BitScheduler) AttachTail(e *Entry, op OpInfo, srcs []SrcSpec) {
	k.AttachOp(e, op, srcs, true)
}

// AttachOp appends one more op to a pending MOP entry; see
// Scheduler.AttachOp.
func (k *BitScheduler) AttachOp(e *Entry, op OpInfo, srcs []SrcSpec, last bool) {
	if !e.pendingTail {
		panic(simerr.Internalf(simerr.Context{Cycle: k.now}, "sched: AttachOp on non-pending entry %d", e.id))
	}
	if e.numOps >= MaxMOPOps {
		panic(simerr.Internalf(simerr.Context{Cycle: k.now}, "sched: MOP op overflow on entry %d", e.id))
	}
	e.ops[e.numOps] = op
	e.actualReady[e.numOps] = never
	e.loadDiscover[e.numOps] = 0
	e.loadResolved[e.numOps] = false
	e.numOps++
	e.isMOP = true
	e.refs++ // the attached op's reference, dropped at its commit
	if last {
		e.pendingTail = false
	}
	k.addSources(e, srcs)
	k.stats.OpsInserted++
	if last {
		k.stats.MOPsInserted++
	}
	k.refreshReady(e)
}

// CancelTail demotes a pending MOP head; see Scheduler.CancelTail.
func (k *BitScheduler) CancelTail(e *Entry) {
	e.pendingTail = false
	k.refreshReady(e)
}

func (k *BitScheduler) allocEntry() *Entry {
	if n := len(k.free); n > 0 {
		e := k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		return e
	}
	return &Entry{}
}

// Release drops one reference; see Scheduler.Release.
func (k *BitScheduler) Release(e *Entry) {
	e.refs--
	if e.refs > 0 {
		return
	}
	if e.refs < 0 || e.state != StateFinal {
		panic(simerr.Internalf(simerr.Context{Cycle: k.now},
			"sched: bad release of entry %d (state %v, refs %d)", e.id, e.state, e.refs))
	}
	e.gen++
	e.UserData = nil
	e.UserIdx = 0
	k.free = append(k.free, e)
}

// DebugFreeCount reports the free-list size (tests only).
func (k *BitScheduler) DebugFreeCount() int { return len(k.free) }

// addSources appends edges to e's slot, mirroring Scheduler.addSources:
// the same initial wake/actual per producer state, and registration in
// the producer's consumer mask instead of a consumer list.
func (k *BitScheduler) addSources(e *Entry, srcs []SrcSpec) {
	s := e.slot
	base := s * edgeStride
	for _, sp := range srcs {
		if int(k.nsrc[s]) >= edgeStride {
			panic(simerr.Internalf(simerr.Context{Cycle: k.now}, "sched: edge overflow on entry %d", e.id))
		}
		ei := base + int(k.nsrc[s])
		k.nsrc[s]++
		k.eOp[ei] = int8(sp.ProdOp)
		k.eFlags[ei] = 0
		p := sp.Prod
		if p == nil {
			k.eFlags[ei] = edgeFinal
			k.eProd[ei] = -1
			k.eAssumed[ei] = 0
			k.eWake[ei] = 0
			k.eActual[ei] = 0
			continue
		}
		assumed := p.ops[sp.ProdOp].Latency
		k.eAssumed[ei] = int32(assumed)
		switch {
		case p.state == StateFinal:
			// Model timing still applies: a consumer may not see the tag
			// earlier than the pipelined wakeup delivers it.
			k.eFlags[ei] = edgeFinal
			k.eProd[ei] = -1
			k.eActual[ei] = p.actualReady[sp.ProdOp]
			k.eWake[ei] = maxI64(wakeFromGrant(k.cfg.Model, p, assumed), k.eActual[ei])
		case p.state == StateIssued:
			w := wakeFromGrant(k.cfg.Model, p, assumed)
			if p.ops[sp.ProdOp].IsLoad && p.loadResolved[sp.ProdOp] {
				w = maxI64(w, p.actualReady[sp.ProdOp])
			}
			k.eWake[ei] = w
			k.eActual[ei] = never
			k.eProd[ei] = int32(p.slot)
			k.open[s]++
			bitSet(k.cons[p.slot*k.words:(p.slot+1)*k.words], s)
		default:
			// Waiting: woken later by the producer's grant (scoreboard
			// mode still sees the stale speculative broadcast).
			w := never
			if k.cfg.Model == config.SchedSelectFreeScoreboard && p.firstReq >= 0 {
				w = p.firstReq + int64(assumed)
			}
			k.eWake[ei] = w
			k.eActual[ei] = never
			k.eProd[ei] = int32(p.slot)
			k.open[s]++
			bitSet(k.cons[p.slot*k.words:(p.slot+1)*k.words], s)
		}
	}
}

// refreshReady re-derives e's readiness after any wake-relevant change:
// the ready bit is set iff the entry is waiting, not pending a tail, and
// its earliest-select and every edge wake are due. A future ready cycle
// schedules a re-check event; stale or duplicate events are harmless
// (the check is idempotent and guarded).
func (k *BitScheduler) refreshReady(e *Entry) {
	s := e.slot
	if k.ent[s] != e {
		return
	}
	if e.state != StateWaiting || e.pendingTail {
		bitClear(k.ready, s)
		return
	}
	ra := e.earliestSelect
	base := s * edgeStride
	for i := 0; i < int(k.nsrc[s]); i++ {
		if w := k.eWake[base+i]; w > ra {
			ra = w
		}
	}
	if ra <= k.now {
		bitSet(k.ready, s)
		return
	}
	bitClear(k.ready, s)
	if ra < never {
		if p := k.recheckAt[s]; p == 0 || p > ra {
			k.recheckAt[s] = ra
			k.readyEvents.push(k.now, ra, e)
		}
	}
}

// setCand marks a slot for a finality re-check in this or the next
// tick's settle phase.
func (k *BitScheduler) setCand(s int) {
	bitSet(k.cand, s)
}

// SetLoadResult informs the scheduler of a load op's actual timing; see
// Scheduler.SetLoadResult. Additionally schedules the finality re-check
// the reference kernel gets for free from its every-cycle scan.
func (k *BitScheduler) SetLoadResult(e *Entry, opIdx int, actualReady, discover int64) {
	e.actualReady[opIdx] = actualReady
	e.loadDiscover[opIdx] = discover
	e.loadResolved[opIdx] = true
	assumedReady := e.grant + int64(e.ops[opIdx].Latency)
	if e.isMOP {
		panic(simerr.Internalf(simerr.Context{Cycle: k.now}, "sched: load in MOP entry %d", e.id))
	}
	if actualReady > assumedReady {
		k.loadEvents.push(k.now, discover, e)
	}
	if discover <= k.now {
		if k.ent[e.slot] == e {
			k.setCand(e.slot)
		}
	} else {
		k.finalEvents.push(k.now, discover, e)
	}
}

// Tick advances one cycle; see Scheduler.Tick. Phase order matches the
// reference kernel exactly: future MOP grants, deferred events, wakeup
// (select-free speculative broadcast), select, collision victims,
// finality settling.
func (k *BitScheduler) Tick(now int64) []Grant {
	k.now = now

	// MOP ops sequencing from earlier grants occupy slots first. The
	// pending-count pre-checks keep the empty-ring common case (every
	// cycle outside MOP bursts and miss recovery) free of slot probes
	// and, for the FU vector, of a by-value array copy.
	grants := k.grantBuf[:0]
	if k.futureGrants.n > 0 {
		grants = k.futureGrants.take(now, grants)
	}
	widthLeft := k.cfg.Width - len(grants)
	var fuUsed [isa.NumClasses]int
	if k.futureFU.n > 0 {
		fuUsed = k.futureFU.take(now)
	}

	// Deferred readiness re-checks land first so the ready mask is
	// current before this cycle's replay/scoreboard events adjust it.
	if k.readyEvents.n > 0 {
		for _, ev := range k.readyEvents.take(now) {
			if ev.e.gen == ev.gen {
				if s := ev.e.slot; k.ent[s] == ev.e && k.recheckAt[s] == now {
					k.recheckAt[s] = 0 // the covering event is firing: re-arm
				}
				k.refreshReady(ev.e)
			}
		}
	}
	// Load-miss discoveries: selectively invalidate shadow issues.
	if k.loadEvents.n > 0 {
		for _, ev := range k.loadEvents.take(now) {
			if ev.e.gen == ev.gen {
				k.fixupLoadMiss(ev.e)
			}
		}
	}
	// Scoreboard detections of invalid select-free issues.
	if k.sbEvents.n > 0 {
		for _, ev := range k.sbEvents.take(now) {
			if ev.e.gen == ev.gen {
				k.scoreboardCheck(ev.e)
			}
		}
	}
	// Load discoveries enabling finality.
	if k.finalEvents.n > 0 {
		for _, ev := range k.finalEvents.take(now) {
			if ev.e.gen == ev.gen && k.ent[ev.e.slot] == ev.e {
				k.setCand(ev.e.slot)
			}
		}
	}

	// Snapshot the request vector: the reference kernel collects its
	// requester list before any broadcast of this cycle, so mid-select
	// wake updates must not change who requests this cycle. The OR fold
	// rides along so a requester-free cycle skips the scan phases.
	var reqAny uint64
	for i, w := range k.ready {
		k.snap[i] = w
		reqAny |= w
	}
	if reqAny != 0 {
		start := k.startPos()

		// Wakeup phase: select-free entries broadcast at request time,
		// before knowing whether selection succeeds.
		if k.selectFree() {
			sc := newAgeScan(k.snap, start)
			for {
				s, ok := sc.next()
				if !ok {
					break
				}
				e := k.ent[s]
				if e.firstReq < 0 {
					e.firstReq = now
					k.broadcastSpeculative(e)
				}
			}
		}

		// Select phase: priority-decoder scan, oldest first, bounded by
		// width and functional units.
		sc := newAgeScan(k.snap, start)
		for widthLeft > 0 {
			s, ok := sc.next()
			if !ok {
				break
			}
			e := k.ent[s]
			fu0 := e.ops[0].FU
			if fu0 != isa.ClassNone && fuUsed[fu0] >= k.cfg.FU[fu0] {
				continue
			}
			if e.numOps > 1 && !k.mopResourcesFree(e, now) {
				continue
			}
			widthLeft--
			if fu0 != isa.ClassNone {
				fuUsed[fu0]++
			}
			k.grantEntry(e, now, &grants)
		}

		// Select-free collision victims: requested this cycle, not granted.
		if k.selectFree() {
			sc := newAgeScan(k.snap, start)
			for {
				s, ok := sc.next()
				if !ok {
					break
				}
				e := k.ent[s]
				if e.state != StateIssued && e.firstReq == now {
					k.stats.CollisionVict++
					if k.cfg.Model == config.SchedSelectFreeSquashDep {
						k.squashDependents(e)
					}
				}
			}
		}
	}

	k.settleFinal(now)
	k.grantBuf = grants[:0] // keep any grown capacity for the next tick
	return grants
}

// mopResourcesFree mirrors Scheduler.mopResourcesFree.
func (k *BitScheduler) mopResourcesFree(e *Entry, now int64) bool {
	for i := 1; i < e.numOps; i++ {
		cyc := now + int64(i)
		if k.futureGrants.count(cyc) >= k.cfg.Width {
			return false
		}
		c := e.ops[i].FU
		if c != isa.ClassNone && k.futureFU.get(cyc, c) >= k.cfg.FU[c] {
			return false
		}
	}
	return true
}

func (k *BitScheduler) grantEntry(e *Entry, now int64, grants *[]Grant) {
	e.state = StateIssued
	e.grant = now
	e.everRequested = true
	k.stats.Grants++
	*grants = append(*grants, Grant{Entry: e, OpIdx: 0, Cycle: now})
	bitClear(k.ready, e.slot)
	// Non-load results become actually available grant+latency later;
	// loads are patched by SetLoadResult.
	if !e.ops[0].IsLoad {
		e.actualReady[0] = now + int64(e.ops[0].Latency)
	}
	for i := 1; i < e.numOps; i++ {
		// Sequence later ops in following cycles through the same slot.
		cyc := now + int64(i)
		k.futureGrants.push(now, cyc, Grant{Entry: e, OpIdx: i, Cycle: cyc})
		if c := e.ops[i].FU; c != isa.ClassNone {
			k.futureFU.add(now, cyc, c)
		}
		e.actualReady[i] = cyc + int64(e.ops[i].Latency)
	}
	// Conventional wakeup: broadcast from the grant.
	if !k.selectFree() {
		k.wakeConsumers(e)
	} else {
		// A collision victim that is finally granted re-broadcasts.
		if e.firstReq >= 0 && e.firstReq < now {
			k.rebroadcast(e)
		}
		// Scoreboard mode checks operand validity a fixed delay later.
		if k.cfg.Model == config.SchedSelectFreeScoreboard {
			k.sbEvents.push(now, now+int64(k.cfg.ScoreboardDelay), e)
		}
	}
	// An issued entry may already be finalizable (all operands final and
	// valid, no unresolved loads): settle it this same tick.
	k.setCand(e.slot)
}

// consEdges iterates the (consumer entry, edge index) pairs registered
// against one producer slot, in consumer age-ring word order. It is a
// stack-allocated iterator (no closures) so broadcasts stay
// allocation-free; consumer-order independence of all broadcast effects
// is what makes word order (vs the reference kernel's registration
// order) safe.
type consEdges struct {
	k        *BitScheduler
	prodSlot int32
	row      int // start of the producer's mask row in cons
	wi       int
	m        uint64
	cs       int // current consumer slot
	ei, eEnd int // edge cursor within the current consumer
}

func (k *BitScheduler) consumers(prodSlot int) consEdges {
	return consEdges{k: k, prodSlot: int32(prodSlot), row: prodSlot * k.words, wi: -1}
}

func (it *consEdges) next() (*Entry, int, bool) {
	k := it.k
	for {
		for it.ei < it.eEnd {
			ei := it.ei
			it.ei++
			if k.eProd[ei] == it.prodSlot {
				return k.ent[it.cs], ei, true
			}
		}
		for it.m == 0 {
			it.wi++
			if it.wi >= k.words {
				return nil, 0, false
			}
			it.m = k.cons[it.row+it.wi]
		}
		b := bits.TrailingZeros64(it.m)
		it.m &= it.m - 1
		it.cs = it.wi<<6 + b
		it.ei = it.cs * edgeStride
		it.eEnd = it.ei + int(k.nsrc[it.cs])
	}
}

// wakeConsumers sets consumer wake times from this entry's grant. This
// is the conventional-wakeup broadcast on the per-grant hot path, so it
// walks the consumer mask inline and re-derives each consumer's
// readiness once after all of its matching edges are woken, not once per
// edge: refreshReady computes from the edges' current state, so only the
// re-check event traffic differs (and those events are idempotent,
// self-guarded no-ops). A matching edge (eProd == s) is never final —
// severing and final insertion both set eProd to -1 — so only the deaf
// flag needs consulting.
func (k *BitScheduler) wakeConsumers(e *Entry) {
	s := e.slot
	ps := int32(s)
	row := s * k.words
	for wi := 0; wi < k.words; wi++ {
		m := k.cons[row+wi]
		for m != 0 {
			b := bits.TrailingZeros64(m)
			m &= m - 1
			cs := wi<<6 + b
			base := cs * edgeStride
			touched := false
			for i := 0; i < int(k.nsrc[cs]); i++ {
				ei := base + i
				if k.eProd[ei] != ps || k.eFlags[ei]&edgeDeaf != 0 {
					continue
				}
				k.eWake[ei] = wakeFromGrant(k.cfg.Model, e, int(k.eAssumed[ei]))
				touched = true
			}
			if touched {
				k.refreshReady(k.ent[cs])
			}
		}
	}
}

// broadcastSpeculative wakes consumers at request time (select-free).
// Same batched walk as wakeConsumers: one refreshReady per consumer
// after all of its matching edges are updated, and no edgeFinal check
// because a matching edge is never final.
func (k *BitScheduler) broadcastSpeculative(e *Entry) {
	s := e.slot
	ps := int32(s)
	row := s * k.words
	wake := e.firstReq
	for wi := 0; wi < k.words; wi++ {
		m := k.cons[row+wi]
		for m != 0 {
			b := bits.TrailingZeros64(m)
			m &= m - 1
			cs := wi<<6 + b
			base := cs * edgeStride
			touched := false
			for i := 0; i < int(k.nsrc[cs]); i++ {
				ei := base + i
				if k.eProd[ei] != ps || k.eFlags[ei]&edgeDeaf != 0 {
					continue
				}
				k.eWake[ei] = wake + int64(k.eAssumed[ei])
				touched = true
			}
			if touched {
				k.refreshReady(k.ent[cs])
			}
		}
	}
}

// squashDependents clears the speculative wakeups of a collision
// victim's consumers; see Scheduler.squashDependents.
func (k *BitScheduler) squashDependents(e *Entry) {
	it := k.consumers(e.slot)
	for {
		c, ei, ok := it.next()
		if !ok {
			break
		}
		if k.eFlags[ei]&edgeFinal != 0 {
			continue
		}
		k.eWake[ei] = never
		k.refreshReady(c)
	}
}

// rebroadcast wakes consumers after a granted collision victim.
func (k *BitScheduler) rebroadcast(e *Entry) {
	penalty := int64(0)
	if k.cfg.Model == config.SchedSelectFreeSquashDep {
		penalty = 1 // squashed dependents pay one re-broadcast cycle
	}
	it := k.consumers(e.slot)
	for {
		c, ei, ok := it.next()
		if !ok {
			break
		}
		if k.eFlags[ei]&(edgeFinal|edgeDeaf) != 0 {
			continue
		}
		w := e.grant + int64(k.eAssumed[ei]) + penalty
		if k.cfg.Model == config.SchedSelectFreeScoreboard && k.eWake[ei] < w && c.state == StateIssued {
			// Pileup victim keeps its stale wake; the scoreboard will
			// catch it at its own check.
			continue
		}
		k.eWake[ei] = w
		k.refreshReady(c)
	}
}

// scoreboardCheck mirrors Scheduler.scoreboardCheck.
func (k *BitScheduler) scoreboardCheck(e *Entry) {
	if e.state != StateIssued {
		return
	}
	if k.operandsValidAt(e, e.grant) {
		return
	}
	k.stats.PileupVict++
	k.invalidate(e, k.now)
	// Re-arm the operand ready state: the replayed instruction waits for
	// real broadcasts instead of its stale speculative wakeups.
	base := e.slot * edgeStride
	for i := 0; i < int(k.nsrc[e.slot]); i++ {
		ei := base + i
		if k.eFlags[ei]&(edgeFinal|edgeDeaf) != 0 {
			continue
		}
		p := k.ent[k.eProd[ei]]
		switch p.state {
		case StateIssued:
			w := wakeFromGrant(k.cfg.Model, p, int(k.eAssumed[ei]))
			if p.ops[k.eOp[ei]].IsLoad && p.loadResolved[k.eOp[ei]] {
				w = maxI64(w, p.actualReady[k.eOp[ei]])
			}
			k.eWake[ei] = w
		case StateWaiting:
			k.eWake[ei] = never
		}
	}
	k.refreshReady(e)
}

// OperandsValid mirrors Scheduler.OperandsValid.
func (k *BitScheduler) OperandsValid(e *Entry) bool {
	return e.state == StateIssued && k.operandsValidAt(e, e.grant)
}

func (k *BitScheduler) operandsValidAt(e *Entry, g int64) bool {
	if k.ent[e.slot] != e {
		// No live slot: the entry settled, so its operands were valid.
		return true
	}
	base := e.slot * edgeStride
	for i := 0; i < int(k.nsrc[e.slot]); i++ {
		ei := base + i
		if k.eFlags[ei]&edgeFinal != 0 {
			if k.eActual[ei] > g {
				return false
			}
			continue
		}
		p := k.ent[k.eProd[ei]]
		switch p.state {
		case StateWaiting:
			return false
		default:
			ar := p.actualReady[k.eOp[ei]]
			if ar == never || ar > g {
				return false
			}
		}
	}
	return true
}

// fixupLoadMiss mirrors Scheduler.fixupLoadMiss.
func (k *BitScheduler) fixupLoadMiss(e *Entry) {
	if k.ent[e.slot] != e {
		return // settled before discovery: consumers were severed
	}
	actual := e.actualReady[0]
	it := k.consumers(e.slot)
	for {
		c, ei, ok := it.next()
		if !ok {
			break
		}
		if k.eFlags[ei]&(edgeFinal|edgeDeaf) != 0 {
			continue
		}
		if c.state == StateIssued && c.grant < actual {
			k.invalidate(c, k.now)
		}
		if k.eWake[ei] < actual {
			k.eWake[ei] = actual
		}
		k.refreshReady(c)
	}
}

// invalidate mirrors Scheduler.invalidate.
func (k *BitScheduler) invalidate(e *Entry, now int64) {
	if e.state != StateIssued {
		return
	}
	if e == k.suppressed {
		return // fault injection: this entry's replays are lost
	}
	if k.suppressReplay {
		k.suppressReplay = false
		k.suppressed = e
		return
	}
	e.state = StateWaiting
	e.replays++
	k.stats.Replays++
	limit := k.cfg.ReplayLimit
	if limit <= 0 {
		limit = DefaultReplayLimit
	}
	if e.replays > limit && k.err == nil {
		k.err = simerr.Livelock(simerr.Context{Cycle: now}, k.dumpEntry(e),
			"entry %d replayed %d times (limit %d)", e.id, e.replays, limit)
	}
	e.earliestSelect = now + int64(k.cfg.ReplayPenalty)
	if k.selectFree() {
		// The entry will re-request and re-broadcast.
		e.firstReq = -1
	}
	grantWas := e.grant
	e.grant = -1
	for i := 0; i < e.numOps; i++ {
		e.actualReady[i] = never
		e.loadResolved[i] = false
	}
	// Rescind wakeups derived from the cancelled grant (scoreboard mode
	// lets stale wakeups stand: pileup semantics).
	if k.cfg.Model != config.SchedSelectFreeScoreboard {
		it := k.consumers(e.slot)
		for {
			c, ei, ok := it.next()
			if !ok {
				break
			}
			if k.eFlags[ei]&edgeFinal != 0 {
				continue
			}
			k.eWake[ei] = never
			k.refreshReady(c)
			if c.state == StateIssued && c.grant >= grantWas {
				k.invalidate(c, now)
			}
		}
	}
	k.refreshReady(e)
}

// settleFinal drains the finality-candidate bitmap, looping because a
// producer's finality can make its (younger, possibly already-passed on
// a wrapped ring) consumers finalizable in the same cycle: a candidate
// set during a pass in a word the scan already moved past survives the
// pass and is caught by the next one. Each pass clears every bit it
// visits, so an empty mask means the settle is complete — the common
// cycle with no candidates exits on the first OR fold without touching
// the scan machinery.
func (k *BitScheduler) settleFinal(now int64) {
	for {
		var any uint64
		for _, w := range k.cand {
			any |= w
		}
		if any == 0 {
			return
		}
		// Inline circular bit walk with ageScan's lazy-read semantics:
		// each word is snapshotted when the cursor reaches it and its
		// snapshot bits cleared up front, so a candidate added to the
		// current word or behind the cursor survives to the next pass,
		// while one added ahead is picked up in this pass.
		start := k.startPos()
		sw := start >> 6
		sb := uint(start & 63)
		words := k.words
		for j := 0; j <= words; j++ {
			wi := sw + j
			if wi >= words {
				wi -= words
			}
			m := k.cand[wi]
			if j == 0 {
				m &^= 1<<sb - 1
			} else if j == words {
				m &= 1<<sb - 1
			}
			if m == 0 {
				continue
			}
			k.cand[wi] &^= m
			for m != 0 {
				b := bits.TrailingZeros64(m)
				m &= m - 1
				if e := k.ent[wi<<6+b]; e != nil {
					k.tryFinalizeSlot(e, now)
				}
			}
		}
	}
}

// tryFinalizeSlot mirrors Scheduler.tryFinalize, then releases the slot:
// masks cleared, consumer edges severed, occupancy dropped.
func (k *BitScheduler) tryFinalizeSlot(e *Entry, now int64) bool {
	if e.state != StateIssued {
		return false
	}
	s := e.slot
	base := s * edgeStride
	if k.open[s] != 0 {
		return false
	}
	for i := 0; i < int(k.nsrc[s]); i++ {
		if k.eActual[base+i] > e.grant {
			// Issued before an operand was actually ready and not yet
			// invalidated (transient, e.g. pending scoreboard check).
			return false
		}
	}
	for i := 0; i < e.numOps; i++ {
		if e.ops[i].IsLoad && !e.loadResolved[i] {
			return false
		}
		// A load's miss shadow must have passed before its result can
		// be considered settled for consumers.
		if e.ops[i].IsLoad && e.loadDiscover[i] > now {
			return false
		}
	}
	e.state = StateFinal
	// Sever consumer edges: pin their wake/actual times, then clear the
	// consumer mask and free the slot. A matching edge (eProd == s) is
	// never already final (every final-setting site clears eProd to -1),
	// so the producer match alone identifies the edges to sever.
	ps := int32(s)
	row := s * k.words
	for wi := 0; wi < k.words; wi++ {
		m := k.cons[row+wi]
		k.cons[row+wi] = 0
		for m != 0 {
			b := bits.TrailingZeros64(m)
			m &= m - 1
			cs := wi<<6 + b
			c := k.ent[cs]
			cbase := cs * edgeStride
			for i := 0; i < int(k.nsrc[cs]); i++ {
				ei := cbase + i
				if k.eProd[ei] != ps {
					continue
				}
				k.eFlags[ei] |= edgeFinal
				k.eProd[ei] = -1
				k.eActual[ei] = e.actualReady[k.eOp[ei]]
				k.open[cs]--
				if k.eFlags[ei]&edgeDeaf != 0 {
					continue // dropped wakeup: the finality broadcast is lost too
				}
				if k.eWake[ei] < k.eActual[ei] {
					if c.state == StateIssued && c.grant < k.eActual[ei] {
						// Safety net; replay fixups should already have
						// caught it.
						k.invalidate(c, now)
					}
					k.eWake[ei] = k.eActual[ei]
					k.refreshReady(c)
				}
			}
			if k.open[cs] == 0 && c.state == StateIssued {
				k.setCand(cs)
			}
		}
	}
	k.freeSlot(s)
	return true
}

func (k *BitScheduler) freeSlot(s int) {
	k.ent[s] = nil
	bitClear(k.live, s)
	bitClear(k.ready, s)
	bitClear(k.cand, s)
	k.recheckAt[s] = 0
	k.occupied--
	for k.oldestAge < k.nextAge {
		os := int(k.oldestAge & int64(k.n-1))
		if e := k.ent[os]; e != nil && e.age == k.oldestAge {
			break
		}
		k.oldestAge++
	}
}

// DependsOn mirrors Entry.DependsOn over the slot graph: whether e
// transitively depends on target through unresolved source edges.
func (k *BitScheduler) DependsOn(e, target *Entry) bool {
	if e == target {
		return true
	}
	if k.ent[e.slot] != e {
		return false // settled: all edges severed
	}
	clear(k.seen)
	k.depStack = k.depStack[:0]
	k.depStack = append(k.depStack, int32(e.slot))
	bitSet(k.seen, e.slot)
	for len(k.depStack) > 0 {
		s := int(k.depStack[len(k.depStack)-1])
		k.depStack = k.depStack[:len(k.depStack)-1]
		base := s * edgeStride
		for i := 0; i < int(k.nsrc[s]); i++ {
			ei := base + i
			if k.eFlags[ei]&edgeFinal != 0 {
				continue
			}
			ps := int(k.eProd[ei])
			if k.ent[ps] == target {
				return true
			}
			if !bitTest(k.seen, ps) {
				bitSet(k.seen, ps)
				k.depStack = append(k.depStack, int32(ps))
			}
		}
	}
	return false
}

// DebugActive returns the live entries oldest first (tests and
// diagnostics; allocates).
func (k *BitScheduler) DebugActive() []*Entry {
	out := make([]*Entry, 0, k.occupied)
	sc := newAgeScan(k.live, k.startPos())
	for {
		s, ok := sc.next()
		if !ok {
			return out
		}
		out = append(out, k.ent[s])
	}
}

// dumpEntry renders one entry's scheduling state for diagnostics.
func (k *BitScheduler) dumpEntry(e *Entry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "entry %d: state=%v replays=%d grant=%d ops=%d", e.id, e.state, e.replays, e.grant, e.numOps)
	if e.isMOP {
		b.WriteString(" (MOP)")
	}
	if e.pendingTail {
		b.WriteString(" (pending tail)")
	}
	for i := 0; i < e.numOps; i++ {
		fmt.Fprintf(&b, " seq=%d", e.ops[i].Seq)
	}
	if k.ent[e.slot] == e {
		base := e.slot * edgeStride
		for i := 0; i < int(k.nsrc[e.slot]); i++ {
			ei := base + i
			fmt.Fprintf(&b, "\n  src %d: wake=%s actual=%s final=%v deaf=%v",
				i, cycleStr(k.eWake[ei]), cycleStr(k.eActual[ei]),
				k.eFlags[ei]&edgeFinal != 0, k.eFlags[ei]&edgeDeaf != 0)
		}
	}
	return b.String()
}

// DumpActive renders up to limit non-final active entries, oldest first.
func (k *BitScheduler) DumpActive(limit int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scheduler: %d occupied, %d replays total, %d grants\n",
		k.occupied, k.stats.Replays, k.stats.Grants)
	n := 0
	sc := newAgeScan(k.live, k.startPos())
	for {
		s, ok := sc.next()
		if !ok {
			break
		}
		if n >= limit {
			fmt.Fprintf(&b, "... %d more active entries elided\n", k.occupied-n)
			break
		}
		b.WriteString(k.dumpEntry(k.ent[s]))
		b.WriteByte('\n')
		n++
	}
	return b.String()
}

// FaultDeafen mirrors Scheduler.FaultDeafen: deafen the first waiting
// entry's first undelivered source edge.
func (k *BitScheduler) FaultDeafen() bool {
	sc := newAgeScan(k.live, k.startPos())
	for {
		s, ok := sc.next()
		if !ok {
			return false
		}
		e := k.ent[s]
		if e.state != StateWaiting {
			continue
		}
		base := s * edgeStride
		for i := 0; i < int(k.nsrc[s]); i++ {
			ei := base + i
			if k.eFlags[ei]&(edgeFinal|edgeDeaf) != 0 || k.eWake[ei] <= k.now {
				continue
			}
			k.eFlags[ei] |= edgeDeaf
			k.eWake[ei] = never
			k.refreshReady(e)
			return true
		}
	}
}

// FaultSuppressReplay arms the lost-replay fault; see
// Scheduler.FaultSuppressReplay.
func (k *BitScheduler) FaultSuppressReplay() { k.suppressReplay = true }

// FaultReplaySuppressed reports whether the armed fault has fired.
func (k *BitScheduler) FaultReplaySuppressed() bool { return k.suppressed != nil }
