package sched

import (
	"fmt"
	"testing"

	"macroop/internal/config"
	"macroop/internal/isa"
)

// benchDrain releases every finalized entry in fifo order and returns the
// still-live tail, keeping the simulated window (and the free list)
// bounded while a benchmark inserts indefinitely.
func benchDrain(s *Scheduler, live []*Entry) []*Entry {
	n := 0
	for _, e := range live {
		if e.Final() {
			s.Release(e)
			continue
		}
		live[n] = e
		n++
	}
	return live[:n]
}

// BenchmarkInsert measures queue insertion (allocation, dependence
// translation, wakeup registration) on a warm free list: a rolling window
// of dependent ALU entries is inserted, ticked, and released.
func BenchmarkInsert(b *testing.B) {
	s := New(testCfg(config.SchedTwoCycle))
	var live []*Entry
	var prev *Entry
	cyc := int64(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cyc++
		e := s.Insert(OpInfo{FU: isa.ClassIntALU, Latency: 1}, []SrcSpec{{Prod: prev}}, false)
		prev = e
		live = append(live, e)
		s.Tick(cyc)
		// A serial chain issues one entry per two cycles; self-pace so the
		// queue holds steady instead of growing with b.N.
		for len(live) >= 32 {
			cyc++
			s.Tick(cyc)
			live = benchDrain(s, live)
		}
	}
}

// BenchmarkWakeup measures tag broadcast: one producer waking a full
// consumer group, driven to finality each round.
func BenchmarkWakeup(b *testing.B) {
	const fanout = 16
	s := New(testCfg(config.SchedTwoCycle))
	cyc := int64(0)
	var live []*Entry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := s.Insert(OpInfo{FU: isa.ClassIntALU, Latency: 1}, nil, false)
		live = append(live, p)
		for k := 0; k < fanout; k++ {
			c := s.Insert(OpInfo{FU: isa.ClassIntALU, Latency: 1}, []SrcSpec{{Prod: p}}, false)
			live = append(live, c)
		}
		// Width 4: the producer plus fanout consumers drain in ~5 selects.
		for t := 0; t < 8; t++ {
			cyc++
			s.Tick(cyc)
		}
		live = benchDrain(s, live)
	}
}

// benchKernelChain measures one kernel draining serial dependence chains
// of length win through an unrestricted queue: all win entries are
// inserted at once, then ticked to finality. The entry-linked kernel
// re-derives readiness for every live entry every cycle (O(win) per
// tick, O(win^2) per chain); the bit kernel only touches entries whose
// state changes, so the gap between the two grows with the window.
func benchKernelChain(b *testing.B, k config.SchedKernel, win int) {
	cfg := Config{Model: config.SchedBase, Width: 4, IQEntries: 0, ReplayPenalty: 2, Window: win}
	for c := range cfg.FU {
		cfg.FU[c] = 4
	}
	s := NewEngine(k, cfg)
	cyc := int64(0)
	ents := make([]*Entry, 0, win)
	srcs := make([]SrcSpec, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ents = ents[:0]
		var prev *Entry
		for j := 0; j < win; j++ {
			sp := srcs[:0]
			if prev != nil {
				srcs[0] = SrcSpec{Prod: prev}
				sp = srcs[:1]
			}
			prev = s.Insert(OpInfo{FU: isa.ClassIntALU, Latency: 1}, sp, false)
			ents = append(ents, prev)
		}
		for !prev.Final() {
			cyc++
			s.Tick(cyc)
		}
		for _, e := range ents {
			s.Release(e)
		}
	}
	b.ReportMetric(float64(b.N)*float64(win)/b.Elapsed().Seconds()/1e6, "Muops/s")
}

// BenchmarkKernelWindow compares the two kernels' tick cost as the live
// window grows; the uops/sec ratio at each size is the kernel-level
// speedup headline quoted in DESIGN.md section 12.
func BenchmarkKernelWindow(b *testing.B) {
	for _, win := range []int{32, 128, 512, 2048} {
		for _, k := range []config.SchedKernel{config.KernelEntry, config.KernelBitset} {
			b.Run(fmt.Sprintf("%v/win%d", k, win), func(b *testing.B) {
				benchKernelChain(b, k, win)
			})
		}
	}
}

// BenchmarkCycleLoopSched measures a bare scheduler tick over a queue
// kept at steady occupancy, isolating the wakeup/select loop from the
// core's fetch and rename stages.
func BenchmarkCycleLoopSched(b *testing.B) {
	s := New(testCfg(config.SchedTwoCycle))
	var live []*Entry
	var prev *Entry
	cyc := int64(0)
	insert := func() {
		e := s.Insert(OpInfo{FU: isa.ClassIntALU, Latency: 1}, []SrcSpec{{Prod: prev}}, false)
		prev = e
		live = append(live, e)
	}
	for i := 0; i < 32; i++ {
		insert()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cyc++
		s.Tick(cyc)
		if i%2 == 0 {
			insert()
		}
		if len(live) >= 64 {
			live = benchDrain(s, live)
		}
	}
}
