package sched

import (
	"macroop/internal/isa"

	"testing"

	"macroop/internal/config"
)

// Generation-guard and recycling tests for the bit kernel, ported from
// pool_test.go: entry structs are shared between kernels, but the bit
// kernel adds slot reuse (the age ring) and a fourth deferred-event ring
// (readiness re-checks) that must all be immune to stale state from a
// previous life.

func aluB(k *BitScheduler, srcs ...*Entry) *Entry {
	var sp []SrcSpec
	for _, p := range srcs {
		sp = append(sp, SrcSpec{Prod: p})
	}
	return k.Insert(OpInfo{FU: isa.ClassIntALU, Latency: 1}, sp, false)
}

func loadB(k *BitScheduler, srcs ...*Entry) *Entry {
	var sp []SrcSpec
	for _, p := range srcs {
		sp = append(sp, SrcSpec{Prod: p})
	}
	return k.Insert(OpInfo{FU: isa.ClassMem, Latency: 3, IsLoad: true}, sp, false)
}

func finalizeB(t *testing.T, k *BitScheduler, from, maxCycle int64, e *Entry, onGrant func(Grant)) int64 {
	t.Helper()
	for c := from; c <= maxCycle; c++ {
		for _, g := range k.Tick(c) {
			if onGrant != nil {
				onGrant(g)
			}
		}
		if e.Final() {
			return c + 1
		}
	}
	t.Fatalf("entry %d not final by cycle %d (state %v)", e.ID(), maxCycle, e.GetState())
	return 0
}

// consRowEmpty reports whether producer slot s has an all-zero consumer
// mask row.
func consRowEmpty(k *BitScheduler, s int) bool {
	for _, w := range k.cons[s*k.words : (s+1)*k.words] {
		if w != 0 {
			return false
		}
	}
	return true
}

// TestBitEntryRecycleNoStaleWakeups mirrors TestEntryRecycleNoStaleWakeups
// on the bit kernel: a released struct reused as a new instruction must
// start with a fresh identity, a bumped generation, and clean slot state
// — and granting its new life must wake only new-life consumers.
func TestBitEntryRecycleNoStaleWakeups(t *testing.T) {
	k := NewBit(testCfg(config.SchedBase))

	// Previous life: P produces for C; C also waits on a slow load Q, so C
	// is still live (waiting) when P is released.
	q := loadB(k)
	p := aluB(k)
	c := aluB(k, p, q)
	pSlot := p.slot
	now := finalizeB(t, k, 1, 50, p, func(g Grant) {
		if g.Entry == q {
			// Long DL1 miss: Q's data arrives at cycle 30.
			k.SetLoadResult(q, 0, 30, g.Cycle+4)
		}
	})
	if c.Final() {
		t.Fatal("consumer finalized before its load producer resolved")
	}
	if !consRowEmpty(k, pSlot) {
		t.Fatal("final producer's consumer mask row not cleared; finality must sever it")
	}

	oldID, oldGen := p.ID(), p.Gen()
	k.Release(p)
	if got := k.DebugFreeCount(); got != 1 {
		t.Fatalf("free list holds %d entries after release, want 1", got)
	}

	// New life: the recycled struct returns as P2 with a consumer D.
	p2 := aluB(k)
	if p2 != p {
		t.Fatalf("expected the free list to hand back the released struct")
	}
	if k.DebugFreeCount() != 0 {
		t.Fatal("allocation did not pop the free list")
	}
	if p2.ID() == oldID {
		t.Fatal("recycled entry kept its previous-life ID")
	}
	if p2.Gen() == oldGen {
		t.Fatal("recycled entry kept its previous-life generation")
	}
	if k.nsrc[p2.slot] != 0 || k.open[p2.slot] != 0 || !consRowEmpty(k, p2.slot) {
		t.Fatalf("recycled entry's slot %d starts dirty: nsrc=%d open=%d",
			p2.slot, k.nsrc[p2.slot], k.open[p2.slot])
	}
	d := aluB(k, p2)

	granted := map[*Entry]int64{}
	for cyc := now; cyc <= 60; cyc++ {
		for _, g := range k.Tick(cyc) {
			granted[g.Entry] = g.Cycle
		}
	}
	if _, ok := granted[p2]; !ok {
		t.Fatal("recycled producer never granted in its new life")
	}
	if _, ok := granted[d]; !ok {
		t.Fatal("new-life consumer never granted")
	}
	if granted[d] <= granted[p2] {
		t.Fatalf("new-life consumer granted at %d, producer at %d", granted[d], granted[p2])
	}
	// C's wakeup must come from Q's actual readiness (cycle 30), not from
	// the recycled struct's new-life broadcast.
	if granted[c] <= granted[p2] {
		t.Fatalf("previous-life consumer woke at %d, with the recycled entry's grant at %d — stale edge",
			granted[c], granted[p2])
	}
	if granted[c] < 30 {
		t.Fatalf("previous-life consumer granted at %d, before its load operand was ready at 30", granted[c])
	}
}

// TestBitDeferredEventGenGuard: deferred per-entry events (scoreboard
// check, load-miss discovery, readiness re-check, finality re-check)
// scheduled against one life of an Entry struct must not fire into the
// next life after the struct is recycled.
func TestBitDeferredEventGenGuard(t *testing.T) {
	k := NewBit(testCfg(config.SchedSelectFreeScoreboard))
	p := aluB(k)
	finalizeB(t, k, 1, 20, p, nil)

	// Forge stale deferred events in every ring: scheduled against p's
	// current life, firing at cycles 40..43, with p released (and
	// recycled) in between.
	k.sbEvents.push(k.now, 40, p)
	k.loadEvents.push(k.now, 41, p)
	k.readyEvents.push(k.now, 42, p)
	k.finalEvents.push(k.now, 43, p)
	k.Release(p)

	p2 := aluB(k)
	if p2 != p {
		t.Fatal("expected the free list to hand back the released struct")
	}
	granted := map[*Entry]int64{}
	for cyc := k.now + 1; cyc <= 45; cyc++ {
		for _, g := range k.Tick(cyc) {
			granted[g.Entry] = g.Cycle
		}
	}
	if err := k.Err(); err != nil {
		t.Fatalf("stale deferred event corrupted the scheduler: %v", err)
	}
	if !p2.Final() {
		t.Fatalf("recycled entry's new life did not complete (state %v)", p2.GetState())
	}
	if _, ok := granted[p2]; !ok {
		t.Fatal("recycled entry never granted in its new life")
	}
}

// TestBitStaleSlotEventGuard covers the window the entry kernel does not
// have: after finality the slot is freed while the struct (same
// generation) is still held by the core. An event passing the generation
// guard in that window must not touch the slot's next occupant.
func TestBitStaleSlotEventGuard(t *testing.T) {
	cfg := testCfg(config.SchedBase)
	cfg.Window = 8 // small age ring so the freed slot recurs quickly
	k := NewBit(cfg)
	p := aluB(k)
	slot := p.slot
	now := finalizeB(t, k, 1, 20, p, nil)

	// p is final and its slot freed, but not yet released: its gen is
	// still current. Forge readiness and finality re-checks against it.
	k.readyEvents.push(k.now, now+2, p)
	k.finalEvents.push(k.now, now+3, p)

	// A new entry claims slots by age; drive inserts until the freed slot
	// is reused (the ring wraps within n inserts).
	var usurper *Entry
	for i := 0; i < k.n+1 && usurper == nil; i++ {
		e := aluB(k)
		if e.slot == slot {
			usurper = e
		}
	}
	if usurper == nil {
		t.Fatalf("slot %d never reused after %d inserts", slot, k.n+1)
	}
	for cyc := now; cyc <= now+40; cyc++ {
		k.Tick(cyc)
	}
	if err := k.Err(); err != nil {
		t.Fatalf("stale slot event corrupted the scheduler: %v", err)
	}
	if !usurper.Final() {
		t.Fatalf("slot usurper never completed (state %v)", usurper.GetState())
	}
	k.Release(p)
}

// TestBitReleaseRefcounting mirrors TestReleaseRefcounting on the bit
// kernel.
func TestBitReleaseRefcounting(t *testing.T) {
	k := NewBit(testCfg(config.SchedBase))
	p := aluB(k)
	p.Retain()
	finalizeB(t, k, 1, 20, p, nil)

	k.Release(p)
	if k.DebugFreeCount() != 0 {
		t.Fatal("entry recycled while a retained reference was outstanding")
	}
	k.Release(p)
	if k.DebugFreeCount() != 1 {
		t.Fatal("entry not recycled after the last reference dropped")
	}

	// Releasing a non-final entry to zero must panic (typed internal
	// error), not silently recycle a live entry.
	q := aluB(k)
	defer func() {
		if recover() == nil {
			t.Fatal("releasing a live entry to refcount zero did not panic")
		}
	}()
	k.Release(q)
}
