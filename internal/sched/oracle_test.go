package sched

import (
	"testing"

	"macroop/internal/config"
	"macroop/internal/isa"
	"macroop/internal/rng"
)

// oracle computes, for a DAG of single-op entries with no structural
// contention (unbounded width and units) and no loads, the earliest cycle
// each node can issue under the base and 2-cycle models:
//
//	base:   issue(n) = max(insert+1, max over deps(issue(d) + L(d)))
//	2cycle: issue(n) = max(insert+1, max over deps(issue(d) + max(L(d),2)))
type oracleNode struct {
	lat  int
	deps []int
}

func oracleIssue(nodes []oracleNode, twoCycle bool) []int64 {
	out := make([]int64, len(nodes))
	for i, n := range nodes {
		t := int64(1) // all inserted at cycle 0, selectable from 1
		for _, d := range n.deps {
			lat := int64(nodes[d].lat)
			if twoCycle && lat < 2 {
				lat = 2
			}
			if v := out[d] + lat; v > t {
				t = v
			}
		}
		out[i] = t
	}
	return out
}

// TestOracleAgreement cross-checks the wakeup/select engine against the
// analytic oracle on random DAGs, with contention disabled (wide machine).
func TestOracleAgreement(t *testing.T) {
	r := rng.New(4242)
	for trial := 0; trial < 40; trial++ {
		n := 10 + r.Intn(40)
		nodes := make([]oracleNode, n)
		for i := range nodes {
			lat := 1
			switch r.Intn(6) {
			case 0:
				lat = 3 // MUL
			case 1:
				lat = 2 // FP add
			}
			nd := oracleNode{lat: lat}
			for k := 0; k < 2; k++ {
				if i > 0 && r.Bool(0.5) {
					nd.deps = append(nd.deps, r.Intn(i))
				}
			}
			nodes[i] = nd
		}
		for _, twoCycle := range []bool{false, true} {
			model := config.SchedBase
			if twoCycle {
				model = config.SchedTwoCycle
			}
			cfg := Config{Model: model, Width: 64, ReplayPenalty: 2}
			for i := range cfg.FU {
				cfg.FU[i] = 64
			}
			s := New(cfg)
			entries := make([]*Entry, n)
			for i, nd := range nodes {
				var srcs []SrcSpec
				for _, d := range nd.deps {
					srcs = append(srcs, SrcSpec{Prod: entries[d]})
				}
				fu := isa.ClassIntALU
				entries[i] = s.Insert(OpInfo{FU: fu, Latency: nd.lat}, srcs, false)
			}
			got := make([]int64, n)
			for c := int64(1); c < 500; c++ {
				for _, g := range s.Tick(c) {
					got[indexOf(entries, g.Entry)] = g.Cycle
				}
			}
			want := oracleIssue(nodes, twoCycle)
			for i := range nodes {
				if got[i] != want[i] {
					t.Fatalf("trial %d %v node %d: issued at %d, oracle %d (lat %d deps %v)",
						trial, model, i, got[i], want[i], nodes[i].lat, nodes[i].deps)
				}
			}
		}
	}
}

func indexOf(es []*Entry, e *Entry) int {
	for i, x := range es {
		if x == e {
			return i
		}
	}
	return -1
}
