package sched

import (
	"fmt"
	"testing"

	"macroop/internal/config"
	"macroop/internal/isa"
)

func chainIPC(t *testing.T, model config.SchedModel, n int) float64 {
	t.Helper()
	cfg := Config{Model: model, Width: 4, ReplayPenalty: 2}
	for i := range cfg.FU {
		cfg.FU[i] = 4
	}
	s := New(cfg)
	var prev *Entry
	for i := 0; i < n; i++ {
		var srcs []SrcSpec
		if prev != nil {
			srcs = []SrcSpec{{Prod: prev, ProdOp: 0}}
		}
		prev = s.Insert(OpInfo{Seq: int64(i), FU: isa.ClassIntALU, Latency: 1}, srcs, false)
	}
	granted := 0
	var cyc int64
	for cyc = 1; granted < n && cyc < int64(10*n+100); cyc++ {
		granted += len(s.Tick(cyc))
	}
	return float64(n) / float64(cyc)
}

func TestChainThroughput(t *testing.T) {
	for _, m := range []config.SchedModel{config.SchedBase, config.SchedTwoCycle} {
		fmt.Printf("%v: chain IPC = %.3f\n", m, chainIPC(t, m, 400))
	}
}
