package sched

import (
	"testing"

	"macroop/internal/config"
	"macroop/internal/isa"
	"macroop/internal/rng"
)

func testCfg(model config.SchedModel) Config {
	cfg := Config{Model: model, Width: 4, ReplayPenalty: 2}
	cfg.FU = [isa.NumClasses]int{4, 2, 2, 2, 2, 4}
	return cfg
}

// alu inserts a single-cycle ALU entry.
func alu(s *Scheduler, srcs ...*Entry) *Entry {
	var sp []SrcSpec
	for _, p := range srcs {
		sp = append(sp, SrcSpec{Prod: p})
	}
	return s.Insert(OpInfo{FU: isa.ClassIntALU, Latency: 1}, sp, false)
}

// load inserts a load entry with assumed latency 3 (agen 1 + DL1 hit 2).
func load(s *Scheduler, srcs ...*Entry) *Entry {
	var sp []SrcSpec
	for _, p := range srcs {
		sp = append(sp, SrcSpec{Prod: p})
	}
	return s.Insert(OpInfo{FU: isa.ClassMem, Latency: 3, IsLoad: true}, sp, false)
}

// drive ticks the scheduler from cycle 1 to maxCycle, recording the final
// grant cycle of each op.
func drive(s *Scheduler, maxCycle int64, onGrant func(Grant)) map[*Entry][2]int64 {
	grants := map[*Entry][2]int64{}
	for c := int64(1); c <= maxCycle; c++ {
		for _, g := range s.Tick(c) {
			v := grants[g.Entry]
			v[g.OpIdx] = g.Cycle
			grants[g.Entry] = v
			if onGrant != nil {
				onGrant(g)
			}
		}
	}
	return grants
}

// TestFigure5Timing reproduces the paper's Figure 5 wakeup/select timings:
//
//	1: add r1   2: lw r4,0(r1)   3: sub r5,r1   4: bez r5
//
// atomic: 1@n, {2,3}@n+1, 4@n+2; 2-cycle: 1@n, {2,3}@n+2, 4@n+4;
// 2-cycle macro-op with MOP(1,3): MOP@n (1@n, 3@n+1), {2,4}@n+2.
func TestFigure5Timing(t *testing.T) {
	// Atomic (base).
	{
		s := New(testCfg(config.SchedBase))
		i1 := alu(s)
		i2 := load(s, i1)
		i3 := alu(s, i1)
		i4 := alu(s, i3)
		g := drive(s, 20, func(gr Grant) {
			if gr.Entry == i2 {
				s.SetLoadResult(i2, 0, gr.Cycle+3, gr.Cycle+6)
			}
		})
		if g[i1][0] != 1 || g[i2][0] != 2 || g[i3][0] != 2 || g[i4][0] != 3 {
			t.Fatalf("atomic: 1@%d 2@%d 3@%d 4@%d, want 1,2,2,3",
				g[i1][0], g[i2][0], g[i3][0], g[i4][0])
		}
	}
	// 2-cycle.
	{
		s := New(testCfg(config.SchedTwoCycle))
		i1 := alu(s)
		i2 := load(s, i1)
		i3 := alu(s, i1)
		i4 := alu(s, i3)
		g := drive(s, 20, func(gr Grant) {
			if gr.Entry == i2 {
				s.SetLoadResult(i2, 0, gr.Cycle+3, gr.Cycle+6)
			}
		})
		if g[i1][0] != 1 || g[i2][0] != 3 || g[i3][0] != 3 || g[i4][0] != 5 {
			t.Fatalf("2-cycle: 1@%d 2@%d 3@%d 4@%d, want 1,3,3,5",
				g[i1][0], g[i2][0], g[i3][0], g[i4][0])
		}
	}
	// 2-cycle macro-op: MOP(1,3) fused; 2 and 4 single.
	{
		s := New(testCfg(config.SchedMOP))
		mop := s.Insert(OpInfo{FU: isa.ClassIntALU, Latency: 1}, nil, true)
		i2 := load(s, mop) // consumer of the head's value
		s.AttachTail(mop, OpInfo{FU: isa.ClassIntALU, Latency: 1}, nil)
		i4 := alu(s, mop) // consumer of the tail's value (same single tag)
		g := drive(s, 20, func(gr Grant) {
			if gr.Entry == i2 {
				s.SetLoadResult(i2, 0, gr.Cycle+3, gr.Cycle+6)
			}
		})
		if g[mop][0] != 1 || g[mop][1] != 2 {
			t.Fatalf("MOP sequenced at %d,%d, want 1,2", g[mop][0], g[mop][1])
		}
		if g[i2][0] != 3 || g[i4][0] != 3 {
			t.Fatalf("MOP consumers at %d,%d, want 3,3 (select at n+2)", g[i2][0], g[i4][0])
		}
	}
}

func TestMOPTailBlocksIssueSlot(t *testing.T) {
	// A sequencing MOP occupies its issue slot in the next cycle: with
	// width 4, a MOP plus 4 ready singles leave only 3 slots next cycle.
	cfg := testCfg(config.SchedMOP)
	s := New(cfg)
	mop := s.Insert(OpInfo{FU: isa.ClassIntALU, Latency: 1}, nil, true)
	s.AttachTail(mop, OpInfo{FU: isa.ClassIntALU, Latency: 1}, nil)
	singles := make([]*Entry, 7)
	for i := range singles {
		singles[i] = alu(s)
	}
	perCycle := map[int64]int{}
	for c := int64(1); c <= 5; c++ {
		perCycle[c] = len(s.Tick(c))
	}
	// Cycle 1: MOP head + 3 singles. Cycle 2: tail (carry) + 3 more
	// singles = 4 grants but one is the tail. Cycle 3: last single.
	if perCycle[1] != 4 || perCycle[2] != 4 || perCycle[3] != 1 {
		t.Fatalf("per-cycle grants: %v", perCycle)
	}
}

func TestFUContention(t *testing.T) {
	s := New(testCfg(config.SchedBase))
	for i := 0; i < 3; i++ {
		load(s)
	}
	g1 := s.Tick(1)
	if len(g1) != 2 {
		t.Fatalf("2 memory ports, got %d grants", len(g1))
	}
	g2 := s.Tick(2)
	if len(g2) != 1 {
		t.Fatalf("leftover load: %d grants", len(g2))
	}
}

func TestWidthLimit(t *testing.T) {
	s := New(testCfg(config.SchedBase))
	// 6 ALU ready, width 4 (and 4 ALUs): 4 then 2.
	for i := 0; i < 6; i++ {
		alu(s)
	}
	if n := len(s.Tick(1)); n != 4 {
		t.Fatalf("width violation: %d", n)
	}
	if n := len(s.Tick(2)); n != 2 {
		t.Fatalf("leftovers: %d", n)
	}
}

func TestOldestFirstSelection(t *testing.T) {
	s := New(testCfg(config.SchedBase))
	var es []*Entry
	for i := 0; i < 6; i++ {
		es = append(es, alu(s))
	}
	g := s.Tick(1)
	for i := 0; i < 4; i++ {
		if g[i].Entry != es[i] {
			t.Fatalf("grant %d went to a younger entry", i)
		}
	}
}

func TestLoadMissSelectiveReplay(t *testing.T) {
	s := New(testCfg(config.SchedBase))
	ld := load(s)
	c1 := alu(s, ld) // direct consumer
	c2 := alu(s, c1) // transitive consumer
	grants := map[*Entry][]int64{}
	for c := int64(1); c <= 80; c++ {
		for _, g := range s.Tick(c) {
			grants[g.Entry] = append(grants[g.Entry], g.Cycle)
			if g.Entry == ld && len(grants[ld]) == 1 {
				// Miss: data at cycle 1+50; discovered at 1+6.
				s.SetLoadResult(ld, 0, 51, 7)
			}
		}
	}
	if len(grants[c1]) < 2 {
		t.Fatalf("shadow consumer not replayed: grants %v", grants[c1])
	}
	if g := grants[c1][len(grants[c1])-1]; g < 51 {
		t.Fatalf("consumer reissued at %d, before data at 51", g)
	}
	if g := grants[c2][len(grants[c2])-1]; g < 52 {
		t.Fatalf("transitive consumer reissued at %d", g)
	}
	if !c1.Final() || !c2.Final() || !ld.Final() {
		t.Fatal("entries not finalized after replay settles")
	}
	if s.Stats().Replays == 0 {
		t.Fatal("replays not counted")
	}
}

func TestLoadHitNoReplay(t *testing.T) {
	s := New(testCfg(config.SchedBase))
	ld := load(s)
	c1 := alu(s, ld)
	replays0 := s.Stats().Replays
	for c := int64(1); c <= 20; c++ {
		for _, g := range s.Tick(c) {
			if g.Entry == ld {
				s.SetLoadResult(ld, 0, g.Cycle+3, g.Cycle+6) // hit: actual == assumed
			}
		}
	}
	if s.Stats().Replays != replays0 {
		t.Fatal("hit caused replays")
	}
	if c1.Grant() != 4 {
		t.Fatalf("consumer granted at %d, want 4 (load@1 + 3)", c1.Grant())
	}
}

func TestConsumerAfterMissDiscoveryWaits(t *testing.T) {
	// A consumer inserted after the miss is known must not issue early.
	s := New(testCfg(config.SchedBase))
	ld := load(s)
	var c1 *Entry
	for c := int64(1); c <= 80; c++ {
		for _, g := range s.Tick(c) {
			if g.Entry == ld && c1 == nil {
				s.SetLoadResult(ld, 0, 51, 7)
			}
		}
		if c == 10 && c1 == nil {
			c1 = alu(s, ld) // inserted mid-shadow
		}
	}
	if c1.Grant() < 51 {
		t.Fatalf("late consumer granted at %d, before data", c1.Grant())
	}
}

func TestPendingTailGating(t *testing.T) {
	s := New(testCfg(config.SchedMOP))
	head := s.Insert(OpInfo{FU: isa.ClassIntALU, Latency: 1}, nil, true)
	if g := s.Tick(1); len(g) != 0 {
		t.Fatal("pending head issued before its tail arrived")
	}
	s.AttachTail(head, OpInfo{FU: isa.ClassIntALU, Latency: 1}, nil)
	if g := s.Tick(2); len(g) != 1 || g[0].Entry != head {
		t.Fatal("completed MOP did not issue")
	}
}

func TestCancelTailDemotion(t *testing.T) {
	s := New(testCfg(config.SchedMOP))
	head := s.Insert(OpInfo{FU: isa.ClassIntALU, Latency: 1}, nil, true)
	s.Tick(1)
	s.CancelTail(head)
	if g := s.Tick(2); len(g) != 1 || g[0].Entry.IsMOP() {
		t.Fatal("demoted head did not issue as a single")
	}
}

func TestIQOccupancyAndRelease(t *testing.T) {
	cfg := testCfg(config.SchedBase)
	cfg.IQEntries = 4
	s := New(cfg)
	for i := 0; i < 4; i++ {
		alu(s)
	}
	if s.HasSpace(1) {
		t.Fatal("full queue reports space")
	}
	s.Tick(1) // all four issue; simple ALUs finalize immediately
	if !s.HasSpace(4) {
		t.Fatalf("entries not released: occupied %d", s.Occupied())
	}
}

func TestUnrestrictedQueue(t *testing.T) {
	s := New(testCfg(config.SchedBase)) // IQEntries 0
	for i := 0; i < 1000; i++ {
		alu(s)
	}
	if !s.HasSpace(1000) {
		t.Fatal("unrestricted queue reported full")
	}
}

func TestSelectFreeCollisionSquashDep(t *testing.T) {
	s := New(testCfg(config.SchedSelectFreeSquashDep))
	// 5 ready ALUs, width 4: one collision victim.
	var es []*Entry
	for i := 0; i < 5; i++ {
		es = append(es, alu(s))
	}
	victimChild := alu(s, es[4]) // child of the future victim
	g1 := s.Tick(1)
	if len(g1) != 4 {
		t.Fatalf("grants at 1: %d", len(g1))
	}
	if s.Stats().CollisionVict != 1 {
		t.Fatalf("collision victims: %d", s.Stats().CollisionVict)
	}
	for c := int64(2); c <= 10; c++ {
		s.Tick(c)
	}
	// Victim granted at 2; squashed child re-woken at grant+L+1 = 4.
	if victimChild.Grant() != 4 {
		t.Fatalf("squashed child granted at %d, want 4 (rebroadcast penalty)", victimChild.Grant())
	}
}

func TestSelectFreeNoCollisionMatchesBase(t *testing.T) {
	// Without contention, squash-dep times exactly like base.
	for _, model := range []config.SchedModel{config.SchedBase, config.SchedSelectFreeSquashDep} {
		s := New(testCfg(model))
		a := alu(s)
		b := alu(s, a)
		c := alu(s, b)
		drive(s, 10, nil)
		if a.Grant() != 1 || b.Grant() != 2 || c.Grant() != 3 {
			t.Fatalf("%v: chain at %d,%d,%d, want 1,2,3", model, a.Grant(), b.Grant(), c.Grant())
		}
	}
}

func TestScoreboardPileup(t *testing.T) {
	s := New(testCfg(config.SchedSelectFreeScoreboard))
	// Create contention: 6 ready ALUs (2 collision victims), with a
	// dependence chain hanging off a victim. Children wake speculatively,
	// issue invalidly, and replay as pileup victims.
	var es []*Entry
	for i := 0; i < 6; i++ {
		es = append(es, alu(s))
	}
	child := alu(s, es[5])
	grand := alu(s, child)
	drive(s, 30, nil)
	if s.Stats().CollisionVict == 0 {
		t.Fatal("no collision victims under contention")
	}
	if !child.Final() || !grand.Final() {
		t.Fatal("pileup chain never settled")
	}
	// Timing must still be correct in the end: child after parent.
	if child.Grant() < es[5].Grant()+1 || grand.Grant() < child.Grant()+1 {
		t.Fatalf("pileup settled with invalid timing: %d %d %d",
			es[5].Grant(), child.Grant(), grand.Grant())
	}
}

func TestMOPConsumerOfHeadAndTail(t *testing.T) {
	// Figure 5's property: tail consumers run back-to-back with the tail,
	// head consumers behave like 2-cycle scheduling.
	s := New(testCfg(config.SchedMOP))
	mop := s.Insert(OpInfo{FU: isa.ClassIntALU, Latency: 1}, nil, true)
	s.AttachTail(mop, OpInfo{FU: isa.ClassIntALU, Latency: 1}, nil)
	cons := alu(s, mop)
	g := drive(s, 10, nil)
	if g[mop][0] != 1 || g[mop][1] != 2 || cons.Grant() != 3 {
		t.Fatalf("MOP@%d/%d consumer@%d, want 1/2/3", g[mop][0], g[mop][1], cons.Grant())
	}
	// The tail executed at cycle 2 with latency 1: the consumer at cycle
	// 3 is back-to-back. ActualReady confirms correctness.
	if mop.ActualReady(1) != 3 {
		t.Fatalf("tail result at %d, want 3", mop.ActualReady(1))
	}
}

func TestMultiCycleOpsUnaffectedByTwoCycle(t *testing.T) {
	// MUL (3 cycles): consumers issue at g+3 under both base and 2-cycle
	// (multi-cycle latencies hide the pipelined scheduling bubble).
	for _, model := range []config.SchedModel{config.SchedBase, config.SchedTwoCycle} {
		s := New(testCfg(model))
		m := s.Insert(OpInfo{FU: isa.ClassIntMul, Latency: 3}, nil, false)
		c := alu(s, m)
		drive(s, 10, nil)
		if c.Grant() != m.Grant()+3 {
			t.Fatalf("%v: MUL consumer at %d (MUL at %d)", model, c.Grant(), m.Grant())
		}
	}
}

// TestRandomDAGInvariants drives random dependence DAGs through every
// model and checks the fundamental invariants: every entry finalizes, and
// no entry's final grant precedes the actual availability of its operands.
func TestRandomDAGInvariants(t *testing.T) {
	models := []config.SchedModel{
		config.SchedBase, config.SchedTwoCycle, config.SchedMOP,
		config.SchedSelectFreeSquashDep, config.SchedSelectFreeScoreboard,
	}
	r := rng.New(77)
	for trial := 0; trial < 20; trial++ {
		for _, model := range models {
			cfg := testCfg(model)
			cfg.IQEntries = 16
			s := New(cfg)
			var entries []*Entry
			inFlight := 0
			insertOne := func() {
				var sp []SrcSpec
				for k := 0; k < 2 && len(entries) > 0; k++ {
					if r.Bool(0.6) {
						sp = append(sp, SrcSpec{Prod: entries[r.Intn(len(entries))]})
					}
				}
				var e *Entry
				if r.Bool(0.25) {
					e = s.Insert(OpInfo{FU: isa.ClassMem, Latency: 3, IsLoad: true}, sp, false)
				} else {
					e = s.Insert(OpInfo{FU: isa.ClassIntALU, Latency: 1}, sp, false)
				}
				entries = append(entries, e)
				inFlight++
			}
			total := 60 + r.Intn(60)
			made := 0
			for c := int64(1); c < 100000; c++ {
				for made < total && s.HasSpace(1) && r.Bool(0.8) {
					insertOne()
					made++
				}
				for _, g := range s.Tick(c) {
					e := g.Entry
					if e.Op(g.OpIdx).IsLoad && g.OpIdx == 0 {
						if s.OperandsValid(e) {
							extra := int64(0)
							if r.Bool(0.3) {
								extra = int64(10 + r.Intn(100))
							}
							s.SetLoadResult(e, 0, g.Cycle+3+extra, g.Cycle+6)
						}
					}
				}
				done := true
				for _, e := range entries {
					if !e.Final() {
						done = false
						break
					}
				}
				if made == total && done {
					break
				}
			}
			for i, e := range entries {
				if !e.Final() {
					t.Fatalf("trial %d %v: entry %d never finalized", trial, model, i)
				}
			}
		}
	}
}
