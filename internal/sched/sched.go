// Package sched implements the instruction scheduling logic of the paper:
// the wakeup and select loop, in five variants (Section 6.2):
//
//   - base: ideally pipelined scheduling, equivalent to atomic 1-cycle
//     wakeup+select — a dependent of a producer issued at cycle g with
//     latency L may be selected at g+L;
//   - 2-cycle: pipelined wakeup|select — dependents selectable at
//     g+max(L,2), putting a bubble after every single-cycle producer;
//   - macro-op: built on 2-cycle scheduling; an issue queue entry may hold
//     two fused single-cycle instructions (a MOP) that issue as a unit —
//     the head at g, the tail at g+1 — and broadcast a single tag that
//     makes all consumers selectable at g+2 (so tail consumers run
//     back-to-back, Figure 5);
//   - select-free (squash-dep / scoreboard): speculative wakeup at request
//     time per Brown et al. [8]; collision victims either squash their
//     speculatively woken dependents (ideal) or let them issue and replay
//     as pileup victims detected by a register-file scoreboard.
//
// The scheduler also owns speculative-scheduling replay: loads are assumed
// to hit the DL1, and dependents issued inside a load's miss shadow are
// selectively invalidated and reissued after the miss resolves (the base
// machine's "selective replay, 2-cycle penalty" of Table 1).
//
// The package is timing-only: the core (internal/core) decides what the
// instructions are and what memory does; the scheduler decides when each
// queue entry issues.
package sched

import (
	"fmt"
	"strings"

	"macroop/internal/config"
	"macroop/internal/isa"
	"macroop/internal/simerr"
)

const never = int64(1) << 62

// MaxMOPOps is the largest number of original instructions one issue
// queue entry can hold. The paper evaluates pairs (2) and characterizes
// groups up to its 8-instruction scope (Figure 7); chained MOPs are its
// "future work" extension (Section 4.3), supported here up to 8
// (wired-OR wakeup only).
const MaxMOPOps = 8

// Config parameterizes a Scheduler.
type Config struct {
	Model config.SchedModel
	// Width is the issue width (grants per cycle).
	Width int
	// IQEntries bounds occupied entries; 0 means unrestricted.
	IQEntries int
	// FU[class] is the number of functional units of each isa.Class.
	FU [isa.NumClasses]int
	// ReplayPenalty is the extra delay before an invalidated entry may
	// reissue (Table 1: 2 cycles).
	ReplayPenalty int
	// ScoreboardDelay is the latency from an invalid select-free issue to
	// its detection by the register-file scoreboard.
	ScoreboardDelay int
	// ReplayLimit is the per-entry replay count above which the scheduler
	// declares a livelock (replay storm) through Err instead of replaying
	// further; 0 means DefaultReplayLimit.
	ReplayLimit int
	// Window is a hint for the maximum number of simultaneously live
	// entries (the core passes its ROB size: every non-final entry keeps
	// at least one uncommitted op in the in-order ROB, so the live age
	// span never exceeds it). The bitset kernel sizes its age ring from
	// it and grows on demand if the hint is exceeded; the entry kernel
	// ignores it. 0 picks a default.
	Window int
}

// DefaultReplayLimit is the per-entry replay-storm threshold used when
// Config.ReplayLimit is zero. A legitimate entry replays once per
// overlapping load-miss shadow, so triple digits already indicates a
// wakeup loss; the default keeps a wide safety margin.
const DefaultReplayLimit = 10000

// OpInfo describes one original instruction inside an entry.
type OpInfo struct {
	Seq     int64
	FU      isa.Class
	Latency int // scheduler-assumed result latency (loads: agen+DL1 hit)
	IsLoad  bool
}

// State is the lifecycle of an entry.
type State uint8

// Entry states.
const (
	StateWaiting State = iota
	StateIssued
	StateFinal
)

type srcEdge struct {
	prod    *Entry
	prodOp  int
	assumed int   // assumed producer result latency for this operand
	wake    int64 // scheduler-visible ready cycle (never = unknown)
	final   bool
	actual  int64 // actual operand availability once known
	// deaf marks a fault-injected edge whose wakeup broadcasts are lost
	// (internal/fault's dropped-wakeup fault): no wake path may ever set
	// its wake time again, so the consumer starves and the watchdog must
	// catch it.
	deaf bool
}

type consRef struct {
	entry  *Entry
	srcIdx int
}

// Entry is one issue queue entry: a single instruction, or a macro-op of
// two instructions sharing the entry (Section 3.1).
//
// Field order is deliberate: the scalars the scheduling loop touches per
// entry per cycle (state, grant, slot, refs, and the core's per-grant
// UserIdx read) are grouped ahead of the MaxMOPOps-sized arrays, so the
// hot accesses share the struct's first cache line instead of straddling
// the ~200 bytes of op storage.
type Entry struct {
	state State
	// gen counts reuses of this Entry struct through the scheduler's free
	// list. Deferred events (entryRing) record the generation they were
	// scheduled against so a stale event cannot touch a recycled entry's
	// new life.
	gen uint32
	// refs counts external holders of this entry beyond the scheduler's
	// own graph: one per member op (taken by Insert/AttachOp, dropped by
	// the core at that op's commit) plus any Retain'd rename-table or
	// producer-record reference. The entry returns to the free list when
	// the count reaches zero after finality.
	refs int32

	grant          int64 // cycle op0 was granted (most recent)
	earliestSelect int64
	firstReq       int64 // select-free: cycle of first selection request

	// slot is the entry's index into the bitset kernel's parallel arrays
	// for its current life (BitScheduler only; the entry kernel leaves
	// it untouched).
	slot int

	// UserIdx carries an index-valued per-entry payload (the SoA core
	// layout's packed head-uop handle; opaque here). Unlike UserData,
	// storing an integer here never allocates. Zero means unset; both
	// kernels clear it when the entry is recycled.
	UserIdx uint64

	numOps        int
	isMOP         bool
	everRequested bool
	// pendingTail marks a MOP head waiting for its tail to be inserted
	// (Section 5.2.3); the entry does not request selection until then.
	pendingTail bool

	id      int64
	age     int64
	replays int

	ops [MaxMOPOps]OpInfo

	// actualReady[i] is when op i's result is actually available to a
	// consumer issuing at that cycle or later. For non-loads it follows
	// from the grant; for loads the core sets it via SetLoadResult.
	actualReady [MaxMOPOps]int64
	// loadDiscover[i] is when a load op's assumed/actual mismatch becomes
	// known (address generated, cache probed).
	loadDiscover [MaxMOPOps]int64
	loadResolved [MaxMOPOps]bool

	srcs      []srcEdge
	consumers []consRef

	// UserData carries the core's per-entry payload (opaque here).
	UserData any
}

// ID returns the entry's unique id. Ids are unique across entry reuse:
// a recycled Entry struct gets a fresh id for each life.
func (e *Entry) ID() int64 { return e.id }

// Gen returns the entry's reuse generation (incremented on each release
// to the free list). Holders of long-lived references can compare it to
// detect that the entry has moved on to a new life.
func (e *Entry) Gen() uint32 { return e.gen }

// Retain adds one reference to the entry, deferring its return to the
// free list until a matching Scheduler.Release. The core retains entries
// referenced from its rename table and producer records, which outlive
// the producing op's commit.
func (e *Entry) Retain() { e.refs++ }

// State returns the entry lifecycle state.
func (e *Entry) GetState() State { return e.state }

// Grant returns the most recent grant cycle of the entry's first op.
func (e *Entry) Grant() int64 { return e.grant }

// IsMOP reports whether the entry holds a fused pair.
func (e *Entry) IsMOP() bool { return e.isMOP }

// NumOps returns how many original instructions the entry holds.
func (e *Entry) NumOps() int { return e.numOps }

// Op returns the i-th op's info.
func (e *Entry) Op(i int) OpInfo { return e.ops[i] }

// Final reports whether the entry's scheduling is settled: it issued with
// valid operands and can no longer be replayed.
func (e *Entry) Final() bool { return e.state == StateFinal }

// PendingTail reports whether the entry still awaits its MOP tail.
func (e *Entry) PendingTail() bool { return e.pendingTail }

// ActualReady returns when op i's result is actually available.
func (e *Entry) ActualReady(i int) int64 { return e.actualReady[i] }

// DependsOn reports whether e transitively depends on target through
// unresolved source edges. MOP formation uses it to refuse chain links
// that would close a dependence cycle through the merged entry (the
// paper's pair heuristic is sound for pairs, but chained MOPs need the
// transitive check). The search is bounded by the in-flight window, since
// final edges are severed.
func (e *Entry) DependsOn(target *Entry) bool {
	if e == target {
		return true
	}
	seen := map[*Entry]bool{}
	var walk func(x *Entry) bool
	walk = func(x *Entry) bool {
		if x == target {
			return true
		}
		if seen[x] {
			return false
		}
		seen[x] = true
		for i := range x.srcs {
			if p := x.srcs[i].prod; p != nil && walk(p) {
				return true
			}
		}
		return false
	}
	return walk(e)
}

// DependsOn implements Engine; see Entry.DependsOn.
func (s *Scheduler) DependsOn(e, target *Entry) bool { return e.DependsOn(target) }

// Grant is one op issue event reported by Tick.
type Grant struct {
	Entry *Entry
	OpIdx int
	Cycle int64
}

// Stats counts scheduler events.
type Stats struct {
	EntriesInserted int64
	OpsInserted     int64
	MOPsInserted    int64
	Grants          int64
	Replays         int64 // load-shadow selective replays (invalid issues)
	CollisionVict   int64 // select-free: requested but not granted at first request
	PileupVict      int64 // select-free scoreboard: invalid issues replayed
	MaxOccupancy    int
}

// Scheduler is the wakeup/select engine.
type Scheduler struct {
	cfg   Config
	stats Stats

	now     int64
	nextID  int64
	nextAge int64

	active   []*Entry // inserted and not yet final
	occupied int

	// free is the Entry free list: released entries (refs==0 after
	// finality) waiting to be reused by Insert. Pooling keeps the
	// steady-state cycle loop allocation-free.
	free []*Entry

	// Per-tick scratch, reused across Tick calls: the grant list returned
	// by Tick (valid until the next Tick) and the requester list.
	grantBuf []Grant
	reqBuf   []*Entry

	// Grants to emit for MOP tails in upcoming cycles (a MOP of N ops
	// sequences over N cycles), plus the issue-slot and functional-unit
	// resources they reserve, keyed by cycle.
	futureGrants grantRing
	futureFU     fuRing

	// deferred events, keyed by cycle.
	loadEvents entryRing // load miss discoveries
	sbEvents   entryRing // scoreboard detections of invalid issues

	// err latches the first fatal scheduling failure (replay-storm
	// livelock); the core polls it every cycle via Err.
	err error

	// Fault-injection state (internal/fault): suppressReplay arms the
	// lost-replay fault, suppressed is the entry whose invalidations are
	// silently dropped once the fault fires.
	suppressReplay bool
	suppressed     *Entry
}

// New creates a scheduler.
func New(cfg Config) *Scheduler {
	if cfg.Width <= 0 {
		// Unreachable through config.Machine.Validate; kept as a typed
		// panic so direct misuse still surfaces as an *InternalError at
		// the core's recover boundary instead of crashing the process.
		panic(simerr.Internalf(simerr.Context{}, "sched: non-positive width %d", cfg.Width))
	}
	if cfg.ScoreboardDelay <= 0 {
		cfg.ScoreboardDelay = 2
	}
	return &Scheduler{
		cfg:          cfg,
		loadEvents:   newEntryRing(),
		sbEvents:     newEntryRing(),
		futureGrants: newGrantRing(),
		futureFU:     newFURing(),
	}
}

// Stats returns accumulated counters.
func (s *Scheduler) Stats() Stats { return s.stats }

// Err returns the first fatal scheduling failure (a replay-storm
// livelock), or nil. The core polls it once per cycle and aborts the run
// with the typed error instead of the scheduler crashing the process.
func (s *Scheduler) Err() error { return s.err }

// Occupied returns the number of issue queue entries currently in use.
func (s *Scheduler) Occupied() int { return s.occupied }

// HasSpace reports whether n more entries can be inserted.
func (s *Scheduler) HasSpace(n int) bool {
	return s.cfg.IQEntries == 0 || s.occupied+n <= s.cfg.IQEntries
}

// SrcSpec declares one source operand at insertion: the producing entry
// (nil if the value is already available) and which of its ops produces it.
type SrcSpec struct {
	Prod   *Entry
	ProdOp int
}

// Insert creates a new entry with one op and the given sources and adds it
// to the queue at the current cycle. If pendingTail is set the entry is a
// MOP head whose tail will arrive via AttachTail (or be cancelled via
// CancelTail).
func (s *Scheduler) Insert(op OpInfo, srcs []SrcSpec, pendingTail bool) *Entry {
	e := s.allocEntry()
	e.id = s.nextID
	e.age = s.nextAge
	e.numOps = 1
	e.isMOP = false
	e.pendingTail = pendingTail
	e.state = StateWaiting
	e.grant = -1
	e.earliestSelect = s.now + 1
	e.everRequested = false
	e.firstReq = -1
	e.replays = 0
	e.refs = 1 // the inserted op's own reference, dropped at its commit
	e.ops[0] = op
	for i := range e.actualReady {
		e.actualReady[i] = never
		e.loadDiscover[i] = 0
		e.loadResolved[i] = false
	}
	s.nextID++
	s.nextAge++
	s.addSources(e, srcs)
	s.active = append(s.active, e)
	s.occupied++
	if s.occupied > s.stats.MaxOccupancy {
		s.stats.MaxOccupancy = s.occupied
	}
	s.stats.EntriesInserted++
	s.stats.OpsInserted++
	return e
}

// AttachTail completes a two-instruction MOP: the tail op and its extra
// sources join the head's entry and the pending bit clears. Sources
// already satisfied inside the MOP (tail depending on head) must not be
// passed here.
func (s *Scheduler) AttachTail(e *Entry, op OpInfo, srcs []SrcSpec) {
	s.AttachOp(e, op, srcs, true)
}

// AttachOp appends one more original instruction to a pending MOP entry
// (the chained-MOP extension sequences up to MaxMOPOps instructions
// through one entry). When last is true the pending bit clears and the
// MOP becomes schedulable.
func (s *Scheduler) AttachOp(e *Entry, op OpInfo, srcs []SrcSpec, last bool) {
	if !e.pendingTail {
		panic(simerr.Internalf(simerr.Context{Cycle: s.now}, "sched: AttachOp on non-pending entry %d", e.id))
	}
	if e.numOps >= MaxMOPOps {
		panic(simerr.Internalf(simerr.Context{Cycle: s.now}, "sched: MOP op overflow on entry %d", e.id))
	}
	e.ops[e.numOps] = op
	e.numOps++
	e.isMOP = true
	e.refs++ // the attached op's reference, dropped at its commit
	if last {
		e.pendingTail = false
	}
	s.addSources(e, srcs)
	s.stats.OpsInserted++
	if last {
		s.stats.MOPsInserted++
	}
}

// CancelTail demotes a pending MOP head to an ordinary single-instruction
// entry (insertion-policy miss or squashed tail, Sections 5.2.3/5.3.2).
func (s *Scheduler) CancelTail(e *Entry) {
	e.pendingTail = false
}

// allocEntry pops the free list, or allocates when the pool is empty
// (cold start). Insert resets every scalar field; srcs/consumers were
// already truncated (capacity kept) on release.
func (s *Scheduler) allocEntry() *Entry {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return e
	}
	// Pre-size the edge lists so pooled entries almost never grow them.
	// Capacities only ratchet up per entry, but the pool hands entries
	// back in LIFO order, so an under-sized entry picked as a popular
	// producer would otherwise re-trigger amortized growth long into
	// steady state (observed as ~1 allocation per few hundred cycles).
	return &Entry{
		srcs:      make([]srcEdge, 0, srcsCapFloor),
		consumers: make([]consRef, 0, consumersCapFloor),
	}
}

// srcsCapFloor covers a full MOP chain: MaxMOPOps ops with 2 sources each.
const srcsCapFloor = 2 * MaxMOPOps

// consumersCapFloor bounds a producer's consumer list in the common
// configurations: every source edge is severed at the producer's finality
// and consumers never outlive their producers, so a list can only reach
// the number of live source edges — about two per occupant of a bounded
// queue. Unbounded-queue runs can still exceed this and grow (amortized,
// capacity retained).
const consumersCapFloor = 64

// Release drops one reference taken by Insert, AttachOp, or Entry.Retain.
// When the last reference to a final entry drops, the entry is recycled
// onto the free list: its generation bumps (invalidating any deferred
// events still keyed to this life) and its edge lists are truncated with
// their elements cleared, so the next life starts with empty lists and no
// stale consumer can ever receive a wakeup from it.
//
// A released-to-zero entry must be final: every reference is held either
// by a member op (which commits only after finality) or by a rename-time
// producer record whose holders also outlive the producer's finality.
func (s *Scheduler) Release(e *Entry) {
	e.refs--
	if e.refs > 0 {
		return
	}
	if e.refs < 0 || e.state != StateFinal {
		panic(simerr.Internalf(simerr.Context{Cycle: s.now},
			"sched: bad release of entry %d (state %v, refs %d)", e.id, e.state, e.refs))
	}
	e.gen++
	e.UserData = nil
	e.UserIdx = 0
	clear(e.srcs)
	e.srcs = e.srcs[:0]
	clear(e.consumers)
	e.consumers = e.consumers[:0]
	s.free = append(s.free, e)
}

// DebugFreeCount reports the free-list size (tests only).
func (s *Scheduler) DebugFreeCount() int { return len(s.free) }

func (s *Scheduler) addSources(e *Entry, srcs []SrcSpec) {
	for _, sp := range srcs {
		edge := srcEdge{prod: sp.Prod, prodOp: sp.ProdOp, wake: never, actual: never}
		if sp.Prod == nil {
			edge.final = true
			edge.wake = 0
			edge.actual = 0
			e.srcs = append(e.srcs, edge)
			continue
		}
		p := sp.Prod
		edge.assumed = s.edgeAssumed(p, sp.ProdOp)
		switch {
		case p.state == StateFinal:
			edge.final = true
			edge.actual = p.actualReady[sp.ProdOp]
			// Model timing still applies: a consumer may not see the tag
			// earlier than the pipelined wakeup delivers it.
			edge.wake = maxI64(s.wakeFromGrant(p, edge.assumed), edge.actual)
			edge.prod = nil // final producers are not referenced again
		case p.state == StateIssued:
			edge.wake = s.wakeFromGrant(p, edge.assumed)
			if p.ops[sp.ProdOp].IsLoad && p.loadResolved[sp.ProdOp] {
				edge.wake = maxI64(edge.wake, p.actualReady[sp.ProdOp])
			}
		default:
			// Waiting: woken later by the producer's grant. In scoreboard
			// select-free mode the stale speculative broadcast is still
			// visible (the consumer may pile up and replay); in squash-dep
			// mode an unissued producer's speculation has been squashed,
			// so the consumer waits for the grant-time rebroadcast.
			if s.cfg.Model == config.SchedSelectFreeScoreboard && p.firstReq >= 0 {
				edge.wake = p.firstReq + int64(edge.assumed)
			}
		}
		e.srcs = append(e.srcs, edge)
		if p.state != StateFinal {
			// Final producers never broadcast again; registering with
			// them would only accrete an unbounded consumer list.
			p.consumers = append(p.consumers, consRef{entry: e, srcIdx: len(e.srcs) - 1})
		}
	}
}

// edgeAssumed is the producer-op result latency assumed by the wakeup
// logic for consumer scheduling.
func (s *Scheduler) edgeAssumed(p *Entry, opIdx int) int {
	return p.ops[opIdx].Latency
}

func (s *Scheduler) selectFree() bool { return modelSelectFree(s.cfg.Model) }

func modelSelectFree(m config.SchedModel) bool {
	return m == config.SchedSelectFreeSquashDep || m == config.SchedSelectFreeScoreboard
}

// wakeFromGrant computes when a consumer becomes selectable given its
// producer entry was granted at p.grant, per the scheduling model.
func (s *Scheduler) wakeFromGrant(p *Entry, assumed int) int64 {
	return wakeFromGrant(s.cfg.Model, p, assumed)
}

// wakeFromGrant is the model-shared broadcast timing rule, used
// identically by both kernels.
func wakeFromGrant(model config.SchedModel, p *Entry, assumed int) int64 {
	g := p.grant
	switch model {
	case config.SchedBase:
		return g + int64(assumed)
	case config.SchedTwoCycle:
		return g + int64(max(assumed, 2))
	case config.SchedMOP:
		if p.isMOP {
			// One tag broadcast for the whole MOP: every consumer is
			// selectable numOps cycles after the head issues (two for the
			// paper's pairs, Figure 5; N for chained MOPs).
			return g + int64(p.numOps)
		}
		return g + int64(max(assumed, 2))
	case config.SchedSelectFreeSquashDep:
		// Re-broadcast after a squash costs one cycle relative to the
		// speculative wakeup; the non-collision path never calls this.
		return g + int64(assumed)
	case config.SchedSelectFreeScoreboard:
		return g + int64(assumed)
	}
	panic(simerr.Internalf(simerr.Context{}, "sched: unknown model %v", model))
}

// SetLoadResult informs the scheduler of a load op's actual data
// availability and the cycle at which a mismatch with the assumed hit
// latency becomes known (address generated, cache probed). Call after
// each grant of a load op.
func (s *Scheduler) SetLoadResult(e *Entry, opIdx int, actualReady, discover int64) {
	e.actualReady[opIdx] = actualReady
	e.loadDiscover[opIdx] = discover
	e.loadResolved[opIdx] = true
	assumedReady := e.grant + int64(e.ops[opIdx].Latency)
	if e.isMOP {
		panic(simerr.Internalf(simerr.Context{Cycle: s.now}, "sched: load in MOP entry %d", e.id))
	}
	if actualReady > assumedReady {
		s.loadEvents.push(s.now, discover, e)
	}
}

// Tick advances one cycle: applies deferred replay/squash events, performs
// wakeup and select per the model, and returns the ops granted this cycle
// in issue order. The returned slice is scratch owned by the scheduler:
// it is valid until the next Tick call.
func (s *Scheduler) Tick(now int64) []Grant {
	s.now = now

	// MOP ops sequencing from earlier grants occupy slots first ("the
	// selection logic does not select another instruction through the
	// same issue slot in which a MOP is being sequenced").
	grants := s.futureGrants.take(now, s.grantBuf[:0])
	widthLeft := s.cfg.Width - len(grants)
	fuUsed := s.futureFU.take(now)

	// Load-miss discoveries: selectively invalidate shadow issues.
	// Generation-guarded: an entry released and reused before its event
	// fires must not have its new life touched.
	for _, ev := range s.loadEvents.take(now) {
		if ev.e.gen == ev.gen {
			s.fixupLoadMiss(ev.e)
		}
	}
	// Scoreboard detections of invalid select-free issues.
	for _, ev := range s.sbEvents.take(now) {
		if ev.e.gen == ev.gen {
			s.scoreboardCheck(ev.e)
		}
	}

	// Wakeup phase: in select-free mode, entries broadcast at request
	// time, before knowing whether selection succeeds.
	requesters := s.collectRequesters()
	if s.selectFree() {
		for _, e := range requesters {
			if e.firstReq < 0 {
				e.firstReq = now
				s.broadcastSpeculative(e)
			}
		}
	}

	// Select phase: oldest first, bounded by width and functional units.
	for _, e := range requesters {
		if widthLeft <= 0 {
			break
		}
		fu0 := e.ops[0].FU
		if !s.fuAvailable(fu0, fuUsed) {
			continue
		}
		if e.numOps > 1 && !s.mopResourcesFree(e, now) {
			continue
		}
		// Grant.
		widthLeft--
		if fu0 != isa.ClassNone {
			fuUsed[fu0]++
		}
		s.grantEntry(e, now, &grants)
	}

	// Select-free collision victims: requested this cycle, not granted.
	if s.selectFree() {
		for _, e := range requesters {
			if e.state != StateIssued && e.firstReq == now {
				s.stats.CollisionVict++
				if s.cfg.Model == config.SchedSelectFreeSquashDep {
					s.squashDependents(e)
				}
			}
		}
	}

	s.finalize(now)
	s.grantBuf = grants[:0] // keep any grown capacity for the next tick
	return grants
}

func (s *Scheduler) fuAvailable(c isa.Class, used [isa.NumClasses]int) bool {
	if c == isa.ClassNone {
		return true
	}
	return used[c] < s.cfg.FU[c]
}

// mopResourcesFree reports whether the issue slots and functional units a
// MOP's later ops will occupy in upcoming cycles are still available.
func (s *Scheduler) mopResourcesFree(e *Entry, now int64) bool {
	for k := 1; k < e.numOps; k++ {
		cyc := now + int64(k)
		if s.futureGrants.count(cyc) >= s.cfg.Width {
			return false
		}
		c := e.ops[k].FU
		if c != isa.ClassNone && s.futureFU.get(cyc, c) >= s.cfg.FU[c] {
			return false
		}
	}
	return true
}

// collectRequesters returns schedulable entries in age order. The
// returned slice is scratch reused across ticks.
func (s *Scheduler) collectRequesters() []*Entry {
	req := s.reqBuf[:0]
	for _, e := range s.active {
		if e.state != StateWaiting || e.pendingTail {
			continue
		}
		if e.earliestSelect > s.now {
			continue
		}
		ready := true
		for i := range e.srcs {
			if e.srcs[i].wake > s.now {
				ready = false
				break
			}
		}
		if ready {
			req = append(req, e)
		}
	}
	// active is maintained in age order (append-only); no sort needed.
	s.reqBuf = req
	return req
}

func (s *Scheduler) grantEntry(e *Entry, now int64, grants *[]Grant) {
	e.state = StateIssued
	e.grant = now
	e.everRequested = true
	s.stats.Grants++
	*grants = append(*grants, Grant{Entry: e, OpIdx: 0, Cycle: now})
	// Non-load results become actually available grant+latency later;
	// loads are patched by SetLoadResult.
	if !e.ops[0].IsLoad {
		e.actualReady[0] = now + int64(e.ops[0].Latency)
	}
	for k := 1; k < e.numOps; k++ {
		// Sequence later ops in following cycles through the same slot.
		cyc := now + int64(k)
		s.futureGrants.push(now, cyc, Grant{Entry: e, OpIdx: k, Cycle: cyc})
		if c := e.ops[k].FU; c != isa.ClassNone {
			s.futureFU.add(now, cyc, c)
		}
		e.actualReady[k] = cyc + int64(e.ops[k].Latency)
	}
	// Conventional wakeup: broadcast from the grant.
	if !s.selectFree() {
		s.wakeConsumers(e)
	} else {
		// A collision victim that is finally granted re-broadcasts; in
		// squash-dep mode its squashed dependents wake from this grant.
		if e.firstReq >= 0 && e.firstReq < now {
			s.rebroadcast(e)
		}
		// Scoreboard mode checks operand validity a fixed delay later.
		if s.cfg.Model == config.SchedSelectFreeScoreboard {
			s.sbEvents.push(now, now+int64(s.cfg.ScoreboardDelay), e)
		}
	}
}

// wakeConsumers sets consumer wake times from this entry's grant.
func (s *Scheduler) wakeConsumers(e *Entry) {
	for _, c := range e.consumers {
		edge := &c.entry.srcs[c.srcIdx]
		if edge.final || edge.deaf {
			continue
		}
		edge.wake = s.wakeFromGrant(e, edge.assumed)
	}
}

// broadcastSpeculative wakes consumers at request time (select-free).
func (s *Scheduler) broadcastSpeculative(e *Entry) {
	for _, c := range e.consumers {
		edge := &c.entry.srcs[c.srcIdx]
		if edge.final || edge.deaf {
			continue
		}
		edge.wake = e.firstReq + int64(edge.assumed)
	}
}

// squashDependents clears the speculative wakeups of a collision victim's
// consumers (squash-dep: detected in the select stage, so none of them
// has issued yet). They re-wake from the victim's eventual grant, one
// cycle late (re-broadcast).
func (s *Scheduler) squashDependents(e *Entry) {
	for _, c := range e.consumers {
		edge := &c.entry.srcs[c.srcIdx]
		if edge.final {
			continue
		}
		edge.wake = never
	}
}

// rebroadcast wakes consumers after a granted collision victim.
func (s *Scheduler) rebroadcast(e *Entry) {
	penalty := int64(0)
	if s.cfg.Model == config.SchedSelectFreeSquashDep {
		penalty = 1 // squashed dependents pay one re-broadcast cycle
	}
	for _, c := range e.consumers {
		edge := &c.entry.srcs[c.srcIdx]
		if edge.final || edge.deaf {
			continue
		}
		w := e.grant + int64(edge.assumed) + penalty
		if s.cfg.Model == config.SchedSelectFreeScoreboard && edge.wake < w && c.entry.state == StateIssued {
			// Pileup victim keeps its stale wake; the scoreboard will
			// catch it at its own check.
			continue
		}
		edge.wake = w
	}
}

// scoreboardCheck verifies an issued select-free entry's operands were
// actually ready at issue; otherwise it becomes a pileup victim: it is
// invalidated, reissues later, and its own speculative wakeups stand
// until their consumers fail their own checks (the pileup cascade).
func (s *Scheduler) scoreboardCheck(e *Entry) {
	if e.state != StateIssued {
		return
	}
	if s.operandsValidAt(e, e.grant) {
		return
	}
	s.stats.PileupVict++
	s.invalidate(e, s.now)
	// Re-arm the operand ready state: the replayed instruction waits for
	// real broadcasts instead of its stale speculative wakeups (otherwise
	// it would spin reissuing against a still-unready producer).
	for i := range e.srcs {
		edge := &e.srcs[i]
		if edge.final || edge.deaf {
			continue
		}
		p := edge.prod
		switch p.state {
		case StateIssued:
			edge.wake = s.wakeFromGrant(p, edge.assumed)
			if p.ops[edge.prodOp].IsLoad && p.loadResolved[edge.prodOp] {
				edge.wake = maxI64(edge.wake, p.actualReady[edge.prodOp])
			}
		case StateWaiting:
			edge.wake = never
		}
	}
}

// OperandsValid reports whether every source operand of e was actually
// available at its grant cycle — i.e. whether this issue will stand. The
// core uses it to decide whether a load's address is really computable
// yet (an invalidly issued load must not probe the cache: that would be
// an illegal prefetch with data it cannot have).
func (s *Scheduler) OperandsValid(e *Entry) bool {
	return e.state == StateIssued && s.operandsValidAt(e, e.grant)
}

// operandsValidAt reports whether every source operand of e was actually
// available at cycle g.
func (s *Scheduler) operandsValidAt(e *Entry, g int64) bool {
	for i := range e.srcs {
		edge := &e.srcs[i]
		if edge.final {
			if edge.actual > g {
				return false
			}
			continue
		}
		p := edge.prod
		switch p.state {
		case StateWaiting:
			return false
		default:
			ar := p.actualReady[edge.prodOp]
			if ar == never || ar > g {
				return false
			}
		}
	}
	return true
}

// fixupLoadMiss handles a discovered load miss: consumers woken with the
// assumed hit latency are re-pointed at the actual data-return cycle, and
// any that already issued inside the shadow are selectively invalidated
// and replayed (transitively).
func (s *Scheduler) fixupLoadMiss(e *Entry) {
	actual := e.actualReady[0]
	for _, c := range e.consumers {
		edge := &c.entry.srcs[c.srcIdx]
		if edge.final || edge.deaf {
			continue
		}
		if c.entry.state == StateIssued && c.entry.grant < actual {
			s.invalidate(c.entry, s.now)
		}
		if edge.wake < actual {
			edge.wake = actual
		}
	}
}

// invalidate replays an issued entry: it returns to waiting, may not be
// selected again until now+ReplayPenalty, and anything it woke (or that
// issued off its rescinded grant) is recursively fixed.
func (s *Scheduler) invalidate(e *Entry, now int64) {
	if e.state != StateIssued {
		return
	}
	if e == s.suppressed {
		return // fault injection: this entry's replays are lost
	}
	if s.suppressReplay {
		// Fault injection arms here: the first invalidation after arming
		// is dropped, and the entry never replays again — the machine
		// must end up stuck and the watchdog must report it.
		s.suppressReplay = false
		s.suppressed = e
		return
	}
	e.state = StateWaiting
	e.replays++
	s.stats.Replays++
	limit := s.cfg.ReplayLimit
	if limit <= 0 {
		limit = DefaultReplayLimit
	}
	if e.replays > limit && s.err == nil {
		s.err = simerr.Livelock(simerr.Context{Cycle: now}, s.dumpEntry(e),
			"entry %d replayed %d times (limit %d)", e.id, e.replays, limit)
	}
	e.earliestSelect = now + int64(s.cfg.ReplayPenalty)
	if s.selectFree() {
		// The entry will re-request and re-broadcast.
		e.firstReq = -1
	}
	grantWas := e.grant
	e.grant = -1
	for i := range e.actualReady {
		e.actualReady[i] = never
		e.loadResolved[i] = false
	}
	// Rescind wakeups derived from the cancelled grant.
	for _, c := range e.consumers {
		edge := &c.entry.srcs[c.srcIdx]
		if edge.final {
			continue
		}
		if s.cfg.Model == config.SchedSelectFreeScoreboard {
			// Pileup semantics: stale wakeups stand; dependents issue
			// wrongly and get caught by their own scoreboard check.
			continue
		}
		edge.wake = never
		if c.entry.state == StateIssued && c.entry.grant >= grantWas {
			s.invalidate(c.entry, now)
		}
	}
}

// finalize settles entries whose scheduling can no longer change: issued,
// all operands final and valid, loads resolved. Final entries release
// their issue queue slot and pin their consumers' edges.
func (s *Scheduler) finalize(now int64) {
	changed := true
	for changed {
		changed = false
		kept := s.active[:0]
		for _, e := range s.active {
			if s.tryFinalize(e, now) {
				changed = true
				s.occupied--
				continue
			}
			kept = append(kept, e)
		}
		s.active = kept
	}
}

func (s *Scheduler) tryFinalize(e *Entry, now int64) bool {
	if e.state != StateIssued {
		return false
	}
	for i := range e.srcs {
		edge := &e.srcs[i]
		if !edge.final {
			return false
		}
		if edge.actual > e.grant {
			// Issued before an operand was actually ready and not yet
			// invalidated: this happens only transiently within a cycle
			// (e.g. scoreboard pileups pending detection); not final.
			return false
		}
	}
	for i := 0; i < e.numOps; i++ {
		if e.ops[i].IsLoad && !e.loadResolved[i] {
			return false
		}
		// A load's miss shadow must have passed before its result can be
		// considered settled for consumers.
		if e.ops[i].IsLoad && e.loadDiscover[i] > now {
			return false
		}
	}
	e.state = StateFinal
	for _, c := range e.consumers {
		edge := &c.entry.srcs[c.srcIdx]
		if edge.final {
			continue
		}
		edge.final = true
		edge.prod = nil // sever the graph so ancestors become collectable
		edge.actual = e.actualReady[edge.prodOp]
		if edge.deaf {
			continue // dropped wakeup: the finality broadcast is lost too
		}
		if edge.wake < edge.actual {
			if c.entry.state == StateIssued && c.entry.grant < edge.actual {
				// Safety net; replay fixups should already have caught it.
				s.invalidate(c.entry, now)
			}
			edge.wake = edge.actual
		}
	}
	// Sever the graph so ancestors become collectable, but keep the list
	// capacity for the entry's next life through the free list: clear the
	// elements (dropping the Entry pointers) and truncate in place.
	clear(e.consumers)
	e.consumers = e.consumers[:0]
	// This entry's own operand edges are final and never consulted again:
	// drop them (a rename-table or payload reference to a final entry
	// must not pin the dependence history in memory).
	clear(e.srcs)
	e.srcs = e.srcs[:0]
	return true
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// DebugActive exposes the live entry list for diagnostics and tests.
func (s *Scheduler) DebugActive() []*Entry { return s.active }

// String names the entry state.
func (st State) String() string {
	switch st {
	case StateWaiting:
		return "waiting"
	case StateIssued:
		return "issued"
	case StateFinal:
		return "final"
	}
	return fmt.Sprintf("state(%d)", int(st))
}

// dumpEntry renders one entry's scheduling state for diagnostics.
func (s *Scheduler) dumpEntry(e *Entry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "entry %d: state=%v replays=%d grant=%d ops=%d", e.id, e.state, e.replays, e.grant, e.numOps)
	if e.isMOP {
		b.WriteString(" (MOP)")
	}
	if e.pendingTail {
		b.WriteString(" (pending tail)")
	}
	for i := 0; i < e.numOps; i++ {
		fmt.Fprintf(&b, " seq=%d", e.ops[i].Seq)
	}
	for i := range e.srcs {
		edge := &e.srcs[i]
		fmt.Fprintf(&b, "\n  src %d: wake=%s actual=%s final=%v deaf=%v",
			i, cycleStr(edge.wake), cycleStr(edge.actual), edge.final, edge.deaf)
	}
	return b.String()
}

func cycleStr(c int64) string {
	if c >= never {
		return "never"
	}
	return fmt.Sprintf("%d", c)
}

// DumpActive renders up to limit non-final active entries, oldest first —
// the scheduler half of the watchdog's diagnostic state dump.
func (s *Scheduler) DumpActive(limit int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scheduler: %d occupied, %d replays total, %d grants\n",
		s.occupied, s.stats.Replays, s.stats.Grants)
	n := 0
	for _, e := range s.active {
		if n >= limit {
			fmt.Fprintf(&b, "... %d more active entries elided\n", len(s.active)-n)
			break
		}
		b.WriteString(s.dumpEntry(e))
		b.WriteByte('\n')
		n++
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Fault-injection surface (internal/fault). These methods deliberately
// corrupt scheduler state to prove the watchdog catches the corruption;
// nothing in the simulator proper calls them.

// FaultDeafen injects a dropped-wakeup fault: the first waiting entry
// with a not-yet-delivered source wakeup has that edge's broadcasts
// permanently lost, so the entry starves in the queue and the pipeline
// eventually stops committing. Returns whether a victim edge was found
// (retry next cycle otherwise).
func (s *Scheduler) FaultDeafen() bool {
	for _, e := range s.active {
		if e.state != StateWaiting {
			continue
		}
		for i := range e.srcs {
			edge := &e.srcs[i]
			if edge.final || edge.deaf || edge.prod == nil || edge.wake <= s.now {
				continue
			}
			edge.deaf = true
			edge.wake = never
			return true
		}
	}
	return false
}

// FaultSuppressReplay arms the lost-replay fault: the next invalidation
// the scheduler would perform is silently dropped, and the victim entry
// never replays again — it stays issued with operands that were not
// actually ready, can never finalize, and blocks commit until the
// watchdog reports the stall.
func (s *Scheduler) FaultSuppressReplay() { s.suppressReplay = true }

// FaultReplaySuppressed reports whether the armed lost-replay fault has
// fired (an invalidation has been dropped).
func (s *Scheduler) FaultReplaySuppressed() bool { return s.suppressed != nil }

// DebugRefs lists the entries this entry references directly (diagnostic).
func (e *Entry) DebugRefs() (out []*Entry, kinds []string) {
	for i := range e.srcs {
		if p := e.srcs[i].prod; p != nil {
			out = append(out, p)
			kinds = append(kinds, "src")
		}
	}
	for _, c := range e.consumers {
		out = append(out, c.entry)
		kinds = append(kinds, "cons")
	}
	return out, kinds
}
