package sched

import (
	"testing"

	"macroop/internal/config"
)

// finalize drives the scheduler until e is final (or maxCycle passes),
// returning the cycle after the last tick.
func finalize(t *testing.T, s *Scheduler, from, maxCycle int64, e *Entry, onGrant func(Grant)) int64 {
	t.Helper()
	for c := from; c <= maxCycle; c++ {
		for _, g := range s.Tick(c) {
			if onGrant != nil {
				onGrant(g)
			}
		}
		if e.Final() {
			return c + 1
		}
	}
	t.Fatalf("entry %d not final by cycle %d (state %v)", e.ID(), maxCycle, e.GetState())
	return 0
}

// TestEntryRecycleNoStaleWakeups is the free-list counterpart of the
// core's leak tests: an entry released and reused as a new instruction
// must start with empty edge lists, a fresh identity, and a bumped
// generation — and granting its new life must wake only new-life
// consumers, never a consumer registered against the struct's previous
// life.
func TestEntryRecycleNoStaleWakeups(t *testing.T) {
	s := New(testCfg(config.SchedBase))

	// Previous life: P produces for C; C also waits on a slow load Q, so C
	// is still live (waiting) when P is released.
	q := load(s)
	p := alu(s)
	c := alu(s, p, q)
	now := finalize(t, s, 1, 50, p, func(g Grant) {
		if g.Entry == q {
			// Long DL1 miss: Q's data arrives at cycle 30.
			s.SetLoadResult(q, 0, 30, g.Cycle+4)
		}
	})
	if c.Final() {
		t.Fatal("consumer finalized before its load producer resolved")
	}
	if len(p.consumers) != 0 {
		t.Fatalf("final producer still lists %d consumers; finality must sever them", len(p.consumers))
	}

	oldID, oldGen := p.ID(), p.Gen()
	s.Release(p) // the member op's reference: the struct goes to the free list
	if got := s.DebugFreeCount(); got != 1 {
		t.Fatalf("free list holds %d entries after release, want 1", got)
	}

	// New life: the recycled struct returns as P2 with a consumer D.
	p2 := alu(s)
	if p2 != p {
		t.Fatalf("expected the free list to hand back the released struct")
	}
	if s.DebugFreeCount() != 0 {
		t.Fatal("allocation did not pop the free list")
	}
	if p2.ID() == oldID {
		t.Fatal("recycled entry kept its previous-life ID")
	}
	if p2.Gen() == oldGen {
		t.Fatal("recycled entry kept its previous-life generation")
	}
	if len(p2.srcs) != 0 || len(p2.consumers) != 0 {
		t.Fatalf("recycled entry starts with %d srcs / %d consumers, want empty",
			len(p2.srcs), len(p2.consumers))
	}
	d := alu(s, p2)

	granted := map[*Entry]int64{}
	for cyc := now; cyc <= 60; cyc++ {
		for _, g := range s.Tick(cyc) {
			granted[g.Entry] = g.Cycle
		}
	}
	if _, ok := granted[p2]; !ok {
		t.Fatal("recycled producer never granted in its new life")
	}
	if _, ok := granted[d]; !ok {
		t.Fatal("new-life consumer never granted")
	}
	if granted[d] <= granted[p2] {
		t.Fatalf("new-life consumer granted at %d, producer at %d", granted[d], granted[p2])
	}
	// C's wakeup must come from Q's actual readiness (cycle 30), not from
	// the recycled struct's new-life broadcast.
	if granted[c] <= granted[p2] {
		t.Fatalf("previous-life consumer woke at %d, with the recycled entry's grant at %d — stale edge",
			granted[c], granted[p2])
	}
	if granted[c] < 30 {
		t.Fatalf("previous-life consumer granted at %d, before its load operand was ready at 30", granted[c])
	}
}

// TestDeferredEventGenGuard: a deferred per-entry event (scoreboard check,
// load-miss discovery) scheduled against one life of an Entry struct must
// not fire into the next life after the struct is recycled.
func TestDeferredEventGenGuard(t *testing.T) {
	s := New(testCfg(config.SchedSelectFreeScoreboard))
	p := alu(s)
	finalize(t, s, 1, 20, p, nil)

	// Forge a stale deferred event: scheduled against p's current life,
	// firing at cycle 40, with p released (and recycled) in between.
	s.sbEvents.push(s.now, 40, p)
	s.loadEvents.push(s.now, 41, p)
	s.Release(p)

	p2 := alu(s)
	if p2 != p {
		t.Fatal("expected the free list to hand back the released struct")
	}
	granted := map[*Entry]int64{}
	for cyc := s.now + 1; cyc <= 45; cyc++ {
		for _, g := range s.Tick(cyc) {
			granted[g.Entry] = g.Cycle
		}
	}
	if err := s.Err(); err != nil {
		t.Fatalf("stale deferred event corrupted the scheduler: %v", err)
	}
	if !p2.Final() {
		t.Fatalf("recycled entry's new life did not complete (state %v)", p2.GetState())
	}
	if _, ok := granted[p2]; !ok {
		t.Fatal("recycled entry never granted in its new life")
	}
}

// TestReleaseRefcounting: Retain defers recycling until every holder lets
// go, and unbalanced releases of live entries panic rather than corrupt
// the free list.
func TestReleaseRefcounting(t *testing.T) {
	s := New(testCfg(config.SchedBase))
	p := alu(s)
	p.Retain() // e.g. a rename-table reference
	finalize(t, s, 1, 20, p, nil)

	s.Release(p)
	if s.DebugFreeCount() != 0 {
		t.Fatal("entry recycled while a retained reference was outstanding")
	}
	s.Release(p)
	if s.DebugFreeCount() != 1 {
		t.Fatal("entry not recycled after the last reference dropped")
	}

	// Releasing a non-final entry to zero must panic (typed internal
	// error), not silently recycle a live entry.
	q := alu(s)
	defer func() {
		if recover() == nil {
			t.Fatal("releasing a live entry to refcount zero did not panic")
		}
	}()
	s.Release(q)
}
