package sched

import "macroop/internal/config"

// Engine is the scheduler contract the core (and the fault injector)
// program against. Two implementations exist:
//
//   - *Scheduler (engine.go's KernelEntry): the original pointer-linked
//     entry kernel, retained as the reference model;
//   - *BitScheduler (KernelBitset): the bit-parallel structure-of-arrays
//     kernel (bitkernel.go), the default.
//
// Both are cycle-exact models of the same five scheduling variants: for
// any identical call sequence they produce identical grant streams,
// stats, and entry states. internal/checker's differential tests and the
// in-package lockstep test (differential_test.go) enforce this.
type Engine interface {
	// Queue construction.
	Insert(op OpInfo, srcs []SrcSpec, pendingTail bool) *Entry
	AttachTail(e *Entry, op OpInfo, srcs []SrcSpec)
	AttachOp(e *Entry, op OpInfo, srcs []SrcSpec, last bool)
	CancelTail(e *Entry)
	Release(e *Entry)

	// Cycle advance and feedback.
	Tick(now int64) []Grant
	SetLoadResult(e *Entry, opIdx int, actualReady, discover int64)
	OperandsValid(e *Entry) bool
	DependsOn(e, target *Entry) bool

	// Introspection.
	Err() error
	Stats() Stats
	Occupied() int
	HasSpace(n int) bool
	DumpActive(limit int) string
	DebugActive() []*Entry

	// Fault-injection surface (internal/fault).
	FaultDeafen() bool
	FaultSuppressReplay()
	FaultReplaySuppressed() bool
}

var (
	_ Engine = (*Scheduler)(nil)
	_ Engine = (*BitScheduler)(nil)
)

// NewEngine constructs the scheduler kernel selected by k.
func NewEngine(k config.SchedKernel, cfg Config) Engine {
	if k == config.KernelEntry {
		return New(cfg)
	}
	return NewBit(cfg)
}
