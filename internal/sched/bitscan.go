package sched

import "math/bits"

// This file holds the priority-decoder primitives of the bitset kernel:
// an allocation-free iterator over the set bits of a packed bitmask in
// circular age order. Hardware analogy (paper, Figure 1): the ready mask
// is the request vector entering the select logic, and scanning it with
// bits.TrailingZeros64 from the oldest slot is the priority decoder that
// picks the oldest requester first.
//
// Slots are assigned as age & (n-1) on a power-of-two ring, so ascending
// age order is ascending bit position starting from the oldest live
// slot's position and wrapping once. The iterator is a plain struct used
// on the stack (no closures) to keep Tick allocation-free.

// ageScan iterates the set bits of an n-bit mask (n = 64*len(mask)) in
// circular order starting at bit position start. Each position is
// visited at most once. Words are read lazily, one at a time: bits
// cleared in a not-yet-visited word disappear from the scan, bits set
// there appear; mutations to already-read words are not observed.
type ageScan struct {
	mask      []uint64
	startWord int
	startBit  uint
	wi        int    // current word index
	cur       uint64 // unconsumed bits of the current word
	last      bool   // the wrapped partial start word is in cur
}

func newAgeScan(mask []uint64, start int) ageScan {
	sc := ageScan{
		mask:      mask,
		startWord: start >> 6,
		startBit:  uint(start & 63),
	}
	sc.wi = sc.startWord
	sc.cur = mask[sc.wi] &^ (1<<sc.startBit - 1) // bits >= start
	return sc
}

// next returns the next set bit position in circular age order.
func (sc *ageScan) next() (int, bool) {
	for {
		if sc.cur != 0 {
			b := bits.TrailingZeros64(sc.cur)
			sc.cur &= sc.cur - 1
			return sc.wi<<6 + b, true
		}
		if sc.last {
			return 0, false
		}
		sc.wi++
		if sc.wi >= len(sc.mask) {
			sc.wi = 0
		}
		if sc.wi == sc.startWord {
			// Wrapped: finish with the bits below start.
			sc.last = true
			sc.cur = sc.mask[sc.wi] & (1<<sc.startBit - 1)
		} else {
			sc.cur = sc.mask[sc.wi]
		}
	}
}

func bitSet(m []uint64, i int)       { m[i>>6] |= 1 << uint(i&63) }
func bitClear(m []uint64, i int)     { m[i>>6] &^= 1 << uint(i&63) }
func bitTest(m []uint64, i int) bool { return m[i>>6]&(1<<uint(i&63)) != 0 }
