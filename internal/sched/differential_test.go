package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"macroop/internal/config"
	"macroop/internal/isa"
)

// Lockstep differential test: the entry-linked reference kernel and the
// bit-parallel kernel are driven with byte-identical call scripts —
// inserts, MOP attaches/cancels, load results, releases — and must agree
// every cycle on the grant stream, occupancy, operand validity, and
// dependence queries, and at the end on all stats and entry states.
// Because the script reacts only to outputs the kernels must agree on,
// any divergence is pinpointed at the first cycle it occurs.

// duoEntry pairs the two kernels' handles for one scripted instruction.
type duoEntry struct {
	a, b     *Entry
	released bool
	isLoad   bool
	// missDelay is the load's extra latency beyond the assumed hit
	// (decided at insert, applied at grant).
	missDelay int64
	attachBy  int64 // pending MOP head: cycle to attach or cancel by
}

type duo struct {
	t      *testing.T
	model  config.SchedModel
	a, b   Engine
	ents   []*duoEntry
	ixA    map[*Entry]int
	ixB    map[*Entry]int
	rng    *rand.Rand
	maxOps int
}

func newDuo(t *testing.T, model config.SchedModel, iq int, seed int64) *duo {
	cfg := Config{Model: model, Width: 4, IQEntries: iq, ReplayPenalty: 2}
	cfg.FU = [isa.NumClasses]int{2, 1, 2, 2, 1, 4}
	// Deliberately no Window hint: the bitset kernel must size and (in
	// unrestricted runs) grow its age ring on its own.
	d := &duo{
		t:      t,
		model:  model,
		a:      New(cfg),
		b:      NewBit(cfg),
		ixA:    map[*Entry]int{},
		ixB:    map[*Entry]int{},
		rng:    rand.New(rand.NewSource(seed)),
		maxOps: 4,
	}
	return d
}

func (d *duo) fatalf(format string, args ...any) {
	d.t.Helper()
	d.t.Fatalf("[%v] %s", d.model, fmt.Sprintf(format, args...))
}

// candidates returns indices eligible as producers: recent, not released.
func (d *duo) candidates() []int {
	lo := len(d.ents) - 48
	if lo < 0 {
		lo = 0
	}
	var out []int
	for i := lo; i < len(d.ents); i++ {
		if !d.ents[i].released {
			out = append(out, i)
		}
	}
	return out
}

// pickSrcs draws up to two producers, skipping any that would close a
// dependence cycle through excl (checking that both kernels agree on the
// DependsOn answer).
func (d *duo) pickSrcs(excl *duoEntry) (sa, sb []SrcSpec) {
	cands := d.candidates()
	n := d.rng.Intn(3) // 0..2 sources
	for j := 0; j < n && len(cands) > 0; j++ {
		de := d.ents[cands[d.rng.Intn(len(cands))]]
		if de == excl {
			continue
		}
		if excl != nil {
			depA := d.a.DependsOn(de.a, excl.a)
			depB := d.b.DependsOn(de.b, excl.b)
			if depA != depB {
				d.fatalf("DependsOn diverged for entry %d: ref=%v bit=%v", d.ixA[de.a], depA, depB)
			}
			if depA {
				continue
			}
		}
		op := 0
		if k := de.a.NumOps(); k > 1 {
			op = d.rng.Intn(k)
		}
		sa = append(sa, SrcSpec{Prod: de.a, ProdOp: op})
		sb = append(sb, SrcSpec{Prod: de.b, ProdOp: op})
	}
	return sa, sb
}

func (d *duo) insertOne(now int64) {
	var op OpInfo
	pending := false
	var missDelay int64
	switch r := d.rng.Intn(10); {
	case r < 5:
		op = OpInfo{FU: isa.ClassIntALU, Latency: 1}
	case r < 6:
		op = OpInfo{FU: isa.ClassIntMul, Latency: 3}
	case r < 8:
		op = OpInfo{FU: isa.ClassMem, Latency: 3, IsLoad: true}
		switch d.rng.Intn(4) {
		case 0:
			missDelay = 8
		case 1:
			missDelay = 40
		}
	case r < 9:
		op = OpInfo{FU: isa.ClassNone, Latency: 1}
	default:
		op = OpInfo{FU: isa.ClassIntALU, Latency: 1}
		pending = d.model == config.SchedMOP
	}
	op.Seq = int64(len(d.ents))
	de := &duoEntry{isLoad: op.IsLoad, missDelay: missDelay}
	if pending {
		de.attachBy = now + 1 + int64(d.rng.Intn(3))
	}
	sa, sb := d.pickSrcs(nil)
	de.a = d.a.Insert(op, sa, pending)
	de.b = d.b.Insert(op, sb, pending)
	d.ixA[de.a] = len(d.ents)
	d.ixB[de.b] = len(d.ents)
	d.ents = append(d.ents, de)
}

// settlePending attaches or cancels due MOP heads.
func (d *duo) settlePending(now int64) {
	for _, de := range d.ents {
		if de.attachBy == 0 || de.attachBy > now || de.a.Final() {
			continue
		}
		if !de.a.PendingTail() {
			de.attachBy = 0
			continue
		}
		if d.rng.Intn(10) == 0 {
			d.a.CancelTail(de.a)
			d.b.CancelTail(de.b)
			de.attachBy = 0
			continue
		}
		op := OpInfo{FU: isa.ClassIntALU, Latency: 1, Seq: int64(len(d.ents))}
		sa, sb := d.pickSrcs(de)
		last := de.a.NumOps()+1 >= d.maxOps || d.rng.Intn(3) != 0
		d.a.AttachOp(de.a, op, sa, last)
		d.b.AttachOp(de.b, op, sb, last)
		if last {
			de.attachBy = 0
		} else {
			de.attachBy = now + 1
		}
	}
}

func (d *duo) step(now int64) {
	ga := d.a.Tick(now)
	gb := d.b.Tick(now)
	if len(ga) != len(gb) {
		d.fatalf("cycle %d: grant count diverged: ref=%d bit=%d\nref=%v\nbit=%v",
			now, len(ga), len(gb), d.describe(ga, d.ixA), d.describe(gb, d.ixB))
	}
	for i := range ga {
		ia, ib := d.ixA[ga[i].Entry], d.ixB[gb[i].Entry]
		if ia != ib || ga[i].OpIdx != gb[i].OpIdx || ga[i].Cycle != gb[i].Cycle {
			d.fatalf("cycle %d: grant %d diverged: ref=(ent %d op %d @%d) bit=(ent %d op %d @%d)",
				now, i, ia, ga[i].OpIdx, ga[i].Cycle, ib, gb[i].OpIdx, gb[i].Cycle)
		}
	}
	// Feed back load results exactly as the core would: only validly
	// issued loads probe the cache.
	for i := range ga {
		if ga[i].OpIdx != 0 {
			continue
		}
		de := d.ents[d.ixA[ga[i].Entry]]
		va, vb := d.a.OperandsValid(de.a), d.b.OperandsValid(de.b)
		if va != vb {
			d.fatalf("cycle %d: OperandsValid diverged for entry %d: ref=%v bit=%v", now, d.ixA[de.a], va, vb)
		}
		if de.isLoad && va {
			actual := now + int64(de.a.Op(0).Latency) + de.missDelay
			discover := now + 6
			d.a.SetLoadResult(de.a, 0, actual, discover)
			d.b.SetLoadResult(de.b, 0, actual, discover)
		}
	}
	if oa, ob := d.a.Occupied(), d.b.Occupied(); oa != ob {
		d.fatalf("cycle %d: occupancy diverged: ref=%d bit=%d", now, oa, ob)
	}
	if ha, hb := d.a.HasSpace(1), d.b.HasSpace(1); ha != hb {
		d.fatalf("cycle %d: HasSpace diverged: ref=%v bit=%v", now, ha, hb)
	}
	if ea, eb := d.a.Err(), d.b.Err(); (ea == nil) != (eb == nil) {
		d.fatalf("cycle %d: Err diverged: ref=%v bit=%v", now, ea, eb)
	}

	d.settlePending(now)
	for j := d.rng.Intn(5); j > 0 && d.a.HasSpace(1); j-- {
		d.insertOne(now)
	}
	d.releaseSettled()
}

// releaseSettled releases final entries old enough to have left the
// producer-candidate window, like the core releasing at commit.
func (d *duo) releaseSettled() {
	lo := len(d.ents) - 48
	for i := 0; i < lo; i++ {
		de := d.ents[i]
		if de.released || !de.a.Final() {
			continue
		}
		if fa, fb := de.a.Final(), de.b.Final(); fa != fb {
			d.fatalf("entry %d finality diverged: ref=%v bit=%v", i, fa, fb)
		}
		for r := 0; r < de.a.NumOps(); r++ {
			d.a.Release(de.a)
			d.b.Release(de.b)
		}
		de.released = true
	}
}

func (d *duo) finish(cycles int64) {
	for _, de := range d.ents {
		if sa, sb := de.a.GetState(), de.b.GetState(); sa != sb {
			d.fatalf("entry %d end state diverged: ref=%v bit=%v", d.ixA[de.a], sa, sb)
		}
		if de.a.Final() && de.a.Grant() != de.b.Grant() {
			d.fatalf("entry %d final grant diverged: ref=%d bit=%d", d.ixA[de.a], de.a.Grant(), de.b.Grant())
		}
	}
	if sa, sb := d.a.Stats(), d.b.Stats(); sa != sb {
		d.fatalf("stats diverged after %d cycles:\nref=%+v\nbit=%+v", cycles, sa, sb)
	}
}

func (d *duo) describe(gs []Grant, ix map[*Entry]int) string {
	var out []string
	for _, g := range gs {
		out = append(out, fmt.Sprintf("(ent %d op %d @%d)", ix[g.Entry], g.OpIdx, g.Cycle))
	}
	return fmt.Sprintf("%v", out)
}

// TestKernelLockstep drives both kernels over every scheduling model,
// with bounded and unrestricted queues, across several seeds.
func TestKernelLockstep(t *testing.T) {
	models := []config.SchedModel{
		config.SchedBase,
		config.SchedTwoCycle,
		config.SchedMOP,
		config.SchedSelectFreeSquashDep,
		config.SchedSelectFreeScoreboard,
	}
	seeds := []int64{1, 2, 3, 4, 5, 6}
	cycles := int64(1500)
	if testing.Short() {
		seeds = seeds[:2]
		cycles = 600
	}
	for _, model := range models {
		for _, iq := range []int{16, 0} {
			for _, seed := range seeds {
				t.Run(fmt.Sprintf("%v/iq%d/seed%d", model, iq, seed), func(t *testing.T) {
					d := newDuo(t, model, iq, seed)
					for now := int64(1); now <= cycles; now++ {
						d.step(now)
					}
					d.finish(cycles)
				})
			}
		}
	}
}
