package sched

import "macroop/internal/isa"

// This file implements the cycle-keyed event rings that replace the
// per-cycle map churn (futureGrants/futureFU/loadEvents/sbEvents used to
// be map[int64]...; deleting and re-creating map buckets every cycle was
// one of the top allocation sites of the whole simulator).
//
// Each ring is a power-of-two slice of slots indexed by cycle&mask. A
// slot records which cycle it currently belongs to, so a stale slot
// (whose cycle already passed) is re-claimed in place by the next push.
// All scheduled cycles are near-future (MOP sequencing reaches now+7,
// load discoveries now+ExecOffset+1, scoreboard checks now+delay), so the
// initial size is already collision-free; rings still grow defensively if
// a configuration ever schedules further out than the ring is long.
//
// Slot payload slices are reused across claims: truncated to length 0,
// capacity kept. Stale pointers beyond the current length are never read
// and only reference pooled objects, so they are not cleared on the hot
// path.

const eventRingInit = 64

// slotCapFloor pre-sizes each slot's payload slice. Per-cycle event
// bursts are bounded by machine width (a handful of grants, load
// discoveries, or scoreboard checks per cycle), so a generous floor
// means slots never grow in steady state — without it, each slot
// converges to its own historical max burst by occasional capacity
// doublings, a slow trickle of allocations that defeats the
// zero-allocs-per-cycle property on long runs.
const slotCapFloor = 32

// ringIdx maps a cycle onto a power-of-two ring.
func ringIdx(cyc int64, n int) int { return int(cyc & int64(n-1)) }

// ringNeedsGrow reports whether scheduling cyc (relative to now) could
// collide with another live cycle in an n-slot ring. Keeping every live
// cycle within (now, now+n) guarantees distinct slots.
func ringNeedsGrow(now, cyc int64, n int) bool { return cyc-now >= int64(n) }

func grownRingLen(now, cyc int64, n int) int {
	for ringNeedsGrow(now, cyc, n) {
		n *= 2
	}
	return n
}

// ---------------------------------------------------------------------
// grantRing: future Grant events (MOP op sequencing).

type grantSlot struct {
	cyc    int64
	grants []Grant
}

type grantRing struct {
	slots []grantSlot
	// n counts outstanding future grants so per-cycle takes can skip the
	// slot probe entirely when nothing is scheduled (the common case
	// outside MOP sequencing). It may overcount after a grow drops
	// already-passed slots; that only costs a redundant probe.
	n int
}

func newGrantRing() grantRing { return grantRing{slots: newGrantSlots(eventRingInit)} }

func newGrantSlots(n int) []grantSlot {
	slots := make([]grantSlot, n)
	for i := range slots {
		slots[i].grants = make([]Grant, 0, slotCapFloor)
	}
	return slots
}

func (r *grantRing) push(now, cyc int64, g Grant) {
	if ringNeedsGrow(now, cyc, len(r.slots)) {
		r.grow(now, cyc)
	}
	s := &r.slots[ringIdx(cyc, len(r.slots))]
	if s.cyc != cyc {
		s.cyc = cyc
		s.grants = s.grants[:0]
	}
	s.grants = append(s.grants, g)
	r.n++
}

// count returns how many grants are already scheduled for cyc.
func (r *grantRing) count(cyc int64) int {
	if r.n == 0 {
		return 0
	}
	s := &r.slots[ringIdx(cyc, len(r.slots))]
	if s.cyc != cyc {
		return 0
	}
	return len(s.grants)
}

// take appends cyc's grants to dst and empties the slot.
func (r *grantRing) take(cyc int64, dst []Grant) []Grant {
	if r.n == 0 {
		return dst
	}
	s := &r.slots[ringIdx(cyc, len(r.slots))]
	if s.cyc != cyc {
		return dst
	}
	dst = append(dst, s.grants...)
	r.n -= len(s.grants)
	s.grants = s.grants[:0]
	return dst
}

func (r *grantRing) grow(now, cyc int64) {
	old := r.slots
	r.slots = newGrantSlots(grownRingLen(now, cyc, len(old)))
	for i := range old {
		if old[i].cyc > now && len(old[i].grants) > 0 {
			s := &r.slots[ringIdx(old[i].cyc, len(r.slots))]
			s.cyc = old[i].cyc
			s.grants = append(s.grants, old[i].grants...)
		}
	}
}

// ---------------------------------------------------------------------
// fuRing: functional-unit reservations made by future MOP op grants.

type fuSlot struct {
	cyc int64
	cnt int // total reservations in fu, so take can maintain fuRing.n
	fu  [isa.NumClasses]int
}

type fuRing struct {
	slots []fuSlot
	// n counts outstanding reservations, same fast-empty role (and the
	// same harmless overcount after grow) as grantRing.n.
	n int
}

func newFURing() fuRing { return fuRing{slots: make([]fuSlot, eventRingInit)} }

func (r *fuRing) add(now, cyc int64, c isa.Class) {
	if ringNeedsGrow(now, cyc, len(r.slots)) {
		r.grow(now, cyc)
	}
	s := &r.slots[ringIdx(cyc, len(r.slots))]
	if s.cyc != cyc {
		s.cyc = cyc
		s.cnt = 0
		s.fu = [isa.NumClasses]int{}
	}
	s.fu[c]++
	s.cnt++
	r.n++
}

// get returns the units of class c reserved for cyc.
func (r *fuRing) get(cyc int64, c isa.Class) int {
	if r.n == 0 {
		return 0
	}
	s := &r.slots[ringIdx(cyc, len(r.slots))]
	if s.cyc != cyc {
		return 0
	}
	return s.fu[c]
}

// take returns cyc's reservation vector and clears the slot.
func (r *fuRing) take(cyc int64) [isa.NumClasses]int {
	if r.n == 0 {
		return [isa.NumClasses]int{}
	}
	s := &r.slots[ringIdx(cyc, len(r.slots))]
	if s.cyc != cyc {
		return [isa.NumClasses]int{}
	}
	out := s.fu
	r.n -= s.cnt
	s.cnt = 0
	s.fu = [isa.NumClasses]int{}
	return out
}

func (r *fuRing) grow(now, cyc int64) {
	old := r.slots
	r.slots = make([]fuSlot, grownRingLen(now, cyc, len(old)))
	for i := range old {
		if old[i].cyc > now {
			s := &r.slots[ringIdx(old[i].cyc, len(r.slots))]
			s.cyc = old[i].cyc
			s.cnt = old[i].cnt
			s.fu = old[i].fu
		}
	}
}

// ---------------------------------------------------------------------
// entryRing: deferred per-entry events (load-miss discoveries, scoreboard
// checks). Events carry the entry's generation at scheduling time: with
// the Entry free list an entry may be released and reused before a
// long-delay event fires, and a stale event must not touch its new life.

type entryRef struct {
	e   *Entry
	gen uint32
}

type entrySlot struct {
	cyc int64
	evs []entryRef
}

type entryRing struct {
	slots []entrySlot
	// n counts outstanding events; a zero count lets the per-cycle take
	// skip the slot probe. Overcounts harmlessly after a grow drops
	// passed slots.
	n int
}

func newEntryRing() entryRing { return entryRing{slots: newEntrySlots(eventRingInit)} }

func newEntrySlots(n int) []entrySlot {
	slots := make([]entrySlot, n)
	for i := range slots {
		slots[i].evs = make([]entryRef, 0, slotCapFloor)
	}
	return slots
}

func (r *entryRing) push(now, cyc int64, e *Entry) {
	if ringNeedsGrow(now, cyc, len(r.slots)) {
		r.grow(now, cyc)
	}
	s := &r.slots[ringIdx(cyc, len(r.slots))]
	if s.cyc != cyc {
		s.cyc = cyc
		s.evs = s.evs[:0]
	}
	s.evs = append(s.evs, entryRef{e: e, gen: e.gen})
	r.n++
}

// take returns cyc's events and empties the slot. The returned slice is
// valid until the slot's next push; event processing must not schedule
// new events for the same cycle (it never does — all pushes target
// strictly future cycles).
func (r *entryRing) take(cyc int64) []entryRef {
	if r.n == 0 {
		return nil
	}
	s := &r.slots[ringIdx(cyc, len(r.slots))]
	if s.cyc != cyc {
		return nil
	}
	evs := s.evs
	r.n -= len(evs)
	s.evs = s.evs[:0]
	return evs
}

func (r *entryRing) grow(now, cyc int64) {
	old := r.slots
	r.slots = newEntrySlots(grownRingLen(now, cyc, len(old)))
	for i := range old {
		if old[i].cyc > now && len(old[i].evs) > 0 {
			s := &r.slots[ringIdx(old[i].cyc, len(r.slots))]
			s.cyc = old[i].cyc
			s.evs = append(s.evs, old[i].evs...)
		}
	}
}
