package isa

import (
	"strings"
	"testing"
)

func TestCandidateTaxonomy(t *testing.T) {
	// Section 4.1: MOP candidates are single-cycle ALU, store address
	// generation, and control instructions.
	for op := Op(0); op < Op(NumOps); op++ {
		switch {
		case op == STD || op == HALT:
			if op.IsMOPCandidate() {
				t.Errorf("%v must not be a MOP candidate", op)
			}
		case op == LD || op == MUL || op == DIV || op == FADD || op == FMUL || op == FDIV:
			if op.IsMOPCandidate() {
				t.Errorf("multi-cycle %v must not be a MOP candidate", op)
			}
		case op.IsControl() || op == STA:
			if !op.IsMOPCandidate() {
				t.Errorf("%v must be a MOP candidate", op)
			}
		default: // single-cycle ALU
			if !op.IsMOPCandidate() {
				t.Errorf("single-cycle %v must be a MOP candidate", op)
			}
			if op.Latency() != 1 {
				t.Errorf("ALU %v latency %d, want 1", op, op.Latency())
			}
		}
	}
}

func TestValueGenCandidates(t *testing.T) {
	// Potential MOP heads generate register values AND are candidates.
	cases := map[Op]bool{
		ADD: true, ADDI: true, SLT: true, MOVI: true, JAL: true,
		LD: false /* value-gen but not a candidate */, MUL: false,
		STA: false, BEQ: false, JMP: false, STD: false,
	}
	for op, want := range cases {
		if got := op.IsValueGenCandidate(); got != want {
			t.Errorf("%v IsValueGenCandidate = %v, want %v", op, got, want)
		}
	}
}

func TestLatencies(t *testing.T) {
	// Table 1 latencies.
	want := map[Op]int{ADD: 1, MUL: 3, DIV: 20, FADD: 2, FMUL: 4, FDIV: 24, LD: 1, STA: 1}
	for op, lat := range want {
		if op.Latency() != lat {
			t.Errorf("%v latency %d, want %d", op, op.Latency(), lat)
		}
	}
}

func TestFUClasses(t *testing.T) {
	cases := map[Op]Class{
		ADD: ClassIntALU, SLT: ClassIntALU, BEQ: ClassIntALU, JMP: ClassIntALU,
		MUL: ClassIntMul, DIV: ClassIntMul,
		FADD: ClassFP, FMUL: ClassFPMul, FDIV: ClassFPMul,
		LD: ClassMem, STA: ClassMem,
		STD: ClassNone, HALT: ClassNone,
	}
	for op, want := range cases {
		if got := op.FUClass(); got != want {
			t.Errorf("%v class %v, want %v", op, got, want)
		}
	}
}

func TestControlPredicates(t *testing.T) {
	if !BEQ.IsCondBranch() || !BGE.IsCondBranch() || JMP.IsCondBranch() {
		t.Error("conditional branch classification wrong")
	}
	if !JMP.IsDirectJump() || !JAL.IsDirectJump() || JR.IsDirectJump() {
		t.Error("direct jump classification wrong")
	}
	if !JR.IsIndirect() || JMP.IsIndirect() {
		t.Error("indirect classification wrong")
	}
	for _, op := range []Op{BEQ, BNE, BLT, BGE, JMP, JAL, JR, HALT} {
		if !op.IsControl() {
			t.Errorf("%v must be control", op)
		}
	}
}

func TestMemPredicates(t *testing.T) {
	if !LD.IsLoad() || LD.IsStore() || !LD.IsMem() {
		t.Error("LD classification wrong")
	}
	if !STA.IsStore() || STA.IsLoad() || !STD.IsStore() {
		t.Error("store classification wrong")
	}
	if ADD.IsMem() {
		t.Error("ADD must not be memory")
	}
}

func TestInstructionSources(t *testing.T) {
	in := Instruction{Op: ADD, Dest: 3, Src1: 1, Src2: 2}
	if n := in.NumSources(); n != 2 {
		t.Fatalf("NumSources = %d", n)
	}
	in2 := Instruction{Op: ADDI, Dest: 3, Src1: 1, Src2: NoReg}
	if n := in2.NumSources(); n != 1 {
		t.Fatalf("imm NumSources = %d", n)
	}
	srcs := in.Sources(nil)
	if len(srcs) != 2 || srcs[0] != 1 || srcs[1] != 2 {
		t.Fatalf("Sources = %v", srcs)
	}
}

func TestWritesReg(t *testing.T) {
	if !(Instruction{Op: ADD, Dest: 5, Src1: 1, Src2: 2}).WritesReg() {
		t.Error("ADD r5 must write")
	}
	if (Instruction{Op: ADD, Dest: R0, Src1: 1, Src2: 2}).WritesReg() {
		t.Error("writes to R0 are discarded")
	}
	if (Instruction{Op: STA, Dest: NoReg, Src1: 1}).WritesReg() {
		t.Error("STA writes no register")
	}
	if (Instruction{Op: BEQ, Dest: NoReg, Src1: 1, Src2: 2}).WritesReg() {
		t.Error("BEQ writes no register")
	}
}

func TestRegString(t *testing.T) {
	if R0.String() != "r0" || NoReg.String() != "--" || Reg(17).String() != "r17" {
		t.Error("register rendering wrong")
	}
	if !Reg(31).Valid() || Reg(32).Valid() || NoReg.Valid() {
		t.Error("register validity wrong")
	}
}

func TestInstructionString(t *testing.T) {
	cases := []struct {
		in   Instruction
		want string
	}{
		{Instruction{Op: ADD, Dest: 3, Src1: 1, Src2: 2}, "add"},
		{Instruction{Op: LD, Dest: 4, Src1: 5, Imm: 16}, "16(r5)"},
		{Instruction{Op: BEQ, Src1: 1, Src2: 2, Imm: 99}, "@99"},
		{Instruction{Op: HALT}, "halt"},
		{Instruction{Op: MOVI, Dest: 7, Imm: -3}, "-3"},
	}
	for _, c := range cases {
		if s := c.in.String(); !strings.Contains(s, c.want) {
			t.Errorf("%v rendered as %q, want substring %q", c.in.Op, s, c.want)
		}
	}
}

func TestEveryOpHasName(t *testing.T) {
	for op := Op(0); op < Op(NumOps); op++ {
		if strings.HasPrefix(op.String(), "op(") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
	}
}
