// Package isa defines the instruction set architecture simulated by this
// repository: a small RISC-style, Alpha-flavoured integer ISA with 32
// architectural registers, split store micro-ops (address generation +
// store data, as in the paper's Pentium-4-like base machine), and the
// latency classes from Table 1 of the paper (single-cycle integer ALU,
// 3/20-cycle integer multiply/divide, 2/4/24-cycle FP, memory ports).
//
// The package also encodes the paper's instruction taxonomy for macro-op
// scheduling (Section 4.1): which operations are MOP candidates
// (single-cycle ALU, store address generation, control) and which of those
// are value-generating (produce a register that dependent instructions can
// consume).
package isa

import "fmt"

// Reg is an architectural register identifier. R0 is hardwired to zero,
// writes to it are discarded (as in Alpha's r31; we put it at index 0 for
// convenience). NoReg marks an absent operand.
type Reg uint8

// Register constants.
const (
	R0    Reg = 0  // always zero
	SP    Reg = 30 // conventional stack pointer (no special semantics)
	RA    Reg = 31 // conventional return-address register
	NoReg Reg = 255
)

// NumRegs is the number of architectural integer registers.
const NumRegs = 32

// Valid reports whether r names an actual architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// String renders the register in assembly syntax.
func (r Reg) String() string {
	if r == NoReg {
		return "--"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Op is an operation code.
type Op uint8

// Operation codes. The set is intentionally small but covers every latency
// class and control-flow shape the paper's evaluation depends on.
const (
	// Single-cycle integer ALU (MOP candidates, value-generating).
	ADD Op = iota
	ADDI
	SUB
	AND
	OR
	XOR
	SLL
	SRL
	SLT  // set-less-than
	SEQ  // set-equal
	LUI  // load upper immediate (no register sources)
	MOVI // move immediate (no register sources)
	// Multi-cycle integer (not MOP candidates).
	MUL // 3-cycle
	DIV // 20-cycle
	// Memory (not MOP candidates; loads have non-deterministic latency).
	LD  // load 64-bit
	STA // store address generation (MOP candidate, non-value-generating)
	STD // store data (writes memory at commit; not scheduled as ALU op)
	// Control (MOP candidates, non-value-generating except JAL).
	BEQ // branch if src1 == src2
	BNE // branch if src1 != src2
	BLT // branch if src1 < src2 (signed)
	BGE // branch if src1 >= src2 (signed)
	JMP // unconditional direct jump
	JAL // jump and link (writes RA) — value-generating control
	JR  // indirect jump through register (return)
	// Floating point (modeled for completeness; CINT workloads barely use
	// them, mirroring the paper's integer-only evaluation).
	FADD // 2-cycle
	FMUL // 4-cycle
	FDIV // 24-cycle
	// HALT terminates the program.
	HALT

	numOps
)

// NumOps is the number of defined opcodes.
const NumOps = int(numOps)

var opNames = [...]string{
	ADD: "add", ADDI: "addi", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
	SLL: "sll", SRL: "srl", SLT: "slt", SEQ: "seq", LUI: "lui", MOVI: "movi",
	MUL: "mul", DIV: "div",
	LD: "ld", STA: "sta", STD: "std",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge",
	JMP: "jmp", JAL: "jal", JR: "jr",
	FADD: "fadd", FMUL: "fmul", FDIV: "fdiv",
	HALT: "halt",
}

// String returns the mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Class groups opcodes by the functional unit they occupy (Table 1).
type Class uint8

// Functional-unit classes.
const (
	ClassIntALU Class = iota // 4 units, 1-cycle
	ClassIntMul              // 2 units, 3/20-cycle
	ClassFP                  // 2 units, 2-cycle FP ALU
	ClassFPMul               // 2 units, 4/24-cycle
	ClassMem                 // 2 general memory ports
	ClassNone                // STD, HALT — consume no issue resources
	NumClasses
)

type opInfo struct {
	class    Class
	latency  int  // execution latency in cycles (loads: address generation)
	control  bool // redirects or may redirect the PC
	memory   bool // accesses data memory
	load     bool
	store    bool
	valueGen bool // writes a general register visible to consumers
	cand     bool // MOP candidate (single-cycle op per Section 4.1)
}

var opTable = [numOps]opInfo{
	ADD:  {class: ClassIntALU, latency: 1, valueGen: true, cand: true},
	ADDI: {class: ClassIntALU, latency: 1, valueGen: true, cand: true},
	SUB:  {class: ClassIntALU, latency: 1, valueGen: true, cand: true},
	AND:  {class: ClassIntALU, latency: 1, valueGen: true, cand: true},
	OR:   {class: ClassIntALU, latency: 1, valueGen: true, cand: true},
	XOR:  {class: ClassIntALU, latency: 1, valueGen: true, cand: true},
	SLL:  {class: ClassIntALU, latency: 1, valueGen: true, cand: true},
	SRL:  {class: ClassIntALU, latency: 1, valueGen: true, cand: true},
	SLT:  {class: ClassIntALU, latency: 1, valueGen: true, cand: true},
	SEQ:  {class: ClassIntALU, latency: 1, valueGen: true, cand: true},
	LUI:  {class: ClassIntALU, latency: 1, valueGen: true, cand: true},
	MOVI: {class: ClassIntALU, latency: 1, valueGen: true, cand: true},
	MUL:  {class: ClassIntMul, latency: 3, valueGen: true},
	DIV:  {class: ClassIntMul, latency: 20, valueGen: true},
	LD:   {class: ClassMem, latency: 1, memory: true, load: true, valueGen: true},
	STA:  {class: ClassMem, latency: 1, memory: true, store: true, cand: true},
	STD:  {class: ClassNone, latency: 0, memory: true, store: true},
	BEQ:  {class: ClassIntALU, latency: 1, control: true, cand: true},
	BNE:  {class: ClassIntALU, latency: 1, control: true, cand: true},
	BLT:  {class: ClassIntALU, latency: 1, control: true, cand: true},
	BGE:  {class: ClassIntALU, latency: 1, control: true, cand: true},
	JMP:  {class: ClassIntALU, latency: 1, control: true, cand: true},
	JAL:  {class: ClassIntALU, latency: 1, control: true, valueGen: true, cand: true},
	JR:   {class: ClassIntALU, latency: 1, control: true, cand: true},
	FADD: {class: ClassFP, latency: 2, valueGen: true},
	FMUL: {class: ClassFPMul, latency: 4, valueGen: true},
	FDIV: {class: ClassFPMul, latency: 24, valueGen: true},
	HALT: {class: ClassNone, latency: 0, control: true},
}

// Class returns the functional-unit class of the opcode.
func (o Op) FUClass() Class { return opTable[o].class }

// Latency returns the fixed execution latency of the opcode in cycles.
// For loads this is the address-generation latency; the memory hierarchy
// adds the (variable) access time on top.
func (o Op) Latency() int { return opTable[o].latency }

// IsControl reports whether the opcode can redirect control flow.
func (o Op) IsControl() bool { return opTable[o].control }

// IsCondBranch reports whether the opcode is a conditional direct branch.
func (o Op) IsCondBranch() bool {
	switch o {
	case BEQ, BNE, BLT, BGE:
		return true
	}
	return false
}

// IsDirectJump reports whether the opcode is an unconditional direct jump.
func (o Op) IsDirectJump() bool { return o == JMP || o == JAL }

// IsIndirect reports whether the opcode is an indirect jump.
func (o Op) IsIndirect() bool { return o == JR }

// IsMem reports whether the opcode touches data memory.
func (o Op) IsMem() bool { return opTable[o].memory }

// IsLoad reports whether the opcode is a load.
func (o Op) IsLoad() bool { return opTable[o].load }

// IsStore reports whether the opcode is the address or data half of a store.
func (o Op) IsStore() bool { return opTable[o].store }

// IsValueGen reports whether the opcode produces a register value that
// dependent instructions can consume (Section 4.1's "value-generating").
func (o Op) IsValueGen() bool { return opTable[o].valueGen }

// IsMOPCandidate reports whether the opcode is a macro-op candidate:
// a single-cycle operation (integer ALU, store address generation, or
// control) per Section 4.1 of the paper.
func (o Op) IsMOPCandidate() bool { return opTable[o].cand }

// IsValueGenCandidate reports whether the opcode is a value-generating MOP
// candidate, i.e. a potential MOP head.
func (o Op) IsValueGenCandidate() bool { return opTable[o].cand && opTable[o].valueGen }

// Instruction is one static instruction. Imm doubles as the branch target
// (an absolute instruction index within the program) for control ops and
// as the literal for immediate ALU and memory ops.
type Instruction struct {
	Op   Op
	Dest Reg // NoReg when the op writes no register
	Src1 Reg // NoReg when absent
	Src2 Reg // NoReg when absent
	Imm  int64
}

// Sources appends the valid source registers of the instruction to dst and
// returns it; R0 is included (it is a real, always-ready operand).
func (in Instruction) Sources(dst []Reg) []Reg {
	if in.Src1 != NoReg {
		dst = append(dst, in.Src1)
	}
	if in.Src2 != NoReg {
		dst = append(dst, in.Src2)
	}
	return dst
}

// NumSources returns the number of register source operands.
func (in Instruction) NumSources() int {
	n := 0
	if in.Src1 != NoReg {
		n++
	}
	if in.Src2 != NoReg {
		n++
	}
	return n
}

// WritesReg reports whether the instruction architecturally writes Dest.
// Writes to R0 are discarded and treated as not writing.
func (in Instruction) WritesReg() bool {
	return in.Op.IsValueGen() && in.Dest != NoReg && in.Dest != R0
}

// String renders the instruction in a readable assembly-like form.
func (in Instruction) String() string {
	switch {
	case in.Op == HALT:
		return "halt"
	case in.Op.IsCondBranch():
		return fmt.Sprintf("%-5s %s, %s, @%d", in.Op, in.Src1, in.Src2, in.Imm)
	case in.Op == JMP:
		return fmt.Sprintf("%-5s @%d", in.Op, in.Imm)
	case in.Op == JAL:
		return fmt.Sprintf("%-5s %s, @%d", in.Op, in.Dest, in.Imm)
	case in.Op == JR:
		return fmt.Sprintf("%-5s (%s)", in.Op, in.Src1)
	case in.Op == LD:
		return fmt.Sprintf("%-5s %s, %d(%s)", in.Op, in.Dest, in.Imm, in.Src1)
	case in.Op == STA:
		return fmt.Sprintf("%-5s %d(%s)", in.Op, in.Imm, in.Src1)
	case in.Op == STD:
		return fmt.Sprintf("%-5s %s", in.Op, in.Src1)
	case in.Op == MOVI || in.Op == LUI:
		return fmt.Sprintf("%-5s %s, %d", in.Op, in.Dest, in.Imm)
	case in.Src2 == NoReg:
		return fmt.Sprintf("%-5s %s, %s, %d", in.Op, in.Dest, in.Src1, in.Imm)
	default:
		return fmt.Sprintf("%-5s %s, %s, %s", in.Op, in.Dest, in.Src1, in.Src2)
	}
}
