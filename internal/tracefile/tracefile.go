// Package tracefile records and replays dynamic instruction streams in a
// line-oriented text format, so the timing core can run trace-driven (the
// classic alternative to execution-driven simulation) and users can bring
// externally generated workloads.
//
// Format: one instruction per line, whitespace-separated fields
//
//	pc op dest src1 src2 imm memaddr taken nextpc
//
// with "-" for absent registers, 0/1 for taken, and '#' comments. The
// recorder emits exactly this; the reader validates as it goes.
package tracefile

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"macroop/internal/functional"
	"macroop/internal/isa"
)

// Writer records a dynamic stream.
type Writer struct {
	w   *bufio.Writer
	n   int64
	err error
}

// NewWriter wraps an io.Writer for trace recording.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprintln(bw, "# macroop trace v1: pc op dest src1 src2 imm memaddr taken nextpc")
	return &Writer{w: bw}
}

func regStr(r isa.Reg) string {
	if r == isa.NoReg {
		return "-"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Record appends one dynamic instruction.
func (w *Writer) Record(d *functional.DynInst) {
	if w.err != nil {
		return
	}
	taken := 0
	if d.Taken {
		taken = 1
	}
	_, w.err = fmt.Fprintf(w.w, "%d %s %s %s %s %d %d %d %d\n",
		d.PC, d.Inst.Op, regStr(d.Inst.Dest), regStr(d.Inst.Src1), regStr(d.Inst.Src2),
		d.Inst.Imm, d.MemAddr, taken, d.NextPC)
	w.n++
}

// Flush finishes the trace; it returns the first write error, if any.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Count returns how many records were written.
func (w *Writer) Count() int64 { return w.n }

// Reader replays a recorded stream as a functional.Source.
type Reader struct {
	sc   *bufio.Scanner
	seq  int64
	line int
	done bool
}

// NewReader wraps an io.Reader producing trace records.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	return &Reader{sc: sc}
}

var opByName = func() map[string]isa.Op {
	m := make(map[string]isa.Op)
	for op := isa.Op(0); op < isa.Op(isa.NumOps); op++ {
		m[op.String()] = op
	}
	return m
}()

func parseReg(s string) (isa.Reg, error) {
	if s == "-" {
		return isa.NoReg, nil
	}
	if !strings.HasPrefix(s, "r") {
		return isa.NoReg, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return isa.NoReg, fmt.Errorf("bad register %q", s)
	}
	return isa.Reg(n), nil
}

// Step implements functional.Source.
func (r *Reader) Step(d *functional.DynInst) error {
	if r.done {
		return functional.ErrHalted
	}
	for {
		if !r.sc.Scan() {
			r.done = true
			if err := r.sc.Err(); err != nil {
				return fmt.Errorf("tracefile: %w", err)
			}
			return functional.ErrHalted
		}
		r.line++
		text := strings.TrimSpace(r.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Fields(text)
		if len(f) != 9 {
			return fmt.Errorf("tracefile line %d: want 9 fields, got %d", r.line, len(f))
		}
		pc, err := strconv.Atoi(f[0])
		if err != nil {
			return fmt.Errorf("tracefile line %d: pc: %w", r.line, err)
		}
		op, ok := opByName[f[1]]
		if !ok {
			return fmt.Errorf("tracefile line %d: unknown op %q", r.line, f[1])
		}
		dest, err := parseReg(f[2])
		if err != nil {
			return fmt.Errorf("tracefile line %d: dest: %w", r.line, err)
		}
		src1, err := parseReg(f[3])
		if err != nil {
			return fmt.Errorf("tracefile line %d: src1: %w", r.line, err)
		}
		src2, err := parseReg(f[4])
		if err != nil {
			return fmt.Errorf("tracefile line %d: src2: %w", r.line, err)
		}
		imm, err := strconv.ParseInt(f[5], 10, 64)
		if err != nil {
			return fmt.Errorf("tracefile line %d: imm: %w", r.line, err)
		}
		addr, err := strconv.ParseUint(f[6], 10, 64)
		if err != nil {
			return fmt.Errorf("tracefile line %d: memaddr: %w", r.line, err)
		}
		taken := f[7] == "1"
		next, err := strconv.Atoi(f[8])
		if err != nil {
			return fmt.Errorf("tracefile line %d: nextpc: %w", r.line, err)
		}
		*d = functional.DynInst{
			Seq:     r.seq,
			PC:      pc,
			Inst:    isa.Instruction{Op: op, Dest: dest, Src1: src1, Src2: src2, Imm: imm},
			MemAddr: addr,
			Taken:   taken,
			NextPC:  next,
		}
		r.seq++
		return nil
	}
}
