package tracefile

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"macroop/internal/config"
	"macroop/internal/core"
	"macroop/internal/functional"
	"macroop/internal/workload"
	"macroop/internal/workload/workloadtest"
)

// record captures the first n committed instructions of a benchmark.
func record(t *testing.T, bench string, n int64) *bytes.Buffer {
	t.Helper()
	prof, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	prog := workloadtest.Generate(t, prof)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	e := functional.NewExecutor(prog)
	var d functional.DynInst
	for i := int64(0); i < n; i++ {
		if err := e.Step(&d); err != nil {
			break
		}
		w.Record(&d)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestRoundTrip(t *testing.T) {
	buf := record(t, "gzip", 5000)
	text := buf.String()

	// Re-execute and compare against the replay record by record.
	prof, _ := workload.ByName("gzip")
	prog := workloadtest.Generate(t, prof)
	e := functional.NewExecutor(prog)
	r := NewReader(strings.NewReader(text))
	var want, got functional.DynInst
	for i := 0; i < 5000; i++ {
		if err := e.Step(&want); err != nil {
			break
		}
		if err := r.Step(&got); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.PC != want.PC || got.Inst != want.Inst || got.MemAddr != want.MemAddr ||
			got.Taken != want.Taken || got.NextPC != want.NextPC {
			t.Fatalf("record %d differs:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if err := r.Step(&got); !errors.Is(err, functional.ErrHalted) {
		t.Fatalf("want ErrHalted at end, got %v", err)
	}
}

// TestTraceDrivenMatchesExecutionDriven is the headline property: replaying
// a recorded trace through the timing core gives the exact same cycle
// count as execution-driven simulation.
func TestTraceDrivenMatchesExecutionDriven(t *testing.T) {
	const n = 20000
	buf := record(t, "gap", n+n/2) // slack: STD records fuse into their STA at decode

	prof, _ := workload.ByName("gap")
	prog := workloadtest.Generate(t, prof)
	for _, m := range []config.Machine{
		config.Default(),
		config.Default().WithMOP(config.DefaultMOP()),
	} {
		cExec, err := core.New(m, prog)
		if err != nil {
			t.Fatal(err)
		}
		resExec, err := cExec.Run(n)
		if err != nil {
			t.Fatal(err)
		}
		cTrace, err := core.NewFromSource(m, "trace", NewReader(bytes.NewReader(buf.Bytes())))
		if err != nil {
			t.Fatal(err)
		}
		resTrace, err := cTrace.Run(n)
		if err != nil {
			t.Fatal(err)
		}
		if resExec.Cycles != resTrace.Cycles || resExec.Committed != resTrace.Committed {
			t.Fatalf("%v: exec %d cycles / %d insts, trace %d cycles / %d insts",
				m.Sched, resExec.Cycles, resExec.Committed, resTrace.Cycles, resTrace.Committed)
		}
	}
}

func TestReaderErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"1 add r3 r1", "9 fields"},
		{"x add r3 r1 r2 0 0 0 2", "pc"},
		{"1 frob r3 r1 r2 0 0 0 2", "unknown op"},
		{"1 add r99 r1 r2 0 0 0 2", "bad register"},
		{"1 add r3 r1 r2 zz 0 0 2", "imm"},
		{"1 add r3 r1 r2 0 zz 0 2", "memaddr"},
		{"1 add r3 r1 r2 0 0 0 zz", "nextpc"},
	}
	for _, c := range cases {
		r := NewReader(strings.NewReader(c.src))
		var d functional.DynInst
		err := r.Step(&d)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: err = %v, want %q", c.src, err, c.want)
		}
	}
}

func TestReaderSkipsCommentsAndBlanks(t *testing.T) {
	src := "# header\n\n  \n0 movi r1 - - 5 0 0 1\n"
	r := NewReader(strings.NewReader(src))
	var d functional.DynInst
	if err := r.Step(&d); err != nil {
		t.Fatal(err)
	}
	if d.Inst.Imm != 5 || d.Seq != 0 {
		t.Fatalf("parsed %+v", d)
	}
	if err := r.Step(&d); !errors.Is(err, functional.ErrHalted) {
		t.Fatal("expected end of stream")
	}
}
