package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"macroop/internal/checker"
	"macroop/internal/experiments"
	"macroop/internal/journal"
	"macroop/internal/simerr"
)

// Admission and lifecycle errors (the 503 family of the HTTP surface).
var (
	// ErrQueueFull: admitting the request would exceed the bounded queue.
	// Clients should honour the Retry-After hint and resubmit.
	ErrQueueFull = errors.New("service: queue full")
	// ErrDraining: the server is finishing in-flight work before exit.
	ErrDraining = errors.New("service: draining")
	// ErrInterrupted: a drain cut the job short before its cells all
	// finished; a restarted server with the same journal resumes it.
	ErrInterrupted = errors.New("service: job interrupted by drain")
)

// Options configures a Service. The zero value is usable: every field
// has a production default.
type Options struct {
	// Workers is the worker pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds admitted-but-unfinished cells; admission beyond
	// it is rejected with ErrQueueFull (default 256).
	QueueDepth int
	// CacheEntries bounds the in-memory result cache (default 4096).
	CacheEntries int
	// CacheBytes additionally bounds the result cache's approximate
	// resident size; 0 means no byte quota (the entry bound still holds).
	CacheBytes int64
	// DefaultInsts is the per-cell instruction budget when a request
	// leaves it unset (default 200_000).
	DefaultInsts int64
	// MaxInsts caps any request's per-cell budget (default 5_000_000).
	MaxInsts int64
	// CellTimeout bounds one cell's wall clock (default 2m).
	CellTimeout time.Duration
	// JournalPath, when set, makes the service crash-consistent: cell
	// results and batch specs are write-ahead journaled, and a restarted
	// service warms its cache from the journal and resumes batches a
	// drain (or crash) left unfinished.
	JournalPath string
	// RetryAfter is the hint attached to queue-full rejections
	// (default 1s).
	RetryAfter time.Duration
	// NodeName, when set, namespaces job IDs as job-<node>-<seq> so jobs
	// stay unique across a cluster and a peer can adopt a dead node's
	// jobs under their original IDs without colliding with its own.
	NodeName string
	// PeerFill, when set, is consulted before a cache-missing cell is
	// executed locally: the cluster layer asks the cell's owning shard
	// for the record. Returning ok=false (peer slow, busy, dead, or this
	// node owns the cell) degrades to local execution. The hook runs
	// inside the cell's singleflight, so concurrent identical requests
	// share one peer fetch.
	PeerFill func(ctx context.Context, cell CellSpec, fp string) (*CachedResult, bool)
	// ClusterHealth, when set, is embedded in the /healthz JSON body as
	// the "cluster" field (ring, membership, ownership state).
	ClusterHealth func() any
	// Epoch, when set, supplies the cluster epoch stamped on freshly
	// executed records (CachedResult.SourceEpoch); nil means epoch 0.
	Epoch func() uint64
	// OnExecuted, when set, observes every freshly executed (not cached,
	// coalesced, peer-filled, or warmed) cell record after it is cached
	// and journaled. The cluster layer hangs write-through replication
	// off it. It must not block: it runs on the worker goroutine.
	OnExecuted func(fp string, rec *CachedResult)
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 4096
	}
	if o.DefaultInsts <= 0 {
		o.DefaultInsts = 200_000
	}
	if o.MaxInsts <= 0 {
		o.MaxInsts = 5_000_000
	}
	if o.CellTimeout <= 0 {
		o.CellTimeout = 2 * time.Minute
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// task is one queued cell execution on behalf of a job.
type task struct {
	job  *Job
	cell resolvedCell
	idx  int
}

// Service is the batched, cached simulation service behind cmd/mopserve.
type Service struct {
	opts       Options
	runner     *experiments.Runner // shared per-benchmark program futures
	cache      *resultCache
	flights    *flightGroup
	gaps       *gapCache
	gapFlights *gapFlight
	jnl        *journal.Journal
	met        *metrics

	queue   chan *task
	pending atomic.Int64 // admitted, unfinished cells

	mu      sync.Mutex
	jobs    map[string]*Job
	seq     int
	resumed []*Job // journaled batches awaiting re-dispatch at Start
	started bool

	execMu  sync.Mutex
	execFPs map[string]int // fingerprint -> local execution count

	draining atomic.Bool
	runCtx   context.Context // cancelled by Drain: pick up no new cells
	stopRun  context.CancelFunc
	hardCtx  context.Context // cancelled by Close: abort in-flight cells
	stopHard context.CancelFunc
	wg       sync.WaitGroup // workers + dispatchers
	closeJnl sync.Once

	executions atomic.Int64
}

// Journal key prefixes. cellres records double as the persistent layer
// of the content-addressed cache; jobspec without a matching jobdone is
// exactly an unfinished batch, which is what resume re-dispatches. They
// are exported because the cluster's failover path reads a dead peer's
// journal under the same convention to re-own its unfinished jobs.
const (
	KeyCell    = "cellres|"
	KeyJobSpec = "jobspec|"
	KeyJobDone = "jobdone|"
	// KeyGap records finished gap reports (POST /v1/gap) under their
	// content fingerprint; replay warms the gap cache from them.
	KeyGap = "gapres|"
)

// New builds a Service, opening and replaying the journal when
// configured. Call Start to spawn the worker pool.
func New(opts Options) (*Service, error) {
	opts = opts.withDefaults()
	s := &Service{
		opts:       opts,
		runner:     experiments.NewRunner(0), // program cache only; budgets are per-cell
		cache:      newResultCache(opts.CacheEntries, opts.CacheBytes),
		flights:    newFlightGroup(),
		gaps:       newGapCache(gapCacheEntries),
		gapFlights: newGapFlight(),
		queue:      make(chan *task, opts.QueueDepth),
		jobs:       make(map[string]*Job),
		execFPs:    make(map[string]int),
	}
	s.runCtx, s.stopRun = context.WithCancel(context.Background())
	s.hardCtx, s.stopHard = context.WithCancel(context.Background())
	s.met = newMetrics(func() int { return int(s.pending.Load()) }, opts.Workers)
	if opts.JournalPath != "" {
		j, err := journal.Open(opts.JournalPath)
		if err != nil {
			return nil, err
		}
		s.jnl = j
		if err := s.replayJournal(); err != nil {
			j.Close()
			return nil, err
		}
	}
	return s, nil
}

// jobSeq extracts the numeric sequence from a job ID ("job-7" or
// "job-<node>-7"); -1 if it does not parse.
func jobSeq(id string) int {
	i := strings.LastIndexByte(id, '-')
	if i < 0 {
		return -1
	}
	n, err := strconv.Atoi(id[i+1:])
	if err != nil {
		return -1
	}
	return n
}

// IndexRecords builds the authoritative key → value index from a
// journal's file-order records. For most keys the policy is last-wins
// (a re-appended key supersedes the older frame). Cell-result keys are
// the exception: replication and repair can land the same cell from two
// different cluster epochs in one journal, and there newest SourceEpoch
// wins regardless of file order (epoch ties fall back to file order, so
// the result is deterministic for any interleaving). A cellres whose
// payload does not decode never displaces one that does. Exported
// because the cluster failover path indexes a dead peer's journal under
// the same policy.
func IndexRecords(recs []journal.Record) map[string][]byte {
	idx := make(map[string][]byte, len(recs))
	epochs := make(map[string]uint64)
	for _, r := range recs {
		if !strings.HasPrefix(r.Key, KeyCell) {
			idx[r.Key] = r.Data
			continue
		}
		var cw CellWire
		if err := json.Unmarshal(r.Data, &cw); err != nil || cw.Record() == nil {
			continue // damaged cellres: keep whatever intact record we have
		}
		if prev, ok := idx[r.Key]; ok && prev != nil && cw.Epoch < epochs[r.Key] {
			continue // older-epoch duplicate: the newer record stands
		}
		idx[r.Key] = r.Data
		epochs[r.Key] = cw.Epoch
	}
	return idx
}

// replayJournal warms the cache from journaled cell results and
// reconstructs jobs: finished batches reload frozen, unfinished ones
// queue for re-dispatch at Start. The file is re-read via journal.Load
// so duplicate cellres keys (replicated records from different source
// epochs) resolve newest-epoch-wins via IndexRecords. Damaged or stale
// records never fail the replay — a cellres that does not decode simply
// re-runs, a jobdone whose jobspec is missing is ignored, and a jobspec
// whose cells no longer resolve is surfaced and abandoned at Start.
func (s *Service) replayJournal() error {
	recs, err := journal.Load(s.jnl.Path())
	if err != nil {
		return err
	}
	idx := IndexRecords(recs)
	keys := make([]string, 0, len(idx))
	for k := range idx {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var pendingSpecs []JobSpecRecord
	for _, key := range keys {
		data := idx[key]
		switch {
		case strings.HasPrefix(key, KeyCell):
			var cw CellWire
			if err := json.Unmarshal(data, &cw); err != nil {
				continue // damaged record: the cell simply re-runs
			}
			if rec := cw.Record(); rec != nil {
				s.cache.Put(key[len(KeyCell):], rec)
			}
		case strings.HasPrefix(key, KeyGap):
			var rep experiments.GapReport
			if err := json.Unmarshal(data, &rep); err != nil {
				continue // damaged record: the analysis simply re-runs
			}
			s.gaps.Put(key[len(KeyGap):], &rep)
		case strings.HasPrefix(key, KeyJobSpec):
			var spec JobSpecRecord
			if err := json.Unmarshal(data, &spec); err != nil {
				continue
			}
			if n := jobSeq(spec.ID); n > s.seq {
				s.seq = n
			}
			if done, ok := s.jnl.Get(KeyJobDone + spec.ID); ok {
				var st JobStatus
				if err := json.Unmarshal(done, &st); err == nil {
					j := newJob(spec.ID, spec.Cells, true, st.Created)
					j.state = st.State
					j.frozen = &st
					close(j.done)
					s.jobs[spec.ID] = j
					continue
				}
			}
			pendingSpecs = append(pendingSpecs, spec)
		}
	}
	sort.Slice(pendingSpecs, func(i, k int) bool { return pendingSpecs[i].ID < pendingSpecs[k].ID })
	for _, spec := range pendingSpecs {
		j := newJob(spec.ID, spec.Cells, true, time.Now())
		s.jobs[spec.ID] = j
		s.resumed = append(s.resumed, j)
	}
	return nil
}

// Start spawns the worker pool and re-dispatches journaled batches that
// never finished.
func (s *Service) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	resumed := s.resumed
	s.resumed = nil
	s.mu.Unlock()

	for i := 0; i < s.opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	for _, j := range resumed {
		cells, err := resolveAll(j.cells)
		if err != nil {
			// A journaled spec that no longer resolves (e.g. the workload
			// set changed) cannot be resumed; surface and abandon it.
			s.opts.Logf("service: resume %s: %v", j.id, err)
			j.interrupt()
			continue
		}
		s.met.jobsResumed.Add(1)
		s.pending.Add(int64(len(cells)))
		s.wg.Add(1)
		go s.dispatch(j, cells)
		s.opts.Logf("service: resuming %s (%d cells)", j.id, len(cells))
	}
}

func resolveAll(specs []CellSpec) ([]resolvedCell, error) {
	out := make([]resolvedCell, len(specs))
	for i, c := range specs {
		rc, err := c.resolve()
		if err != nil {
			return nil, err
		}
		out[i] = rc
	}
	return out, nil
}

// worker executes queued cells until drain.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		// Prefer the drain signal over racing it against a ready task.
		select {
		case <-s.runCtx.Done():
			return
		default:
		}
		select {
		case <-s.runCtx.Done():
			return
		case t := <-s.queue:
			s.met.workersBusy.Add(1)
			cr := s.runTask(t)
			s.finishCell(t, cr)
			s.met.workersBusy.Add(-1)
		}
	}
}

// dispatch feeds one job's cells into the queue, stopping at drain
// (undelivered cells stay journaled in the job's spec for resume).
func (s *Service) dispatch(j *Job, cells []resolvedCell) {
	defer s.wg.Done()
	for i := range cells {
		select {
		case s.queue <- &task{job: j, cell: cells[i], idx: i}:
		case <-s.runCtx.Done():
			return
		}
	}
}

// runTask executes one cell (through cache and singleflight) and shapes
// the wire result.
func (s *Service) runTask(t *task) *CellResult {
	start := time.Now()
	cr := &CellResult{
		Index:  t.idx,
		Bench:  t.cell.Bench,
		Config: t.cell.Name,
		Cell:   t.cell.fp,
	}
	rec, how, err := s.executeCell(s.hardCtx, t.cell)
	cr.WallMS = float64(time.Since(start).Microseconds()) / 1e3
	if err != nil {
		kind, _ := simerr.KindOf(err)
		cr.Error = err.Error()
		cr.ErrorKind = kind.String()
		cr.ReproFingerprint = simerr.FingerprintOf(err)
		return cr
	}
	cr.Cached = how == srcCached
	cr.Shared = how == srcShared
	cr.PeerFilled = how == srcPeer
	cr.Checksum = fmt.Sprintf("%016x", rec.Checksum)
	cr.CheckedCommits = rec.Commits
	cr.IPC = rec.Result.IPC
	cr.Cycles = rec.Result.Cycles
	cr.Committed = rec.Result.Committed
	cr.Result = rec.Result
	return cr
}

// cellSource says where a finished cell's record came from.
type cellSource int

const (
	srcRan cellSource = iota
	srcCached
	srcShared
	srcPeer
)

// executeCell resolves one cell to its outcome: cache hit, coalesced
// into an identical in-flight execution, a peer cache-fill from the
// owning shard, or a fresh simulation under the differential oracle.
// Fresh and peer-filled successes are cached and journaled before any
// waiter observes them. noFill cells (peer-fill requests served for
// another node) never chain a further fill.
func (s *Service) executeCell(ctx context.Context, c resolvedCell) (rec *CachedResult, how cellSource, err error) {
	if rec, ok := s.cache.Get(c.fp); ok {
		s.met.cacheHits.Add(1)
		return rec, srcCached, nil
	}
	how = srcCached // refined below by the flight outcome
	var ran, filled bool
	rec, shared, err := s.flights.Do(c.fp, func() (*CachedResult, error) {
		if rec, ok := s.cache.Get(c.fp); ok {
			return rec, nil // lost the lookup/insert race: still a hit
		}
		cellCtx, cancel := context.WithTimeout(ctx, s.opts.CellTimeout)
		defer cancel()
		if s.opts.PeerFill != nil && !c.noFill {
			if rec, ok := s.opts.PeerFill(cellCtx, c.CellSpec, c.fp); ok && rec != nil {
				filled = true
				s.cache.Put(c.fp, rec)
				s.journalCellResult(c.fp, rec)
				return rec, nil
			}
		}
		ran = true
		s.met.cacheMisses.Add(1)
		s.executions.Add(1)
		s.execMu.Lock()
		s.execFPs[c.fp]++
		s.execMu.Unlock()
		p, err := s.runner.Program(c.Bench)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		res, sum, err := checker.CheckedRunContext(cellCtx, c.m, p, c.Insts, c.Insts)
		if err != nil {
			return nil, err
		}
		s.met.observeCell(c.m.Sched.String(), time.Since(t0).Seconds(), res.Committed)
		rec := &CachedResult{Bench: c.Bench, Result: res, Checksum: sum.Checksum, Commits: sum.Commits}
		if s.opts.Epoch != nil {
			rec.SourceEpoch = s.opts.Epoch()
		}
		s.cache.Put(c.fp, rec)
		s.journalCellResult(c.fp, rec)
		if s.opts.OnExecuted != nil {
			s.opts.OnExecuted(c.fp, rec)
		}
		return rec, nil
	})
	switch {
	case shared:
		how = srcShared
		s.met.sfShared.Add(1)
	case ran:
		how = srcRan
	case filled:
		how = srcPeer
	case err == nil:
		how = srcCached
		s.met.cacheHits.Add(1)
	}
	return rec, how, err
}

// finishCell records a completed cell on its job and handles job
// completion: terminal metrics and the jobdone journal record.
func (s *Service) finishCell(t *task, cr *CellResult) {
	defer s.pending.Add(-1)
	if cr.Error == "" {
		s.met.cellsOK.Add(1)
	} else {
		s.met.cellsFailed.Add(1)
	}
	if !t.job.record(cr) {
		return
	}
	st := t.job.Status(true)
	if st.State == JobFailed {
		s.met.jobsFailed.Add(1)
		s.opts.Logf("service: %s finished with %d/%d failed cells%s",
			t.job.id, st.Failed, st.Cells, t.job.failedCells())
	} else {
		s.met.jobsCompleted.Add(1)
	}
	if t.job.journaled {
		s.journalJobDone(st)
	}
}

// admit performs admission control for n new cells: the bounded queue
// rejects rather than buffers unboundedly or blocks the caller.
func (s *Service) admit(n int) error {
	if s.draining.Load() {
		s.met.jobsRejected.Add(1)
		return ErrDraining
	}
	for {
		cur := s.pending.Load()
		if int(cur)+n > s.opts.QueueDepth {
			s.met.jobsRejected.Add(1)
			return ErrQueueFull
		}
		if s.pending.CompareAndSwap(cur, cur+int64(n)) {
			return nil
		}
	}
}

// maxRetainedJobs bounds the in-memory job registry: once past it,
// terminal ad-hoc (non-journaled) jobs are evicted oldest-first so a
// long-lived server's registry cannot grow without bound.
const maxRetainedJobs = 4096

// newJob allocates the next job ID and registers the job.
func (s *Service) newJob(cells []CellSpec, journaled bool) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	id := fmt.Sprintf("job-%d", s.seq)
	if s.opts.NodeName != "" {
		id = fmt.Sprintf("job-%s-%d", s.opts.NodeName, s.seq)
	}
	j := newJob(id, cells, journaled, time.Now())
	s.jobs[j.id] = j
	if len(s.jobs) > maxRetainedJobs {
		s.pruneJobsLocked()
	}
	return j
}

// pruneJobsLocked evicts the oldest terminal non-journaled jobs down to
// the retention bound. Journaled and still-running jobs always survive.
func (s *Service) pruneJobsLocked() {
	victims := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		if j.journaled {
			continue
		}
		select {
		case <-j.Done():
			victims = append(victims, j)
		default:
		}
	}
	sort.Slice(victims, func(i, k int) bool { return victims[i].created.Before(victims[k].created) })
	for _, j := range victims {
		if len(s.jobs) <= maxRetainedJobs {
			return
		}
		delete(s.jobs, j.id)
	}
}

// Simulate runs one cell synchronously: admitted through the same
// bounded queue and worker pool as batches, so a saturated server
// rejects rather than piling up callers. The returned CellResult is
// non-nil whenever the cell finished, even if the simulation itself
// failed (err then carries the typed failure).
func (s *Service) Simulate(ctx context.Context, req SimRequest) (*CellResult, error) {
	rc, err := s.resolveSim(req)
	if err != nil {
		return nil, err
	}
	if err := s.admit(1); err != nil {
		return nil, err
	}
	s.met.jobsAccepted.Add(1)
	j := s.newJob([]CellSpec{rc.CellSpec}, false)
	t := &task{job: j, cell: rc, idx: 0}
	select {
	case s.queue <- t:
	case <-s.runCtx.Done():
		s.pending.Add(-1)
		j.interrupt()
		return nil, ErrDraining
	case <-ctx.Done():
		s.pending.Add(-1)
		j.interrupt()
		return nil, simerr.Cancelled(simerr.Context{Benchmark: req.Benchmark}, ctx.Err())
	}
	select {
	case <-j.Done():
	case <-ctx.Done():
		// The cell still runs and warms the cache; this caller is gone.
		return nil, simerr.Cancelled(simerr.Context{Benchmark: req.Benchmark}, ctx.Err())
	}
	st := j.Status(true)
	if st.State == JobInterrupted || len(st.Results) == 0 {
		return nil, ErrInterrupted
	}
	cr := st.Results[0]
	if cr.Error != "" {
		kind, _ := simerr.ParseKind(cr.ErrorKind)
		return cr, simerr.Journaled(kind, cr.Error, cr.ReproFingerprint)
	}
	return cr, nil
}

// resolveSim applies the server's instruction-budget defaults and caps
// to a single-cell request and resolves it.
func (s *Service) resolveSim(req SimRequest) (resolvedCell, error) {
	insts := req.MaxInsts
	if insts <= 0 {
		insts = s.opts.DefaultInsts
	}
	if insts > s.opts.MaxInsts {
		return resolvedCell{}, fmt.Errorf("max_insts %d exceeds the server limit %d", insts, s.opts.MaxInsts)
	}
	return CellSpec{Bench: req.Benchmark, Name: req.Config.Sched, Spec: req.Config, Insts: insts}.resolve()
}

// FingerprintCell resolves a cell spec to its content fingerprint — the
// cluster layer's handle for probe fills and replica-set computation.
func (s *Service) FingerprintCell(spec CellSpec) (string, error) {
	rc, err := spec.resolve()
	if err != nil {
		return "", err
	}
	return rc.fp, nil
}

// ResolveSim applies the server's budget defaults to a single-cell
// request and returns the resolved spec plus its content fingerprint.
// The cluster router uses it to compute a request's owning shard without
// executing anything.
func (s *Service) ResolveSim(req SimRequest) (CellSpec, string, error) {
	rc, err := s.resolveSim(req)
	if err != nil {
		return CellSpec{}, "", err
	}
	return rc.CellSpec, rc.fp, nil
}

// SubmitMatrix admits a batched sweep and returns immediately; the job
// runs on the worker pool. With a journal attached the batch is durable:
// its spec is journaled before acceptance is reported, so a drain or
// crash mid-sweep resumes it.
func (s *Service) SubmitMatrix(req MatrixRequest) (*Job, error) {
	cells, err := req.cells(s.opts.DefaultInsts, s.opts.MaxInsts)
	if err != nil {
		return nil, err
	}
	if err := s.admit(len(cells)); err != nil {
		return nil, err
	}
	s.met.jobsAccepted.Add(1)
	specs := make([]CellSpec, len(cells))
	for i, c := range cells {
		specs[i] = c.CellSpec
	}
	j := s.newJob(specs, s.jnl != nil)
	if j.journaled {
		s.journalJobSpec(j)
	}
	s.wg.Add(1)
	go s.dispatch(j, cells)
	return j, nil
}

// AdoptJob re-owns a job under its original (foreign) ID — the failover
// path: a peer died with this jobspec journaled but unfinished, and this
// node resumes it. Adoption is recovery work, so it bypasses queue
// admission (the cells were admitted once already, on the dead node);
// cells whose records were warmed into the cache replay instantly, and
// only the rest re-execute. resumed/rerun report that split. Adopting an
// ID this node already knows is a no-op returning the existing job.
func (s *Service) AdoptJob(id string, cells []CellSpec) (j *Job, resumed, rerun int, err error) {
	if s.draining.Load() {
		return nil, 0, 0, ErrDraining
	}
	rcs, err := resolveAll(cells)
	if err != nil {
		return nil, 0, 0, err
	}
	s.mu.Lock()
	if existing, ok := s.jobs[id]; ok {
		s.mu.Unlock()
		return existing, 0, 0, nil
	}
	j = newJob(id, cells, s.jnl != nil, time.Now())
	s.jobs[id] = j
	s.mu.Unlock()
	for _, rc := range rcs {
		if _, ok := s.cache.Get(rc.fp); ok {
			resumed++
		} else {
			rerun++
		}
	}
	if j.journaled {
		s.journalJobSpec(j)
	}
	s.met.jobsResumed.Add(1)
	s.pending.Add(int64(len(rcs)))
	s.wg.Add(1)
	go s.dispatch(j, rcs)
	return j, resumed, rerun, nil
}

// WarmCache inserts a record under its fingerprint (journaling it for
// durability) unless one is already cached. It reports whether the
// record was new. Failover uses it to reconstitute a dead peer's
// completed cells; the peer-fill path uses the same insertion implicitly
// via executeCell.
func (s *Service) WarmCache(fp string, rec *CachedResult) bool {
	if _, ok := s.cache.Get(fp); ok {
		return false
	}
	s.cache.Put(fp, rec)
	s.journalCellResult(fp, rec)
	return true
}

// CacheFingerprints snapshots every cached cell fingerprint (unordered).
// The cluster's anti-entropy pass digests these to offer records to
// replica peers.
func (s *Service) CacheFingerprints() []string { return s.cache.Keys() }

// CachedByFingerprint looks a record up by content fingerprint — the
// fast path when serving a peer's cache-fill request.
func (s *Service) CachedByFingerprint(fp string) (*CachedResult, bool) {
	return s.cache.Get(fp)
}

// ExecuteSpec resolves one cell and produces its record on behalf of a
// peer's cache-fill request: cache hit, coalesced into an in-flight
// execution, or executed locally under normal admission control (so a
// saturated node answers busy and the requester degrades to local
// execution — that is the work-stealing backpressure signal). Fill
// service never chains a further peer fill: the cell is resolved here
// or not at all.
func (s *Service) ExecuteSpec(ctx context.Context, spec CellSpec) (rec *CachedResult, cached bool, err error) {
	rc, err := spec.resolve()
	if err != nil {
		return nil, false, err
	}
	rc.noFill = true
	if rec, ok := s.cache.Get(rc.fp); ok {
		s.met.cacheHits.Add(1)
		return rec, true, nil
	}
	if err := s.admit(1); err != nil {
		return nil, false, err
	}
	defer s.pending.Add(-1)
	rec, how, err := s.executeCell(ctx, rc)
	return rec, how == srcCached || how == srcShared, err
}

// Job looks up a job by ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// JobStatuses snapshots every known job, newest first.
func (s *Service) JobStatuses() []*JobStatus {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	out := make([]*JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status(false)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID > out[k].ID })
	return out
}

// Draining reports whether the service has begun (or finished) draining.
func (s *Service) Draining() bool { return s.draining.Load() }

// HealthStatus is the /healthz JSON body: enough live state for an
// operator (or the cluster-aware client) to see drain progress and, when
// clustered, ring and ownership state.
type HealthStatus struct {
	Status          string  `json:"status"` // ok | draining
	Draining        bool    `json:"draining"`
	QueueDepth      int     `json:"queue_depth"`
	Workers         int     `json:"workers"`
	CacheCells      int     `json:"cache_cells"`
	CacheBytes      int64   `json:"cache_bytes"`
	Jobs            int     `json:"jobs"`
	DrainETASeconds float64 `json:"drain_eta_seconds,omitempty"`
	Cluster         any     `json:"cluster,omitempty"`
}

// Health snapshots the service for /healthz.
func (s *Service) Health() HealthStatus {
	s.mu.Lock()
	jobs := len(s.jobs)
	s.mu.Unlock()
	h := HealthStatus{
		Status:     "ok",
		Draining:   s.draining.Load(),
		QueueDepth: int(s.pending.Load()),
		Workers:    s.opts.Workers,
		CacheCells: s.cache.Len(),
		CacheBytes: s.cache.Bytes(),
		Jobs:       jobs,
	}
	if h.Draining {
		h.Status = "draining"
		h.DrainETASeconds = s.DrainETA().Seconds()
	}
	if s.opts.ClusterHealth != nil {
		h.Cluster = s.opts.ClusterHealth()
	}
	return h
}

// DrainETA estimates how long until in-flight work finishes: pending
// cells times the observed mean cell latency, divided across the worker
// pool. With no latency samples yet it assumes one second per cell. The
// estimate backs the Retry-After hint during a drain, replacing the
// static queue hint: a client told to come back learns when the restart
// is actually expected to have happened.
func (s *Service) DrainETA() time.Duration {
	pending := s.pending.Load()
	if pending <= 0 {
		return 0
	}
	avg := s.met.avgCellSeconds()
	if avg <= 0 {
		avg = 1
	}
	eta := time.Duration(float64(pending) * avg / float64(s.opts.Workers) * float64(time.Second))
	if eta < time.Second {
		eta = time.Second
	}
	return eta
}

// retryAfter is the Retry-After hint for a rejected request: during a
// drain it reflects the expected drain time; for queue-full it is the
// configured static hint.
func (s *Service) retryAfter(err error) time.Duration {
	if errors.Is(err, ErrDraining) || errors.Is(err, ErrInterrupted) {
		if eta := s.DrainETA(); eta > 0 {
			return eta
		}
		return s.opts.RetryAfter
	}
	return s.opts.RetryAfter
}

// Drain gracefully stops the service: no new admissions, queued cells
// are left for resume, in-flight cells run to completion. It returns
// when the pool is idle; if ctx expires first, in-flight cells are
// hard-cancelled (they fail typed-cancelled and their jobs resume on
// restart). Unfinished jobs are marked interrupted so waiters return.
func (s *Service) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.stopRun()
	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	var err error
	select {
	case <-idle:
	case <-ctx.Done():
		err = ctx.Err()
		s.stopHard()
		<-idle
	}
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.interrupt()
	}
	return err
}

// Close drains (bounded by a short grace) and releases the journal.
func (s *Service) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := s.Drain(ctx)
	s.stopHard()
	s.closeJnl.Do(func() {
		if s.jnl != nil {
			if cerr := s.jnl.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	})
	return err
}

// Abort hard-stops the service without draining — the in-process stand-in
// for kill -9 in cluster chaos tests. The journal is closed first, so
// nothing that happens after Abort is durable: exactly the visibility a
// crashed process leaves behind. In-flight cells fail typed-cancelled;
// worker goroutines exit; no cleanup runs.
func (s *Service) Abort() {
	s.draining.Store(true)
	s.closeJnl.Do(func() {
		if s.jnl != nil {
			s.jnl.Close()
		}
	})
	s.stopRun()
	s.stopHard()
}

// Executions reports how many cells were actually simulated (cache hits
// and coalesced requests excluded) — the observable the singleflight and
// sustained-load tests assert on.
func (s *Service) Executions() int64 { return s.executions.Load() }

// ExecutedFingerprints snapshots the per-fingerprint local execution
// counts — the chaos tests' precise observable for "failover re-ran only
// cells the dead node had not journaled as complete".
func (s *Service) ExecutedFingerprints() map[string]int {
	s.execMu.Lock()
	defer s.execMu.Unlock()
	out := make(map[string]int, len(s.execFPs))
	for k, v := range s.execFPs {
		out[k] = v
	}
	return out
}

// CacheStats reports content-addressed cache hits, misses, and requests
// coalesced by singleflight.
func (s *Service) CacheStats() (hits, misses, shared int64) {
	return s.met.cacheHits.Load(), s.met.cacheMisses.Load(), s.met.sfShared.Load()
}

// QueueDepth reports admitted-but-unfinished cells.
func (s *Service) QueueDepth() int { return int(s.pending.Load()) }

// QueueBound reports the admission limit (Options.QueueDepth) — the
// cluster's steal heuristic compares depth against it.
func (s *Service) QueueBound() int { return s.opts.QueueDepth }

// MetricsText renders the Prometheus exposition.
func (s *Service) MetricsText() string {
	var b strings.Builder
	s.met.Render(&b)
	return b.String()
}

// ---------------------------------------------------------------------
// Journal encoding.

// JobSpecRecord is the journaled form of an accepted batch. Exported so
// the cluster failover path can decode a dead peer's jobspec records and
// adopt its unfinished jobs.
type JobSpecRecord struct {
	ID    string     `json:"id"`
	Cells []CellSpec `json:"cells"`
}

// CellWire is the serialized form of one successful cell result — both
// the journaled cellres record and the peer-fill response payload. The
// checksum is hex text: it is a uint64 and JSON numbers cannot carry 64
// bits faithfully.
type CellWire struct {
	Bench    string           `json:"bench"`
	Result   *json.RawMessage `json:"result"`
	Checksum string           `json:"checksum"`
	Commits  int64            `json:"commits"`
	// Epoch is the cluster epoch the record was executed under; replay
	// keeps the newest-epoch record when duplicates interleave.
	Epoch uint64 `json:"epoch,omitempty"`
}

// Record decodes the wire form back into a cache record; nil if the
// payload is damaged or incomplete.
func (cw *CellWire) Record() *CachedResult {
	if cw.Result == nil {
		return nil
	}
	rec := &CachedResult{Bench: cw.Bench, Commits: cw.Commits, SourceEpoch: cw.Epoch}
	if err := json.Unmarshal(*cw.Result, &rec.Result); err != nil {
		return nil
	}
	sum, err := strconv.ParseUint(cw.Checksum, 16, 64)
	if err != nil {
		return nil
	}
	rec.Checksum = sum
	return rec
}

// WireFromRecord encodes a cache record for the journal or the peer
// protocol.
func WireFromRecord(rec *CachedResult) (*CellWire, error) {
	res, err := json.Marshal(rec.Result)
	if err != nil {
		return nil, err
	}
	raw := json.RawMessage(res)
	return &CellWire{
		Bench:    rec.Bench,
		Result:   &raw,
		Checksum: fmt.Sprintf("%016x", rec.Checksum),
		Commits:  rec.Commits,
		Epoch:    rec.SourceEpoch,
	}, nil
}

func (s *Service) journalCellResult(fp string, rec *CachedResult) {
	if s.jnl == nil {
		return
	}
	cw, err := WireFromRecord(rec)
	var data []byte
	if err == nil {
		data, err = json.Marshal(cw)
	}
	if err == nil {
		err = s.jnl.Append(KeyCell+fp, data)
	}
	if err != nil {
		s.opts.Logf("service: journal cell %s: %v", fp, err)
	}
}

func (s *Service) journalJobSpec(j *Job) {
	if s.jnl == nil {
		return
	}
	data, err := json.Marshal(&JobSpecRecord{ID: j.id, Cells: j.cells})
	if err == nil {
		err = s.jnl.Append(KeyJobSpec+j.id, data)
	}
	if err != nil {
		s.opts.Logf("service: journal %s spec: %v", j.id, err)
	}
}

func (s *Service) journalJobDone(st *JobStatus) {
	if s.jnl == nil {
		return
	}
	data, err := json.Marshal(st)
	if err == nil {
		err = s.jnl.Append(KeyJobDone+st.ID, data)
	}
	if err != nil {
		s.opts.Logf("service: journal %s done: %v", st.ID, err)
	}
}

// AppendJournal durably records an arbitrary cluster-level key/value
// entry (ownership and epoch records) in the node's journal. With no
// journal attached it is a no-op.
func (s *Service) AppendJournal(key string, v any) error {
	if s.jnl == nil {
		return nil
	}
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return s.jnl.Append(key, data)
}
