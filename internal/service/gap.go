package service

import (
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"macroop/internal/config"
	"macroop/internal/experiments"
	"macroop/internal/optsched"
	"macroop/internal/workload"
)

// maxGapNodeBudget caps a request's per-window branch-and-bound node
// budget, the gap analogue of Options.MaxInsts: a client cannot pin a
// worker on one window indefinitely.
const maxGapNodeBudget = 10_000_000

// gapCacheEntries bounds the in-memory gap-report cache. Gap reports are
// few and small (one per distinct spec, kilobytes each), so a small LRU
// is plenty.
const gapCacheEntries = 64

// GapRequest is a heuristic-vs-optimum gap analysis (POST /v1/gap):
// extract instruction windows from the named benchmarks under the given
// machine configuration, replay every scheduling heuristic over them,
// and solve each window exactly with the branch-and-bound oracle.
type GapRequest struct {
	// Benchmarks to analyze; empty means the full 12-benchmark suite.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Config is the machine configuration supplying the window model's
	// latencies and issue resources (the scheduler choice is irrelevant —
	// the gap pipeline replays all heuristics — but the spec must still
	// validate).
	Config ConfigSpec `json:"config"`
	// Window is the uop window size (default 32, clamped to [4,64]).
	Window int `json:"window,omitempty"`
	// Stride is the start-to-start distance between windows (default:
	// Window, i.e. non-overlapping).
	Stride int `json:"stride,omitempty"`
	// MaxWindows caps extracted windows per benchmark (default 8).
	MaxWindows int `json:"max_windows,omitempty"`
	// NodeBudget bounds the exact solver's search per window; past it the
	// result degrades to a certified bound (default 200k nodes).
	NodeBudget int64 `json:"node_budget,omitempty"`
}

// GapResponse wraps the report with its cache provenance, mirroring
// CellResult's Cached/Shared flags.
type GapResponse struct {
	// Fingerprint is the report's content identity: the cache and journal
	// key covering benchmarks, machine, and spec.
	Fingerprint string `json:"fingerprint"`
	// Cached reports a cache (or journal-warmed) hit; Shared, a request
	// coalesced into an identical in-flight analysis.
	Cached bool                   `json:"cached"`
	Shared bool                   `json:"shared,omitempty"`
	WallMS float64                `json:"wall_ms"`
	Report *experiments.GapReport `json:"report"`
}

// resolvedGap is a validated gap request plus its content fingerprint.
type resolvedGap struct {
	benches []string
	m       config.Machine
	spec    optsched.GapSpec
	fp      string
}

// resolveGap validates the request and computes its fingerprint.
func (s *Service) resolveGap(req GapRequest) (resolvedGap, error) {
	benches := req.Benchmarks
	if len(benches) == 0 {
		benches = workload.Names()
	}
	for _, b := range benches {
		if _, err := workload.ByName(b); err != nil {
			return resolvedGap{}, err
		}
	}
	m, err := req.Config.Machine()
	if err != nil {
		return resolvedGap{}, err
	}
	if req.NodeBudget > maxGapNodeBudget {
		return resolvedGap{}, fmt.Errorf("node_budget %d exceeds the server limit %d", req.NodeBudget, maxGapNodeBudget)
	}
	spec := optsched.GapSpec{
		Window:     req.Window,
		Stride:     req.Stride,
		MaxWindows: req.MaxWindows,
		NodeBudget: req.NodeBudget,
	}.WithDefaults()
	return resolvedGap{
		benches: benches,
		m:       m,
		spec:    spec,
		fp:      experiments.GapFingerprint(benches, m, spec),
	}, nil
}

// Gap runs (or serves from cache) one gap analysis. It shares the
// service's admission control — a gap run occupies one queue slot, so a
// saturated or draining server rejects with the usual 503 family — and
// the same cache/singleflight/journal discipline as cells: identical
// concurrent requests coalesce into one run, and a journaled report
// survives restarts as a warm cache entry.
func (s *Service) Gap(ctx context.Context, req GapRequest) (*GapResponse, error) {
	rg, err := s.resolveGap(req)
	if err != nil {
		return nil, err
	}
	s.met.gapRequests.Add(1)
	start := time.Now()
	resp := &GapResponse{Fingerprint: rg.fp}
	if rep, ok := s.gaps.Get(rg.fp); ok {
		s.met.gapHits.Add(1)
		resp.Cached = true
		resp.Report = rep
		resp.WallMS = float64(time.Since(start).Microseconds()) / 1e3
		return resp, nil
	}
	if err := s.admit(1); err != nil {
		return nil, err
	}
	defer s.pending.Add(-1)
	var ran bool
	rep, shared, err := s.gapFlights.Do(rg.fp, func() (*experiments.GapReport, error) {
		if rep, ok := s.gaps.Get(rg.fp); ok {
			return rep, nil // lost the lookup/insert race: still a hit
		}
		// The run is bounded by the cell timeout and aborted by Close's
		// hard cancel, but deliberately not by the caller's disconnect:
		// like a cell, an abandoned gap run completes and warms the cache.
		gctx, cancel := context.WithTimeout(s.hardCtx, s.opts.CellTimeout)
		defer cancel()
		ran = true
		s.met.gapRuns.Add(1)
		rep, err := s.runner.Gap(gctx, rg.benches, rg.m, rg.spec)
		if err != nil {
			return nil, err
		}
		s.gaps.Put(rg.fp, rep)
		s.journalGap(rg.fp, rep)
		return rep, nil
	})
	if err != nil {
		return nil, err
	}
	switch {
	case shared:
		s.met.gapShared.Add(1)
		resp.Shared = true
	case !ran:
		s.met.gapHits.Add(1)
		resp.Cached = true
	}
	resp.Report = rep
	resp.WallMS = float64(time.Since(start).Microseconds()) / 1e3
	return resp, nil
}

// GapStats reports gap-endpoint cache behaviour (requests, cache hits,
// fresh runs, coalesced requests) — the observable the cache-hit and
// singleflight tests assert on.
func (s *Service) GapStats() (requests, hits, runs, shared int64) {
	return s.met.gapRequests.Load(), s.met.gapHits.Load(), s.met.gapRuns.Load(), s.met.gapShared.Load()
}

func (s *Service) handleGap(w http.ResponseWriter, r *http.Request) {
	var req GapRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	resp, err := s.Gap(r.Context(), req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// journalGap durably records a finished gap report under its
// fingerprint; a restarted service warms its gap cache from these.
func (s *Service) journalGap(fp string, rep *experiments.GapReport) {
	if s.jnl == nil {
		return
	}
	data, err := json.Marshal(rep)
	if err == nil {
		err = s.jnl.Append(KeyGap+fp, data)
	}
	if err != nil {
		s.opts.Logf("service: journal gap %s: %v", fp, err)
	}
}

// ---------------------------------------------------------------------
// Gap cache and singleflight. The cell-result cache and flight group are
// typed to *CachedResult (the cluster protocol moves those records
// between nodes), so gap reports get their own small, self-contained
// pair under the same discipline.

// gapCache is a bounded LRU of gap reports keyed by fingerprint.
type gapCache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	lru *list.List // front = most recently used
}

type gapEntry struct {
	key string
	rep *experiments.GapReport
}

func newGapCache(capacity int) *gapCache {
	if capacity <= 0 {
		capacity = gapCacheEntries
	}
	return &gapCache{cap: capacity, m: make(map[string]*list.Element), lru: list.New()}
}

func (c *gapCache) Get(fp string) (*experiments.GapReport, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[fp]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(e)
	return e.Value.(*gapEntry).rep, true
}

func (c *gapCache) Put(fp string, rep *experiments.GapReport) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[fp]; ok {
		e.Value.(*gapEntry).rep = rep
		c.lru.MoveToFront(e)
		return
	}
	c.m[fp] = c.lru.PushFront(&gapEntry{key: fp, rep: rep})
	for c.lru.Len() > c.cap {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.m, tail.Value.(*gapEntry).key)
	}
}

// gapFlight coalesces concurrent identical gap runs, mirroring
// flightGroup for the gap report type.
type gapFlight struct {
	mu sync.Mutex
	m  map[string]*gapCall
}

type gapCall struct {
	done chan struct{}
	rep  *experiments.GapReport
	err  error
}

func newGapFlight() *gapFlight { return &gapFlight{m: make(map[string]*gapCall)} }

func (g *gapFlight) Do(key string, fn func() (*experiments.GapReport, error)) (rep *experiments.GapReport, shared bool, err error) {
	g.mu.Lock()
	if call, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-call.done
		return call.rep, true, call.err
	}
	call := &gapCall{done: make(chan struct{})}
	g.m[key] = call
	g.mu.Unlock()

	call.rep, call.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(call.done)
	return call.rep, false, call.err
}
