package service

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// latencyBuckets are the per-cell wall-clock histogram bounds in seconds.
// Cells span ~1ms cache-warm smoke budgets to minutes-long full sweeps.
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// histogram is a fixed-bucket latency histogram (one per scheduler
// model). Prometheus buckets are cumulative; counts here are per-bucket
// and accumulated at render time.
type histogram struct {
	counts []atomic.Int64 // len(latencyBuckets)+1, last = +Inf
	sum    atomic.Int64   // microseconds, to stay integral under atomics
	n      atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(seconds float64) {
	i := sort.SearchFloat64s(latencyBuckets, seconds)
	h.counts[i].Add(1)
	h.sum.Add(int64(seconds * 1e6))
	h.n.Add(1)
}

// metrics is the service's live instrumentation, rendered in Prometheus
// text exposition format by Render. Everything is atomics or small
// mutexed maps: recording on the worker hot path never blocks on I/O.
type metrics struct {
	queueDepth  func() int
	workers     int
	workersBusy atomic.Int64

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	sfShared    atomic.Int64

	jobsAccepted  atomic.Int64
	jobsCompleted atomic.Int64
	jobsFailed    atomic.Int64
	jobsRejected  atomic.Int64
	jobsResumed   atomic.Int64

	cellsOK     atomic.Int64
	cellsFailed atomic.Int64

	gapRequests atomic.Int64
	gapHits     atomic.Int64
	gapRuns     atomic.Int64
	gapShared   atomic.Int64

	uops atomic.Int64 // committed simulated instructions

	mu    sync.Mutex
	hists map[string]*histogram // by scheduler model name
}

func newMetrics(queueDepth func() int, workers int) *metrics {
	return &metrics{queueDepth: queueDepth, workers: workers, hists: make(map[string]*histogram)}
}

// observeCell records one executed (non-cached) cell's latency and
// throughput under its scheduler model label.
func (m *metrics) observeCell(sched string, seconds float64, committed int64) {
	m.mu.Lock()
	h := m.hists[sched]
	if h == nil {
		h = newHistogram()
		m.hists[sched] = h
	}
	m.mu.Unlock()
	h.observe(seconds)
	m.uops.Add(committed)
}

// avgCellSeconds reports the mean executed-cell latency across every
// scheduler model; 0 with no samples. The drain-ETA estimate uses it.
func (m *metrics) avgCellSeconds() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum, n int64
	for _, h := range m.hists {
		sum += h.sum.Load()
		n += h.n.Load()
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / 1e6 / float64(n)
}

// Render writes the Prometheus text exposition. Families render in a
// fixed order and label sets sort, so output is deterministic and
// greppable by the CI smoke.
func (m *metrics) Render(w *strings.Builder) {
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	gauge("mopserve_queue_depth", "Cells admitted but not yet finished.", int64(m.queueDepth()))
	gauge("mopserve_workers", "Size of the worker pool.", int64(m.workers))
	gauge("mopserve_workers_busy", "Workers currently executing or awaiting a cell.", m.workersBusy.Load())

	counter := func(name, help string, series ...[2]any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, s := range series {
			fmt.Fprintf(w, "%s%s %d\n", name, s[0], s[1])
		}
	}
	counter("mopserve_cache_hits_total", "Cell requests served from the content-addressed result cache.",
		[2]any{"", m.cacheHits.Load()})
	counter("mopserve_cache_misses_total", "Cell requests that required a simulation.",
		[2]any{"", m.cacheMisses.Load()})
	counter("mopserve_singleflight_shared_total", "Cell requests coalesced into an identical in-flight execution.",
		[2]any{"", m.sfShared.Load()})
	counter("mopserve_jobs_total", "Jobs by terminal or admission state.",
		[2]any{`{state="accepted"}`, m.jobsAccepted.Load()},
		[2]any{`{state="completed"}`, m.jobsCompleted.Load()},
		[2]any{`{state="failed"}`, m.jobsFailed.Load()},
		[2]any{`{state="rejected"}`, m.jobsRejected.Load()},
		[2]any{`{state="resumed"}`, m.jobsResumed.Load()})
	counter("mopserve_cells_total", "Finished cells by outcome (cached hits count as ok).",
		[2]any{`{outcome="ok"}`, m.cellsOK.Load()},
		[2]any{`{outcome="failed"}`, m.cellsFailed.Load()})
	counter("mopserve_uops_total", "Committed simulated instructions (rate() of this is uops/sec).",
		[2]any{"", m.uops.Load()})
	counter("mopserve_gap_total", "Gap-report requests by how they resolved.",
		[2]any{`{state="requested"}`, m.gapRequests.Load()},
		[2]any{`{state="cache_hit"}`, m.gapHits.Load()},
		[2]any{`{state="executed"}`, m.gapRuns.Load()},
		[2]any{`{state="shared"}`, m.gapShared.Load()})

	m.mu.Lock()
	scheds := make([]string, 0, len(m.hists))
	for s := range m.hists {
		scheds = append(scheds, s)
	}
	sort.Strings(scheds)
	hists := make([]*histogram, len(scheds))
	for i, s := range scheds {
		hists[i] = m.hists[s]
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP mopserve_cell_seconds Wall-clock latency of executed (non-cached) cells.\n# TYPE mopserve_cell_seconds histogram\n")
	for i, s := range scheds {
		h := hists[i]
		cum := int64(0)
		for bi, bound := range latencyBuckets {
			cum += h.counts[bi].Load()
			fmt.Fprintf(w, "mopserve_cell_seconds_bucket{sched=%q,le=%q} %d\n", s, trimFloat(bound), cum)
		}
		cum += h.counts[len(latencyBuckets)].Load()
		fmt.Fprintf(w, "mopserve_cell_seconds_bucket{sched=%q,le=\"+Inf\"} %d\n", s, cum)
		fmt.Fprintf(w, "mopserve_cell_seconds_sum{sched=%q} %g\n", s, float64(h.sum.Load())/1e6)
		fmt.Fprintf(w, "mopserve_cell_seconds_count{sched=%q} %d\n", s, h.n.Load())
	}
}

// trimFloat renders a bucket bound the way Prometheus clients do
// (no trailing zeros: 0.25, 1, 30).
func trimFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", f), "0"), ".")
}
