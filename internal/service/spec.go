// Package service turns the simulator into a long-running system: a
// bounded job queue with admission control, a worker pool executing
// simulation cells under the lockstep differential oracle, a
// content-addressed result cache with singleflight deduplication, live
// Prometheus-format metrics, and journal-backed graceful drain/resume.
// cmd/mopserve exposes it over HTTP; cmd/mopctl is the matching client.
//
// The unit of work is a cell — one (benchmark, machine configuration,
// instruction budget) simulation, the same unit experiments.RunMatrix
// sweeps over. A cell's identity is its content fingerprint
// (experiments.CellFingerprint): two requests that describe the same
// simulation hash to the same cell no matter how they spell it, which is
// what makes the cache content-addressed and lets overlapping matrix
// sweeps from different clients share executions.
package service

import (
	"fmt"
	"sort"
	"strings"

	"macroop/internal/config"
	"macroop/internal/experiments"
	"macroop/internal/workload"
)

// ConfigSpec is the wire form of a machine configuration: a scheduler
// model plus the knobs the CLIs expose. Absent optional fields take the
// paper's Table 1 defaults, so {"sched":"base"} is a complete spec.
type ConfigSpec struct {
	// Sched selects the scheduling logic: base, 2cycle, mop, sf-squash,
	// or sf-scoreboard (the cmd/mopsim names).
	Sched string `json:"sched"`
	// Wakeup selects the MOP wakeup array style: "2src" or "wired-or"
	// (mop only; default wired-or).
	Wakeup string `json:"wakeup,omitempty"`
	// IQ is the issue queue size; nil defaults to 32, 0 is unrestricted.
	IQ *int `json:"iq,omitempty"`
	// Stages is the number of extra MOP formation stages (default 1).
	Stages *int `json:"stages,omitempty"`
	// DetectDelay is the MOP detection delay in cycles (default 3).
	DetectDelay *int `json:"detect_delay,omitempty"`
	// NoIndep disables independent-MOP grouping.
	NoIndep bool `json:"no_indep,omitempty"`
	// NoFilter disables the last-arriving operand filter.
	NoFilter bool `json:"no_filter,omitempty"`
	// Watchdog overrides the forward-progress watchdog window in cycles
	// (0 selects the default, negative disables it).
	Watchdog *int `json:"watchdog_cycles,omitempty"`
}

// Machine resolves the spec into a validated machine configuration.
func (c ConfigSpec) Machine() (config.Machine, error) {
	m := config.Default()
	if c.IQ != nil {
		m = m.WithIQ(*c.IQ)
	}
	if c.Watchdog != nil {
		m = m.WithWatchdog(*c.Watchdog)
	}
	switch c.Sched {
	case "base", "":
		m = m.WithSched(config.SchedBase)
	case "2cycle":
		m = m.WithSched(config.SchedTwoCycle)
	case "mop":
		mc := config.DefaultMOP()
		if c.Stages != nil {
			mc.ExtraFormationStages = *c.Stages
		}
		if c.DetectDelay != nil {
			mc.DetectionDelay = *c.DetectDelay
		}
		mc.GroupIndependent = !c.NoIndep
		mc.LastArrivingFilter = !c.NoFilter
		switch c.Wakeup {
		case "2src":
			mc.Wakeup = config.WakeupCAM2Src
		case "wired-or", "":
			mc.Wakeup = config.WakeupWiredOR
		default:
			return m, fmt.Errorf("unknown wakeup style %q (want 2src or wired-or)", c.Wakeup)
		}
		m = m.WithMOP(mc)
	case "sf-squash":
		m = m.WithSched(config.SchedSelectFreeSquashDep)
	case "sf-scoreboard":
		m = m.WithSched(config.SchedSelectFreeScoreboard)
	default:
		return m, fmt.Errorf("unknown scheduler %q (want base, 2cycle, mop, sf-squash or sf-scoreboard)", c.Sched)
	}
	if c.Sched != "mop" && (c.Wakeup != "" || c.Stages != nil || c.DetectDelay != nil || c.NoIndep || c.NoFilter) {
		return m, fmt.Errorf("wakeup/stages/detect_delay/no_indep/no_filter only apply to sched %q", "mop")
	}
	return m, m.Validate()
}

// SimRequest is one single-cell simulation request (POST /v1/simulate).
type SimRequest struct {
	Benchmark string     `json:"benchmark"`
	Config    ConfigSpec `json:"config"`
	// MaxInsts is the committed-instruction budget; 0 takes the server's
	// default. The server caps it at Options.MaxInsts.
	MaxInsts int64 `json:"max_insts,omitempty"`
}

// MatrixRequest is a batched sweep (POST /v1/matrix): every benchmark
// under every named configuration, the experiments.RunMatrix shape.
type MatrixRequest struct {
	// Benchmarks to sweep; empty means the full 12-benchmark suite.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Configs maps display names to machine specs.
	Configs map[string]ConfigSpec `json:"configs"`
	// MaxInsts is the per-cell instruction budget (0 = server default).
	MaxInsts int64 `json:"max_insts,omitempty"`
}

// CellSpec is one fully resolved unit of work: the journaled form a
// batch decomposes into.
type CellSpec struct {
	Bench string     `json:"bench"`
	Name  string     `json:"name"` // display/config name within the batch
	Spec  ConfigSpec `json:"spec"`
	Insts int64      `json:"insts"`
}

// resolvedCell pairs a CellSpec with its validated machine and content
// fingerprint.
type resolvedCell struct {
	CellSpec
	m  config.Machine
	fp string
	// noFill marks a cell that must resolve on this node (a peer-fill
	// request being served): the peer-fill hook is skipped so fills never
	// chain node-to-node.
	noFill bool
}

// Fingerprint validates the cell and returns its content fingerprint —
// the cluster routing key (consistent hashing maps it onto an owning
// shard).
func (c CellSpec) Fingerprint() (string, error) {
	rc, err := c.resolve()
	if err != nil {
		return "", err
	}
	return rc.fp, nil
}

// resolve validates the cell and computes its content fingerprint. The
// fingerprint covers the full machine configuration, benchmark and
// budget — the same identity experiments journals under — with the
// differential oracle always attached (check=true).
func (c CellSpec) resolve() (resolvedCell, error) {
	if _, err := workload.ByName(c.Bench); err != nil {
		return resolvedCell{}, err
	}
	m, err := c.Spec.Machine()
	if err != nil {
		return resolvedCell{}, fmt.Errorf("config %s: %w", c.Name, err)
	}
	if c.Insts <= 0 {
		return resolvedCell{}, fmt.Errorf("cell %s/%s: non-positive instruction budget", c.Bench, c.Name)
	}
	return resolvedCell{
		CellSpec: c,
		m:        m,
		fp:       experiments.CellFingerprint(c.Bench, m, c.Insts, true),
	}, nil
}

// cells expands the matrix request into resolved cells, grouped by
// benchmark so consecutive cells share one generated program (the
// runner's per-benchmark program future): a sweep's cells for gzip all
// dispatch together, then mcf's, and so on. Within a benchmark, cells
// order by config name for determinism.
func (r *MatrixRequest) cells(defaultInsts, maxInsts int64) ([]resolvedCell, error) {
	if len(r.Configs) == 0 {
		return nil, fmt.Errorf("matrix: no configs")
	}
	benches := r.Benchmarks
	if len(benches) == 0 {
		benches = workload.Names()
	}
	insts := r.MaxInsts
	if insts <= 0 {
		insts = defaultInsts
	}
	if insts > maxInsts {
		return nil, fmt.Errorf("matrix: max_insts %d exceeds the server limit %d", insts, maxInsts)
	}
	names := make([]string, 0, len(r.Configs))
	for name := range r.Configs {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]resolvedCell, 0, len(benches)*len(names))
	for _, b := range benches {
		for _, name := range names {
			rc, err := CellSpec{Bench: b, Name: name, Spec: r.Configs[name], Insts: insts}.resolve()
			if err != nil {
				return nil, fmt.Errorf("matrix: %w", err)
			}
			out = append(out, rc)
		}
	}
	return out, nil
}

// benchList renders the benchmark list for error messages.
func benchList() string { return strings.Join(workload.Names(), ", ") }
