package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return v
}

func TestHTTPSimulateAndCache(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := SimRequest{Benchmark: "gzip", Config: ConfigSpec{Sched: "mop"}, MaxInsts: testInsts}
	resp := postJSON(t, ts.URL+"/v1/simulate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold simulate status %d", resp.StatusCode)
	}
	cold := decodeBody[CellResult](t, resp)
	if cold.Checksum == "" || cold.Cached {
		t.Fatalf("cold result = %+v, want checksum and cached=false", cold)
	}

	resp = postJSON(t, ts.URL+"/v1/simulate", req)
	warm := decodeBody[CellResult](t, resp)
	if !warm.Cached || warm.Checksum != cold.Checksum {
		t.Fatalf("warm result cached=%v checksum=%s, want cache hit with checksum %s",
			warm.Cached, warm.Checksum, cold.Checksum)
	}
}

func TestHTTPValidationAndErrorMapping(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Unknown benchmark: 400 with a useful message.
	resp := postJSON(t, ts.URL+"/v1/simulate", SimRequest{Benchmark: "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown benchmark status %d, want 400", resp.StatusCode)
	}
	eb := decodeBody[errorBody](t, resp)
	if eb.Error == "" {
		t.Error("400 body has no error message")
	}

	// Malformed JSON: 400.
	r2, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status %d, want 400", r2.StatusCode)
	}

	// Typed simulation failure: 500 with kind and repro fingerprint.
	wd := 1
	resp = postJSON(t, ts.URL+"/v1/simulate", SimRequest{
		Benchmark: "gzip", Config: ConfigSpec{Sched: "base", Watchdog: &wd}, MaxInsts: testInsts,
	})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("deadlock status %d, want 500", resp.StatusCode)
	}
	eb = decodeBody[errorBody](t, resp)
	if eb.Kind != "deadlock" || eb.ReproFingerprint == "" {
		t.Errorf("deadlock body = %+v, want kind=deadlock with repro fingerprint", eb)
	}

	// Unknown job: 404.
	r3, err := http.Get(ts.URL + "/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status %d, want 404", r3.StatusCode)
	}
}

func TestHTTPMatrixWaitAsyncAndStream(t *testing.T) {
	s := newTestService(t, Options{Workers: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	mat := map[string]any{
		"benchmarks": []string{"gzip"},
		"configs":    map[string]ConfigSpec{"base": {Sched: "base"}, "mop": {Sched: "mop"}},
		"max_insts":  testInsts,
	}

	// wait mode: a single blocking response with full results.
	waitReq := map[string]any{"wait": true}
	for k, v := range mat {
		waitReq[k] = v
	}
	resp := postJSON(t, ts.URL+"/v1/matrix", waitReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait matrix status %d", resp.StatusCode)
	}
	st := decodeBody[JobStatus](t, resp)
	if st.State != JobDone || len(st.Results) != 2 || st.Failed != 0 {
		t.Fatalf("wait matrix status %+v, want done with 2 results", st)
	}

	// async mode: 202 now, poll GET /v1/jobs/{id} to completion.
	resp = postJSON(t, ts.URL+"/v1/matrix", mat)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async matrix status %d, want 202", resp.StatusCode)
	}
	acc := decodeBody[JobStatus](t, resp)
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/jobs/" + acc.ID)
		if err != nil {
			t.Fatal(err)
		}
		got := decodeBody[JobStatus](t, r)
		if got.State == JobDone {
			if got.CacheHits == 0 {
				t.Error("repeat matrix reported no cache hits")
			}
			break
		}
		if got.State == JobFailed || time.Now().After(deadline) {
			t.Fatalf("job %s state %s", acc.ID, got.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// jobs listing knows the job.
	r, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	listing := decodeBody[[]JobStatus](t, r)
	found := false
	for _, js := range listing {
		found = found || js.ID == acc.ID
	}
	if !found {
		t.Errorf("GET /v1/jobs does not list %s", acc.ID)
	}

	// stream mode: one NDJSON line per cell, then a terminal status line.
	streamReq := map[string]any{"stream": true}
	for k, v := range mat {
		streamReq[k] = v
	}
	resp = postJSON(t, ts.URL+"/v1/matrix", streamReq)
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type %q", ct)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if len(lines) != 3 {
		t.Fatalf("stream lines = %d, want 2 cells + 1 status", len(lines))
	}
	var last JobStatus
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("terminal stream line: %v", err)
	}
	if last.State != JobDone {
		t.Errorf("terminal stream state %s, want done", last.State)
	}
}

func TestHTTPMetricsAndHealth(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Generate one miss and one hit so the counters are non-trivial.
	req := SimRequest{Benchmark: "gzip", Config: ConfigSpec{Sched: "base"}, MaxInsts: testInsts}
	postJSON(t, ts.URL+"/v1/simulate", req).Body.Close()
	postJSON(t, ts.URL+"/v1/simulate", req).Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		"mopserve_queue_depth 0",
		"mopserve_cache_hits_total 1",
		"mopserve_cache_misses_total 1",
		`mopserve_jobs_total{state="failed"} 0`,
		`mopserve_cells_total{outcome="ok"} 2`,
		"mopserve_uops_total",
		"mopserve_cell_seconds_bucket",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d, want 200", hz.StatusCode)
	}

	// Drain flips healthz to 503 and rejects new work with Retry-After.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	hz, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz status %d, want 503", hz.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/simulate", req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining simulate status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 without Retry-After header")
	}
}

func TestHTTPQueueFullRetryAfter(t *testing.T) {
	// No Start: the queue never drains, so the second matrix is rejected.
	s, err := New(Options{Workers: 1, QueueDepth: 2, DefaultInsts: testInsts, RetryAfter: 3 * time.Second, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	mat := map[string]any{
		"benchmarks": []string{"gzip"},
		"configs":    map[string]ConfigSpec{"base": {Sched: "base"}, "mop": {Sched: "mop"}},
		"max_insts":  testInsts,
	}
	resp := postJSON(t, ts.URL+"/v1/matrix", mat)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first matrix status %d, want 202", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/matrix", mat)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity matrix status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want 3", got)
	}
	eb := decodeBody[errorBody](t, resp)
	if !strings.Contains(eb.Error, "queue full") {
		t.Errorf("error body %q does not name the queue", eb.Error)
	}
}
