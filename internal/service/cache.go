package service

import (
	"container/list"
	"sync"

	"macroop/internal/core"
)

// cellRecord is one cached (and journaled) successful cell outcome: the
// timing result plus the differential oracle's summary. The checksum is
// the cache's self-verification handle — identical to what a direct
// macroop.SimulateChecked of the same cell reports, which is what the
// sustained-load test and the CI smoke assert.
type cellRecord struct {
	Bench    string
	Result   *core.Result
	Checksum uint64
	Commits  int64
}

// resultCache is a bounded LRU of cell outcomes keyed by content
// fingerprint. It is safe for concurrent use by the worker pool.
type resultCache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	lru *list.List // front = most recently used
}

type cacheEntry struct {
	key string
	rec *cellRecord
}

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		capacity = 4096
	}
	return &resultCache{cap: capacity, m: make(map[string]*list.Element), lru: list.New()}
}

// Get returns the cached record for the fingerprint, refreshing its LRU
// position.
func (c *resultCache) Get(fp string) (*cellRecord, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[fp]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(e)
	return e.Value.(*cacheEntry).rec, true
}

// Put inserts (or refreshes) a record, evicting the least recently used
// entry beyond capacity.
func (c *resultCache) Put(fp string, rec *cellRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[fp]; ok {
		e.Value.(*cacheEntry).rec = rec
		c.lru.MoveToFront(e)
		return
	}
	c.m[fp] = c.lru.PushFront(&cacheEntry{key: fp, rec: rec})
	for c.lru.Len() > c.cap {
		tail := c.lru.Back()
		c.lru.Remove(tail)
		delete(c.m, tail.Value.(*cacheEntry).key)
	}
}

// Len reports the number of cached cells.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// flightGroup is a minimal singleflight: concurrent Do calls with the
// same key share one execution of fn. Unlike a cache it holds only
// in-flight calls — completed keys are immediately forgotten (the result
// cache is the durable layer above it).
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	rec  *cellRecord
	err  error
}

func newFlightGroup() *flightGroup { return &flightGroup{m: make(map[string]*flightCall)} }

// Do executes fn once per key among concurrent callers. shared reports
// whether this caller joined an execution another caller started.
func (g *flightGroup) Do(key string, fn func() (*cellRecord, error)) (rec *cellRecord, shared bool, err error) {
	g.mu.Lock()
	if call, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-call.done
		return call.rec, true, call.err
	}
	call := &flightCall{done: make(chan struct{})}
	g.m[key] = call
	g.mu.Unlock()

	call.rec, call.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(call.done)
	return call.rec, false, call.err
}
