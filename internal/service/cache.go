package service

import (
	"container/list"
	"sync"
	"unsafe"

	"macroop/internal/core"
)

// CachedResult is one cached (and journaled) successful cell outcome: the
// timing result plus the differential oracle's summary. The checksum is
// the cache's self-verification handle — identical to what a direct
// macroop.SimulateChecked of the same cell reports, which is what the
// sustained-load test and the CI smoke assert. It is exported because the
// cluster layer (internal/cluster) moves these records between nodes:
// peer cache-fill responses and failover journal adoption both carry
// exactly this value.
type CachedResult struct {
	Bench    string
	Result   *core.Result
	Checksum uint64
	Commits  int64
	// SourceEpoch is the cluster epoch under which the record was first
	// executed (0 when unclustered). Replicated records carry it so a
	// replay that finds the same cell journaled from two epochs keeps the
	// newest-epoch one deterministically.
	SourceEpoch uint64
}

// approxBytes estimates the record's memory footprint for the cache's
// byte quota: the strings it owns plus the fixed-size structs.
func (r *CachedResult) approxBytes(fp string) int {
	n := len(fp) + len(r.Bench) + int(unsafe.Sizeof(*r)) + int(unsafe.Sizeof(cacheEntry{}))
	if r.Result != nil {
		n += int(unsafe.Sizeof(*r.Result)) + len(r.Result.Benchmark) + len(r.Result.ReproFingerprint)
	}
	return n
}

// resultCache is a bounded LRU of cell outcomes keyed by content
// fingerprint, limited both by entry count and (when maxBytes > 0) by an
// approximate byte quota. It is safe for concurrent use by the worker
// pool.
type resultCache struct {
	mu       sync.Mutex
	cap      int
	maxBytes int64
	bytes    int64
	m        map[string]*list.Element
	lru      *list.List // front = most recently used
}

type cacheEntry struct {
	key   string
	rec   *CachedResult
	bytes int64
}

func newResultCache(capacity int, maxBytes int64) *resultCache {
	if capacity <= 0 {
		capacity = 4096
	}
	return &resultCache{cap: capacity, maxBytes: maxBytes, m: make(map[string]*list.Element), lru: list.New()}
}

// Get returns the cached record for the fingerprint, refreshing its LRU
// position.
func (c *resultCache) Get(fp string) (*CachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[fp]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(e)
	return e.Value.(*cacheEntry).rec, true
}

// Put inserts (or refreshes) a record, evicting least recently used
// entries until both the entry bound and the byte quota hold.
func (c *resultCache) Put(fp string, rec *CachedResult) {
	size := int64(rec.approxBytes(fp))
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[fp]; ok {
		ent := e.Value.(*cacheEntry)
		c.bytes += size - ent.bytes
		ent.rec, ent.bytes = rec, size
		c.lru.MoveToFront(e)
	} else {
		c.m[fp] = c.lru.PushFront(&cacheEntry{key: fp, rec: rec, bytes: size})
		c.bytes += size
	}
	for c.lru.Len() > c.cap || (c.maxBytes > 0 && c.bytes > c.maxBytes && c.lru.Len() > 1) {
		tail := c.lru.Back()
		ent := tail.Value.(*cacheEntry)
		c.lru.Remove(tail)
		delete(c.m, ent.key)
		c.bytes -= ent.bytes
	}
}

// Keys snapshots every cached fingerprint (unordered). The anti-entropy
// pass digests these to offer records to replica peers.
func (c *resultCache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.m))
	for k := range c.m {
		out = append(out, k)
	}
	return out
}

// Len reports the number of cached cells.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Bytes reports the cache's approximate resident size.
func (c *resultCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// flightGroup is a minimal singleflight: concurrent Do calls with the
// same key share one execution of fn. Unlike a cache it holds only
// in-flight calls — completed keys are immediately forgotten (the result
// cache is the durable layer above it).
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	rec  *CachedResult
	err  error
}

func newFlightGroup() *flightGroup { return &flightGroup{m: make(map[string]*flightCall)} }

// Do executes fn once per key among concurrent callers. shared reports
// whether this caller joined an execution another caller started.
func (g *flightGroup) Do(key string, fn func() (*CachedResult, error)) (rec *CachedResult, shared bool, err error) {
	g.mu.Lock()
	if call, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-call.done
		return call.rec, true, call.err
	}
	call := &flightCall{done: make(chan struct{})}
	g.m[key] = call
	g.mu.Unlock()

	call.rec, call.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(call.done)
	return call.rec, false, call.err
}
