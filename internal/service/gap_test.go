package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// gapTestReq keeps gap runs tiny: one benchmark, two 8-uop windows, a
// small but ample node budget.
func gapTestReq() GapRequest {
	return GapRequest{
		Benchmarks: []string{"gzip"},
		Window:     8,
		MaxWindows: 2,
		NodeBudget: 20_000,
	}
}

// TestGapCacheHitOnRepeat: the first gap request runs the oracle, an
// identical repeat is served from the cache with the same fingerprint
// and report, and no second analysis executes.
func TestGapCacheHitOnRepeat(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	ctx := context.Background()

	cold, err := s.Gap(ctx, gapTestReq())
	if err != nil {
		t.Fatalf("cold gap: %v", err)
	}
	if cold.Cached || cold.Shared {
		t.Errorf("cold gap reported cached=%v shared=%v", cold.Cached, cold.Shared)
	}
	if cold.Report == nil || len(cold.Report.Benches) != 1 {
		t.Fatalf("cold gap report = %+v", cold.Report)
	}
	if v := cold.Report.Violations(); v != 0 {
		t.Fatalf("%d admissibility violations", v)
	}
	if cold.Report.Benches[0].Windows != 2 {
		t.Errorf("windows = %d, want 2", cold.Report.Benches[0].Windows)
	}

	warm, err := s.Gap(ctx, gapTestReq())
	if err != nil {
		t.Fatalf("warm gap: %v", err)
	}
	if !warm.Cached {
		t.Error("repeat gap request not served from cache")
	}
	if warm.Fingerprint != cold.Fingerprint {
		t.Errorf("fingerprint drifted: %s vs %s", warm.Fingerprint, cold.Fingerprint)
	}
	if warm.Report.Benches[0].OptCycles != cold.Report.Benches[0].OptCycles {
		t.Errorf("cached report diverges: %+v vs %+v", warm.Report.Benches[0], cold.Report.Benches[0])
	}
	if _, hits, runs, _ := s.GapStats(); runs != 1 || hits != 1 {
		t.Errorf("gap stats runs=%d hits=%d, want 1/1", runs, hits)
	}
	// A different spec is a different fingerprint, not a stale hit.
	other := gapTestReq()
	other.Window = 12
	o, err := s.Gap(ctx, other)
	if err != nil {
		t.Fatalf("other gap: %v", err)
	}
	if o.Cached || o.Fingerprint == cold.Fingerprint {
		t.Errorf("distinct spec served stale (cached=%v, fp %s vs %s)", o.Cached, o.Fingerprint, cold.Fingerprint)
	}
}

// TestGapSingleflight: concurrent identical gap requests coalesce into
// exactly one oracle run.
func TestGapSingleflight(t *testing.T) {
	s := newTestService(t, Options{Workers: 4})
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	fps := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Gap(context.Background(), gapTestReq())
			if err != nil {
				errs[i] = err
				return
			}
			fps[i] = resp.Fingerprint
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if fps[i] != fps[0] {
			t.Fatalf("caller %d fingerprint %s != %s", i, fps[i], fps[0])
		}
	}
	if _, hits, runs, shared := s.GapStats(); runs != 1 || hits+shared != n-1 {
		t.Errorf("gap stats runs=%d hits=%d shared=%d, want 1 run and %d coalesced-or-hit", runs, hits, shared, n-1)
	}
}

// TestGapValidation: malformed gap requests fail fast with plain errors
// (the 400 family) before admission.
func TestGapValidation(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	ctx := context.Background()
	cases := []struct {
		name string
		req  GapRequest
	}{
		{"unknown benchmark", GapRequest{Benchmarks: []string{"nope"}}},
		{"unknown scheduler", GapRequest{Benchmarks: []string{"gzip"}, Config: ConfigSpec{Sched: "warp"}}},
		{"budget over cap", func() GapRequest { r := gapTestReq(); r.NodeBudget = maxGapNodeBudget + 1; return r }()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := s.Gap(ctx, tc.req); err == nil {
				t.Fatal("expected a validation error")
			}
		})
	}
	if _, _, runs, _ := s.GapStats(); runs != 0 {
		t.Errorf("gap runs = %d after pure validation failures, want 0", runs)
	}
}

// TestGapDraining503 drives the HTTP surface: a draining server answers
// POST /v1/gap with 503 and a Retry-After hint — the signal mopctl's
// backoff loop keys on.
func TestGapDraining503(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	body, _ := json.Marshal(gapTestReq())
	resp, err := http.Post(srv.URL+"/v1/gap", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/gap: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without a Retry-After hint")
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e.Error, "draining") {
		t.Errorf("error body = %+v (%v), want a draining message", e, err)
	}
	if _, err := s.Gap(context.Background(), gapTestReq()); !errors.Is(err, ErrDraining) {
		t.Errorf("Gap during drain = %v, want ErrDraining", err)
	}
}

// TestGapHTTPRoundTrip: the full wire path — POST, JSON decode, report
// shape — matches the Service-level result.
func TestGapHTTPRoundTrip(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body, _ := json.Marshal(gapTestReq())
	resp, err := http.Post(srv.URL+"/v1/gap", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/gap: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var gr GapResponse
	if err := json.NewDecoder(resp.Body).Decode(&gr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if gr.Fingerprint == "" || gr.Report == nil || len(gr.Report.Benches) != 1 {
		t.Fatalf("wire response = %+v", gr)
	}
	b := gr.Report.Benches[0]
	if b.Bench != "gzip" || b.Violations != 0 || b.OptCycles <= 0 {
		t.Errorf("bench gap = %+v", b)
	}
	for h, cyc := range b.Heur {
		if cyc < b.OptCycles {
			t.Errorf("%s cycles %d below optimum %d", h, cyc, b.OptCycles)
		}
	}
}

// TestGapJournalWarmRestart: a journaled gap report survives a restart
// as a warm cache entry — the repeat on the new process is a hit with an
// identical report and zero fresh runs.
func TestGapJournalWarmRestart(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "gap.journal")

	s1, err := New(Options{Workers: 2, DefaultInsts: testInsts, JournalPath: jpath, Logf: t.Logf})
	if err != nil {
		t.Fatalf("New(1): %v", err)
	}
	s1.Start()
	cold, err := s1.Gap(context.Background(), gapTestReq())
	if err != nil {
		t.Fatalf("cold gap: %v", err)
	}
	if err := s1.Close(); err != nil {
		t.Fatalf("Close(1): %v", err)
	}

	s2, err := New(Options{Workers: 2, DefaultInsts: testInsts, JournalPath: jpath, Logf: t.Logf})
	if err != nil {
		t.Fatalf("New(2): %v", err)
	}
	s2.Start()
	defer s2.Close()
	warm, err := s2.Gap(context.Background(), gapTestReq())
	if err != nil {
		t.Fatalf("warm gap: %v", err)
	}
	if !warm.Cached {
		t.Error("journal-warmed gap report not served from cache")
	}
	if warm.Fingerprint != cold.Fingerprint {
		t.Errorf("fingerprint drifted across restart: %s vs %s", warm.Fingerprint, cold.Fingerprint)
	}
	cb, wb := cold.Report.Benches[0], warm.Report.Benches[0]
	if cb.OptCycles != wb.OptCycles || cb.Heur["base"] != wb.Heur["base"] || cb.Windows != wb.Windows {
		t.Errorf("warmed report diverges: %+v vs %+v", wb, cb)
	}
	if _, _, runs, _ := s2.GapStats(); runs != 0 {
		t.Errorf("restarted service ran %d gap analyses on a warmed cache, want 0", runs)
	}
}
