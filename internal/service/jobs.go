package service

import (
	"fmt"
	"sync"
	"time"

	"macroop/internal/core"
)

// JobState is the lifecycle of a job.
type JobState string

// Job states. A drained server marks unfinished jobs interrupted; their
// specs are already journaled, so a restarted server resumes them (cells
// that completed before the drain replay from the journal-warmed cache).
const (
	JobQueued      JobState = "queued"
	JobRunning     JobState = "running"
	JobDone        JobState = "done"
	JobFailed      JobState = "failed" // finished, but >=1 cell failed
	JobInterrupted JobState = "interrupted"
)

// CellResult is the wire form of one finished cell.
type CellResult struct {
	Index  int    `json:"index"`
	Bench  string `json:"benchmark"`
	Config string `json:"config"`
	// Cell is the content fingerprint identifying the simulation
	// (experiments.CellFingerprint) — the cache key.
	Cell string `json:"cell"`
	// Cached reports a content-addressed cache hit; Shared reports the
	// request coalesced into an identical in-flight execution; PeerFilled
	// reports the record came from the cell's owning shard over the peer
	// protocol rather than a local execution.
	Cached     bool `json:"cached,omitempty"`
	Shared     bool `json:"shared,omitempty"`
	PeerFilled bool `json:"peer_filled,omitempty"`
	// Checksum is the differential oracle's architectural checksum
	// (%016x), identical to a direct macroop.SimulateChecked of the same
	// cell. CheckedCommits is how many commits it covers.
	Checksum       string `json:"checksum,omitempty"`
	CheckedCommits int64  `json:"checked_commits,omitempty"`

	IPC       float64      `json:"ipc,omitempty"`
	Cycles    int64        `json:"cycles,omitempty"`
	Committed int64        `json:"committed,omitempty"`
	Result    *core.Result `json:"result,omitempty"`

	Error            string `json:"error,omitempty"`
	ErrorKind        string `json:"error_kind,omitempty"`
	ReproFingerprint string `json:"repro_fingerprint,omitempty"`

	WallMS float64 `json:"wall_ms"`
}

// JobStatus is the wire form of a job's progress.
type JobStatus struct {
	ID        string        `json:"id"`
	State     JobState      `json:"state"`
	Cells     int           `json:"cells"`
	Completed int           `json:"completed"`
	Failed    int           `json:"failed"`
	CacheHits int           `json:"cache_hits"`
	Created   time.Time     `json:"created"`
	Results   []*CellResult `json:"results,omitempty"`
}

// Job tracks one admitted request (a single simulation or a matrix
// batch) through the queue and worker pool.
type Job struct {
	id      string
	cells   []CellSpec
	created time.Time
	// journaled jobs (batches accepted with a journal attached) resume
	// after a restart; ad-hoc synchronous jobs do not.
	journaled bool

	mu        sync.Mutex
	state     JobState
	results   []*CellResult // by cell index; nil until finished
	completed int
	failed    int
	hits      int
	subs      []chan *CellResult
	done      chan struct{}
	// frozen is set for completed jobs reloaded from the journal: the
	// job's terminal status survives a restart without re-running cells.
	frozen *JobStatus
}

func newJob(id string, cells []CellSpec, journaled bool, created time.Time) *Job {
	return &Job{
		id:        id,
		cells:     cells,
		created:   created,
		journaled: journaled,
		state:     JobQueued,
		results:   make([]*CellResult, len(cells)),
		done:      make(chan struct{}),
	}
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done is closed when the job reaches a terminal state (done, failed, or
// interrupted by a drain).
func (j *Job) Done() <-chan struct{} { return j.done }

// record stores one finished cell, notifies subscribers, and reports
// whether this was the job's last cell.
func (j *Job) record(cr *CellResult) (finished bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == JobInterrupted || j.results[cr.Index] != nil {
		return false // late completion after drain, or duplicate
	}
	j.results[cr.Index] = cr
	j.completed++
	if cr.Error != "" {
		j.failed++
	}
	if cr.Cached {
		j.hits++
	}
	if j.state == JobQueued {
		j.state = JobRunning
	}
	for _, sub := range j.subs {
		sub <- cr // never blocks: subscriber buffers hold every event
	}
	if j.completed == len(j.cells) {
		if j.failed > 0 {
			j.state = JobFailed
		} else {
			j.state = JobDone
		}
		close(j.done)
		return true
	}
	return false
}

// interrupt marks an unfinished job as cut short by a drain and releases
// its waiters. Terminal jobs are left untouched.
func (j *Job) interrupt() {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case JobQueued, JobRunning:
		j.state = JobInterrupted
		close(j.done)
	}
}

// subscribe returns a channel replaying every already-finished cell and
// then delivering future ones. Its buffer holds the job's entire event
// stream, so publishers never block on a slow or absent reader.
func (j *Job) subscribe() chan *CellResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan *CellResult, len(j.cells))
	for _, cr := range j.results {
		if cr != nil {
			ch <- cr
		}
	}
	switch j.state {
	case JobQueued, JobRunning:
		j.subs = append(j.subs, ch)
	}
	return ch
}

// Status snapshots the job, including (when withResults) the finished
// cells in index order.
func (j *Job) Status(withResults bool) *JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.frozen != nil {
		st := *j.frozen
		if !withResults {
			st.Results = nil
		}
		return &st
	}
	st := &JobStatus{
		ID:        j.id,
		State:     j.state,
		Cells:     len(j.cells),
		Completed: j.completed,
		Failed:    j.failed,
		CacheHits: j.hits,
		Created:   j.created,
	}
	if withResults {
		for _, cr := range j.results {
			if cr != nil {
				st.Results = append(st.Results, cr)
			}
		}
	}
	return st
}

// failedCells renders the job's cell failures for logs.
func (j *Job) failedCells() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := ""
	for _, cr := range j.results {
		if cr != nil && cr.Error != "" {
			s += fmt.Sprintf("\n  %s/%s: %s", cr.Bench, cr.Config, cr.Error)
		}
	}
	return s
}
