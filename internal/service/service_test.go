package service

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"macroop/internal/simerr"
)

// testInsts keeps cells small enough that a full test matrix runs in
// well under a second while still exercising every pipeline stage.
const testInsts = 3000

func newTestService(t *testing.T, opts Options) *Service {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	if opts.DefaultInsts == 0 {
		opts.DefaultInsts = testInsts
	}
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	t.Cleanup(func() { s.Close() })
	return s
}

// TestSingleflightConcurrentSameCell is the concurrency contract of the
// content-addressed cache: N goroutines requesting the same cell at
// once trigger exactly one execution, and every caller observes the
// same architectural checksum. Run under -race.
func TestSingleflightConcurrentSameCell(t *testing.T) {
	s := newTestService(t, Options{Workers: 8})
	const n = 32
	req := SimRequest{Benchmark: "gzip", Config: ConfigSpec{Sched: "mop"}, MaxInsts: testInsts}

	var wg sync.WaitGroup
	sums := make([]string, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cr, err := s.Simulate(context.Background(), req)
			if err != nil {
				errs[i] = err
				return
			}
			sums[i] = cr.Checksum
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if sums[i] != sums[0] {
			t.Fatalf("caller %d checksum %s != caller 0 checksum %s", i, sums[i], sums[0])
		}
	}
	if sums[0] == "" {
		t.Fatal("empty checksum")
	}
	if got := s.Executions(); got != 1 {
		t.Fatalf("Executions = %d, want exactly 1 for %d identical concurrent requests", got, n)
	}
	hits, misses, shared := s.CacheStats()
	if misses != 1 {
		t.Errorf("cache misses = %d, want 1", misses)
	}
	if hits+shared != n-1 {
		t.Errorf("hits(%d) + shared(%d) = %d, want %d (every other caller coalesced or hit)",
			hits, shared, hits+shared, n-1)
	}
}

// TestCacheHitSecondRequest: a repeated cell is served from the cache
// with an identical checksum and no second execution.
func TestCacheHitSecondRequest(t *testing.T) {
	s := newTestService(t, Options{Workers: 2})
	req := SimRequest{Benchmark: "gzip", Config: ConfigSpec{Sched: "base"}, MaxInsts: testInsts}

	cold, err := s.Simulate(context.Background(), req)
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	if cold.Cached {
		t.Error("cold request reported cached")
	}
	warm, err := s.Simulate(context.Background(), req)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if !warm.Cached {
		t.Error("second identical request not served from cache")
	}
	if warm.Checksum != cold.Checksum {
		t.Errorf("cached checksum %s != original %s", warm.Checksum, cold.Checksum)
	}
	if got := s.Executions(); got != 1 {
		t.Errorf("Executions = %d, want 1", got)
	}
}

// TestAdmissionControl: the bounded queue rejects overload with
// ErrQueueFull rather than buffering unboundedly, and a draining
// service rejects everything with ErrDraining.
func TestAdmissionControl(t *testing.T) {
	// No Start: nothing drains the queue, so admitted cells pin pending.
	s, err := New(Options{Workers: 1, QueueDepth: 4, DefaultInsts: testInsts, Logf: t.Logf})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()

	okReq := MatrixRequest{
		Benchmarks: []string{"gzip"},
		Configs: map[string]ConfigSpec{
			"a": {Sched: "base"}, "b": {Sched: "2cycle"},
			"c": {Sched: "mop"}, "d": {Sched: "sf-squash"},
		},
	}
	if _, err := s.SubmitMatrix(okReq); err != nil {
		t.Fatalf("matrix filling the queue exactly: %v", err)
	}
	if got := s.QueueDepth(); got != 4 {
		t.Fatalf("QueueDepth = %d, want 4", got)
	}
	if _, err := s.Simulate(context.Background(), SimRequest{Benchmark: "gzip"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-admission error = %v, want ErrQueueFull", err)
	}
	over := MatrixRequest{Benchmarks: []string{"gzip", "mcf"}, Configs: map[string]ConfigSpec{"a": {Sched: "base"}}}
	if _, err := s.SubmitMatrix(over); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("oversized matrix error = %v, want ErrQueueFull", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !s.Draining() {
		t.Error("Draining() = false after Drain")
	}
	if _, err := s.Simulate(context.Background(), SimRequest{Benchmark: "gzip"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain error = %v, want ErrDraining", err)
	}
}

// TestRequestValidation: malformed requests fail fast with untyped
// errors (the HTTP 400 family), before touching the queue.
func TestRequestValidation(t *testing.T) {
	s := newTestService(t, Options{Workers: 1, MaxInsts: 10_000})
	ctx := context.Background()
	cases := []struct {
		name string
		req  SimRequest
	}{
		{"unknown benchmark", SimRequest{Benchmark: "nope"}},
		{"unknown scheduler", SimRequest{Benchmark: "gzip", Config: ConfigSpec{Sched: "warp"}}},
		{"unknown wakeup", SimRequest{Benchmark: "gzip", Config: ConfigSpec{Sched: "mop", Wakeup: "psychic"}}},
		{"mop knob on base", SimRequest{Benchmark: "gzip", Config: ConfigSpec{Sched: "base", Wakeup: "2src"}}},
		{"budget over server cap", SimRequest{Benchmark: "gzip", MaxInsts: 20_000}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := s.Simulate(ctx, tc.req)
			if err == nil {
				t.Fatal("expected a validation error")
			}
			if _, typed := simerr.KindOf(err); typed {
				t.Fatalf("validation error is typed (%v); should be plain", err)
			}
		})
	}
	if got := s.Executions(); got != 0 {
		t.Errorf("Executions = %d after pure validation failures, want 0", got)
	}
}

// TestTypedFailureSurface: a cell that deadlocks (provoked via an
// absurdly small watchdog window) comes back as a typed simerr failure
// carrying a repro fingerprint, and the kind maps to a stable HTTP
// status.
func TestTypedFailureSurface(t *testing.T) {
	s := newTestService(t, Options{Workers: 1})
	wd := 1
	cr, err := s.Simulate(context.Background(), SimRequest{
		Benchmark: "gzip",
		Config:    ConfigSpec{Sched: "base", Watchdog: &wd},
		MaxInsts:  testInsts,
	})
	if err == nil {
		t.Fatal("watchdog=1 cell succeeded; expected deadlock")
	}
	kind, ok := simerr.KindOf(err)
	if !ok {
		t.Fatalf("failure not typed: %v", err)
	}
	if kind != simerr.KindDeadlock {
		t.Fatalf("kind = %v, want deadlock", kind)
	}
	if fp := simerr.FingerprintOf(err); fp == "" {
		t.Error("typed failure carries no repro fingerprint")
	}
	if cr == nil || cr.ErrorKind != "deadlock" {
		t.Errorf("CellResult = %+v, want ErrorKind deadlock", cr)
	}
	if got := kind.HTTPStatus(); got != 500 {
		t.Errorf("deadlock HTTPStatus = %d, want 500", got)
	}
	if got := simerr.KindCancelled.HTTPStatus(); got != StatusClientClosedRequest {
		t.Errorf("cancelled HTTPStatus = %d, want %d", got, StatusClientClosedRequest)
	}
}

// TestMatrixSharedChecksums: a matrix's per-benchmark checksums are
// config-invariant (every scheduler commits the same architectural
// stream), which is the cross-config property the differential oracle
// guarantees.
func TestMatrixSharedChecksums(t *testing.T) {
	s := newTestService(t, Options{Workers: 4})
	j, err := s.SubmitMatrix(MatrixRequest{
		Benchmarks: []string{"gzip", "mcf"},
		Configs: map[string]ConfigSpec{
			"base": {Sched: "base"}, "mop": {Sched: "mop"}, "2cycle": {Sched: "2cycle"},
		},
		MaxInsts: testInsts,
	})
	if err != nil {
		t.Fatalf("SubmitMatrix: %v", err)
	}
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("matrix did not finish")
	}
	st := j.Status(true)
	if st.State != JobDone || st.Failed != 0 {
		t.Fatalf("job state %s, %d failed", st.State, st.Failed)
	}
	if len(st.Results) != 6 {
		t.Fatalf("results = %d, want 6", len(st.Results))
	}
	byBench := map[string]string{}
	for _, cr := range st.Results {
		if prev, ok := byBench[cr.Bench]; ok {
			if cr.Checksum != prev {
				t.Errorf("%s/%s checksum %s diverges from %s", cr.Bench, cr.Config, cr.Checksum, prev)
			}
		} else {
			byBench[cr.Bench] = cr.Checksum
		}
	}
}

// TestJournalResume is the drain/resume contract: a batch accepted
// before a shutdown finishes after a restart with the same journal, and
// journaled cell results survive as a warm cache.
func TestJournalResume(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "svc.journal")
	req := MatrixRequest{
		Benchmarks: []string{"gzip"},
		Configs:    map[string]ConfigSpec{"base": {Sched: "base"}, "mop": {Sched: "mop"}},
		MaxInsts:   testInsts,
	}

	// Phase 1: accept the batch but never start workers — the shutdown
	// happens with zero cells finished.
	s1, err := New(Options{Workers: 2, DefaultInsts: testInsts, JournalPath: jpath, Logf: t.Logf})
	if err != nil {
		t.Fatalf("New(1): %v", err)
	}
	j1, err := s1.SubmitMatrix(req)
	if err != nil {
		t.Fatalf("SubmitMatrix: %v", err)
	}
	id := j1.ID()
	if err := s1.Close(); err != nil {
		t.Fatalf("Close(1): %v", err)
	}
	if st := j1.Status(false); st.State != JobInterrupted {
		t.Fatalf("job state after drain = %s, want interrupted", st.State)
	}

	// Phase 2: a restart resumes the journaled batch to completion.
	s2, err := New(Options{Workers: 2, DefaultInsts: testInsts, JournalPath: jpath, Logf: t.Logf})
	if err != nil {
		t.Fatalf("New(2): %v", err)
	}
	s2.Start()
	j2, ok := s2.Job(id)
	if !ok {
		t.Fatalf("restarted service does not know %s", id)
	}
	select {
	case <-j2.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("resumed job did not finish")
	}
	st := j2.Status(true)
	if st.State != JobDone || st.Failed != 0 {
		t.Fatalf("resumed job state %s, %d failed", st.State, st.Failed)
	}
	sums := map[string]string{}
	for _, cr := range st.Results {
		sums[cr.Config] = cr.Checksum
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("Close(2): %v", err)
	}

	// Phase 3: another restart sees the job as terminal (no re-run) and
	// serves its cells from the journal-warmed cache.
	s3, err := New(Options{Workers: 2, DefaultInsts: testInsts, JournalPath: jpath, Logf: t.Logf})
	if err != nil {
		t.Fatalf("New(3): %v", err)
	}
	s3.Start()
	defer s3.Close()
	j3, ok := s3.Job(id)
	if !ok {
		t.Fatalf("third service does not know %s", id)
	}
	if st := j3.Status(false); st.State != JobDone {
		t.Fatalf("reloaded job state = %s, want done (frozen)", st.State)
	}
	cr, err := s3.Simulate(context.Background(), SimRequest{Benchmark: "gzip", Config: ConfigSpec{Sched: "mop"}, MaxInsts: testInsts})
	if err != nil {
		t.Fatalf("Simulate on warmed cache: %v", err)
	}
	if !cr.Cached {
		t.Error("journal-warmed cell not served from cache")
	}
	if cr.Checksum != sums["mop"] {
		t.Errorf("warmed checksum %s != journaled run %s", cr.Checksum, sums["mop"])
	}
	if got := s3.Executions(); got != 0 {
		t.Errorf("Executions = %d on fully warmed cache, want 0", got)
	}
}

// TestResultCacheLRU pins the cache's bounded-eviction behaviour.
func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2, 0)
	a, b, d := &CachedResult{Checksum: 1}, &CachedResult{Checksum: 2}, &CachedResult{Checksum: 3}
	c.Put("a", a)
	c.Put("b", b)
	if _, ok := c.Get("a"); !ok { // refresh a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("d", d) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b survived past capacity")
	}
	if got, ok := c.Get("a"); !ok || got.Checksum != 1 {
		t.Error("refreshed entry a evicted")
	}
	if got, ok := c.Get("d"); !ok || got.Checksum != 3 {
		t.Error("d missing")
	}
}
