package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"macroop/internal/simerr"
)

// errorBody is the JSON error envelope. Simulation failures carry their
// repro fingerprint: a 500 from a deadlocked or divergent cell names the
// exact failure identity a local `mopsim -shrink` repro would fold into.
type errorBody struct {
	Error            string `json:"error"`
	Kind             string `json:"kind,omitempty"`
	ReproFingerprint string `json:"repro_fingerprint,omitempty"`
}

// StatusClientClosedRequest is the non-standard 499 status (nginx
// convention) reported when the simulation was cancelled rather than
// failed — simerr.KindCancelled.HTTPStatus().
const StatusClientClosedRequest = 499

// Handler returns the service's HTTP API:
//
//	POST /v1/simulate       one cell, synchronous
//	POST /v1/matrix         batched sweep (async; wait/stream modes)
//	POST /v1/gap            heuristic-vs-optimum gap report, synchronous
//	GET  /v1/jobs           job summaries, newest first
//	GET  /v1/jobs/{id}      one job's status and finished cells
//	GET  /v1/jobs/{id}/stream  NDJSON replay+live stream of cell results
//	GET  /metrics           Prometheus text exposition
//	GET  /healthz           200 ok / 503 draining
//	GET  /debug/pprof/...   live profiling
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("POST /v1/matrix", s.handleMatrix)
	mux.HandleFunc("POST /v1/gap", s.handleGap)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleJobStream)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// WriteJSON writes an indented JSON response body. Exported for the
// cluster router, which serves some service endpoints itself.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeJSON(w http.ResponseWriter, status int, v any) { WriteJSON(w, status, v) }

// WriteError maps an error onto the stable status contract: admission
// failures are 503 with a Retry-After hint (during a drain the hint is
// the expected drain time, not the static queue hint), typed simulation
// failures take their kind's status (cancelled → 499, everything else →
// 500) with the repro fingerprint in the body, and anything untyped from
// request validation is a 400. Exported for the cluster router.
func (s *Service) WriteError(w http.ResponseWriter, err error) { s.writeError(w, err) }

func (s *Service) writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining), errors.Is(err, ErrInterrupted):
		w.Header().Set("Retry-After", retryAfterSeconds(s.retryAfter(err)))
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	default:
		if kind, ok := simerr.KindOf(err); ok {
			writeJSON(w, kind.HTTPStatus(), errorBody{
				Error:            err.Error(),
				Kind:             kind.String(),
				ReproFingerprint: simerr.FingerprintOf(err),
			})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	}
}

func (s *Service) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	if req.Benchmark == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "missing benchmark (one of: " + benchList() + ")"})
		return
	}
	cr, err := s.Simulate(r.Context(), req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, cr)
}

// matrixWire is MatrixRequest plus the response-mode switches.
type matrixWire struct {
	MatrixRequest
	// Wait blocks the response until the whole batch finishes.
	Wait bool `json:"wait,omitempty"`
	// Stream responds with NDJSON: one line per finished cell as it
	// completes, then a terminal job-status line.
	Stream bool `json:"stream,omitempty"`
}

func (s *Service) handleMatrix(w http.ResponseWriter, r *http.Request) {
	var req matrixWire
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	j, err := s.SubmitMatrix(req.MatrixRequest)
	if err != nil {
		s.writeError(w, err)
		return
	}
	switch {
	case req.Stream:
		s.streamJob(w, r, j)
	case req.Wait:
		select {
		case <-j.Done():
			writeJSON(w, http.StatusOK, j.Status(true))
		case <-r.Context().Done():
			// The batch keeps running server-side; the client can rejoin
			// via GET /v1/jobs/{id}.
		}
	default:
		writeJSON(w, http.StatusAccepted, j.Status(false))
	}
}

func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.JobStatuses())
}

func (s *Service) jobFor(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("unknown job %q", id)})
		return nil, false
	}
	return j, true
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobFor(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status(true))
	}
}

func (s *Service) handleJobStream(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobFor(w, r); ok {
		s.streamJob(w, r, j)
	}
}

// streamJob writes the job's cell results as NDJSON, replaying finished
// cells first and then following the live stream until the job reaches a
// terminal state; the last line is the job's status (without the result
// bodies — they were the stream).
func (s *Service) streamJob(w http.ResponseWriter, r *http.Request, j *Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(v any) {
		enc.Encode(v)
		if flusher != nil {
			flusher.Flush()
		}
	}
	sub := j.subscribe()
	for {
		select {
		case cr := <-sub:
			emit(cr)
		case <-j.Done():
			for {
				select {
				case cr := <-sub:
					emit(cr)
				default:
					emit(j.Status(false))
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(s.MetricsText()))
}

// retryAfterSeconds renders a Retry-After header value, rounding up and
// never below one second.
func retryAfterSeconds(d time.Duration) string {
	secs := int(d.Seconds() + 0.999)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// handleHealthz reports drain, queue, cache, and (when clustered) ring
// and ownership state as JSON. A draining server answers 503 with a
// Retry-After reflecting the expected drain time, so a client told to
// come back learns when the restart should have happened.
func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.Health()
	status := http.StatusOK
	if h.Draining {
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", retryAfterSeconds(s.retryAfter(ErrDraining)))
	}
	writeJSON(w, status, h)
}
