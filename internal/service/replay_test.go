package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"macroop/internal/core"
	"macroop/internal/journal"
)

// TestResultCacheByteQuota pins the cache's second bound: even far below
// the entry cap, the approximate resident size stays under the byte
// quota by evicting least recently used records.
func TestResultCacheByteQuota(t *testing.T) {
	probe := &CachedResult{Bench: "gzip", Checksum: 1}
	one := int64(probe.approxBytes("fp-000"))
	quota := 4*one + one/2 // room for four records, not five
	c := newResultCache(1000, quota)

	for i := 0; i < 16; i++ {
		c.Put(fmt.Sprintf("fp-%03d", i), &CachedResult{Bench: "gzip", Checksum: uint64(i)})
		if got := c.Bytes(); got > quota {
			t.Fatalf("after %d puts: %d resident bytes > quota %d", i+1, got, quota)
		}
	}
	if n := c.Len(); n != 4 {
		t.Fatalf("cache holds %d entries under a 4-record quota", n)
	}
	// Eviction is LRU: the newest records survive.
	if _, ok := c.Get("fp-015"); !ok {
		t.Error("most recent record evicted")
	}
	if _, ok := c.Get("fp-000"); ok {
		t.Error("oldest record survived the quota")
	}
	// A single oversized record is still cached (the quota degrades to
	// one-entry residency, never to a cache that caches nothing).
	big := &CachedResult{Bench: string(make([]byte, int(quota)))}
	c.Put("huge", big)
	if _, ok := c.Get("huge"); !ok {
		t.Error("oversized record not cached at all")
	}
	if n := c.Len(); n != 1 {
		t.Errorf("oversized record should evict down to single residency, got %d entries", n)
	}
}

// TestServiceCacheBytesOption wires the quota through Options: a tiny
// CacheBytes keeps the resident size bounded while the service keeps
// answering correctly (evicted cells simply re-execute).
func TestServiceCacheBytesOption(t *testing.T) {
	// A 1-byte quota is below any single record, so the cache must stay
	// at single residency — each new cell evicts the previous one.
	s := newTestService(t, Options{Workers: 2, CacheBytes: 1})
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		if _, err := s.Simulate(ctx, SimRequest{Benchmark: "gzip", MaxInsts: testInsts + int64(i)}); err != nil {
			t.Fatalf("simulate %d: %v", i, err)
		}
		if h := s.Health(); h.CacheCells != 1 {
			t.Fatalf("after %d distinct cells: %d resident, want single residency under the quota", i+1, h.CacheCells)
		}
	}
	// The still-resident (latest) cell is a hit; an evicted one re-runs.
	res, err := s.Simulate(ctx, SimRequest{Benchmark: "gzip", MaxInsts: testInsts + 5})
	if err != nil || !res.Cached {
		t.Errorf("latest cell not cached (err=%v)", err)
	}
	res, err = s.Simulate(ctx, SimRequest{Benchmark: "gzip", MaxInsts: testInsts})
	if err != nil || res.Cached {
		t.Errorf("evicted cell served from cache (err=%v)", err)
	}
}

// TestJournalReplayRobustness: replay must tolerate every damaged-record
// shape a crash (or a failed-over peer) can leave behind — a cellres
// that does not parse, a jobdone referencing a job with no spec, and a
// jobspec whose cells no longer resolve — while still warming everything
// intact.
func TestJournalReplayRobustness(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "svc.journal")

	// Seed a journal with one real completed cell.
	s1, err := New(Options{Workers: 2, DefaultInsts: testInsts, JournalPath: jpath, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	cr, err := s1.Simulate(context.Background(), SimRequest{Benchmark: "gzip", MaxInsts: testInsts})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Damage it: a cellres that is not JSON, a jobdone for a job the
	// journal has no spec for, and a jobspec naming an unknown benchmark.
	jnl, err := journal.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := jnl.Append(KeyCell+"feedfacedeadbeef", []byte("{torn")); err != nil {
		t.Fatal(err)
	}
	if err := jnl.Append(KeyJobDone+"job-ghost-9", []byte(`{"id":"job-ghost-9","state":"done"}`)); err != nil {
		t.Fatal(err)
	}
	spec, _ := json.Marshal(JobSpecRecord{ID: "job-x-5", Cells: []CellSpec{
		{Bench: "no-such-benchmark", Name: "base", Insts: testInsts},
	}})
	if err := jnl.Append(KeyJobSpec+"job-x-5", spec); err != nil {
		t.Fatal(err)
	}
	jnl.Close()

	// Replay: the service comes up serving, the intact cell is warm, the
	// damaged records are skipped, and the unresolvable job surfaces as
	// interrupted rather than wedging startup.
	s2, err := New(Options{Workers: 2, DefaultInsts: testInsts, JournalPath: jpath, Logf: t.Logf})
	if err != nil {
		t.Fatalf("replay with damaged records failed New: %v", err)
	}
	s2.Start()
	defer s2.Close()

	got, err := s2.Simulate(context.Background(), SimRequest{Benchmark: "gzip", MaxInsts: testInsts})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Cached || got.Checksum != cr.Checksum {
		t.Errorf("intact cell not warmed: cached=%v checksum %s vs %s", got.Cached, got.Checksum, cr.Checksum)
	}
	if _, ok := s2.Job("job-ghost-9"); ok {
		t.Error("jobdone without a spec materialized a job")
	}
	j, ok := s2.Job("job-x-5")
	if !ok {
		t.Fatal("unresolvable jobspec vanished instead of surfacing")
	}
	if st := j.Status(false); st.State != JobInterrupted {
		t.Errorf("unresolvable job state %s, want interrupted", st.State)
	}
	if got := s2.Executions(); got != 0 {
		t.Errorf("replay triggered %d executions", got)
	}
}

// TestReplayNewestEpochWins: replicated cellres records for the same
// fingerprint can land in one journal from two source epochs (a
// write-through push from the old primary interleaved with a repair from
// the post-failover one). Replay must deterministically keep the
// newest-epoch record in either append order, and a torn tail after the
// duplicates must not change the outcome.
func TestReplayNewestEpochWins(t *testing.T) {
	rc, err := CellSpec{Bench: "gzip", Insts: testInsts}.resolve()
	if err != nil {
		t.Fatal(err)
	}
	mk := func(epoch uint64) []byte {
		cw, err := WireFromRecord(&CachedResult{
			Bench:       "gzip",
			Checksum:    0x1000 + epoch,
			Commits:     int64(epoch),
			SourceEpoch: epoch,
			Result:      &core.Result{},
		})
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(cw)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	for _, tc := range []struct {
		name   string
		epochs []uint64
	}{
		{"newest-last", []uint64{3, 9}},
		{"newest-first", []uint64{9, 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			jpath := filepath.Join(t.TempDir(), "svc.journal")
			jnl, err := journal.Open(jpath)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range tc.epochs {
				if err := jnl.Append(KeyCell+rc.fp, mk(e)); err != nil {
					t.Fatal(err)
				}
			}
			jnl.Close()
			// A crash mid-append leaves a torn tail after the duplicates.
			f, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte{0xff, 0x07, 0x41}); err != nil {
				t.Fatal(err)
			}
			f.Close()

			s, err := New(Options{Workers: 2, DefaultInsts: testInsts, JournalPath: jpath, Logf: t.Logf})
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			s.Start()
			defer s.Close()
			res, err := s.Simulate(context.Background(), SimRequest{Benchmark: "gzip", MaxInsts: testInsts})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Cached {
				t.Fatal("duplicated cell not warmed from the journal")
			}
			if want := fmt.Sprintf("%016x", 0x1000+uint64(9)); res.Checksum != want {
				t.Errorf("replay kept checksum %s, want the epoch-9 record %s", res.Checksum, want)
			}
			if got := s.Executions(); got != 0 {
				t.Errorf("replay triggered %d executions", got)
			}
		})
	}
}

// TestIndexRecordsEpochPolicy pins the index primitive itself: damaged
// duplicates never displace an intact record, same-epoch duplicates
// resolve last-wins, and non-cell keys are plain last-wins.
func TestIndexRecordsEpochPolicy(t *testing.T) {
	cell := func(epoch uint64, commits int64) []byte {
		cw, err := WireFromRecord(&CachedResult{
			Bench: "gzip", Checksum: epoch, Commits: commits,
			SourceEpoch: epoch, Result: &core.Result{},
		})
		if err != nil {
			t.Fatal(err)
		}
		data, _ := json.Marshal(cw)
		return data
	}
	key := KeyCell + "fp-1"
	idx := IndexRecords([]journal.Record{
		{Key: key, Data: cell(5, 1)},
		{Key: key, Data: []byte("{torn")}, // damaged duplicate: ignored
		{Key: key, Data: cell(2, 2)},      // older epoch: ignored
		{Key: key, Data: cell(5, 3)},      // same epoch: last wins
		{Key: "other", Data: []byte("a")},
		{Key: "other", Data: []byte("b")}, // non-cell: plain last-wins
	})
	var cw CellWire
	if err := json.Unmarshal(idx[key], &cw); err != nil {
		t.Fatal(err)
	}
	if cw.Epoch != 5 || cw.Commits != 3 {
		t.Errorf("index kept epoch=%d commits=%d, want the later epoch-5 record", cw.Epoch, cw.Commits)
	}
	if string(idx["other"]) != "b" {
		t.Errorf("non-cell key resolved to %q, want last-wins", idx["other"])
	}
}

// TestAdoptJob pins the failover building block: adopting a job re-runs
// only cells absent from the cache, and re-adopting the same ID is a
// no-op.
func TestAdoptJob(t *testing.T) {
	s := newTestService(t, Options{Workers: 2, NodeName: "n9"})
	ctx := context.Background()

	warm, err := s.Simulate(ctx, SimRequest{Benchmark: "gzip", MaxInsts: testInsts})
	if err != nil {
		t.Fatal(err)
	}
	preExec := s.Executions()

	cells := []CellSpec{
		{Bench: "gzip", Name: "base", Insts: testInsts},
		{Bench: "mcf", Name: "base", Insts: testInsts},
	}
	j, resumed, rerun, err := s.AdoptJob("job-dead-7", cells)
	if err != nil {
		t.Fatalf("AdoptJob: %v", err)
	}
	if resumed != 1 || rerun != 1 {
		t.Fatalf("resumed=%d rerun=%d, want 1/1", resumed, rerun)
	}
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("adopted job did not finish")
	}
	st := j.Status(true)
	if st.State != JobDone || st.Failed != 0 {
		t.Fatalf("adopted job %s, %d failed", st.State, st.Failed)
	}
	for _, r := range st.Results {
		if r.Bench == "gzip" && r.Checksum != warm.Checksum {
			t.Errorf("adopted gzip checksum %s != warmed %s", r.Checksum, warm.Checksum)
		}
	}
	if got := s.Executions() - preExec; got != 1 {
		t.Errorf("adoption executed %d cells, want 1 (only the cold one)", got)
	}

	// Same ID again: the existing job is returned untouched.
	j2, resumed2, rerun2, err := s.AdoptJob("job-dead-7", cells)
	if err != nil || j2 != j || resumed2 != 0 || rerun2 != 0 {
		t.Errorf("re-adopt: j2==j %v resumed=%d rerun=%d err=%v", j2 == j, resumed2, rerun2, err)
	}
	// Adopted IDs must not collide with locally minted ones.
	local, err := s.SubmitMatrix(MatrixRequest{
		Benchmarks: []string{"gzip"},
		Configs:    map[string]ConfigSpec{"base": {Sched: "base"}},
		MaxInsts:   testInsts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if local.ID() == j.ID() {
		t.Errorf("local job reused adopted ID %s", local.ID())
	}
	<-local.Done()
}

// TestHealthzJSONBody: /healthz is a structured status document, and
// during a drain it answers 503 with a Retry-After reflecting the
// expected drain time.
func TestHealthzJSONBody(t *testing.T) {
	s := newTestService(t, Options{Workers: 3})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, err := s.Simulate(context.Background(), SimRequest{Benchmark: "gzip", MaxInsts: testInsts}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthStatus
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("healthz is not JSON: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" || h.Draining {
		t.Fatalf("healthy body %+v (status %d)", h, resp.StatusCode)
	}
	if h.Workers != 3 || h.CacheCells != 1 || h.CacheBytes <= 0 {
		t.Errorf("healthz fields off: %+v", h)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("draining healthz is not JSON: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || h.Status != "draining" || !h.Draining {
		t.Fatalf("draining body %+v (status %d)", h, resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("draining Retry-After %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
}
