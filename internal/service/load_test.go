package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"macroop/internal/checker"
	"macroop/internal/workload/workloadtest"
)

// TestSustainedLoad is the PR's acceptance scenario: >=32 concurrent
// clients submitting overlapping matrix requests against one server,
// with zero failed requests, a non-zero cache hit ratio, checksums
// byte-identical to a direct checked simulation of the same cells, and
// a graceful drain that leaves no orphaned goroutines. Run under -race.
func TestSustainedLoad(t *testing.T) {
	baseline := runtime.NumGoroutine()

	benches := []string{"gzip", "mcf"}
	specs := map[string]ConfigSpec{
		"base":   {Sched: "base"},
		"2cycle": {Sched: "2cycle"},
		"mop":    {Sched: "mop"},
	}

	// Reference checksums straight from the checked simulator, bypassing
	// the service entirely. Checksums are per-(benchmark, budget): every
	// config of one benchmark must commit the identical architectural
	// stream, so one direct run per benchmark pins all its cells.
	wantSum := map[string]string{}
	for _, b := range benches {
		prog := workloadtest.ByName(t, b)
		m, err := ConfigSpec{Sched: "base"}.Machine()
		if err != nil {
			t.Fatal(err)
		}
		_, sum, err := checker.CheckedRun(m, prog, testInsts, testInsts)
		if err != nil {
			t.Fatalf("direct CheckedRun %s: %v", b, err)
		}
		wantSum[b] = fmt.Sprintf("%016x", sum.Checksum)
	}

	s, err := New(Options{
		Workers:      8,
		QueueDepth:   2048, // hold the whole burst: this test is about dedup, not rejection
		DefaultInsts: testInsts,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())

	body, err := json.Marshal(map[string]any{
		"benchmarks": benches,
		"configs":    specs,
		"max_insts":  testInsts,
		"wait":       true,
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		clients        = 32
		reqsPerClient  = 3
		cellsPerMatrix = 6 // 2 benchmarks x 3 configs
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients*reqsPerClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < reqsPerClient; r++ {
				resp, err := http.Post(ts.URL+"/v1/matrix", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- fmt.Errorf("client %d req %d: %v", c, r, err)
					return
				}
				var st JobStatus
				err = json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if err != nil {
					errs <- fmt.Errorf("client %d req %d decode: %v", c, r, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d req %d status %d", c, r, resp.StatusCode)
					return
				}
				if st.State != JobDone || st.Failed != 0 || len(st.Results) != cellsPerMatrix {
					errs <- fmt.Errorf("client %d req %d: state %s, %d failed, %d results",
						c, r, st.State, st.Failed, len(st.Results))
					return
				}
				for _, cr := range st.Results {
					if cr.Checksum != wantSum[cr.Bench] {
						errs <- fmt.Errorf("client %d req %d: %s/%s checksum %s, direct run says %s",
							c, r, cr.Bench, cr.Config, cr.Checksum, wantSum[cr.Bench])
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	failed := 0
	for err := range errs {
		failed++
		t.Error(err)
	}
	if failed > 0 {
		t.Fatalf("%d/%d requests failed", failed, clients*reqsPerClient)
	}

	// 576 requested cells over 6 distinct ones: the cache plus
	// singleflight must collapse them to exactly one execution each.
	if got := s.Executions(); got != cellsPerMatrix {
		t.Errorf("Executions = %d, want exactly %d (one per distinct cell)", got, cellsPerMatrix)
	}
	hits, misses, shared := s.CacheStats()
	total := clients * reqsPerClient * cellsPerMatrix
	if hits+shared+misses != int64(total) {
		t.Errorf("hits(%d)+shared(%d)+misses(%d) = %d, want %d served cells",
			hits, shared, misses, hits+shared+misses, total)
	}
	if hits == 0 {
		t.Error("sustained load produced zero cache hits")
	}
	t.Logf("load: %d cells served, %d hits, %d coalesced, %d executed", total, hits, shared, s.Executions())

	// Graceful drain, then the leak check: every worker, dispatcher and
	// HTTP goroutine must be gone.
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	ts.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC() // nudge finished goroutines off the scheduler
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak after drain: %d alive, baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
