package branch

import (
	"testing"

	"macroop/internal/rng"
)

// refCombined is a from-first-principles reference of the combined
// predictor update rule used to cross-check the production predictor.
type refCombined struct {
	bimodal, gshare, selector []uint8
	history, histMask         uint64
}

func newRefCombined(cfg Config) *refCombined {
	r := &refCombined{
		bimodal:  make([]uint8, cfg.BimodalEntries),
		gshare:   make([]uint8, cfg.GshareEntries),
		selector: make([]uint8, cfg.SelectorEntries),
		histMask: (1 << uint(cfg.HistoryBits)) - 1,
	}
	for i := range r.selector {
		r.selector[i] = 1
	}
	return r
}

func bump(c uint8, up bool) uint8 {
	if up {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

func (r *refCombined) predict(pc int) bool {
	bi := pc & (len(r.bimodal) - 1)
	gi := (pc ^ int(r.history&r.histMask)) & (len(r.gshare) - 1)
	si := pc & (len(r.selector) - 1)
	if r.selector[si] >= 2 {
		return r.gshare[gi] >= 2
	}
	return r.bimodal[bi] >= 2
}

func (r *refCombined) update(pc int, taken bool) {
	bi := pc & (len(r.bimodal) - 1)
	gi := (pc ^ int(r.history&r.histMask)) & (len(r.gshare) - 1)
	si := pc & (len(r.selector) - 1)
	bp, gp := r.bimodal[bi] >= 2, r.gshare[gi] >= 2
	if bp != gp {
		r.selector[si] = bump(r.selector[si], gp == taken)
	}
	r.bimodal[bi] = bump(r.bimodal[bi], taken)
	r.gshare[gi] = bump(r.gshare[gi], taken)
	bit := uint64(0)
	if taken {
		bit = 1
	}
	r.history = ((r.history << 1) | bit) & r.histMask
}

// TestPredictorMatchesReference replays a random branch workload through
// both implementations; every prediction must agree.
func TestPredictorMatchesReference(t *testing.T) {
	cfg := DefaultConfig()
	p := mustNew(t, cfg)
	ref := newRefCombined(cfg)
	r := rng.New(2026)
	pcs := make([]int, 40)
	patterns := make([]uint64, len(pcs))
	for i := range pcs {
		pcs[i] = r.Intn(1 << 14)
		patterns[i] = r.Uint64()
	}
	for step := 0; step < 200000; step++ {
		i := r.Intn(len(pcs))
		pc := pcs[i]
		var taken bool
		switch i % 3 {
		case 0: // biased
			taken = r.Bool(0.8)
		case 1: // periodic
			taken = (step>>uint(i%4))&1 == 0
		case 2: // from a fixed pattern word
			taken = (patterns[i]>>(uint(step)%64))&1 == 1
		}
		if got, want := p.PredictDirection(pc), ref.predict(pc); got != want {
			t.Fatalf("step %d pc %d: predict %v, reference %v", step, pc, got, want)
		}
		p.UpdateDirection(pc, taken)
		ref.update(pc, taken)
	}
}
