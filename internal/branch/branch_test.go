package branch

import (
	"testing"
)

func mustNew(t *testing.T, cfg Config) *Predictor {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBimodalLearnsBias(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	const pc = 100
	for i := 0; i < 10; i++ {
		p.UpdateDirection(pc, true)
	}
	if !p.PredictDirection(pc) {
		t.Fatal("always-taken branch predicted not-taken after training")
	}
	for i := 0; i < 10; i++ {
		p.UpdateDirection(pc, false)
	}
	if p.PredictDirection(pc) {
		t.Fatal("retrained branch still predicted taken")
	}
}

func TestGshareLearnsAlternation(t *testing.T) {
	// A strictly alternating branch defeats bimodal but is captured by
	// gshare+selector within a short warmup.
	p := mustNew(t, DefaultConfig())
	const pc = 200
	taken := false
	correct, total := 0, 0
	for i := 0; i < 2000; i++ {
		pred := p.PredictDirection(pc)
		if i > 500 {
			total++
			if pred == taken {
				correct++
			}
		}
		p.UpdateDirection(pc, taken)
		taken = !taken
	}
	if acc := float64(correct) / float64(total); acc < 0.95 {
		t.Fatalf("alternating branch accuracy %.2f, want > 0.95", acc)
	}
}

func TestLoopPatternAccuracy(t *testing.T) {
	// Taken 7 of 8 (loop back-edge): accuracy should be high.
	p := mustNew(t, DefaultConfig())
	const pc = 52
	correct, total := 0, 0
	for i := 0; i < 4000; i++ {
		taken := i%8 != 7
		pred := p.PredictDirection(pc)
		if i > 1000 {
			total++
			if pred == taken {
				correct++
			}
		}
		p.UpdateDirection(pc, taken)
	}
	if acc := float64(correct) / float64(total); acc < 0.85 {
		t.Fatalf("loop pattern accuracy %.2f", acc)
	}
}

func TestDirAccuracyCounter(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	for i := 0; i < 100; i++ {
		p.UpdateDirection(7, true)
	}
	if p.DirAccuracy() < 0.9 {
		t.Fatalf("accuracy %v for a constant branch", p.DirAccuracy())
	}
	condSeen, _, _, _, _, _ := p.Stats()
	if condSeen != 100 {
		t.Fatalf("condSeen = %d", condSeen)
	}
}

func TestBTBStoresAndEvicts(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	if _, ok := p.LookupTarget(10); ok {
		t.Fatal("cold BTB hit")
	}
	p.UpdateTarget(10, 500)
	if tgt, ok := p.LookupTarget(10); !ok || tgt != 500 {
		t.Fatalf("BTB lookup = %d,%v", tgt, ok)
	}
	p.UpdateTarget(10, 600) // refresh with a new target
	if tgt, _ := p.LookupTarget(10); tgt != 600 {
		t.Fatalf("BTB update kept stale target %d", tgt)
	}
	// Fill one set beyond associativity; the oldest entry is evicted.
	// With 1024 entries 4-way, sets = 256; byte-address set index stride
	// is 256 (PCs 256/4=64 apart in instruction indices).
	cfg := DefaultConfig()
	base := 10
	for i := 1; i <= cfg.BTBAssoc; i++ {
		p.UpdateTarget(base+i*(cfg.BTBEntries/cfg.BTBAssoc), i)
	}
	if _, ok := p.LookupTarget(base); ok {
		t.Fatal("LRU BTB entry not evicted")
	}
}

func TestRASPushPop(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	if _, ok := p.PopRAS(); ok {
		t.Fatal("empty RAS popped")
	}
	p.PushRAS(11)
	p.PushRAS(22)
	if tgt, ok := p.PopRAS(); !ok || tgt != 22 {
		t.Fatalf("pop = %d,%v", tgt, ok)
	}
	if tgt, ok := p.PopRAS(); !ok || tgt != 11 {
		t.Fatalf("pop = %d,%v", tgt, ok)
	}
	if _, ok := p.PopRAS(); ok {
		t.Fatal("drained RAS popped")
	}
}

func TestRASWrapsAtCapacity(t *testing.T) {
	cfg := DefaultConfig()
	p := mustNew(t, cfg)
	for i := 0; i < cfg.RASEntries+4; i++ {
		p.PushRAS(i)
	}
	// The newest entries survive; the oldest were overwritten.
	for i := cfg.RASEntries + 3; i >= 4; i-- {
		tgt, ok := p.PopRAS()
		if !ok || tgt != i {
			t.Fatalf("pop %d = %d,%v", i, tgt, ok)
		}
	}
}

func TestRecordTargetOutcome(t *testing.T) {
	p := mustNew(t, DefaultConfig())
	p.RecordTargetOutcome(true, 5, 5)
	p.RecordTargetOutcome(true, 5, 6)
	p.RecordTargetOutcome(false, 1, 1)
	_, _, tgtSeen, tgtHit, rasSeen, rasHit := p.Stats()
	if rasSeen != 2 || rasHit != 1 || tgtSeen != 1 || tgtHit != 1 {
		t.Fatalf("stats: tgt %d/%d ras %d/%d", tgtHit, tgtSeen, rasHit, rasSeen)
	}
}

func TestBadConfigRejected(t *testing.T) {
	for _, mod := range []func(*Config){
		func(c *Config) { c.BimodalEntries = 1000 }, // not a power of two
		func(c *Config) { c.GshareEntries = 0 },
		func(c *Config) { c.BTBAssoc = 3 }, // does not divide 1024
		func(c *Config) { c.RASEntries = 0 },
		func(c *Config) { c.HistoryBits = 64 },
	} {
		cfg := DefaultConfig()
		mod(&cfg)
		if p, err := New(cfg); err == nil || p != nil {
			t.Fatalf("invalid config %+v accepted", cfg)
		}
	}
}

func TestCounterSaturation(t *testing.T) {
	c := counter2(0)
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Fatalf("counter did not saturate high: %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 {
		t.Fatalf("counter did not saturate low: %d", c)
	}
}
