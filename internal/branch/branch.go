// Package branch implements the branch prediction hardware from Table 1 of
// the paper: a combined predictor (4k-entry bimodal and 4k-entry gshare
// with a 4k-entry selector), a 1k-entry 4-way BTB, and a 16-entry return
// address stack.
//
// The predictor answers two questions at fetch time: the direction of a
// conditional branch, and the target of a taken control instruction. The
// core uses a wrong answer to model the ≥14-cycle misprediction-recovery
// pipeline refill.
package branch

import (
	"fmt"

	"macroop/internal/program"
)

// Config sizes the predictor structures. Counts must be powers of two.
type Config struct {
	BimodalEntries  int
	GshareEntries   int
	SelectorEntries int
	HistoryBits     int
	BTBEntries      int
	BTBAssoc        int
	RASEntries      int
}

// Validate checks structural well-formedness, so New cannot fail on a
// validated configuration.
func (c Config) Validate() error {
	for _, t := range []struct {
		name string
		n    int
	}{
		{"bimodal", c.BimodalEntries},
		{"gshare", c.GshareEntries},
		{"selector", c.SelectorEntries},
		{"BTB", c.BTBEntries},
	} {
		if t.n <= 0 || t.n&(t.n-1) != 0 {
			return fmt.Errorf("branch: %s table size %d not a positive power of two", t.name, t.n)
		}
	}
	switch {
	case c.BTBAssoc <= 0 || c.BTBEntries%c.BTBAssoc != 0:
		return fmt.Errorf("branch: BTB associativity %d does not divide %d entries", c.BTBAssoc, c.BTBEntries)
	case c.RASEntries <= 0:
		return fmt.Errorf("branch: non-positive RAS size %d", c.RASEntries)
	case c.HistoryBits <= 0 || c.HistoryBits > 63:
		return fmt.Errorf("branch: history bits %d out of range", c.HistoryBits)
	}
	return nil
}

// DefaultConfig returns Table 1's predictor configuration.
func DefaultConfig() Config {
	return Config{
		BimodalEntries:  4096,
		GshareEntries:   4096,
		SelectorEntries: 4096,
		HistoryBits:     12,
		BTBEntries:      1024,
		BTBAssoc:        4,
		RASEntries:      16,
	}
}

// counter2 is a saturating 2-bit counter: 0,1 predict not-taken; 2,3 taken.
type counter2 uint8

func (c counter2) taken() bool { return c >= 2 }

func (c counter2) update(taken bool) counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

type btbEntry struct {
	tag    uint64
	target int
	valid  bool
	lru    uint64
}

// Predictor is the combined direction predictor + BTB + RAS.
type Predictor struct {
	cfg      Config
	bimodal  []counter2
	gshare   []counter2
	selector []counter2 // ≥2: use gshare, <2: use bimodal
	history  uint64
	histMask uint64

	btb      [][]btbEntry
	btbStamp uint64

	ras    []int
	rasTop int // number of valid entries (grows/wraps)

	// statistics
	condSeen, condHit     int64
	targetSeen, targetHit int64
	rasSeen, rasHit       int64
}

// New builds a predictor; all tables start in the weakly-not-taken state.
// The configuration must be valid (Config.Validate).
func New(cfg Config) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	numSets := cfg.BTBEntries / cfg.BTBAssoc
	btb := make([][]btbEntry, numSets)
	backing := make([]btbEntry, cfg.BTBEntries)
	for i := range btb {
		btb[i] = backing[i*cfg.BTBAssoc : (i+1)*cfg.BTBAssoc : (i+1)*cfg.BTBAssoc]
	}
	p := &Predictor{
		cfg:      cfg,
		bimodal:  make([]counter2, cfg.BimodalEntries),
		gshare:   make([]counter2, cfg.GshareEntries),
		selector: make([]counter2, cfg.SelectorEntries),
		histMask: (1 << uint(cfg.HistoryBits)) - 1,
		btb:      btb,
		ras:      make([]int, cfg.RASEntries),
		rasTop:   0,
	}
	// Start selector biased toward bimodal and counters weakly taken for
	// loop-style code; matches common simulator initialization.
	for i := range p.selector {
		p.selector[i] = 1
	}
	return p, nil
}

func (p *Predictor) bimodalIdx(pc int) int {
	return pc & (p.cfg.BimodalEntries - 1)
}

func (p *Predictor) gshareIdx(pc int) int {
	return (pc ^ int(p.history&p.histMask)) & (p.cfg.GshareEntries - 1)
}

func (p *Predictor) selectorIdx(pc int) int {
	return pc & (p.cfg.SelectorEntries - 1)
}

// PredictDirection returns the predicted direction for the conditional
// branch at pc. It does not update any state.
func (p *Predictor) PredictDirection(pc int) bool {
	if p.selector[p.selectorIdx(pc)].taken() {
		return p.gshare[p.gshareIdx(pc)].taken()
	}
	return p.bimodal[p.bimodalIdx(pc)].taken()
}

// UpdateDirection trains the direction tables with the resolved outcome.
// Per the standard combining-predictor update rule, the selector moves
// toward the component that was correct when they disagree.
func (p *Predictor) UpdateDirection(pc int, taken bool) {
	p.condSeen++
	bi, gi, si := p.bimodalIdx(pc), p.gshareIdx(pc), p.selectorIdx(pc)
	bPred, gPred := p.bimodal[bi].taken(), p.gshare[gi].taken()
	pred := bPred
	if p.selector[si].taken() {
		pred = gPred
	}
	if pred == taken {
		p.condHit++
	}
	if bPred != gPred {
		p.selector[si] = p.selector[si].update(gPred == taken)
	}
	p.bimodal[bi] = p.bimodal[bi].update(taken)
	p.gshare[gi] = p.gshare[gi].update(taken)
	p.history = ((p.history << 1) | boolBit(taken)) & p.histMask
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// LookupTarget consults the BTB for the taken target of the control
// instruction at pc. ok is false on a BTB miss.
func (p *Predictor) LookupTarget(pc int) (target int, ok bool) {
	addr := program.ByteAddr(pc)
	setIdx := int(addr) & (len(p.btb) - 1)
	set := p.btb[setIdx]
	for i := range set {
		if set[i].valid && set[i].tag == addr {
			p.btbStamp++
			set[i].lru = p.btbStamp
			return set[i].target, true
		}
	}
	return 0, false
}

// UpdateTarget installs or refreshes the taken target for pc in the BTB.
func (p *Predictor) UpdateTarget(pc, target int) {
	addr := program.ByteAddr(pc)
	setIdx := int(addr) & (len(p.btb) - 1)
	set := p.btb[setIdx]
	p.btbStamp++
	for i := range set {
		if set[i].valid && set[i].tag == addr {
			set[i].target = target
			set[i].lru = p.btbStamp
			return
		}
	}
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = btbEntry{tag: addr, target: target, valid: true, lru: p.btbStamp}
}

// PushRAS records a call's return address (for JAL).
func (p *Predictor) PushRAS(returnPC int) {
	p.ras[p.rasTop%len(p.ras)] = returnPC
	p.rasTop++
}

// PopRAS predicts the target of a return (JR). ok is false when the stack
// is empty.
func (p *Predictor) PopRAS() (target int, ok bool) {
	if p.rasTop == 0 {
		return 0, false
	}
	p.rasTop--
	return p.ras[p.rasTop%len(p.ras)], true
}

// RecordTargetOutcome tracks target prediction accuracy statistics for a
// control instruction whose target was predicted as predTarget.
func (p *Predictor) RecordTargetOutcome(isReturn bool, predTarget, actual int) {
	if isReturn {
		p.rasSeen++
		if predTarget == actual {
			p.rasHit++
		}
		return
	}
	p.targetSeen++
	if predTarget == actual {
		p.targetHit++
	}
}

// DirAccuracy returns conditional direction prediction accuracy.
func (p *Predictor) DirAccuracy() float64 {
	if p.condSeen == 0 {
		return 0
	}
	return float64(p.condHit) / float64(p.condSeen)
}

// Stats returns raw counters: conditional (seen, correct), target
// (seen, correct), RAS (seen, correct).
func (p *Predictor) Stats() (condSeen, condHit, tgtSeen, tgtHit, rasSeen, rasHit int64) {
	return p.condSeen, p.condHit, p.targetSeen, p.targetHit, p.rasSeen, p.rasHit
}
