package config

import (
	"strings"
	"testing"

	"macroop/internal/isa"
)

func TestDefaultIsValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Unrestricted().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultMatchesTable1(t *testing.T) {
	m := Default()
	if m.Width != 4 || m.ROBEntries != 128 || m.IQEntries != 32 {
		t.Error("core sizing diverges from Table 1")
	}
	if m.IntALUs != 4 || m.IntMuls != 2 || m.MemPorts != 2 {
		t.Error("FU counts diverge from Table 1")
	}
	if m.Mem.IL1.SizeBytes != 16*1024 || m.Mem.IL1.Assoc != 2 || m.Mem.IL1.Latency != 2 {
		t.Error("IL1 diverges from Table 1")
	}
	if m.Mem.DL1.Assoc != 4 || m.Mem.L2.SizeBytes != 256*1024 || m.Mem.L2.LineBytes != 128 {
		t.Error("DL1/L2 diverge from Table 1")
	}
	if m.Mem.MemLatency != 100 || m.MinBranchPenalty != 14 || m.ReplayPenalty != 2 {
		t.Error("latencies diverge from Table 1")
	}
	if m.Branch.BimodalEntries != 4096 || m.Branch.RASEntries != 16 || m.Branch.BTBEntries != 1024 {
		t.Error("predictor diverges from Table 1")
	}
}

func TestWithHelpersCopy(t *testing.T) {
	m := Default()
	m2 := m.WithSched(SchedTwoCycle).WithIQ(0)
	if m.Sched != SchedBase || m.IQEntries != 32 {
		t.Fatal("With helpers mutated the receiver")
	}
	if m2.Sched != SchedTwoCycle || m2.IQEntries != 0 {
		t.Fatal("With helpers lost changes")
	}
	mc := DefaultMOP()
	mc.Wakeup = WakeupCAM2Src
	m3 := m.WithMOP(mc)
	if m3.Sched != SchedMOP || m3.MOP.Wakeup != WakeupCAM2Src {
		t.Fatal("WithMOP wrong")
	}
}

func TestValidationRejections(t *testing.T) {
	cases := []struct {
		mutate func(*Machine)
		want   string
	}{
		{func(m *Machine) { m.Width = 0 }, "width"},
		{func(m *Machine) { m.ROBEntries = 2 }, "ROB"},
		{func(m *Machine) { m.IQEntries = -1 }, "queue"},
		{func(m *Machine) { m.IntALUs = 0 }, "ALU"},
		{func(m *Machine) { m.FetchBufEntries = 1 }, "fetch buffer"},
		{func(m *Machine) { m.FrontLatency = 0 }, "latencies"},
		{func(m *Machine) { m.MOP.MaxMOPSize = 1 }, "MOP size"},
		{func(m *Machine) { m.MOP.ScopeGroups = 0 }, "scope"},
		{func(m *Machine) { m.MOP.DetectionDelay = -1 }, "negative"},
		{func(m *Machine) { m.Mem.DL1.LineBytes = 60 }, "cache"},
	}
	for i, c := range cases {
		m := Default()
		c.mutate(&m)
		err := m.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: err = %v, want substring %q", i, err, c.want)
		}
	}
}

func TestFUCount(t *testing.T) {
	m := Default()
	if m.FUCount(int(isa.ClassIntALU)) != 4 || m.FUCount(int(isa.ClassMem)) != 2 {
		t.Fatal("FUCount mapping wrong")
	}
	if m.FUCount(int(isa.ClassNone)) != m.Width {
		t.Fatal("ClassNone must be width-bounded only")
	}
}

func TestStringers(t *testing.T) {
	names := map[SchedModel]string{
		SchedBase: "base", SchedTwoCycle: "2-cycle", SchedMOP: "macro-op",
		SchedSelectFreeSquashDep: "select-free-squash-dep", SchedSelectFreeScoreboard: "select-free-scoreboard",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d renders %q", m, m.String())
		}
	}
	if WakeupCAM2Src.String() != "2-src" || WakeupWiredOR.String() != "wired-OR" {
		t.Error("wakeup style names wrong")
	}
}

func TestDefaultMOPMatchesPaper(t *testing.T) {
	mc := DefaultMOP()
	if mc.ScopeGroups != 2 || mc.MaxMOPSize != 2 || mc.DetectionDelay != 3 {
		t.Error("MOP defaults diverge from Section 6.2")
	}
	if !mc.GroupIndependent || !mc.LastArrivingFilter {
		t.Error("Sections 5.4.1/5.4.2 mechanisms must default on")
	}
}
