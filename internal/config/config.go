// Package config defines the machine and scheduler configurations used by
// the simulator. Default values reproduce Table 1 of the paper and the
// scheduler configurations of Section 6.2.
package config

import (
	"fmt"

	"macroop/internal/branch"
	"macroop/internal/cache"
)

// SchedModel selects the instruction scheduling logic (Section 6.2).
type SchedModel int

// Scheduler models evaluated in the paper.
const (
	// SchedBase is "base scheduling": ideally pipelined scheduling logic,
	// conceptually equivalent to atomic (1-cycle wakeup+select) scheduling
	// with one extra pipeline stage. All results are normalized to it.
	SchedBase SchedModel = iota
	// SchedTwoCycle pipelines wakeup and select into separate cycles,
	// leaving a one-cycle bubble between a single-cycle instruction and
	// its dependents.
	SchedTwoCycle
	// SchedMOP is macro-op scheduling built on 2-cycle scheduling logic.
	SchedMOP
	// SchedSelectFreeSquashDep is select-free scheduling, Squash Dep
	// select-4 configuration of Brown et al. [8].
	SchedSelectFreeSquashDep
	// SchedSelectFreeScoreboard is select-free scheduling, Scoreboard
	// select-4 configuration of Brown et al. [8].
	SchedSelectFreeScoreboard
)

// String names the model as in the paper's figures.
func (m SchedModel) String() string {
	switch m {
	case SchedBase:
		return "base"
	case SchedTwoCycle:
		return "2-cycle"
	case SchedMOP:
		return "macro-op"
	case SchedSelectFreeSquashDep:
		return "select-free-squash-dep"
	case SchedSelectFreeScoreboard:
		return "select-free-scoreboard"
	}
	return fmt.Sprintf("sched(%d)", int(m))
}

// SchedKernel selects the scheduler implementation. Both kernels are
// cycle-exact models of the same five SchedModel variants; they differ
// only in data layout and therefore in simulation throughput.
type SchedKernel int

// Scheduler kernels.
const (
	// KernelBitset is the bit-parallel structure-of-arrays kernel:
	// entries live in parallel arrays indexed by an age-ring slot,
	// wakeup is a bitmask broadcast over per-producer consumer masks,
	// and select is a priority-decoder bit scan over the ready mask.
	// This is the default.
	KernelBitset SchedKernel = iota
	// KernelEntry is the original pointer-linked entry kernel, retained
	// as the reference model for differential testing.
	KernelEntry
)

// String names the kernel as reported in benchmark output.
func (k SchedKernel) String() string {
	switch k {
	case KernelBitset:
		return "bitset"
	case KernelEntry:
		return "entry"
	}
	return fmt.Sprintf("kernel(%d)", int(k))
}

// CoreLayout selects the data layout of the core pipeline (fetch ring,
// front-end queue, rename/MOP formation, ROB). Both layouts are
// cycle-exact models of the same machine; they differ only in how the
// in-flight instruction window is stored and therefore in simulation
// throughput — the core-side counterpart of SchedKernel.
type CoreLayout int

// Core pipeline layouts.
const (
	// LayoutSoA is the structure-of-arrays uop arena: in-flight
	// instructions are uint32 handles into parallel arrays with
	// generation-guarded free-list recycling, and the ROB, fetch ring,
	// and front-end queue are index rings over the arena. This is the
	// default.
	LayoutSoA CoreLayout = iota
	// LayoutEntry is the original pointer-linked uop layout, retained as
	// the reference model for differential testing.
	LayoutEntry
)

// String names the layout as reported in benchmark output.
func (l CoreLayout) String() string {
	switch l {
	case LayoutSoA:
		return "soa"
	case LayoutEntry:
		return "entry"
	}
	return fmt.Sprintf("layout(%d)", int(l))
}

// WakeupStyle selects the wakeup array style for macro-op scheduling
// (Section 2.2): CAM-style with two source comparators, or wired-OR-style
// dependence vectors with no source-count restriction.
type WakeupStyle int

// Wakeup array styles.
const (
	WakeupCAM2Src WakeupStyle = iota
	WakeupWiredOR
)

// String names the style as in Figure 13 ("2-src" / "wired-OR").
func (w WakeupStyle) String() string {
	if w == WakeupCAM2Src {
		return "2-src"
	}
	return "wired-OR"
}

// MOPConfig parameterizes macro-op detection and formation.
type MOPConfig struct {
	// Wakeup selects CAM-2src (union of MOP sources limited to two) or
	// wired-OR (unlimited).
	Wakeup WakeupStyle
	// ScopeGroups is the detection scope in rename groups; 2 groups of a
	// 4-wide machine give the paper's 8-instruction scope.
	ScopeGroups int
	// MaxMOPSize is the number of instructions groupable into one MOP.
	// The paper evaluates 2; larger values enable the "future work"
	// chained-MOP extension (see internal/mop).
	MaxMOPSize int
	// ExtraFormationStages models extra pipeline depth for MOP formation
	// (0, 1 or 2 in Figure 15).
	ExtraFormationStages int
	// DetectionDelay is the latency in cycles from examining dependences
	// to MOP pointers becoming visible (3 optimistic, 100 pessimistic in
	// Section 6.2).
	DetectionDelay int
	// GroupIndependent enables independent-MOP pairing (Section 5.4.1).
	GroupIndependent bool
	// LastArrivingFilter enables deletion of MOP pointers whose tail
	// operand arrives last (Section 5.4.2).
	LastArrivingFilter bool
	// PreciseCycleDetection replaces the conservative heuristic of
	// Section 5.1.1 with full transitive cycle detection (used to measure
	// the >90% coverage claim; much more expensive in hardware).
	PreciseCycleDetection bool
}

// DefaultMOP returns the configuration used for the paper's main results:
// wired-OR wakeup, 2x MOPs over an 8-instruction (2-group) scope, 1 extra
// formation stage, 3-cycle detection delay, independent MOPs and the
// last-arriving filter enabled.
func DefaultMOP() MOPConfig {
	return MOPConfig{
		Wakeup:               WakeupWiredOR,
		ScopeGroups:          2,
		MaxMOPSize:           2,
		ExtraFormationStages: 1,
		DetectionDelay:       3,
		GroupIndependent:     true,
		LastArrivingFilter:   true,
	}
}

// Machine is the full machine configuration (Table 1).
type Machine struct {
	// Width is fetch/issue/commit width (4 in Table 1).
	Width int
	// ROBEntries is the reorder buffer size (128).
	ROBEntries int
	// IQEntries is the unified issue queue size; <= 0 means unrestricted
	// (the paper's "unrestricted" configuration).
	IQEntries int
	// Functional unit counts (Table 1).
	IntALUs, IntMuls, FPALUs, FPMuls, MemPorts int
	// ReplayPenalty is the selective scheduling-replay penalty in cycles.
	ReplayPenalty int
	// FetchBufEntries bounds the fetch/decode buffer between the fetch
	// stage and queue insertion (fetch stalls when it is full).
	FetchBufEntries int
	// FrontLatency is the number of front-end stages between fetch and
	// queue insertion (Fetch, Decode, Rename, Rename, Queue → insert
	// visible 5 cycles after fetch), before any extra MOP formation
	// stages.
	FrontLatency int
	// ExecOffset is the number of stages between select and execute
	// (Disp, Disp, RF, RF → execute 5 cycles after issue, Figure 2).
	ExecOffset int
	// MinBranchPenalty is the minimum misprediction recovery time
	// (Table 1: at least 14 cycles).
	MinBranchPenalty int

	// WatchdogCycles is the forward-progress watchdog window: if no
	// instruction commits for this many consecutive cycles, the run
	// aborts with a typed deadlock error and a pipeline state dump.
	// 0 means DefaultWatchdogCycles; negative disables the watchdog.
	WatchdogCycles int
	// ReplayStormLimit is the per-entry scheduling-replay count above
	// which the scheduler reports a livelock (0 = the scheduler's
	// built-in default of 10000).
	ReplayStormLimit int

	Sched  SchedModel
	Kernel SchedKernel
	Layout CoreLayout
	MOP    MOPConfig

	Branch branch.Config
	Mem    cache.HierarchyConfig
}

// Default returns Table 1's machine with the base scheduler and a 32-entry
// issue queue.
func Default() Machine {
	return Machine{
		Width:            4,
		ROBEntries:       128,
		IQEntries:        32,
		IntALUs:          4,
		IntMuls:          2,
		FPALUs:           2,
		FPMuls:           2,
		MemPorts:         2,
		ReplayPenalty:    2,
		FetchBufEntries:  32,
		FrontLatency:     5,
		ExecOffset:       5,
		MinBranchPenalty: 14,
		Sched:            SchedBase,
		MOP:              DefaultMOP(),
		Branch:           branch.DefaultConfig(),
		Mem: cache.HierarchyConfig{
			IL1:        cache.Config{Name: "IL1", SizeBytes: 16 * 1024, Assoc: 2, LineBytes: 64, Latency: 2},
			DL1:        cache.Config{Name: "DL1", SizeBytes: 16 * 1024, Assoc: 4, LineBytes: 64, Latency: 2},
			L2:         cache.Config{Name: "L2", SizeBytes: 256 * 1024, Assoc: 4, LineBytes: 128, Latency: 8},
			MemLatency: 100,
		},
	}
}

// Unrestricted returns the machine with an effectively unlimited issue
// queue (the paper's "unrestricted" configuration keeps the 128-entry ROB,
// which then bounds the window).
func Unrestricted() Machine {
	m := Default()
	m.IQEntries = 0
	return m
}

// Validate checks configuration consistency.
func (m Machine) Validate() error {
	switch {
	case m.Width <= 0:
		return fmt.Errorf("config: non-positive width")
	case m.ROBEntries < m.Width:
		return fmt.Errorf("config: ROB smaller than machine width")
	case m.IQEntries < 0:
		return fmt.Errorf("config: negative issue queue size")
	case m.IntALUs <= 0 || m.MemPorts <= 0:
		return fmt.Errorf("config: need at least one ALU and one memory port")
	case m.FetchBufEntries < m.Width:
		return fmt.Errorf("config: fetch buffer smaller than machine width")
	case m.ReplayPenalty < 0 || m.FrontLatency < 1 || m.ExecOffset < 0:
		return fmt.Errorf("config: invalid pipeline latencies")
	case m.MOP.MaxMOPSize < 2 || m.MOP.MaxMOPSize > 8:
		return fmt.Errorf("config: MOP size must be between 2 and 8")
	case m.MOP.MaxMOPSize > 2 && m.MOP.Wakeup != WakeupWiredOR:
		return fmt.Errorf("config: chained MOPs (size > 2) require wired-OR wakeup (a 2-comparator CAM cannot track the source union)")
	case m.MOP.ScopeGroups < 1:
		return fmt.Errorf("config: MOP scope must be at least one group")
	case m.MOP.DetectionDelay < 0 || m.MOP.ExtraFormationStages < 0:
		return fmt.Errorf("config: negative MOP latencies")
	case m.Kernel != KernelBitset && m.Kernel != KernelEntry:
		return fmt.Errorf("config: unknown scheduler kernel %v", m.Kernel)
	case m.Layout != LayoutSoA && m.Layout != LayoutEntry:
		return fmt.Errorf("config: unknown core layout %v", m.Layout)
	}
	for _, c := range []cache.Config{m.Mem.IL1, m.Mem.DL1, m.Mem.L2} {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("config: %w", err)
		}
	}
	if err := m.Branch.Validate(); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	return nil
}

// DefaultWatchdogCycles is the no-commit window used when WatchdogCycles
// is zero. The longest legitimate commit gap is one full-ROB drain of
// serialized memory-latency misses (≈128 × ~110 cycles); the default
// keeps comfortably above it.
const DefaultWatchdogCycles = 50_000

// EffectiveWatchdog resolves the watchdog window: the configured value,
// the default when 0, or 0 (disabled) when negative.
func (m Machine) EffectiveWatchdog() int64 {
	switch {
	case m.WatchdogCycles < 0:
		return 0
	case m.WatchdogCycles == 0:
		return DefaultWatchdogCycles
	}
	return int64(m.WatchdogCycles)
}

// WithWatchdog returns a copy with the given watchdog window
// (0 = default, negative = disabled).
func (m Machine) WithWatchdog(cycles int) Machine {
	m.WatchdogCycles = cycles
	return m
}

// FUCount returns the number of functional units of the given class.
func (m Machine) FUCount(class int) int {
	switch class {
	case 0:
		return m.IntALUs
	case 1:
		return m.IntMuls
	case 2:
		return m.FPALUs
	case 3:
		return m.FPMuls
	case 4:
		return m.MemPorts
	}
	return m.Width // ClassNone — no constraint beyond width
}

// WithSched returns a copy using the given scheduler model.
func (m Machine) WithSched(s SchedModel) Machine {
	m.Sched = s
	return m
}

// WithKernel returns a copy using the given scheduler kernel.
func (m Machine) WithKernel(k SchedKernel) Machine {
	m.Kernel = k
	return m
}

// WithLayout returns a copy using the given core pipeline layout.
func (m Machine) WithLayout(l CoreLayout) Machine {
	m.Layout = l
	return m
}

// WithIQ returns a copy with the given issue queue size (0 = unrestricted).
func (m Machine) WithIQ(entries int) Machine {
	m.IQEntries = entries
	return m
}

// WithMOP returns a copy using macro-op scheduling with the given MOP
// configuration.
func (m Machine) WithMOP(mop MOPConfig) Machine {
	m.Sched = SchedMOP
	m.MOP = mop
	return m
}
