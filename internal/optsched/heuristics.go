package optsched

import (
	"fmt"

	"macroop/internal/isa"
)

// Heuristic identifies one of the paper's scheduling-loop models replayed
// deterministically over the window model.
type Heuristic int

// The four heuristics compared against the optimum, in display order.
const (
	HeurBase Heuristic = iota
	HeurTwoCycle
	HeurMOP
	HeurSelectFree
	NumHeuristics
)

var heurNames = [NumHeuristics]string{"base", "2-cycle", "macro-op", "select-free"}

// String names the heuristic as in the paper's figures (matching
// config.SchedModel naming).
func (h Heuristic) String() string {
	if h >= 0 && h < NumHeuristics {
		return heurNames[h]
	}
	return fmt.Sprintf("heur(%d)", int(h))
}

// Heuristics returns the four heuristics in display order.
func Heuristics() []Heuristic {
	return []Heuristic{HeurBase, HeurTwoCycle, HeurMOP, HeurSelectFree}
}

// Schedule is a complete issue-time assignment for one window.
type Schedule struct {
	Issue  []int // per-uop issue cycle, >= 1
	Cycles int   // makespan: the cycle by which every result is available
}

// mopScope is the macro-op pairing scope in instructions (the paper's
// 2-group × 4-wide = 8-instruction detection scope).
const mopScope = 8

// effLat is a uop's effective completion latency: at least one cycle
// (STD's architectural latency is 0 but its slot still spans a cycle).
func effLat(u *Uop) int {
	if u.Lat < 1 {
		return 1
	}
	return u.Lat
}

// edgeLat is the producer->consumer wakeup latency of producer d under
// heuristic h: the base (and select-free) scheduling loops wake
// dependents a full producer latency later; the 2-cycle loop (and the
// macro-op loop built on it) cannot wake a dependent sooner than two
// cycles after a single-cycle producer.
func edgeLat(w *Window, d int, h Heuristic) int {
	l := effLat(&w.Uops[d])
	if (h == HeurTwoCycle || h == HeurMOP) && l < 2 {
		return 2
	}
	return l
}

// normalized clamps a resource vector so every class has at least one
// unit and the width is at least one — both the heuristics and the exact
// solver schedule against the same normalized vector, which is what
// keeps the admissibility invariant meaningful on degenerate configs.
func (r Resources) normalized() Resources {
	if r.Width < 1 {
		r.Width = 1
	}
	for c := range r.Units {
		if r.Units[c] < 1 {
			r.Units[c] = 1
		}
	}
	if r.ReplayPenalty < 1 {
		r.ReplayPenalty = 1
	}
	return r
}

// makespan computes the completion cycle of a full issue assignment.
func makespan(w *Window, issue []int) int {
	m := 0
	for i := range w.Uops {
		if f := issue[i] + effLat(&w.Uops[i]); f > m {
			m = f
		}
	}
	return m
}

// RunHeuristic replays heuristic h over the window as a deterministic
// age-ordered list scheduler: every uop is present from cycle 0 and
// selectable from cycle 1, capacity is the normalized resource vector,
// and ties are broken by program order (oldest first), mirroring the
// age-based select of internal/sched. The returned schedule is always
// feasible in the relaxed base-latency model (ValidateSchedule passes),
// because the 2-cycle, macro-op, and select-free loops only ever delay
// issue relative to base constraints — this is the property that makes
// the exact solver admissible against every heuristic.
func RunHeuristic(w *Window, res Resources, h Heuristic) Schedule {
	res = res.normalized()
	n := len(w.Uops)
	issue := make([]int, n)
	nextTry := make([]int, n) // select-free replay gate; 0 = free

	// Macro-op pairing: greedy in program order, one pair per uop, head
	// is a value-generating single-cycle candidate, tail is a candidate
	// within scope whose only in-window dependence is the head (the
	// conservative cycle-free condition: no third producer can force the
	// forced tail slot to violate a dependence).
	pairTail := make([]int, n)
	pairHead := make([]int, n)
	for i := range pairTail {
		pairTail[i], pairHead[i] = -1, -1
	}
	if h == HeurMOP {
		for head := 0; head < n; head++ {
			if pairHead[head] >= 0 || pairTail[head] >= 0 || !w.Uops[head].Op.IsValueGenCandidate() {
				continue
			}
			for tail := head + 1; tail < n && tail < head+mopScope; tail++ {
				if pairHead[tail] >= 0 || !w.Uops[tail].Op.IsMOPCandidate() || len(w.Uops[tail].Deps) == 0 {
					continue
				}
				only := true
				for _, d := range w.Uops[tail].Deps {
					if int(d) != head {
						only = false
						break
					}
				}
				if only {
					pairTail[head], pairHead[tail] = tail, head
					break
				}
			}
		}
	}

	// forcedAt[i] > 0 pins a MOP tail to issue exactly one cycle after
	// its head, with capacity reserved at the head's issue (pend*).
	forcedAt := make([]int, n)
	pendW := 0
	var pendU [isa.NumClasses]int

	remaining := n
	for t := 1; remaining > 0; t++ {
		widthLeft := res.Width - pendW
		var unitLeft [isa.NumClasses]int
		for c := range unitLeft {
			unitLeft[c] = res.Units[c] - pendU[c]
		}
		pendW = 0
		for c := range pendU {
			pendU[c] = 0
		}

		for i := 0; i < n; i++ {
			if issue[i] != 0 {
				continue
			}
			u := &w.Uops[i]
			if forcedAt[i] == t {
				// Reserved MOP tail: issues unconditionally this cycle.
				issue[i] = t
				remaining--
				continue
			}
			if forcedAt[i] != 0 {
				continue // pinned to a later cycle
			}
			ready := t >= nextTry[i]
			for _, d := range u.Deps {
				dj := int(d)
				if issue[dj] == 0 || t < issue[dj]+edgeLat(w, dj, h) {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			if !consumes(u.Class) {
				// STD: occupies neither an issue slot nor a unit.
				issue[i] = t
				remaining--
				continue
			}
			if widthLeft < 1 || unitLeft[u.Class] < 1 {
				if h == HeurSelectFree {
					// Speculatively woken but lost arbitration: squash
					// and re-request after the replay penalty.
					nextTry[i] = t + res.ReplayPenalty
				}
				continue
			}
			widthLeft--
			unitLeft[u.Class]--
			issue[i] = t
			remaining--
			if tail := pairTail[i]; tail >= 0 {
				tc := w.Uops[tail].Class
				if pendW < res.Width && pendU[tc] < res.Units[tc] {
					pendW++
					pendU[tc]++
					forcedAt[tail] = t + 1
				} else {
					// No room to guarantee the fused slot: delete the
					// MOP pointer and let the tail schedule normally.
					pairTail[i], pairHead[tail] = -1, -1
				}
			}
		}
	}
	return Schedule{Issue: issue, Cycles: makespan(w, issue)}
}

// ValidateSchedule checks that an issue assignment is feasible in the
// relaxed base-latency window model: every uop issues at cycle >= 1, no
// earlier than each producer's issue plus the producer's effective
// latency, and no cycle exceeds the issue width or any unit count
// (ClassNone uops are exempt from capacity). Every heuristic schedule
// and every exact-solver schedule must pass; the gap pipeline counts a
// violation of this check as an admissibility violation.
func ValidateSchedule(w *Window, res Resources, issue []int) error {
	res = res.normalized()
	if len(issue) != len(w.Uops) {
		return fmt.Errorf("optsched: schedule has %d issue slots for %d uops", len(issue), len(w.Uops))
	}
	width := make(map[int]int)
	units := make(map[int]*[isa.NumClasses]int)
	for i := range w.Uops {
		u := &w.Uops[i]
		if issue[i] < 1 {
			return fmt.Errorf("optsched: uop %d issues at cycle %d (< 1)", i, issue[i])
		}
		for _, d := range u.Deps {
			dj := int(d)
			if need := issue[dj] + effLat(&w.Uops[dj]); issue[i] < need {
				return fmt.Errorf("optsched: uop %d issues at %d before producer %d completes at %d", i, issue[i], dj, need)
			}
		}
		if !consumes(u.Class) {
			continue
		}
		width[issue[i]]++
		if width[issue[i]] > res.Width {
			return fmt.Errorf("optsched: cycle %d issues %d uops (width %d)", issue[i], width[issue[i]], res.Width)
		}
		cu := units[issue[i]]
		if cu == nil {
			cu = new([isa.NumClasses]int)
			units[issue[i]] = cu
		}
		cu[u.Class]++
		if cu[u.Class] > res.Units[u.Class] {
			return fmt.Errorf("optsched: cycle %d issues %d uops of class %d (%d units)", issue[i], cu[u.Class], u.Class, res.Units[u.Class])
		}
	}
	return nil
}
