package optsched

import (
	"context"
	"math"

	"macroop/internal/config"
	"macroop/internal/program"
)

// GapSpec bounds one heuristic-vs-optimum gap run over a benchmark.
type GapSpec struct {
	Window     int   // uops per window (default 32, clamped to [MinWindow, MaxWindow])
	Stride     int   // uops between window starts (default Window)
	MaxWindows int   // windows per benchmark (default 8)
	NodeBudget int64 // exact-search node budget per window (default DefaultNodeBudget)
}

// WithDefaults resolves zero fields to the pipeline defaults.
func (s GapSpec) WithDefaults() GapSpec {
	if s.Window == 0 {
		s.Window = 32
	}
	if s.Window < MinWindow {
		s.Window = MinWindow
	}
	if s.Window > MaxWindow {
		s.Window = MaxWindow
	}
	if s.Stride <= 0 {
		s.Stride = s.Window
	}
	if s.MaxWindows <= 0 {
		s.MaxWindows = 8
	}
	if s.NodeBudget <= 0 {
		s.NodeBudget = DefaultNodeBudget
	}
	return s
}

// BenchGap aggregates one benchmark's windows: summed cycles for the
// exact schedule (upper bound), its certified lower bound, and each
// heuristic replay over the identical windows. Violations counts
// admissibility failures — any schedule failing ValidateSchedule, or an
// exact result exceeding a heuristic on the same window — and must be
// zero on every run; a non-zero count means the oracle itself is broken.
type BenchGap struct {
	Bench          string           `json:"bench"`
	Windows        int              `json:"windows"`
	OptimalWindows int              `json:"optimal_windows"` // proven-optimal windows
	OptCycles      int64            `json:"opt_cycles"`      // summed best-found makespans
	BoundCycles    int64            `json:"bound_cycles"`    // summed certified lower bounds
	Nodes          int64            `json:"nodes"`           // summed search nodes
	Violations     int              `json:"violations"`
	Heur           map[string]int64 `json:"heuristic_cycles"` // heuristic name -> summed makespans
}

// GapPct returns the heuristic's cycle overhead over the optimum in
// percent (the headline number of the gap table).
func (g BenchGap) GapPct(h Heuristic) float64 {
	if g.OptCycles == 0 {
		return 0
	}
	return float64(g.Heur[h.String()]-g.OptCycles) / float64(g.OptCycles) * 100
}

// RunGap extracts windows from the benchmark program, replays all four
// heuristics over each, solves each window exactly (seeded with the best
// heuristic schedule), and aggregates. Cancelling the context returns
// the partial aggregate plus ctx.Err().
func RunGap(ctx context.Context, p *program.Program, m config.Machine, spec GapSpec) (BenchGap, error) {
	spec = spec.WithDefaults()
	res := ResourcesFrom(m)
	g := BenchGap{Bench: p.Name, Heur: make(map[string]int64, int(NumHeuristics))}
	for _, h := range Heuristics() {
		g.Heur[h.String()] = 0
	}
	solver := Solver{NodeBudget: spec.NodeBudget}

	wins := Extract(p, m, ExtractSpec{Window: spec.Window, Stride: spec.Stride, MaxWindows: spec.MaxWindows})
	for wi := range wins {
		w := &wins[wi]
		if err := ctx.Err(); err != nil {
			return g, err
		}
		var scheds [NumHeuristics]Schedule
		best := Schedule{Cycles: math.MaxInt}
		for _, h := range Heuristics() {
			s := RunHeuristic(w, res, h)
			if err := ValidateSchedule(w, res, s.Issue); err != nil {
				g.Violations++
			}
			scheds[h] = s
			if s.Cycles < best.Cycles {
				best = s
			}
		}
		out, err := solver.Solve(ctx, w, res, best)
		if err != nil {
			return g, err
		}
		if err := ValidateSchedule(w, res, out.Issue); err != nil {
			g.Violations++
		}
		g.Windows++
		if out.Optimal {
			g.OptimalWindows++
		}
		g.OptCycles += int64(out.Cycles)
		g.BoundCycles += int64(out.Bound)
		g.Nodes += out.Nodes
		for _, h := range Heuristics() {
			g.Heur[h.String()] += int64(scheds[h].Cycles)
			if out.Cycles > scheds[h].Cycles {
				g.Violations++
			}
		}
	}
	return g, nil
}
