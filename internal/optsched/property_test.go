package optsched

import (
	"context"
	"math/rand"
	"testing"

	"macroop/internal/config"
	"macroop/internal/isa"
	"macroop/internal/workload"
)

// benchWindows extracts windows from a generated benchmark program.
func benchWindows(t *testing.T, bench string, spec ExtractSpec) []Window {
	t.Helper()
	prof, err := workload.ByName(bench)
	if err != nil {
		t.Fatalf("workload %s: %v", bench, err)
	}
	p, err := workload.Generate(prof)
	if err != nil {
		t.Fatalf("generate %s: %v", bench, err)
	}
	wins := Extract(p, config.Default(), spec)
	if len(wins) == 0 {
		t.Fatalf("no windows extracted from %s", bench)
	}
	for i := range wins {
		if err := wins[i].Validate(); err != nil {
			t.Fatalf("%s window %d: %v", bench, i, err)
		}
	}
	return wins
}

// TestAdmissibilityOnBenchmarks is the oracle's core property on real
// windows: for every extracted window, the exact result never exceeds
// any heuristic, every schedule validates, and bounds are consistent.
func TestAdmissibilityOnBenchmarks(t *testing.T) {
	res := defRes()
	for _, bench := range []string{"gzip", "mcf", "vortex"} {
		for _, size := range []int{16, 32} {
			for _, w := range benchWindows(t, bench, ExtractSpec{Window: size, MaxWindows: 4}) {
				w := w
				solveAll(t, &w, res, 50_000)
			}
		}
	}
}

// bruteOptimum exhaustively enumerates dependence-respecting schedules —
// every feasible subset each cycle, including empty and non-maximal ones
// — and returns the minimum makespan. It is the independent ground truth
// the branch-and-bound's dominance arguments are checked against.
// ClassNone uops issue at their ready time (they consume no resources,
// so delaying one can only delay its consumers). ub must be an
// achievable makespan (a heuristic schedule's) so the search terminates.
func bruteOptimum(w *Window, res Resources, ub int) int {
	res = res.normalized()
	n := len(w.Uops)
	best := ub
	var dfs func(issue []int, numIss, c, maxFin int)
	dfs = func(issue []int, numIss, c, maxFin int) {
		next := append([]int(nil), issue...)
		nf, ni := maxFin, numIss
		// Free uops issue at their ready time.
		for changed := true; changed; {
			changed = false
			for i := 0; i < n; i++ {
				if next[i] != 0 || consumes(w.Uops[i].Class) {
					continue
				}
				r, ok := 1, true
				for _, d := range w.Uops[i].Deps {
					if next[d] == 0 {
						ok = false
						break
					}
					if v := next[d] + effLat(&w.Uops[d]); v > r {
						r = v
					}
				}
				if ok && r <= c {
					next[i] = r
					ni++
					if f := r + effLat(&w.Uops[i]); f > nf {
						nf = f
					}
					changed = true
				}
			}
		}
		if ni == n {
			if nf < best {
				best = nf
			}
			return
		}
		if nf >= best {
			return
		}
		if c+1 >= best {
			return // every remaining uop finishes at best or later
		}
		// Critical-path prune (obviously sound: pure longest-path with
		// infinite resources, so the solver's resource and dominance
		// reasoning is still checked by the enumeration itself).
		est := make([]int, n)
		bound := nf
		for i := 0; i < n; i++ {
			if next[i] != 0 {
				est[i] = next[i]
				continue
			}
			e := 1
			if consumes(w.Uops[i].Class) {
				e = c
			}
			for _, d := range w.Uops[i].Deps {
				if v := est[d] + effLat(&w.Uops[d]); v > e {
					e = v
				}
			}
			est[i] = e
			if f := e + effLat(&w.Uops[i]); f > bound {
				bound = f
			}
		}
		if bound >= best {
			return
		}
		var ready []int
		for i := 0; i < n; i++ {
			if next[i] != 0 || !consumes(w.Uops[i].Class) {
				continue
			}
			r, ok := 1, true
			for _, d := range w.Uops[i].Deps {
				if next[d] == 0 {
					ok = false
					break
				}
				if v := next[d] + effLat(&w.Uops[d]); v > r {
					r = v
				}
			}
			if ok && r <= c {
				ready = append(ready, i)
			}
		}
		// Every subset of the ready set, feasibility-checked.
		for sub := 0; sub < 1<<len(ready); sub++ {
			width := 0
			var units [isa.NumClasses]int
			feasible := true
			cand := append([]int(nil), next...)
			cf, ci := nf, ni
			for bit, i := range ready {
				if sub&(1<<bit) == 0 {
					continue
				}
				width++
				units[w.Uops[i].Class]++
				if width > res.Width || units[w.Uops[i].Class] > res.Units[w.Uops[i].Class] {
					feasible = false
					break
				}
				cand[i] = c
				ci++
				if f := c + effLat(&w.Uops[i]); f > cf {
					cf = f
				}
			}
			if feasible {
				dfs(cand, ci, c+1, cf)
			}
		}
	}
	dfs(make([]int, n), 0, 1, 0)
	return best
}

// TestExhaustiveAgreementTiny proves the branch-and-bound returns the
// true optimum on every window small enough to enumerate outright:
// extracted 8-uop benchmark windows plus randomized synthetic DAGs.
func TestExhaustiveAgreementTiny(t *testing.T) {
	res := defRes()
	check := func(t *testing.T, w *Window) {
		t.Helper()
		ub := 1 << 30
		var seed Schedule
		for _, h := range Heuristics() {
			s := RunHeuristic(w, res, h)
			if s.Cycles < ub {
				ub, seed = s.Cycles, s
			}
		}
		out, err := Solver{}.Solve(context.Background(), w, res, seed)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		if !out.Optimal {
			t.Fatalf("%d-uop window not proven optimal (bound %d, cycles %d)", len(w.Uops), out.Bound, out.Cycles)
		}
		if brute := bruteOptimum(w, res, ub); out.Cycles != brute {
			t.Fatalf("exact %d != exhaustive optimum %d (uops %+v)", out.Cycles, brute, w.Uops)
		}
	}

	for _, bench := range []string{"gzip", "parser"} {
		for _, w := range benchWindows(t, bench, ExtractSpec{Window: 8, Stride: 5, MaxWindows: 6}) {
			w := w
			check(t, &w)
		}
	}

	// Random DAGs over the full latency/class mix, seeded for
	// reproducibility.
	mix := []isa.Op{isa.ADD, isa.ADD, isa.ADD, isa.MUL, isa.LD, isa.FADD, isa.STA, isa.DIV}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(5) // 4..8 uops
		uops := make([]Uop, n)
		for i := range uops {
			op := mix[rng.Intn(len(mix))]
			var deps []int32
			for _, d := range rng.Perm(i) {
				if len(deps) == 2 {
					break
				}
				if rng.Intn(3) == 0 {
					deps = append(deps, int32(d))
				}
			}
			uops[i] = tu(op, deps...)
		}
		w := twin(uops...)
		check(t, w)
	}
}

// TestGapPipeline runs the full per-benchmark pipeline on one benchmark
// and asserts the aggregate invariants the service endpoint relies on.
func TestGapPipeline(t *testing.T) {
	prof, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.Generate(prof)
	if err != nil {
		t.Fatal(err)
	}
	g, err := RunGap(context.Background(), p, config.Default(), GapSpec{Window: 16, MaxWindows: 4, NodeBudget: 20_000})
	if err != nil {
		t.Fatalf("RunGap: %v", err)
	}
	if g.Bench != "gzip" || g.Windows != 4 {
		t.Fatalf("got bench %q windows %d, want gzip/4", g.Bench, g.Windows)
	}
	if g.Violations != 0 {
		t.Fatalf("%d admissibility violations", g.Violations)
	}
	if g.BoundCycles > g.OptCycles {
		t.Fatalf("bound %d above optimum %d", g.BoundCycles, g.OptCycles)
	}
	for _, h := range Heuristics() {
		if g.Heur[h.String()] < g.OptCycles {
			t.Fatalf("%v cycles %d below optimum %d", h, g.Heur[h.String()], g.OptCycles)
		}
	}
	// The pipeline is deterministic: a second run must agree exactly.
	g2, err := RunGap(context.Background(), p, config.Default(), GapSpec{Window: 16, MaxWindows: 4, NodeBudget: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if g.OptCycles != g2.OptCycles || g.Heur["base"] != g2.Heur["base"] || g.Nodes != g2.Nodes {
		t.Fatalf("gap pipeline nondeterministic: %+v vs %+v", g, g2)
	}
	// Cancellation surfaces ctx.Err without corrupting the partial result.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunGap(ctx, p, config.Default(), GapSpec{Window: 16, MaxWindows: 4}); err == nil {
		t.Fatal("cancelled RunGap returned nil error")
	}
}
