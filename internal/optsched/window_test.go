package optsched

import (
	"testing"

	"macroop/internal/config"
	"macroop/internal/isa"
	"macroop/internal/program"
)

func assemble(t *testing.T, text string) *program.Program {
	t.Helper()
	p, err := program.Assemble("t", text)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func depsOf(w *Window, i int) []int32 { return w.Uops[i].Deps }

func TestExtractDependences(t *testing.T) {
	// movi r1; addi r2 <- r1; sta [r2]; std r1; ld r3 <- [r2]; add r4 <- r3,r1
	p := assemble(t, `
movi r1, 64
addi r2, r1, 8
st r1, 0(r2)
ld r3, 0(r2)
add r4, r3, r1
halt
`)
	m := config.Default()
	wins := Extract(p, m, ExtractSpec{Window: 6, MaxWindows: 1})
	if len(wins) != 1 {
		t.Fatalf("got %d windows, want 1 (st expands to sta+std)", len(wins))
	}
	w := &wins[0]
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// Committed stream: 0 movi, 1 addi, 2 sta, 3 std, 4 ld, 5 add, (halt
	// excluded — Step returns ErrHalted before producing it).
	if n := w.Len(); n != 6 {
		t.Fatalf("window has %d uops, want 6", n)
	}
	wantOps := []isa.Op{isa.MOVI, isa.ADDI, isa.STA, isa.STD, isa.LD, isa.ADD}
	for i, op := range wantOps {
		if w.Uops[i].Op != op {
			t.Fatalf("uop %d is %v, want %v", i, w.Uops[i].Op, op)
		}
	}
	checks := []struct {
		i    int
		want []int32
	}{
		{0, nil},           // movi: no sources
		{1, []int32{0}},    // addi reads r1
		{2, []int32{1}},    // sta reads r2
		{3, []int32{0, 2}}, // std reads r1 (data) and pairs with the sta
		{4, []int32{1, 3}}, // ld reads r2 and forwards from the std (memory RAW)
		{5, []int32{4, 0}}, // add reads r3 and r1
	}
	for _, c := range checks {
		got := depsOf(w, c.i)
		if len(got) != len(c.want) {
			t.Fatalf("uop %d deps = %v, want %v", c.i, got, c.want)
		}
		seen := map[int32]bool{}
		for _, d := range got {
			seen[d] = true
		}
		for _, d := range c.want {
			if !seen[d] {
				t.Fatalf("uop %d deps = %v, missing %d", c.i, got, d)
			}
		}
	}
	// Load latency includes the DL1 hit.
	if want := isa.LD.Latency() + m.Mem.DL1.Latency; w.Uops[4].Lat != want {
		t.Fatalf("ld latency %d, want %d", w.Uops[4].Lat, want)
	}
	// STD consumes no issue resources.
	if w.Uops[3].Class != isa.ClassNone {
		t.Fatalf("std class %v, want ClassNone", w.Uops[3].Class)
	}
}

func TestExtractStrideAndCrossWindowDeps(t *testing.T) {
	// A dependence chain long enough for two windows: edges crossing the
	// window boundary must be dropped (producers outside are complete).
	p := assemble(t, `
movi r1, 1
add r1, r1, r1
add r1, r1, r1
add r1, r1, r1
add r1, r1, r1
add r1, r1, r1
halt
`)
	wins := Extract(p, config.Default(), ExtractSpec{Window: 3, Stride: 3, MaxWindows: 2})
	if len(wins) != 2 {
		t.Fatalf("got %d windows, want 2", len(wins))
	}
	if wins[1].Start != wins[0].Start+3 {
		t.Fatalf("second window starts at %d, want %d", wins[1].Start, wins[0].Start+3)
	}
	// First uop of window 2 depended on the last uop of window 1; the
	// edge is out of window and must be gone, keeping closure.
	if len(wins[1].Uops[0].Deps) != 0 {
		t.Fatalf("cross-window dep survived: %v", wins[1].Uops[0].Deps)
	}
	for i := range wins {
		if err := wins[i].Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestExtractShortProgram(t *testing.T) {
	// A program shorter than one window yields no windows, not a panic.
	p := assemble(t, "movi r1, 1\nhalt\n")
	if wins := Extract(p, config.Default(), ExtractSpec{Window: 16, MaxWindows: 4}); len(wins) != 0 {
		t.Fatalf("got %d windows from a 1-uop program", len(wins))
	}
}

func TestResourcesFromClamps(t *testing.T) {
	var m config.Machine // all zero
	r := ResourcesFrom(m).normalized()
	if r.Width < 1 || r.ReplayPenalty < 1 {
		t.Fatalf("unnormalized resources: %+v", r)
	}
	for c, u := range r.Units {
		if u < 1 {
			t.Fatalf("class %d has %d units after normalization", c, u)
		}
	}
}
