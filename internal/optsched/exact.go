package optsched

import (
	"context"
	"math"

	"macroop/internal/isa"
)

// DefaultNodeBudget is the per-window search-node budget used when a
// Solver does not set one. On the benchmark windows the vast majority of
// 32-uop searches close in well under this.
const DefaultNodeBudget = 200_000

// memoCap bounds the dominance memo; past it the search stops inserting
// (still sound, just prunes less).
const memoCap = 1 << 20

// Solver is the exact branch-and-bound window scheduler.
type Solver struct {
	// NodeBudget caps search nodes per Solve; <= 0 means
	// DefaultNodeBudget. On exhaustion Solve degrades to a certified
	// bound instead of hanging.
	NodeBudget int64
}

// Outcome is the result of one exact search.
type Outcome struct {
	// Cycles is the makespan of the best schedule found — an upper
	// bound on the optimum, and (because the search is seeded with the
	// best heuristic schedule) never worse than any heuristic.
	Cycles int
	// Bound is a certified lower bound on the optimal makespan: when
	// the search completes it equals Cycles; when the node budget (or
	// the context) cuts the search it is min(Cycles, the smallest
	// admissible lower bound over all abandoned subtrees).
	Bound int
	// Optimal reports Bound == Cycles: the schedule is proven optimal.
	Optimal bool
	// Nodes is the number of search nodes expanded.
	Nodes int64
	// Issue is the best schedule found (always passes ValidateSchedule).
	Issue []int
}

// Gap returns Cycles - Bound, the residual optimality gap in cycles
// (zero when proven optimal).
func (o Outcome) Gap() int { return o.Cycles - o.Bound }

// Solve finds the minimum-makespan dependence-respecting schedule of the
// window under the normalized resource vector, seeded with an incumbent
// schedule (callers pass the best heuristic schedule, which makes the
// oracle admissible by construction: the result can never exceed it).
// An invalid or missing seed falls back to the base heuristic.
//
// The search branches only on cycles where the ready set exceeds
// capacity — when everything ready fits, issuing all of it is dominant
// (resources are renewable per cycle, so pulling a ready uop into an
// idle slot can only relax later constraints). ClassNone uops issue the
// moment they are ready. Subtrees are pruned by an admissible bound
// (critical path over remaining uops, per-class and width resource
// counts) and by a dominance memo keyed on the issued set plus each
// unissued uop's cycle-relative readiness (shift-invariant, so a state
// reached later than an already-explored copy can be cut).
//
// On context cancellation Solve returns the same certified Outcome it
// returns on budget exhaustion, plus ctx.Err().
func (s Solver) Solve(ctx context.Context, w *Window, res Resources, seed Schedule) (Outcome, error) {
	res = res.normalized()
	n := len(w.Uops)
	if n == 0 {
		return Outcome{Optimal: true}, nil
	}
	if len(seed.Issue) != n {
		seed = RunHeuristic(w, res, HeurBase)
	}
	budget := s.NodeBudget
	if budget <= 0 {
		budget = DefaultNodeBudget
	}

	b := &bnb{
		ctx:       ctx,
		w:         w,
		res:       res,
		n:         n,
		lat:       make([]int, n),
		issue:     make([]int32, n),
		best:      seed.Cycles,
		bestIssue: make([]int32, n),
		budget:    budget,
		minOpen:   math.MaxInt,
		memo:      make(map[string]uint64),
		keyBuf:    make([]byte, 8+n),
		est:       make([]int, n),
	}
	for i := range w.Uops {
		b.lat[i] = effLat(&w.Uops[i])
		b.bestIssue[i] = int32(seed.Issue[i])
	}

	b.expand(1, 0)

	out := Outcome{Cycles: b.best, Bound: b.best, Nodes: b.nodes, Issue: make([]int, n)}
	for i, v := range b.bestIssue {
		out.Issue[i] = int(v)
	}
	if b.exhausted || b.cancelled {
		if b.minOpen < out.Bound {
			out.Bound = b.minOpen
		}
	}
	out.Optimal = out.Bound == out.Cycles
	if b.cancelled {
		return out, ctx.Err()
	}
	return out, nil
}

// bnb is the mutable search state of one Solve call.
type bnb struct {
	ctx context.Context
	w   *Window
	res Resources
	n   int
	lat []int // effective (and base-edge) latency per uop

	issue  []int32 // 0 = unissued
	numIss int

	best      int
	bestIssue []int32
	nodes     int64
	budget    int64
	exhausted bool
	cancelled bool
	minOpen   int // min admissible LB over abandoned subtrees

	memo   map[string]uint64 // state key -> packed (cycle, relative completion)
	keyBuf []byte
	est    []int // lower-bound scratch
}

// expand explores the subtree rooted at the current partial schedule,
// with c the next undecided cycle and maxFin the completion cycle of
// everything issued so far.
func (b *bnb) expand(c, maxFin int) {
	b.nodes++
	if b.nodes&1023 == 0 && b.ctx.Err() != nil {
		b.cancelled = true
	}
	if b.nodes > b.budget {
		b.exhausted = true
	}
	if b.exhausted || b.cancelled {
		if lb := b.lowerBound(c, maxFin); lb < b.minOpen {
			b.minOpen = lb
		}
		return
	}

	var auto []int32 // ClassNone uops issued here, undone on return
	defer func() {
		for _, i := range auto {
			b.issue[i] = 0
			b.numIss--
		}
	}()

	// Advance to the next decision: auto-issue free uops, skip cycles
	// with nothing ready.
	for {
		if b.numIss == b.n {
			if maxFin < b.best {
				b.best = maxFin
				copy(b.bestIssue, b.issue)
			}
			return
		}
		minNext := math.MaxInt
		progressed := false
		for i := 0; i < b.n; i++ {
			if b.issue[i] != 0 {
				continue
			}
			r, blocked := b.readyAt(i)
			if blocked {
				continue
			}
			if !consumes(b.w.Uops[i].Class) && r <= c {
				// Free uop: issuing at its exact ready time is dominant.
				b.issue[i] = int32(r)
				b.numIss++
				auto = append(auto, int32(i))
				if f := r + b.lat[i]; f > maxFin {
					maxFin = f
				}
				progressed = true
				continue
			}
			if r < c {
				r = c
			}
			if r < minNext {
				minNext = r
			}
		}
		if progressed {
			continue // readiness may have cascaded
		}
		if minNext > c {
			c = minNext
			continue
		}
		break // at least one consuming uop is ready at c
	}

	lb := b.lowerBound(c, maxFin)
	if lb >= b.best {
		return // incumbent cut (sound: cannot beat the best schedule)
	}
	if !b.memoVisit(c, maxFin) {
		return // a dominating copy of this state was already explored
	}

	// Gather the ready consuming set.
	var ready []int32
	var cnt [isa.NumClasses]int
	for i := 0; i < b.n; i++ {
		if b.issue[i] != 0 || !consumes(b.w.Uops[i].Class) {
			continue
		}
		if r, blocked := b.readyAt(i); !blocked && r <= c {
			ready = append(ready, int32(i))
			cnt[b.w.Uops[i].Class]++
		}
	}

	fits := len(ready) <= b.res.Width
	for cl := range cnt {
		if cnt[cl] > b.res.Units[cl] {
			fits = false
		}
	}
	if fits {
		// Dominant move: issue the entire ready set this cycle.
		nf := maxFin
		for _, i := range ready {
			b.issue[i] = int32(c)
			b.numIss++
			if f := c + b.lat[i]; f > nf {
				nf = f
			}
		}
		b.expand(c+1, nf)
		for _, i := range ready {
			b.issue[i] = 0
			b.numIss--
		}
		return
	}

	// Contention: branch over every maximal feasible subset.
	var used [isa.NumClasses]int
	b.subsets(ready, 0, c, maxFin, 0, &used, lb)
}

// readyAt returns the earliest cycle uop i could issue given the issued
// producers, or blocked if any producer is unissued.
func (b *bnb) readyAt(i int) (cycle int, blocked bool) {
	r := 1
	for _, d := range b.w.Uops[i].Deps {
		if b.issue[d] == 0 {
			return 0, true
		}
		if v := int(b.issue[d]) + b.lat[d]; v > r {
			r = v
		}
	}
	return r, false
}

// subsets enumerates maximal capacity-feasible subsets of the ready set
// (include-first, so the first leaf approximates the age-ordered greedy
// schedule and tightens the incumbent early). parentLB certifies every
// subtree skipped when the budget runs out mid-enumeration.
func (b *bnb) subsets(ready []int32, pos, c, maxFin, widthUsed int, used *[isa.NumClasses]int, parentLB int) {
	b.nodes++
	if b.nodes > b.budget {
		b.exhausted = true
	}
	if b.exhausted || b.cancelled {
		if parentLB < b.minOpen {
			b.minOpen = parentLB
		}
		return
	}
	if widthUsed == b.res.Width {
		// Width saturated: the subset is maximal no matter what remains.
		b.expand(c+1, maxFin)
		return
	}
	if pos == len(ready) {
		// Keep only maximal subsets: if any excluded ready uop still
		// fits, a strictly better (dominating) sibling includes it.
		for _, i := range ready {
			if b.issue[i] == 0 && widthUsed < b.res.Width && used[b.w.Uops[i].Class] < b.res.Units[b.w.Uops[i].Class] {
				return
			}
		}
		b.expand(c+1, maxFin)
		return
	}
	i := ready[pos]
	cl := b.w.Uops[i].Class
	if widthUsed < b.res.Width && used[cl] < b.res.Units[cl] {
		b.issue[i] = int32(c)
		b.numIss++
		used[cl]++
		nf := maxFin
		if f := c + b.lat[i]; f > nf {
			nf = f
		}
		b.subsets(ready, pos+1, c, nf, widthUsed+1, used, parentLB)
		used[cl]--
		b.issue[i] = 0
		b.numIss--
	}
	b.subsets(ready, pos+1, c, maxFin, widthUsed, used, parentLB)
}

// memoVisit records the state in the dominance memo and reports whether
// it must be explored. States are keyed by the issued mask plus each
// unissued uop's readiness offset relative to c (clamped to a byte) —
// shift-invariant, so two states with the same key pose the same
// residual scheduling problem relative to their cycles. A state is cut
// when an explored copy dominates it on BOTH coordinates: earlier (or
// equal) cycle AND earlier (or equal) issued-work completion relative to
// its cycle — the dominating copy reaches every completion this state
// can, no later.
func (b *bnb) memoVisit(c, maxFin int) bool {
	var mask uint64
	for i := 0; i < b.n; i++ {
		if b.issue[i] != 0 {
			mask |= 1 << uint(i)
			b.keyBuf[8+i] = 0
			continue
		}
		kr := 0
		for _, d := range b.w.Uops[i].Deps {
			if b.issue[d] == 0 {
				continue
			}
			if v := int(b.issue[d]) + b.lat[d] - c; v > kr {
				kr = v
			}
		}
		if kr > 255 {
			kr = 255
		}
		b.keyBuf[8+i] = byte(kr)
	}
	for k := 0; k < 8; k++ {
		b.keyBuf[k] = byte(mask >> (8 * k))
	}
	relFin := maxFin - c
	if relFin < 0 {
		relFin = 0 // a completion below c is irrelevant: remaining work finishes after c
	}
	key := string(b.keyBuf)
	if prev, ok := b.memo[key]; ok {
		prevC, prevRel := int(prev>>32), int(prev&0xffffffff)
		if prevC <= c && prevRel <= relFin {
			return false
		}
		b.memo[key] = uint64(c)<<32 | uint64(relFin)
		return true
	}
	if len(b.memo) < memoCap {
		b.memo[key] = uint64(c)<<32 | uint64(relFin)
	}
	return true
}

// lowerBound returns an admissible lower bound on any completion of the
// current partial schedule: the max of (a) the completion of what is
// already issued, (b) a critical-path DP over unissued uops (window
// order is topological, so one forward pass suffices), and (c) per-class
// and total-width resource counts — the remaining uops of a class need
// ceil(m/units) distinct cycles starting no earlier than c.
func (b *bnb) lowerBound(c, maxFin int) int {
	lb := maxFin
	var cnt [isa.NumClasses]int
	var minLatCls [isa.NumClasses]int
	for i := range minLatCls {
		minLatCls[i] = math.MaxInt
	}
	totalCons, minLatAll := 0, math.MaxInt
	for i := 0; i < b.n; i++ {
		if b.issue[i] != 0 {
			b.est[i] = int(b.issue[i])
			continue
		}
		u := &b.w.Uops[i]
		e := 1
		if consumes(u.Class) {
			e = c // decided cycles are behind us for resource-consuming uops
		}
		for _, d := range u.Deps {
			if v := b.est[d] + b.lat[d]; v > e {
				e = v
			}
		}
		b.est[i] = e
		if f := e + b.lat[i]; f > lb {
			lb = f
		}
		if consumes(u.Class) {
			cl := u.Class
			cnt[cl]++
			totalCons++
			if b.lat[i] < minLatCls[cl] {
				minLatCls[cl] = b.lat[i]
			}
			if b.lat[i] < minLatAll {
				minLatAll = b.lat[i]
			}
		}
	}
	if totalCons > 0 {
		if v := c + (totalCons+b.res.Width-1)/b.res.Width - 1 + minLatAll; v > lb {
			lb = v
		}
		for cl := range cnt {
			if cnt[cl] == 0 {
				continue
			}
			if v := c + (cnt[cl]+b.res.Units[cl]-1)/b.res.Units[cl] - 1 + minLatCls[cl]; v > lb {
				lb = v
			}
		}
	}
	return lb
}
