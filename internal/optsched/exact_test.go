package optsched

import (
	"context"
	"testing"

	"macroop/internal/config"
	"macroop/internal/isa"
)

// tu builds a test uop from an opcode and its producer indices, with the
// default machine's window-model latency.
func tu(op isa.Op, deps ...int32) Uop {
	return Uop{Op: op, Class: op.FUClass(), Lat: uopLat(op, config.Default()), Deps: deps}
}

// twin wraps uops into a window.
func twin(uops ...Uop) *Window {
	return &Window{Bench: "test", Uops: uops}
}

func defRes() Resources { return ResourcesFrom(config.Default()) }

// solveAll runs every heuristic plus the exact solver and validates each
// schedule, returning (heuristic cycles indexed by Heuristic, outcome).
func solveAll(t *testing.T, w *Window, res Resources, budget int64) ([NumHeuristics]int, Outcome) {
	t.Helper()
	if err := w.Validate(); err != nil {
		t.Fatalf("window invalid: %v", err)
	}
	var cycles [NumHeuristics]int
	best := Schedule{}
	for _, h := range Heuristics() {
		s := RunHeuristic(w, res, h)
		if err := ValidateSchedule(w, res, s.Issue); err != nil {
			t.Fatalf("%v schedule infeasible: %v", h, err)
		}
		if s.Cycles != makespan(w, s.Issue) {
			t.Fatalf("%v reports %d cycles, makespan is %d", h, s.Cycles, makespan(w, s.Issue))
		}
		cycles[h] = s.Cycles
		if best.Issue == nil || s.Cycles < best.Cycles {
			best = s
		}
	}
	out, err := Solver{NodeBudget: budget}.Solve(context.Background(), w, res, best)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if err := ValidateSchedule(w, res, out.Issue); err != nil {
		t.Fatalf("exact schedule infeasible: %v", err)
	}
	if got := makespan(w, out.Issue); got != out.Cycles {
		t.Fatalf("outcome reports %d cycles, schedule makespan is %d", out.Cycles, got)
	}
	if out.Bound > out.Cycles {
		t.Fatalf("lower bound %d exceeds best found %d", out.Bound, out.Cycles)
	}
	if out.Optimal != (out.Bound == out.Cycles) {
		t.Fatalf("Optimal=%v inconsistent with Bound=%d Cycles=%d", out.Optimal, out.Bound, out.Cycles)
	}
	for _, h := range Heuristics() {
		if out.Cycles > cycles[h] {
			t.Fatalf("admissibility violation: exact %d > %v %d", out.Cycles, h, cycles[h])
		}
	}
	return cycles, out
}

func TestSerialChain(t *testing.T) {
	// add -> add -> add -> add: base issues back to back (makespan 5),
	// the 2-cycle loop leaves a bubble per edge (8), macro-op fusion
	// recovers the intra-pair bubbles (6), the optimum equals base.
	w := twin(tu(isa.ADD), tu(isa.ADD, 0), tu(isa.ADD, 1), tu(isa.ADD, 2))
	cycles, out := solveAll(t, w, defRes(), 0)
	if cycles[HeurBase] != 5 || cycles[HeurTwoCycle] != 8 || cycles[HeurMOP] != 6 {
		t.Errorf("chain cycles = base %d, 2-cycle %d, mop %d; want 5, 8, 6",
			cycles[HeurBase], cycles[HeurTwoCycle], cycles[HeurMOP])
	}
	if !out.Optimal || out.Cycles != 5 {
		t.Errorf("exact = %d (optimal %v), want proven 5", out.Cycles, out.Optimal)
	}
}

func TestWidthBound(t *testing.T) {
	// Eight independent adds on a 4-wide machine: two full issue groups,
	// makespan 3, for every model (no dependences to stretch).
	uops := make([]Uop, 8)
	for i := range uops {
		uops[i] = tu(isa.ADD)
	}
	w := twin(uops...)
	cycles, out := solveAll(t, w, defRes(), 0)
	if !out.Optimal || out.Cycles != 3 {
		t.Errorf("exact = %d (optimal %v), want proven 3", out.Cycles, out.Optimal)
	}
	for _, h := range []Heuristic{HeurBase, HeurTwoCycle, HeurMOP} {
		if cycles[h] != 3 {
			t.Errorf("%v = %d, want 3", h, cycles[h])
		}
	}
	// Select-free arbitration losers pay the replay penalty: the second
	// issue group re-requests at cycle 3, not 2.
	if cycles[HeurSelectFree] != 4 {
		t.Errorf("select-free = %d, want 4", cycles[HeurSelectFree])
	}
}

func TestUnitBound(t *testing.T) {
	// Four independent muls but only two integer-mul units: two issue
	// cycles, last mul finishes at 2+3 = 5.
	w := twin(tu(isa.MUL), tu(isa.MUL), tu(isa.MUL), tu(isa.MUL))
	_, out := solveAll(t, w, defRes(), 0)
	if !out.Optimal || out.Cycles != 5 {
		t.Errorf("exact = %d (optimal %v), want proven 5", out.Cycles, out.Optimal)
	}
}

func TestPriorityMatters(t *testing.T) {
	// A long-latency chain competing with filler: the optimum must start
	// the critical op first even though age order favors the fillers.
	// div (20) feeding an add, plus six independent adds: critical path
	// 1+20+1 = issue div at 1, dependent add at 21 -> makespan 22.
	uops := []Uop{tu(isa.DIV)}
	for i := 0; i < 6; i++ {
		uops = append(uops, tu(isa.ADD))
	}
	uops = append(uops, tu(isa.ADD, 0))
	w := twin(uops...)
	_, out := solveAll(t, w, defRes(), 0)
	if !out.Optimal || out.Cycles != 22 {
		t.Errorf("exact = %d (optimal %v), want proven 22", out.Cycles, out.Optimal)
	}
}

func TestSelectFreePenalty(t *testing.T) {
	// Five adds contending for a width of 1: base retries every cycle
	// (makespan 6); select-free losers pay the 2-cycle replay penalty,
	// re-requesting on odd cycles only (makespan still bounded, >= base).
	res := defRes()
	res.Width = 1
	w := twin(tu(isa.ADD), tu(isa.ADD), tu(isa.ADD), tu(isa.ADD), tu(isa.ADD))
	cycles, _ := solveAll(t, w, res, 0)
	if cycles[HeurBase] != 6 {
		t.Errorf("base = %d, want 6", cycles[HeurBase])
	}
	if cycles[HeurSelectFree] < cycles[HeurBase] {
		t.Errorf("select-free %d beat base %d under pure contention", cycles[HeurSelectFree], cycles[HeurBase])
	}
}

func TestBudgetDegradesToCertifiedBound(t *testing.T) {
	// A contended window with a tiny node budget must return the seeded
	// heuristic schedule plus a certified bound, never hang or panic.
	uops := make([]Uop, 24)
	for i := range uops {
		if i%3 == 0 && i > 0 {
			uops[i] = tu(isa.MUL, int32(i-1))
		} else {
			uops[i] = tu(isa.ADD)
		}
	}
	w := twin(uops...)
	res := defRes()
	seed := RunHeuristic(w, res, HeurBase)
	out, err := Solver{NodeBudget: 3}.Solve(context.Background(), w, res, seed)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if out.Cycles > seed.Cycles {
		t.Errorf("budget-cut result %d worse than seed %d", out.Cycles, seed.Cycles)
	}
	if out.Bound > out.Cycles {
		t.Errorf("bound %d above best %d", out.Bound, out.Cycles)
	}
	if out.Bound < 1 {
		t.Errorf("bound %d is not a meaningful lower bound", out.Bound)
	}
	if err := ValidateSchedule(w, res, out.Issue); err != nil {
		t.Errorf("budget-cut schedule infeasible: %v", err)
	}
}

func TestSolveCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	uops := make([]Uop, 40)
	for i := range uops {
		uops[i] = tu(isa.ADD)
	}
	w := twin(uops...)
	res := defRes()
	seed := RunHeuristic(w, res, HeurBase)
	out, err := Solver{}.Solve(ctx, w, res, seed)
	if err == nil {
		// The ctx check runs every 1024 nodes; a search this small can
		// legitimately finish first. A non-nil error must be ctx's.
		return
	}
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out.Cycles != seed.Cycles && out.Cycles > seed.Cycles {
		t.Errorf("cancelled result %d worse than seed %d", out.Cycles, seed.Cycles)
	}
}

func TestEmptySeedFallsBack(t *testing.T) {
	w := twin(tu(isa.ADD), tu(isa.ADD, 0))
	out, err := Solver{}.Solve(context.Background(), w, defRes(), Schedule{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !out.Optimal || out.Cycles != 3 {
		t.Errorf("exact = %d (optimal %v), want proven 3", out.Cycles, out.Optimal)
	}
}

func TestValidateScheduleRejects(t *testing.T) {
	w := twin(tu(isa.ADD), tu(isa.ADD, 0))
	res := defRes()
	for name, issue := range map[string][]int{
		"short":          {1},
		"zero cycle":     {0, 2},
		"dep violation":  {1, 1},
		"width overflow": nil, // built below
	} {
		if name == "width overflow" {
			wide := twin(tu(isa.ADD), tu(isa.ADD), tu(isa.ADD), tu(isa.ADD), tu(isa.ADD))
			if err := ValidateSchedule(wide, res, []int{1, 1, 1, 1, 1}); err == nil {
				t.Errorf("%s: accepted", name)
			}
			continue
		}
		if err := ValidateSchedule(w, res, issue); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
