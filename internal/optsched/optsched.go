// Package optsched is the optimal-schedule oracle: an exact
// branch-and-bound scheduler over dependence-respecting issue orders on
// bounded windows (up to 64 uops) of the committed instruction stream,
// plus deterministic window-model replays of the paper's four scheduling
// heuristics (base, 2-cycle, macro-op, select-free). Comparing the two
// yields the heuristic-vs-optimum gap table the paper never had: how far
// each relaxed scheduling loop sits from the true optimum, not just from
// the other heuristics.
//
// The window model deliberately abstracts the full pipeline down to the
// scheduling subproblem both the exact solver and the heuristics share:
// a window's uops are all present in the issue queue at cycle 0 and
// selectable from cycle 1 (perfect fetch/rename), loads hit the DL1, and
// the per-cycle resources are the machine's issue width and functional
// unit counts. Every heuristic schedule is feasible under the relaxed
// (base-latency) constraint set the exact solver optimizes over, which
// is what makes the oracle admissible: optimum <= every heuristic, by
// construction, on every window (proven by the property tests).
package optsched

import (
	"fmt"

	"macroop/internal/config"
	"macroop/internal/functional"
	"macroop/internal/isa"
	"macroop/internal/program"
)

// MaxWindow is the largest supported window size: scheduled-set state is
// a 64-bit mask in the exact solver.
const MaxWindow = 64

// MinWindow is the smallest window the gap pipeline accepts. (The exact
// solver itself handles any size >= 1; tests use tiny windows.)
const MinWindow = 4

// Uop is one dynamic instruction of a window. Deps are window-relative
// producer indices, each strictly less than the uop's own index —
// windows are dependence-closed by construction because dependences in
// the committed stream always point backwards.
type Uop struct {
	Seq   int64     // dynamic sequence number in the committed stream
	PC    int       // static instruction index
	Op    isa.Op    // opcode (for rendering and MOP candidacy)
	Class isa.Class // functional-unit class (resource consumption)
	Lat   int       // window-model latency (loads include the DL1 hit)
	Deps  []int32   // window-relative producer indices, each < own index
}

// Window is one bounded, dependence-closed slice of a benchmark's
// committed uop stream.
type Window struct {
	Bench string // benchmark name (labelling only)
	Start int64  // Seq of the first uop
	Uops  []Uop
}

// Len returns the number of uops in the window.
func (w *Window) Len() int { return len(w.Uops) }

// Validate checks the dependence-closure invariant every extracted (or
// fuzzed) window must satisfy: every intra-window producer precedes its
// consumer, and latencies/classes are sane. The fuzz harness asserts it
// on every window extraction ever produces.
func (w *Window) Validate() error {
	if len(w.Uops) == 0 {
		return fmt.Errorf("optsched: empty window")
	}
	if len(w.Uops) > MaxWindow {
		return fmt.Errorf("optsched: window of %d uops exceeds the %d-uop bound", len(w.Uops), MaxWindow)
	}
	for i, u := range w.Uops {
		if u.Lat < 0 {
			return fmt.Errorf("optsched: uop %d has negative latency %d", i, u.Lat)
		}
		if u.Class >= isa.NumClasses {
			return fmt.Errorf("optsched: uop %d has invalid class %d", i, u.Class)
		}
		for _, d := range u.Deps {
			if d < 0 || int(d) >= i {
				return fmt.Errorf("optsched: uop %d (seq %d) depends on %d — window not dependence-closed", i, u.Seq, d)
			}
		}
	}
	return nil
}

// Resources is the per-cycle capacity the window model schedules
// against: total issue width plus per-class functional unit counts.
// ClassNone uops (STD) consume neither width nor a unit — they retire
// through the store queue, mirroring internal/sched's treatment.
type Resources struct {
	Width         int
	Units         [isa.NumClasses]int
	ReplayPenalty int // select-free squash penalty in cycles
}

// ResourcesFrom extracts the window model's resource vector from a
// machine configuration (Table 1 by default).
func ResourcesFrom(m config.Machine) Resources {
	var r Resources
	r.Width = m.Width
	r.Units[isa.ClassIntALU] = m.IntALUs
	r.Units[isa.ClassIntMul] = m.IntMuls
	r.Units[isa.ClassFP] = m.FPALUs
	r.Units[isa.ClassFPMul] = m.FPMuls
	r.Units[isa.ClassMem] = m.MemPorts
	r.ReplayPenalty = m.ReplayPenalty
	if r.ReplayPenalty < 1 {
		r.ReplayPenalty = 1
	}
	return r
}

// consumes reports whether class c occupies an issue slot and a unit.
func consumes(c isa.Class) bool { return c != isa.ClassNone }

// uopLat assigns the window-model latency: the opcode's fixed execution
// latency, with loads additionally paying the DL1 hit latency (the
// window model assumes first-level hits; the real hierarchy's variable
// latency is a documented abstraction gap).
func uopLat(op isa.Op, m config.Machine) int {
	lat := op.Latency()
	if op.IsLoad() {
		lat += m.Mem.DL1.Latency
	}
	return lat
}

// streamUop is one collected committed uop with absolute (stream-index)
// dependences, before windows are sliced out of the stream.
type streamUop struct {
	seq  int64
	pc   int
	op   isa.Op
	lat  int
	deps [4]int32 // absolute stream indices; -1 = unused
	ndep int
}

func (s *streamUop) addDep(d int32) {
	if d < 0 {
		return
	}
	for i := 0; i < s.ndep; i++ {
		if s.deps[i] == d {
			return
		}
	}
	if s.ndep < len(s.deps) {
		s.deps[s.ndep] = d
		s.ndep++
	}
}

// ExtractSpec bounds a window extraction.
type ExtractSpec struct {
	// Window is the uops per window (clamped to [1, MaxWindow]).
	Window int
	// Stride is the uop distance between consecutive window starts
	// (<= 0 means Window: non-overlapping tiling).
	Stride int
	// MaxWindows caps how many windows are extracted (<= 0 means 16).
	MaxWindows int
	// MaxInsts caps how many committed instructions are executed while
	// collecting uops (<= 0 means exactly enough for MaxWindows).
	MaxInsts int64
}

func (s ExtractSpec) withDefaults() ExtractSpec {
	if s.Window < 1 {
		s.Window = 1
	}
	if s.Window > MaxWindow {
		s.Window = MaxWindow
	}
	if s.Stride <= 0 {
		s.Stride = s.Window
	}
	if s.MaxWindows <= 0 {
		s.MaxWindows = 16
	}
	return s
}

// Extract runs the program functionally and slices its committed uop
// stream into dependence-closed windows. Dependences recorded per uop:
// register RAW (nearest earlier writer of each source), the STA -> STD
// pairing, and memory RAW (a load depends on the nearest earlier store
// data uop to the same word address). HALT terminates collection; a
// functional fault (e.g. a wild PC on a fuzzed program) simply ends the
// stream with whatever was collected. Extract never panics and every
// returned window satisfies Window.Validate.
func Extract(p *program.Program, m config.Machine, spec ExtractSpec) []Window {
	spec = spec.withDefaults()
	need := int64(spec.Window + (spec.MaxWindows-1)*spec.Stride)
	budget := spec.MaxInsts
	if budget <= 0 || budget > need {
		budget = need
	}

	stream := collectStream(p, m, budget)

	var wins []Window
	for start := 0; start+spec.Window <= len(stream) && len(wins) < spec.MaxWindows; start += spec.Stride {
		wins = append(wins, sliceWindow(p.Name, stream[start:start+spec.Window], start))
	}
	return wins
}

// collectStream executes up to budget committed instructions, recording
// each uop with its absolute-dependence edges.
func collectStream(p *program.Program, m config.Machine, budget int64) []streamUop {
	e := functional.NewExecutor(p)
	var d functional.DynInst

	stream := make([]streamUop, 0, budget)
	var lastWriter [isa.NumRegs]int32 // absolute index of last writer, -1 = outside
	for i := range lastWriter {
		lastWriter[i] = -1
	}
	lastSTD := make(map[uint64]int32) // word address -> absolute index of last store data

	for int64(len(stream)) < budget {
		if err := e.Step(&d); err != nil {
			break // halted or faulted: extract from what we have
		}
		idx := int32(len(stream))
		u := streamUop{seq: d.Seq, pc: d.PC, op: d.Inst.Op, lat: uopLat(d.Inst.Op, m)}
		if r := d.Inst.Src1; r != isa.NoReg && r.Valid() && r != isa.R0 {
			u.addDep(lastWriter[r])
		}
		if r := d.Inst.Src2; r != isa.NoReg && r.Valid() && r != isa.R0 {
			u.addDep(lastWriter[r])
		}
		switch {
		case d.Inst.Op == isa.STD:
			// The STD pairs with the immediately preceding STA.
			if idx > 0 && stream[idx-1].op == isa.STA {
				u.addDep(idx - 1)
			}
			lastSTD[d.MemAddr] = idx
		case d.Inst.Op.IsLoad():
			if sd, ok := lastSTD[d.MemAddr]; ok {
				u.addDep(sd) // memory RAW: forwarded from the store data
			}
		}
		if d.Inst.WritesReg() {
			lastWriter[d.Inst.Dest] = idx
		}
		stream = append(stream, u)
	}
	return stream
}

// sliceWindow converts one contiguous stream slice into a Window,
// dropping dependences that point before the window (their producers
// are architecturally complete by assumption) and re-basing the rest.
func sliceWindow(bench string, s []streamUop, base int) Window {
	w := Window{Bench: bench, Uops: make([]Uop, len(s))}
	w.Start = s[0].seq
	for i, su := range s {
		u := Uop{Seq: su.seq, PC: su.pc, Op: su.op, Class: su.op.FUClass(), Lat: su.lat}
		for k := 0; k < su.ndep; k++ {
			if rel := int(su.deps[k]) - base; rel >= 0 {
				u.Deps = append(u.Deps, int32(rel))
			}
		}
		w.Uops[i] = u
	}
	return w
}
