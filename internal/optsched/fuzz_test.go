package optsched

import (
	"testing"

	"macroop/internal/config"
	"macroop/internal/program"
)

// FuzzWindowExtract hardens the window extractor: any assemblable
// program prefix, under any extraction geometry, must produce windows
// without panicking, every window must be dependence-closed (Validate),
// and every heuristic replay over those windows must terminate with a
// schedule the base-model validator accepts. Programs that fault mid-run
// (wild indirect jumps) must degrade to a shorter stream, not an error.
func FuzzWindowExtract(f *testing.F) {
	seeds := []struct {
		text                   string
		window, stride, maxWin uint8
	}{
		{"movi r1, 100\nhalt\n", 4, 4, 2},
		{"loop: addi r1, r1, -1\nbne r1, r0, loop\nhalt", 16, 8, 4},
		{"movi r2, 64\nld r4, 8(r2)\nst r4, 16(r2)\nld r5, 16(r2)\nhalt", 8, 4, 3},
		{"jal fn\nhalt\nfn: jr (r31)", 3, 1, 2},
		{"movi r1, 3\nmul r2, r1, r1\ndiv r3, r2, r1\nfadd f: add r4, r3, r1\nhalt", 5, 5, 1},
		{"jr (r9)\nhalt", 64, 64, 1}, // wild jump: faults immediately
		{"movi r1, 1\nadd r1, r1, r1\nadd r1, r1, r1\nhalt", 0, 0, 0},
		{"st r1, 0(r30)\nst r2, 8(r30)\nld r3, 0(r30)\nhalt", 255, 255, 255},
	}
	for _, s := range seeds {
		f.Add(s.text, s.window, s.stride, s.maxWin)
	}
	m := config.Default()
	res := ResourcesFrom(m)
	f.Fuzz(func(t *testing.T, text string, window, stride, maxWin uint8) {
		p, err := program.Assemble("fuzz", text)
		if err != nil {
			return // rejecting malformed programs is the assembler's job
		}
		spec := ExtractSpec{Window: int(window), Stride: int(stride), MaxWindows: int(maxWin) % 8}
		wins := Extract(p, m, spec)
		if len(wins) > spec.withDefaults().MaxWindows {
			t.Fatalf("extracted %d windows, cap was %d", len(wins), spec.withDefaults().MaxWindows)
		}
		for wi := range wins {
			w := &wins[wi]
			if err := w.Validate(); err != nil {
				t.Fatalf("window %d not dependence-closed: %v\nprogram:\n%s", wi, err, text)
			}
			for _, h := range Heuristics() {
				s := RunHeuristic(w, res, h)
				if err := ValidateSchedule(w, res, s.Issue); err != nil {
					t.Fatalf("%v schedule infeasible on fuzzed window: %v", h, err)
				}
			}
		}
	})
}
