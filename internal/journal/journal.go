// Package journal implements the crash-consistent, write-ahead result
// journal behind resumable sweeps: an append-only file of checksummed
// key/value records, fsync'd on every append, that survives a kill -9 at
// any byte boundary. A sweep (experiments.RunMatrix, fault.RunCampaign)
// appends one record per completed cell; a re-run with the same journal
// path replays the intact records, skips those cells, and truncates any
// torn final record before appending new ones.
//
// # File format
//
// A journal file is the 6-byte header "MOPJ1\n" followed by zero or more
// frames:
//
//	uvarint(len(key)) | key | uvarint(len(value)) | value | 8-byte LE FNV-1a(key ++ value)
//
// Decoding stops at the first frame that is short, over-long, or fails
// its checksum — everything before it is recovered, everything from it on
// is discarded as a torn tail. A record is therefore durable exactly when
// its fsync'd Append returned, which is the write-ahead property resume
// relies on: a cell is either fully journaled or will be re-run.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
)

// header identifies a journal file (format version 1).
const header = "MOPJ1\n"

// MaxRecordBytes bounds one frame's key+value size. It exists so a
// corrupted length prefix reads as a torn tail instead of a gigantic
// allocation.
const MaxRecordBytes = 64 << 20

// ErrNotJournal reports a file that exists but does not start with the
// journal header — Open refuses to touch it rather than truncate
// something that was never a journal.
var ErrNotJournal = errors.New("journal: missing or corrupt file header")

// Record is one journaled key/value entry.
type Record struct {
	Key  string
	Data []byte
}

// Decode recovers every intact record from an encoded journal image. It
// never fails on corrupt or truncated input: decoding stops at the first
// damaged frame and clean reports the byte length of the intact prefix
// (including the header). A missing or damaged header yields (nil, 0,
// ErrNotJournal); torn or corrupt records after a good header are not an
// error. Later records with a duplicate key are kept (last-wins is the
// caller's index policy); Decode returns them all in file order.
func Decode(data []byte) (recs []Record, clean int, err error) {
	if len(data) < len(header) || string(data[:len(header)]) != header {
		return nil, 0, ErrNotJournal
	}
	off := len(header)
	for {
		rec, next, ok := decodeFrame(data, off)
		if !ok {
			return recs, off, nil
		}
		recs = append(recs, rec)
		off = next
	}
}

// decodeFrame decodes one frame at off, reporting the offset past it.
// ok=false means the remainder is torn or corrupt.
func decodeFrame(data []byte, off int) (rec Record, next int, ok bool) {
	keyLen, n := binary.Uvarint(data[off:])
	if n <= 0 || keyLen > MaxRecordBytes {
		return rec, 0, false
	}
	off += n
	if uint64(len(data)-off) < keyLen {
		return rec, 0, false
	}
	key := data[off : off+int(keyLen)]
	off += int(keyLen)
	valLen, n := binary.Uvarint(data[off:])
	if n <= 0 || valLen > MaxRecordBytes {
		return rec, 0, false
	}
	off += n
	if uint64(len(data)-off) < valLen+8 {
		return rec, 0, false
	}
	val := data[off : off+int(valLen)]
	off += int(valLen)
	sum := binary.LittleEndian.Uint64(data[off : off+8])
	if sum != checksum(key, val) {
		return rec, 0, false
	}
	return Record{Key: string(key), Data: append([]byte(nil), val...)}, off + 8, true
}

// checksum is FNV-1a over key then value.
func checksum(key, val []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	for _, b := range val {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// appendFrame encodes one record frame onto buf.
func appendFrame(buf []byte, key string, val []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = binary.AppendUvarint(buf, uint64(len(val)))
	buf = append(buf, val...)
	return binary.LittleEndian.AppendUint64(buf, checksum([]byte(key), val))
}

// Load reads a journal file read-only and returns its intact records.
// A missing file is an empty journal, not an error.
func Load(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	recs, _, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", err, path)
	}
	return recs, nil
}

// Journal is an open write-ahead journal: an append handle plus an
// in-memory last-wins index of every durable record. It is safe for
// concurrent use by the parallel cell workers of a sweep.
type Journal struct {
	path string

	mu    sync.Mutex
	f     *os.File
	index map[string][]byte
	n     int // records on disk (including superseded duplicates)
}

// Open opens (creating if absent) the journal at path, recovers every
// intact record, and truncates any torn tail so subsequent appends start
// on a clean frame boundary. An existing file that does not carry the
// journal header is refused with ErrNotJournal.
func Open(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{path: path, f: f, index: make(map[string][]byte)}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		if _, err := f.WriteString(header); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		return j, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	recs, clean, err := Decode(data)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %s", err, path)
	}
	if clean < len(data) {
		// Torn tail from a crash mid-append: cut back to the last intact
		// frame so the journal is append-clean again.
		if err := f.Truncate(int64(clean)); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(int64(clean), 0); err != nil {
		f.Close()
		return nil, err
	}
	for _, r := range recs {
		j.index[r.Key] = r.Data
	}
	j.n = len(recs)
	return j, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append durably records one key/value entry: the frame is written and
// fsync'd before Append returns, so a record observed by a later Open is
// exactly a record whose Append completed. Appending an existing key
// supersedes it (last wins).
func (j *Journal) Append(key string, val []byte) error {
	if len(key)+len(val) > MaxRecordBytes {
		return fmt.Errorf("journal: record %q exceeds %d bytes", key, MaxRecordBytes)
	}
	frame := appendFrame(nil, key, val)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: append to closed journal %s", j.path)
	}
	if _, err := j.f.Write(frame); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.index[key] = append([]byte(nil), val...)
	j.n++
	return nil
}

// Get returns the most recent durable value for key.
func (j *Journal) Get(key string) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	v, ok := j.index[key]
	return v, ok
}

// Len returns the number of distinct keys recovered or appended.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.index)
}

// Keys returns every distinct key in sorted order.
func (j *Journal) Keys() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	ks := make([]string, 0, len(j.index))
	for k := range j.index {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Close releases the append handle. Records already appended stay
// readable by a later Open.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
