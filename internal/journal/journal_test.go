package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// write builds a journal with the given records and returns its path.
func write(t *testing.T, recs ...Record) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "j.mopj")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := j.Append(r.Key, r.Data); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestAppendReopen: records appended in one session are all recovered by
// the next Open, with last-wins indexing for duplicate keys.
func TestAppendReopen(t *testing.T) {
	path := write(t,
		Record{"a", []byte("1")},
		Record{"b", []byte("2")},
		Record{"a", []byte("3")}, // supersedes the first "a"
	)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if got := j.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if v, ok := j.Get("a"); !ok || string(v) != "3" {
		t.Errorf(`Get("a") = %q, %v; want "3"`, v, ok)
	}
	if v, ok := j.Get("b"); !ok || string(v) != "2" {
		t.Errorf(`Get("b") = %q, %v; want "2"`, v, ok)
	}
	if _, ok := j.Get("c"); ok {
		t.Error(`Get("c") found a record that was never appended`)
	}
	// Appending after reopen extends the same file.
	if err := j.Append("c", []byte("4")); err != nil {
		t.Fatal(err)
	}
	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("Load found %d records, want 4 (duplicates kept in file order)", len(recs))
	}
}

// TestTornTailEveryOffset: truncating a valid journal at every possible
// byte offset must recover exactly the records whose frames lie wholly
// before the cut — never fewer, never a panic, never an error.
func TestTornTailEveryOffset(t *testing.T) {
	var want []Record
	for i := 0; i < 5; i++ {
		want = append(want, Record{fmt.Sprintf("cell-%d", i), []byte(fmt.Sprintf("payload %d", i))})
	}
	path := write(t, want...)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Frame boundaries: decode clean offsets incrementally.
	bounds := []int{len(header)}
	full, _, _ := Decode(data)
	if len(full) != 5 {
		t.Fatalf("full decode found %d records", len(full))
	}
	for i := range full {
		frame := appendFrame(nil, full[i].Key, full[i].Data)
		bounds = append(bounds, bounds[i]+len(frame))
	}
	for cut := 0; cut <= len(data); cut++ {
		recs, clean, err := Decode(data[:cut])
		if cut < len(header) {
			if err == nil {
				t.Fatalf("cut %d: headerless prefix decoded without error", cut)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		// Count frames wholly before the cut.
		wantN := 0
		for _, b := range bounds[1:] {
			if b <= cut {
				wantN++
			}
		}
		if len(recs) != wantN {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(recs), wantN)
		}
		if clean != bounds[wantN] {
			t.Fatalf("cut %d: clean prefix %d, want %d", cut, clean, bounds[wantN])
		}
		for i, r := range recs {
			if r.Key != want[i].Key || !bytes.Equal(r.Data, want[i].Data) {
				t.Fatalf("cut %d: record %d = %+v, want %+v", cut, i, r, want[i])
			}
		}
	}
}

// TestOpenTruncatesTornTail: Open on a journal with a torn final record
// cuts the tail, keeps the intact prefix, and appends cleanly after it.
func TestOpenTruncatesTornTail(t *testing.T) {
	path := write(t, Record{"a", []byte("1")}, Record{"b", []byte("2")})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: half of record "b" is on disk.
	torn := len(data) - 5
	if err := os.WriteFile(path, data[:torn], 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := j.Get("a"); !ok {
		t.Error("intact record lost with the torn tail")
	}
	if _, ok := j.Get("b"); ok {
		t.Error("torn record resurrected")
	}
	if err := j.Append("c", []byte("3")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Key != "a" || recs[1].Key != "c" {
		t.Fatalf("after truncate+append, records = %+v", recs)
	}
}

// TestCorruptMiddleRecord: a bit flip inside an early record stops
// recovery there — the damaged record and everything after it is
// discarded rather than trusted.
func TestCorruptMiddleRecord(t *testing.T) {
	path := write(t, Record{"a", []byte("payload-a")}, Record{"b", []byte("payload-b")})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(data, []byte("payload-a"))
	if i < 0 {
		t.Fatal("payload not found")
	}
	data[i] ^= 0x01
	recs, clean, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("recovered %d records past a corrupt frame, want 0", len(recs))
	}
	if clean != len(header) {
		t.Fatalf("clean prefix %d, want header only (%d)", clean, len(header))
	}
}

// TestOpenRefusesForeignFile: Open must not truncate a file that was
// never a journal.
func TestOpenRefusesForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notes.txt")
	if err := os.WriteFile(path, []byte("important notes, not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("Open accepted a non-journal file")
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "important notes, not a journal" {
		t.Fatalf("foreign file modified: %q, %v", data, err)
	}
}

// TestLoadMissingFile: a journal that does not exist yet is an empty
// journal, not an error — first runs start with no completed cells.
func TestLoadMissingFile(t *testing.T) {
	recs, err := Load(filepath.Join(t.TempDir(), "absent.mopj"))
	if err != nil || recs != nil {
		t.Fatalf("Load(absent) = %v, %v; want nil, nil", recs, err)
	}
}

// TestConcurrentAppend: parallel cell workers share one journal.
func TestConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.mopj")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			done <- j.Append(fmt.Sprintf("k%02d", i), []byte{byte(i)})
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != n {
		t.Fatalf("recovered %d keys, want %d", j2.Len(), n)
	}
}
