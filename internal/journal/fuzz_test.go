package journal

import (
	"bytes"
	"testing"
)

// FuzzJournalDecode: Decode over arbitrary bytes must never panic, must
// report a clean prefix it actually decoded, and every record it recovers
// must survive a re-encode/re-decode round trip bit-for-bit. Seeds cover
// a valid journal, torn tails, flipped checksums and hostile length
// prefixes.
func FuzzJournalDecode(f *testing.F) {
	valid := []byte(header)
	valid = appendFrame(valid, "cell|gzip|base", []byte(`{"ipc":2.49}`))
	valid = appendFrame(valid, "cell|mcf|base", []byte(`{"ipc":0.26}`))
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0xff // broken checksum
	f.Add(flipped)
	f.Add([]byte(header))
	f.Add([]byte{})
	// Length prefix claiming an absurd record size.
	huge := append([]byte(header), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, clean, err := Decode(data)
		if err != nil {
			if len(recs) != 0 || clean != 0 {
				t.Fatalf("error decode still returned records: %d recs, clean %d", len(recs), clean)
			}
			return
		}
		if clean < len(header) || clean > len(data) {
			t.Fatalf("clean prefix %d outside [%d, %d]", clean, len(header), len(data))
		}
		// Re-encoding the recovered records must reproduce the clean
		// prefix exactly: what Decode keeps is exactly what Append wrote.
		enc := []byte(header)
		for _, r := range recs {
			enc = appendFrame(enc, r.Key, r.Data)
		}
		if !bytes.Equal(enc, data[:clean]) {
			t.Fatalf("re-encode of %d recovered records differs from clean prefix", len(recs))
		}
		// And decoding the re-encoding recovers the same records.
		recs2, clean2, err := Decode(enc)
		if err != nil || clean2 != len(enc) || len(recs2) != len(recs) {
			t.Fatalf("round trip: %d recs, clean %d/%d, err %v", len(recs2), clean2, len(enc), err)
		}
		for i := range recs {
			if recs[i].Key != recs2[i].Key || !bytes.Equal(recs[i].Data, recs2[i].Data) {
				t.Fatalf("record %d changed across round trip", i)
			}
		}
	})
}
