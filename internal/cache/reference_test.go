package cache

import (
	"testing"

	"macroop/internal/rng"
)

// refCache is a deliberately naive reference implementation of a
// set-associative LRU cache: per-set ordered slices, linear search.
type refCache struct {
	lineBytes uint64
	numSets   uint64
	assoc     int
	sets      map[uint64][]uint64 // setIdx -> tags, MRU first
}

func newRef(cfg Config) *refCache {
	return &refCache{
		lineBytes: uint64(cfg.LineBytes),
		numSets:   uint64(cfg.SizeBytes / (cfg.Assoc * cfg.LineBytes)),
		assoc:     cfg.Assoc,
		sets:      make(map[uint64][]uint64),
	}
}

func (r *refCache) touch(addr uint64) bool {
	blk := addr / r.lineBytes
	set := blk % r.numSets
	tags := r.sets[set]
	for i, tg := range tags {
		if tg == blk {
			// move to MRU
			copy(tags[1:i+1], tags[:i])
			tags[0] = blk
			return true
		}
	}
	tags = append([]uint64{blk}, tags...)
	if len(tags) > r.assoc {
		tags = tags[:r.assoc]
	}
	r.sets[set] = tags
	return false
}

// TestCacheMatchesReference drives random and strided address streams
// through the production cache and the reference model; hit/miss must
// agree on every access.
func TestCacheMatchesReference(t *testing.T) {
	cfgs := []Config{
		{Name: "a", SizeBytes: 1024, Assoc: 2, LineBytes: 64, Latency: 1},
		{Name: "b", SizeBytes: 16 * 1024, Assoc: 4, LineBytes: 64, Latency: 2},
		{Name: "c", SizeBytes: 4096, Assoc: 1, LineBytes: 128, Latency: 1},
	}
	r := rng.New(99)
	for _, cfg := range cfgs {
		c := mustNew(t, cfg)
		ref := newRef(cfg)
		for i := 0; i < 200000; i++ {
			var addr uint64
			switch r.Intn(3) {
			case 0: // uniform over 4x the cache
				addr = r.Uint64() % uint64(4*cfg.SizeBytes)
			case 1: // strided
				addr = uint64(i) * 72 % uint64(8*cfg.SizeBytes)
			case 2: // hot set
				addr = uint64(r.Intn(cfg.Assoc+2)) * uint64(cfg.SizeBytes/cfg.Assoc)
			}
			got := c.Touch(addr)
			want := ref.touch(addr)
			if got != want {
				t.Fatalf("%s: access %d addr %x: got hit=%v, reference %v", cfg.Name, i, addr, got, want)
			}
		}
	}
}
