// Package cache implements the memory hierarchy from Table 1 of the paper:
// set-associative, LRU-replacement first-level instruction and data caches,
// a unified second-level cache, and a fixed-latency main memory.
//
// The model is access-latency oriented: Access returns the number of cycles
// until the requested data is available, updating tag state along the way.
// Bandwidth contention on the two general memory ports is modeled in the
// core (issue-time port arbitration), not here; miss-status handling
// registers are modeled as unlimited, matching sim-outorder's behaviour.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	Assoc     int
	LineBytes int
	Latency   int // hit latency in cycles
}

// Validate checks geometric well-formedness.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.Assoc <= 0 || c.LineBytes <= 0:
		return fmt.Errorf("cache %s: non-positive geometry", c.Name)
	case c.SizeBytes%(c.Assoc*c.LineBytes) != 0:
		return fmt.Errorf("cache %s: size %d not divisible by assoc*line (%d*%d)", c.Name, c.SizeBytes, c.Assoc, c.LineBytes)
	case c.Latency <= 0:
		return fmt.Errorf("cache %s: non-positive latency", c.Name)
	case (c.LineBytes & (c.LineBytes - 1)) != 0:
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	numSets := c.SizeBytes / (c.Assoc * c.LineBytes)
	if numSets&(numSets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, numSets)
	}
	return nil
}

type line struct {
	tag   uint64
	valid bool
	lru   uint64 // last-touch stamp
}

// Cache is one set-associative cache level with true-LRU replacement.
type Cache struct {
	cfg      Config
	sets     [][]line
	setShift uint
	setMask  uint64
	stamp    uint64

	// statistics
	accesses int64
	misses   int64
}

// New builds a cache from its config, rejecting invalid geometry.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	numSets := cfg.SizeBytes / (cfg.Assoc * cfg.LineBytes)
	sets := make([][]line, numSets)
	backing := make([]line, numSets*cfg.Assoc)
	for i := range sets {
		sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	return &Cache{cfg: cfg, sets: sets, setShift: shift, setMask: uint64(numSets - 1)}, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) set(addr uint64) ([]line, uint64) {
	blk := addr >> c.setShift
	return c.sets[blk&c.setMask], blk
}

// Lookup probes the cache without filling: it reports a hit and updates
// LRU state on hit, but does not allocate on miss.
func (c *Cache) Lookup(addr uint64) bool {
	set, tag := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.stamp++
			set[i].lru = c.stamp
			return true
		}
	}
	return false
}

// Touch probes and, on miss, fills the line (LRU victim). It returns
// whether the access hit. This is the fundamental tag-array operation;
// latency composition across levels lives in Hierarchy.
func (c *Cache) Touch(addr uint64) bool {
	c.accesses++
	set, tag := c.set(addr)
	c.stamp++
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.stamp
			return true
		}
	}
	c.misses++
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = line{tag: tag, valid: true, lru: c.stamp}
	return false
}

// Accesses returns the number of Touch calls.
func (c *Cache) Accesses() int64 { return c.accesses }

// Misses returns the number of Touch misses.
func (c *Cache) Misses() int64 { return c.misses }

// MissRate returns misses/accesses (0 if never accessed).
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// HierarchyConfig is the full memory system (Table 1 defaults in
// internal/config).
type HierarchyConfig struct {
	IL1, DL1, L2 Config
	MemLatency   int // main memory access latency in cycles
}

// Hierarchy composes IL1/DL1 over a unified L2 over main memory.
type Hierarchy struct {
	il1, dl1, l2 *Cache
	memLatency   int
}

// NewHierarchy builds the three-level hierarchy, rejecting invalid
// geometry in any level.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	il1, err := New(cfg.IL1)
	if err != nil {
		return nil, err
	}
	dl1, err := New(cfg.DL1)
	if err != nil {
		return nil, err
	}
	l2, err := New(cfg.L2)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{il1: il1, dl1: dl1, l2: l2, memLatency: cfg.MemLatency}, nil
}

// IL1 returns the instruction cache.
func (h *Hierarchy) IL1() *Cache { return h.il1 }

// DL1 returns the data cache.
func (h *Hierarchy) DL1() *Cache { return h.dl1 }

// L2 returns the unified second-level cache.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// access composes the latency of an L1 access through the hierarchy:
// L1 hit → L1 latency; L1 miss, L2 hit → L1+L2; L2 miss → L1+L2+memory.
func (h *Hierarchy) access(l1 *Cache, addr uint64) (latency int, l1Hit bool) {
	if l1.Touch(addr) {
		return l1.cfg.Latency, true
	}
	if h.l2.Touch(addr) {
		return l1.cfg.Latency + h.l2.cfg.Latency, false
	}
	return l1.cfg.Latency + h.l2.cfg.Latency + h.memLatency, false
}

// Fetch models an instruction fetch of the line containing addr,
// returning the access latency in cycles and whether IL1 hit.
func (h *Hierarchy) Fetch(addr uint64) (latency int, hit bool) {
	return h.access(h.il1, addr)
}

// Data models a data access (load or store address probe), returning the
// access latency in cycles and whether DL1 hit.
func (h *Hierarchy) Data(addr uint64) (latency int, hit bool) {
	return h.access(h.dl1, addr)
}

// LoadAssumedLatency is the scheduler-visible latency assumed for loads:
// the common-case DL1 hit (Section 2.1 — instructions dependent on loads
// are scheduled assuming the cache-hit latency).
func (h *Hierarchy) LoadAssumedLatency() int { return h.dl1.cfg.Latency }
