package cache

import (
	"testing"
	"testing/quick"
)

func cfg(size, assoc, line, lat int) Config {
	return Config{Name: "t", SizeBytes: size, Assoc: assoc, LineBytes: line, Latency: lat}
}

func mustNew(t *testing.T, c Config) *Cache {
	t.Helper()
	cc, err := New(c)
	if err != nil {
		t.Fatalf("New(%+v): %v", c, err)
	}
	return cc
}

func TestConfigValidation(t *testing.T) {
	good := []Config{
		cfg(16*1024, 2, 64, 2),
		cfg(256*1024, 4, 128, 8),
		cfg(1024, 1, 64, 1),
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", c, err)
		}
	}
	bad := []Config{
		cfg(0, 2, 64, 2),        // zero size
		cfg(1000, 2, 64, 2),     // not divisible
		cfg(16*1024, 2, 63, 2),  // non-power-of-two line
		cfg(16*1024, 2, 64, 0),  // zero latency
		cfg(24*1024, 2, 64, 2),  // non-power-of-two sets (192)
		cfg(16*1024, -1, 64, 2), // negative assoc
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v accepted", c)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mustNew(t, cfg(1024, 2, 64, 1))
	if c.Touch(0) {
		t.Fatal("cold access hit")
	}
	if !c.Touch(0) {
		t.Fatal("second access missed")
	}
	if !c.Touch(63) {
		t.Fatal("same-line access missed")
	}
	if c.Touch(64) {
		t.Fatal("next line hit cold")
	}
	if c.Accesses() != 4 || c.Misses() != 2 {
		t.Fatalf("accesses=%d misses=%d", c.Accesses(), c.Misses())
	}
	if c.MissRate() != 0.5 {
		t.Fatalf("miss rate %v", c.MissRate())
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way, 64B lines, 2 sets (256B total): set stride is 128B.
	c := mustNew(t, cfg(256, 2, 64, 1))
	const s = 128 // addresses 0, 128, 256... map to set 0
	c.Touch(0 * s)
	c.Touch(2 * s)
	c.Touch(0 * s) // refresh line 0: LRU victim is now 2*s
	c.Touch(4 * s) // evicts 2*s
	if !c.Touch(0 * s) {
		t.Fatal("LRU evicted the recently used line")
	}
	if c.Touch(2 * s) {
		t.Fatal("victim line still present")
	}
}

func TestLookupDoesNotFill(t *testing.T) {
	c := mustNew(t, cfg(1024, 2, 64, 1))
	if c.Lookup(0) {
		t.Fatal("lookup hit cold")
	}
	if c.Touch(0) {
		t.Fatal("lookup must not have filled")
	}
	if !c.Lookup(0) {
		t.Fatal("lookup missed after fill")
	}
}

func TestFullyUsedSets(t *testing.T) {
	// Property: a working set equal to the cache size with line-aligned
	// sequential access has only compulsory misses on the second pass.
	c := mustNew(t, cfg(4096, 4, 64, 1))
	for a := uint64(0); a < 4096; a += 64 {
		c.Touch(a)
	}
	for a := uint64(0); a < 4096; a += 64 {
		if !c.Touch(a) {
			t.Fatalf("resident line %d missed", a)
		}
	}
}

func TestSetMappingQuick(t *testing.T) {
	c := mustNew(t, cfg(16*1024, 4, 64, 2))
	// Property: touching an address makes every address on the same line
	// hit, and does not disturb validity accounting.
	if err := quick.Check(func(base uint64, off uint8) bool {
		line := base &^ 63
		c.Touch(line)
		return c.Touch(line + uint64(off)%64)
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func hier(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(HierarchyConfig{
		IL1:        cfg(16*1024, 2, 64, 2),
		DL1:        cfg(16*1024, 4, 64, 2),
		L2:         cfg(256*1024, 4, 128, 8),
		MemLatency: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHierarchyLatencies(t *testing.T) {
	h := hier(t)
	// Cold: L1 miss + L2 miss -> 2 + 8 + 100.
	lat, hit := h.Data(0)
	if hit || lat != 110 {
		t.Fatalf("cold access: hit=%v lat=%d, want miss 110", hit, lat)
	}
	// Now resident everywhere: L1 hit.
	lat, hit = h.Data(0)
	if !hit || lat != 2 {
		t.Fatalf("warm access: hit=%v lat=%d, want hit 2", hit, lat)
	}
	// Evict from DL1 only: touch enough conflicting lines. DL1 is 16KB
	// 4-way 64B: set stride 4KB. Touch 4 more lines in set 0.
	for i := uint64(1); i <= 4; i++ {
		h.Data(i * 4096)
	}
	lat, hit = h.Data(0)
	if hit || lat != 10 {
		t.Fatalf("L2 hit path: hit=%v lat=%d, want miss 10", hit, lat)
	}
}

func TestHierarchySeparateL1s(t *testing.T) {
	h := hier(t)
	h.Fetch(0)
	// The same address misses in DL1: the L1s are separate, but L2 is
	// unified so the second access costs 2+8.
	lat, hit := h.Data(0)
	if hit || lat != 10 {
		t.Fatalf("unified L2 path: hit=%v lat=%d, want miss 10", hit, lat)
	}
}

func TestLoadAssumedLatency(t *testing.T) {
	if got := hier(t).LoadAssumedLatency(); got != 2 {
		t.Fatalf("assumed load latency %d, want DL1 hit 2", got)
	}
}

func TestInvalidGeometryRejected(t *testing.T) {
	if c, err := New(cfg(1000, 3, 60, 0)); err == nil || c != nil {
		t.Fatalf("New with invalid geometry returned %v, %v", c, err)
	}
	if h, err := NewHierarchy(HierarchyConfig{
		IL1: cfg(1000, 3, 60, 0), DL1: cfg(1024, 2, 64, 1), L2: cfg(4096, 4, 64, 8),
	}); err == nil || h != nil {
		t.Fatalf("NewHierarchy with invalid IL1 returned %v, %v", h, err)
	}
}
