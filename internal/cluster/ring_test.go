package cluster

import (
	"fmt"
	"testing"
)

func allAlive(string) bool { return true }

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty member ID accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Fatal("duplicate member accepted")
	}
}

// TestRingDeterministic: two rings over the same members (in any order)
// agree on every key — the property that lets every node route without
// coordination.
func TestRingDeterministic(t *testing.T) {
	r1, err := NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing([]string{"n3", "n1", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("cell-%d", i)
		o1, ok1 := r1.Owner(key, allAlive)
		o2, ok2 := r2.Owner(key, allAlive)
		if !ok1 || !ok2 || o1 != o2 {
			t.Fatalf("key %s: ring1=%s ring2=%s", key, o1, o2)
		}
	}
}

// TestRingBalance: virtual nodes spread the keyspace across members
// without pathological skew.
func TestRingBalance(t *testing.T) {
	r, err := NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 12000
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		o, _ := r.Owner(fmt.Sprintf("cell-%d", i), allAlive)
		counts[o]++
	}
	for id, c := range counts {
		share := float64(c) / keys
		if share < 0.15 || share > 0.55 {
			t.Errorf("member %s owns %.1f%% of the keyspace", id, share*100)
		}
	}
}

// TestRingMonotonicOnDeath: when one member dies, only the dead
// member's keys move — live members keep everything they owned.
func TestRingMonotonicOnDeath(t *testing.T) {
	r, err := NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	aliveSansN2 := func(id string) bool { return id != "n2" }
	moved, reowned := 0, 0
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("cell-%d", i)
		before, _ := r.Owner(key, allAlive)
		after, ok := r.Owner(key, aliveSansN2)
		if !ok || after == "n2" {
			t.Fatalf("key %s owned by dead member", key)
		}
		if before == "n2" {
			reowned++
			continue
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d live-owned keys moved when n2 died", moved)
	}
	if reowned == 0 {
		t.Error("n2 owned no keys before dying; balance test should have caught this")
	}
}

// TestRingReplicaSets: the replica set is ordered, distinct, agrees
// with Owner on its first slot, and shrinks when fewer members pass the
// predicate.
func TestRingReplicaSets(t *testing.T) {
	r, err := NewRing([]string{"n1", "n2", "n3", "n4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("cell-%d", i)
		set := r.Replicas(key, 2, allAlive)
		if len(set) != 2 {
			t.Fatalf("key %s: replica set %v, want 2 distinct members", key, set)
		}
		if set[0] == set[1] {
			t.Fatalf("key %s: duplicate member in set %v", key, set)
		}
		owner, _ := r.Owner(key, allAlive)
		if set[0] != owner {
			t.Fatalf("key %s: primary %s != owner %s", key, set[0], owner)
		}
	}
	if set := r.Replicas("k", 10, allAlive); len(set) != 4 {
		t.Fatalf("oversized n returned %v, want all 4 members", set)
	}
	if set := r.Replicas("k", 2, func(id string) bool { return id == "n3" }); len(set) != 1 || set[0] != "n3" {
		t.Fatalf("single survivor set %v, want [n3]", set)
	}
	if set := r.Replicas("k", 0, allAlive); set != nil {
		t.Fatalf("n=0 returned %v", set)
	}
}

// TestRingReplicaPromotionOnDeath: a death never moves a key between
// surviving replica-set members — it only promotes the next survivor
// into the vacated slot. That is what keeps replicated records findable
// across a failover.
func TestRingReplicaPromotionOnDeath(t *testing.T) {
	r, err := NewRing([]string{"n1", "n2", "n3", "n4"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	aliveSansN2 := func(id string) bool { return id != "n2" }
	promoted := 0
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("cell-%d", i)
		before := r.Replicas(key, 2, allAlive)
		after := r.Replicas(key, 2, aliveSansN2)
		if len(after) != 2 {
			t.Fatalf("key %s: post-death set %v", key, after)
		}
		for _, id := range after {
			if id == "n2" {
				t.Fatalf("key %s: dead member in set %v", key, after)
			}
		}
		// Every surviving member of the old set is still in the new set.
		for _, id := range before {
			if id == "n2" {
				promoted++
				continue
			}
			found := false
			for _, nid := range after {
				if nid == id {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("key %s: survivor %s evicted from set (%v -> %v)", key, id, before, after)
			}
		}
		// The primary only changes when the old primary was the dead node.
		if before[0] != "n2" && after[0] != before[0] {
			t.Fatalf("key %s: live primary moved %s -> %s", key, before[0], after[0])
		}
	}
	if promoted == 0 {
		t.Error("n2 was in no replica sets before dying; balance test should have caught this")
	}
}

// TestRingNoneAlive: ownership is undefined only when nobody is alive.
func TestRingNoneAlive(t *testing.T) {
	r, _ := NewRing([]string{"n1", "n2"}, 0)
	if _, ok := r.Owner("k", func(string) bool { return false }); ok {
		t.Fatal("owner reported with no alive members")
	}
}

// TestAdopterDeterministic: every survivor computes the same adopter,
// and it is never the dead node itself.
func TestAdopterDeterministic(t *testing.T) {
	r, _ := NewRing([]string{"n1", "n2", "n3"}, 0)
	aliveSans := func(dead string) func(string) bool {
		return func(id string) bool { return id != dead }
	}
	for _, dead := range []string{"n1", "n2", "n3"} {
		a1, ok1 := r.Adopter(dead, aliveSans(dead))
		a2, ok2 := r.Adopter(dead, aliveSans(dead))
		if !ok1 || !ok2 || a1 != a2 {
			t.Fatalf("adopter of %s not deterministic: %s vs %s", dead, a1, a2)
		}
		if a1 == dead {
			t.Fatalf("dead node %s adopted itself", dead)
		}
	}
	// With a single survivor, the adopter is that survivor.
	a, ok := r.Adopter("n1", func(id string) bool { return id == "n3" })
	if !ok || a != "n3" {
		t.Fatalf("single survivor n3 should adopt, got %q ok=%v", a, ok)
	}
}
