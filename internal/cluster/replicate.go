package cluster

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"time"

	"macroop/internal/service"
)

// Write-through replication and anti-entropy repair. The primary of a
// cell executes it once, then pushes the record to the other members of
// the cell's replica set; a periodic digest exchange finds and fills the
// holes replication missed (a partition while the push was in flight, a
// replica that joined after the record was made, a promotion after a
// death). Both paths land records through service.WarmCache, so every
// replicated record is journaled on the replica — that is what makes a
// double failure survivable.

const (
	// replQueueDepth bounds the replication backlog. Replication is
	// best-effort (anti-entropy repairs what a full queue drops), so the
	// queue sheds rather than blocking the worker that executed the cell.
	replQueueDepth = 256
	// replWorkers is the number of concurrent replication pushers.
	replWorkers = 2
	// replTimeout bounds one replicate or digest round trip.
	replTimeout = 10 * time.Second
	// maxDigestFPs caps the fingerprints offered to one peer per
	// anti-entropy round, bounding round cost on a huge cache; the next
	// rounds cover the rest (the cache snapshot is unordered, so coverage
	// rotates).
	maxDigestFPs = 4096
	// joinTimeout bounds one join handshake attempt.
	joinTimeout = 5 * time.Second
)

// replItem is one queued write-through replication: a freshly executed
// record to push to the cell's replica peers.
type replItem struct {
	fp  string
	rec *service.CachedResult
}

// enqueueReplication is the service's OnExecuted hook: it runs on the
// worker goroutine that just executed a cell, so it never blocks — a
// full queue drops the push and leaves the hole to anti-entropy.
func (n *Node) enqueueReplication(fp string, rec *service.CachedResult) {
	select {
	case n.repl <- replItem{fp: fp, rec: rec}:
	default:
		n.met.replDropped.Add(1)
	}
}

// replWorker drains the replication queue, pushing each record to every
// other alive member of its replica set.
func (n *Node) replWorker() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stop:
			return
		case item := <-n.repl:
			n.replicateOut(item.fp, item.rec, false)
		}
	}
}

// replicateOut pushes one record to the other members of its replica
// set. repair marks anti-entropy pushes (counted by the receiver).
func (n *Node) replicateOut(fp string, rec *service.CachedResult, repair bool) {
	set := n.Ring().Replicas(fp, n.cfg.Replication, n.mem.Alive)
	for _, id := range set {
		if id == n.cfg.Self {
			continue
		}
		if n.pushRecord(id, fp, rec, repair) {
			n.met.replSent.Add(1)
		} else {
			n.met.replErrors.Add(1)
		}
	}
}

// pushRecord sends one replicate frame to one member.
func (n *Node) pushRecord(id, fp string, rec *service.CachedResult, repair bool) bool {
	addr, ok := n.mem.PeerAddr(id)
	if !ok {
		return false
	}
	cw, err := service.WireFromRecord(rec)
	if err != nil {
		return false
	}
	frame, err := encodeReplicate(n.mem.Epoch(), replicateMsg{
		Origin: n.cfg.Self, FP: fp, Repair: repair, Cell: *cw,
	})
	if err != nil {
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), replTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(addr, "/")+"/cluster/v1/replicate", bytes.NewReader(frame))
	if err != nil {
		return false
	}
	hreq.Header.Set("Content-Type", "application/octet-stream")
	resp, err := n.hc.Do(hreq)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusNoContent || resp.StatusCode == http.StatusOK
}

// handleReplicate accepts a record pushed by a replica peer: verify the
// frame (400 corrupt, 409 epoch mismatch), warm and journal the record.
// Repair pushes that actually filled a hole count toward
// mopserve_cluster_repair_total — the CI smoke's proof that anti-entropy
// is doing work.
func (n *Node) handleReplicate(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(io.LimitReader(r.Body, MaxFrameBytes+64))
	if err != nil {
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return
	}
	msg, rec, err := decodeReplicate(data, n.mem.Epoch())
	if err != nil {
		if errors.Is(err, ErrEpochMismatch) {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	n.met.replRecv.Add(1)
	if n.svc.WarmCache(msg.FP, rec) && msg.Repair {
		n.met.repairs.Add(1)
		n.cfg.Logf("cluster: repaired %s from %s (anti-entropy)", msg.FP, msg.Origin)
	}
	w.WriteHeader(http.StatusNoContent)
}

// ---------------------------------------------------------------------
// Anti-entropy.

// repairLoop periodically exchanges cell-fingerprint digests with
// replica peers and pushes the records they are missing.
func (n *Node) repairLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.RepairInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.repairRound()
		}
	}
}

// repairRound offers, for every cached fingerprint whose replica set
// this node belongs to, the fingerprint to the set's other members, and
// repairs whatever they report missing.
func (n *Node) repairRound() {
	fps := n.svc.CacheFingerprints()
	if len(fps) == 0 {
		return
	}
	ring := n.Ring()
	offers := make(map[string][]string)
	for _, fp := range fps {
		set := ring.Replicas(fp, n.cfg.Replication, n.mem.Alive)
		selfIn := false
		for _, id := range set {
			if id == n.cfg.Self {
				selfIn = true
				break
			}
		}
		if !selfIn {
			// Not our range: holding the record is fine (cache), but we
			// are not responsible for its replication.
			continue
		}
		for _, id := range set {
			if id != n.cfg.Self && len(offers[id]) < maxDigestFPs {
				offers[id] = append(offers[id], fp)
			}
		}
	}
	for id, peerFPs := range offers {
		select {
		case <-n.stop:
			return
		default:
		}
		n.repairPeer(id, peerFPs)
	}
}

// repairPeer runs one digest exchange with one replica peer and pushes
// the records it is missing.
func (n *Node) repairPeer(id string, fps []string) {
	addr, ok := n.mem.PeerAddr(id)
	if !ok {
		return
	}
	epoch := n.mem.Epoch()
	frame, err := encodeDigestRequest(epoch, digestRequest{Origin: n.cfg.Self, FPs: fps})
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), replTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(addr, "/")+"/cluster/v1/digest", bytes.NewReader(frame))
	if err != nil {
		return
	}
	hreq.Header.Set("Content-Type", "application/octet-stream")
	resp, err := n.hc.Do(hreq)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxFrameBytes+64))
	if err != nil {
		return
	}
	dresp, err := decodeDigestResponse(data, epoch)
	if err != nil {
		return
	}
	for _, fp := range dresp.Missing {
		rec, ok := n.svc.CachedByFingerprint(fp)
		if !ok {
			continue // evicted since the snapshot; a later round re-offers
		}
		if n.pushRecord(id, fp, rec, true) {
			n.met.replSent.Add(1)
		} else {
			n.met.replErrors.Add(1)
		}
	}
	if len(dresp.Missing) > 0 {
		n.cfg.Logf("cluster: anti-entropy pushed %d records to %s", len(dresp.Missing), id)
	}
}

// handleDigest answers a replica peer's anti-entropy offer with the
// subset of fingerprints this node does not hold.
func (n *Node) handleDigest(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(io.LimitReader(r.Body, MaxFrameBytes+64))
	if err != nil {
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return
	}
	epoch := n.mem.Epoch()
	req, err := decodeDigestRequest(data, epoch)
	if err != nil {
		if errors.Is(err, ErrEpochMismatch) {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var missing []string
	for _, fp := range req.FPs {
		if _, ok := n.svc.CachedByFingerprint(fp); !ok {
			missing = append(missing, fp)
		}
	}
	frame, err := encodeDigestResponse(epoch, digestResponse{Missing: missing})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(frame)
}

// ---------------------------------------------------------------------
// Dynamic membership: the join handshake.

// joinLoop runs the join handshake against the configured seed until it
// succeeds (capped backoff) — a node started with -join before its seed
// is listening simply keeps trying.
func (n *Node) joinLoop() {
	defer n.wg.Done()
	backoff := 200 * time.Millisecond
	for {
		if n.tryJoin() {
			return
		}
		select {
		case <-n.stop:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// tryJoin performs one handshake: announce self to the seed, adopt the
// returned ring snapshot (members, epoch, version), and rebuild the
// ring. Heartbeats take over from there — the rest of the fleet learns
// this node from the seed's acks within one round.
func (n *Node) tryJoin() bool {
	frame, err := encodeJoinRequest(joinRequest{ID: n.cfg.Self, Addr: n.selfAddr()})
	if err != nil {
		n.cfg.Logf("cluster: join: %v", err)
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), joinTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(n.cfg.JoinAddr, "/")+"/cluster/v1/join", bytes.NewReader(frame))
	if err != nil {
		n.cfg.Logf("cluster: join: %v", err)
		return false
	}
	hreq.Header.Set("Content-Type", "application/octet-stream")
	resp, err := n.hc.Do(hreq)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, MaxFrameBytes+64))
	if err != nil {
		return false
	}
	jr, err := decodeJoinResponse(data)
	if err != nil {
		n.cfg.Logf("cluster: join response: %v", err)
		return false
	}
	if jr.Replication != n.cfg.Replication {
		n.cfg.Logf("cluster: join: fleet runs replication %d, we are configured for %d", jr.Replication, n.cfg.Replication)
	}
	changed := false
	for id, addr := range jr.Members {
		if n.mem.AddPeer(id, addr, time.Now()) {
			changed = true
		}
	}
	n.mem.MergeVersion(jr.Version)
	n.mem.MergeEpoch(jr.Epoch)
	if changed {
		if err := n.rebuildRing(); err != nil {
			n.cfg.Logf("cluster: ring rebuild after join: %v", err)
		}
	}
	n.cfg.Logf("cluster: joined fleet via %s: %d members, epoch %d, version %d",
		n.cfg.JoinAddr, len(jr.Members), n.mem.Epoch(), n.mem.Version())
	return true
}

// handleJoin admits a fresh node into the fleet and answers with the
// ring snapshot it needs. The join frame is deliberately not
// epoch-checked — the joiner cannot know the cluster epoch yet.
func (n *Node) handleJoin(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(io.LimitReader(r.Body, MaxFrameBytes+64))
	if err != nil {
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return
	}
	req, err := decodeJoinRequest(data)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if n.mem.AddPeer(req.ID, req.Addr, time.Now()) {
		if err := n.rebuildRing(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		n.met.joins.Add(1)
		n.cfg.Logf("cluster: %s (%s) joined (epoch %d, version %d)", req.ID, req.Addr, n.mem.Epoch(), n.mem.Version())
	}
	frame, err := encodeJoinResponse(n.mem.Epoch(), joinResponse{
		Members:     n.mem.Members(),
		Epoch:       n.mem.Epoch(),
		Version:     n.mem.Version(),
		Replication: n.cfg.Replication,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(frame)
}
