package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// fillBuckets are the peer-fill latency histogram bounds in seconds:
// fills are either a cache lookup on the owner (sub-millisecond plus a
// round trip) or a remote execution (up to the fill deadline).
var fillBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

// clusterMetrics is the fleet-level instrumentation rendered after the
// service's own families on /metrics.
type clusterMetrics struct {
	redirects atomic.Int64

	// Requester-side fill outcomes.
	fillHit     atomic.Int64 // owner served from its cache
	fillRan     atomic.Int64 // owner executed for us
	fillBusy    atomic.Int64 // owner saturated/draining -> we run it (steal-by-backpressure)
	fillMiss    atomic.Int64 // probed replica does not hold the record
	fillTimeout atomic.Int64 // owner too slow -> local execution
	fillError   atomic.Int64 // transport/decode failure -> local execution
	fillEpoch   atomic.Int64 // membership views diverged -> local execution

	stealsOut atomic.Int64 // own cells handed to an idle peer
	stealsIn  atomic.Int64 // cells executed on behalf of a saturated peer

	// Replication and anti-entropy.
	replSent    atomic.Int64 // records pushed to replica peers (write-through + repair)
	replRecv    atomic.Int64 // records accepted from replica peers
	replDropped atomic.Int64 // write-through pushes shed by a full queue
	replErrors  atomic.Int64 // pushes that failed in transport
	repairs     atomic.Int64 // incoming repair pushes that filled a real hole
	joins       atomic.Int64 // members admitted (handshake or heartbeat discovery)

	failovers    atomic.Int64 // dead peers this node adopted
	adoptedJobs  atomic.Int64
	cellsWarmed  atomic.Int64 // dead peer's journaled cellres reconstituted
	cellsResumed atomic.Int64 // adopted-job cells replayed without execution
	cellsRerun   atomic.Int64 // adopted-job cells that had to re-execute

	fillLatency [15]atomic.Int64 // len(fillBuckets)+1
	fillSumUS   atomic.Int64
	fillN       atomic.Int64
}

func (m *clusterMetrics) observeFill(seconds float64) {
	i := sort.SearchFloat64s(fillBuckets, seconds)
	m.fillLatency[i].Add(1)
	m.fillSumUS.Add(int64(seconds * 1e6))
	m.fillN.Add(1)
}

// render appends the cluster families to the Prometheus exposition.
func (m *clusterMetrics) render(w *strings.Builder, self string, epoch, version uint64, members []MemberInfo) {
	fmt.Fprintf(w, "# HELP mopserve_cluster_epoch Membership epoch (liveness transitions observed).\n# TYPE mopserve_cluster_epoch gauge\nmopserve_cluster_epoch %d\n", epoch)
	fmt.Fprintf(w, "# HELP mopserve_cluster_membership_version Membership version (members admitted to this view).\n# TYPE mopserve_cluster_membership_version gauge\nmopserve_cluster_membership_version %d\n", version)
	fmt.Fprintf(w, "# HELP mopserve_cluster_member_state Ring member liveness (1 for the row matching the member's state).\n# TYPE mopserve_cluster_member_state gauge\n")
	fmt.Fprintf(w, "mopserve_cluster_member_state{node=%q,state=\"alive\",self=\"true\"} 1\n", self)
	for _, mi := range members {
		fmt.Fprintf(w, "mopserve_cluster_member_state{node=%q,state=%q,self=\"false\"} 1\n", mi.ID, mi.State)
	}
	counter := func(name, help string, series ...[2]any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, s := range series {
			fmt.Fprintf(w, "%s%s %d\n", name, s[0], s[1])
		}
	}
	counter("mopserve_cluster_redirects_total", "Single-cell requests redirected (307) to their owning shard.",
		[2]any{"", m.redirects.Load()})
	counter("mopserve_cluster_peer_fills_total", "Peer cache-fill attempts by outcome (busy/miss/timeout/error/epoch degrade to the next replica or local execution).",
		[2]any{`{outcome="hit"}`, m.fillHit.Load()},
		[2]any{`{outcome="executed"}`, m.fillRan.Load()},
		[2]any{`{outcome="busy"}`, m.fillBusy.Load()},
		[2]any{`{outcome="miss"}`, m.fillMiss.Load()},
		[2]any{`{outcome="timeout"}`, m.fillTimeout.Load()},
		[2]any{`{outcome="error"}`, m.fillError.Load()},
		[2]any{`{outcome="epoch"}`, m.fillEpoch.Load()})
	counter("mopserve_cluster_replication_total", "Write-through/repair record movement (sent: pushed to replicas; received: accepted from peers; dropped: shed by a full queue; error: push failed).",
		[2]any{`{event="sent"}`, m.replSent.Load()},
		[2]any{`{event="received"}`, m.replRecv.Load()},
		[2]any{`{event="dropped"}`, m.replDropped.Load()},
		[2]any{`{event="error"}`, m.replErrors.Load()})
	counter("mopserve_cluster_repair_total", "Records the anti-entropy loop repaired into this node (holes filled and journaled).",
		[2]any{"", m.repairs.Load()})
	counter("mopserve_cluster_joins_total", "Members this node admitted into its view (join handshake or heartbeat discovery).",
		[2]any{"", m.joins.Load()})
	counter("mopserve_cluster_steals_total", "Work-stealing transfers (out: own cell handed to an idle peer; in: executed for a saturated peer).",
		[2]any{`{direction="out"}`, m.stealsOut.Load()},
		[2]any{`{direction="in"}`, m.stealsIn.Load()})
	counter("mopserve_cluster_failovers_total", "Dead peers whose hash range and jobs this node adopted.",
		[2]any{"", m.failovers.Load()})
	counter("mopserve_cluster_failover_jobs_total", "Unfinished jobs adopted from dead peers' journals.",
		[2]any{"", m.adoptedJobs.Load()})
	counter("mopserve_cluster_failover_cells_total", "Adopted cells by disposition (warmed: journaled records reconstituted; resumed: replayed without execution; rerun: re-executed).",
		[2]any{`{disposition="warmed"}`, m.cellsWarmed.Load()},
		[2]any{`{disposition="resumed"}`, m.cellsResumed.Load()},
		[2]any{`{disposition="rerun"}`, m.cellsRerun.Load()})

	fmt.Fprintf(w, "# HELP mopserve_cluster_fill_seconds Peer cache-fill round-trip latency.\n# TYPE mopserve_cluster_fill_seconds histogram\n")
	cum := int64(0)
	for i, bound := range fillBuckets {
		cum += m.fillLatency[i].Load()
		fmt.Fprintf(w, "mopserve_cluster_fill_seconds_bucket{le=%q} %d\n", trimFloat(bound), cum)
	}
	cum += m.fillLatency[len(fillBuckets)].Load()
	fmt.Fprintf(w, "mopserve_cluster_fill_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "mopserve_cluster_fill_seconds_sum %g\n", float64(m.fillSumUS.Load())/1e6)
	fmt.Fprintf(w, "mopserve_cluster_fill_seconds_count %d\n", m.fillN.Load())
}

// trimFloat renders a bucket bound the way Prometheus clients do.
func trimFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", f), "0"), ".")
}
