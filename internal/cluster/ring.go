// Package cluster turns single-box mopserve nodes into a fault-tolerant
// fleet. Cells route by consistent hashing on their content fingerprint
// (experiments.CellFingerprint): each fingerprint has an ordered replica
// set of R distinct members (the first is the primary), the primary
// executes and write-through-replicates the record to its successors,
// and every node resolves a cell primary → replicas → local execution so
// no single death stalls a request. Membership is dynamic: a new node
// joins a live fleet with a handshake, receives a ring snapshot, and
// propagates through membership-version-stamped heartbeats; heartbeat
// failure detection drives a suspect → dead state machine, and when a
// node is declared dead its hash range re-owns onto the surviving ring
// automatically (ownership is always computed over live members) while a
// deterministic adopter resumes its unfinished jobs from the shared
// journal convention — completed cells replay from cellres records, only
// incomplete cells re-execute. A periodic anti-entropy pass exchanges
// cell-fingerprint digests between replica peers and repairs holes left
// by missed replication or a cold join. Every degradation is graceful: a
// slow peer times out into local execution, a saturated owner answers
// busy and the requester steals the work, a torn journal tail truncates
// to the last intact record.
package cluster

import (
	"fmt"
	"sort"
)

// defaultReplicas is the virtual-node count per member: enough points
// that a three-node ring splits the keyspace within a few percent of
// evenly, cheap enough that ring construction is trivial.
const defaultReplicas = 64

// point is one virtual node on the ring.
type point struct {
	h    uint64
	node string
}

// Ring is a static-membership consistent-hash ring. Liveness is not ring
// state: Owner takes an alive predicate, so the ring itself never
// mutates and every node computes identical ownership from identical
// membership views.
type Ring struct {
	members []string
	points  []point
}

// NewRing builds a ring over the member IDs with the given virtual-node
// count per member (0 selects the default).
func NewRing(members []string, replicas int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	seen := map[string]bool{}
	r := &Ring{members: append([]string(nil), members...)}
	sort.Strings(r.members)
	for _, m := range r.members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member ID")
		}
		if seen[m] {
			return nil, fmt.Errorf("cluster: duplicate member %q", m)
		}
		seen[m] = true
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, point{h: hash64(fmt.Sprintf("%s|%d", m, i)), node: m})
		}
	}
	sort.Slice(r.points, func(i, k int) bool {
		if r.points[i].h != r.points[k].h {
			return r.points[i].h < r.points[k].h
		}
		return r.points[i].node < r.points[k].node
	})
	return r, nil
}

// Members returns the ring's static membership, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Owner maps a key to its owning member: the first alive node at or
// after the key's hash, walking the ring clockwise. Because ownership is
// computed over alive members, a dead node's range falls to its ring
// successors with no explicit rebalance step — and keys owned by live
// nodes never move when some other node dies (consistent hashing's
// monotonicity). ok is false only when no member is alive.
func (r *Ring) Owner(key string, alive func(string) bool) (owner string, ok bool) {
	set := r.Replicas(key, 1, alive)
	if len(set) == 0 {
		return "", false
	}
	return set[0], true
}

// Replicas maps a key to its ordered replica set: the first n distinct
// members passing the alive predicate at or after the key's hash,
// walking the ring clockwise past virtual-node collisions. The first
// element is the primary (identical to Owner); the rest are the
// successors that hold the key's replicated records. The same
// monotonicity as Owner holds per slot: a death never moves a key
// between surviving set members, it only promotes the next survivor
// into the vacated slot. Fewer than n members are returned when fewer
// pass the predicate.
func (r *Ring) Replicas(key string, n int, alive func(string) bool) []string {
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	var set []string
	for i := 0; i < len(r.points) && len(set) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if alive != nil && !alive(p.node) {
			continue
		}
		dup := false
		for _, m := range set {
			if m == p.node {
				dup = true
				break
			}
		}
		if !dup {
			set = append(set, p.node)
		}
	}
	return set
}

// Adopter deterministically picks which surviving member adopts a dead
// node's unfinished jobs: every survivor computes the same answer from
// the same membership view, so exactly one node performs the failover.
func (r *Ring) Adopter(dead string, alive func(string) bool) (string, bool) {
	return r.Owner("adopt|"+dead, func(id string) bool { return id != dead && (alive == nil || alive(id)) })
}

// hash64 is FNV-1a over the key, finished with a splitmix64-style mixer.
// FNV alone leaves the high bits poorly diffused on short, similar keys
// (member|replica strings), which skews ring position ordering badly;
// the finalizer avalanches every input bit across the word so virtual
// nodes spread evenly. Speed and spread matter here, not crypto.
func hash64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
