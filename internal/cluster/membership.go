package cluster

import (
	"sort"
	"sync"
	"time"
)

// State is one peer's liveness as seen by this node.
type State int8

// The suspect → dead state machine. A missed heartbeat window makes a
// peer suspect — it still owns its hash range (fills to it will time out
// and degrade to local execution), because moving ownership on a hiccup
// would thrash the ring. Only after DeadAfter of silence is the peer
// declared dead: ownership re-computes without it and the failover path
// adopts its unfinished jobs. An ack from a dead peer is a rejoin; both
// transitions bump the membership epoch.
const (
	StateAlive State = iota
	StateSuspect
	StateDead
)

func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	}
	return "unknown"
}

// Timings configures the failure detector.
type Timings struct {
	// HeartbeatInterval is the probe period (default 500ms).
	HeartbeatInterval time.Duration
	// SuspectAfter is how long without an ack before a peer turns
	// suspect (default 4 × HeartbeatInterval).
	SuspectAfter time.Duration
	// DeadAfter is how long without an ack before a peer is declared
	// dead and failover runs (default 10 × HeartbeatInterval).
	DeadAfter time.Duration
}

func (t Timings) withDefaults() Timings {
	if t.HeartbeatInterval <= 0 {
		t.HeartbeatInterval = 500 * time.Millisecond
	}
	if t.SuspectAfter <= 0 {
		t.SuspectAfter = 4 * t.HeartbeatInterval
	}
	if t.DeadAfter <= t.SuspectAfter {
		t.DeadAfter = 10 * t.HeartbeatInterval
		if t.DeadAfter <= t.SuspectAfter {
			t.DeadAfter = 2 * t.SuspectAfter
		}
	}
	return t
}

// MemberInfo is one member's state snapshot (self included).
type MemberInfo struct {
	ID         string    `json:"id"`
	Addr       string    `json:"addr"`
	State      string    `json:"state"`
	QueueDepth int       `json:"queue_depth"`
	Draining   bool      `json:"draining"`
	LastAck    time.Time `json:"last_ack"`
}

// Transition is one liveness change produced by a sweep or an ack.
type Transition struct {
	ID   string
	From State
	To   State
}

type peer struct {
	addr     string
	state    State
	lastAck  time.Time
	queue    int
	draining bool
}

// Membership tracks peer liveness, the cluster epoch, and the membership
// version. It is a pure state machine over observation timestamps — the
// prober goroutine in Node feeds it acks and failures, and tests feed it
// synthetic clocks.
//
// The epoch counts view transitions (death, rejoin, or a membership
// change). Peer-protocol frames carry it so two nodes whose membership
// views have diverged refuse to serve each other stale fills; heartbeats
// max-merge it so a restarted node (whose own counter reset to the
// transitions it has since observed) converges back to the cluster's.
//
// The version counts membership changes only (members added). It is
// stamped on heartbeats so an existing fleet notices a join it has not
// seen yet and pulls the new member from the ack's member map — one
// heartbeat round is enough for a join to reach everyone.
type Membership struct {
	self     string
	selfAddr string

	mu      sync.Mutex
	peers   map[string]*peer
	epoch   uint64
	version uint64
}

// NewMembership builds the detector for self among the addressed peers
// (self's own entry carries self's advertised address). All peers start
// alive as of now: a node that never comes up is detected dead one
// DeadAfter after startup, like any other silence.
func NewMembership(self string, addrs map[string]string, now time.Time) *Membership {
	m := &Membership{self: self, selfAddr: addrs[self], peers: make(map[string]*peer)}
	for id, addr := range addrs {
		if id == self {
			continue
		}
		m.peers[id] = &peer{addr: addr, state: StateAlive, lastAck: now}
	}
	return m
}

// AddPeer admits a previously unknown member into the view (a join, or a
// member learned from a peer's heartbeat). It reports whether the view
// changed; a change bumps both the membership version and the epoch, so
// fills built against the pre-join ring are refused until views merge.
// Re-adding a known member only refreshes its address.
func (m *Membership) AddPeer(id, addr string, now time.Time) bool {
	if id == "" || addr == "" || id == m.self {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if p, ok := m.peers[id]; ok {
		p.addr = addr
		return false
	}
	m.peers[id] = &peer{addr: addr, state: StateAlive, lastAck: now}
	m.version++
	m.epoch++
	return true
}

// Members returns the full member map (self included) — the ring's input
// and the join handshake's snapshot payload.
func (m *Membership) Members() map[string]string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]string, len(m.peers)+1)
	out[m.self] = m.selfAddr
	for id, p := range m.peers {
		out[id] = p.addr
	}
	return out
}

// MemberIDs returns every member ID (self included), sorted.
func (m *Membership) MemberIDs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.peers)+1)
	ids = append(ids, m.self)
	for id := range m.peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Version returns the membership version (members added to this view).
func (m *Membership) Version() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.version
}

// MergeEpoch max-merges a peer's advertised cluster epoch — the join
// handshake's way of adopting the fleet's epoch in one step.
func (m *Membership) MergeEpoch(e uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e > m.epoch {
		m.epoch = e
	}
}

// MergeVersion max-merges a peer's advertised membership version.
func (m *Membership) MergeVersion(v uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if v > m.version {
		m.version = v
	}
}

// ObserveAck records a successful heartbeat: the peer is alive as of
// now, its advertised load is updated, and its epoch max-merges into
// ours. A dead peer acking is a rejoin transition.
func (m *Membership) ObserveAck(id string, now time.Time, epoch uint64, queue int, draining bool) (Transition, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[id]
	if !ok {
		return Transition{}, false
	}
	if epoch > m.epoch {
		m.epoch = epoch
	}
	p.lastAck = now
	p.queue = queue
	p.draining = draining
	if p.state == StateDead {
		p.state = StateAlive
		m.epoch++
		return Transition{ID: id, From: StateDead, To: StateAlive}, true
	}
	from := p.state
	p.state = StateAlive
	if from != StateAlive {
		return Transition{ID: id, From: from, To: StateAlive}, true
	}
	return Transition{}, false
}

// Sweep advances the suspect → dead machine against the clock, returning
// every transition it caused. Deaths bump the epoch.
func (m *Membership) Sweep(now time.Time, t Timings) []Transition {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Transition
	for id, p := range m.peers {
		silent := now.Sub(p.lastAck)
		switch {
		case p.state != StateDead && silent > t.DeadAfter:
			out = append(out, Transition{ID: id, From: p.state, To: StateDead})
			p.state = StateDead
			m.epoch++
		case p.state == StateAlive && silent > t.SuspectAfter:
			out = append(out, Transition{ID: id, From: StateAlive, To: StateSuspect})
			p.state = StateSuspect
		}
	}
	return out
}

// Alive reports whether id participates in ring ownership: self always,
// peers unless declared dead (suspects still own their range).
func (m *Membership) Alive(id string) bool {
	if id == m.self {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[id]
	return ok && p.state != StateDead
}

// Epoch returns the current cluster epoch.
func (m *Membership) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// PeerAddr returns a peer's base URL.
func (m *Membership) PeerAddr(id string) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[id]
	if !ok {
		return "", false
	}
	return p.addr, true
}

// IdlestAlivePeer returns the alive, non-draining peer with the smallest
// advertised queue depth — the steal target for a saturated node. ok is
// false when no peer qualifies or the best is no idler than maxQueue.
func (m *Membership) IdlestAlivePeer(maxQueue int) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	best, bestQ := "", maxQueue
	for id, p := range m.peers {
		if p.state != StateAlive || p.draining {
			continue
		}
		if p.queue < bestQ || (p.queue == bestQ && best == "" && p.queue < maxQueue) {
			best, bestQ = id, p.queue
		}
	}
	return best, best != ""
}

// Snapshot lists every peer's state, sorted by ID (self is not included;
// the caller adds its own line).
func (m *Membership) Snapshot() []MemberInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]MemberInfo, 0, len(m.peers))
	for id, p := range m.peers {
		out = append(out, MemberInfo{
			ID: id, Addr: p.addr, State: p.state.String(),
			QueueDepth: p.queue, Draining: p.draining, LastAck: p.lastAck,
		})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}
