package cluster

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"

	"macroop/internal/service"
)

// The peer-protocol wire format. A frame is:
//
//	"MOPW1" | kind (1 byte) | epoch (8 bytes LE) | uvarint(len) | payload | 8-byte LE FNV-1a over everything before it
//
// The checksum makes a damaged frame (truncated body, bit flip, foreign
// bytes on the port) a typed decode error instead of a misparse, and the
// epoch in the header lets the receiver refuse to act on a request built
// under a divergent membership view — the two rejection cases the fuzz
// test pins. Payloads are JSON inside the checksummed envelope.
const wireMagic = "MOPW1"

// Frame kinds.
const (
	// FrameFillReq asks the owning shard for a cell's record.
	FrameFillReq uint8 = 1
	// FrameFillResp carries the record (or reports it was executed).
	FrameFillResp uint8 = 2
	// FrameJoinReq is the membership handshake: a fresh node announces
	// its ID and address to any live member. It is the one frame that is
	// not epoch-checked — a joiner cannot know the cluster epoch yet.
	FrameJoinReq uint8 = 3
	// FrameJoinResp answers a join with a ring snapshot: the full member
	// map plus the epoch and membership version to adopt.
	FrameJoinResp uint8 = 4
	// FrameReplicate pushes one cell record from the executing primary to
	// a replica (write-through replication), or from an anti-entropy
	// repair pass to a peer with a hole.
	FrameReplicate uint8 = 5
	// FrameDigestReq offers a compact digest of cell fingerprints this
	// node holds that the receiver should also hold (it is in their
	// replica set).
	FrameDigestReq uint8 = 6
	// FrameDigestResp answers a digest with the fingerprints the receiver
	// is missing — the sender repairs each with a FrameReplicate.
	FrameDigestResp uint8 = 7
)

// MaxFrameBytes bounds one frame so a corrupted length prefix reads as a
// decode error instead of a gigantic allocation.
const MaxFrameBytes = 8 << 20

// Wire decode errors.
var (
	ErrBadMagic      = errors.New("cluster: not a peer-protocol frame")
	ErrTruncated     = errors.New("cluster: truncated frame")
	ErrChecksum      = errors.New("cluster: frame checksum mismatch")
	ErrFrameTooBig   = errors.New("cluster: frame exceeds size bound")
	ErrEpochMismatch = errors.New("cluster: membership epoch mismatch")
)

// Frame is one decoded peer-protocol message.
type Frame struct {
	Kind    uint8
	Epoch   uint64
	Payload []byte
}

// EncodeFrame serializes a frame.
func EncodeFrame(kind uint8, epoch uint64, payload []byte) []byte {
	buf := make([]byte, 0, len(wireMagic)+1+8+10+len(payload)+8)
	buf = append(buf, wireMagic...)
	buf = append(buf, kind)
	buf = binary.LittleEndian.AppendUint64(buf, epoch)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint64(buf, fnv1a(buf))
}

// DecodeFrame parses and verifies one frame. It never panics on
// arbitrary input: every malformation maps to a typed error. Trailing
// bytes after the checksum are rejected as corruption (frames are
// exactly one message).
func DecodeFrame(data []byte) (Frame, error) {
	if len(data) < len(wireMagic)+1+8 {
		if len(data) >= len(wireMagic) && string(data[:len(wireMagic)]) == wireMagic {
			return Frame{}, ErrTruncated
		}
		return Frame{}, ErrBadMagic
	}
	if string(data[:len(wireMagic)]) != wireMagic {
		return Frame{}, ErrBadMagic
	}
	off := len(wireMagic)
	kind := data[off]
	off++
	epoch := binary.LittleEndian.Uint64(data[off : off+8])
	off += 8
	plen, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return Frame{}, ErrTruncated
	}
	if plen > MaxFrameBytes {
		return Frame{}, ErrFrameTooBig
	}
	off += n
	if uint64(len(data)-off) < plen+8 {
		return Frame{}, ErrTruncated
	}
	payload := data[off : off+int(plen)]
	off += int(plen)
	sum := binary.LittleEndian.Uint64(data[off : off+8])
	if sum != fnv1a(data[:off]) {
		return Frame{}, ErrChecksum
	}
	if off+8 != len(data) {
		return Frame{}, ErrChecksum
	}
	return Frame{Kind: kind, Epoch: epoch, Payload: append([]byte(nil), payload...)}, nil
}

// CheckEpoch rejects a frame built under a different membership view.
// The caller degrades (local execution) and lets heartbeat max-merge
// converge the epochs.
func (f Frame) CheckEpoch(local uint64) error {
	if f.Epoch != local {
		return fmt.Errorf("%w: frame %d, local %d", ErrEpochMismatch, f.Epoch, local)
	}
	return nil
}

// fillRequest is the FrameFillReq payload.
type fillRequest struct {
	// Origin is the requesting node (for logs and steal metrics).
	Origin string `json:"origin"`
	// Force asks the receiver to execute even though it does not own the
	// cell — the work-stealing path from a saturated node to an idle one.
	Force bool `json:"force,omitempty"`
	// Probe asks the receiver to answer from its cache only, never
	// execute — the lookup a fresh primary sends its replicas before
	// running a cell itself, so a record that survived a failover on a
	// replica is found instead of re-executed. A miss answers 404.
	Probe bool `json:"probe,omitempty"`
	// Spec is the cell to resolve.
	Spec service.CellSpec `json:"spec"`
}

// fillResponse is the FrameFillResp payload.
type fillResponse struct {
	// Cached reports the owner served the record without executing.
	Cached bool `json:"cached"`
	// Cell is the record, in the same serialized form the journal uses.
	Cell service.CellWire `json:"cell"`
}

func encodeFillRequest(epoch uint64, req fillRequest) ([]byte, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	return EncodeFrame(FrameFillReq, epoch, payload), nil
}

func decodeFillRequest(data []byte, localEpoch uint64) (fillRequest, error) {
	f, err := DecodeFrame(data)
	if err != nil {
		return fillRequest{}, err
	}
	if f.Kind != FrameFillReq {
		return fillRequest{}, fmt.Errorf("cluster: unexpected frame kind %d (want fill request)", f.Kind)
	}
	if err := f.CheckEpoch(localEpoch); err != nil {
		return fillRequest{}, err
	}
	var req fillRequest
	if err := json.Unmarshal(f.Payload, &req); err != nil {
		return fillRequest{}, fmt.Errorf("cluster: fill request payload: %w", err)
	}
	return req, nil
}

func encodeFillResponse(epoch uint64, cached bool, rec *service.CachedResult) ([]byte, error) {
	cw, err := service.WireFromRecord(rec)
	if err != nil {
		return nil, err
	}
	payload, err := json.Marshal(fillResponse{Cached: cached, Cell: *cw})
	if err != nil {
		return nil, err
	}
	return EncodeFrame(FrameFillResp, epoch, payload), nil
}

// decodeFillResponse verifies and decodes a fill response. The record's
// own integrity rides on the frame checksum plus the hex checksum field
// inside CellWire — a payload that does not reconstitute is an error,
// never a silent nil.
func decodeFillResponse(data []byte, wantEpoch uint64) (rec *service.CachedResult, cached bool, err error) {
	f, err := DecodeFrame(data)
	if err != nil {
		return nil, false, err
	}
	if f.Kind != FrameFillResp {
		return nil, false, fmt.Errorf("cluster: unexpected frame kind %d (want fill response)", f.Kind)
	}
	if err := f.CheckEpoch(wantEpoch); err != nil {
		return nil, false, err
	}
	var resp fillResponse
	if err := json.Unmarshal(f.Payload, &resp); err != nil {
		return nil, false, fmt.Errorf("cluster: fill response payload: %w", err)
	}
	rec = resp.Cell.Record()
	if rec == nil || rec.Result == nil {
		return nil, false, fmt.Errorf("cluster: fill response carries no reconstitutable record")
	}
	return rec, resp.Cached, nil
}

// joinRequest is the FrameJoinReq payload: a fresh node announcing
// itself to any live member.
type joinRequest struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// joinResponse is the FrameJoinResp payload: the ring snapshot the
// joiner adopts.
type joinResponse struct {
	Members     map[string]string `json:"members"`
	Epoch       uint64            `json:"epoch"`
	Version     uint64            `json:"version"`
	Replication int               `json:"replication"`
}

func encodeJoinRequest(req joinRequest) ([]byte, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	// Join frames carry epoch 0: the joiner has no view yet, and the
	// receiver deliberately skips the epoch check for this kind.
	return EncodeFrame(FrameJoinReq, 0, payload), nil
}

func decodeJoinRequest(data []byte) (joinRequest, error) {
	f, err := DecodeFrame(data)
	if err != nil {
		return joinRequest{}, err
	}
	if f.Kind != FrameJoinReq {
		return joinRequest{}, fmt.Errorf("cluster: unexpected frame kind %d (want join request)", f.Kind)
	}
	var req joinRequest
	if err := json.Unmarshal(f.Payload, &req); err != nil {
		return joinRequest{}, fmt.Errorf("cluster: join request payload: %w", err)
	}
	if req.ID == "" || req.Addr == "" {
		return joinRequest{}, fmt.Errorf("cluster: join request missing id or addr")
	}
	return req, nil
}

func encodeJoinResponse(epoch uint64, resp joinResponse) ([]byte, error) {
	payload, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	return EncodeFrame(FrameJoinResp, epoch, payload), nil
}

// decodeJoinResponse is not epoch-checked either: the snapshot inside is
// exactly what teaches the joiner the cluster's epoch.
func decodeJoinResponse(data []byte) (joinResponse, error) {
	f, err := DecodeFrame(data)
	if err != nil {
		return joinResponse{}, err
	}
	if f.Kind != FrameJoinResp {
		return joinResponse{}, fmt.Errorf("cluster: unexpected frame kind %d (want join response)", f.Kind)
	}
	var resp joinResponse
	if err := json.Unmarshal(f.Payload, &resp); err != nil {
		return joinResponse{}, fmt.Errorf("cluster: join response payload: %w", err)
	}
	if len(resp.Members) == 0 {
		return joinResponse{}, fmt.Errorf("cluster: join response carries no members")
	}
	return resp, nil
}

// replicateMsg is the FrameReplicate payload: one cell record pushed to
// a replica, either write-through after a fresh execution or from an
// anti-entropy repair.
type replicateMsg struct {
	Origin string           `json:"origin"`
	FP     string           `json:"fp"`
	Repair bool             `json:"repair,omitempty"`
	Cell   service.CellWire `json:"cell"`
}

func encodeReplicate(epoch uint64, msg replicateMsg) ([]byte, error) {
	payload, err := json.Marshal(msg)
	if err != nil {
		return nil, err
	}
	return EncodeFrame(FrameReplicate, epoch, payload), nil
}

// decodeReplicate verifies and decodes a replication push. The record
// must reconstitute — a damaged payload is an error, never a silent nil.
func decodeReplicate(data []byte, localEpoch uint64) (replicateMsg, *service.CachedResult, error) {
	f, err := DecodeFrame(data)
	if err != nil {
		return replicateMsg{}, nil, err
	}
	if f.Kind != FrameReplicate {
		return replicateMsg{}, nil, fmt.Errorf("cluster: unexpected frame kind %d (want replicate)", f.Kind)
	}
	if err := f.CheckEpoch(localEpoch); err != nil {
		return replicateMsg{}, nil, err
	}
	var msg replicateMsg
	if err := json.Unmarshal(f.Payload, &msg); err != nil {
		return replicateMsg{}, nil, fmt.Errorf("cluster: replicate payload: %w", err)
	}
	if msg.FP == "" {
		return replicateMsg{}, nil, fmt.Errorf("cluster: replicate carries no fingerprint")
	}
	rec := msg.Cell.Record()
	if rec == nil || rec.Result == nil {
		return replicateMsg{}, nil, fmt.Errorf("cluster: replicate carries no reconstitutable record")
	}
	return msg, rec, nil
}

// digestRequest is the FrameDigestReq payload: the fingerprints the
// sender holds that the receiver, as a replica, should hold too.
type digestRequest struct {
	Origin string   `json:"origin"`
	FPs    []string `json:"fps"`
}

// digestResponse is the FrameDigestResp payload: the offered
// fingerprints the receiver is missing.
type digestResponse struct {
	Missing []string `json:"missing"`
}

func encodeDigestRequest(epoch uint64, req digestRequest) ([]byte, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	return EncodeFrame(FrameDigestReq, epoch, payload), nil
}

func decodeDigestRequest(data []byte, localEpoch uint64) (digestRequest, error) {
	f, err := DecodeFrame(data)
	if err != nil {
		return digestRequest{}, err
	}
	if f.Kind != FrameDigestReq {
		return digestRequest{}, fmt.Errorf("cluster: unexpected frame kind %d (want digest request)", f.Kind)
	}
	if err := f.CheckEpoch(localEpoch); err != nil {
		return digestRequest{}, err
	}
	var req digestRequest
	if err := json.Unmarshal(f.Payload, &req); err != nil {
		return digestRequest{}, fmt.Errorf("cluster: digest request payload: %w", err)
	}
	return req, nil
}

func encodeDigestResponse(epoch uint64, resp digestResponse) ([]byte, error) {
	payload, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	return EncodeFrame(FrameDigestResp, epoch, payload), nil
}

func decodeDigestResponse(data []byte, wantEpoch uint64) (digestResponse, error) {
	f, err := DecodeFrame(data)
	if err != nil {
		return digestResponse{}, err
	}
	if f.Kind != FrameDigestResp {
		return digestResponse{}, fmt.Errorf("cluster: unexpected frame kind %d (want digest response)", f.Kind)
	}
	if err := f.CheckEpoch(wantEpoch); err != nil {
		return digestResponse{}, err
	}
	var resp digestResponse
	if err := json.Unmarshal(f.Payload, &resp); err != nil {
		return digestResponse{}, fmt.Errorf("cluster: digest response payload: %w", err)
	}
	return resp, nil
}

// fnv1a is FNV-1a over the frame bytes.
func fnv1a(data []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime
	}
	return h
}
