package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"macroop/internal/journal"
	"macroop/internal/service"
	"macroop/internal/workload"
)

// testClusterInsts keeps cells fast while still exercising the full
// pipeline; the chaos test overrides it upward so the kill lands
// mid-sweep.
const testClusterInsts = 3000

// testLog funnels goroutine logging through a gate so probe loops that
// outlive a test body (they are joined in cleanup) cannot call t.Logf
// after the test completes.
type testLog struct {
	mu   sync.Mutex
	t    *testing.T
	done bool
}

func (l *testLog) logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.done {
		l.t.Logf(format, args...)
	}
}

type testNode struct {
	id   string
	node *Node
	svc  *service.Service
	srv  *httptest.Server
}

// startCluster boots n in-process mopserve nodes with real HTTP between
// them: per-node services and journals, fast failure-detector timings,
// a shared journal directory for failover. Cleanup tears everything
// down and asserts no goroutines leaked.
func startCluster(t *testing.T, ids []string, tweak func(id string, cfg *Config, opts *service.Options)) map[string]*testNode {
	t.Helper()
	baseline := runtime.NumGoroutine()
	dir := t.TempDir()
	lg := &testLog{t: t}
	t.Cleanup(func() {
		lg.mu.Lock()
		lg.done = true
		lg.mu.Unlock()
	})

	listeners := make(map[string]net.Listener, len(ids))
	members := make(map[string]string, len(ids))
	for _, id := range ids {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[id] = l
		members[id] = "http://" + l.Addr().String()
	}
	nodes := make(map[string]*testNode, len(ids))
	for _, id := range ids {
		cfg := Config{
			Self:    id,
			Members: members,
			Timings: Timings{
				HeartbeatInterval: 25 * time.Millisecond,
				SuspectAfter:      100 * time.Millisecond,
				DeadAfter:         300 * time.Millisecond,
			},
			FillTimeout:    20 * time.Second,
			JournalDir:     dir,
			StealThreshold: -1, // tests opt in explicitly
			Replication:    1,  // single-owner semantics; R>1 tests opt in
			Logf:           lg.logf,
		}
		opts := service.Options{
			Workers:      4,
			DefaultInsts: testClusterInsts,
			JournalPath:  filepath.Join(dir, id+".journal"),
			Logf:         lg.logf,
		}
		if tweak != nil {
			tweak(id, &cfg, &opts)
		}
		n, err := New(cfg)
		if err != nil {
			t.Fatalf("cluster.New(%s): %v", id, err)
		}
		svc, err := service.New(n.ServiceOptions(opts))
		if err != nil {
			t.Fatalf("service.New(%s): %v", id, err)
		}
		n.Attach(svc)
		svc.Start()
		srv := httptest.NewUnstartedServer(n.Handler())
		srv.Listener.Close()
		srv.Listener = listeners[id]
		srv.Start()
		n.Start()
		nodes[id] = &testNode{id: id, node: n, svc: svc, srv: srv}
	}
	t.Cleanup(func() {
		for _, tn := range nodes {
			tn.node.Close()
			tn.srv.Close()
			tn.svc.Close()
		}
		// Idle HTTP connections and worker teardown settle asynchronously.
		deadline := time.Now().Add(10 * time.Second)
		for runtime.NumGoroutine() > baseline+3 && time.Now().Before(deadline) {
			time.Sleep(20 * time.Millisecond)
		}
		if g := runtime.NumGoroutine(); g > baseline+3 {
			buf := make([]byte, 1<<20)
			t.Errorf("goroutine leak: %d > baseline %d\n%s", g, baseline, buf[:runtime.Stack(buf, true)])
		}
	})
	return nodes
}

// cellOwnedBy finds a cell (by varying the instruction budget) whose
// fingerprint the ring assigns to the wanted node — ownership is
// deterministic, so tests can place work on a chosen shard.
func cellOwnedBy(t *testing.T, r *Ring, owner string, insts int64) service.CellSpec {
	t.Helper()
	for k := int64(0); k < 256; k++ {
		c := service.CellSpec{Bench: "gzip", Name: "c", Insts: insts + k}
		fp, err := c.Fingerprint()
		if err != nil {
			t.Fatalf("fingerprint: %v", err)
		}
		if o, _ := r.Owner(fp, nil); o == owner {
			return c
		}
	}
	t.Fatalf("no gzip cell owned by %s within 256 budgets", owner)
	return service.CellSpec{}
}

// TestClusterPeerFillServesFromOwnerCache: a cell simulated on its
// owning shard is later served to every other node over the peer
// protocol — one execution cluster-wide, identical checksums.
func TestClusterPeerFillServesFromOwnerCache(t *testing.T) {
	ids := []string{"n1", "n2", "n3"}
	nodes := startCluster(t, ids, nil)
	ctx := context.Background()

	cell := cellOwnedBy(t, nodes["n1"].node.Ring(), "n2", testClusterInsts)
	req := service.SimRequest{Benchmark: cell.Bench, MaxInsts: cell.Insts}

	ownerRes, err := nodes["n2"].svc.Simulate(ctx, req)
	if err != nil {
		t.Fatalf("owner simulate: %v", err)
	}
	if ownerRes.PeerFilled {
		t.Fatal("owner's own cell must not peer-fill")
	}
	for _, other := range []string{"n1", "n3"} {
		res, err := nodes[other].svc.Simulate(ctx, req)
		if err != nil {
			t.Fatalf("%s simulate: %v", other, err)
		}
		if !res.PeerFilled {
			t.Errorf("%s: result not peer-filled", other)
		}
		if res.Checksum != ownerRes.Checksum {
			t.Errorf("%s: checksum %s != owner %s", other, res.Checksum, ownerRes.Checksum)
		}
		if got := nodes[other].svc.Executions(); got != 0 {
			t.Errorf("%s executed %d cells; the owner should have served all", other, got)
		}
	}
	if got := nodes["n2"].svc.Executions(); got != 1 {
		t.Errorf("cluster-wide executions = %d, want exactly 1 on the owner", got)
	}
	if hits := nodes["n1"].node.met.fillHit.Load() + nodes["n3"].node.met.fillHit.Load(); hits < 2 {
		t.Errorf("peer-fill hit metric = %d, want >= 2", hits)
	}
}

// TestClusterRedirectsSingleCellToOwner: POST /v1/simulate on a
// non-owner answers 307 with X-Mop-Owner, and following the Location
// serves the cell.
func TestClusterRedirectsSingleCellToOwner(t *testing.T) {
	ids := []string{"n1", "n2"}
	nodes := startCluster(t, ids, nil)

	cell := cellOwnedBy(t, nodes["n1"].node.Ring(), "n2", testClusterInsts)
	body := fmt.Sprintf(`{"benchmark":%q,"max_insts":%d}`, cell.Bench, cell.Insts)
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}

	resp, err := noFollow.Post(nodes["n1"].srv.URL+"/v1/simulate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("status %d, want 307", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Mop-Owner"); got != "n2" {
		t.Fatalf("X-Mop-Owner %q, want n2", got)
	}
	loc := resp.Header.Get("Location")
	if !strings.HasPrefix(loc, nodes["n2"].srv.URL) {
		t.Fatalf("Location %q does not point at n2 (%s)", loc, nodes["n2"].srv.URL)
	}
	if nodes["n1"].node.met.redirects.Load() == 0 {
		t.Error("redirect metric did not count")
	}

	// A client that follows the redirect (re-POSTing per 307 semantics)
	// lands on the owner and gets the result.
	resp2, err := http.Post(loc, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("follow: %v", err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("owner answered %d, want 200", resp2.StatusCode)
	}
	// The owner serves its own cell directly — no further redirect.
	resp3, err := noFollow.Post(nodes["n2"].srv.URL+"/v1/simulate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("owner post: %v", err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("owner redirected its own cell: %d", resp3.StatusCode)
	}
}

// TestClusterBusyOwnerDegradesToLocal: a draining owner answers fills
// with 503, and the requester executes locally instead of failing —
// steal-by-backpressure.
func TestClusterBusyOwnerDegradesToLocal(t *testing.T) {
	ids := []string{"n1", "n2"}
	nodes := startCluster(t, ids, nil)
	ctx := context.Background()

	cell := cellOwnedBy(t, nodes["n1"].node.Ring(), "n2", testClusterInsts)
	if err := nodes["n2"].svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	res, err := nodes["n1"].svc.Simulate(ctx, service.SimRequest{Benchmark: cell.Bench, MaxInsts: cell.Insts})
	if err != nil {
		t.Fatalf("simulate against busy owner: %v", err)
	}
	if res.PeerFilled {
		t.Error("result claims peer-filled; the owner was draining")
	}
	if res.Checksum == "" {
		t.Error("local degrade produced no checksum")
	}
	if got := nodes["n1"].svc.Executions(); got != 1 {
		t.Errorf("requester executions = %d, want 1 (local degrade)", got)
	}
	if nodes["n1"].node.met.fillBusy.Load() == 0 {
		t.Error("busy outcome not counted")
	}
}

// TestClusterStealsFromSaturatedNode: a node whose queue is past the
// steal threshold hands its own cells to the idlest alive peer.
func TestClusterStealsFromSaturatedNode(t *testing.T) {
	ids := []string{"n1", "n2"}
	nodes := startCluster(t, ids, func(id string, cfg *Config, opts *service.Options) {
		cfg.StealThreshold = 0.001
		if id == "n1" {
			opts.Workers = 1
		}
	})
	ring := nodes["n1"].node.Ring()

	// Benches whose default-budget cells n1 owns: submitted to n1, they
	// take the owner==self path and steal when the queue is deep.
	var benches []string
	for _, b := range workload.Names() {
		fp, err := service.CellSpec{Bench: b, Name: "c", Insts: testClusterInsts}.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if o, _ := ring.Owner(fp, nil); o == "n1" {
			benches = append(benches, b)
		}
	}
	if len(benches) < 2 {
		t.Fatalf("ring assigns only %d of 12 benches to n1; balance test should have caught this", len(benches))
	}
	j, err := nodes["n1"].svc.SubmitMatrix(service.MatrixRequest{
		Benchmarks: benches,
		Configs:    map[string]service.ConfigSpec{"base": {Sched: "base"}},
		MaxInsts:   testClusterInsts,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("job did not finish")
	}
	st := j.Status(false)
	if st.Failed != 0 {
		t.Fatalf("job failed %d cells", st.Failed)
	}
	if out := nodes["n1"].node.met.stealsOut.Load(); out == 0 {
		t.Error("saturated node stole nothing")
	}
	if in := nodes["n2"].node.met.stealsIn.Load(); in == 0 {
		t.Error("idle peer executed no stolen cells")
	}
}

// TestClusterFailoverResumesFromJournal is the in-process chaos drill:
// kill -9 the node coordinating a sweep, and assert the surviving
// adopter (a) finishes the job, (b) produces checksums identical to a
// single-node reference run, and (c) re-executes only cells the dead
// node had not journaled as complete. Run under -race.
func TestClusterFailoverResumesFromJournal(t *testing.T) {
	const chaosInsts = 20_000
	benches := workload.Names()[:6]
	configs := map[string]service.ConfigSpec{"base": {Sched: "base"}, "2cycle": {Sched: "2cycle"}}
	matrix := service.MatrixRequest{Benchmarks: benches, Configs: configs, MaxInsts: chaosInsts}

	// Reference checksums from a plain single-node service.
	ref, err := service.New(service.Options{Workers: 4, DefaultInsts: chaosInsts})
	if err != nil {
		t.Fatal(err)
	}
	ref.Start()
	refJob, err := ref.SubmitMatrix(matrix)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-refJob.Done():
	case <-time.After(120 * time.Second):
		t.Fatal("reference run did not finish")
	}
	want := map[string]string{}
	for _, r := range refJob.Status(true).Results {
		if r.Error != "" {
			t.Fatalf("reference cell %s/%s failed: %s", r.Bench, r.Config, r.Error)
		}
		want[r.Bench+"|"+r.Config] = r.Checksum
	}
	ref.Close()

	ids := []string{"n1", "n2", "n3"}
	nodes := startCluster(t, ids, func(id string, cfg *Config, opts *service.Options) {
		// Race-instrumented runs starve goroutines for hundreds of
		// milliseconds; a hair-trigger DeadAfter would declare live nodes
		// dead and adopt the job before the kill. Only genuine silence
		// (the kill) should cross this bar.
		cfg.Timings = Timings{
			HeartbeatInterval: 50 * time.Millisecond,
			SuspectAfter:      500 * time.Millisecond,
			DeadAfter:         2 * time.Second,
		}
		if id == "n1" {
			opts.Workers = 1 // serialize the coordinator so the kill lands mid-sweep
		}
	})
	jnlPath := filepath.Join(nodes["n1"].node.cfg.JournalDir, "n1.journal")

	// The job's cell fingerprints (deterministic, computable up front).
	jobFPs := map[string]bool{}
	for _, b := range benches {
		for name, cs := range configs {
			fp, err := service.CellSpec{Bench: b, Name: name, Spec: cs, Insts: chaosInsts}.Fingerprint()
			if err != nil {
				t.Fatal(err)
			}
			jobFPs[fp] = true
		}
	}
	adopter, ok := nodes["n1"].node.Ring().Adopter("n1", func(id string) bool { return id != "n1" })
	if !ok {
		t.Fatal("no adopter for n1")
	}

	j, err := nodes["n1"].svc.SubmitMatrix(matrix)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Wait until the coordinator has journaled a few completed cells but
	// cannot have finished, then pull the plug.
	deadline := time.Now().Add(60 * time.Second)
	for {
		recs, err := journal.Load(jnlPath)
		if err != nil {
			t.Fatalf("load journal: %v", err)
		}
		done := 0
		for _, r := range recs {
			if strings.HasPrefix(r.Key, service.KeyCell) {
				done++
			}
		}
		if done >= 3 {
			break
		}
		select {
		case <-j.Done():
			t.Fatal("job finished before the kill; raise chaosInsts")
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("coordinator journaled <3 cells in 60s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	nodes["n1"].node.Kill()
	nodes["n1"].srv.Close()

	// D: what the dead node's journal says was complete — crash-durable
	// work that must not re-execute.
	recs, err := journal.Load(jnlPath)
	if err != nil {
		t.Fatalf("load dead journal: %v", err)
	}
	completed := map[string]bool{}
	for _, r := range recs {
		if strings.HasPrefix(r.Key, service.KeyCell) {
			completed[strings.TrimPrefix(r.Key, service.KeyCell)] = true
		}
	}
	preExec := nodes[adopter].svc.ExecutedFingerprints()

	// The failure detector declares n1 dead; the deterministic adopter
	// resumes the job from n1's journal.
	var aj *service.Job
	deadline = time.Now().Add(30 * time.Second)
	for aj == nil {
		if got, ok := nodes[adopter].svc.Job(j.ID()); ok {
			aj = got
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("adopter %s never adopted job %s", adopter, j.ID())
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case <-aj.Done():
	case <-time.After(120 * time.Second):
		t.Fatal("adopted job did not finish")
	}
	st := aj.Status(true)
	if st.Failed != 0 {
		t.Fatalf("adopted job failed %d cells: %+v", st.Failed, st)
	}
	if st.Completed != len(benches)*len(configs) {
		t.Fatalf("adopted job completed %d of %d cells", st.Completed, len(benches)*len(configs))
	}
	for _, r := range st.Results {
		if w := want[r.Bench+"|"+r.Config]; r.Checksum != w {
			t.Errorf("cell %s/%s checksum %s, reference %s", r.Bench, r.Config, r.Checksum, w)
		}
	}

	// No cell the dead node journaled as complete re-executed on the
	// adopter after the failover.
	postExec := nodes[adopter].svc.ExecutedFingerprints()
	for fp := range jobFPs {
		if completed[fp] && postExec[fp] > preExec[fp] {
			t.Errorf("cell %s was journaled complete before the crash but re-executed", fp)
		}
	}
	met := nodes[adopter].node.met
	if met.adoptedJobs.Load() != 1 {
		t.Errorf("adopted jobs metric = %d, want 1", met.adoptedJobs.Load())
	}
	resumed, rerun := met.cellsResumed.Load(), met.cellsRerun.Load()
	if resumed+rerun != int64(len(benches)*len(configs)) {
		t.Errorf("resumed %d + rerun %d != %d cells", resumed, rerun, len(benches)*len(configs))
	}
	inJob := 0
	for fp := range completed {
		if jobFPs[fp] {
			inJob++
		}
	}
	if resumed < int64(inJob) {
		t.Errorf("resumed %d < %d journaled-complete job cells", resumed, inJob)
	}
	t.Logf("chaos: %d journaled complete at kill; adopter %s resumed %d, re-ran %d", inJob, adopter, resumed, rerun)
}
