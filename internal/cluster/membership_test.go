package cluster

import (
	"testing"
	"time"
)

var t0 = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

func testTimings() Timings {
	return Timings{
		HeartbeatInterval: 100 * time.Millisecond,
		SuspectAfter:      400 * time.Millisecond,
		DeadAfter:         time.Second,
	}
}

// TestSuspectThenDead walks the failure detector through the full state
// machine with a synthetic clock: silence makes a peer suspect (still
// alive for ownership), more silence makes it dead (epoch bump), and an
// ack from the dead peer is a rejoin (another epoch bump).
func TestSuspectThenDead(t *testing.T) {
	tm := testTimings()
	m := NewMembership("n1", map[string]string{"n1": "u1", "n2": "u2", "n3": "u3"}, t0)

	if tr := m.Sweep(t0.Add(tm.SuspectAfter/2), tm); len(tr) != 0 {
		t.Fatalf("early sweep produced transitions: %v", tr)
	}
	// n3 keeps acking; n2 goes silent.
	m.ObserveAck("n3", t0.Add(tm.SuspectAfter), 0, 0, false)

	tr := m.Sweep(t0.Add(tm.SuspectAfter+time.Millisecond), tm)
	if len(tr) != 1 || tr[0].ID != "n2" || tr[0].To != StateSuspect {
		t.Fatalf("want n2 suspect, got %v", tr)
	}
	if !m.Alive("n2") {
		t.Fatal("suspect peer must still own its range")
	}
	if m.Epoch() != 0 {
		t.Fatalf("suspicion must not bump the epoch, got %d", m.Epoch())
	}

	m.ObserveAck("n3", t0.Add(tm.DeadAfter), 0, 0, false)
	tr = m.Sweep(t0.Add(tm.DeadAfter+time.Millisecond), tm)
	if len(tr) != 1 || tr[0].ID != "n2" || tr[0].From != StateSuspect || tr[0].To != StateDead {
		t.Fatalf("want n2 suspect->dead, got %v", tr)
	}
	if m.Alive("n2") {
		t.Fatal("dead peer still owns its range")
	}
	if m.Alive("n1") != true || !m.Alive("n3") {
		t.Fatal("self and acking peer must stay alive")
	}
	if m.Epoch() != 1 {
		t.Fatalf("death must bump the epoch, got %d", m.Epoch())
	}

	// Rejoin: the dead peer acks again.
	tr2, changed := m.ObserveAck("n2", t0.Add(2*tm.DeadAfter), 0, 0, false)
	if !changed || tr2.From != StateDead || tr2.To != StateAlive {
		t.Fatalf("want dead->alive rejoin, got %v changed=%v", tr2, changed)
	}
	if m.Epoch() != 2 {
		t.Fatalf("rejoin must bump the epoch, got %d", m.Epoch())
	}
	if !m.Alive("n2") {
		t.Fatal("rejoined peer not alive")
	}
}

// TestEpochMaxMerge: a restarted node converges to the cluster epoch by
// max-merging what its peers advertise.
func TestEpochMaxMerge(t *testing.T) {
	m := NewMembership("n1", map[string]string{"n1": "u1", "n2": "u2"}, t0)
	m.ObserveAck("n2", t0, 7, 0, false)
	if m.Epoch() != 7 {
		t.Fatalf("epoch did not max-merge: %d", m.Epoch())
	}
	m.ObserveAck("n2", t0, 3, 0, false)
	if m.Epoch() != 7 {
		t.Fatalf("epoch regressed on a lower advertisement: %d", m.Epoch())
	}
}

// TestIdlestAlivePeer: the steal target is the least-loaded alive,
// non-draining peer, and only when it is idler than the bar.
func TestIdlestAlivePeer(t *testing.T) {
	tm := testTimings()
	m := NewMembership("n1", map[string]string{"n1": "u1", "n2": "u2", "n3": "u3", "n4": "u4"}, t0)
	m.ObserveAck("n2", t0, 0, 5, false)
	m.ObserveAck("n3", t0, 0, 1, false)
	m.ObserveAck("n4", t0, 0, 0, true) // idlest but draining

	id, ok := m.IdlestAlivePeer(10)
	if !ok || id != "n3" {
		t.Fatalf("want n3 (queue 1), got %q ok=%v", id, ok)
	}
	if _, ok := m.IdlestAlivePeer(1); ok {
		t.Fatal("no peer is idler than bar 1; steal target reported anyway")
	}

	// Kill n3; the next-idlest alive peer wins.
	m.Sweep(t0.Add(2*tm.DeadAfter), tm)
	m.ObserveAck("n2", t0.Add(2*tm.DeadAfter), 0, 5, false)
	id, ok = m.IdlestAlivePeer(10)
	if !ok || id != "n2" {
		t.Fatalf("want n2 after n3 died, got %q ok=%v", id, ok)
	}
}

// TestAddPeerVersioning: admitting a member bumps both the membership
// version and the epoch exactly once; re-adding only refreshes the
// address; self and blank entries are rejected.
func TestAddPeerVersioning(t *testing.T) {
	m := NewMembership("n1", map[string]string{"n1": "u1", "n2": "u2"}, t0)
	if m.Version() != 0 {
		t.Fatalf("fresh membership has version %d", m.Version())
	}
	if !m.AddPeer("n3", "u3", t0) {
		t.Fatal("new peer not admitted")
	}
	if m.Version() != 1 || m.Epoch() != 1 {
		t.Fatalf("admit did not bump version/epoch: v=%d e=%d", m.Version(), m.Epoch())
	}
	if !m.Alive("n3") {
		t.Fatal("admitted peer not alive")
	}
	if m.AddPeer("n3", "u3-moved", t0) {
		t.Fatal("re-admit reported a view change")
	}
	if m.Version() != 1 || m.Epoch() != 1 {
		t.Fatalf("re-admit bumped version/epoch: v=%d e=%d", m.Version(), m.Epoch())
	}
	if addr, _ := m.PeerAddr("n3"); addr != "u3-moved" {
		t.Fatalf("re-admit did not refresh address: %s", addr)
	}
	for _, bad := range []struct{ id, addr string }{{"", "u"}, {"nx", ""}, {"n1", "u1"}} {
		if m.AddPeer(bad.id, bad.addr, t0) {
			t.Fatalf("bad peer %+v admitted", bad)
		}
	}
	ids := m.MemberIDs()
	if len(ids) != 3 || ids[0] != "n1" || ids[1] != "n2" || ids[2] != "n3" {
		t.Fatalf("member IDs %v", ids)
	}
	members := m.Members()
	if members["n1"] != "u1" || members["n3"] != "u3-moved" || len(members) != 3 {
		t.Fatalf("member map %v", members)
	}
}

// TestVersionAndEpochMerge: advertised versions and epochs max-merge and
// never regress.
func TestVersionAndEpochMerge(t *testing.T) {
	m := NewMembership("n1", map[string]string{"n1": "u1", "n2": "u2"}, t0)
	m.MergeVersion(5)
	if m.Version() != 5 {
		t.Fatalf("version did not merge: %d", m.Version())
	}
	m.MergeVersion(2)
	if m.Version() != 5 {
		t.Fatalf("version regressed: %d", m.Version())
	}
	m.MergeEpoch(9)
	if m.Epoch() != 9 {
		t.Fatalf("epoch did not merge: %d", m.Epoch())
	}
	m.MergeEpoch(1)
	if m.Epoch() != 9 {
		t.Fatalf("epoch regressed: %d", m.Epoch())
	}
}

// TestSnapshotSorted: the membership snapshot is deterministic.
func TestSnapshotSorted(t *testing.T) {
	m := NewMembership("n2", map[string]string{"n1": "u1", "n2": "u2", "n3": "u3"}, t0)
	snap := m.Snapshot()
	if len(snap) != 2 || snap[0].ID != "n1" || snap[1].ID != "n3" {
		t.Fatalf("unexpected snapshot %v", snap)
	}
	for _, mi := range snap {
		if mi.State != "alive" {
			t.Fatalf("peer %s starts %s, want alive", mi.ID, mi.State)
		}
	}
}
