package cluster

import (
	"testing"
	"time"
)

var t0 = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

func testTimings() Timings {
	return Timings{
		HeartbeatInterval: 100 * time.Millisecond,
		SuspectAfter:      400 * time.Millisecond,
		DeadAfter:         time.Second,
	}
}

// TestSuspectThenDead walks the failure detector through the full state
// machine with a synthetic clock: silence makes a peer suspect (still
// alive for ownership), more silence makes it dead (epoch bump), and an
// ack from the dead peer is a rejoin (another epoch bump).
func TestSuspectThenDead(t *testing.T) {
	tm := testTimings()
	m := NewMembership("n1", map[string]string{"n1": "u1", "n2": "u2", "n3": "u3"}, t0)

	if tr := m.Sweep(t0.Add(tm.SuspectAfter/2), tm); len(tr) != 0 {
		t.Fatalf("early sweep produced transitions: %v", tr)
	}
	// n3 keeps acking; n2 goes silent.
	m.ObserveAck("n3", t0.Add(tm.SuspectAfter), 0, 0, false)

	tr := m.Sweep(t0.Add(tm.SuspectAfter+time.Millisecond), tm)
	if len(tr) != 1 || tr[0].ID != "n2" || tr[0].To != StateSuspect {
		t.Fatalf("want n2 suspect, got %v", tr)
	}
	if !m.Alive("n2") {
		t.Fatal("suspect peer must still own its range")
	}
	if m.Epoch() != 0 {
		t.Fatalf("suspicion must not bump the epoch, got %d", m.Epoch())
	}

	m.ObserveAck("n3", t0.Add(tm.DeadAfter), 0, 0, false)
	tr = m.Sweep(t0.Add(tm.DeadAfter+time.Millisecond), tm)
	if len(tr) != 1 || tr[0].ID != "n2" || tr[0].From != StateSuspect || tr[0].To != StateDead {
		t.Fatalf("want n2 suspect->dead, got %v", tr)
	}
	if m.Alive("n2") {
		t.Fatal("dead peer still owns its range")
	}
	if m.Alive("n1") != true || !m.Alive("n3") {
		t.Fatal("self and acking peer must stay alive")
	}
	if m.Epoch() != 1 {
		t.Fatalf("death must bump the epoch, got %d", m.Epoch())
	}

	// Rejoin: the dead peer acks again.
	tr2, changed := m.ObserveAck("n2", t0.Add(2*tm.DeadAfter), 0, 0, false)
	if !changed || tr2.From != StateDead || tr2.To != StateAlive {
		t.Fatalf("want dead->alive rejoin, got %v changed=%v", tr2, changed)
	}
	if m.Epoch() != 2 {
		t.Fatalf("rejoin must bump the epoch, got %d", m.Epoch())
	}
	if !m.Alive("n2") {
		t.Fatal("rejoined peer not alive")
	}
}

// TestEpochMaxMerge: a restarted node converges to the cluster epoch by
// max-merging what its peers advertise.
func TestEpochMaxMerge(t *testing.T) {
	m := NewMembership("n1", map[string]string{"n1": "u1", "n2": "u2"}, t0)
	m.ObserveAck("n2", t0, 7, 0, false)
	if m.Epoch() != 7 {
		t.Fatalf("epoch did not max-merge: %d", m.Epoch())
	}
	m.ObserveAck("n2", t0, 3, 0, false)
	if m.Epoch() != 7 {
		t.Fatalf("epoch regressed on a lower advertisement: %d", m.Epoch())
	}
}

// TestIdlestAlivePeer: the steal target is the least-loaded alive,
// non-draining peer, and only when it is idler than the bar.
func TestIdlestAlivePeer(t *testing.T) {
	tm := testTimings()
	m := NewMembership("n1", map[string]string{"n1": "u1", "n2": "u2", "n3": "u3", "n4": "u4"}, t0)
	m.ObserveAck("n2", t0, 0, 5, false)
	m.ObserveAck("n3", t0, 0, 1, false)
	m.ObserveAck("n4", t0, 0, 0, true) // idlest but draining

	id, ok := m.IdlestAlivePeer(10)
	if !ok || id != "n3" {
		t.Fatalf("want n3 (queue 1), got %q ok=%v", id, ok)
	}
	if _, ok := m.IdlestAlivePeer(1); ok {
		t.Fatal("no peer is idler than bar 1; steal target reported anyway")
	}

	// Kill n3; the next-idlest alive peer wins.
	m.Sweep(t0.Add(2*tm.DeadAfter), tm)
	m.ObserveAck("n2", t0.Add(2*tm.DeadAfter), 0, 5, false)
	id, ok = m.IdlestAlivePeer(10)
	if !ok || id != "n2" {
		t.Fatalf("want n2 after n3 died, got %q ok=%v", id, ok)
	}
}

// TestSnapshotSorted: the membership snapshot is deterministic.
func TestSnapshotSorted(t *testing.T) {
	m := NewMembership("n2", map[string]string{"n1": "u1", "n2": "u2", "n3": "u3"}, t0)
	snap := m.Snapshot()
	if len(snap) != 2 || snap[0].ID != "n1" || snap[1].ID != "n3" {
		t.Fatalf("unexpected snapshot %v", snap)
	}
	for _, mi := range snap {
		if mi.State != "alive" {
			t.Fatalf("peer %s starts %s, want alive", mi.ID, mi.State)
		}
	}
}
