package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"macroop/internal/service"
)

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte(`{"hello":"world"}`)
	data := EncodeFrame(FrameFillReq, 42, payload)
	f, err := DecodeFrame(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if f.Kind != FrameFillReq || f.Epoch != 42 || !bytes.Equal(f.Payload, payload) {
		t.Fatalf("round trip mangled frame: %+v", f)
	}
	if err := f.CheckEpoch(42); err != nil {
		t.Fatalf("matching epoch rejected: %v", err)
	}
	if err := f.CheckEpoch(43); !errors.Is(err, ErrEpochMismatch) {
		t.Fatalf("divergent epoch accepted: %v", err)
	}
}

// TestFrameRejectsCorruption: every way a frame can be damaged maps to
// a typed error — wrong magic, any truncation point, any flipped byte,
// trailing garbage, oversized length prefix.
func TestFrameRejectsCorruption(t *testing.T) {
	data := EncodeFrame(FrameFillResp, 7, []byte(`{"cached":true}`))

	if _, err := DecodeFrame([]byte("HTTP/1.1 200 OK\r\n")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("foreign bytes: %v", err)
	}
	for i := 0; i < len(data); i++ {
		if _, err := DecodeFrame(data[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, err := DecodeFrame(mut); err == nil {
			t.Fatalf("bit flip at %d accepted", i)
		}
	}
	if _, err := DecodeFrame(append(append([]byte(nil), data...), 0x00)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("trailing byte: %v", err)
	}

	// A header whose length prefix exceeds the bound must be rejected
	// before any allocation of that size.
	huge := []byte(wireMagic)
	huge = append(huge, FrameFillReq)
	huge = binary.LittleEndian.AppendUint64(huge, 1)
	huge = binary.AppendUvarint(huge, MaxFrameBytes+1)
	if _, err := DecodeFrame(huge); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized length prefix: %v", err)
	}
}

// TestFillRequestEpochReject: a fill built under a divergent membership
// view is refused with the typed epoch error, not served.
func TestFillRequestEpochReject(t *testing.T) {
	spec := service.CellSpec{Bench: "gzip", Name: "base", Insts: 1000}
	data, err := encodeFillRequest(5, fillRequest{Origin: "n1", Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeFillRequest(data, 5); err != nil {
		t.Fatalf("matching epoch rejected: %v", err)
	}
	if _, err := decodeFillRequest(data, 6); !errors.Is(err, ErrEpochMismatch) {
		t.Fatalf("want epoch mismatch, got %v", err)
	}
	// Wrong frame kind on the fill endpoint is an error too.
	resp := EncodeFrame(FrameFillResp, 5, []byte(`{}`))
	if _, err := decodeFillRequest(resp, 5); err == nil {
		t.Fatal("response frame accepted as a request")
	}
}

// TestFillResponseRejectsUnreconstitutable: a frame whose payload does
// not carry a usable record is an error, never a silent nil.
func TestFillResponseRejectsUnreconstitutable(t *testing.T) {
	data := EncodeFrame(FrameFillResp, 1, []byte(`{"cached":true,"cell":{}}`))
	if _, _, err := decodeFillResponse(data, 1); err == nil {
		t.Fatal("empty record accepted")
	}
	data = EncodeFrame(FrameFillResp, 1, []byte(`not json`))
	if _, _, err := decodeFillResponse(data, 1); err == nil {
		t.Fatal("non-JSON payload accepted")
	}
}

// FuzzDecodeFrame pins the decoder's safety contract: arbitrary bytes
// never panic, anything that decodes obeys the size bound and decodes
// identically a second time, and a frame re-encoded from the decoded
// parts carries the same content.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte(wireMagic))
	f.Add(EncodeFrame(FrameFillReq, 0, nil))
	f.Add(EncodeFrame(FrameFillReq, 42, []byte(`{"origin":"n1"}`)))
	f.Add(EncodeFrame(FrameFillResp, 1<<63, []byte(`{"cached":true}`)))
	valid := EncodeFrame(FrameFillReq, 7, []byte("payload"))
	f.Add(valid[:len(valid)-1])
	mut := append([]byte(nil), valid...)
	mut[6] ^= 0xff
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if len(fr.Payload) > MaxFrameBytes {
			t.Fatalf("decoded payload exceeds bound: %d", len(fr.Payload))
		}
		fr2, err2 := DecodeFrame(data)
		if err2 != nil || fr2.Kind != fr.Kind || fr2.Epoch != fr.Epoch || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("decode not deterministic: %v", err2)
		}
		re, err3 := DecodeFrame(EncodeFrame(fr.Kind, fr.Epoch, fr.Payload))
		if err3 != nil || re.Kind != fr.Kind || re.Epoch != fr.Epoch || !bytes.Equal(re.Payload, fr.Payload) {
			t.Fatalf("re-encode round trip failed: %v", err3)
		}
		// The higher-level decoders must not panic either.
		decodeFillRequest(data, fr.Epoch)
		decodeFillResponse(data, fr.Epoch)
	})
}
