package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"macroop/internal/core"
	"macroop/internal/service"
)

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte(`{"hello":"world"}`)
	data := EncodeFrame(FrameFillReq, 42, payload)
	f, err := DecodeFrame(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if f.Kind != FrameFillReq || f.Epoch != 42 || !bytes.Equal(f.Payload, payload) {
		t.Fatalf("round trip mangled frame: %+v", f)
	}
	if err := f.CheckEpoch(42); err != nil {
		t.Fatalf("matching epoch rejected: %v", err)
	}
	if err := f.CheckEpoch(43); !errors.Is(err, ErrEpochMismatch) {
		t.Fatalf("divergent epoch accepted: %v", err)
	}
}

// TestFrameRejectsCorruption: every way a frame can be damaged maps to
// a typed error — wrong magic, any truncation point, any flipped byte,
// trailing garbage, oversized length prefix.
func TestFrameRejectsCorruption(t *testing.T) {
	data := EncodeFrame(FrameFillResp, 7, []byte(`{"cached":true}`))

	if _, err := DecodeFrame([]byte("HTTP/1.1 200 OK\r\n")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("foreign bytes: %v", err)
	}
	for i := 0; i < len(data); i++ {
		if _, err := DecodeFrame(data[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, err := DecodeFrame(mut); err == nil {
			t.Fatalf("bit flip at %d accepted", i)
		}
	}
	if _, err := DecodeFrame(append(append([]byte(nil), data...), 0x00)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("trailing byte: %v", err)
	}

	// A header whose length prefix exceeds the bound must be rejected
	// before any allocation of that size.
	huge := []byte(wireMagic)
	huge = append(huge, FrameFillReq)
	huge = binary.LittleEndian.AppendUint64(huge, 1)
	huge = binary.AppendUvarint(huge, MaxFrameBytes+1)
	if _, err := DecodeFrame(huge); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized length prefix: %v", err)
	}
}

// TestFillRequestEpochReject: a fill built under a divergent membership
// view is refused with the typed epoch error, not served.
func TestFillRequestEpochReject(t *testing.T) {
	spec := service.CellSpec{Bench: "gzip", Name: "base", Insts: 1000}
	data, err := encodeFillRequest(5, fillRequest{Origin: "n1", Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeFillRequest(data, 5); err != nil {
		t.Fatalf("matching epoch rejected: %v", err)
	}
	if _, err := decodeFillRequest(data, 6); !errors.Is(err, ErrEpochMismatch) {
		t.Fatalf("want epoch mismatch, got %v", err)
	}
	// Wrong frame kind on the fill endpoint is an error too.
	resp := EncodeFrame(FrameFillResp, 5, []byte(`{}`))
	if _, err := decodeFillRequest(resp, 5); err == nil {
		t.Fatal("response frame accepted as a request")
	}
}

// TestFillResponseRejectsUnreconstitutable: a frame whose payload does
// not carry a usable record is an error, never a silent nil.
func TestFillResponseRejectsUnreconstitutable(t *testing.T) {
	data := EncodeFrame(FrameFillResp, 1, []byte(`{"cached":true,"cell":{}}`))
	if _, _, err := decodeFillResponse(data, 1); err == nil {
		t.Fatal("empty record accepted")
	}
	data = EncodeFrame(FrameFillResp, 1, []byte(`not json`))
	if _, _, err := decodeFillResponse(data, 1); err == nil {
		t.Fatal("non-JSON payload accepted")
	}
}

// TestJoinFrameRoundTrip: the join handshake survives its wire trip,
// and the request is deliberately exempt from epoch checking (a joiner
// cannot know the cluster epoch yet).
func TestJoinFrameRoundTrip(t *testing.T) {
	data, err := encodeJoinRequest(joinRequest{ID: "n4", Addr: "http://127.0.0.1:9999"})
	if err != nil {
		t.Fatal(err)
	}
	req, err := decodeJoinRequest(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if req.ID != "n4" || req.Addr != "http://127.0.0.1:9999" {
		t.Fatalf("round trip mangled request: %+v", req)
	}
	if _, err := decodeJoinRequest(EncodeFrame(FrameJoinReq, 0, []byte(`{"id":"","addr":""}`))); err == nil {
		t.Fatal("empty id/addr accepted")
	}

	resp := joinResponse{
		Members:     map[string]string{"n1": "http://a", "n2": "http://b"},
		Epoch:       7,
		Version:     3,
		Replication: 2,
	}
	rdata, err := encodeJoinResponse(7, resp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeJoinResponse(rdata)
	if err != nil {
		t.Fatalf("decode response: %v", err)
	}
	if got.Epoch != 7 || got.Version != 3 || got.Replication != 2 || len(got.Members) != 2 {
		t.Fatalf("round trip mangled response: %+v", got)
	}
	if _, err := decodeJoinResponse(EncodeFrame(FrameJoinResp, 0, []byte(`{"members":{}}`))); err == nil {
		t.Fatal("memberless snapshot accepted")
	}
	// Wrong kinds are typed errors on both decoders.
	if _, err := decodeJoinRequest(rdata); err == nil {
		t.Fatal("response frame accepted as a request")
	}
	if _, err := decodeJoinResponse(data); err == nil {
		t.Fatal("request frame accepted as a response")
	}
}

// TestReplicateFrame: a record push round-trips, divergent epochs are
// refused, and a damaged record payload is an error, never a silent nil.
func TestReplicateFrame(t *testing.T) {
	rec := &service.CachedResult{Bench: "gzip", Checksum: 0xdeadbeef, Commits: 42, SourceEpoch: 3, Result: &core.Result{}}
	cw, err := service.WireFromRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	data, err := encodeReplicate(3, replicateMsg{Origin: "n1", FP: "fp-1", Repair: true, Cell: *cw})
	if err != nil {
		t.Fatal(err)
	}
	msg, got, err := decodeReplicate(data, 3)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if msg.Origin != "n1" || msg.FP != "fp-1" || !msg.Repair {
		t.Fatalf("round trip mangled message: %+v", msg)
	}
	if got.Checksum != rec.Checksum || got.SourceEpoch != 3 {
		t.Fatalf("record mangled: %+v", got)
	}
	if _, _, err := decodeReplicate(data, 4); !errors.Is(err, ErrEpochMismatch) {
		t.Fatalf("want epoch mismatch, got %v", err)
	}
	if _, _, err := decodeReplicate(EncodeFrame(FrameReplicate, 1, []byte(`{"fp":"x","cell":{}}`)), 1); err == nil {
		t.Fatal("unreconstitutable record accepted")
	}
	if _, _, err := decodeReplicate(EncodeFrame(FrameReplicate, 1, []byte(`{"origin":"n1","cell":{}}`)), 1); err == nil {
		t.Fatal("missing fingerprint accepted")
	}
}

// TestDigestFrames: the anti-entropy exchange round-trips and is
// epoch-guarded in both directions.
func TestDigestFrames(t *testing.T) {
	data, err := encodeDigestRequest(5, digestRequest{Origin: "n1", FPs: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	req, err := decodeDigestRequest(data, 5)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if req.Origin != "n1" || len(req.FPs) != 2 {
		t.Fatalf("round trip mangled request: %+v", req)
	}
	if _, err := decodeDigestRequest(data, 6); !errors.Is(err, ErrEpochMismatch) {
		t.Fatalf("want epoch mismatch, got %v", err)
	}

	rdata, err := encodeDigestResponse(5, digestResponse{Missing: []string{"b"}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := decodeDigestResponse(rdata, 5)
	if err != nil {
		t.Fatalf("decode response: %v", err)
	}
	if len(resp.Missing) != 1 || resp.Missing[0] != "b" {
		t.Fatalf("round trip mangled response: %+v", resp)
	}
	if _, err := decodeDigestResponse(rdata, 4); !errors.Is(err, ErrEpochMismatch) {
		t.Fatalf("want epoch mismatch, got %v", err)
	}
	if _, err := decodeDigestRequest(rdata, 5); err == nil {
		t.Fatal("response frame accepted as a request")
	}
}

// FuzzDecodeFrame pins the decoder's safety contract: arbitrary bytes
// never panic, anything that decodes obeys the size bound and decodes
// identically a second time, and a frame re-encoded from the decoded
// parts carries the same content.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte(wireMagic))
	f.Add(EncodeFrame(FrameFillReq, 0, nil))
	f.Add(EncodeFrame(FrameFillReq, 42, []byte(`{"origin":"n1"}`)))
	f.Add(EncodeFrame(FrameFillResp, 1<<63, []byte(`{"cached":true}`)))
	f.Add(EncodeFrame(FrameJoinReq, 0, []byte(`{"id":"n4","addr":"http://x"}`)))
	f.Add(EncodeFrame(FrameJoinResp, 3, []byte(`{"members":{"n1":"http://a"},"epoch":3,"version":1,"replication":2}`)))
	f.Add(EncodeFrame(FrameReplicate, 9, []byte(`{"origin":"n1","fp":"f","repair":true,"cell":{"bench":"gzip","result":{},"checksum":"00000000deadbeef"}}`)))
	f.Add(EncodeFrame(FrameDigestReq, 2, []byte(`{"origin":"n2","fps":["a","b","c"]}`)))
	f.Add(EncodeFrame(FrameDigestResp, 2, []byte(`{"missing":["b"]}`)))
	valid := EncodeFrame(FrameFillReq, 7, []byte("payload"))
	f.Add(valid[:len(valid)-1])
	mut := append([]byte(nil), valid...)
	mut[6] ^= 0xff
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if len(fr.Payload) > MaxFrameBytes {
			t.Fatalf("decoded payload exceeds bound: %d", len(fr.Payload))
		}
		fr2, err2 := DecodeFrame(data)
		if err2 != nil || fr2.Kind != fr.Kind || fr2.Epoch != fr.Epoch || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("decode not deterministic: %v", err2)
		}
		re, err3 := DecodeFrame(EncodeFrame(fr.Kind, fr.Epoch, fr.Payload))
		if err3 != nil || re.Kind != fr.Kind || re.Epoch != fr.Epoch || !bytes.Equal(re.Payload, fr.Payload) {
			t.Fatalf("re-encode round trip failed: %v", err3)
		}
		// The higher-level decoders must not panic either.
		decodeFillRequest(data, fr.Epoch)
		decodeFillResponse(data, fr.Epoch)
		decodeJoinRequest(data)
		decodeJoinResponse(data)
		decodeReplicate(data, fr.Epoch)
		decodeDigestRequest(data, fr.Epoch)
		decodeDigestResponse(data, fr.Epoch)
	})
}
