package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"macroop/internal/journal"
	"macroop/internal/service"
	"macroop/internal/workload"
)

// Config describes one node's view of the fleet. Membership is dynamic:
// the member map seeds the initial view, a node started with JoinAddr
// enters a live fleet through the join handshake, and new members
// propagate through membership-version-stamped heartbeats.
type Config struct {
	// Self is this node's member ID. Must appear in Members.
	Self string
	// Members maps member IDs to base URLs (http://host:port). A joining
	// node may carry only its own entry; the handshake fills in the rest.
	Members map[string]string
	// Replicas is the virtual-node count per member (0 = 64).
	Replicas int
	// Replication is the replica-set size R: each cell fingerprint has an
	// ordered set of R distinct members, the first of which (the primary)
	// executes and write-through-replicates the record to the rest
	// (default 2; 1 restores single-owner PR-7 behaviour).
	Replication int
	// JoinAddr, when set, is the base URL of any live fleet member; this
	// node joins through it instead of assuming Members is complete.
	JoinAddr string
	// RepairInterval is the anti-entropy period: each round this node
	// offers cell-fingerprint digests to its replica peers and pushes the
	// records they are missing (0 disables the loop).
	RepairInterval time.Duration
	// Timings configures the failure detector.
	Timings Timings
	// FillTimeout bounds one peer cache-fill round trip, including the
	// owner executing the cell (default 30s). On expiry the requester
	// executes locally — a slow peer never stalls a sweep.
	FillTimeout time.Duration
	// FillRetries is the attempt budget per fill for transient transport
	// errors (default 3). Busy and epoch rejections never retry.
	FillRetries int
	// FillBackoff is the base of the capped exponential backoff between
	// fill attempts (default 100ms, doubling, capped at 2s).
	FillBackoff time.Duration
	// StealThreshold is the queue-depth fraction past which a node hands
	// its own cells to the idlest alive peer (default 0.75; negative
	// disables stealing).
	StealThreshold float64
	// JournalDir is the shared directory of per-node journals
	// (<dir>/<id>.journal). It enables journal-backed failover: the
	// adopter of a dead node reads that node's journal here. Empty
	// disables adoption (ring re-ownership still happens).
	JournalDir string
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...any)
}

const maxFillBackoff = 2 * time.Second

func (c Config) withDefaults() (Config, error) {
	if c.Self == "" {
		return c, fmt.Errorf("cluster: missing self ID")
	}
	if _, ok := c.Members[c.Self]; !ok {
		return c, fmt.Errorf("cluster: self %q not in member map", c.Self)
	}
	c.Timings = c.Timings.withDefaults()
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.FillTimeout <= 0 {
		c.FillTimeout = 30 * time.Second
	}
	if c.FillRetries <= 0 {
		c.FillRetries = 3
	}
	if c.FillBackoff <= 0 {
		c.FillBackoff = 100 * time.Millisecond
	}
	if c.StealThreshold == 0 {
		c.StealThreshold = 0.75
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c, nil
}

// Node is the cluster layer around one service.Service: consistent-hash
// routing with replica sets, peer cache-fill, write-through replication,
// anti-entropy repair, work stealing, failure detection, dynamic joins,
// and journal-backed failover.
type Node struct {
	cfg  Config
	ring atomic.Pointer[Ring] // rebuilt on every membership change
	mem  *Membership
	met  *clusterMetrics
	svc  *service.Service
	hc   *http.Client

	repl chan replItem // write-through replication queue

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds the node (ring + failure detector). Wire it to a service
// with ServiceOptions and Attach, then call Start after service.Start.
func New(cfg Config) (*Node, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:  cfg,
		mem:  NewMembership(cfg.Self, cfg.Members, time.Now()),
		met:  &clusterMetrics{},
		hc:   &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}},
		repl: make(chan replItem, replQueueDepth),
		stop: make(chan struct{}),
	}
	if err := n.rebuildRing(); err != nil {
		return nil, err
	}
	return n, nil
}

// rebuildRing recomputes the ring over the current member view. Called
// at construction and whenever membership grows (a join, or a member
// learned from a peer's heartbeat).
func (n *Node) rebuildRing() error {
	r, err := NewRing(n.mem.MemberIDs(), n.cfg.Replicas)
	if err != nil {
		return err
	}
	n.ring.Store(r)
	return nil
}

// ServiceOptions injects the cluster hooks into a service configuration:
// node-scoped job IDs, the peer cache-fill hook, epoch stamping,
// write-through replication of fresh executions, and cluster state on
// /healthz.
func (n *Node) ServiceOptions(base service.Options) service.Options {
	base.NodeName = n.cfg.Self
	base.PeerFill = n.peerFill
	base.ClusterHealth = func() any { return n.healthInfo() }
	base.Epoch = n.mem.Epoch
	if n.cfg.Replication > 1 {
		base.OnExecuted = n.enqueueReplication
	}
	if base.Logf != nil {
		n.cfg.Logf = base.Logf
	}
	return base
}

// Attach binds the node to its started service.
func (n *Node) Attach(svc *service.Service) { n.svc = svc }

// Ring exposes the node's current ring (for tests and tooling).
func (n *Node) Ring() *Ring { return n.ring.Load() }

// Membership exposes the node's failure detector.
func (n *Node) Membership() *Membership { return n.mem }

// selfAddr is this node's advertised base URL.
func (n *Node) selfAddr() string { return n.cfg.Members[n.cfg.Self] }

// Start spawns the background loops: the join handshake (when
// configured), the heartbeat prober, the replication workers, and the
// anti-entropy repair loop. Call after service.Start.
func (n *Node) Start() {
	if n.cfg.JoinAddr != "" {
		n.wg.Add(1)
		go n.joinLoop()
	}
	n.wg.Add(1)
	go n.probeLoop()
	if n.cfg.Replication > 1 {
		for i := 0; i < replWorkers; i++ {
			n.wg.Add(1)
			go n.replWorker()
		}
		if n.cfg.RepairInterval > 0 {
			n.wg.Add(1)
			go n.repairLoop()
		}
	}
}

// Close stops the prober and waits for in-flight failovers. It does not
// touch the service — the caller drains that separately.
func (n *Node) Close() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.wg.Wait()
	n.closeIdle()
}

// Kill hard-stops the node and its service without draining — the
// in-process stand-in for kill -9 in chaos tests.
func (n *Node) Kill() {
	n.stopOnce.Do(func() { close(n.stop) })
	if n.svc != nil {
		n.svc.Abort()
	}
	n.closeIdle()
}

func (n *Node) closeIdle() {
	if tr, ok := n.hc.Transport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
}

// ---------------------------------------------------------------------
// HTTP surface.

// heartbeatAck is the /cluster/v1/heartbeat response body. It carries
// the responder's membership version and full member map so one
// heartbeat round is enough for a join to propagate: a prober whose
// version is behind merges the unknown members out of the ack.
type heartbeatAck struct {
	Node       string            `json:"node"`
	Epoch      uint64            `json:"epoch"`
	Version    uint64            `json:"version"`
	QueueDepth int               `json:"queue_depth"`
	Draining   bool              `json:"draining"`
	Members    map[string]string `json:"members,omitempty"`
}

// RingSample is one sampled ring key's replica set: who serves it, and
// whether the set is degraded (fewer than R alive members remain).
type RingSample struct {
	Key      string   `json:"key"`
	Replicas []string `json:"replicas"`
	Degraded bool     `json:"degraded,omitempty"`
}

// RingInfo is the /cluster/v1/ring response body — what a cluster-aware
// client needs to discover the fleet from any seed node.
type RingInfo struct {
	Self        string       `json:"self"`
	Epoch       uint64       `json:"epoch"`
	Version     uint64       `json:"version"`
	Replication int          `json:"replication"`
	Members     []MemberInfo `json:"members"`
	Samples     []RingSample `json:"samples,omitempty"`
}

// Handler wraps the service's HTTP API with the cluster surface:
//
//	GET  /cluster/v1/heartbeat   liveness + load + membership version (the failure detector's probe)
//	GET  /cluster/v1/ring        membership/ownership snapshot with sampled replica sets
//	POST /cluster/v1/fill        peer cache-fill (checksummed wire frames; probe = cache-only)
//	POST /cluster/v1/join        membership handshake for a freshly started node
//	POST /cluster/v1/replicate   write-through / repair record push from a replica peer
//	POST /cluster/v1/digest      anti-entropy fingerprint-digest exchange
//	POST /v1/simulate            307 + X-Mop-Owner redirect to the owning shard
//	GET  /metrics                service families + cluster families
//
// Everything else falls through to the service handler (matrix jobs run
// on whichever node accepted them, with per-cell peer fill underneath).
func (n *Node) Handler() http.Handler {
	svcHandler := n.svc.Handler()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /cluster/v1/heartbeat", n.handleHeartbeat)
	mux.HandleFunc("GET /cluster/v1/ring", n.handleRing)
	mux.HandleFunc("POST /cluster/v1/fill", n.handleFill)
	mux.HandleFunc("POST /cluster/v1/join", n.handleJoin)
	mux.HandleFunc("POST /cluster/v1/replicate", n.handleReplicate)
	mux.HandleFunc("POST /cluster/v1/digest", n.handleDigest)
	mux.HandleFunc("POST /v1/simulate", n.routeSimulate)
	mux.HandleFunc("GET /metrics", n.handleMetrics)
	mux.Handle("/", svcHandler)
	return mux
}

// handleHeartbeat acks a probe. The prober identifies itself with
// from/addr/v query parameters: an unknown prober is admitted on the
// spot (heartbeats self-heal membership in both directions), and its
// advertised membership version max-merges into ours.
func (n *Node) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if from, fa := q.Get("from"), q.Get("addr"); from != "" && fa != "" {
		if n.mem.AddPeer(from, fa, time.Now()) {
			if err := n.rebuildRing(); err == nil {
				n.met.joins.Add(1)
				n.cfg.Logf("cluster: learned member %s (%s) from its heartbeat (epoch %d)", from, fa, n.mem.Epoch())
			}
		}
	}
	if v, err := strconv.ParseUint(q.Get("v"), 10, 64); err == nil {
		n.mem.MergeVersion(v)
	}
	service.WriteJSON(w, http.StatusOK, heartbeatAck{
		Node:       n.cfg.Self,
		Epoch:      n.mem.Epoch(),
		Version:    n.mem.Version(),
		QueueDepth: n.svc.QueueDepth(),
		Draining:   n.svc.Draining(),
		Members:    n.mem.Members(),
	})
}

func (n *Node) ringInfo() RingInfo {
	members := n.mem.Snapshot()
	members = append(members, MemberInfo{
		ID: n.cfg.Self, Addr: n.selfAddr(), State: StateAlive.String(),
		QueueDepth: n.svc.QueueDepth(), Draining: n.svc.Draining(), LastAck: time.Now(),
	})
	sort.Slice(members, func(i, k int) bool { return members[i].ID < members[k].ID })
	ring := n.Ring()
	samples := make([]RingSample, 0, len(workload.Names()))
	for _, bench := range workload.Names() {
		set := ring.Replicas(bench, n.cfg.Replication, n.mem.Alive)
		samples = append(samples, RingSample{
			Key:      bench,
			Replicas: set,
			Degraded: len(set) < n.cfg.Replication,
		})
	}
	return RingInfo{
		Self:        n.cfg.Self,
		Epoch:       n.mem.Epoch(),
		Version:     n.mem.Version(),
		Replication: n.cfg.Replication,
		Members:     members,
		Samples:     samples,
	}
}

func (n *Node) handleRing(w http.ResponseWriter, r *http.Request) {
	service.WriteJSON(w, http.StatusOK, n.ringInfo())
}

// healthInfo is the "cluster" section of /healthz.
func (n *Node) healthInfo() any {
	info := n.ringInfo()
	return struct {
		RingInfo
		JournalDir string `json:"journal_dir,omitempty"`
		Failovers  int64  `json:"failovers"`
		Redirects  int64  `json:"redirects"`
	}{info, n.cfg.JournalDir, n.met.failovers.Load(), n.met.redirects.Load()}
}

// routeSimulate sends a single-cell request to its owning shard: a 307
// redirect with X-Mop-Owner when another live node owns the cell's hash,
// local handling otherwise. Matrix jobs are not redirected — the
// accepting node coordinates and per-cell peer fill does the routing.
func (n *Node) routeSimulate(w http.ResponseWriter, r *http.Request) {
	var req service.SimRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		service.WriteJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return
	}
	_, fp, err := n.svc.ResolveSim(req)
	if err != nil {
		n.svc.WriteError(w, err)
		return
	}
	if owner, ok := n.Ring().Owner(fp, n.mem.Alive); ok && owner != n.cfg.Self {
		if addr, ok := n.mem.PeerAddr(owner); ok {
			n.met.redirects.Add(1)
			w.Header().Set("Location", strings.TrimRight(addr, "/")+"/v1/simulate")
			w.Header().Set("X-Mop-Owner", owner)
			service.WriteJSON(w, http.StatusTemporaryRedirect, map[string]string{
				"owner": owner, "cell": fp,
			})
			return
		}
	}
	cr, err := n.svc.Simulate(r.Context(), req)
	if err != nil {
		n.svc.WriteError(w, err)
		return
	}
	service.WriteJSON(w, http.StatusOK, cr)
}

// handleFill serves a peer's cache-fill request: decode and verify the
// frame (400 corrupt, 409 epoch mismatch), then resolve the cell through
// the local cache/singleflight/execution path under normal admission
// control (503 busy — the requester's cue to run it themselves). A probe
// request is a cache-only lookup: a miss answers 404 and never executes,
// so a new primary can ask the surviving replicas for a record before
// re-running the cell.
func (n *Node) handleFill(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(io.LimitReader(r.Body, MaxFrameBytes+64))
	if err != nil {
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return
	}
	epoch := n.mem.Epoch()
	req, err := decodeFillRequest(data, epoch)
	if err != nil {
		if errors.Is(err, ErrEpochMismatch) {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Probe {
		fp, err := n.svc.FingerprintCell(req.Spec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		rec, ok := n.svc.CachedByFingerprint(fp)
		if !ok {
			http.Error(w, "probe miss", http.StatusNotFound)
			return
		}
		frame, err := encodeFillResponse(epoch, true, rec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(frame)
		return
	}
	rec, cached, err := n.svc.ExecuteSpec(r.Context(), req.Spec)
	switch {
	case errors.Is(err, service.ErrQueueFull), errors.Is(err, service.ErrDraining):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		// A typed simulation failure re-fails identically on the
		// requester, which then owns the full diagnostic; transport it as
		// a bad gateway so the requester degrades.
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	if req.Force && !cached {
		n.met.stealsIn.Add(1)
		n.cfg.Logf("cluster: executed %s/%s for saturated peer %s", req.Spec.Bench, req.Spec.Name, req.Origin)
	}
	frame, err := encodeFillResponse(epoch, cached, rec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(frame)
}

func (n *Node) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	b.WriteString(n.svc.MetricsText())
	n.met.render(&b, n.cfg.Self, n.mem.Epoch(), n.mem.Version(), n.mem.Snapshot())
	io.WriteString(w, b.String())
}

// ---------------------------------------------------------------------
// Peer cache-fill (requester side) and work stealing.

// peerFill is the service's PeerFill hook: route a cache-missing cell
// through its replica set before executing locally. Runs inside the
// cell's singleflight, so concurrent identical requests share one fetch.
//
// As primary, this node probes the other replicas for a record that
// survived a previous primary (cache-only, never executes remotely)
// before falling through to stealing or local execution — that is what
// keeps completed cells from re-running after a failover promotes a cold
// primary. As a non-primary, it asks the primary to fill (executing if
// needed), then probes the remaining replicas, and degrades to local
// execution when the whole set is unreachable — a single SIGKILL never
// fails a client request. One FillTimeout bounds the whole chain.
func (n *Node) peerFill(ctx context.Context, cell service.CellSpec, fp string) (*service.CachedResult, bool) {
	set := n.Ring().Replicas(fp, n.cfg.Replication, n.mem.Alive)
	if len(set) == 0 {
		return nil, false
	}
	ctx, cancel := context.WithTimeout(ctx, n.cfg.FillTimeout)
	defer cancel()
	if set[0] == n.cfg.Self {
		for _, id := range set[1:] {
			rec, outcome := n.fillFrom(ctx, id, fillRequest{Origin: n.cfg.Self, Probe: true, Spec: cell})
			n.countFill(outcome)
			if rec != nil {
				return rec, true
			}
			if ctx.Err() != nil {
				return nil, false
			}
		}
		return n.maybeSteal(ctx, cell)
	}
	for _, id := range set {
		if id == n.cfg.Self {
			continue // we are a replica and already missed locally
		}
		req := fillRequest{Origin: n.cfg.Self, Spec: cell}
		if id != set[0] {
			req.Probe = true // only the primary executes on our behalf
		}
		rec, outcome := n.fillFrom(ctx, id, req)
		n.countFill(outcome)
		if rec != nil {
			return rec, true
		}
		if ctx.Err() != nil {
			break
		}
		n.cfg.Logf("cluster: fill %s/%s from %s: %s", cell.Bench, cell.Name, id, outcome)
	}
	n.cfg.Logf("cluster: replica set for %s/%s exhausted; executing locally", cell.Bench, cell.Name)
	return nil, false
}

// fillFrom resolves a member's address and runs one fill conversation
// against it.
func (n *Node) fillFrom(ctx context.Context, id string, req fillRequest) (*service.CachedResult, string) {
	addr, ok := n.mem.PeerAddr(id)
	if !ok {
		return nil, "error"
	}
	return n.requestFill(ctx, addr, req)
}

// maybeSteal hands one of this node's own cells to the idlest alive peer
// when the local queue is past the steal threshold — hot shards shed
// work to idle ones instead of queueing behind themselves.
func (n *Node) maybeSteal(ctx context.Context, cell service.CellSpec) (*service.CachedResult, bool) {
	if n.cfg.StealThreshold <= 0 {
		return nil, false
	}
	depth, bound := n.svc.QueueDepth(), n.svc.QueueBound()
	if float64(depth) < float64(bound)*n.cfg.StealThreshold {
		return nil, false
	}
	peer, ok := n.mem.IdlestAlivePeer(depth / 2)
	if !ok {
		return nil, false
	}
	addr, ok := n.mem.PeerAddr(peer)
	if !ok {
		return nil, false
	}
	rec, outcome := n.requestFill(ctx, addr, fillRequest{Origin: n.cfg.Self, Force: true, Spec: cell})
	if rec == nil {
		n.cfg.Logf("cluster: steal %s/%s to %s: %s; executing locally", cell.Bench, cell.Name, peer, outcome)
		return nil, false
	}
	n.met.stealsOut.Add(1)
	return rec, true
}

// requestFill performs one fill conversation: capped exponential backoff
// on transient transport errors, immediate degrade on busy (503), probe
// miss (404), and epoch (409) answers. The caller bounds the deadline
// (peerFill spends one FillTimeout across the whole replica chain).
// outcome is the metric label.
func (n *Node) requestFill(ctx context.Context, addr string, req fillRequest) (*service.CachedResult, string) {
	epoch := n.mem.Epoch()
	body, err := encodeFillRequest(epoch, req)
	if err != nil {
		return nil, "error"
	}
	start := time.Now()
	defer func() { n.met.observeFill(time.Since(start).Seconds()) }()
	backoff := n.cfg.FillBackoff
	for attempt := 1; ; attempt++ {
		rec, cached, outcome, retryable := n.fillOnce(ctx, addr, body, epoch)
		if rec != nil {
			if cached {
				return rec, "hit"
			}
			return rec, "executed"
		}
		if !retryable || attempt >= n.cfg.FillRetries {
			return nil, outcome
		}
		select {
		case <-ctx.Done():
			return nil, "timeout"
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > maxFillBackoff {
			backoff = maxFillBackoff
		}
	}
}

func (n *Node) fillOnce(ctx context.Context, addr string, body []byte, epoch uint64) (rec *service.CachedResult, cached bool, outcome string, retryable bool) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(addr, "/")+"/cluster/v1/fill", bytes.NewReader(body))
	if err != nil {
		return nil, false, "error", false
	}
	hreq.Header.Set("Content-Type", "application/octet-stream")
	resp, err := n.hc.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return nil, false, "timeout", false
		}
		return nil, false, "error", true
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, MaxFrameBytes+64))
		if err != nil {
			return nil, false, "error", true
		}
		rec, cached, err := decodeFillResponse(data, epoch)
		if err != nil {
			if errors.Is(err, ErrEpochMismatch) {
				return nil, false, "epoch", false
			}
			return nil, false, "error", false
		}
		return rec, cached, "", false
	case http.StatusServiceUnavailable:
		return nil, false, "busy", false
	case http.StatusNotFound:
		return nil, false, "miss", false
	case http.StatusConflict:
		return nil, false, "epoch", false
	default:
		return nil, false, "error", true
	}
}

func (n *Node) countFill(outcome string) {
	switch outcome {
	case "hit":
		n.met.fillHit.Add(1)
	case "executed":
		n.met.fillRan.Add(1)
	case "busy":
		n.met.fillBusy.Add(1)
	case "miss":
		n.met.fillMiss.Add(1)
	case "timeout":
		n.met.fillTimeout.Add(1)
	case "epoch":
		n.met.fillEpoch.Add(1)
	default:
		n.met.fillError.Add(1)
	}
}

// ---------------------------------------------------------------------
// Failure detection and failover.

// probeLoop heartbeats on a jittered period: each interval is drawn
// uniformly from ±10% around HeartbeatInterval, so a fleet restarted in
// lockstep (rolling restart, shared supervisor) de-synchronizes instead
// of bursting every probe at the failure detector simultaneously.
func (n *Node) probeLoop() {
	defer n.wg.Done()
	rng := rand.New(rand.NewSource(int64(hash64(n.cfg.Self)) ^ time.Now().UnixNano()))
	for {
		iv := n.cfg.Timings.HeartbeatInterval
		d := time.Duration(float64(iv) * (0.9 + 0.2*rng.Float64()))
		t := time.NewTimer(d)
		select {
		case <-n.stop:
			t.Stop()
			return
		case <-t.C:
			n.probeAll()
		}
	}
}

// probeAll heartbeats every currently known peer concurrently, then
// advances the suspect → dead state machine and fires failover for
// fresh deaths. The member set is the live membership view, not the
// startup config, so joined members are probed too.
func (n *Node) probeAll() {
	var pwg sync.WaitGroup
	for id, addr := range n.mem.Members() {
		if id == n.cfg.Self {
			continue
		}
		pwg.Add(1)
		go func(id, addr string) {
			defer pwg.Done()
			n.probeOne(id, addr)
		}(id, addr)
	}
	pwg.Wait()
	for _, tr := range n.mem.Sweep(time.Now(), n.cfg.Timings) {
		switch tr.To {
		case StateSuspect:
			n.cfg.Logf("cluster: %s suspect (no heartbeat for %v)", tr.ID, n.cfg.Timings.SuspectAfter)
		case StateDead:
			n.cfg.Logf("cluster: %s declared dead (epoch %d)", tr.ID, n.mem.Epoch())
			n.wg.Add(1)
			go func(dead string) {
				defer n.wg.Done()
				n.failover(dead)
			}(tr.ID)
		}
	}
}

func (n *Node) probeOne(id, addr string) {
	timeout := n.cfg.Timings.SuspectAfter / 2
	if timeout < n.cfg.Timings.HeartbeatInterval {
		timeout = n.cfg.Timings.HeartbeatInterval
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	q := url.Values{
		"from": {n.cfg.Self},
		"addr": {n.selfAddr()},
		"v":    {strconv.FormatUint(n.mem.Version(), 10)},
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(addr, "/")+"/cluster/v1/heartbeat?"+q.Encode(), nil)
	if err != nil {
		return
	}
	resp, err := n.hc.Do(hreq)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var ack heartbeatAck
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&ack) != nil {
		return
	}
	// Merge members we have not seen yet out of the ack before recording
	// it: one heartbeat round spreads a join across the whole fleet.
	changed := false
	for mid, maddr := range ack.Members {
		if n.mem.AddPeer(mid, maddr, time.Now()) {
			changed = true
			n.cfg.Logf("cluster: learned member %s (%s) from %s's heartbeat (epoch %d)", mid, maddr, id, n.mem.Epoch())
		}
	}
	if changed {
		if err := n.rebuildRing(); err != nil {
			n.cfg.Logf("cluster: ring rebuild: %v", err)
		}
	}
	n.mem.MergeVersion(ack.Version)
	if tr, changed := n.mem.ObserveAck(id, time.Now(), ack.Epoch, ack.QueueDepth, ack.Draining); changed && tr.From == StateDead {
		n.cfg.Logf("cluster: %s rejoined (epoch %d)", id, n.mem.Epoch())
	}
}

// ownershipRecord is the journaled form of a liveness transition: who
// died, at which epoch, and who adopted its range and jobs. Every
// survivor journals the transition; the adopter's record also carries
// the recovery accounting.
type ownershipRecord struct {
	Epoch       uint64    `json:"epoch"`
	Dead        string    `json:"dead"`
	Adopter     string    `json:"adopter"`
	Time        time.Time `json:"time"`
	AdoptedJobs []string  `json:"adopted_jobs,omitempty"`
	CellsWarmed int       `json:"cells_warmed,omitempty"`
	CellsRerun  int       `json:"cells_rerun,omitempty"`
}

// failover handles one peer's death. Every survivor journals the epoch
// transition; the deterministic adopter (same ring computation on every
// survivor) additionally reads the dead node's journal from the shared
// directory — tolerating a torn tail from the crash — warms every
// journaled cell result into its own cache, and re-owns the dead node's
// unfinished jobs so only cells the dead node had not journaled as
// complete re-execute.
func (n *Node) failover(dead string) {
	epoch := n.mem.Epoch()
	adopter, ok := n.Ring().Adopter(dead, n.mem.Alive)
	rec := ownershipRecord{Epoch: epoch, Dead: dead, Adopter: adopter, Time: time.Now().UTC()}
	if !ok || adopter != n.cfg.Self {
		n.appendOwnership(epoch, dead, rec)
		return
	}
	n.met.failovers.Add(1)
	if n.cfg.JournalDir == "" {
		n.cfg.Logf("cluster: adopting %s's range (no journal dir; jobs cannot be resumed)", dead)
		n.appendOwnership(epoch, dead, rec)
		return
	}
	path := filepath.Join(n.cfg.JournalDir, dead+".journal")
	recs, err := journal.Load(path)
	if err != nil {
		n.cfg.Logf("cluster: failover %s: reading %s: %v", dead, path, err)
		n.appendOwnership(epoch, dead, rec)
		return
	}
	// Epoch-aware index: newest-epoch-wins for cellres duplicates (a
	// replicated record can appear from two source epochs), last-wins
	// for everything else — the same policy the service's own replay uses.
	index := service.IndexRecords(recs)
	warmed := 0
	var unfinished []service.JobSpecRecord
	for key, data := range index {
		switch {
		case strings.HasPrefix(key, service.KeyCell):
			var cw service.CellWire
			if json.Unmarshal(data, &cw) != nil {
				continue // damaged record: that cell simply re-runs
			}
			if cr := cw.Record(); cr != nil {
				if n.svc.WarmCache(key[len(service.KeyCell):], cr) {
					warmed++
				}
			}
		case strings.HasPrefix(key, service.KeyJobSpec):
			var spec service.JobSpecRecord
			if json.Unmarshal(data, &spec) != nil {
				continue
			}
			if _, done := index[service.KeyJobDone+spec.ID]; done {
				continue
			}
			unfinished = append(unfinished, spec)
		}
	}
	n.met.cellsWarmed.Add(int64(warmed))
	sort.Slice(unfinished, func(i, k int) bool { return unfinished[i].ID < unfinished[k].ID })
	for _, spec := range unfinished {
		j, resumed, rerun, err := n.svc.AdoptJob(spec.ID, spec.Cells)
		if err != nil {
			n.cfg.Logf("cluster: failover %s: adopt %s: %v", dead, spec.ID, err)
			continue
		}
		n.met.adoptedJobs.Add(1)
		n.met.cellsResumed.Add(int64(resumed))
		n.met.cellsRerun.Add(int64(rerun))
		rec.AdoptedJobs = append(rec.AdoptedJobs, j.ID())
		rec.CellsRerun += rerun
		n.cfg.Logf("cluster: adopted %s from %s: %d cells resume from journal, %d re-run",
			j.ID(), dead, resumed, rerun)
	}
	rec.CellsWarmed = warmed
	n.appendOwnership(epoch, dead, rec)
	n.cfg.Logf("cluster: failover %s complete: %d cells warmed, %d jobs adopted", dead, warmed, len(rec.AdoptedJobs))
}

func (n *Node) appendOwnership(epoch uint64, dead string, rec ownershipRecord) {
	if err := n.svc.AppendJournal(fmt.Sprintf("epoch|%020d|%s", epoch, dead), rec); err != nil {
		n.cfg.Logf("cluster: journal ownership record: %v", err)
	}
}
