package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"macroop/internal/journal"
	"macroop/internal/service"
)

// Config describes one node's view of the fleet. Membership is static:
// every node is started with the full member map, and liveness (not
// membership) is what heartbeats track.
type Config struct {
	// Self is this node's member ID. Must appear in Members.
	Self string
	// Members maps member IDs to base URLs (http://host:port).
	Members map[string]string
	// Replicas is the virtual-node count per member (0 = 64).
	Replicas int
	// Timings configures the failure detector.
	Timings Timings
	// FillTimeout bounds one peer cache-fill round trip, including the
	// owner executing the cell (default 30s). On expiry the requester
	// executes locally — a slow peer never stalls a sweep.
	FillTimeout time.Duration
	// FillRetries is the attempt budget per fill for transient transport
	// errors (default 3). Busy and epoch rejections never retry.
	FillRetries int
	// FillBackoff is the base of the capped exponential backoff between
	// fill attempts (default 100ms, doubling, capped at 2s).
	FillBackoff time.Duration
	// StealThreshold is the queue-depth fraction past which a node hands
	// its own cells to the idlest alive peer (default 0.75; negative
	// disables stealing).
	StealThreshold float64
	// JournalDir is the shared directory of per-node journals
	// (<dir>/<id>.journal). It enables journal-backed failover: the
	// adopter of a dead node reads that node's journal here. Empty
	// disables adoption (ring re-ownership still happens).
	JournalDir string
	// Logf receives operational log lines (nil discards them).
	Logf func(format string, args ...any)
}

const maxFillBackoff = 2 * time.Second

func (c Config) withDefaults() (Config, error) {
	if c.Self == "" {
		return c, fmt.Errorf("cluster: missing self ID")
	}
	if _, ok := c.Members[c.Self]; !ok {
		return c, fmt.Errorf("cluster: self %q not in member map", c.Self)
	}
	c.Timings = c.Timings.withDefaults()
	if c.FillTimeout <= 0 {
		c.FillTimeout = 30 * time.Second
	}
	if c.FillRetries <= 0 {
		c.FillRetries = 3
	}
	if c.FillBackoff <= 0 {
		c.FillBackoff = 100 * time.Millisecond
	}
	if c.StealThreshold == 0 {
		c.StealThreshold = 0.75
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c, nil
}

// Node is the cluster layer around one service.Service: consistent-hash
// routing, peer cache-fill, work stealing, failure detection, and
// journal-backed failover.
type Node struct {
	cfg  Config
	ring *Ring
	mem  *Membership
	met  *clusterMetrics
	svc  *service.Service
	hc   *http.Client

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds the node (ring + failure detector). Wire it to a service
// with ServiceOptions and Attach, then call Start after service.Start.
func New(cfg Config) (*Node, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	members := make([]string, 0, len(cfg.Members))
	for id := range cfg.Members {
		members = append(members, id)
	}
	ring, err := NewRing(members, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	return &Node{
		cfg:  cfg,
		ring: ring,
		mem:  NewMembership(cfg.Self, cfg.Members, time.Now()),
		met:  &clusterMetrics{},
		hc:   &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}},
		stop: make(chan struct{}),
	}, nil
}

// ServiceOptions injects the cluster hooks into a service configuration:
// node-scoped job IDs, the peer cache-fill hook, and cluster state on
// /healthz.
func (n *Node) ServiceOptions(base service.Options) service.Options {
	base.NodeName = n.cfg.Self
	base.PeerFill = n.peerFill
	base.ClusterHealth = func() any { return n.healthInfo() }
	if base.Logf != nil {
		n.cfg.Logf = base.Logf
	}
	return base
}

// Attach binds the node to its started service.
func (n *Node) Attach(svc *service.Service) { n.svc = svc }

// Ring exposes the node's ring (for tests and tooling).
func (n *Node) Ring() *Ring { return n.ring }

// Membership exposes the node's failure detector.
func (n *Node) Membership() *Membership { return n.mem }

// Start spawns the heartbeat prober. Call after service.Start.
func (n *Node) Start() {
	n.wg.Add(1)
	go n.probeLoop()
}

// Close stops the prober and waits for in-flight failovers. It does not
// touch the service — the caller drains that separately.
func (n *Node) Close() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.wg.Wait()
	n.closeIdle()
}

// Kill hard-stops the node and its service without draining — the
// in-process stand-in for kill -9 in chaos tests.
func (n *Node) Kill() {
	n.stopOnce.Do(func() { close(n.stop) })
	if n.svc != nil {
		n.svc.Abort()
	}
	n.closeIdle()
}

func (n *Node) closeIdle() {
	if tr, ok := n.hc.Transport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
}

// ---------------------------------------------------------------------
// HTTP surface.

// heartbeatAck is the /cluster/v1/heartbeat response body.
type heartbeatAck struct {
	Node       string `json:"node"`
	Epoch      uint64 `json:"epoch"`
	QueueDepth int    `json:"queue_depth"`
	Draining   bool   `json:"draining"`
}

// RingInfo is the /cluster/v1/ring response body — what a cluster-aware
// client needs to discover the fleet from any seed node.
type RingInfo struct {
	Self    string       `json:"self"`
	Epoch   uint64       `json:"epoch"`
	Members []MemberInfo `json:"members"`
}

// Handler wraps the service's HTTP API with the cluster surface:
//
//	GET  /cluster/v1/heartbeat   liveness + load (the failure detector's probe)
//	GET  /cluster/v1/ring        membership/ownership snapshot (client discovery)
//	POST /cluster/v1/fill        peer cache-fill (checksummed wire frames)
//	POST /v1/simulate            307 + X-Mop-Owner redirect to the owning shard
//	GET  /metrics                service families + cluster families
//
// Everything else falls through to the service handler (matrix jobs run
// on whichever node accepted them, with per-cell peer fill underneath).
func (n *Node) Handler() http.Handler {
	svcHandler := n.svc.Handler()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /cluster/v1/heartbeat", n.handleHeartbeat)
	mux.HandleFunc("GET /cluster/v1/ring", n.handleRing)
	mux.HandleFunc("POST /cluster/v1/fill", n.handleFill)
	mux.HandleFunc("POST /v1/simulate", n.routeSimulate)
	mux.HandleFunc("GET /metrics", n.handleMetrics)
	mux.Handle("/", svcHandler)
	return mux
}

func (n *Node) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	service.WriteJSON(w, http.StatusOK, heartbeatAck{
		Node:       n.cfg.Self,
		Epoch:      n.mem.Epoch(),
		QueueDepth: n.svc.QueueDepth(),
		Draining:   n.svc.Draining(),
	})
}

func (n *Node) ringInfo() RingInfo {
	members := n.mem.Snapshot()
	members = append(members, MemberInfo{
		ID: n.cfg.Self, Addr: n.cfg.Members[n.cfg.Self], State: StateAlive.String(),
		QueueDepth: n.svc.QueueDepth(), Draining: n.svc.Draining(), LastAck: time.Now(),
	})
	sort.Slice(members, func(i, k int) bool { return members[i].ID < members[k].ID })
	return RingInfo{Self: n.cfg.Self, Epoch: n.mem.Epoch(), Members: members}
}

func (n *Node) handleRing(w http.ResponseWriter, r *http.Request) {
	service.WriteJSON(w, http.StatusOK, n.ringInfo())
}

// healthInfo is the "cluster" section of /healthz.
func (n *Node) healthInfo() any {
	info := n.ringInfo()
	return struct {
		RingInfo
		JournalDir string `json:"journal_dir,omitempty"`
		Failovers  int64  `json:"failovers"`
		Redirects  int64  `json:"redirects"`
	}{info, n.cfg.JournalDir, n.met.failovers.Load(), n.met.redirects.Load()}
}

// routeSimulate sends a single-cell request to its owning shard: a 307
// redirect with X-Mop-Owner when another live node owns the cell's hash,
// local handling otherwise. Matrix jobs are not redirected — the
// accepting node coordinates and per-cell peer fill does the routing.
func (n *Node) routeSimulate(w http.ResponseWriter, r *http.Request) {
	var req service.SimRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		service.WriteJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return
	}
	_, fp, err := n.svc.ResolveSim(req)
	if err != nil {
		n.svc.WriteError(w, err)
		return
	}
	if owner, ok := n.ring.Owner(fp, n.mem.Alive); ok && owner != n.cfg.Self {
		if addr, ok := n.mem.PeerAddr(owner); ok {
			n.met.redirects.Add(1)
			w.Header().Set("Location", strings.TrimRight(addr, "/")+"/v1/simulate")
			w.Header().Set("X-Mop-Owner", owner)
			service.WriteJSON(w, http.StatusTemporaryRedirect, map[string]string{
				"owner": owner, "cell": fp,
			})
			return
		}
	}
	cr, err := n.svc.Simulate(r.Context(), req)
	if err != nil {
		n.svc.WriteError(w, err)
		return
	}
	service.WriteJSON(w, http.StatusOK, cr)
}

// handleFill serves a peer's cache-fill request: decode and verify the
// frame (400 corrupt, 409 epoch mismatch), then resolve the cell through
// the local cache/singleflight/execution path under normal admission
// control (503 busy — the requester's cue to run it themselves).
func (n *Node) handleFill(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(io.LimitReader(r.Body, MaxFrameBytes+64))
	if err != nil {
		http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
		return
	}
	epoch := n.mem.Epoch()
	req, err := decodeFillRequest(data, epoch)
	if err != nil {
		if errors.Is(err, ErrEpochMismatch) {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rec, cached, err := n.svc.ExecuteSpec(r.Context(), req.Spec)
	switch {
	case errors.Is(err, service.ErrQueueFull), errors.Is(err, service.ErrDraining):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		// A typed simulation failure re-fails identically on the
		// requester, which then owns the full diagnostic; transport it as
		// a bad gateway so the requester degrades.
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	if req.Force && !cached {
		n.met.stealsIn.Add(1)
		n.cfg.Logf("cluster: executed %s/%s for saturated peer %s", req.Spec.Bench, req.Spec.Name, req.Origin)
	}
	frame, err := encodeFillResponse(epoch, cached, rec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(frame)
}

func (n *Node) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	b.WriteString(n.svc.MetricsText())
	n.met.render(&b, n.cfg.Self, n.mem.Epoch(), n.mem.Snapshot())
	io.WriteString(w, b.String())
}

// ---------------------------------------------------------------------
// Peer cache-fill (requester side) and work stealing.

// peerFill is the service's PeerFill hook: route a cache-missing cell to
// its owning shard before executing locally. Runs inside the cell's
// singleflight, so concurrent identical requests share one fetch.
func (n *Node) peerFill(ctx context.Context, cell service.CellSpec, fp string) (*service.CachedResult, bool) {
	owner, ok := n.ring.Owner(fp, n.mem.Alive)
	if !ok {
		return nil, false
	}
	if owner == n.cfg.Self {
		return n.maybeSteal(ctx, cell)
	}
	addr, ok := n.mem.PeerAddr(owner)
	if !ok {
		return nil, false
	}
	rec, outcome := n.requestFill(ctx, addr, fillRequest{Origin: n.cfg.Self, Spec: cell})
	n.countFill(outcome)
	if rec == nil {
		n.cfg.Logf("cluster: fill %s/%s from %s: %s; executing locally", cell.Bench, cell.Name, owner, outcome)
		return nil, false
	}
	return rec, true
}

// maybeSteal hands one of this node's own cells to the idlest alive peer
// when the local queue is past the steal threshold — hot shards shed
// work to idle ones instead of queueing behind themselves.
func (n *Node) maybeSteal(ctx context.Context, cell service.CellSpec) (*service.CachedResult, bool) {
	if n.cfg.StealThreshold <= 0 {
		return nil, false
	}
	depth, bound := n.svc.QueueDepth(), n.svc.QueueBound()
	if float64(depth) < float64(bound)*n.cfg.StealThreshold {
		return nil, false
	}
	peer, ok := n.mem.IdlestAlivePeer(depth / 2)
	if !ok {
		return nil, false
	}
	addr, ok := n.mem.PeerAddr(peer)
	if !ok {
		return nil, false
	}
	rec, outcome := n.requestFill(ctx, addr, fillRequest{Origin: n.cfg.Self, Force: true, Spec: cell})
	if rec == nil {
		n.cfg.Logf("cluster: steal %s/%s to %s: %s; executing locally", cell.Bench, cell.Name, peer, outcome)
		return nil, false
	}
	n.met.stealsOut.Add(1)
	return rec, true
}

// requestFill performs one fill conversation: bounded deadline, capped
// exponential backoff on transient transport errors, immediate degrade
// on busy (503) and epoch (409) answers. outcome is the metric label.
func (n *Node) requestFill(ctx context.Context, addr string, req fillRequest) (*service.CachedResult, string) {
	epoch := n.mem.Epoch()
	body, err := encodeFillRequest(epoch, req)
	if err != nil {
		return nil, "error"
	}
	ctx, cancel := context.WithTimeout(ctx, n.cfg.FillTimeout)
	defer cancel()
	start := time.Now()
	defer func() { n.met.observeFill(time.Since(start).Seconds()) }()
	backoff := n.cfg.FillBackoff
	for attempt := 1; ; attempt++ {
		rec, cached, outcome, retryable := n.fillOnce(ctx, addr, body, epoch)
		if rec != nil {
			if cached {
				return rec, "hit"
			}
			return rec, "executed"
		}
		if !retryable || attempt >= n.cfg.FillRetries {
			return nil, outcome
		}
		select {
		case <-ctx.Done():
			return nil, "timeout"
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > maxFillBackoff {
			backoff = maxFillBackoff
		}
	}
}

func (n *Node) fillOnce(ctx context.Context, addr string, body []byte, epoch uint64) (rec *service.CachedResult, cached bool, outcome string, retryable bool) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(addr, "/")+"/cluster/v1/fill", bytes.NewReader(body))
	if err != nil {
		return nil, false, "error", false
	}
	hreq.Header.Set("Content-Type", "application/octet-stream")
	resp, err := n.hc.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return nil, false, "timeout", false
		}
		return nil, false, "error", true
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, MaxFrameBytes+64))
		if err != nil {
			return nil, false, "error", true
		}
		rec, cached, err := decodeFillResponse(data, epoch)
		if err != nil {
			if errors.Is(err, ErrEpochMismatch) {
				return nil, false, "epoch", false
			}
			return nil, false, "error", false
		}
		return rec, cached, "", false
	case http.StatusServiceUnavailable:
		return nil, false, "busy", false
	case http.StatusConflict:
		return nil, false, "epoch", false
	default:
		return nil, false, "error", true
	}
}

func (n *Node) countFill(outcome string) {
	switch outcome {
	case "hit":
		n.met.fillHit.Add(1)
	case "executed":
		n.met.fillRan.Add(1)
	case "busy":
		n.met.fillBusy.Add(1)
	case "timeout":
		n.met.fillTimeout.Add(1)
	case "epoch":
		n.met.fillEpoch.Add(1)
	default:
		n.met.fillError.Add(1)
	}
}

// ---------------------------------------------------------------------
// Failure detection and failover.

func (n *Node) probeLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.Timings.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.probeAll()
		}
	}
}

// probeAll heartbeats every peer concurrently, then advances the
// suspect → dead state machine and fires failover for fresh deaths.
func (n *Node) probeAll() {
	var pwg sync.WaitGroup
	for id, addr := range n.cfg.Members {
		if id == n.cfg.Self {
			continue
		}
		pwg.Add(1)
		go func(id, addr string) {
			defer pwg.Done()
			n.probeOne(id, addr)
		}(id, addr)
	}
	pwg.Wait()
	for _, tr := range n.mem.Sweep(time.Now(), n.cfg.Timings) {
		switch tr.To {
		case StateSuspect:
			n.cfg.Logf("cluster: %s suspect (no heartbeat for %v)", tr.ID, n.cfg.Timings.SuspectAfter)
		case StateDead:
			n.cfg.Logf("cluster: %s declared dead (epoch %d)", tr.ID, n.mem.Epoch())
			n.wg.Add(1)
			go func(dead string) {
				defer n.wg.Done()
				n.failover(dead)
			}(tr.ID)
		}
	}
}

func (n *Node) probeOne(id, addr string) {
	timeout := n.cfg.Timings.SuspectAfter / 2
	if timeout < n.cfg.Timings.HeartbeatInterval {
		timeout = n.cfg.Timings.HeartbeatInterval
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(addr, "/")+"/cluster/v1/heartbeat", nil)
	if err != nil {
		return
	}
	resp, err := n.hc.Do(hreq)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var ack heartbeatAck
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&ack) != nil {
		return
	}
	if tr, changed := n.mem.ObserveAck(id, time.Now(), ack.Epoch, ack.QueueDepth, ack.Draining); changed && tr.From == StateDead {
		n.cfg.Logf("cluster: %s rejoined (epoch %d)", id, n.mem.Epoch())
	}
}

// ownershipRecord is the journaled form of a liveness transition: who
// died, at which epoch, and who adopted its range and jobs. Every
// survivor journals the transition; the adopter's record also carries
// the recovery accounting.
type ownershipRecord struct {
	Epoch       uint64    `json:"epoch"`
	Dead        string    `json:"dead"`
	Adopter     string    `json:"adopter"`
	Time        time.Time `json:"time"`
	AdoptedJobs []string  `json:"adopted_jobs,omitempty"`
	CellsWarmed int       `json:"cells_warmed,omitempty"`
	CellsRerun  int       `json:"cells_rerun,omitempty"`
}

// failover handles one peer's death. Every survivor journals the epoch
// transition; the deterministic adopter (same ring computation on every
// survivor) additionally reads the dead node's journal from the shared
// directory — tolerating a torn tail from the crash — warms every
// journaled cell result into its own cache, and re-owns the dead node's
// unfinished jobs so only cells the dead node had not journaled as
// complete re-execute.
func (n *Node) failover(dead string) {
	epoch := n.mem.Epoch()
	adopter, ok := n.ring.Adopter(dead, n.mem.Alive)
	rec := ownershipRecord{Epoch: epoch, Dead: dead, Adopter: adopter, Time: time.Now().UTC()}
	if !ok || adopter != n.cfg.Self {
		n.appendOwnership(epoch, dead, rec)
		return
	}
	n.met.failovers.Add(1)
	if n.cfg.JournalDir == "" {
		n.cfg.Logf("cluster: adopting %s's range (no journal dir; jobs cannot be resumed)", dead)
		n.appendOwnership(epoch, dead, rec)
		return
	}
	path := filepath.Join(n.cfg.JournalDir, dead+".journal")
	recs, err := journal.Load(path)
	if err != nil {
		n.cfg.Logf("cluster: failover %s: reading %s: %v", dead, path, err)
		n.appendOwnership(epoch, dead, rec)
		return
	}
	// Last-wins index, the journal's own replay convention.
	index := make(map[string][]byte, len(recs))
	for _, r := range recs {
		index[r.Key] = r.Data
	}
	warmed := 0
	var unfinished []service.JobSpecRecord
	for key, data := range index {
		switch {
		case strings.HasPrefix(key, service.KeyCell):
			var cw service.CellWire
			if json.Unmarshal(data, &cw) != nil {
				continue // damaged record: that cell simply re-runs
			}
			if cr := cw.Record(); cr != nil {
				if n.svc.WarmCache(key[len(service.KeyCell):], cr) {
					warmed++
				}
			}
		case strings.HasPrefix(key, service.KeyJobSpec):
			var spec service.JobSpecRecord
			if json.Unmarshal(data, &spec) != nil {
				continue
			}
			if _, done := index[service.KeyJobDone+spec.ID]; done {
				continue
			}
			unfinished = append(unfinished, spec)
		}
	}
	n.met.cellsWarmed.Add(int64(warmed))
	sort.Slice(unfinished, func(i, k int) bool { return unfinished[i].ID < unfinished[k].ID })
	for _, spec := range unfinished {
		j, resumed, rerun, err := n.svc.AdoptJob(spec.ID, spec.Cells)
		if err != nil {
			n.cfg.Logf("cluster: failover %s: adopt %s: %v", dead, spec.ID, err)
			continue
		}
		n.met.adoptedJobs.Add(1)
		n.met.cellsResumed.Add(int64(resumed))
		n.met.cellsRerun.Add(int64(rerun))
		rec.AdoptedJobs = append(rec.AdoptedJobs, j.ID())
		rec.CellsRerun += rerun
		n.cfg.Logf("cluster: adopted %s from %s: %d cells resume from journal, %d re-run",
			j.ID(), dead, resumed, rerun)
	}
	rec.CellsWarmed = warmed
	n.appendOwnership(epoch, dead, rec)
	n.cfg.Logf("cluster: failover %s complete: %d cells warmed, %d jobs adopted", dead, warmed, len(rec.AdoptedJobs))
}

func (n *Node) appendOwnership(epoch uint64, dead string, rec ownershipRecord) {
	if err := n.svc.AppendJournal(fmt.Sprintf("epoch|%020d|%s", epoch, dead), rec); err != nil {
		n.cfg.Logf("cluster: journal ownership record: %v", err)
	}
}
