package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"macroop/internal/journal"
	"macroop/internal/service"
)

// replicaSetFor computes a cell's replica set and the one node outside
// it (for three-node R=2 fleets).
func replicaSetFor(t *testing.T, r *Ring, fp string, ids []string) (set []string, outsider string) {
	t.Helper()
	set = r.Replicas(fp, 2, nil)
	if len(set) != 2 {
		t.Fatalf("replica set %v, want 2 members", set)
	}
	for _, id := range ids {
		if id != set[0] && id != set[1] {
			outsider = id
		}
	}
	return set, outsider
}

// pollUntil spins on cond with a deadline — the integration tests'
// convergence wait.
func pollUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClusterReplicationWritesThrough: with R=2, the primary's fresh
// execution lands in its replica's cache and journal without the
// replica executing anything — and the primary probed the replica
// (cache-only) before running the cell itself.
func TestClusterReplicationWritesThrough(t *testing.T) {
	ids := []string{"n1", "n2"}
	nodes := startCluster(t, ids, func(id string, cfg *Config, opts *service.Options) {
		cfg.Replication = 2
	})
	ctx := context.Background()

	cell := cellOwnedBy(t, nodes["n1"].node.Ring(), "n1", testClusterInsts)
	fp, err := cell.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	res, err := nodes["n1"].svc.Simulate(ctx, service.SimRequest{Benchmark: cell.Bench, MaxInsts: cell.Insts})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if res.PeerFilled || res.Cached {
		t.Fatalf("primary's own fresh cell reported cached/peer-filled: %+v", res)
	}
	if nodes["n1"].node.met.fillMiss.Load() == 0 {
		t.Error("primary did not probe its replica before executing")
	}

	// Write-through replication is asynchronous: poll the replica.
	var rec *service.CachedResult
	pollUntil(t, 10*time.Second, "record to replicate to n2", func() bool {
		r, ok := nodes["n2"].svc.CachedByFingerprint(fp)
		rec = r
		return ok
	})
	if got := fmt.Sprintf("%016x", rec.Checksum); got != res.Checksum {
		t.Errorf("replicated checksum %s != primary %s", got, res.Checksum)
	}
	if got := nodes["n2"].svc.Executions(); got != 0 {
		t.Errorf("replica executed %d cells; replication must not execute", got)
	}
	if nodes["n2"].node.met.replRecv.Load() == 0 {
		t.Error("replica did not count the received record")
	}
	// The replica journaled the record: a crash of both nodes still
	// leaves the result durable in two places.
	recs, err := journal.Load(filepath.Join(nodes["n2"].node.cfg.JournalDir, "n2.journal"))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recs {
		if r.Key == service.KeyCell+fp {
			found = true
		}
	}
	if !found {
		t.Error("replicated record not journaled on the replica")
	}
}

// TestClusterReplicaReadSurvivesPrimaryKill is the R=2 acceptance drill:
// records executed on a primary and write-through-replicated survive a
// SIGKILL of that primary with zero failed client requests, zero
// re-executions of completed cells, and checksums byte-identical to a
// single-node reference — both immediately after the kill (failure not
// yet detected: the requester walks the stale replica set past the dead
// primary) and after the death promotes a new primary.
func TestClusterReplicaReadSurvivesPrimaryKill(t *testing.T) {
	ids := []string{"n1", "n2", "n3"}
	nodes := startCluster(t, ids, func(id string, cfg *Config, opts *service.Options) {
		cfg.Replication = 2
		cfg.FillBackoff = 10 * time.Millisecond // keep the dead-primary retries quick
	})
	ctx := context.Background()
	ring := nodes["n1"].node.Ring()

	// Two cells, both primaried on the victim n1.
	cellA := cellOwnedBy(t, ring, "n1", testClusterInsts)
	cellB := cellOwnedBy(t, ring, "n1", testClusterInsts+1000)
	fpA, err := cellA.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fpB, err := cellB.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}

	// Single-node reference checksums.
	ref, err := service.New(service.Options{Workers: 2, DefaultInsts: testClusterInsts})
	if err != nil {
		t.Fatal(err)
	}
	ref.Start()
	want := map[string]string{}
	for fp, cell := range map[string]service.CellSpec{fpA: cellA, fpB: cellB} {
		r, err := ref.Simulate(ctx, service.SimRequest{Benchmark: cell.Bench, MaxInsts: cell.Insts})
		if err != nil {
			t.Fatalf("reference simulate: %v", err)
		}
		want[fp] = r.Checksum
	}
	ref.Close()

	// Execute both cells on the primary and wait for the write-through
	// copies to land on the replicas.
	for fp, cell := range map[string]service.CellSpec{fpA: cellA, fpB: cellB} {
		if _, err := nodes["n1"].svc.Simulate(ctx, service.SimRequest{Benchmark: cell.Bench, MaxInsts: cell.Insts}); err != nil {
			t.Fatalf("primary simulate: %v", err)
		}
		set, _ := replicaSetFor(t, ring, fp, ids)
		replica := set[1]
		pollUntil(t, 10*time.Second, "replication of "+fp, func() bool {
			_, ok := nodes[replica].svc.CachedByFingerprint(fp)
			return ok
		})
	}

	// SIGKILL the primary.
	nodes["n1"].node.Kill()
	nodes["n1"].srv.Close()

	// Request cellA from outside its replica set IMMEDIATELY — before the
	// failure detector can have noticed. The requester must walk past the
	// unreachable primary to the surviving replica.
	setA, outsiderA := replicaSetFor(t, ring, fpA, ids)
	resA, err := nodes[outsiderA].svc.Simulate(ctx, service.SimRequest{Benchmark: cellA.Bench, MaxInsts: cellA.Insts})
	if err != nil {
		t.Fatalf("post-kill request for cellA failed: %v", err)
	}
	if !resA.PeerFilled {
		t.Errorf("cellA not served from the replica set: %+v", resA)
	}
	if resA.Checksum != want[fpA] {
		t.Errorf("cellA checksum %s != reference %s", resA.Checksum, want[fpA])
	}

	// Wait for the death to be detected, then request cellB — the replica
	// set has been recomputed over the survivors.
	setB, outsiderB := replicaSetFor(t, ring, fpB, ids)
	pollUntil(t, 10*time.Second, "death detection on all survivors", func() bool {
		return !nodes[outsiderB].node.mem.Alive("n1") && !nodes[setB[1]].node.mem.Alive("n1")
	})
	resB, err := nodes[outsiderB].svc.Simulate(ctx, service.SimRequest{Benchmark: cellB.Bench, MaxInsts: cellB.Insts})
	if err != nil {
		t.Fatalf("post-detection request for cellB failed: %v", err)
	}
	if resB.Checksum != want[fpB] {
		t.Errorf("cellB checksum %s != reference %s", resB.Checksum, want[fpB])
	}

	// No completed cell re-ran anywhere: both executions happened on the
	// dead primary before the kill.
	for _, id := range []string{setA[1], setB[1], outsiderA, outsiderB} {
		if got := nodes[id].svc.Executions(); got != 0 {
			t.Errorf("%s executed %d cells after the kill; replicated records must serve", id, got)
		}
	}
}

// TestClusterLiveJoin: a node started with JoinAddr against a live
// 2-node fleet converges into every member's view, re-owns part of the
// keyspace, and serves fills for it — with no restart of the existing
// members.
func TestClusterLiveJoin(t *testing.T) {
	ids := []string{"n1", "n2"}
	nodes := startCluster(t, ids, func(id string, cfg *Config, opts *service.Options) {
		cfg.Replication = 2
	})
	ctx := context.Background()
	dir := nodes["n1"].node.cfg.JournalDir

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Self:     "n3",
		Members:  map[string]string{"n3": "http://" + l.Addr().String()},
		JoinAddr: nodes["n1"].srv.URL,
		Timings: Timings{
			HeartbeatInterval: 25 * time.Millisecond,
			SuspectAfter:      100 * time.Millisecond,
			DeadAfter:         300 * time.Millisecond,
		},
		FillTimeout:    20 * time.Second,
		JournalDir:     dir,
		StealThreshold: -1,
		Replication:    2,
	}
	n3, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc3, err := service.New(n3.ServiceOptions(service.Options{
		Workers:      2,
		DefaultInsts: testClusterInsts,
		JournalPath:  filepath.Join(dir, "n3.journal"),
	}))
	if err != nil {
		t.Fatal(err)
	}
	n3.Attach(svc3)
	svc3.Start()
	srv3 := httptest.NewUnstartedServer(n3.Handler())
	srv3.Listener.Close()
	srv3.Listener = l
	srv3.Start()
	n3.Start()
	t.Cleanup(func() {
		n3.Close()
		srv3.Close()
		svc3.Close()
	})

	// Every view converges to three members with equal epochs.
	pollUntil(t, 15*time.Second, "membership convergence", func() bool {
		if len(nodes["n1"].node.mem.MemberIDs()) != 3 ||
			len(nodes["n2"].node.mem.MemberIDs()) != 3 ||
			len(n3.mem.MemberIDs()) != 3 {
			return false
		}
		e1, e2, e3 := nodes["n1"].node.mem.Epoch(), nodes["n2"].node.mem.Epoch(), n3.mem.Epoch()
		return e1 == e2 && e2 == e3
	})

	// The joined node owns part of the keyspace in everyone's ring and
	// serves fills for it.
	cell := cellOwnedBy(t, nodes["n1"].node.Ring(), "n3", testClusterInsts)
	if o, _ := nodes["n2"].node.Ring().Owner(mustFP(t, cell), nodes["n2"].node.mem.Alive); o != "n3" {
		t.Fatalf("n2's ring assigns the cell to %s, want the joined n3", o)
	}
	res, err := nodes["n1"].svc.Simulate(ctx, service.SimRequest{Benchmark: cell.Bench, MaxInsts: cell.Insts})
	if err != nil {
		t.Fatalf("simulate through joined node: %v", err)
	}
	if !res.PeerFilled {
		t.Errorf("cell owned by the joined node was not peer-filled: %+v", res)
	}
	if got := svc3.Executions(); got != 1 {
		t.Errorf("joined node executed %d cells, want 1", got)
	}
}

func mustFP(t *testing.T, c service.CellSpec) string {
	t.Helper()
	fp, err := c.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

// TestClusterAntiEntropyRepairsHole: when a replica dies, the next
// survivor is promoted into the set cold; the anti-entropy digest
// exchange detects the hole and the surviving holder pushes the record,
// journaled, onto the promoted replica — without any execution.
func TestClusterAntiEntropyRepairsHole(t *testing.T) {
	ids := []string{"n1", "n2", "n3"}
	nodes := startCluster(t, ids, func(id string, cfg *Config, opts *service.Options) {
		cfg.Replication = 2
		cfg.RepairInterval = 100 * time.Millisecond
		// Disable journal-backed failover so the promoted replica can only
		// get the record through anti-entropy, not adoption warming.
		cfg.JournalDir = ""
	})
	ctx := context.Background()
	ring := nodes["n1"].node.Ring()

	cell := cellOwnedBy(t, ring, "n1", testClusterInsts)
	fp := mustFP(t, cell)
	set, outsider := replicaSetFor(t, ring, fp, ids)
	replica := set[1]

	if _, err := nodes["n1"].svc.Simulate(ctx, service.SimRequest{Benchmark: cell.Bench, MaxInsts: cell.Insts}); err != nil {
		t.Fatalf("simulate: %v", err)
	}
	pollUntil(t, 10*time.Second, "write-through replication", func() bool {
		_, ok := nodes[replica].svc.CachedByFingerprint(fp)
		return ok
	})

	// Kill the replica: the outsider is promoted into the set, cold.
	nodes[replica].node.Kill()
	nodes[replica].srv.Close()

	var rec *service.CachedResult
	pollUntil(t, 20*time.Second, "anti-entropy repair onto "+outsider, func() bool {
		r, ok := nodes[outsider].svc.CachedByFingerprint(fp)
		rec = r
		return ok
	})
	if nodes[outsider].node.met.repairs.Load() == 0 {
		t.Error("repair counter did not count the filled hole")
	}
	if got := nodes[outsider].svc.Executions(); got != 0 {
		t.Errorf("promoted replica executed %d cells; repair must not execute", got)
	}
	primaryRec, ok := nodes["n1"].svc.CachedByFingerprint(fp)
	if !ok || rec.Checksum != primaryRec.Checksum {
		t.Errorf("repaired record diverges from the primary's")
	}
}
