// Assembler: a small text syntax for writing simulator programs by hand.
// It accepts the mnemonics of isa.Op with register operands r0..r31,
// labels, absolute @N targets (so Disassemble output round-trips), store
// pseudo-instructions, comments (';' or '#'), and .mem directives for the
// initial memory image:
//
//	        movi  r1, 100          ; immediate
//	loop:   addi  r1, r1, -1
//	        ld    r4, 8(r2)        ; load
//	        st    r4, 16(r2)       ; store pseudo-op -> sta + std
//	        bne   r1, r0, loop
//	        jal   fn
//	        halt
//	fn:     jr    (r31)
//	.mem 0x2000 42
package program

import (
	"fmt"
	"strconv"
	"strings"

	"macroop/internal/isa"
)

// Assemble parses assembly text into a validated Program.
func Assemble(name, text string) (*Program, error) {
	a := &assembler{b: NewBuilder(name)}
	for i, raw := range strings.Split(text, "\n") {
		if err := a.line(raw); err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
	}
	return a.b.Build()
}

// MustAssemble panics on error; for fixtures and tests.
func MustAssemble(name, text string) *Program {
	p, err := Assemble(name, text)
	if err != nil {
		panic(err)
	}
	return p
}

type assembler struct {
	b *Builder
}

var asmOps = func() map[string]isa.Op {
	m := make(map[string]isa.Op)
	for op := isa.Op(0); op < isa.Op(isa.NumOps); op++ {
		m[op.String()] = op
	}
	return m
}()

func (a *assembler) line(raw string) error {
	// Strip comments.
	if i := strings.IndexAny(raw, ";#"); i >= 0 {
		raw = raw[:i]
	}
	s := strings.TrimSpace(raw)
	if s == "" {
		return nil
	}
	// Directives.
	if strings.HasPrefix(s, ".mem") {
		return a.memDirective(s)
	}
	// Leading labels (possibly several).
	for {
		i := strings.Index(s, ":")
		if i < 0 {
			break
		}
		label := strings.TrimSpace(s[:i])
		if label == "" || strings.ContainsAny(label, " \t,()") {
			return fmt.Errorf("malformed label %q", label)
		}
		a.b.Label(label)
		s = strings.TrimSpace(s[i+1:])
	}
	if s == "" {
		return nil
	}
	return a.instruction(s)
}

func (a *assembler) memDirective(s string) error {
	fields := strings.Fields(s)
	if len(fields) != 3 {
		return fmt.Errorf(".mem wants address and value, got %q", s)
	}
	addr, err := strconv.ParseUint(fields[1], 0, 64)
	if err != nil {
		return fmt.Errorf(".mem address: %w", err)
	}
	val, err := strconv.ParseUint(fields[2], 0, 64)
	if err != nil {
		return fmt.Errorf(".mem value: %w", err)
	}
	a.b.InitMem(addr, val)
	return nil
}

func (a *assembler) instruction(s string) error {
	mnemonic := s
	rest := ""
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		mnemonic, rest = s[:i], strings.TrimSpace(s[i+1:])
	}
	mnemonic = strings.ToLower(mnemonic)
	args := splitArgs(rest)

	// Pseudo-instruction: st value, off(base) -> sta + std.
	if mnemonic == "st" {
		if len(args) != 2 {
			return fmt.Errorf("st wants 2 operands")
		}
		val, err := parseReg(args[0])
		if err != nil {
			return err
		}
		off, base, err := parseMemOperand(args[1])
		if err != nil {
			return err
		}
		a.b.Store(val, base, off)
		return nil
	}

	op, ok := asmOps[mnemonic]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	switch {
	case op == isa.HALT:
		a.b.Halt()
		return nil
	case op == isa.JR:
		if len(args) != 1 {
			return fmt.Errorf("jr wants 1 operand")
		}
		r, err := parseReg(strings.Trim(args[0], "()"))
		if err != nil {
			return err
		}
		a.b.Emit(isa.Instruction{Op: isa.JR, Dest: isa.NoReg, Src1: r, Src2: isa.NoReg})
		return nil
	case op == isa.JMP:
		if len(args) != 1 {
			return fmt.Errorf("jmp wants 1 operand")
		}
		return a.control(op, isa.NoReg, isa.NoReg, isa.NoReg, args[0])
	case op == isa.JAL:
		switch len(args) {
		case 1:
			return a.control(op, isa.RA, isa.NoReg, isa.NoReg, args[0])
		case 2:
			d, err := parseReg(args[0])
			if err != nil {
				return err
			}
			return a.control(op, d, isa.NoReg, isa.NoReg, args[1])
		}
		return fmt.Errorf("jal wants 1 or 2 operands")
	case op.IsCondBranch():
		if len(args) != 3 {
			return fmt.Errorf("%s wants 3 operands", mnemonic)
		}
		s1, err := parseReg(args[0])
		if err != nil {
			return err
		}
		s2, err := parseReg(args[1])
		if err != nil {
			return err
		}
		return a.control(op, isa.NoReg, s1, s2, args[2])
	case op == isa.LD:
		if len(args) != 2 {
			return fmt.Errorf("ld wants 2 operands")
		}
		d, err := parseReg(args[0])
		if err != nil {
			return err
		}
		off, base, err := parseMemOperand(args[1])
		if err != nil {
			return err
		}
		a.b.Load(d, base, off)
		return nil
	case op == isa.STA:
		if len(args) != 1 {
			return fmt.Errorf("sta wants 1 operand")
		}
		off, base, err := parseMemOperand(args[0])
		if err != nil {
			return err
		}
		a.b.Emit(isa.Instruction{Op: isa.STA, Dest: isa.NoReg, Src1: base, Src2: isa.NoReg, Imm: off})
		return nil
	case op == isa.STD:
		if len(args) != 1 {
			return fmt.Errorf("std wants 1 operand")
		}
		r, err := parseReg(args[0])
		if err != nil {
			return err
		}
		a.b.Emit(isa.Instruction{Op: isa.STD, Dest: isa.NoReg, Src1: r, Src2: isa.NoReg})
		return nil
	case op == isa.MOVI || op == isa.LUI:
		if len(args) != 2 {
			return fmt.Errorf("%s wants 2 operands", mnemonic)
		}
		d, err := parseReg(args[0])
		if err != nil {
			return err
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return err
		}
		a.b.Emit(isa.Instruction{Op: op, Dest: d, Src1: isa.NoReg, Src2: isa.NoReg, Imm: imm})
		return nil
	default: // register ALU forms: op rd, rs1, rs2|imm
		if len(args) != 3 {
			return fmt.Errorf("%s wants 3 operands", mnemonic)
		}
		d, err := parseReg(args[0])
		if err != nil {
			return err
		}
		s1, err := parseReg(args[1])
		if err != nil {
			return err
		}
		if s2, err := parseReg(args[2]); err == nil {
			a.b.Op3(op, d, s1, s2)
			return nil
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return fmt.Errorf("%s: third operand %q is neither register nor immediate", mnemonic, args[2])
		}
		if op != isa.ADDI && op != isa.ADD {
			return fmt.Errorf("%s does not take an immediate", mnemonic)
		}
		a.b.OpImm(isa.ADDI, d, s1, imm)
		return nil
	}
}

// control emits a PC-changing instruction whose target is a label or @N.
func (a *assembler) control(op isa.Op, dest, s1, s2 isa.Reg, target string) error {
	if strings.HasPrefix(target, "@") {
		n, err := strconv.ParseInt(target[1:], 10, 64)
		if err != nil {
			return fmt.Errorf("absolute target %q: %w", target, err)
		}
		a.b.Emit(isa.Instruction{Op: op, Dest: dest, Src1: s1, Src2: s2, Imm: n})
		return nil
	}
	switch op {
	case isa.JMP:
		a.b.Jump(target)
	case isa.JAL:
		if dest == isa.RA {
			a.b.Call(target)
		} else {
			a.b.fixups = append(a.b.fixups, fixup{inst: len(a.b.insts), label: target})
			a.b.Emit(isa.Instruction{Op: isa.JAL, Dest: dest, Src1: isa.NoReg, Src2: isa.NoReg})
		}
	default:
		a.b.Branch(op, s1, s2, target)
	}
	return nil
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseReg(s string) (isa.Reg, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if !strings.HasPrefix(s, "r") {
		return isa.NoReg, fmt.Errorf("not a register: %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return isa.NoReg, fmt.Errorf("bad register %q", s)
	}
	return isa.Reg(n), nil
}

func parseImm(s string) (int64, error) {
	return strconv.ParseInt(strings.TrimSpace(s), 0, 64)
}

// parseMemOperand parses "off(rN)" or "(rN)".
func parseMemOperand(s string) (off int64, base isa.Reg, err error) {
	s = strings.TrimSpace(s)
	i := strings.Index(s, "(")
	if i < 0 || !strings.HasSuffix(s, ")") {
		return 0, isa.NoReg, fmt.Errorf("malformed memory operand %q", s)
	}
	if i > 0 {
		off, err = parseImm(s[:i])
		if err != nil {
			return 0, isa.NoReg, fmt.Errorf("memory offset in %q: %w", s, err)
		}
	}
	base, err = parseReg(s[i+1 : len(s)-1])
	return off, base, err
}
