// Package program defines the static program representation executed by
// the simulator, plus a small builder DSL used by the synthetic workload
// generator and by tests to construct programs with labels and forward
// branch references.
//
// A program is a flat sequence of instructions. The program counter is an
// instruction index; for cache-geometry purposes each instruction occupies
// InstBytes bytes, so the byte address of instruction i is i*InstBytes.
// Programs may also carry an initial data-memory image (used, for example,
// by the pointer-chasing mcf-like workload).
package program

import (
	"fmt"
	"strings"

	"macroop/internal/isa"
)

// InstBytes is the architectural size of one instruction in bytes.
const InstBytes = 4

// Program is a static program plus its initial data-memory image.
type Program struct {
	Name  string
	Insts []isa.Instruction
	// Mem is the initial data memory image: 8-byte-aligned word address
	// (byte address with low 3 bits zero) to 64-bit value.
	Mem map[uint64]uint64
}

// ByteAddr returns the byte address of the instruction at index pc.
func ByteAddr(pc int) uint64 { return uint64(pc) * InstBytes }

// Len returns the number of static instructions.
func (p *Program) Len() int { return len(p.Insts) }

// Validate checks structural well-formedness: branch targets in range,
// register identifiers valid, every STA immediately followed by its STD,
// and a reachable HALT present. It returns the first problem found.
func (p *Program) Validate() error {
	if len(p.Insts) == 0 {
		return fmt.Errorf("program %q: empty", p.Name)
	}
	hasHalt := false
	for i, in := range p.Insts {
		if int(in.Op) >= isa.NumOps {
			return fmt.Errorf("inst %d: invalid opcode %d", i, in.Op)
		}
		for _, r := range []isa.Reg{in.Dest, in.Src1, in.Src2} {
			if r != isa.NoReg && !r.Valid() {
				return fmt.Errorf("inst %d (%s): invalid register %d", i, in, uint8(r))
			}
		}
		switch {
		case in.Op == isa.HALT:
			hasHalt = true
		case in.Op.IsCondBranch() || in.Op.IsDirectJump():
			if in.Imm < 0 || in.Imm >= int64(len(p.Insts)) {
				return fmt.Errorf("inst %d (%s): branch target %d out of range", i, in, in.Imm)
			}
		case in.Op == isa.STA:
			if i+1 >= len(p.Insts) || p.Insts[i+1].Op != isa.STD {
				return fmt.Errorf("inst %d: STA not followed by STD", i)
			}
		case in.Op == isa.STD:
			if i == 0 || p.Insts[i-1].Op != isa.STA {
				return fmt.Errorf("inst %d: STD not preceded by STA", i)
			}
		}
	}
	if !hasHalt {
		return fmt.Errorf("program %q: no HALT instruction", p.Name)
	}
	return nil
}

// Disassemble renders the whole program, one instruction per line with
// its index, suitable for debugging and golden tests.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for i, in := range p.Insts {
		fmt.Fprintf(&b, "%4d: %s\n", i, in)
	}
	return b.String()
}

// Builder incrementally constructs a Program, resolving label references
// (including forward references) at Build time.
type Builder struct {
	name   string
	insts  []isa.Instruction
	mem    map[uint64]uint64
	labels map[string]int
	fixups []fixup // instructions whose Imm must be patched to a label
	errs   []error
}

type fixup struct {
	inst  int
	label string
}

// NewBuilder returns an empty builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:   name,
		mem:    make(map[uint64]uint64),
		labels: make(map[string]int),
	}
}

// Len returns the number of instructions emitted so far; the next emitted
// instruction will have this index.
func (b *Builder) Len() int { return len(b.insts) }

// Label defines a label at the current position. Defining the same label
// twice is an error reported by Build.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("label %q defined twice", name))
		return b
	}
	b.labels[name] = len(b.insts)
	return b
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in isa.Instruction) *Builder {
	b.insts = append(b.insts, in)
	return b
}

// Op3 emits a three-register ALU operation.
func (b *Builder) Op3(op isa.Op, dest, src1, src2 isa.Reg) *Builder {
	return b.Emit(isa.Instruction{Op: op, Dest: dest, Src1: src1, Src2: src2})
}

// OpImm emits a register-immediate ALU operation.
func (b *Builder) OpImm(op isa.Op, dest, src1 isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Instruction{Op: op, Dest: dest, Src1: src1, Src2: isa.NoReg, Imm: imm})
}

// MovI emits an immediate load into dest.
func (b *Builder) MovI(dest isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Instruction{Op: isa.MOVI, Dest: dest, Src1: isa.NoReg, Src2: isa.NoReg, Imm: imm})
}

// Load emits ld dest, imm(base).
func (b *Builder) Load(dest, base isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Instruction{Op: isa.LD, Dest: dest, Src1: base, Src2: isa.NoReg, Imm: imm})
}

// Store emits the STA/STD pair for "store value to imm(base)".
func (b *Builder) Store(value, base isa.Reg, imm int64) *Builder {
	b.Emit(isa.Instruction{Op: isa.STA, Dest: isa.NoReg, Src1: base, Src2: isa.NoReg, Imm: imm})
	return b.Emit(isa.Instruction{Op: isa.STD, Dest: isa.NoReg, Src1: value, Src2: isa.NoReg})
}

// Branch emits a conditional branch to the given label.
func (b *Builder) Branch(op isa.Op, src1, src2 isa.Reg, label string) *Builder {
	b.fixups = append(b.fixups, fixup{inst: len(b.insts), label: label})
	return b.Emit(isa.Instruction{Op: op, Dest: isa.NoReg, Src1: src1, Src2: src2})
}

// Jump emits an unconditional direct jump to the given label.
func (b *Builder) Jump(label string) *Builder {
	b.fixups = append(b.fixups, fixup{inst: len(b.insts), label: label})
	return b.Emit(isa.Instruction{Op: isa.JMP, Dest: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg})
}

// Call emits jal RA, label.
func (b *Builder) Call(label string) *Builder {
	b.fixups = append(b.fixups, fixup{inst: len(b.insts), label: label})
	return b.Emit(isa.Instruction{Op: isa.JAL, Dest: isa.RA, Src1: isa.NoReg, Src2: isa.NoReg})
}

// Ret emits jr (RA).
func (b *Builder) Ret() *Builder {
	return b.Emit(isa.Instruction{Op: isa.JR, Dest: isa.NoReg, Src1: isa.RA, Src2: isa.NoReg})
}

// Halt emits the program terminator.
func (b *Builder) Halt() *Builder {
	return b.Emit(isa.Instruction{Op: isa.HALT, Dest: isa.NoReg, Src1: isa.NoReg, Src2: isa.NoReg})
}

// InitMem seeds one 64-bit word of the initial memory image. The address
// is rounded down to 8-byte alignment.
func (b *Builder) InitMem(addr, value uint64) *Builder {
	b.mem[addr&^uint64(7)] = value
	return b
}

// Build resolves labels and returns the validated program.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("undefined label %q", f.label)
		}
		b.insts[f.inst].Imm = int64(target)
	}
	p := &Program{Name: b.name, Insts: b.insts, Mem: b.mem}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; for tests and fixed fixtures.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
