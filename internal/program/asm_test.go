package program_test

import (
	"strings"
	"testing"

	"macroop/internal/functional"
	"macroop/internal/isa"
	. "macroop/internal/program"
)

func TestAssembleBasicProgram(t *testing.T) {
	p, err := Assemble("t", `
		; counting loop
		        movi r1, 3
		loop:   addi r1, r1, -1
		        bne  r1, r0, loop
		        halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 4 {
		t.Fatalf("insts: %d", p.Len())
	}
	if p.Insts[2].Op != isa.BNE || p.Insts[2].Imm != 1 {
		t.Fatalf("branch: %v", p.Insts[2])
	}
}

func TestAssembleExecutes(t *testing.T) {
	p := MustAssemble("t", `
		        movi r1, 10
		        movi r2, 0
		loop:   add  r2, r2, r1
		        addi r1, r1, -1
		        bne  r1, r0, loop
		        halt
	`)
	tr, err := functional.Run(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) == 0 {
		t.Fatal("no instructions executed")
	}
	e := functional.NewExecutor(p)
	var d functional.DynInst
	for e.Step(&d) == nil {
	}
	if got := e.Reg(2); got != 55 {
		t.Fatalf("sum = %d, want 55", got)
	}
}

func TestAssembleMemoryForms(t *testing.T) {
	p := MustAssemble("t", `
		.mem 0x2000 99
		        movi r1, 0x2000
		        ld   r2, 0(r1)
		        st   r2, 8(r1)
		        ld   r3, 8(r1)
		        halt
	`)
	e := functional.NewExecutor(p)
	var d functional.DynInst
	for e.Step(&d) == nil {
	}
	if e.Reg(3) != 99 {
		t.Fatalf("round trip = %d", e.Reg(3))
	}
	// st expands to sta+std.
	if p.Insts[2].Op != isa.STA || p.Insts[3].Op != isa.STD {
		t.Fatalf("st expansion: %v %v", p.Insts[2].Op, p.Insts[3].Op)
	}
}

func TestAssembleCallAndReturn(t *testing.T) {
	p := MustAssemble("t", `
		        jal  fn
		        halt
		fn:     movi r9, 1
		        jr   (r31)
	`)
	if p.Insts[0].Op != isa.JAL || p.Insts[0].Dest != isa.RA || p.Insts[0].Imm != 2 {
		t.Fatalf("jal: %v", p.Insts[0])
	}
	if p.Insts[3].Op != isa.JR || p.Insts[3].Src1 != isa.RA {
		t.Fatalf("jr: %v", p.Insts[3])
	}
}

func TestAssembleAbsoluteTargets(t *testing.T) {
	p := MustAssemble("t", `
		        movi r1, 1
		        jmp  @3
		        movi r2, 2
		        halt
	`)
	if p.Insts[1].Imm != 3 {
		t.Fatalf("absolute target: %v", p.Insts[1])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"frob r1, r2, r3\nhalt", "unknown mnemonic"},
		{"add r1, r2\nhalt", "wants 3 operands"},
		{"ld r1, r2\nhalt", "malformed memory operand"},
		{"movi r99, 1\nhalt", "bad register"},
		{"beq r1, r2, nowhere\nhalt", "nowhere"},
		{"add r1, r2, x5\nhalt", "neither register nor immediate"},
		{"sub r1, r2, 5\nhalt", "does not take an immediate"},
		{".mem zzz 1\nhalt", ".mem address"},
		{"bad label: movi r1, 1\nhalt", "malformed label"},
	}
	for _, c := range cases {
		if _, err := Assemble("t", c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: err = %v, want %q", c.src, err, c.want)
		}
	}
}

func TestAssembleCommentsAndBlankLines(t *testing.T) {
	p := MustAssemble("t", `
		# full-line comment

		        movi r1, 1 ; trailing
		        halt       # trailing hash
	`)
	if p.Len() != 2 {
		t.Fatalf("insts: %d", p.Len())
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	// Programs rendered by Disassemble (with @N targets) reassemble into
	// the same instruction stream.
	orig := MustAssemble("t", `
		        movi r1, 4
		loop:   addi r1, r1, -1
		        ld   r2, 16(r1)
		        st   r2, 24(r1)
		        bne  r1, r0, loop
		        jmp  end
		end:    halt
	`)
	var src strings.Builder
	for _, in := range orig.Insts {
		src.WriteString(in.String())
		src.WriteByte('\n')
	}
	re, err := Assemble("t2", src.String())
	if err != nil {
		t.Fatalf("reassemble: %v\nsource:\n%s", err, src.String())
	}
	if re.Len() != orig.Len() {
		t.Fatalf("length changed: %d -> %d", orig.Len(), re.Len())
	}
	for i := range orig.Insts {
		if orig.Insts[i] != re.Insts[i] {
			t.Fatalf("inst %d: %v -> %v", i, orig.Insts[i], re.Insts[i])
		}
	}
}
