package program

import (
	"strings"
	"testing"
)

// FuzzAssemble hardens the assembler's error paths: malformed mnemonics,
// huge immediates, truncated lines, bogus labels and directives must all
// come back as errors, never as panics — and anything it does accept must
// be a valid program that disassembles and re-assembles.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"movi r1, 100\nhalt\n",
		"loop: addi r1, r1, -1\nbne r1, r0, loop\nhalt",
		"ld r4, 8(r2)\nst r4, 16(r2)\nhalt",
		"jal fn\nhalt\nfn: jr (r31)",
		".mem 0x2000 42\nhalt",
		"addi r1, r1, 99999999999999999999999\nhalt", // immediate overflow
		"bogus r1, r2, r3",                           // unknown mnemonic
		"addi r1, r1",                                // truncated operand list
		"add r99, r1, r2\nhalt",                      // register out of range
		"beq r1, r0, nowhere\nhalt",                  // undefined label
		": halt",                                     // empty label
		".mem 0x10",                                  // truncated directive
		"jmp @9223372036854775807\nhalt",             // absolute target overflow
		"st r1\nhalt",
		"movi r1, 0x", // half-written hex literal
		"a:b:c: halt",
		"\tLD R4, -8(R2)\nHALT", // case and sign handling
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		p, err := Assemble("fuzz", text)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		if p == nil {
			t.Fatal("Assemble returned nil program without error")
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("accepted program fails validation: %v\ninput:\n%s", verr, text)
		}
		// Accepted programs must round-trip through the disassembler.
		if _, rerr := Assemble("roundtrip", p.Disassemble()); rerr != nil {
			t.Fatalf("disassembly does not re-assemble: %v\ninput:\n%s\ndisasm:\n%s",
				rerr, text, p.Disassemble())
		}
	})
}

// TestAssembleRejectsWithoutPanic pins a few pathological inputs that a
// fuzzer would find immediately, so they stay covered in plain test runs.
func TestAssembleRejectsWithoutPanic(t *testing.T) {
	for _, text := range []string{
		"addi r1, r1, 99999999999999999999999",
		"bogus",
		"ld r4, (",
		"st r4,",
		".mem zzz 1",
		"jal",
		strings.Repeat("x", 1<<16),
	} {
		if _, err := Assemble("bad", text); err == nil {
			t.Errorf("Assemble accepted %q", text)
		}
	}
}
