package program

import (
	"strings"
	"testing"

	"macroop/internal/isa"
)

func TestBuilderForwardAndBackwardLabels(t *testing.T) {
	b := NewBuilder("t")
	b.MovI(1, 10)
	b.Label("loop")
	b.OpImm(isa.ADDI, 1, 1, -1)
	b.Branch(isa.BNE, 1, isa.R0, "loop") // backward
	b.Jump("end")                        // forward
	b.MovI(2, 99)
	b.Label("end")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[2].Imm != 1 {
		t.Errorf("backward branch target = %d, want 1", p.Insts[2].Imm)
	}
	if p.Insts[3].Imm != 5 {
		t.Errorf("forward jump target = %d, want 5", p.Insts[3].Imm)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Jump("nowhere")
	b.Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("expected undefined-label error, got %v", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Label("x").MovI(1, 1).Label("x").Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("expected duplicate-label error, got %v", err)
	}
}

func TestValidateEmptyProgram(t *testing.T) {
	p := &Program{Name: "empty"}
	if err := p.Validate(); err == nil {
		t.Fatal("empty program must not validate")
	}
}

func TestValidateMissingHalt(t *testing.T) {
	p := &Program{Name: "nohalt", Insts: []isa.Instruction{{Op: isa.ADD, Dest: 1, Src1: 2, Src2: 3}}}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "HALT") {
		t.Fatalf("expected missing-HALT error, got %v", err)
	}
}

func TestValidateBranchOutOfRange(t *testing.T) {
	p := &Program{Name: "oob", Insts: []isa.Instruction{
		{Op: isa.BEQ, Src1: 1, Src2: 2, Imm: 99},
		{Op: isa.HALT},
	}}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("expected target error, got %v", err)
	}
}

func TestValidateStorePairing(t *testing.T) {
	bad := &Program{Name: "lonelysta", Insts: []isa.Instruction{
		{Op: isa.STA, Src1: 1, Imm: 8},
		{Op: isa.ADD, Dest: 2, Src1: 1, Src2: 1},
		{Op: isa.HALT},
	}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "STA") {
		t.Fatalf("expected STA pairing error, got %v", err)
	}
	bad2 := &Program{Name: "lonelystd", Insts: []isa.Instruction{
		{Op: isa.STD, Src1: 1},
		{Op: isa.HALT},
	}}
	if err := bad2.Validate(); err == nil || !strings.Contains(err.Error(), "STD") {
		t.Fatalf("expected STD pairing error, got %v", err)
	}
	good := NewBuilder("pair")
	good.MovI(1, 8)
	good.Store(1, 1, 0)
	good.Halt()
	if _, err := good.Build(); err != nil {
		t.Fatalf("valid store pair rejected: %v", err)
	}
}

func TestValidateInvalidRegister(t *testing.T) {
	p := &Program{Name: "badreg", Insts: []isa.Instruction{
		{Op: isa.ADD, Dest: 40, Src1: 1, Src2: 2},
		{Op: isa.HALT},
	}}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "register") {
		t.Fatalf("expected register error, got %v", err)
	}
}

func TestInitMemAlignment(t *testing.T) {
	b := NewBuilder("mem")
	b.InitMem(13, 0xdead) // unaligned: rounds down to 8
	b.Halt()
	p := b.MustBuild()
	if p.Mem[8] != 0xdead {
		t.Fatalf("InitMem did not align: %v", p.Mem)
	}
}

func TestDisassemble(t *testing.T) {
	b := NewBuilder("dis")
	b.MovI(1, 5)
	b.OpImm(isa.ADDI, 2, 1, 1)
	b.Halt()
	text := b.MustBuild().Disassemble()
	for _, want := range []string{"movi", "addi", "halt", "0:", "2:"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestByteAddr(t *testing.T) {
	if ByteAddr(0) != 0 || ByteAddr(3) != 12 {
		t.Fatal("ByteAddr wrong")
	}
}

func TestCallRet(t *testing.T) {
	b := NewBuilder("call")
	b.Call("fn")
	b.Halt()
	b.Label("fn")
	b.MovI(1, 1)
	b.Ret()
	p := b.MustBuild()
	if p.Insts[0].Op != isa.JAL || p.Insts[0].Imm != 2 {
		t.Fatalf("call emitted %v", p.Insts[0])
	}
	if p.Insts[3].Op != isa.JR || p.Insts[3].Src1 != isa.RA {
		t.Fatalf("ret emitted %v", p.Insts[3])
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic on invalid program")
		}
	}()
	NewBuilder("bad").Jump("missing").MustBuild()
}
