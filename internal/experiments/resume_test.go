package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"macroop/internal/config"
	"macroop/internal/journal"
)

// TestKillAndResumeMatrixByteIdentical is the crash-consistency acceptance
// test: a sweep interrupted mid-flight (context cancel after some cells
// have journaled) and then resumed over the same journal must produce a
// matrix byte-identical to an uninterrupted run, re-executing only the
// cells the interruption left incomplete.
func TestKillAndResumeMatrixByteIdentical(t *testing.T) {
	benches := []string{"gzip", "mcf", "twolf", "vortex"}
	cfgs := map[string]config.Machine{
		"base":    config.Default().WithSched(config.SchedBase),
		"2-cycle": config.Default().WithSched(config.SchedTwoCycle),
	}
	total := len(benches) * len(cfgs)
	newRunner := func() *Runner {
		r := NewRunner(5000)
		r.Benchmarks = benches
		r.Concurrency = 1 // serialize cells for a well-defined interrupt point
		return r
	}

	// Reference: one uninterrupted sweep, no journal.
	want, err := newRunner().RunMatrix(cfgs)
	if err != nil {
		t.Fatalf("reference sweep failed: %v", err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted sweep: cancel as soon as two cells have journaled.
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for j.Len() < 2 {
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
	}()
	interrupted := newRunner()
	interrupted.Journal = j
	if _, err := interrupted.RunMatrixContext(ctx, cfgs); err == nil {
		t.Fatal("interrupted sweep reported full success")
	}
	<-done
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen, as a fresh process would after a crash.
	j2, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	journaled := j2.Len()
	if journaled < 2 || journaled >= total {
		t.Fatalf("interrupt landed badly: %d of %d cells journaled", journaled, total)
	}

	// Resume: must re-run exactly the incomplete cells and reproduce the
	// reference matrix byte-for-byte.
	resumed := newRunner()
	resumed.Journal = j2
	got, err := resumed.RunMatrixContext(context.Background(), cfgs)
	if err != nil {
		t.Fatalf("resumed sweep failed: %v", err)
	}
	if n := resumed.ExecutedCells(); n != int64(total-journaled) {
		t.Errorf("resume executed %d cells, want %d (only the incomplete ones)", n, total-journaled)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Errorf("resumed matrix differs from uninterrupted run:\n got %s\nwant %s", gotJSON, wantJSON)
	}

	// A third sweep over the now-complete journal simulates nothing.
	again := newRunner()
	again.Journal = j2
	if _, err := again.RunMatrixContext(context.Background(), cfgs); err != nil {
		t.Fatalf("fully journaled sweep failed: %v", err)
	}
	if n := again.ExecutedCells(); n != 0 {
		t.Errorf("fully journaled sweep executed %d cells, want 0", n)
	}
}

// TestJournalInvalidatedByConfigChange: editing a configuration (or the
// instruction budget) must not resume into stale results — the cell key
// fingerprints the machine config and runner parameters.
func TestJournalInvalidatedByConfigChange(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	r1 := NewRunner(2000)
	r1.Benchmarks = []string{"gzip"}
	r1.Journal = j
	cfgs := map[string]config.Machine{"base": config.Default().WithSched(config.SchedBase)}
	if _, err := r1.RunMatrix(cfgs); err != nil {
		t.Fatal(err)
	}

	// Same journal, same config name, different machine: must re-run.
	r2 := NewRunner(2000)
	r2.Benchmarks = []string{"gzip"}
	r2.Journal = j
	altered := map[string]config.Machine{"base": config.Default().WithSched(config.SchedTwoCycle)}
	if _, err := r2.RunMatrix(altered); err != nil {
		t.Fatal(err)
	}
	if n := r2.ExecutedCells(); n != 1 {
		t.Errorf("altered config executed %d cells, want 1 (stale record must not be reused)", n)
	}

	// Unchanged sweep still resumes from the journal.
	r3 := NewRunner(2000)
	r3.Benchmarks = []string{"gzip"}
	r3.Journal = j
	if _, err := r3.RunMatrix(cfgs); err != nil {
		t.Fatal(err)
	}
	if n := r3.ExecutedCells(); n != 0 {
		t.Errorf("unchanged sweep executed %d cells, want 0", n)
	}
}
