package experiments

import (
	"strconv"
	"testing"
)

func TestMOPSizeExtension(t *testing.T) {
	r := NewRunner(4000)
	r.Benchmarks = []string{"gap"}
	tab, err := r.MOPSize()
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 1 {
		t.Fatalf("rows: %d", tab.NumRows())
	}
}

func TestHeuristicCoverage(t *testing.T) {
	r := NewRunner(30000)
	r.Benchmarks = []string{"gap", "vortex"}
	tab, err := r.HeuristicCoverage()
	if err != nil {
		t.Fatal(err)
	}
	// The paper claims the conservative heuristic retains > 90% of the
	// precise detector's opportunities.
	for i := 0; i < tab.NumRows(); i++ {
		row := tab.Row(i)
		cov, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("coverage cell %q: %v", row[3], err)
		}
		if cov < 90 {
			t.Fatalf("%s: heuristic coverage %.1f%% below the paper's 90%% claim", row[0], cov)
		}
	}
}

func TestQueueSweep(t *testing.T) {
	r := NewRunner(4000)
	tab, err := r.QueueSweep("gzip")
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 7 {
		t.Fatalf("rows: %d", tab.NumRows())
	}
}

func TestWidthSweep(t *testing.T) {
	r := NewRunner(20000)
	tab, err := r.WidthSweep("gap")
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 3 {
		t.Fatalf("rows: %d", tab.NumRows())
	}
}
