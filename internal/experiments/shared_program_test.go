package experiments

import (
	"sync"
	"testing"

	"macroop/internal/checker"
	"macroop/internal/config"
	"macroop/internal/core"
)

// TestSharedProgramConcurrentChecksums pins down the matrix-cell sharing
// contract: every cell of one benchmark gets the same *program.Program
// (generated once, never re-cloned), the program is immutable under
// concurrent simulation, and two cells racing on it produce the identical
// architectural checksum. Run under -race this also proves no cell
// mutates shared program state.
func TestSharedProgramConcurrentChecksums(t *testing.T) {
	const bench = "gzip"
	const insts = 30_000
	r := NewRunner(insts)

	cell := func(m config.Machine) (uint64, error) {
		p, err := r.Program(bench)
		if err != nil {
			return 0, err
		}
		c, err := core.New(m, p)
		if err != nil {
			return 0, err
		}
		k := checker.New(p, m.IQEntries, insts)
		c.SetHooks(k)
		if _, err := c.Run(insts); err != nil {
			return 0, err
		}
		return k.Checksum(), nil
	}

	cfgs := []config.Machine{
		config.Default(),
		config.Default().WithMOP(config.DefaultMOP()),
	}
	sums := make([]uint64, len(cfgs))
	errs := make([]error, len(cfgs))
	var wg sync.WaitGroup
	for i, m := range cfgs {
		wg.Add(1)
		go func(i int, m config.Machine) {
			defer wg.Done()
			sums[i], errs[i] = cell(m)
		}(i, m)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
	}
	if sums[0] != sums[1] {
		t.Errorf("concurrent cells on shared program diverged: %016x vs %016x", sums[0], sums[1])
	}

	// Both cells must have observed the same generated program instance.
	p1, err := r.Program(bench)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := r.Program(bench)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("Runner.Program returned distinct instances for one benchmark")
	}
}
