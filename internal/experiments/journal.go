package experiments

import (
	"encoding/json"
	"errors"
	"fmt"

	"macroop/internal/config"
	"macroop/internal/core"
	"macroop/internal/simerr"
)

// ErrMissingCell marks a matrix cell that a journal-only render could not
// find in the journal: the sweep never completed it (or was never run).
var ErrMissingCell = errors.New("experiments: cell not present in journal")

// cellRecord is the journaled outcome of one matrix cell. Exactly one of
// Result (completed) or Failed (permanently failed after retries) is set;
// cells interrupted by sweep cancellation are never journaled, which is
// what makes them re-run on resume.
type cellRecord struct {
	Bench    string
	Cfg      string
	Attempts int
	Result   *core.Result `json:",omitempty"`

	Failed      bool   `json:",omitempty"`
	ErrKind     string `json:",omitempty"` // simerr.Kind name
	ErrMsg      string `json:",omitempty"` // rendered error text
	Fingerprint string `json:",omitempty"` // simerr.FingerprintOf the last error
}

// CellFingerprint is the content identity of one simulation cell: a
// stable hash over the benchmark, the full machine configuration, the
// instruction budget, and whether the differential oracle is attached —
// everything that determines what the cell computes, and nothing it is
// merely labelled with. Sweep journals key resume on it so edited
// configurations invalidate stale records, and the simulation service
// (internal/service) keys its content-addressed result cache on it so
// overlapping requests that describe the same simulation share one
// execution and one cached result.
func CellFingerprint(bench string, m config.Machine, maxInsts int64, check bool) string {
	cfgJSON, err := json.Marshal(m)
	if err != nil {
		// config.Machine is a plain value struct; Marshal cannot fail on
		// it. Guard anyway so a future field type cannot corrupt resume.
		cfgJSON = []byte(fmt.Sprintf("%+v", m))
	}
	return simerr.Fingerprint(bench, string(cfgJSON), fmt.Sprint(maxInsts), fmt.Sprint(check))
}

// cellKey identifies one matrix cell across runs: benchmark, configuration
// name, and the cell's content fingerprint. A journal entry is reused only
// when all of it matches, so editing a configuration (or the instruction
// budget) invalidates stale cells instead of resuming into wrong results.
func (r *Runner) cellKey(j job) string {
	return "cell|" + j.bench + "|" + j.cfg + "|" + CellFingerprint(j.bench, j.m, r.MaxInsts, r.Check)
}

// journaledCell looks up a durable outcome for the cell; a record that
// does not decode is treated as absent (the cell re-runs).
func (r *Runner) journaledCell(j job) (*cellRecord, bool) {
	if r.Journal == nil {
		return nil, false
	}
	data, ok := r.Journal.Get(r.cellKey(j))
	if !ok {
		return nil, false
	}
	var rec cellRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, false
	}
	return &rec, true
}

// journalCell durably records a cell outcome; with no journal attached it
// is a no-op. Append errors surface as the sweep's journal health: the
// cell's in-memory result is still used, but resume will re-run it.
func (r *Runner) journalCell(j job, rec *cellRecord) error {
	if r.Journal == nil {
		return nil
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return r.Journal.Append(r.cellKey(j), data)
}

// reconstitute converts a journaled record back into the sweep's
// in-memory shape: a live result for completed cells, or a placeholder
// plus a typed, classifiable CellError for permanently failed ones.
func reconstitute(rec *cellRecord, j job) (*core.Result, *CellError) {
	if !rec.Failed && rec.Result != nil {
		return rec.Result, nil
	}
	kind := simerr.KindInternal
	if k, err := simerr.ParseKind(rec.ErrKind); err == nil {
		kind = k
	}
	ph := &core.Result{Benchmark: j.bench, ReproFingerprint: rec.Fingerprint}
	return ph, &CellError{
		Bench:    j.bench,
		Cfg:      j.cfg,
		Attempts: rec.Attempts,
		Err:      simerr.Journaled(kind, rec.ErrMsg, rec.Fingerprint),
	}
}
