package experiments

import (
	"testing"

	"macroop/internal/config"
)

// BenchmarkMatrix measures an end-to-end experiment sweep: every
// benchmark under the base and macro-op configurations, with generated
// programs shared across cells and iterations.
func BenchmarkMatrix(b *testing.B) {
	r := NewRunner(10_000)
	cfgs := map[string]config.Machine{
		"base": config.Default(),
		"mop":  config.Default().WithMOP(config.DefaultMOP()),
	}
	// Generate the programs outside the timed region.
	for _, bench := range r.benchmarks() {
		if _, err := r.Program(bench); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.RunMatrix(cfgs); err != nil {
			b.Fatal(err)
		}
	}
}
