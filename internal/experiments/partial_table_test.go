package experiments

import (
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"macroop/internal/config"
	"macroop/internal/core"
	"macroop/internal/journal"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestPartialTableFromJournalGolden renders Table 2 in journal-only mode
// from a journal holding a mix of completed, permanently-failed, and
// missing cells — the moppaper -from-journal path — and locks the exact
// rendering (zero placeholders plus a failure listing) with a golden file.
func TestPartialTableFromJournalGolden(t *testing.T) {
	path := filepath.Join(t.TempDir(), "partial.journal")
	j, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	iq32 := config.Default().WithSched(config.SchedBase)
	unres := config.Unrestricted().WithSched(config.SchedBase)

	// The writer and the renderer must agree on MaxInsts/Check: both are
	// part of the cell key.
	w := NewRunner(2000)
	w.Journal = j
	put := func(bench, cfg string, m config.Machine, rec *cellRecord) {
		t.Helper()
		if err := w.journalCell(job{bench: bench, cfg: cfg, m: m}, rec); err != nil {
			t.Fatal(err)
		}
	}
	// gzip: both cells completed.
	put("gzip", "iq32", iq32, &cellRecord{Bench: "gzip", Cfg: "iq32", Attempts: 1,
		Result: &core.Result{Benchmark: "gzip", Committed: 2000, Cycles: 1000, IPC: 2}})
	put("gzip", "unres", unres, &cellRecord{Bench: "gzip", Cfg: "unres", Attempts: 1,
		Result: &core.Result{Benchmark: "gzip", Committed: 2000, Cycles: 800, IPC: 2.5}})
	// mcf: the 32-entry cell failed permanently; the unrestricted one was
	// never reached. twolf: entirely missing.
	put("mcf", "iq32", iq32, &cellRecord{Bench: "mcf", Cfg: "iq32", Attempts: 2,
		Failed:      true,
		ErrKind:     "deadlock",
		ErrMsg:      "mcf [base]: deadlock: no commit in 3000 cycles (cycle 4242, 512 committed)",
		Fingerprint: "00000000deadbeef"})

	r := NewRunner(2000)
	r.Benchmarks = []string{"gzip", "mcf", "twolf"}
	r.Journal = j
	r.JournalOnly = true
	tab, terr := r.Table2()
	if tab == nil {
		t.Fatalf("Table2 returned no table: %v", terr)
	}
	var me *MatrixError
	if !errors.As(terr, &me) {
		t.Fatalf("Table2 error = %v, want *MatrixError", terr)
	}
	if n := r.ExecutedCells(); n != 0 {
		t.Fatalf("journal-only render executed %d cells, want 0", n)
	}

	var b strings.Builder
	b.WriteString(tab.String())
	b.WriteString("\n-- incomplete cells --\n")
	b.WriteString(me.Error())
	b.WriteString("\n")
	got := b.String()

	golden := filepath.Join("testdata", "partial_table2.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("partial table rendering drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// The failed cell's placeholder carries the journaled fingerprint, and
	// missing cells classify as ErrMissingCell.
	res, rerr := r.RunMatrix(map[string]config.Machine{"iq32": iq32, "unres": unres})
	if !errors.As(rerr, &me) {
		t.Fatalf("RunMatrix error = %v, want *MatrixError", rerr)
	}
	if fp := res["mcf"]["iq32"].ReproFingerprint; fp != "00000000deadbeef" {
		t.Errorf("failed cell fingerprint = %q, want 00000000deadbeef", fp)
	}
	missing := 0
	for _, c := range me.Cells {
		if errors.Is(c.Err, ErrMissingCell) {
			missing++
		}
	}
	if missing != 3 {
		data, _ := json.Marshal(me.Cells)
		t.Errorf("want 3 ErrMissingCell cells (mcf/unres, twolf/*), got %d: %s", missing, data)
	}
}
