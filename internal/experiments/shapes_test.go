package experiments

import (
	"strconv"
	"testing"
)

// TestPaperShapes asserts the reproduction scorecard of EXPERIMENTS.md at
// reduced scale: the qualitative results the paper claims must hold on
// every future change to the simulator or the workloads.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-simulation shape check")
	}
	r := NewRunner(200000)
	tab, err := r.Figure14()
	if err != nil {
		t.Fatal(err)
	}
	cell := func(row []string, col int) float64 {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			t.Fatalf("cell %q: %v", row[col], err)
		}
		return v
	}
	two := map[string]float64{}
	mop := map[string]float64{}
	for i := 0; i < tab.NumRows(); i++ {
		row := tab.Row(i)
		two[row[0]] = cell(row, 2)
		mop[row[0]] = cell(row, 4) // MOP-wiredOR
	}

	// 1. gap loses the most under 2-cycle scheduling; vortex (and the
	//    memory-bound mcf) the least.
	for b, v := range two {
		if b != "gap" && v < two["gap"] {
			t.Errorf("%s (%.3f) lost more than gap (%.3f) under 2-cycle", b, v, two["gap"])
		}
	}
	if two["vortex"] < 0.95 {
		t.Errorf("vortex 2-cycle %.3f, should be nearly unaffected", two["vortex"])
	}
	// 2. the paper's >=10%% losers all lose substantially (thresholds are
	//    slightly looser than the 1M-instruction numbers in
	//    EXPERIMENTS.md because short runs soften contention).
	for _, b := range []string{"gap", "gzip"} {
		if two[b] > 0.90 {
			t.Errorf("%s 2-cycle %.3f, paper says >=10%% loss", b, two[b])
		}
	}
	for _, b := range []string{"parser", "twolf", "vpr"} {
		if two[b] > 0.94 {
			t.Errorf("%s 2-cycle %.3f, should lose noticeably", b, two[b])
		}
	}
	// 3. macro-op scheduling recovers to ~base for every benchmark and
	//    always improves on 2-cycle.
	for b := range mop {
		if mop[b] < 0.95 {
			t.Errorf("%s MOP %.3f of base; paper average is 97.2%%", b, mop[b])
		}
		if mop[b] < two[b] {
			t.Errorf("%s: MOP (%.3f) below 2-cycle (%.3f)", b, mop[b], two[b])
		}
	}

	// 4. select-free ordering: squash-dep ≈ base, scoreboard visibly
	//    worse, neither above base by more than noise.
	r.Benchmarks = []string{"gap", "gzip", "twolf"}
	t16, err := r.Figure16()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < t16.NumRows(); i++ {
		row := t16.Row(i)
		squash, sb := cell(row, 2), cell(row, 3)
		if squash < 0.95 {
			t.Errorf("%s squash-dep %.3f, should track base closely", row[0], squash)
		}
		if sb > squash {
			t.Errorf("%s scoreboard (%.3f) beat squash-dep (%.3f)", row[0], sb, squash)
		}
		if row[0] == "gap" && sb > 0.92 {
			t.Errorf("%s scoreboard %.3f, paper shows noticeable losses under contention", row[0], sb)
		}
	}
}
