package experiments

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"macroop/internal/config"
	"macroop/internal/optsched"
)

// TestGapTableGolden locks the rendered gap table on a small, fast,
// fully deterministic slice of the pipeline: three benchmarks, two
// 12-uop windows each, a node budget ample enough to prove optimality.
// Any drift — a heuristic model change, a solver change, a rendering
// change — shows up as a golden diff to be reviewed (and regenerated
// with -update if intended).
func TestGapTableGolden(t *testing.T) {
	r := NewRunner(0)
	rep, err := r.Gap(context.Background(), []string{"gzip", "mcf", "vortex"},
		config.Default(), optsched.GapSpec{Window: 12, MaxWindows: 2, NodeBudget: 50_000})
	if err != nil {
		t.Fatalf("Gap: %v", err)
	}
	if v := rep.Violations(); v != 0 {
		t.Fatalf("%d admissibility violations", v)
	}
	if opt, total := rep.OptimalWindows(); total != 6 || opt != total {
		t.Fatalf("optimal windows %d/%d, want 6/6 at this budget", opt, total)
	}
	got := GapTable(rep).String()

	golden := filepath.Join("testdata", "gap.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("gap table drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
