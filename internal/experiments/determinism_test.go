package experiments

import (
	"testing"

	"macroop/internal/program"
)

// TestRunMatrixDeterministic guards the parallel worker pool against
// iteration-order and shared-state races: two independent runners (each
// generating its programs from scratch, in parallel, through the
// per-benchmark once/future path) must render byte-identical tables.
func TestRunMatrixDeterministic(t *testing.T) {
	render := func() string {
		r := NewRunner(10_000)
		r.Benchmarks = []string{"gzip", "mcf", "vortex"}
		tbl, err := r.Figure16()
		if err != nil {
			t.Fatalf("Figure16: %v", err)
		}
		return tbl.String()
	}
	first := render()
	second := render()
	if first != second {
		t.Errorf("two RunMatrix invocations rendered different tables:\n--- first\n%s\n--- second\n%s", first, second)
	}
}

// TestProgramGenerationShared: concurrent Program calls for the same
// benchmark must share one generation and return the same program.
func TestProgramGenerationShared(t *testing.T) {
	r := NewRunner(1_000)
	const n = 8
	progs := make([]*program.Program, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			p, err := r.Program("gzip")
			if err != nil {
				t.Errorf("Program: %v", err)
			}
			progs[i] = p
			done <- i
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
	for i := 1; i < n; i++ {
		if progs[i] != progs[0] {
			t.Fatalf("concurrent Program calls returned distinct programs")
		}
	}
}
