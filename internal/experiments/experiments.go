// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6) plus the ablations discussed in the text. Each
// experiment returns a stats.Table whose rows mirror the series the paper
// plots; EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"macroop/internal/checker"
	"macroop/internal/config"
	"macroop/internal/core"
	"macroop/internal/functional"
	"macroop/internal/journal"
	"macroop/internal/mop"
	"macroop/internal/program"
	"macroop/internal/simerr"
	"macroop/internal/stats"
	"macroop/internal/workload"
)

// Runner executes simulations for the experiment suite, caching generated
// programs and running independent simulations in parallel.
type Runner struct {
	// MaxInsts is the committed-instruction budget per simulation.
	MaxInsts int64
	// Benchmarks to include; nil means the full 12-benchmark suite.
	Benchmarks []string
	// Check attaches the lockstep differential oracle (internal/checker)
	// to every simulation: any timing-core divergence from the functional
	// model, or pipeline invariant violation, fails the run.
	Check bool
	// CellTimeout bounds each matrix cell's wall-clock time (0 = none).
	// A cell that exceeds it fails with simerr.ErrCancelled instead of
	// hanging the whole sweep.
	CellTimeout time.Duration

	// Journal, when set, makes every sweep write-ahead and resumable:
	// each cell's outcome (success, or permanent failure after retries)
	// is durably appended as it completes, and a later sweep over the
	// same journal skips those cells, reusing the recorded outcomes.
	// Cells interrupted by sweep cancellation are never journaled, so a
	// crash or kill mid-sweep re-runs exactly the incomplete cells.
	Journal *journal.Journal
	// JournalOnly renders from the journal without simulating: cells
	// present in the journal reconstitute as usual, absent ones become
	// placeholder results reported as ErrMissingCell. This is how a
	// partially-complete sweep is rendered (moppaper -from-journal).
	JournalOnly bool

	// RetryAttempts is the per-cell attempt budget before the cell is
	// recorded as permanently failed (0 = default 2: simulations are
	// deterministic, but one retry distinguishes a timeout on a loaded
	// machine from a real hang and double-checks any internal fault).
	RetryAttempts int
	// RetryBackoff is the delay before the first retry, doubling per
	// further attempt (0 = default 100ms, negative = none).
	RetryBackoff time.Duration
	// Concurrency caps how many cells simulate at once (0 = NumCPU).
	Concurrency int

	mu    sync.Mutex
	progs map[string]*progFuture

	executed atomic.Int64
}

// ExecutedCells reports how many matrix cells this runner actually
// simulated (journal-skipped cells are not counted) — the observable that
// resume tests and the soak harness assert on.
func (r *Runner) ExecutedCells() int64 { return r.executed.Load() }

// progFuture is a per-benchmark generation slot: the runner's lock only
// guards map access, so first-touch generation of different benchmarks
// proceeds in parallel, while concurrent requests for the same benchmark
// share one generation.
type progFuture struct {
	once sync.Once
	p    *program.Program
	err  error
}

// NewRunner returns a Runner simulating maxInsts per benchmark per config.
func NewRunner(maxInsts int64) *Runner {
	return &Runner{MaxInsts: maxInsts, progs: make(map[string]*progFuture)}
}

func (r *Runner) benchmarks() []string {
	if len(r.Benchmarks) > 0 {
		return r.Benchmarks
	}
	return workload.Names()
}

// Program returns (generating on first use) the benchmark program.
func (r *Runner) Program(name string) (*program.Program, error) {
	r.mu.Lock()
	f := r.progs[name]
	if f == nil {
		f = &progFuture{}
		r.progs[name] = f
	}
	r.mu.Unlock()
	f.once.Do(func() {
		prof, err := workload.ByName(name)
		if err != nil {
			f.err = err
			return
		}
		f.p, f.err = workload.Generate(prof)
	})
	return f.p, f.err
}

// Run simulates one benchmark under one machine configuration.
func (r *Runner) Run(bench string, m config.Machine) (*core.Result, error) {
	p, err := r.Program(bench)
	if err != nil {
		return nil, err
	}
	c, err := core.New(m, p)
	if err != nil {
		return nil, err
	}
	if r.Check {
		c.SetHooks(checker.New(p, m.IQEntries, r.MaxInsts))
	}
	return c.Run(r.MaxInsts)
}

// job is one (benchmark, config) simulation.
type job struct {
	bench string
	cfg   string
	m     config.Machine
}

// CellError is one failed matrix cell: which benchmark under which
// configuration, how many attempts were made, and the final typed error.
type CellError struct {
	Bench, Cfg string
	Attempts   int
	Err        error
}

// Error implements the error interface.
func (e *CellError) Error() string {
	return fmt.Sprintf("%s/%s (after %d attempt(s)): %v", e.Bench, e.Cfg, e.Attempts, e.Err)
}

// Unwrap exposes the underlying failure for errors.Is classification.
func (e *CellError) Unwrap() error { return e.Err }

// MatrixError aggregates every failed cell of a RunMatrix sweep. The
// sweep's result map is still fully populated (failed cells hold
// zero-valued placeholder results), so callers can render what succeeded
// and report the rest.
type MatrixError struct {
	Cells []*CellError
}

// Error implements the error interface.
func (e *MatrixError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "experiments: %d cell(s) failed:", len(e.Cells))
	for _, c := range e.Cells {
		b.WriteString("\n  ")
		b.WriteString(c.Error())
	}
	return b.String()
}

// runCell executes one matrix cell with panic isolation: any panic that
// escapes the cell (outside core.RunContext's own recover boundary)
// becomes a typed *simerr.InternalError instead of killing the sweep.
func (r *Runner) runCell(ctx context.Context, j job) (res *core.Result, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			res, err = nil, simerr.Internal(
				simerr.Context{Benchmark: j.bench, Sched: j.m.Sched.String()},
				rec, string(debug.Stack()))
		}
	}()
	p, err := r.Program(j.bench)
	if err != nil {
		return nil, err
	}
	c, err := core.New(j.m, p)
	if err != nil {
		return nil, err
	}
	if r.Check {
		c.SetHooks(checker.New(p, j.m.IQEntries, r.MaxInsts))
	}
	return c.RunContext(ctx, r.MaxInsts)
}

// RunMatrix simulates every benchmark under every named configuration in
// parallel, returning results[bench][cfgName]. See RunMatrixContext.
func (r *Runner) RunMatrix(cfgs map[string]config.Machine) (map[string]map[string]*core.Result, error) {
	return r.RunMatrixContext(context.Background(), cfgs)
}

// RunMatrixContext simulates every benchmark under every named
// configuration in parallel, returning results[bench][cfgName].
//
// The sweep is resilient: each cell gets its own timeout (CellTimeout),
// panics are isolated to their cell, and a failed cell is retried with
// backoff (RetryAttempts/RetryBackoff) before being recorded. If any
// cells still fail, the returned map is nevertheless complete — failed
// cells hold placeholder results carrying only the benchmark name and
// the last error's repro fingerprint — and the error is a *MatrixError
// listing every failure, so callers can render partial tables and report
// the rest.
//
// With a Journal attached the sweep is also crash-consistent: every
// completed cell (success or permanent failure) is durably journaled as
// it finishes, cells already journaled are skipped, and cells cut short
// by ctx cancellation are left unjournaled so a resumed sweep re-runs
// exactly them. Cancelling ctx returns the partial matrix with the
// unfinished cells reported as cancelled.
func (r *Runner) RunMatrixContext(ctx context.Context, cfgs map[string]config.Machine) (map[string]map[string]*core.Result, error) {
	var jobs []job
	for _, b := range r.benchmarks() {
		for name, m := range cfgs {
			jobs = append(jobs, job{bench: b, cfg: name, m: m})
		}
	}
	results := make(map[string]map[string]*core.Result)
	for _, b := range r.benchmarks() {
		results[b] = make(map[string]*core.Result)
	}

	var failed []*CellError
	var todo []job
	for _, j := range jobs {
		switch rec, ok := r.journaledCell(j); {
		case ok:
			res, cerr := reconstitute(rec, j)
			if cerr != nil {
				failed = append(failed, cerr)
			}
			results[j.bench][j.cfg] = res
		case r.JournalOnly:
			failed = append(failed, &CellError{Bench: j.bench, Cfg: j.cfg, Err: ErrMissingCell})
			results[j.bench][j.cfg] = &core.Result{Benchmark: j.bench}
		default:
			todo = append(todo, j)
		}
	}

	workers := r.Concurrency
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for _, j := range todo {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			res, attempts, err := r.runCellWithRetry(ctx, j)
			var jerr error
			if err == nil {
				jerr = r.journalCell(j, &cellRecord{Bench: j.bench, Cfg: j.cfg, Attempts: attempts, Result: res})
			} else if ctx.Err() == nil {
				// Permanent failure: retries exhausted while the sweep
				// itself was still live. Journal it so resume reports it
				// instead of re-running it.
				jerr = r.journalCell(j, &cellRecord{
					Bench: j.bench, Cfg: j.cfg, Attempts: attempts,
					Failed:      true,
					ErrKind:     kindName(err),
					ErrMsg:      err.Error(),
					Fingerprint: simerr.FingerprintOf(err),
				})
			}
			// (cells cut short by sweep cancellation stay unjournaled)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				failed = append(failed, &CellError{Bench: j.bench, Cfg: j.cfg, Attempts: attempts, Err: err})
				// Placeholder: renders as zeros, but names the failure.
				res = &core.Result{Benchmark: j.bench}
				if ctx.Err() == nil {
					res.ReproFingerprint = simerr.FingerprintOf(err)
				}
			}
			if jerr != nil {
				failed = append(failed, &CellError{Bench: j.bench, Cfg: j.cfg, Attempts: attempts,
					Err: fmt.Errorf("journal append: %w", jerr)})
			}
			results[j.bench][j.cfg] = res
		}(j)
	}
	wg.Wait()
	if len(failed) > 0 {
		sort.Slice(failed, func(i, k int) bool {
			if failed[i].Bench != failed[k].Bench {
				return failed[i].Bench < failed[k].Bench
			}
			return failed[i].Cfg < failed[k].Cfg
		})
		return results, &MatrixError{Cells: failed}
	}
	return results, nil
}

// kindName classifies err for the journal; untyped setup errors (unknown
// benchmark, generation failure) record as internal.
func kindName(err error) string {
	k, _ := simerr.KindOf(err)
	return k.String()
}

// runCellWithRetry runs a cell under the per-cell timeout, retrying with
// exponential backoff until the attempt budget is exhausted. Sweep
// cancellation stops the retry loop immediately: an interrupted cell is
// not a permanent failure.
func (r *Runner) runCellWithRetry(ctx context.Context, j job) (*core.Result, int, error) {
	r.executed.Add(1)
	attempts := r.RetryAttempts
	if attempts <= 0 {
		attempts = 2
	}
	backoff := r.RetryBackoff
	if backoff == 0 {
		backoff = 100 * time.Millisecond
	}
	run := func() (*core.Result, error) {
		cctx := ctx
		if r.CellTimeout > 0 {
			var cancel context.CancelFunc
			cctx, cancel = context.WithTimeout(ctx, r.CellTimeout)
			defer cancel()
		}
		return r.runCell(cctx, j)
	}
	var err error
	for a := 1; a <= attempts; a++ {
		var res *core.Result
		res, err = run()
		if err == nil {
			return res, a, nil
		}
		if ctx.Err() != nil || a == attempts {
			return nil, a, err
		}
		if backoff > 0 {
			t := time.NewTimer(backoff << (a - 1))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, a, err
			}
		}
	}
	return nil, attempts, err
}

// characterize streams maxInsts committed instructions of a benchmark
// through the given per-instruction sink.
func (r *Runner) characterize(bench string, sink func(*functional.DynInst)) error {
	p, err := r.Program(bench)
	if err != nil {
		return err
	}
	e := functional.NewExecutor(p)
	var d functional.DynInst
	for n := int64(0); n < r.MaxInsts; n++ {
		if err := e.Step(&d); err != nil {
			break // halted: characterize what we have
		}
		sink(&d)
	}
	return nil
}

// ---------------------------------------------------------------------
// Table 1: machine configuration (static).

// Table1 renders the simulated machine configuration.
func Table1() *stats.Table {
	m := config.Default()
	t := stats.NewTable("Table 1: machine configuration", "parameter", "configuration")
	t.AddRow("out-of-order", fmt.Sprintf("%d-wide fetch/issue/commit, %d-entry ROB, %d-entry issue queue (0=unrestricted), selective replay (%d-cycle penalty)",
		m.Width, m.ROBEntries, m.IQEntries, m.ReplayPenalty))
	t.AddRow("functional units", fmt.Sprintf("%d int ALU (1), %d int MUL/DIV (3/20), %d FP ALU (2), %d FP MUL/DIV (4/24), %d memory ports",
		m.IntALUs, m.IntMuls, m.FPALUs, m.FPMuls, m.MemPorts))
	t.AddRow("branch prediction", fmt.Sprintf("bimodal %dk + gshare %dk with %dk selector, %d RAS, %dk-entry %d-way BTB, >=%d-cycle misprediction recovery",
		m.Branch.BimodalEntries/1024, m.Branch.GshareEntries/1024, m.Branch.SelectorEntries/1024,
		m.Branch.RASEntries, m.Branch.BTBEntries/1024, m.Branch.BTBAssoc, m.MinBranchPenalty))
	t.AddRow("memory system", fmt.Sprintf("%dKB %d-way %dB IL1 (%d), %dKB %d-way %dB DL1 (%d), %dKB %d-way %dB L2 (%d), memory (%d)",
		m.Mem.IL1.SizeBytes/1024, m.Mem.IL1.Assoc, m.Mem.IL1.LineBytes, m.Mem.IL1.Latency,
		m.Mem.DL1.SizeBytes/1024, m.Mem.DL1.Assoc, m.Mem.DL1.LineBytes, m.Mem.DL1.Latency,
		m.Mem.L2.SizeBytes/1024, m.Mem.L2.Assoc, m.Mem.L2.LineBytes, m.Mem.L2.Latency,
		m.Mem.MemLatency))
	return t
}

// ---------------------------------------------------------------------
// Table 2: benchmarks and base IPCs (32-entry / unrestricted issue queue).

// Table2 runs the base scheduler under both queue configurations.
func (r *Runner) Table2() (*stats.Table, error) {
	res, err := r.RunMatrix(map[string]config.Machine{
		"iq32":  config.Default().WithSched(config.SchedBase),
		"unres": config.Unrestricted().WithSched(config.SchedBase),
	})
	if res == nil {
		return nil, err
	}
	t := stats.NewTable("Table 2: benchmarks and base IPC",
		"benchmark", "insts", "IPC (32-entry)", "IPC (unrestricted)")
	for _, b := range r.benchmarks() {
		t.AddRow(b, res[b]["iq32"].Committed, res[b]["iq32"].IPC, res[b]["unres"].IPC)
	}
	return t, err
}

// ---------------------------------------------------------------------
// Figure 6: dependence edge distance characterization.

// Figure6 classifies every potential MOP head by the distance to its
// nearest potential tail.
func (r *Runner) Figure6() (*stats.Table, error) {
	t := stats.NewTable("Figure 6: dependence edge distance between candidate pairs (% of value-generating candidates)",
		"benchmark", "%total insts", "1~3", "4~7", "8+", "not-candidate", "dead")
	for _, b := range r.benchmarks() {
		acc := mop.NewEdgeDistance()
		if err := r.characterize(b, acc.Push); err != nil {
			return nil, err
		}
		acc.Flush()
		h := acc.Heads
		t.AddRow(b,
			stats.Pct(acc.Heads, acc.TotalInsts),
			stats.Pct(acc.Dist1to3, h), stats.Pct(acc.Dist4to7, h), stats.Pct(acc.Dist8plus, h),
			stats.Pct(acc.NotCandidate, h), stats.Pct(acc.Dead, h))
	}
	return t, nil
}

// ---------------------------------------------------------------------
// Figure 7: groupable instructions for 2x and 8x MOPs.

// Figure7 measures idealized grouping coverage within the 8-instruction
// scope for both MOP size limits.
func (r *Runner) Figure7() (*stats.Table, error) {
	t := stats.NewTable("Figure 7: instructions groupable into MOPs (% of total instructions)",
		"benchmark", "cfg", "MOP-valuegen", "MOP-nonvaluegen", "cand-not-grouped", "not-candidate", "valuegen-cands", "avg-insts/8x-MOP")
	for _, b := range r.benchmarks() {
		g2 := mop.NewGrouping(2)
		g8 := mop.NewGrouping(8)
		if err := r.characterize(b, func(d *functional.DynInst) {
			g2.Push(d)
			g8.Push(d)
		}); err != nil {
			return nil, err
		}
		g2.Flush()
		g8.Flush()
		for _, g := range []*mop.Grouping{g2, g8} {
			t.AddRow(b, fmt.Sprintf("%dx", g.MaxSize),
				stats.Pct(g.MOPValueGen, g.TotalInsts),
				stats.Pct(g.MOPNonValueGen, g.TotalInsts),
				stats.Pct(g.CandNotGrouped, g.TotalInsts),
				stats.Pct(g.NotCandidate, g.TotalInsts),
				stats.Pct(g.ValueGenCands, g.TotalInsts),
				g.AvgGroupSize())
		}
	}
	return t, nil
}

// mopMachine builds a macro-op machine with the given wakeup style, queue
// size (0 = unrestricted) and extra formation stages.
func mopMachine(w config.WakeupStyle, iq, extraStages int) config.Machine {
	m := config.Default().WithIQ(iq)
	mc := config.DefaultMOP()
	mc.Wakeup = w
	mc.ExtraFormationStages = extraStages
	return m.WithMOP(mc)
}

// ---------------------------------------------------------------------
// Figure 13: grouped instructions under real pipeline constraints.

// Figure13 reports the committed-instruction grouping breakdown for
// CAM-2src and wired-OR macro-op scheduling.
func (r *Runner) Figure13() (*stats.Table, error) {
	res, err := r.RunMatrix(map[string]config.Machine{
		"2-src":    mopMachine(config.WakeupCAM2Src, 32, 1),
		"wired-OR": mopMachine(config.WakeupWiredOR, 32, 1),
	})
	if res == nil {
		return nil, err
	}
	t := stats.NewTable("Figure 13: grouped instructions in macro-op scheduling (% of committed instructions)",
		"benchmark", "wakeup", "MOP-valuegen", "MOP-nonvaluegen", "independent-MOP", "cand-not-grouped", "not-candidate", "insert-reduction%")
	for _, b := range r.benchmarks() {
		for _, cfgName := range []string{"2-src", "wired-OR"} {
			x := res[b][cfgName]
			t.AddRow(b, cfgName,
				stats.Pct(x.ValueGenGrouped, x.Committed),
				stats.Pct(x.NonValueGenGrouped, x.Committed),
				stats.Pct(x.IndepGrouped, x.Committed),
				stats.Pct(x.CandNotGrouped, x.Committed),
				stats.Pct(x.NotCandidate, x.Committed),
				100*x.InsertReduction())
		}
	}
	return t, err
}

// ---------------------------------------------------------------------
// Figure 14: vanilla macro-op scheduling performance (unrestricted queue,
// no extra formation stage), normalized to base scheduling.

// Figure14 compares 2-cycle and macro-op scheduling without queue
// contention.
func (r *Runner) Figure14() (*stats.Table, error) {
	res, err := r.RunMatrix(map[string]config.Machine{
		"base":        config.Unrestricted().WithSched(config.SchedBase),
		"2-cycle":     config.Unrestricted().WithSched(config.SchedTwoCycle),
		"MOP-2src":    mopMachine(config.WakeupCAM2Src, 0, 0),
		"MOP-wiredOR": mopMachine(config.WakeupWiredOR, 0, 0),
	})
	if res == nil {
		return nil, err
	}
	t := stats.NewTable("Figure 14: vanilla macro-op scheduling (unrestricted IQ / 128 ROB, no extra stage), IPC normalized to base",
		"benchmark", "base-IPC", "2-cycle", "MOP-2src", "MOP-wiredOR")
	for _, b := range r.benchmarks() {
		base := res[b]["base"].IPC
		t.AddRow(b, base,
			norm(res[b]["2-cycle"].IPC, base),
			norm(res[b]["MOP-2src"].IPC, base),
			norm(res[b]["MOP-wiredOR"].IPC, base))
	}
	return t, err
}

// ---------------------------------------------------------------------
// Figure 15: macro-op scheduling under issue queue contention (32-entry),
// with 0/1/2 extra MOP formation stages.

// Figure15 compares the schedulers under a 32-entry issue queue.
func (r *Runner) Figure15() (*stats.Table, error) {
	cfgs := map[string]config.Machine{
		"base":    config.Default().WithSched(config.SchedBase),
		"2-cycle": config.Default().WithSched(config.SchedTwoCycle),
	}
	for _, w := range []config.WakeupStyle{config.WakeupCAM2Src, config.WakeupWiredOR} {
		for stages := 0; stages <= 2; stages++ {
			cfgs[fmt.Sprintf("MOP-%s+%d", w, stages)] = mopMachine(w, 32, stages)
		}
	}
	res, err := r.RunMatrix(cfgs)
	if res == nil {
		return nil, err
	}
	t := stats.NewTable("Figure 15: macro-op scheduling under issue queue contention (32-entry IQ / 128 ROB), IPC normalized to base",
		"benchmark", "base-IPC", "2-cycle",
		"MOP-2src+0", "MOP-2src+1", "MOP-2src+2",
		"MOP-wiredOR+0", "MOP-wiredOR+1", "MOP-wiredOR+2")
	for _, b := range r.benchmarks() {
		base := res[b]["base"].IPC
		t.AddRow(b, base,
			norm(res[b]["2-cycle"].IPC, base),
			norm(res[b]["MOP-2-src+0"].IPC, base),
			norm(res[b]["MOP-2-src+1"].IPC, base),
			norm(res[b]["MOP-2-src+2"].IPC, base),
			norm(res[b]["MOP-wired-OR+0"].IPC, base),
			norm(res[b]["MOP-wired-OR+1"].IPC, base),
			norm(res[b]["MOP-wired-OR+2"].IPC, base))
	}
	return t, err
}

// ---------------------------------------------------------------------
// Figure 16: pipelined scheduling logic comparison (select-free vs MOP).

// Figure16 compares select-free scheduling against macro-op scheduling
// under the 32-entry issue queue.
func (r *Runner) Figure16() (*stats.Table, error) {
	res, err := r.RunMatrix(map[string]config.Machine{
		"base":        config.Default().WithSched(config.SchedBase),
		"squash-dep":  config.Default().WithSched(config.SchedSelectFreeSquashDep),
		"scoreboard":  config.Default().WithSched(config.SchedSelectFreeScoreboard),
		"MOP-wiredOR": mopMachine(config.WakeupWiredOR, 32, 1),
	})
	if res == nil {
		return nil, err
	}
	t := stats.NewTable("Figure 16: pipelined scheduling logic comparison (32-entry IQ), IPC normalized to base",
		"benchmark", "base-IPC", "select-free-squash-dep", "select-free-scoreboard", "MOP-wiredOR")
	for _, b := range r.benchmarks() {
		base := res[b]["base"].IPC
		t.AddRow(b, base,
			norm(res[b]["squash-dep"].IPC, base),
			norm(res[b]["scoreboard"].IPC, base),
			norm(res[b]["MOP-wiredOR"].IPC, base))
	}
	return t, err
}

// ---------------------------------------------------------------------
// Ablations from the text.

// DetectionDelay reproduces Section 6.2's observation that even a
// 100-cycle MOP detection delay costs almost nothing, because pointers
// stored with the instruction cache are reused.
func (r *Runner) DetectionDelay() (*stats.Table, error) {
	fast := mopMachine(config.WakeupWiredOR, 32, 1)
	slow := fast
	slow.MOP.DetectionDelay = 100
	res, err := r.RunMatrix(map[string]config.Machine{"delay3": fast, "delay100": slow})
	if res == nil {
		return nil, err
	}
	t := stats.NewTable("Ablation: MOP detection delay 3 vs 100 cycles (MOP-wiredOR, 32-entry IQ)",
		"benchmark", "IPC (3-cycle)", "IPC (100-cycle)", "slowdown%")
	for _, b := range r.benchmarks() {
		f, s := res[b]["delay3"].IPC, res[b]["delay100"].IPC
		t.AddRow(b, f, s, 100*(1-norm(s, f)))
	}
	return t, err
}

// LastArriving reproduces Section 5.4.2's filter: deleting MOP pointers
// whose tail operand arrives last.
func (r *Runner) LastArriving() (*stats.Table, error) {
	on := mopMachine(config.WakeupCAM2Src, 32, 1)
	off := on
	off.MOP.LastArrivingFilter = false
	res, err := r.RunMatrix(map[string]config.Machine{"filter-on": on, "filter-off": off})
	if res == nil {
		return nil, err
	}
	t := stats.NewTable("Ablation: last-arriving-operand filter (MOP-2src, 32-entry IQ)",
		"benchmark", "IPC (on)", "IPC (off)", "gain%", "pointer-deletes")
	for _, b := range r.benchmarks() {
		onR, offR := res[b]["filter-on"], res[b]["filter-off"]
		t.AddRow(b, onR.IPC, offR.IPC, gainPct(onR.IPC, offR.IPC), onR.FilterDeletes)
	}
	return t, err
}

// IndependentMOPs reproduces Section 5.4.1: grouping independent pairs
// trades serialization against queue-contention relief.
func (r *Runner) IndependentMOPs() (*stats.Table, error) {
	on := mopMachine(config.WakeupWiredOR, 32, 1)
	off := on
	off.MOP.GroupIndependent = false
	res, err := r.RunMatrix(map[string]config.Machine{"indep-on": on, "indep-off": off})
	if res == nil {
		return nil, err
	}
	t := stats.NewTable("Ablation: independent MOPs on/off (MOP-wiredOR, 32-entry IQ)",
		"benchmark", "IPC (on)", "IPC (off)", "gain%", "grouped% (on)", "grouped% (off)")
	for _, b := range r.benchmarks() {
		onR, offR := res[b]["indep-on"], res[b]["indep-off"]
		t.AddRow(b, onR.IPC, offR.IPC, gainPct(onR.IPC, offR.IPC),
			100*onR.GroupedFrac(), 100*offR.GroupedFrac())
	}
	return t, err
}

func norm(x, base float64) float64 {
	if base == 0 {
		return 0
	}
	return x / base
}

func gainPct(x, base float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (x/base - 1)
}
