package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"

	"macroop/internal/config"
	"macroop/internal/optsched"
	"macroop/internal/simerr"
	"macroop/internal/stats"
)

// GapReport is the heuristic-vs-optimum gap result over a benchmark set:
// per benchmark, the exact (or certified-bound) window cycles next to
// each heuristic's replay of the identical windows. It is the
// JSON-serializable unit the gap endpoint caches and journals.
type GapReport struct {
	Spec    optsched.GapSpec    `json:"spec"`
	Machine string              `json:"machine"` // short label, e.g. "table1"
	Benches []optsched.BenchGap `json:"benches"`
}

// Violations sums admissibility violations across all benchmarks; any
// non-zero value means the oracle is broken and the report untrustworthy.
func (rep *GapReport) Violations() int {
	n := 0
	for _, b := range rep.Benches {
		n += b.Violations
	}
	return n
}

// OptimalWindows sums proven-optimal windows across benchmarks.
func (rep *GapReport) OptimalWindows() (optimal, total int) {
	for _, b := range rep.Benches {
		optimal += b.OptimalWindows
		total += b.Windows
	}
	return optimal, total
}

// GapFingerprint is the content identity of a gap report: a stable hash
// over the benchmark list, the machine configuration, and the resolved
// gap spec — everything that determines the result. The service keys its
// gap cache and journal records on it.
func GapFingerprint(benchmarks []string, m config.Machine, spec optsched.GapSpec) string {
	spec = spec.WithDefaults()
	cfgJSON, err := json.Marshal(m)
	if err != nil {
		cfgJSON = []byte(fmt.Sprintf("%+v", m))
	}
	return simerr.Fingerprint("gap", fmt.Sprint(benchmarks), string(cfgJSON),
		fmt.Sprint(spec.Window), fmt.Sprint(spec.Stride), fmt.Sprint(spec.MaxWindows), fmt.Sprint(spec.NodeBudget))
}

// Gap runs the gap pipeline over a benchmark set in parallel: per
// benchmark, extract windows under the machine's window model, replay
// all four heuristics, and solve each window exactly. An empty benches
// falls back to the runner's configured set. Benchmarks are independent,
// so they fan out under the runner's concurrency cap. The explicit
// parameter (rather than mutating r.Benchmarks) lets a long-lived
// service share one runner — and its per-benchmark program futures —
// across concurrent gap requests.
func (r *Runner) Gap(ctx context.Context, benches []string, m config.Machine, spec optsched.GapSpec) (*GapReport, error) {
	spec = spec.WithDefaults()
	if len(benches) == 0 {
		benches = r.benchmarks()
	}
	rep := &GapReport{Spec: spec, Machine: "table1", Benches: make([]optsched.BenchGap, len(benches))}

	workers := r.Concurrency
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	sem := make(chan struct{}, workers)
	errs := make([]error, len(benches))
	var wg sync.WaitGroup
	for i, b := range benches {
		wg.Add(1)
		go func(i int, bench string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			p, err := r.Program(bench)
			if err != nil {
				errs[i] = fmt.Errorf("gap %s: %w", bench, err)
				rep.Benches[i] = optsched.BenchGap{Bench: bench}
				return
			}
			g, err := optsched.RunGap(ctx, p, m, spec)
			if err != nil {
				errs[i] = fmt.Errorf("gap %s: %w", bench, err)
			}
			rep.Benches[i] = g
		}(i, b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// GapTable renders a gap report as the paper-style results table: one
// row per benchmark x heuristic with the heuristic's window cycles, the
// exact optimum (and its certified lower bound), and the gap percentage.
func GapTable(rep *GapReport) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Gap report: heuristic vs optimal schedule (%d-uop windows, stride %d, <=%d windows/bench, node budget %d)",
			rep.Spec.Window, rep.Spec.Stride, rep.Spec.MaxWindows, rep.Spec.NodeBudget),
		"benchmark", "heuristic", "cycles", "optimum", "bound", "gap%", "windows", "optimal-windows", "violations")
	for _, b := range rep.Benches {
		for _, h := range optsched.Heuristics() {
			t.AddRow(b.Bench, h.String(), b.Heur[h.String()], b.OptCycles, b.BoundCycles,
				b.GapPct(h), b.Windows, b.OptimalWindows, b.Violations)
		}
	}
	return t
}
