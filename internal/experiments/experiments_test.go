package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsSmall runs every experiment at a tiny scale to verify
// wiring: every table must have the expected number of rows and no empty
// cells.
func TestAllExperimentsSmall(t *testing.T) {
	r := NewRunner(4000)
	r.Benchmarks = []string{"gzip", "vortex"}
	checks := []struct {
		name string
		rows int
		run  func() (interface{ String() string }, error)
	}{
		{"Table2", 2, func() (interface{ String() string }, error) { return r.Table2() }},
		{"Figure6", 2, func() (interface{ String() string }, error) { return r.Figure6() }},
		{"Figure7", 4, func() (interface{ String() string }, error) { return r.Figure7() }},
		{"Figure13", 4, func() (interface{ String() string }, error) { return r.Figure13() }},
		{"Figure14", 2, func() (interface{ String() string }, error) { return r.Figure14() }},
		{"Figure15", 2, func() (interface{ String() string }, error) { return r.Figure15() }},
		{"Figure16", 2, func() (interface{ String() string }, error) { return r.Figure16() }},
		{"DetectionDelay", 2, func() (interface{ String() string }, error) { return r.DetectionDelay() }},
		{"LastArriving", 2, func() (interface{ String() string }, error) { return r.LastArriving() }},
		{"IndependentMOPs", 2, func() (interface{ String() string }, error) { return r.IndependentMOPs() }},
	}
	for _, c := range checks {
		tab, err := c.run()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		out := tab.String()
		if strings.Contains(out, "0.000  0.000") {
			t.Errorf("%s: suspicious zero cells:\n%s", c.name, out)
		}
		t.Logf("%s:\n%s", c.name, out)
	}
}
