package experiments

import (
	"fmt"

	"macroop/internal/config"
	"macroop/internal/functional"
	"macroop/internal/mop"
	"macroop/internal/stats"
)

// MOPSize evaluates the paper's future-work extension (Section 4.3):
// chained MOPs of up to 3 and 4 instructions against the evaluated pairs,
// under queue contention where the extra entry compression pays.
func (r *Runner) MOPSize() (*stats.Table, error) {
	cfgs := map[string]config.Machine{
		"base": config.Default().WithSched(config.SchedBase),
	}
	for _, size := range []int{2, 3, 4} {
		mc := config.DefaultMOP()
		mc.MaxMOPSize = size
		cfgs[fmt.Sprintf("mop%d", size)] = config.Default().WithMOP(mc)
	}
	res, err := r.RunMatrix(cfgs)
	if res == nil {
		return nil, err
	}
	t := stats.NewTable("Extension: chained MOP size (wired-OR, 32-entry IQ), IPC normalized to base",
		"benchmark", "base-IPC", "2x", "3x", "4x",
		"insert-red% 2x", "insert-red% 3x", "insert-red% 4x")
	for _, b := range r.benchmarks() {
		base := res[b]["base"].IPC
		t.AddRow(b, base,
			norm(res[b]["mop2"].IPC, base),
			norm(res[b]["mop3"].IPC, base),
			norm(res[b]["mop4"].IPC, base),
			100*res[b]["mop2"].InsertReduction(),
			100*res[b]["mop3"].InsertReduction(),
			100*res[b]["mop4"].InsertReduction())
	}
	return t, err
}

// HeuristicCoverage quantifies Section 5.1.1's claim that the
// conservative cycle-detection heuristic retains over 90% of the MOP
// formation opportunities found by precise cycle detection. Both
// detectors observe the same committed stream in rename-width groups.
func (r *Runner) HeuristicCoverage() (*stats.Table, error) {
	t := stats.NewTable("Ablation: conservative cycle heuristic vs precise detection (dependent pairs found)",
		"benchmark", "heuristic", "precise", "coverage%")
	for _, b := range r.benchmarks() {
		heur := config.DefaultMOP()
		heur.DetectionDelay = 0
		prec := heur
		prec.PreciseCycleDetection = true

		tblH := mop.NewPointerTable()
		detH := mop.NewDetector(heur, tblH)
		tblP := mop.NewPointerTable()
		detP := mop.NewDetector(prec, tblP)

		var group []*functional.DynInst
		cycle := int64(0)
		feed := func(d *functional.DynInst) {
			dd := *d
			group = append(group, &dd)
			if len(group) == 4 {
				detH.Observe(cycle, group)
				detP.Observe(cycle, group)
				group = nil
				cycle++
			}
		}
		if err := r.characterize(b, feed); err != nil {
			return nil, err
		}
		h := detH.Stats().DependentPairs
		p := detP.Stats().DependentPairs
		t.AddRow(b, h, p, 100*stats.Ratio(h, p))
	}
	return t, nil
}

// QueueSweep sweeps the issue queue size for the three main schedulers,
// reporting IPC; the macro-op column degrades most gracefully (two
// instructions per entry double the effective window).
func (r *Runner) QueueSweep(bench string) (*stats.Table, error) {
	sizes := []int{8, 12, 16, 24, 32, 48, 64}
	cfgs := map[string]config.Machine{}
	for _, iq := range sizes {
		cfgs[fmt.Sprintf("base%d", iq)] = config.Default().WithIQ(iq).WithSched(config.SchedBase)
		cfgs[fmt.Sprintf("2cyc%d", iq)] = config.Default().WithIQ(iq).WithSched(config.SchedTwoCycle)
		cfgs[fmt.Sprintf("mop%d", iq)] = config.Default().WithIQ(iq).WithMOP(config.DefaultMOP())
	}
	saved := r.Benchmarks
	r.Benchmarks = []string{bench}
	res, err := r.RunMatrix(cfgs)
	r.Benchmarks = saved
	if res == nil {
		return nil, err
	}
	t := stats.NewTable(fmt.Sprintf("Extension: issue queue sweep on %s (IPC)", bench),
		"queue", "base", "2-cycle", "macro-op", "MOP vs base")
	for _, iq := range sizes {
		b := res[bench][fmt.Sprintf("base%d", iq)].IPC
		m := res[bench][fmt.Sprintf("mop%d", iq)].IPC
		t.AddRow(iq, b, res[bench][fmt.Sprintf("2cyc%d", iq)].IPC, m, norm(m, b))
	}
	return t, err
}

// WidthSweep varies the machine width (with proportionally scaled
// functional units and fetch buffering). Width also scales the MOP
// detection scope (2 rename groups), so wider machines both need
// back-to-back scheduling more and find pairs more easily — the sweep
// shows how the 2-cycle penalty and the MOP recovery grow with width.
func (r *Runner) WidthSweep(bench string) (*stats.Table, error) {
	widths := []int{2, 4, 8}
	cfgs := map[string]config.Machine{}
	mkWidth := func(w int) config.Machine {
		m := config.Default()
		m.Width = w
		m.IntALUs = w
		m.IntMuls = max(1, w/2)
		m.FPALUs = max(1, w/2)
		m.FPMuls = max(1, w/2)
		m.MemPorts = max(1, w/2)
		m.FetchBufEntries = 8 * w
		return m
	}
	for _, w := range widths {
		cfgs[fmt.Sprintf("base%d", w)] = mkWidth(w).WithSched(config.SchedBase)
		cfgs[fmt.Sprintf("2cyc%d", w)] = mkWidth(w).WithSched(config.SchedTwoCycle)
		cfgs[fmt.Sprintf("mop%d", w)] = mkWidth(w).WithMOP(config.DefaultMOP())
	}
	saved := r.Benchmarks
	r.Benchmarks = []string{bench}
	res, err := r.RunMatrix(cfgs)
	r.Benchmarks = saved
	if res == nil {
		return nil, err
	}
	t := stats.NewTable(fmt.Sprintf("Extension: machine width sweep on %s (IPC, normalized in parentheses-free columns)", bench),
		"width", "base", "2-cycle", "macro-op", "2cyc/base", "MOP/base")
	for _, w := range widths {
		b := res[bench][fmt.Sprintf("base%d", w)].IPC
		c2 := res[bench][fmt.Sprintf("2cyc%d", w)].IPC
		m := res[bench][fmt.Sprintf("mop%d", w)].IPC
		t.AddRow(w, b, c2, m, norm(c2, b), norm(m, b))
	}
	return t, err
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
