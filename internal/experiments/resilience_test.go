package experiments

import (
	"errors"
	"testing"
	"time"

	"macroop/internal/config"
	"macroop/internal/simerr"
)

// TestRunMatrixPartialResults: a sweep with one broken benchmark still
// returns a fully populated result map (placeholder for the failed cell)
// plus a MatrixError naming exactly the failed cells.
func TestRunMatrixPartialResults(t *testing.T) {
	r := NewRunner(2000)
	r.Benchmarks = []string{"gzip", "no-such-bench"}
	res, err := r.RunMatrix(map[string]config.Machine{
		"base": config.Default().WithSched(config.SchedBase),
	})
	var me *MatrixError
	if !errors.As(err, &me) {
		t.Fatalf("want *MatrixError, got %v", err)
	}
	if len(me.Cells) != 1 {
		t.Fatalf("want 1 failed cell, got %d: %v", len(me.Cells), me)
	}
	c := me.Cells[0]
	if c.Bench != "no-such-bench" || c.Cfg != "base" || c.Attempts != 2 {
		t.Errorf("failed cell = %+v, want no-such-bench/base after 2 attempts", c)
	}
	// The healthy cell ran; the broken cell holds a non-nil placeholder.
	if got := res["gzip"]["base"]; got == nil || got.Committed == 0 {
		t.Errorf("healthy cell missing or empty: %+v", got)
	}
	if got := res["no-such-bench"]["base"]; got == nil || got.Committed != 0 {
		t.Errorf("failed cell should hold a zero placeholder, got %+v", got)
	}
	// A cell that exhausted its retries records the last error's repro
	// fingerprint in its placeholder, so a rendered partial table still
	// names the failure identity, not just zeros.
	if got := res["no-such-bench"]["base"]; got.ReproFingerprint == "" {
		t.Error("exhausted cell's placeholder carries no repro fingerprint")
	} else if want := simerr.FingerprintOf(c.Err); got.ReproFingerprint != want {
		t.Errorf("placeholder fingerprint %s, want FingerprintOf(last error) %s", got.ReproFingerprint, want)
	}
	if got := res["gzip"]["base"]; got.ReproFingerprint != "" {
		t.Errorf("healthy cell unexpectedly carries a fingerprint %q", got.ReproFingerprint)
	}
	// Tables over the same runner render the healthy rows and surface the
	// failures instead of aborting.
	tab, terr := r.Table2()
	if tab == nil {
		t.Fatalf("Table2 returned no table: %v", terr)
	}
	if !errors.As(terr, &me) {
		t.Errorf("Table2 error = %v, want *MatrixError", terr)
	}
}

// TestRunMatrixCellTimeout: a microscopic per-cell budget cancels every
// cell with a typed cancellation error rather than hanging or crashing.
func TestRunMatrixCellTimeout(t *testing.T) {
	r := NewRunner(200_000)
	r.Benchmarks = []string{"gzip"}
	r.CellTimeout = time.Microsecond
	_, err := r.RunMatrix(map[string]config.Machine{
		"base": config.Default().WithSched(config.SchedBase),
	})
	var me *MatrixError
	if !errors.As(err, &me) {
		t.Fatalf("want *MatrixError, got %v", err)
	}
	for _, c := range me.Cells {
		if !errors.Is(c.Err, simerr.ErrCancelled) {
			t.Errorf("cell %s/%s failed with %v, want ErrCancelled", c.Bench, c.Cfg, c.Err)
		}
	}
}
