// Package simerr defines the simulator's typed failure model. Every
// abnormal outcome of a simulation — a scheduler livelock, a pipeline
// that stops making forward progress, a differential-check divergence, a
// cancelled run, or an internal invariant violation — is reported as a
// structured error carrying enough context (benchmark, scheduler model,
// cycle, committed count) to reproduce and triage it, and classifiable
// with errors.Is against the package's sentinel values.
//
// The package sits below every simulator layer (core, sched, checker,
// fault, experiments) and imports none of them, so any layer can type its
// failures without dependency cycles.
package simerr

import (
	"errors"
	"fmt"
	"strings"
)

// Kind classifies a simulation failure.
type Kind int

// Failure kinds.
const (
	// KindInternal is an invariant violation or recovered panic inside
	// the simulator — a bug, not a property of the simulated machine.
	KindInternal Kind = iota
	// KindDeadlock is a forward-progress failure: no instruction
	// committed for the watchdog window.
	KindDeadlock
	// KindLivelock is a replay storm: an issue queue entry replayed more
	// times than the configured threshold.
	KindLivelock
	// KindCheckFailed is a lockstep differential-oracle divergence or
	// pipeline invariant violation (internal/checker).
	KindCheckFailed
	// KindCancelled is a context cancellation or deadline expiry.
	KindCancelled
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindInternal:
		return "internal"
	case KindDeadlock:
		return "deadlock"
	case KindLivelock:
		return "livelock"
	case KindCheckFailed:
		return "check-failed"
	case KindCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// HTTPStatus maps the failure kind to its stable HTTP status code — the
// wire contract of the simulation service (cmd/mopserve). Cancellation
// reports 499 (the nginx "client closed request" convention: the caller
// gave up, the simulator did not fail); every other kind is a server-side
// simulation failure and reports 500, with the repro fingerprint carried
// in the response body rather than the status line.
func (k Kind) HTTPStatus() int {
	if k == KindCancelled {
		return 499
	}
	return 500
}

// ParseKind resolves a kind name as printed by Kind.String (the form
// journals and repro bundles store).
func ParseKind(s string) (Kind, error) {
	for k := KindInternal; k <= KindCancelled; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return KindInternal, fmt.Errorf("simerr: unknown failure kind %q", s)
}

// Sentinel errors for errors.Is classification. A *Error or
// *InternalError matches the sentinel of its kind.
var (
	ErrInternal    = errors.New("simerr: internal fault")
	ErrDeadlock    = errors.New("simerr: deadlock (no forward progress)")
	ErrLivelock    = errors.New("simerr: livelock (replay storm)")
	ErrCheckFailed = errors.New("simerr: differential check failed")
	ErrCancelled   = errors.New("simerr: simulation cancelled")
)

func (k Kind) sentinel() error {
	switch k {
	case KindDeadlock:
		return ErrDeadlock
	case KindLivelock:
		return ErrLivelock
	case KindCheckFailed:
		return ErrCheckFailed
	case KindCancelled:
		return ErrCancelled
	}
	return ErrInternal
}

// Context identifies the failing simulation: which benchmark, under which
// scheduler model, how far it got. Zero fields render as absent.
type Context struct {
	Benchmark string
	Sched     string // scheduler model name (config.SchedModel.String())
	Cycle     int64
	Committed int64
}

// String renders the context compactly ("gzip/macro-op cycle 1234, 567
// committed"); empty contexts render empty.
func (c Context) String() string {
	var b strings.Builder
	switch {
	case c.Benchmark != "" && c.Sched != "":
		fmt.Fprintf(&b, "%s/%s", c.Benchmark, c.Sched)
	case c.Benchmark != "":
		b.WriteString(c.Benchmark)
	case c.Sched != "":
		b.WriteString(c.Sched)
	}
	if c.Cycle > 0 || c.Committed > 0 {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "cycle %d, %d committed", c.Cycle, c.Committed)
	}
	return b.String()
}

// Error is a structured, classifiable simulation failure.
type Error struct {
	Kind Kind
	Ctx  Context
	// Msg is the human-readable description of what went wrong.
	Msg string
	// Dump is an optional multi-line diagnostic state dump (the watchdog
	// attaches pipeline state here). It is not part of Error() — retrieve
	// it with DumpOf or a type assertion.
	Dump string
	// Err is the optional underlying cause (e.g. ctx.Err() for
	// cancellations); it participates in errors.Is/As via Unwrap.
	Err error
}

// Error implements the error interface.
func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: %s", e.Kind)
	if s := e.Ctx.String(); s != "" {
		fmt.Fprintf(&b, ": %s", s)
	}
	if e.Msg != "" {
		fmt.Fprintf(&b, ": %s", e.Msg)
	}
	if e.Err != nil {
		fmt.Fprintf(&b, ": %v", e.Err)
	}
	return b.String()
}

// Is matches the sentinel of the error's kind.
func (e *Error) Is(target error) bool { return target == e.Kind.sentinel() }

// Unwrap exposes the underlying cause (nil if none).
func (e *Error) Unwrap() error { return e.Err }

// New builds a structured failure of the given kind.
func New(kind Kind, ctx Context, format string, args ...any) *Error {
	return &Error{Kind: kind, Ctx: ctx, Msg: fmt.Sprintf(format, args...)}
}

// Deadlock reports a forward-progress failure with a diagnostic dump.
func Deadlock(ctx Context, dump, format string, args ...any) *Error {
	e := New(KindDeadlock, ctx, format, args...)
	e.Dump = dump
	return e
}

// Livelock reports a replay storm with a diagnostic dump.
func Livelock(ctx Context, dump, format string, args ...any) *Error {
	e := New(KindLivelock, ctx, format, args...)
	e.Dump = dump
	return e
}

// CheckFailed reports a differential-oracle divergence.
func CheckFailed(ctx Context, format string, args ...any) *Error {
	return New(KindCheckFailed, ctx, format, args...)
}

// Cancelled reports a context cancellation, wrapping cause (normally
// ctx.Err()) so errors.Is(err, context.Canceled) keeps working.
func Cancelled(ctx Context, cause error) *Error {
	return &Error{Kind: KindCancelled, Ctx: ctx, Msg: "stopped by context", Err: cause}
}

// DumpOf extracts the diagnostic state dump attached to err, if any.
func DumpOf(err error) string {
	var e *Error
	if errors.As(err, &e) {
		return e.Dump
	}
	return ""
}

// KindOf classifies err: the Kind of the wrapped *Error or
// *InternalError, or (KindInternal, false) when err carries no typed
// simulation failure.
func KindOf(err error) (Kind, bool) {
	var e *Error
	if errors.As(err, &e) {
		return e.Kind, true
	}
	var ie *InternalError
	if errors.As(err, &ie) {
		return KindInternal, true
	}
	var je *JournaledError
	if errors.As(err, &je) {
		return je.Kind, true
	}
	return KindInternal, false
}

// InternalError is a simulator invariant violation or a recovered panic:
// a bug in the simulator itself, carrying a stable repro fingerprint so
// duplicate reports can be folded together.
type InternalError struct {
	Ctx Context
	// Value is the recovered panic value, or the violation description
	// for directly constructed internal errors.
	Value any
	// Stack is the goroutine stack captured at recovery ("" when the
	// error was constructed directly rather than recovered).
	Stack string
	// Fingerprint is a short stable hash over the benchmark, scheduler
	// model and failure message — the repro identity of the fault.
	Fingerprint string
}

// Error implements the error interface.
func (e *InternalError) Error() string {
	var b strings.Builder
	b.WriteString("sim: internal fault")
	if s := e.Ctx.String(); s != "" {
		fmt.Fprintf(&b, ": %s", s)
	}
	fmt.Fprintf(&b, ": %v [fingerprint %s]", e.Value, e.Fingerprint)
	return b.String()
}

// Is matches ErrInternal.
func (e *InternalError) Is(target error) bool { return target == ErrInternal }

// Internal builds an *InternalError from a violation or recovered panic
// value, computing the repro fingerprint.
func Internal(ctx Context, value any, stack string) *InternalError {
	return &InternalError{
		Ctx:         ctx,
		Value:       value,
		Stack:       stack,
		Fingerprint: Fingerprint(ctx.Benchmark, ctx.Sched, fmt.Sprint(value)),
	}
}

// Internalf builds an *InternalError from a formatted violation message.
func Internalf(ctx Context, format string, args ...any) *InternalError {
	return Internal(ctx, fmt.Sprintf(format, args...), "")
}

// JournaledError is a typed failure reconstituted from a journal or
// repro bundle: the original rendered message and repro fingerprint,
// still classifiable with errors.Is under the recorded kind's sentinel,
// without pretending to carry live context the original run had.
type JournaledError struct {
	Kind        Kind
	Msg         string // the original error's rendered Error() text
	Fingerprint string
}

// Error implements the error interface, rendering the original message
// verbatim.
func (e *JournaledError) Error() string { return e.Msg }

// Is matches the sentinel of the recorded kind.
func (e *JournaledError) Is(target error) bool { return target == e.Kind.sentinel() }

// Journaled reconstitutes a typed failure from its journaled kind,
// rendered message and repro fingerprint.
func Journaled(kind Kind, msg, fingerprint string) *JournaledError {
	return &JournaledError{Kind: kind, Msg: msg, Fingerprint: fingerprint}
}

// FingerprintOf returns the repro fingerprint of a typed simulation
// failure: the recorded fingerprint of an *InternalError or
// *JournaledError, or a stable hash over kind, run identity, position and
// message for a *Error. Untyped errors hash their rendered text. Two runs
// of the deterministic simulator that fail the same way produce the same
// fingerprint, which is what lets duplicate reports fold together and
// lets a repro bundle assert it replayed the original failure.
func FingerprintOf(err error) string {
	var je *JournaledError
	if errors.As(err, &je) {
		return je.Fingerprint
	}
	var ie *InternalError
	if errors.As(err, &ie) {
		return ie.Fingerprint
	}
	var e *Error
	if errors.As(err, &e) {
		return Fingerprint(e.Kind.String(), e.Ctx.Benchmark, e.Ctx.Sched,
			fmt.Sprintf("%d/%d", e.Ctx.Cycle, e.Ctx.Committed), e.Msg)
	}
	return Fingerprint("untyped", err.Error())
}

// Fingerprint hashes the given parts into a short stable hex identity
// (FNV-1a over the NUL-joined parts).
func Fingerprint(parts ...string) string {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= prime
		}
		h ^= 0
		h *= prime
	}
	return fmt.Sprintf("%016x", h)
}
