package simerr

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestSentinelClassification(t *testing.T) {
	cases := []struct {
		err      error
		sentinel error
	}{
		{New(KindDeadlock, Context{}, "stuck"), ErrDeadlock},
		{New(KindLivelock, Context{}, "storm"), ErrLivelock},
		{New(KindCheckFailed, Context{}, "diverged"), ErrCheckFailed},
		{New(KindCancelled, Context{}, "bye"), ErrCancelled},
		{New(KindInternal, Context{}, "bug"), ErrInternal},
		{Internal(Context{}, "boom", ""), ErrInternal},
	}
	sentinels := []error{ErrDeadlock, ErrLivelock, ErrCheckFailed, ErrCancelled, ErrInternal}
	for _, c := range cases {
		if !errors.Is(c.err, c.sentinel) {
			t.Errorf("%v should match %v", c.err, c.sentinel)
		}
		for _, s := range sentinels {
			if s != c.sentinel && errors.Is(c.err, s) {
				t.Errorf("%v must not match %v", c.err, s)
			}
		}
	}
}

func TestCancelledWrapsCause(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Cancelled(Context{Benchmark: "gzip"}, ctx.Err())
	if !errors.Is(err, ErrCancelled) {
		t.Error("not classified as cancelled")
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("context.Canceled cause lost")
	}
}

func TestErrorMessageCarriesContext(t *testing.T) {
	err := New(KindDeadlock, Context{Benchmark: "mcf", Sched: "macro-op", Cycle: 1234, Committed: 56}, "no commit for %d cycles", 500)
	msg := err.Error()
	for _, want := range []string{"deadlock", "mcf/macro-op", "cycle 1234", "56 committed", "no commit for 500 cycles"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q missing %q", msg, want)
		}
	}
}

func TestDumpTravels(t *testing.T) {
	err := Deadlock(Context{}, "IQ: 32 occupied\nROB: head seq 9", "stalled")
	if got := DumpOf(err); !strings.Contains(got, "ROB: head seq 9") {
		t.Errorf("dump lost: %q", got)
	}
	// Dump also survives wrapping.
	wrapped := errors.Join(errors.New("outer"), err)
	if got := DumpOf(wrapped); !strings.Contains(got, "IQ: 32 occupied") {
		t.Errorf("dump lost through wrap: %q", got)
	}
	if DumpOf(errors.New("plain")) != "" {
		t.Error("plain errors must have no dump")
	}
}

func TestKindOf(t *testing.T) {
	if k, ok := KindOf(New(KindLivelock, Context{}, "x")); !ok || k != KindLivelock {
		t.Errorf("got %v %v", k, ok)
	}
	if k, ok := KindOf(Internalf(Context{}, "bug %d", 7)); !ok || k != KindInternal {
		t.Errorf("got %v %v", k, ok)
	}
	if _, ok := KindOf(errors.New("plain")); ok {
		t.Error("plain error must not classify")
	}
}

func TestFingerprintStableAndDistinct(t *testing.T) {
	a := Fingerprint("gzip", "base", "boom")
	b := Fingerprint("gzip", "base", "boom")
	c := Fingerprint("gzip", "base", "bust")
	if a != b {
		t.Errorf("fingerprint unstable: %s vs %s", a, b)
	}
	if a == c {
		t.Error("distinct faults share a fingerprint")
	}
	if len(a) != 16 {
		t.Errorf("fingerprint length %d", len(a))
	}
	// Part boundaries matter: ("ab","c") != ("a","bc").
	if Fingerprint("ab", "c") == Fingerprint("a", "bc") {
		t.Error("part boundaries ignored")
	}
}

func TestInternalErrorFingerprintIgnoresCycle(t *testing.T) {
	e1 := Internal(Context{Benchmark: "gcc", Sched: "base", Cycle: 10}, "same bug", "")
	e2 := Internal(Context{Benchmark: "gcc", Sched: "base", Cycle: 99}, "same bug", "")
	if e1.Fingerprint != e2.Fingerprint {
		t.Error("fingerprint should fold duplicates across cycles")
	}
}

// TestParseKindRoundTrips: every kind parses back from its printed name,
// and unknown names are rejected.
func TestParseKindRoundTrips(t *testing.T) {
	for _, k := range []Kind{KindInternal, KindDeadlock, KindLivelock, KindCheckFailed, KindCancelled} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	if _, err := ParseKind("no-such-kind"); err == nil {
		t.Error("ParseKind accepted an unknown name")
	}
}

// TestJournaledErrorClassifies: a reconstituted failure still matches its
// kind's sentinel, renders its original message verbatim, and carries its
// fingerprint through FingerprintOf and KindOf.
func TestJournaledErrorClassifies(t *testing.T) {
	orig := Deadlock(Context{Benchmark: "gzip", Sched: "base", Cycle: 9, Committed: 4}, "dump", "stuck")
	fp := FingerprintOf(orig)
	je := Journaled(KindDeadlock, orig.Error(), fp)
	if !errors.Is(je, ErrDeadlock) {
		t.Error("journaled deadlock does not match ErrDeadlock")
	}
	if errors.Is(je, ErrCheckFailed) {
		t.Error("journaled deadlock matches the wrong sentinel")
	}
	if je.Error() != orig.Error() {
		t.Errorf("message changed: %q != %q", je.Error(), orig.Error())
	}
	if FingerprintOf(je) != fp {
		t.Errorf("fingerprint changed across journaling: %s != %s", FingerprintOf(je), fp)
	}
	if k, ok := KindOf(je); !ok || k != KindDeadlock {
		t.Errorf("KindOf(journaled) = %v, %v", k, ok)
	}
}

// TestFingerprintOfDeterministicAndDiscriminating: identical typed
// failures fingerprint identically; different kinds or positions differ.
func TestFingerprintOfDeterministicAndDiscriminating(t *testing.T) {
	ctx := Context{Benchmark: "mcf", Sched: "macro-op", Cycle: 100, Committed: 42}
	a := FingerprintOf(New(KindLivelock, ctx, "storm"))
	b := FingerprintOf(New(KindLivelock, ctx, "storm"))
	if a != b {
		t.Errorf("identical failures fingerprint differently: %s %s", a, b)
	}
	if a == FingerprintOf(New(KindDeadlock, ctx, "storm")) {
		t.Error("different kinds share a fingerprint")
	}
	ctx2 := ctx
	ctx2.Committed = 43
	if a == FingerprintOf(New(KindLivelock, ctx2, "storm")) {
		t.Error("different failure positions share a fingerprint")
	}
	if FingerprintOf(errors.New("plain")) == "" {
		t.Error("untyped error got no fingerprint")
	}
}
