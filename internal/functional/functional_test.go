package functional

import (
	"errors"
	"testing"
	"testing/quick"

	"macroop/internal/isa"
	"macroop/internal/program"
	"macroop/internal/rng"
)

func run(t *testing.T, b *program.Builder, max int64) ([]DynInst, *Executor) {
	t.Helper()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e := NewExecutor(p)
	var out []DynInst
	var d DynInst
	for int64(len(out)) < max {
		if err := e.Step(&d); err != nil {
			if errors.Is(err, ErrHalted) {
				break
			}
			t.Fatal(err)
		}
		out = append(out, d)
	}
	return out, e
}

func TestALUSemantics(t *testing.T) {
	b := program.NewBuilder("alu")
	b.MovI(1, 6)
	b.MovI(2, 3)
	b.Op3(isa.ADD, 3, 1, 2)  // 9
	b.Op3(isa.SUB, 4, 1, 2)  // 3
	b.Op3(isa.MUL, 5, 1, 2)  // 18
	b.Op3(isa.DIV, 6, 1, 2)  // 2
	b.Op3(isa.AND, 7, 1, 2)  // 2
	b.Op3(isa.OR, 8, 1, 2)   // 7
	b.Op3(isa.XOR, 9, 1, 2)  // 5
	b.Op3(isa.SLL, 10, 1, 2) // 48
	b.Op3(isa.SRL, 11, 1, 2) // 0
	b.Op3(isa.SLT, 12, 2, 1) // 1
	b.Op3(isa.SEQ, 13, 1, 1) // 1
	b.Halt()
	_, e := run(t, b, 100)
	want := map[isa.Reg]uint64{3: 9, 4: 3, 5: 18, 6: 2, 7: 2, 8: 7, 9: 5, 10: 48, 11: 0, 12: 1, 13: 1}
	for r, v := range want {
		if got := e.Reg(r); got != v {
			t.Errorf("r%d = %d, want %d", r, got, v)
		}
	}
}

func TestDivByZero(t *testing.T) {
	b := program.NewBuilder("div0")
	b.MovI(1, 5)
	b.Op3(isa.DIV, 2, 1, isa.R0)
	b.Halt()
	_, e := run(t, b, 10)
	if e.Reg(2) != ^uint64(0) {
		t.Fatalf("div by zero = %d, want all-ones", e.Reg(2))
	}
}

func TestR0AlwaysZero(t *testing.T) {
	b := program.NewBuilder("r0")
	b.MovI(isa.R0, 42)
	b.Op3(isa.ADD, 1, isa.R0, isa.R0)
	b.Halt()
	_, e := run(t, b, 10)
	if e.Reg(isa.R0) != 0 || e.Reg(1) != 0 {
		t.Fatal("R0 was written")
	}
}

func TestBranchesAndRecords(t *testing.T) {
	b := program.NewBuilder("br")
	b.MovI(1, 2)
	b.Label("loop")
	b.OpImm(isa.ADDI, 1, 1, -1)
	b.Branch(isa.BNE, 1, isa.R0, "loop")
	b.Halt()
	tr, _ := run(t, b, 100)
	// movi, addi, bne(taken), addi, bne(not-taken)
	if len(tr) != 5 {
		t.Fatalf("trace length %d, want 5", len(tr))
	}
	if !tr[2].Taken || tr[2].NextPC != 1 {
		t.Errorf("first BNE: taken=%v next=%d", tr[2].Taken, tr[2].NextPC)
	}
	if tr[4].Taken {
		t.Error("second BNE must fall through")
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	b := program.NewBuilder("mem")
	b.MovI(1, 0x1000)
	b.MovI(2, 77)
	b.Store(2, 1, 16)
	b.Load(3, 1, 16)
	b.Halt()
	tr, e := run(t, b, 10)
	if e.Reg(3) != 77 {
		t.Fatalf("loaded %d, want 77", e.Reg(3))
	}
	// STA and LD record the effective address.
	if tr[2].MemAddr != 0x1010 || tr[4].MemAddr != 0x1010 {
		t.Fatalf("addresses: sta=%x ld=%x", tr[2].MemAddr, tr[4].MemAddr)
	}
}

func TestInitialMemoryImage(t *testing.T) {
	b := program.NewBuilder("img")
	b.InitMem(0x2000, 123)
	b.MovI(1, 0x2000)
	b.Load(2, 1, 0)
	b.Halt()
	_, e := run(t, b, 10)
	if e.Reg(2) != 123 {
		t.Fatalf("initial image read %d, want 123", e.Reg(2))
	}
}

func TestCallReturn(t *testing.T) {
	b := program.NewBuilder("call")
	b.MovI(1, 0)
	b.Call("fn")
	b.OpImm(isa.ADDI, 1, 1, 100)
	b.Halt()
	b.Label("fn")
	b.OpImm(isa.ADDI, 1, 1, 10)
	b.Ret()
	tr, e := run(t, b, 20)
	if e.Reg(1) != 110 {
		t.Fatalf("r1 = %d, want 110 (call then fallthrough)", e.Reg(1))
	}
	// JAL must record taken + target; JR must return to the instruction
	// after the call.
	if !tr[1].Taken || tr[1].NextPC != 4 {
		t.Errorf("JAL: %+v", tr[1])
	}
	if !tr[3].Taken || tr[3].NextPC != 2 {
		t.Errorf("JR: %+v", tr[3])
	}
}

func TestHaltAndErrHalted(t *testing.T) {
	b := program.NewBuilder("h")
	b.Halt()
	p := b.MustBuild()
	e := NewExecutor(p)
	var d DynInst
	if err := e.Step(&d); !errors.Is(err, ErrHalted) {
		t.Fatalf("want ErrHalted, got %v", err)
	}
	if !e.Halted() {
		t.Fatal("executor not halted")
	}
	if err := e.Step(&d); !errors.Is(err, ErrHalted) {
		t.Fatal("second Step after halt must keep returning ErrHalted")
	}
}

func TestSequenceNumbers(t *testing.T) {
	b := program.NewBuilder("seq")
	b.MovI(1, 1)
	b.MovI(2, 2)
	b.Halt()
	tr, _ := run(t, b, 10)
	for i, d := range tr {
		if d.Seq != int64(i) {
			t.Fatalf("seq[%d] = %d", i, d.Seq)
		}
	}
}

func TestMemorySparsePages(t *testing.T) {
	m := NewMemory()
	// Distant addresses land on distinct pages.
	m.Write(0, 1)
	m.Write(1<<30, 2)
	m.Write(1<<40, 3)
	if m.Read(0) != 1 || m.Read(1<<30) != 2 || m.Read(1<<40) != 3 {
		t.Fatal("sparse paging broken")
	}
	if m.Read(1<<20) != 0 {
		t.Fatal("untouched memory must read zero")
	}
}

func TestMemoryQuick(t *testing.T) {
	m := NewMemory()
	shadow := map[uint64]uint64{}
	if err := quick.Check(func(addr, val uint64) bool {
		a := addr &^ 7
		m.Write(a, val)
		shadow[a] = val
		return m.Read(a) == shadow[a]
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestRandomProgramsNeverFault generates random straight-line ALU/memory
// programs and checks the executor never faults and the trace matches the
// instruction count.
func TestRandomProgramsNeverFault(t *testing.T) {
	r := rng.New(2024)
	for trial := 0; trial < 50; trial++ {
		b := program.NewBuilder("rand")
		b.MovI(1, int64(r.Uint64()%1000))
		b.MovI(2, 0x4000)
		n := 20 + r.Intn(80)
		for i := 0; i < n; i++ {
			dst := isa.Reg(3 + r.Intn(20))
			s1 := isa.Reg(1 + r.Intn(22))
			s2 := isa.Reg(1 + r.Intn(22))
			switch r.Intn(5) {
			case 0:
				b.Op3(isa.ADD, dst, s1, s2)
			case 1:
				b.Op3(isa.XOR, dst, s1, s2)
			case 2:
				b.OpImm(isa.ADDI, dst, s1, int64(r.Intn(100)))
			case 3:
				b.Load(dst, 2, int64(r.Intn(64))*8)
			case 4:
				b.Store(s1, 2, int64(r.Intn(64))*8)
			}
		}
		b.Halt()
		tr, _ := run(t, b, 10000)
		// n ALU/mem items, stores emit 2 records, plus 2 movi.
		if len(tr) < n+2 {
			t.Fatalf("trial %d: trace too short: %d < %d", trial, len(tr), n+2)
		}
	}
}

func TestRunHelper(t *testing.T) {
	b := program.NewBuilder("run")
	b.MovI(1, 3)
	b.Label("l")
	b.OpImm(isa.ADDI, 1, 1, -1)
	b.Branch(isa.BNE, 1, isa.R0, "l")
	b.Halt()
	p := b.MustBuild()
	tr, err := Run(p, 4)
	if err != nil || len(tr) != 4 {
		t.Fatalf("bounded Run: %d insts, err %v", len(tr), err)
	}
	tr, err = Run(p, 0)
	if err != nil || len(tr) != 7 {
		t.Fatalf("unbounded Run: %d insts, err %v", len(tr), err)
	}
}

func TestPCOutOfRangeFault(t *testing.T) {
	b := program.NewBuilder("jrfault")
	b.MovI(1, 999)
	b.Emit(isa.Instruction{Op: isa.JR, Src1: 1})
	b.Halt()
	p := b.MustBuild()
	e := NewExecutor(p)
	var d DynInst
	var err error
	for i := 0; i < 5 && err == nil; i++ {
		err = e.Step(&d)
	}
	if err == nil || errors.Is(err, ErrHalted) {
		t.Fatalf("expected PC fault, got %v", err)
	}
}

func TestFPAndShiftSurrogates(t *testing.T) {
	b := program.NewBuilder("fp")
	b.MovI(1, 12)
	b.MovI(2, 3)
	b.Op3(isa.FADD, 3, 1, 2) // 15 (integer surrogate)
	b.Op3(isa.FMUL, 4, 1, 2) // 36
	b.Op3(isa.FDIV, 5, 1, 2) // 4
	b.Op3(isa.FDIV, 6, 1, isa.R0)
	b.Emit(isa.Instruction{Op: isa.LUI, Dest: 7, Src1: isa.NoReg, Src2: isa.NoReg, Imm: 2})
	b.Halt()
	_, e := run(t, b, 20)
	if e.Reg(3) != 15 || e.Reg(4) != 36 || e.Reg(5) != 4 {
		t.Fatalf("fp surrogates: %d %d %d", e.Reg(3), e.Reg(4), e.Reg(5))
	}
	if e.Reg(6) != ^uint64(0) {
		t.Fatal("fdiv by zero not all-ones")
	}
	if e.Reg(7) != 2<<16 {
		t.Fatalf("lui = %d", e.Reg(7))
	}
}
