package functional

// Source supplies the dynamic instruction stream consumed by the timing
// core: the functional Executor is the usual implementation; a trace
// reader (internal/tracefile) replays recorded streams.
type Source interface {
	// Step fills d with the next dynamic instruction, returning ErrHalted
	// at end of stream.
	Step(d *DynInst) error
}

var _ Source = (*Executor)(nil)
