// Package functional implements the architectural (functional) execution
// model: it runs a program to completion and produces the dynamic
// instruction stream — including branch outcomes, computed targets, and
// data memory addresses — that drives the timing simulator.
//
// This mirrors the structure of execution-driven simulators such as the
// SimpleScalar derivative used in the paper: a functional front provides
// architecturally-correct results; the timing model decides *when* things
// happen but never *what* the values are.
package functional

import (
	"errors"
	"fmt"

	"macroop/internal/isa"
	"macroop/internal/program"
)

// DynInst is one dynamically executed instruction on the committed
// (correct) path.
type DynInst struct {
	Seq     int64 // dynamic sequence number, starting at 0
	PC      int   // static instruction index
	Inst    isa.Instruction
	MemAddr uint64 // effective address for LD / STA (byte address)
	Taken   bool   // control: was the branch/jump taken
	NextPC  int    // index of the next dynamic instruction's PC
}

// IsControl reports whether this dynamic instruction may redirect fetch.
func (d *DynInst) IsControl() bool { return d.Inst.Op.IsControl() && d.Inst.Op != isa.HALT }

// Memory is a sparse 64-bit word-addressable memory backed by fixed-size
// pages, avoiding per-word map overhead on large footprints.
type Memory struct {
	pages map[uint64]*[pageWords]uint64
}

const (
	pageShift = 12 // 4096 words = 32KB pages
	pageWords = 1 << pageShift
	pageMask  = pageWords - 1
)

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageWords]uint64)}
}

// Read returns the 64-bit word at the (8-byte-aligned) byte address.
func (m *Memory) Read(addr uint64) uint64 {
	w := addr >> 3
	page := m.pages[w>>pageShift]
	if page == nil {
		return 0
	}
	return page[w&pageMask]
}

// Write stores a 64-bit word at the (8-byte-aligned) byte address.
func (m *Memory) Write(addr, value uint64) {
	w := addr >> 3
	idx := w >> pageShift
	page := m.pages[idx]
	if page == nil {
		page = new([pageWords]uint64)
		m.pages[idx] = page
	}
	page[w&pageMask] = value
}

// Executor runs a program functionally, one instruction per Step call.
type Executor struct {
	prog *program.Program
	regs [isa.NumRegs]uint64
	mem  *Memory
	pc   int
	seq  int64
	done bool

	// pendingStoreAddr carries the STA effective address to the paired STD.
	pendingStoreAddr uint64
	pendingStore     bool
}

// ErrHalted is returned by Step after the program has executed HALT.
var ErrHalted = errors.New("functional: program halted")

// NewExecutor creates an executor with registers zeroed and memory seeded
// from the program's initial image.
func NewExecutor(p *program.Program) *Executor {
	e := &Executor{prog: p, mem: NewMemory()}
	for addr, v := range p.Mem {
		e.mem.Write(addr, v)
	}
	return e
}

// Reg returns the current architectural value of r.
func (e *Executor) Reg(r isa.Reg) uint64 {
	if !r.Valid() {
		return 0
	}
	return e.regs[r]
}

// Mem returns the memory model (useful for post-mortem assertions).
func (e *Executor) Mem() *Memory { return e.mem }

// PC returns the next program counter.
func (e *Executor) PC() int { return e.pc }

// Halted reports whether the program has executed HALT.
func (e *Executor) Halted() bool { return e.done }

func (e *Executor) setReg(r isa.Reg, v uint64) {
	if r.Valid() && r != isa.R0 {
		e.regs[r] = v
	}
}

// Step executes the next instruction and fills d with its dynamic record.
// It returns ErrHalted once the program has finished, and a descriptive
// error on architectural faults (PC out of range).
func (e *Executor) Step(d *DynInst) error {
	if e.done {
		return ErrHalted
	}
	if e.pc < 0 || e.pc >= len(e.prog.Insts) {
		return fmt.Errorf("functional: PC %d out of range (program %q, %d insts)", e.pc, e.prog.Name, len(e.prog.Insts))
	}
	in := e.prog.Insts[e.pc]
	*d = DynInst{Seq: e.seq, PC: e.pc, Inst: in, NextPC: e.pc + 1}
	e.seq++

	s1, s2 := e.Reg(in.Src1), e.Reg(in.Src2)
	switch in.Op {
	case isa.ADD:
		e.setReg(in.Dest, s1+s2)
	case isa.ADDI:
		e.setReg(in.Dest, s1+uint64(in.Imm))
	case isa.SUB:
		e.setReg(in.Dest, s1-s2)
	case isa.AND:
		e.setReg(in.Dest, s1&s2)
	case isa.OR:
		e.setReg(in.Dest, s1|s2)
	case isa.XOR:
		e.setReg(in.Dest, s1^s2)
	case isa.SLL:
		e.setReg(in.Dest, s1<<(s2&63))
	case isa.SRL:
		e.setReg(in.Dest, s1>>(s2&63))
	case isa.SLT:
		if int64(s1) < int64(s2) {
			e.setReg(in.Dest, 1)
		} else {
			e.setReg(in.Dest, 0)
		}
	case isa.SEQ:
		if s1 == s2 {
			e.setReg(in.Dest, 1)
		} else {
			e.setReg(in.Dest, 0)
		}
	case isa.LUI:
		e.setReg(in.Dest, uint64(in.Imm)<<16)
	case isa.MOVI:
		e.setReg(in.Dest, uint64(in.Imm))
	case isa.MUL:
		e.setReg(in.Dest, s1*s2)
	case isa.DIV:
		if s2 == 0 {
			e.setReg(in.Dest, ^uint64(0)) // architecturally defined: all ones
		} else {
			e.setReg(in.Dest, s1/s2)
		}
	case isa.FADD:
		e.setReg(in.Dest, s1+s2) // integer surrogate; CINT workloads don't depend on FP semantics
	case isa.FMUL:
		e.setReg(in.Dest, s1*s2)
	case isa.FDIV:
		if s2 == 0 {
			e.setReg(in.Dest, ^uint64(0))
		} else {
			e.setReg(in.Dest, s1/s2)
		}
	case isa.LD:
		addr := (s1 + uint64(in.Imm)) &^ uint64(7)
		d.MemAddr = addr
		e.setReg(in.Dest, e.mem.Read(addr))
	case isa.STA:
		addr := (s1 + uint64(in.Imm)) &^ uint64(7)
		d.MemAddr = addr
		e.pendingStoreAddr = addr
		e.pendingStore = true
	case isa.STD:
		if !e.pendingStore {
			return fmt.Errorf("functional: STD at PC %d without preceding STA", e.pc)
		}
		d.MemAddr = e.pendingStoreAddr
		e.mem.Write(e.pendingStoreAddr, s1)
		e.pendingStore = false
	case isa.BEQ:
		d.Taken = s1 == s2
	case isa.BNE:
		d.Taken = s1 != s2
	case isa.BLT:
		d.Taken = int64(s1) < int64(s2)
	case isa.BGE:
		d.Taken = int64(s1) >= int64(s2)
	case isa.JMP:
		d.Taken = true
	case isa.JAL:
		e.setReg(in.Dest, uint64(e.pc+1))
		d.Taken = true
	case isa.JR:
		d.Taken = true
		d.NextPC = int(s1)
	case isa.HALT:
		e.done = true
		return ErrHalted
	default:
		return fmt.Errorf("functional: unimplemented opcode %s at PC %d", in.Op, e.pc)
	}

	if d.Taken && in.Op != isa.JR {
		d.NextPC = int(in.Imm)
	}
	e.pc = d.NextPC
	return nil
}

// Run executes up to maxInsts instructions (or to HALT if maxInsts <= 0)
// and returns the dynamic stream. Most callers should prefer the streaming
// Step interface; Run is convenient in tests and characterization tools.
func Run(p *program.Program, maxInsts int64) ([]DynInst, error) {
	e := NewExecutor(p)
	var out []DynInst
	var d DynInst
	for maxInsts <= 0 || int64(len(out)) < maxInsts {
		if err := e.Step(&d); err != nil {
			if errors.Is(err, ErrHalted) {
				break
			}
			return out, err
		}
		out = append(out, d)
	}
	return out, nil
}
