package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(99)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestBoolBias(t *testing.T) {
	r := New(3)
	const n = 100000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bool(p) {
				hits++
			}
		}
		if got := float64(hits) / n; math.Abs(got-p) > 0.02 {
			t.Fatalf("Bool(%v) rate %v", p, got)
		}
	}
}

func TestGeometricMeanAndBounds(t *testing.T) {
	r := New(5)
	const n = 100000
	sum, maxSeen := 0, 0
	for i := 0; i < n; i++ {
		d := r.Geometric(3.0, 32)
		if d < 1 || d > 32 {
			t.Fatalf("Geometric out of bounds: %d", d)
		}
		sum += d
		if d > maxSeen {
			maxSeen = d
		}
	}
	mean := float64(sum) / n
	if mean < 2.4 || mean > 3.3 {
		t.Fatalf("Geometric mean %v, want ~3 (capped)", mean)
	}
	if maxSeen < 10 {
		t.Fatalf("Geometric tail too thin: max %d", maxSeen)
	}
}

func TestGeometricDegenerateMean(t *testing.T) {
	r := New(8)
	for i := 0; i < 100; i++ {
		if d := r.Geometric(0.1, 8); d != 1 {
			// mean < 1 clamps to 1, which makes p = 1: always 1.
			t.Fatalf("Geometric(0.1) = %d, want 1", d)
		}
	}
}

func TestPickProportions(t *testing.T) {
	r := New(11)
	weights := []float64{1, 3, 6}
	counts := make([]int, 3)
	const n = 300000
	for i := 0; i < n; i++ {
		counts[r.Pick(weights)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("Pick bucket %d rate %v, want %v", i, got, want)
		}
	}
}

func TestPickZeroWeightNeverChosen(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		if r.Pick([]float64{0, 1, 0}) != 1 {
			t.Fatal("Pick chose a zero-weight bucket")
		}
	}
}

func TestPickPanicsOnZeroSum(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick with zero-sum weights did not panic")
		}
	}()
	New(1).Pick([]float64{0, 0})
}

func TestForkIndependence(t *testing.T) {
	a := New(21)
	f := a.Fork()
	// The fork must be deterministic given the parent state...
	b := New(21)
	g := b.Fork()
	for i := 0; i < 100; i++ {
		if f.Uint64() != g.Uint64() {
			t.Fatal("forks of identical parents diverged")
		}
	}
}
