// Package rng provides a small, deterministic pseudo-random number
// generator used throughout the simulator. Determinism matters: every
// experiment in the paper-reproduction harness must be exactly
// reproducible from a seed, independent of Go runtime or map iteration
// order, so we do not use math/rand's global state.
//
// The generator is xoshiro256** seeded via splitmix64, a combination with
// good statistical quality and a tiny, allocation-free implementation.
package rng

import "macroop/internal/simerr"

// RNG is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from the given seed using splitmix64,
// which guarantees a well-mixed non-zero internal state for any seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic(simerr.Internalf(simerr.Context{}, "rng: Intn with non-positive n %d", n))
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Geometric samples from a geometric-like distribution with the given mean
// (>= 1), returning a value in [1, max]. It is used for dependence-distance
// sampling in workload generation.
func (r *RNG) Geometric(mean float64, max int) int {
	if mean < 1 {
		mean = 1
	}
	p := 1 / mean
	d := 1
	for d < max && !r.Bool(p) {
		d++
	}
	return d
}

// Pick returns an index in [0, len(weights)) with probability proportional
// to weights[i]. Weights must be non-negative with a positive sum.
func (r *RNG) Pick(weights []float64) int {
	var sum float64
	for _, w := range weights {
		sum += w
	}
	if sum <= 0 {
		panic(simerr.Internalf(simerr.Context{}, "rng: Pick with non-positive weight sum %v", sum))
	}
	x := r.Float64() * sum
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Fork returns a new generator deterministically derived from this one,
// so independent subsystems can draw without perturbing each other.
func (r *RNG) Fork() *RNG {
	return New(r.Uint64())
}
