package mop

import (
	"testing"

	"macroop/internal/isa"
)

func TestEdgeDistanceBuckets(t *testing.T) {
	var s streamBuilder
	// head at 0, candidate consumer at distance 2 -> bucket 1~3.
	s.alu(1)    // 0
	s.alu(20)   // 1
	s.alu(2, 1) // 2
	// head at 3, candidate consumer at distance 5 -> bucket 4~7.
	s.alu(3) // 3
	for i := 0; i < 4; i++ {
		s.alu(isa.Reg(21 + i))
	}
	s.alu(4, 3) // 8
	// head at 9, candidate consumer at distance 9 -> bucket 8+.
	s.alu(5) // 9
	for i := 0; i < 8; i++ {
		s.alu(isa.Reg(25)) // keep rewriting an unrelated register
	}
	s.alu(6, 5) // 18
	acc := NewEdgeDistance()
	for _, d := range s.insts {
		acc.Push(d)
	}
	acc.Flush()
	if acc.Dist1to3 != 1 || acc.Dist4to7 != 1 || acc.Dist8plus != 1 {
		t.Fatalf("buckets: %d/%d/%d", acc.Dist1to3, acc.Dist4to7, acc.Dist8plus)
	}
}

func TestEdgeDistanceDead(t *testing.T) {
	var s streamBuilder
	s.alu(1)    // 0: no reader before overwrite -> dead
	s.alu(1)    // 1: overwrites r1; also itself a head
	s.alu(2, 1) // 2: consumer of 1
	acc := NewEdgeDistance()
	for _, d := range s.insts {
		acc.Push(d)
	}
	acc.Flush()
	// Inst 0 (overwritten unread) and inst 2 (never read) are both dead.
	if acc.Dead != 2 {
		t.Fatalf("dead = %d, want 2", acc.Dead)
	}
	if acc.Dist1to3 != 1 {
		t.Fatalf("inst 1 should have a 1~3 consumer")
	}
}

func TestEdgeDistanceNotCandidateConsumer(t *testing.T) {
	var s streamBuilder
	s.alu(1)                              // 0: only reader is a load
	s.add(isa.LD, 9, 1, isa.NoReg, false) // 1: non-candidate reader
	s.alu(1)                              // 2: overwrite r1 (and dead itself)
	acc := NewEdgeDistance()
	for _, d := range s.insts {
		acc.Push(d)
	}
	acc.Flush()
	if acc.NotCandidate != 1 {
		t.Fatalf("not-candidate = %d, want 1", acc.NotCandidate)
	}
}

func TestEdgeDistanceStoreFusion(t *testing.T) {
	// A value consumed only by store DATA is a reader but not a groupable
	// tail; the STD itself must not count as an instruction.
	var s streamBuilder
	s.alu(1)                                       // 0: head
	s.add(isa.STA, isa.NoReg, 2, isa.NoReg, false) // 1: agen reads r2
	s.add(isa.STD, isa.NoReg, 1, isa.NoReg, false) // (fused; reads r1 as data)
	s.alu(1)                                       // 2: overwrite
	acc := NewEdgeDistance()
	for _, d := range s.insts {
		acc.Push(d)
	}
	acc.Flush()
	if acc.TotalInsts != 3 {
		t.Fatalf("total %d, want 3 (STD fused away)", acc.TotalInsts)
	}
	if acc.NotCandidate != 1 {
		t.Fatalf("store-data-only consumer should classify head as not-candidate: %+v", *acc)
	}
}

func TestEdgeDistanceStoreAsTail(t *testing.T) {
	// A store AGEN reading the head's value IS a potential tail.
	var s streamBuilder
	s.alu(1)                                       // 0: head
	s.add(isa.STA, isa.NoReg, 1, isa.NoReg, false) // 1: agen reads r1
	s.add(isa.STD, isa.NoReg, 2, isa.NoReg, false)
	acc := NewEdgeDistance()
	for _, d := range s.insts {
		acc.Push(d)
	}
	acc.Flush()
	if acc.Dist1to3 != 1 {
		t.Fatalf("store agen not counted as tail: %+v", *acc)
	}
}

func TestGrouping2x(t *testing.T) {
	var s streamBuilder
	s.alu(1)    // 0: head
	s.alu(2, 1) // 1: tail
	s.alu(3, 2) // 2: would chain, but 2x forbids
	s.alu(9)    // 3: dead candidate
	g := NewGrouping(2)
	for _, d := range s.insts {
		g.Push(d)
	}
	g.Flush()
	if g.Groups != 1 || g.GroupedInsts != 2 {
		t.Fatalf("groups=%d insts=%d", g.Groups, g.GroupedInsts)
	}
	if g.MOPValueGen != 2 {
		t.Fatalf("both grouped insts are value-generating: %d", g.MOPValueGen)
	}
	if g.CandNotGrouped != 2 {
		t.Fatalf("cand-not-grouped = %d", g.CandNotGrouped)
	}
}

func TestGrouping8xChains(t *testing.T) {
	var s streamBuilder
	s.alu(1) // 0
	for i := 1; i <= 5; i++ {
		s.alu(isa.Reg(i+1), isa.Reg(i)) // chain of 6 within scope 8
	}
	s.alu(20) // filler
	s.alu(21)
	g := NewGrouping(8)
	for _, d := range s.insts {
		g.Push(d)
	}
	g.Flush()
	if g.Groups != 1 || g.GroupedInsts != 6 {
		t.Fatalf("8x chain: groups=%d insts=%d", g.Groups, g.GroupedInsts)
	}
	if g.AvgGroupSize() != 6 {
		t.Fatalf("avg size %v", g.AvgGroupSize())
	}
}

func TestGroupingRespectsScope(t *testing.T) {
	var s streamBuilder
	s.alu(1) // 0
	for i := 0; i < 8; i++ {
		s.alu(isa.Reg(20 + i))
	}
	s.alu(2, 1) // 9: beyond the 8-instruction scope of head 0
	g := NewGrouping(2)
	for _, d := range s.insts {
		g.Push(d)
	}
	g.Flush()
	// head 0 finds nothing; but 9 reads r1 which head 0 produced — the
	// pair (0,9) must NOT form. Other pairs may exist among fillers (none
	// share registers), so exactly zero groups.
	if g.Groups != 0 {
		t.Fatalf("group formed beyond scope: %d", g.Groups)
	}
}

func TestGroupingStoreTail(t *testing.T) {
	var s streamBuilder
	s.alu(1)                                       // 0
	s.add(isa.STA, isa.NoReg, 1, isa.NoReg, false) // 1: agen tail
	s.add(isa.STD, isa.NoReg, 9, isa.NoReg, false)
	g := NewGrouping(2)
	for _, d := range s.insts {
		g.Push(d)
	}
	g.Flush()
	if g.Groups != 1 || g.MOPNonValueGen != 1 || g.MOPValueGen != 1 {
		t.Fatalf("store-agen tail grouping: %+v", *g)
	}
	if g.TotalInsts != 2 {
		t.Fatalf("total %d, want 2", g.TotalInsts)
	}
}

func TestGroupingValueGenCandLine(t *testing.T) {
	var s streamBuilder
	s.alu(1)
	s.add(isa.LD, 2, 1, isa.NoReg, false)
	s.add(isa.BEQ, isa.NoReg, 1, 2, false)
	g := NewGrouping(2)
	for _, d := range s.insts {
		g.Push(d)
	}
	g.Flush()
	if g.ValueGenCands != 1 {
		t.Fatalf("value-gen candidates = %d, want 1 (only the ALU)", g.ValueGenCands)
	}
	if g.NotCandidate != 1 {
		t.Fatalf("load must be not-candidate: %d", g.NotCandidate)
	}
}
