package mop

import (
	"testing"

	"macroop/internal/config"
	"macroop/internal/functional"
	"macroop/internal/isa"
)

// fuzzOps is the opcode palette the fuzzer draws from: ALU candidates,
// non-candidates, loads/stores, and every control-flow shape the window
// rules care about (direct taken/not-taken, indirect).
var fuzzOps = []isa.Op{
	isa.ADD, isa.ADDI, isa.SUB, isa.MUL, isa.LUI, isa.MOVI,
	isa.LD, isa.STA, isa.STD,
	isa.BEQ, isa.JMP, isa.JAL, isa.JR,
	isa.FADD, isa.DIV, isa.HALT,
}

// fuzzStream decodes the fuzz payload into a dynamic instruction stream:
// each instruction consumes 4 bytes (op, dest, src1|taken bit, src2).
// Registers are folded into a small set so dependences are dense.
func fuzzStream(data []byte) []*functional.DynInst {
	var insts []*functional.DynInst
	for i := 0; i+4 <= len(data) && len(insts) < 96; i += 4 {
		op := fuzzOps[int(data[i])%len(fuzzOps)]
		reg := func(b byte) isa.Reg {
			if b%8 == 7 {
				return isa.NoReg
			}
			return isa.Reg(b % 8) // R0..R6: includes the zero register
		}
		d := &functional.DynInst{
			Seq: int64(len(insts)),
			PC:  int(data[i+1]%32) + 64*(len(insts)/32),
			Inst: isa.Instruction{
				Op:   op,
				Dest: reg(data[i+1]),
				Src1: reg(data[i+2] >> 1),
				Src2: reg(data[i+3]),
			},
			Taken: op.IsControl() && data[i+2]&1 == 1,
		}
		if !d.Inst.WritesReg() {
			d.Inst.Dest = isa.NoReg
		}
		insts = append(insts, d)
	}
	return insts
}

// FuzzBitMatrix drives the detector over random dependence graphs and
// checks the bitset dependence matrix against the retained triangle
// [][2]int reference on every window the sliding scope produces: exact
// agreement on the direct-dependence relation and on the precise cycle
// check, and no panics anywhere in detection (both heuristic and precise
// cycle modes, both wakeup limits, with and without independent
// grouping).
func FuzzBitMatrix(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0, 2, 4, 6, 1, 3, 2, 1, 9, 0, 1, 1})
	f.Add([]byte{6, 1, 0, 0, 6, 2, 2, 0, 0, 3, 2, 4, 0, 4, 6, 6, 2, 5, 8, 10})
	f.Add([]byte{12, 7, 7, 7, 12, 7, 7, 7, 0, 1, 1, 1})

	cfgs := make([]config.MOPConfig, 0, 4)
	for _, precise := range []bool{false, true} {
		for _, wk := range []config.WakeupStyle{config.WakeupWiredOR, config.WakeupCAM2Src} {
			c := config.DefaultMOP()
			c.DetectionDelay = 0
			c.PreciseCycleDetection = precise
			c.Wakeup = wk
			c.GroupIndependent = true
			cfgs = append(cfgs, c)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		insts := fuzzStream(data)
		if len(insts) == 0 {
			return
		}
		for _, cfg := range cfgs {
			det := NewDetector(cfg, NewPointerTable())
			cycle := int64(0)
			for i := 0; i < len(insts); i += 4 {
				end := i + 4
				if end > len(insts) {
					end = len(insts)
				}
				// Observe runs a full detection step (the production
				// bitset path) on the grown window; never-panic is
				// asserted implicitly.
				det.Observe(cycle, insts[i:end])
				cycle++

				// Differential check on this window: triangle reference
				// vs the bitset matrix the step just built.
				w := det.window()
				dep := det.depMatrixRef(w)
				det.buildColBits(w)
				for j := 0; j < len(w); j++ {
					for c := 0; c < len(w); c++ {
						ref := dependsOn(dep, j, c)
						got := det.depBit(j, c)
						if ref != got {
							t.Fatalf("cfg %+v window %d: dep(%d,%d) ref=%v bit=%v", cfg, i, j, c, ref, got)
						}
					}
				}
				for hi := 0; hi < len(w); hi++ {
					for tj := hi + 1; tj < len(w); tj++ {
						ref := det.inducesCycleRef(w, dep, hi, tj)
						got := det.inducesCycle(hi, tj)
						if ref != got {
							t.Fatalf("cfg %+v window %d: inducesCycle(%d,%d) ref=%v bit=%v", cfg, i, hi, tj, ref, got)
						}
					}
				}
			}
		}
	})
}
