package mop

import "testing"

func TestPointerInstallLookup(t *testing.T) {
	tbl := NewPointerTable()
	tbl.Install(10, 13, Pointer{Offset: 3}, 100)
	if _, _, ok := tbl.Lookup(10, 99); ok {
		t.Fatal("visible before install cycle")
	}
	ptr, tail, ok := tbl.Lookup(10, 100)
	if !ok || tail != 13 || ptr.Offset != 3 {
		t.Fatalf("lookup: %+v %d %v", ptr, tail, ok)
	}
	if tbl.Len() != 1 || tbl.Installs() != 1 {
		t.Fatal("accounting wrong")
	}
}

func TestPointerRejectsBadOffset(t *testing.T) {
	tbl := NewPointerTable()
	tbl.Install(1, 2, Pointer{Offset: 0}, 0)
	tbl.Install(1, 9, Pointer{Offset: 8}, 0) // > MaxOffset (3-bit field)
	if tbl.Len() != 0 {
		t.Fatal("invalid offsets accepted")
	}
}

func TestPointerSinglePointerPerHead(t *testing.T) {
	tbl := NewPointerTable()
	tbl.Install(10, 11, Pointer{Offset: 1}, 0)
	tbl.Install(10, 14, Pointer{Offset: 4}, 0) // overwrites: one pointer per instruction
	_, tail, _ := tbl.Lookup(10, 10)
	if tail != 14 {
		t.Fatalf("pointer not overwritten: tail %d", tail)
	}
	if tbl.Len() != 1 {
		t.Fatal("duplicate entries")
	}
}

func TestPointerReinstallSamePairKeepsEarlierVisibility(t *testing.T) {
	tbl := NewPointerTable()
	tbl.Install(10, 11, Pointer{Offset: 1}, 5)
	tbl.Install(10, 11, Pointer{Offset: 1}, 500) // re-detected later
	if _, _, ok := tbl.Lookup(10, 6); !ok {
		t.Fatal("re-install pushed visibility back")
	}
}

func TestDeleteAndBlacklist(t *testing.T) {
	tbl := NewPointerTable()
	tbl.Install(10, 11, Pointer{Offset: 1}, 0)
	tbl.Delete(10, 11)
	if _, _, ok := tbl.Lookup(10, 100); ok {
		t.Fatal("deleted pointer still visible")
	}
	if !tbl.Blacklisted(10, 11) {
		t.Fatal("pair not blacklisted")
	}
	// Re-detection of the banned pair is ignored; an alternative is fine.
	tbl.Install(10, 11, Pointer{Offset: 1}, 0)
	if tbl.Len() != 0 {
		t.Fatal("blacklisted pair reinstalled")
	}
	tbl.Install(10, 12, Pointer{Offset: 2}, 0)
	if _, tail, ok := tbl.Lookup(10, 10); !ok || tail != 12 {
		t.Fatal("alternative pair rejected")
	}
	if tbl.Deletes() != 1 {
		t.Fatal("delete count wrong")
	}
}

func TestDeleteOnlyMatchingTail(t *testing.T) {
	tbl := NewPointerTable()
	tbl.Install(10, 12, Pointer{Offset: 2}, 0)
	tbl.Delete(10, 11) // different tail: blacklist 11, keep the 12 pointer
	if _, tail, ok := tbl.Lookup(10, 10); !ok || tail != 12 {
		t.Fatal("unrelated delete removed the live pointer")
	}
}
