package mop

import (
	"macroop/internal/functional"
	"macroop/internal/isa"
	"macroop/internal/stats"
)

// GraphStats characterizes the dataflow shape of a committed instruction
// stream: value fan-out, window-local ILP (how deep the dependence graph
// of each fixed-size window is), and the single-cycle chain-run length.
// These are the properties that determine how much a pipelined (2-cycle)
// scheduler loses and macro-op scheduling recovers, and they back the
// workload-calibration claims in DESIGN.md.
type GraphStats struct {
	// FanOut histograms the number of consumers per produced value
	// (buckets 0, 1, 2, 3+; 0 = dynamically dead).
	FanOut *stats.Histogram
	// WindowDepth histograms the dependence-graph depth of consecutive
	// WindowSize-instruction windows; depth/size ~ 1 means serial code.
	WindowDepth *stats.Histogram
	// ChainRun histograms maximal runs of single-cycle ops each depending
	// on the previous run member (the paper's fusable chains).
	ChainRun *stats.Histogram

	WindowSize int

	ring    []gsInst
	pos     int64
	curRun  int
	runDest isa.Reg
}

type gsInst struct {
	dest      isa.Reg
	src1      isa.Reg
	src2      isa.Reg
	consumers int
	oneCycle  bool
}

// NewGraphStats returns an accumulator using the given window size.
func NewGraphStats(windowSize int) *GraphStats {
	if windowSize < 4 {
		windowSize = 4
	}
	return &GraphStats{
		FanOut:      stats.NewHistogram(0, 1, 2),
		WindowDepth: stats.NewHistogram(2, 4, 8, 16, 32),
		ChainRun:    stats.NewHistogram(1, 2, 4, 8),
		WindowSize:  windowSize,
	}
}

// Push feeds one committed instruction (STDs fold into their STA as
// elsewhere: the data register read counts toward fan-out).
func (g *GraphStats) Push(d *functional.DynInst) {
	if d.Inst.Op == isa.STD {
		g.creditConsumer(d.Inst.Src1)
		return
	}
	in := gsInst{dest: isa.NoReg, src1: d.Inst.Src1, src2: d.Inst.Src2,
		oneCycle: d.Inst.Op.IsMOPCandidate()}
	if d.Inst.WritesReg() {
		in.dest = d.Inst.Dest
	}
	g.creditConsumer(in.src1)
	g.creditConsumer(in.src2)
	g.trackChain(&in)
	g.ring = append(g.ring, in)
	g.pos++
	if len(g.ring) == g.WindowSize {
		g.flushWindow()
	}
}

// creditConsumer increments the fan-out of the most recent producer of r
// still in the ring.
func (g *GraphStats) creditConsumer(r isa.Reg) {
	if r == isa.NoReg || r == isa.R0 {
		return
	}
	for i := len(g.ring) - 1; i >= 0; i-- {
		if g.ring[i].dest == r {
			g.ring[i].consumers++
			return
		}
	}
}

// trackChain extends or ends the current single-cycle dependent run.
func (g *GraphStats) trackChain(in *gsInst) {
	extends := in.oneCycle && g.curRun > 0 && g.runDest != isa.NoReg &&
		(in.src1 == g.runDest || in.src2 == g.runDest)
	switch {
	case extends:
		g.curRun++
	case in.oneCycle && in.dest != isa.NoReg:
		if g.curRun > 0 {
			g.ChainRun.Observe(int64(g.curRun))
		}
		g.curRun = 1
	default:
		if g.curRun > 0 {
			g.ChainRun.Observe(int64(g.curRun))
		}
		g.curRun = 0
	}
	if in.dest != isa.NoReg {
		g.runDest = in.dest
	}
}

// flushWindow computes the dependence depth of the buffered window and
// accounts fan-outs of its producers.
func (g *GraphStats) flushWindow() {
	depth := make([]int, len(g.ring))
	lastWriter := map[isa.Reg]int{}
	maxDepth := 0
	for i, in := range g.ring {
		d := 1
		for _, r := range []isa.Reg{in.src1, in.src2} {
			if r == isa.NoReg || r == isa.R0 {
				continue
			}
			if p, ok := lastWriter[r]; ok && depth[p]+1 > d {
				d = depth[p] + 1
			}
		}
		depth[i] = d
		if d > maxDepth {
			maxDepth = d
		}
		if in.dest != isa.NoReg {
			lastWriter[in.dest] = i
		}
	}
	g.WindowDepth.Observe(int64(maxDepth))
	for _, in := range g.ring {
		if in.dest != isa.NoReg {
			g.FanOut.Observe(int64(in.consumers))
		}
	}
	g.ring = g.ring[:0]
}

// Flush drains the remaining partial window; call at end of stream.
func (g *GraphStats) Flush() {
	if len(g.ring) > 0 {
		g.flushWindow()
	}
	if g.curRun > 0 {
		g.ChainRun.Observe(int64(g.curRun))
		g.curRun = 0
	}
}

// SerialFraction estimates how serial the code is: mean window depth
// divided by window size (1.0 = fully serial, ~0 = fully parallel).
func (g *GraphStats) SerialFraction() float64 {
	if g.WindowDepth.Total() == 0 {
		return 0
	}
	return g.WindowDepth.Mean() / float64(g.WindowSize)
}
