package mop

import (
	"testing"

	"macroop/internal/config"
	"macroop/internal/functional"
	"macroop/internal/isa"
)

// streamBuilder constructs dynamic instruction streams for detector tests.
type streamBuilder struct {
	insts []*functional.DynInst
}

func (s *streamBuilder) add(op isa.Op, dest, src1, src2 isa.Reg, taken bool) *functional.DynInst {
	pc := len(s.insts)
	d := &functional.DynInst{
		Seq: int64(pc),
		PC:  pc,
		Inst: isa.Instruction{
			Op: op, Dest: dest, Src1: src1, Src2: src2,
		},
		Taken: taken,
	}
	s.insts = append(s.insts, d)
	return d
}

func (s *streamBuilder) alu(dest isa.Reg, srcs ...isa.Reg) *functional.DynInst {
	s1, s2 := isa.NoReg, isa.NoReg
	if len(srcs) > 0 {
		s1 = srcs[0]
	}
	if len(srcs) > 1 {
		s2 = srcs[1]
	}
	return s.add(isa.ADD, dest, s1, s2, false)
}

// detectAll feeds the stream to a detector in groups of 4 and returns the
// pointer table.
func detectAll(cfg config.MOPConfig, insts []*functional.DynInst) (*PointerTable, *Detector) {
	tbl := NewPointerTable()
	det := NewDetector(cfg, tbl)
	cycle := int64(0)
	for i := 0; i < len(insts); i += 4 {
		end := i + 4
		if end > len(insts) {
			end = len(insts)
		}
		det.Observe(cycle, insts[i:end])
		cycle++
	}
	return tbl, det
}

func wiredOR() config.MOPConfig {
	c := config.DefaultMOP()
	c.DetectionDelay = 0
	return c
}

func wiredORDepOnly() config.MOPConfig {
	c := wiredOR()
	c.GroupIndependent = false
	return c
}

func cam2() config.MOPConfig {
	c := wiredOR()
	c.Wakeup = config.WakeupCAM2Src
	return c
}

func lookup(t *testing.T, tbl *PointerTable, headPC int) (Pointer, int) {
	t.Helper()
	ptr, tailPC, ok := tbl.Lookup(headPC, 1<<40)
	if !ok {
		t.Fatalf("no pointer for head PC %d", headPC)
	}
	return ptr, tailPC
}

func TestDetectSimplePair(t *testing.T) {
	var s streamBuilder
	s.alu(1)    // 0: head
	s.alu(2, 1) // 1: tail (single-source consumer)
	s.alu(3)    // 2
	s.alu(4)    // 3
	tbl, det := detectAll(wiredOR(), s.insts)
	ptr, tailPC := lookup(t, tbl, 0)
	if tailPC != 1 || ptr.Offset != 1 || ptr.Control {
		t.Fatalf("pointer = %+v tail %d", ptr, tailPC)
	}
	if det.Stats().DependentPairs == 0 {
		t.Fatal("no dependent pair counted")
	}
}

func TestDetectNearestConsumerWins(t *testing.T) {
	var s streamBuilder
	s.alu(1)    // 0
	s.alu(2, 1) // 1: nearest consumer
	s.alu(3, 1) // 2: farther consumer
	s.alu(4)    // 3
	tbl, _ := detectAll(wiredOR(), s.insts)
	_, tailPC := lookup(t, tbl, 0)
	if tailPC != 1 {
		t.Fatalf("picked tail %d, want nearest (1)", tailPC)
	}
}

func TestCycleHeuristicRejectsTwoSourceAcrossMark(t *testing.T) {
	// Column scan: head 0's first mark is at row 1 (a load, not a
	// candidate), and row 2 has a "2" mark; the heuristic forbids "2"
	// across other marks (potential cycle, Figure 8).
	var s streamBuilder
	s.alu(1)                              // 0: head
	s.add(isa.LD, 9, 1, isa.NoReg, false) // 1: consumer, not a candidate
	s.alu(10, 1, 9)                       // 2: 2-source consumer of 0 and 1
	s.alu(4)                              // 3
	tbl, det := detectAll(wiredORDepOnly(), s.insts)
	if _, _, ok := tbl.Lookup(0, 1<<40); ok {
		t.Fatal("pair formed despite potential cycle")
	}
	if det.Stats().CycleRejects == 0 {
		t.Fatal("cycle rejection not counted")
	}
}

func TestCycleHeuristicWouldDeadlock(t *testing.T) {
	// The rejected grouping above is a REAL cycle: 0 -> 1 -> 2, so
	// grouping (0,2) deadlocks. Precise detection must agree.
	var s streamBuilder
	s.alu(1)
	s.add(isa.LD, 9, 1, isa.NoReg, false)
	s.alu(10, 1, 9)
	s.alu(4)
	cfg := wiredORDepOnly()
	cfg.PreciseCycleDetection = true
	tbl, det := detectAll(cfg, s.insts)
	if _, _, ok := tbl.Lookup(0, 1<<40); ok {
		t.Fatal("precise detection formed a deadlocking pair")
	}
	if det.Stats().CycleRejects == 0 {
		t.Fatal("precise rejection not counted")
	}
}

func TestTwoSourceSelectableAsFirstMark(t *testing.T) {
	// A "2" mark is selectable when it is the first mark in the column.
	var s streamBuilder
	s.alu(1)        // 0: head
	s.alu(9, 8)     // 1: unrelated
	s.alu(10, 1, 9) // 2: first mark in column 0, two sources
	s.alu(4)        // 3
	tbl, _ := detectAll(wiredOR(), s.insts)
	_, tailPC := lookup(t, tbl, 0)
	if tailPC != 2 {
		t.Fatalf("tail %d, want 2", tailPC)
	}
}

func TestHeuristicConservativeVsPrecise(t *testing.T) {
	// Head 0; row 1 reads r1 but is not a candidate; row 2 reads r1 and
	// an out-of-window register. No true cycle exists (2 does not depend
	// on 1), but the conservative heuristic rejects; precise accepts.
	build := func() []*functional.DynInst {
		var s streamBuilder
		s.alu(1)                              // 0
		s.add(isa.LD, 9, 1, isa.NoReg, false) // 1: reader, not candidate
		s.alu(10, 1, 20)                      // 2: r20 produced outside window
		s.alu(4)                              // 3
		return s.insts
	}
	tbl, _ := detectAll(wiredORDepOnly(), build())
	if _, _, ok := tbl.Lookup(0, 1<<40); ok {
		t.Fatal("conservative heuristic paired across a mark")
	}
	cfg := wiredORDepOnly()
	cfg.PreciseCycleDetection = true
	tbl2, _ := detectAll(cfg, build())
	if _, _, ok := tbl2.Lookup(0, 1<<40); !ok {
		t.Fatal("precise detection lost a safe pair")
	}
}

func TestPriorityDecoderOldestHeadWins(t *testing.T) {
	var s streamBuilder
	s.alu(1)       // 0
	s.alu(2)       // 1
	s.alu(3, 1, 2) // 2: wanted by both 0 and 1
	s.alu(4)       // 3
	tbl, det := detectAll(wiredOR(), s.insts)
	_, tailPC := lookup(t, tbl, 0)
	if tailPC != 2 {
		t.Fatalf("oldest head paired with %d", tailPC)
	}
	if _, _, ok := tbl.Lookup(1, 1<<40); ok {
		// PC 1 may pair with something else, but not with 2.
		_, tp, _ := tbl.Lookup(1, 1<<40)
		if tp == 2 {
			t.Fatal("both heads claimed the same tail")
		}
	}
	if det.Stats().ConflictLosses == 0 {
		t.Fatal("conflict loss not counted")
	}
}

func TestControlBitAcrossTakenBranch(t *testing.T) {
	var s streamBuilder
	s.alu(1)                                              // 0: head
	s.add(isa.JMP, isa.NoReg, isa.NoReg, isa.NoReg, true) // 1: taken direct
	s.alu(2, 1)                                           // 2: tail beyond the jump
	s.alu(4)                                              // 3
	tbl, _ := detectAll(wiredOR(), s.insts)
	ptr, tailPC := lookup(t, tbl, 0)
	if tailPC != 2 || !ptr.Control {
		t.Fatalf("pointer across taken branch: %+v tail %d", ptr, tailPC)
	}
}

func TestNoPointerAcrossIndirectJump(t *testing.T) {
	var s streamBuilder
	s.alu(1)                                          // 0
	s.add(isa.JR, isa.NoReg, isa.RA, isa.NoReg, true) // 1: indirect
	s.alu(2, 1)                                       // 2
	s.alu(4)                                          // 3
	tbl, det := detectAll(wiredOR(), s.insts)
	if _, _, ok := tbl.Lookup(0, 1<<40); ok {
		t.Fatal("pointer crossed an indirect jump")
	}
	if det.Stats().ControlRejects == 0 {
		t.Fatal("control rejection not counted")
	}
}

func TestNoPointerAcrossMultipleControlsWithTaken(t *testing.T) {
	var s streamBuilder
	s.alu(1)                                              // 0
	s.add(isa.BEQ, isa.NoReg, 5, 6, false)                // 1: not taken
	s.add(isa.JMP, isa.NoReg, isa.NoReg, isa.NoReg, true) // 2: taken
	s.alu(2, 1)                                           // 3: tail candidate
	tbl, _ := detectAll(wiredORDepOnly(), s.insts)
	if _, _, ok := tbl.Lookup(0, 1<<40); ok {
		t.Fatal("pointer crossed multiple controls with a taken one")
	}
}

func TestPointerAcrossNotTakenBranch(t *testing.T) {
	var s streamBuilder
	s.alu(1)                               // 0
	s.add(isa.BEQ, isa.NoReg, 5, 6, false) // 1: not taken
	s.alu(2, 1)                            // 2
	s.alu(4)                               // 3
	tbl, _ := detectAll(wiredOR(), s.insts)
	ptr, tailPC := lookup(t, tbl, 0)
	if tailPC != 2 || ptr.Control {
		t.Fatalf("not-taken path pointer: %+v tail %d", ptr, tailPC)
	}
}

func TestCAMSourceLimit(t *testing.T) {
	// Head with 2 sources, tail adding one external source: union = 3.
	build := func() []*functional.DynInst {
		var s streamBuilder
		s.add(isa.LD, 11, 8, isa.NoReg, false) // 0: loads cannot be heads
		s.add(isa.LD, 12, 8, isa.NoReg, false) // 1
		s.alu(1, 11, 12)                       // 2: head, two sources
		s.alu(2, 1, 13)                        // 3: tail, head edge + external r13
		return s.insts
	}
	tblCAM, detCAM := detectAll(cam2(), build())
	if _, _, ok := tblCAM.Lookup(2, 1<<40); ok {
		t.Fatal("CAM-2src accepted a 3-source union")
	}
	if detCAM.Stats().CAMRejects == 0 {
		t.Fatal("CAM rejection not counted")
	}
	tblOR, _ := detectAll(wiredOR(), build())
	if _, _, ok := tblOR.Lookup(2, 1<<40); !ok {
		t.Fatal("wired-OR lost the 3-source pair")
	}
}

func TestCAMIntraMOPEdgeDoesNotCount(t *testing.T) {
	// Tail's dependence on the head is satisfied inside the MOP: union =
	// head's 2 sources only.
	var s streamBuilder
	s.add(isa.LD, 11, 8, isa.NoReg, false)
	s.add(isa.LD, 12, 8, isa.NoReg, false)
	s.alu(1, 11, 12) // 2: head, 2 sources
	s.alu(2, 1)      // 3: tail reads only the head
	tbl, _ := detectAll(cam2(), s.insts)
	if _, _, ok := tbl.Lookup(2, 1<<40); !ok {
		t.Fatal("CAM-2src rejected a pair whose union is 2")
	}
}

func TestIndependentMOPPairing(t *testing.T) {
	var s streamBuilder
	s.alu(11)    // 0
	s.alu(5, 11) // 1: reads r11
	s.alu(6, 11) // 2: identical source, independent of 1
	s.alu(4)     // 3
	cfg := wiredOR()
	tbl, det := detectAll(cfg, s.insts)
	// 0:1 is a dependent pair; 2 should NOT steal 1.
	_, tail0 := lookup(t, tbl, 0)
	if tail0 != 1 {
		t.Fatalf("dependent pair first: tail %d", tail0)
	}
	if det.Stats().IndependentPairs != 0 {
		// 2 has no un-grouped identical-source partner left in this tiny
		// window (1 is a tail), so no independent pair forms.
		t.Fatalf("unexpected independent pairs: %d", det.Stats().IndependentPairs)
	}

	// Now two free identical-source instructions whose producer is a
	// load (not a potential head), so no dependent pair interferes.
	var s2 streamBuilder
	s2.add(isa.LD, 11, 8, isa.NoReg, false) // 0
	s2.add(isa.LD, 12, 8, isa.NoReg, false) // 1
	s2.alu(5, 11)                           // 2
	s2.alu(6, 11)                           // 3: same source, same producer
	tbl2, det2 := detectAll(cfg, s2.insts)
	if det2.Stats().IndependentPairs == 0 {
		t.Fatal("no independent pair formed")
	}
	ptr, tailPC := lookup(t, tbl2, 2)
	if tailPC != 3 || ptr.Offset != 1 {
		t.Fatalf("independent pointer: %+v tail %d", ptr, tailPC)
	}
}

func TestIndependentDisabled(t *testing.T) {
	var s streamBuilder
	s.alu(11)
	s.alu(12)
	s.alu(5, 11)
	s.alu(6, 11)
	cfg := wiredOR()
	cfg.GroupIndependent = false
	_, det := detectAll(cfg, s.insts)
	if det.Stats().IndependentPairs != 0 {
		t.Fatal("independent pairing ran while disabled")
	}
}

func TestIndependentRequiresSameValue(t *testing.T) {
	// Same register name but rewritten in between: different values.
	var s streamBuilder
	s.alu(5, 11) // 0 reads old r11
	s.alu(11)    // 1 rewrites r11
	s.alu(6, 11) // 2 reads new r11
	s.alu(4)     // 3
	_, det := detectAll(wiredOR(), s.insts)
	if det.Stats().IndependentPairs != 0 {
		t.Fatal("independent pair formed across a rewrite")
	}
}

func TestCrossGroupDetection(t *testing.T) {
	// Head in group 1, nearest consumer in group 2: the sliding window
	// (2 groups = 8-instruction scope) must find it.
	var s streamBuilder
	s.alu(1)    // 0: head
	s.alu(21)   // 1
	s.alu(22)   // 2
	s.alu(23)   // 3
	s.alu(2, 1) // 4: tail in the next group
	s.alu(24)   // 5
	s.alu(25)   // 6
	s.alu(26)   // 7
	tbl, _ := detectAll(wiredORDepOnly(), s.insts)
	ptr, tailPC := lookup(t, tbl, 0)
	if tailPC != 4 || ptr.Offset != 4 {
		t.Fatalf("cross-group pointer: %+v tail %d", ptr, tailPC)
	}
}

func TestScopeLimit(t *testing.T) {
	// Consumer 8 instructions away: outside the 2-group window once the
	// head's group slides out.
	var s streamBuilder
	s.alu(1) // 0: head
	for i := 0; i < 7; i++ {
		s.alu(isa.Reg(20 + i))
	}
	s.alu(2, 1) // 8: consumer, out of scope
	for i := 0; i < 3; i++ {
		s.alu(isa.Reg(27 - i))
	}
	tbl, _ := detectAll(wiredORDepOnly(), s.insts)
	if _, _, ok := tbl.Lookup(0, 1<<40); ok {
		t.Fatal("pointer generated beyond the 8-instruction scope")
	}
}

func TestTailNotReusedAsHead(t *testing.T) {
	// With MaxMOPSize = 2, a chosen tail must not head another pair.
	var s streamBuilder
	s.alu(1)    // 0: head
	s.alu(2, 1) // 1: tail of 0
	s.alu(3, 2) // 2: consumer of 1
	s.alu(4)    // 3
	tbl, _ := detectAll(wiredOR(), s.insts)
	if _, _, ok := tbl.Lookup(1, 1<<40); ok {
		t.Fatal("a 2x MOP tail became a head")
	}
}

func TestChainedMOPExtensionAllowsTailHead(t *testing.T) {
	var s streamBuilder
	s.alu(1)
	s.alu(2, 1)
	s.alu(3, 2)
	s.alu(4)
	cfg := wiredOR()
	cfg.MaxMOPSize = 3
	tbl, _ := detectAll(cfg, s.insts)
	if _, _, ok := tbl.Lookup(1, 1<<40); !ok {
		t.Fatal("chained extension did not let the tail start a link")
	}
}

func TestDetectionDelayVisibility(t *testing.T) {
	var s streamBuilder
	s.alu(1)
	s.alu(2, 1)
	s.alu(3)
	s.alu(4)
	cfg := wiredOR()
	cfg.DetectionDelay = 50
	tbl := NewPointerTable()
	det := NewDetector(cfg, tbl)
	det.Observe(10, s.insts)
	if _, _, ok := tbl.Lookup(0, 10); ok {
		t.Fatal("pointer visible before the detection delay")
	}
	if _, _, ok := tbl.Lookup(0, 60); !ok {
		t.Fatal("pointer not visible after the delay")
	}
}

func TestDetectorReset(t *testing.T) {
	var s streamBuilder
	s.alu(1) // 0
	s.alu(21)
	s.alu(22)
	s.alu(23)
	tbl := NewPointerTable()
	det := NewDetector(wiredOR(), tbl)
	det.Observe(0, s.insts)
	det.Reset()
	var s2 streamBuilder
	s2.alu(31) // different PCs start at 0 again... use fresh builder
	s2.alu(2, 1)
	s2.insts[0].PC = 100
	s2.insts[1].PC = 101
	det.Observe(1, s2.insts)
	// After reset, the old window must not supply head 0 with tail 101.
	if _, tailPC, ok := tbl.Lookup(0, 1<<40); ok && tailPC == 101 {
		t.Fatal("window survived Reset")
	}
}
