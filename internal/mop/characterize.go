package mop

import (
	"macroop/internal/functional"
	"macroop/internal/isa"
)

// EdgeDistanceHorizon bounds the forward scan when classifying dependence
// edge distance; values beyond it count as dynamically dead. It matches
// the 128-entry ROB of Table 1: a consumer farther away could not coexist
// in the window anyway.
const EdgeDistanceHorizon = 128

// EdgeDistance accumulates Figure 6: for every value-generating MOP
// candidate (potential MOP head) in the committed stream, the distance in
// instructions to the nearest potential MOP tail (dependent single-cycle
// instruction), or the reason none exists.
type EdgeDistance struct {
	TotalInsts int64
	Heads      int64 // value-generating candidate instructions
	Dist1to3   int64
	Dist4to7   int64
	Dist8plus  int64
	// NotCandidate: the value has dependent instructions, but none of them
	// is a MOP candidate.
	NotCandidate int64
	// Dead: no instruction reads the value before it is overwritten
	// (within the horizon).
	Dead int64

	ring []charInst
	pos  int64
}

type charInst struct {
	op   isa.Op
	dest isa.Reg
	src1 isa.Reg
	src2 isa.Reg
	// extraRead is the store-data register of a fused STA+STD pair: it is
	// a real value consumer but not a groupable (address-generation)
	// dependence, mirroring the paper's split-store machine where only
	// the address-generation half is a MOP candidate.
	extraRead isa.Reg
	cand      bool
	valueGen  bool
	grouped   bool // used by the grouping characterization only
}

func toCharInst(d *functional.DynInst) charInst {
	c := charInst{
		op:        d.Inst.Op,
		dest:      isa.NoReg,
		src1:      d.Inst.Src1,
		src2:      d.Inst.Src2,
		extraRead: isa.NoReg,
	}
	if d.Inst.WritesReg() {
		c.dest = d.Inst.Dest
	}
	c.cand = d.Inst.Op.IsMOPCandidate()
	c.valueGen = d.Inst.Op.IsValueGenCandidate()
	return c
}

// readsTail reports whether the instruction consumes r through a
// groupable (scheduler-visible) source operand.
func (c *charInst) readsTail(r isa.Reg) bool {
	return r != isa.NoReg && r != isa.R0 && (c.src1 == r || c.src2 == r)
}

// readsAny reports whether the instruction consumes r at all, including
// through a fused store-data operand.
func (c *charInst) readsAny(r isa.Reg) bool {
	return c.readsTail(r) || (r != isa.NoReg && r != isa.R0 && c.extraRead == r)
}

// NewEdgeDistance returns an empty Figure 6 accumulator.
func NewEdgeDistance() *EdgeDistance {
	return &EdgeDistance{ring: make([]charInst, 0, EdgeDistanceHorizon+1)}
}

// Push feeds the next committed instruction. An STD record is fused into
// the immediately preceding STA (the pair counts as one store, as in the
// paper's Alpha accounting): its data register becomes an extraRead.
func (e *EdgeDistance) Push(d *functional.DynInst) {
	if d.Inst.Op == isa.STD {
		if n := len(e.ring); n > 0 && e.ring[n-1].op == isa.STA {
			e.ring[n-1].extraRead = d.Inst.Src1
		}
		return
	}
	e.ring = append(e.ring, toCharInst(d))
	if len(e.ring) > EdgeDistanceHorizon {
		e.classify(0)
		e.ring = e.ring[1:]
	}
}

// Flush classifies the buffered tail of the stream; call once at the end.
func (e *EdgeDistance) Flush() {
	for len(e.ring) > 0 {
		e.classify(0)
		e.ring = e.ring[1:]
	}
}

func (e *EdgeDistance) classify(i int) {
	e.TotalInsts++
	h := &e.ring[i]
	if !h.valueGen || h.dest == isa.NoReg {
		return
	}
	e.Heads++
	sawReader := false
	for j := i + 1; j < len(e.ring); j++ {
		c := &e.ring[j]
		if c.cand && c.readsTail(h.dest) {
			switch d := j - i; {
			case d <= 3:
				e.Dist1to3++
			case d <= 7:
				e.Dist4to7++
			default:
				e.Dist8plus++
			}
			return
		}
		if c.readsAny(h.dest) {
			sawReader = true
		}
		if c.dest == h.dest {
			break // value overwritten; no later consumer can exist
		}
	}
	if sawReader {
		e.NotCandidate++
	} else {
		e.Dead++
	}
}

// Grouping accumulates Figure 7: idealized greedy MOP grouping over an
// 8-instruction program-order scope, for a configurable maximum MOP size
// (2 for "2x MOP", 8 for "8x MOP"). It is machine-independent: no fetch
// groups, detection latency or heuristic restrictions apply.
type Grouping struct {
	MaxSize int

	TotalInsts     int64
	NotCandidate   int64
	CandNotGrouped int64
	MOPValueGen    int64
	MOPNonValueGen int64
	Groups         int64
	GroupedInsts   int64
	ValueGenCands  int64 // the dotted line in Figure 7

	ring []charInst
}

// GroupScope is the paper's MOP formation scope in instructions.
const GroupScope = 8

// NewGrouping returns a Figure 7 accumulator for the given maximum MOP
// size (>= 2).
func NewGrouping(maxSize int) *Grouping {
	if maxSize < 2 {
		maxSize = 2
	}
	return &Grouping{MaxSize: maxSize, ring: make([]charInst, 0, GroupScope)}
}

// Push feeds the next committed instruction; STD records fuse into the
// preceding STA as in EdgeDistance.Push.
func (g *Grouping) Push(d *functional.DynInst) {
	if d.Inst.Op == isa.STD {
		if n := len(g.ring); n > 0 && g.ring[n-1].op == isa.STA {
			g.ring[n-1].extraRead = d.Inst.Src1
		}
		return
	}
	g.ring = append(g.ring, toCharInst(d))
	if len(g.ring) == GroupScope {
		g.retire()
	}
}

// Flush drains the buffered tail; call once at the end of the stream.
func (g *Grouping) Flush() {
	for len(g.ring) > 0 {
		g.retire()
	}
}

// retire forms groups headed by the oldest buffered instruction, then
// accounts and evicts it.
func (g *Grouping) retire() {
	h := &g.ring[0]
	if h.valueGen && h.cand && !h.grouped {
		g.tryGroup()
	}
	g.TotalInsts++
	switch {
	case !h.cand:
		g.NotCandidate++
	case h.grouped && h.valueGen:
		g.MOPValueGen++
	case h.grouped:
		g.MOPNonValueGen++
	default:
		g.CandNotGrouped++
	}
	if h.valueGen && h.cand {
		g.ValueGenCands++
	}
	g.ring = g.ring[1:]
}

// tryGroup greedily builds one dependence-chain group headed by ring[0]:
// members must be ungrouped candidates within the scope, each directly
// dependent on some value-generating member already in the group.
func (g *Grouping) tryGroup() {
	members := []int{0}
	for j := 1; j < len(g.ring) && len(members) < g.MaxSize; j++ {
		c := &g.ring[j]
		if !c.cand || c.grouped {
			continue
		}
		if g.directlyDependsOnMember(j, members) {
			members = append(members, j)
		}
	}
	if len(members) < 2 {
		return
	}
	for _, m := range members {
		g.ring[m].grouped = true
	}
	g.Groups++
	g.GroupedInsts += int64(len(members))
}

// directlyDependsOnMember reports whether ring[j] directly consumes the
// value produced by some group member (the member must still be the last
// writer of that register before j).
func (g *Grouping) directlyDependsOnMember(j int, members []int) bool {
	for _, m := range members {
		p := &g.ring[m]
		if p.dest == isa.NoReg || !g.ring[j].readsTail(p.dest) {
			continue
		}
		overwritten := false
		for k := m + 1; k < j; k++ {
			if g.ring[k].dest == p.dest {
				overwritten = true
				break
			}
		}
		if !overwritten {
			return true
		}
	}
	return false
}

// AvgGroupSize returns the mean number of instructions per formed group.
func (g *Grouping) AvgGroupSize() float64 {
	if g.Groups == 0 {
		return 0
	}
	return float64(g.GroupedInsts) / float64(g.Groups)
}
