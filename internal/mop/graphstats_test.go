package mop

import (
	"testing"

	"macroop/internal/functional"
	"macroop/internal/isa"
	"macroop/internal/workload"
	"macroop/internal/workload/workloadtest"
)

func TestGraphStatsSerialChain(t *testing.T) {
	var s streamBuilder
	for i := 0; i < 64; i++ {
		s.alu(8, 8) // fully serial accumulator
	}
	g := NewGraphStats(16)
	for _, d := range s.insts {
		g.Push(d)
	}
	g.Flush()
	if f := g.SerialFraction(); f < 0.95 {
		t.Fatalf("serial chain fraction %.2f, want ~1", f)
	}
	// Every value (except the last in flight) has exactly one consumer.
	if g.FanOut.Fraction(1) < 0.9 {
		t.Fatalf("fan-out-1 fraction %.2f", g.FanOut.Fraction(1))
	}
	// One long chain run observed.
	if g.ChainRun.Mean() < 30 {
		t.Fatalf("chain run mean %.1f, want long runs", g.ChainRun.Mean())
	}
}

func TestGraphStatsParallelStream(t *testing.T) {
	var s streamBuilder
	for i := 0; i < 64; i++ {
		s.alu(isa.Reg(8 + i%16)) // no dependences at all
	}
	g := NewGraphStats(16)
	for _, d := range s.insts {
		g.Push(d)
	}
	g.Flush()
	if f := g.SerialFraction(); f > 0.15 {
		t.Fatalf("independent stream serial fraction %.2f, want ~1/16", f)
	}
	// All values dead (fan-out 0) since nothing reads them before rewrite.
	if g.FanOut.Fraction(0) < 0.9 {
		t.Fatalf("dead fraction %.2f", g.FanOut.Fraction(0))
	}
}

func TestGraphStatsFanOutCounts(t *testing.T) {
	var s streamBuilder
	s.alu(1) // 0: consumed by three readers
	s.alu(20, 1)
	s.alu(21, 1)
	s.alu(22, 1)
	g := NewGraphStats(4)
	for _, d := range s.insts {
		g.Push(d)
	}
	g.Flush()
	// Producer 0 lands in the 3+ overflow bucket.
	if g.FanOut.Bucket(3) != 1 {
		t.Fatalf("fan-out buckets: %d %d %d %d",
			g.FanOut.Bucket(0), g.FanOut.Bucket(1), g.FanOut.Bucket(2), g.FanOut.Bucket(3))
	}
}

func TestGraphStatsStoreDataCountsAsConsumer(t *testing.T) {
	var s streamBuilder
	s.alu(1)
	s.add(isa.STA, isa.NoReg, 2, isa.NoReg, false)
	s.add(isa.STD, isa.NoReg, 1, isa.NoReg, false) // reads r1 as data
	s.alu(9)
	g := NewGraphStats(4)
	for _, d := range s.insts {
		g.Push(d)
	}
	g.Flush()
	if g.FanOut.Bucket(1) < 1 {
		t.Fatal("store data read not credited as a consumer")
	}
}

// TestGraphStatsWorkloadShapes ties the analyzer back to the calibrated
// workloads: gap must be markedly more serial than vortex.
func TestGraphStatsWorkloadShapes(t *testing.T) {
	serial := func(name string) float64 {
		g := NewGraphStats(16)
		streamBench(t, name, 80000, g.Push)
		g.Flush()
		return g.SerialFraction()
	}
	gap := serial("gap")
	vortex := serial("vortex")
	if gap <= vortex {
		t.Fatalf("gap serial %.3f <= vortex %.3f; calibration shape violated", gap, vortex)
	}
}

// streamBench feeds n committed instructions of a benchmark to sink.
func streamBench(t *testing.T, name string, n int64, sink func(*functional.DynInst)) {
	t.Helper()
	prof, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	e := functional.NewExecutor(workloadtest.Generate(t, prof))
	var d functional.DynInst
	for i := int64(0); i < n; i++ {
		if err := e.Step(&d); err != nil {
			t.Fatal(err)
		}
		sink(&d)
	}
}
