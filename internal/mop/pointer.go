// Package mop implements macro-op (MOP) detection, MOP pointers, and the
// machine-independent groupability characterizations of Sections 4 and 5
// of the paper.
//
// MOP detection (Section 5.1) examines the renamed instruction stream with
// a triangle dependence matrix over a two-group (8-instruction) scope,
// applies the conservative cycle-detection heuristic via "1"/"2" source
// count marks, resolves conflicts with a priority decoder, and emits
// 4-bit MOP pointers (1 control bit + 3-bit offset) that are stored
// alongside the instruction cache and consumed by MOP formation in the
// pipeline front end (internal/core).
package mop

// Pointer is the 4-bit MOP pointer of Section 5.1.3: a forward pointer
// from the MOP head to its tail. Control records whether the path from
// head to tail included exactly one taken direct control instruction at
// detection time; Offset is the dynamic instruction distance (1..7).
type Pointer struct {
	Control bool
	Offset  uint8
}

// MaxOffset is the largest distance representable by the 3-bit offset
// field: it covers the paper's 8-instruction scope.
const MaxOffset = 7

type tableEntry struct {
	ptr       Pointer
	tailPC    int
	visibleAt int64 // detection-delay modelling: usable from this cycle on
	valid     bool
}

// PointerTable stores MOP pointers keyed by the head's static PC. It
// models the paper's arrangement where pointers live in the first-level
// instruction cache and are fetched along with instructions: entries
// become visible only after the configured detection delay, and the
// last-arriving-operand filter (Section 5.4.2) can delete an entry while
// blacklisting the pair so detection picks an alternative tail.
type PointerTable struct {
	// entries is indexed by head static PC. Static PCs are small dense
	// program indices, so a slice (grown on demand, stable once every PC
	// has been seen) replaces the map this used to be: under the
	// install/delete churn of detection the map kept allocating overflow
	// buckets, which showed up as a slow allocation trickle in the
	// otherwise allocation-free cycle loop.
	entries []tableEntry
	live    int
	// blacklist holds banned (headPC, tailPC) pairs under one combined
	// key. A single pre-sized map keeps the last-arriving filter's bans
	// from allocating per newly-banned head the way a map-of-maps did.
	blacklist map[uint64]struct{}

	installs int64
	deletes  int64
}

// NewPointerTable returns an empty table.
func NewPointerTable() *PointerTable {
	return &PointerTable{
		blacklist: make(map[uint64]struct{}, 4096),
	}
}

// pairKey packs a (headPC, tailPC) pair into one blacklist key.
func pairKey(headPC, tailPC int) uint64 {
	return uint64(uint32(headPC))<<32 | uint64(uint32(tailPC))
}

// Blacklisted reports whether the head→tail pair was banned by the
// last-arriving filter.
func (t *PointerTable) Blacklisted(headPC, tailPC int) bool {
	_, banned := t.blacklist[pairKey(headPC, tailPC)]
	return banned
}

// Install records a pointer for headPC, visible from cycle visibleAt.
// Blacklisted pairs are ignored. Each instruction has exactly one pointer
// (Section 5.1.3), so a new pair overwrites the old one.
func (t *PointerTable) Install(headPC, tailPC int, ptr Pointer, visibleAt int64) {
	if ptr.Offset == 0 || ptr.Offset > MaxOffset {
		return
	}
	if t.Blacklisted(headPC, tailPC) {
		return
	}
	if headPC >= len(t.entries) {
		t.entries = append(t.entries, make([]tableEntry, headPC+1-len(t.entries))...)
	}
	e := &t.entries[headPC]
	if e.valid && e.tailPC == tailPC && e.visibleAt <= visibleAt {
		return // already installed earlier; keep the earlier visibility
	}
	if !e.valid {
		t.live++
	}
	*e = tableEntry{ptr: ptr, tailPC: tailPC, visibleAt: visibleAt, valid: true}
	t.installs++
}

// Lookup returns the pointer for headPC if one is installed and already
// visible at the given cycle.
func (t *PointerTable) Lookup(headPC int, now int64) (Pointer, int, bool) {
	if headPC < 0 || headPC >= len(t.entries) {
		return Pointer{}, 0, false
	}
	e := &t.entries[headPC]
	if !e.valid || now < e.visibleAt {
		return Pointer{}, 0, false
	}
	return e.ptr, e.tailPC, true
}

// Delete implements the last-arriving filter's zero-pointer write: it
// removes the pointer for headPC and bans the pair so that subsequent
// detection searches for an alternative tail (Section 5.4.2).
func (t *PointerTable) Delete(headPC, tailPC int) {
	if headPC >= 0 && headPC < len(t.entries) {
		if e := &t.entries[headPC]; e.valid && e.tailPC == tailPC {
			e.valid = false
			t.live--
			t.deletes++
		}
	}
	t.blacklist[pairKey(headPC, tailPC)] = struct{}{}
}

// Len returns the number of currently valid pointers.
func (t *PointerTable) Len() int { return t.live }

// Installs returns the cumulative number of pointer installations.
func (t *PointerTable) Installs() int64 { return t.installs }

// Deletes returns the cumulative number of filter deletions.
func (t *PointerTable) Deletes() int64 { return t.deletes }
