package mop

import (
	"testing"

	"macroop/internal/config"
	"macroop/internal/functional"
	"macroop/internal/isa"
	"macroop/internal/rng"
)

// randomStream builds a random candidate/non-candidate instruction stream
// with realistic register reuse.
func randomStream(r *rng.RNG, n int) []*functional.DynInst {
	var s streamBuilder
	for i := 0; i < n; i++ {
		dest := isa.Reg(8 + r.Intn(12))
		s1 := isa.Reg(8 + r.Intn(12))
		s2 := isa.Reg(8 + r.Intn(12))
		switch r.Intn(10) {
		case 0:
			s.add(isa.LD, dest, s1, isa.NoReg, false)
		case 1:
			s.add(isa.MUL, dest, s1, s2, false)
		case 2:
			s.add(isa.BEQ, isa.NoReg, s1, s2, r.Bool(0.3))
		case 3:
			s.add(isa.JMP, isa.NoReg, isa.NoReg, isa.NoReg, true)
		case 4:
			s.add(isa.ADDI, dest, s1, isa.NoReg, false)
		default:
			s.add(isa.ADD, dest, s1, s2, false)
		}
	}
	return s.insts
}

// TestDetectorInvariants drives random streams through the detector under
// every configuration and checks structural invariants of the pointers it
// generates:
//
//  1. offsets are within the 3-bit field (1..7);
//  2. the head is a value-generating candidate or an independent-MOP head
//     (always a candidate);
//  3. the designated tail is a MOP candidate;
//  4. under CAM-2src, the pair's external source union is at most 2.
func TestDetectorInvariants(t *testing.T) {
	r := rng.New(31337)
	for trial := 0; trial < 30; trial++ {
		stream := randomStream(r, 400)
		byPC := map[int]*functional.DynInst{}
		for _, d := range stream {
			byPC[d.PC] = d
		}
		for _, cfg := range []config.MOPConfig{wiredOR(), cam2(), func() config.MOPConfig {
			c := wiredOR()
			c.PreciseCycleDetection = true
			return c
		}()} {
			tbl, _ := detectAll(cfg, stream)
			for _, d := range stream {
				ptr, tailPC, ok := tbl.Lookup(d.PC, 1<<40)
				if !ok {
					continue
				}
				if ptr.Offset < 1 || ptr.Offset > MaxOffset {
					t.Fatalf("trial %d: offset %d out of field range", trial, ptr.Offset)
				}
				head := byPC[d.PC]
				tail := byPC[tailPC]
				if tail == nil {
					t.Fatalf("trial %d: pointer to unknown tail PC %d", trial, tailPC)
				}
				if !head.Inst.Op.IsMOPCandidate() {
					t.Fatalf("trial %d: non-candidate head %v", trial, head.Inst.Op)
				}
				if !tail.Inst.Op.IsMOPCandidate() {
					t.Fatalf("trial %d: non-candidate tail %v", trial, tail.Inst.Op)
				}
				if tailPC != head.PC+int(ptr.Offset) {
					// PCs equal stream positions in these fixtures.
					t.Fatalf("trial %d: offset %d does not reach tail (%d -> %d)",
						trial, ptr.Offset, head.PC, tailPC)
				}
				if cfg.Wakeup == config.WakeupCAM2Src {
					if n := unionRegs(head, tail); n > 2 {
						t.Fatalf("trial %d: CAM pair with %d-source union", trial, n)
					}
				}
			}
		}
	}
}

// unionRegs recomputes the external source union of a pair.
func unionRegs(head, tail *functional.DynInst) int {
	set := map[isa.Reg]bool{}
	add := func(r isa.Reg) {
		if r != isa.NoReg && r != isa.R0 {
			set[r] = true
		}
	}
	add(head.Inst.Src1)
	add(head.Inst.Src2)
	for _, r := range []isa.Reg{tail.Inst.Src1, tail.Inst.Src2} {
		if head.Inst.WritesReg() && r == head.Inst.Dest {
			continue
		}
		add(r)
	}
	return len(set)
}

// TestDetectorDeterminism: the same stream yields the same pointer table.
func TestDetectorDeterminism(t *testing.T) {
	r := rng.New(7)
	stream := randomStream(r, 300)
	t1, _ := detectAll(wiredOR(), stream)
	t2, _ := detectAll(wiredOR(), stream)
	for _, d := range stream {
		p1, tp1, ok1 := t1.Lookup(d.PC, 1<<40)
		p2, tp2, ok2 := t2.Lookup(d.PC, 1<<40)
		if ok1 != ok2 || p1 != p2 || tp1 != tp2 {
			t.Fatalf("pc %d: nondeterministic detection", d.PC)
		}
	}
}

// TestPreciseNeverBelowHeuristic: precise cycle detection can only admit
// more pairs than the conservative heuristic, never fewer (on streams
// without the independent-MOP path interfering).
func TestPreciseNeverBelowHeuristic(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 20; trial++ {
		stream := randomStream(r, 400)
		heur := wiredORDepOnly()
		prec := wiredORDepOnly()
		prec.PreciseCycleDetection = true
		_, dh := detectAll(heur, stream)
		_, dp := detectAll(prec, stream)
		if dp.Stats().DependentPairs < dh.Stats().DependentPairs {
			t.Fatalf("trial %d: precise %d < heuristic %d pairs", trial,
				dp.Stats().DependentPairs, dh.Stats().DependentPairs)
		}
	}
}
