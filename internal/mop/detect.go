package mop

import (
	"math/bits"

	"macroop/internal/config"
	"macroop/internal/functional"
	"macroop/internal/isa"
)

// DetectStats counts detection outcomes for reporting.
type DetectStats struct {
	DependentPairs   int64 // dependent MOP pointers generated
	IndependentPairs int64 // independent MOP pointers generated (Section 5.4.1)
	CycleRejects     int64 // pairs rejected by the cycle heuristic ("2" across marks)
	ControlRejects   int64 // pairs rejected by control-flow pointer rules
	CAMRejects       int64 // pairs rejected by the 2-source-comparator limit
	ConflictLosses   int64 // heads that lost the priority-decoder conflict
}

// slot is one instruction being examined in the detection window.
type slot struct {
	pc       int
	op       isa.Op
	dest     isa.Reg // NoReg if the instruction writes no register
	srcs     [2]isa.Reg
	nsrc     int // distinct non-R0 source registers
	taken    bool
	inval    bool // not a MOP candidate
	valueGen bool
	head     bool
	tail     bool
}

func newSlot(d *functional.DynInst) slot {
	s := slot{pc: d.PC, op: d.Inst.Op, dest: isa.NoReg, taken: d.Taken}
	if d.Inst.WritesReg() {
		s.dest = d.Inst.Dest
	}
	for _, r := range [2]isa.Reg{d.Inst.Src1, d.Inst.Src2} {
		if r == isa.NoReg || r == isa.R0 {
			continue
		}
		dup := false
		for k := 0; k < s.nsrc; k++ {
			if s.srcs[k] == r {
				dup = true
			}
		}
		if !dup {
			s.srcs[s.nsrc] = r
			s.nsrc++
		}
	}
	s.inval = !d.Inst.Op.IsMOPCandidate()
	s.valueGen = d.Inst.Op.IsValueGenCandidate()
	return s
}

// Detector implements the MOP detection logic of Section 5.1.2: it
// observes the renamed instruction stream one rename group at a time,
// maintains a sliding window of ScopeGroups groups (the paper's 2-cycle,
// 8-instruction scope), and installs MOP pointers into a PointerTable.
//
// Detection is located off the critical path; its latency is modelled by
// PointerTable visibility (config.MOPConfig.DetectionDelay).
type Detector struct {
	cfg   config.MOPConfig
	table *PointerTable
	stats DetectStats

	groups [][]slot // oldest first, at most cfg.ScopeGroups

	// Per-step scratch, reused across Observe calls so detection never
	// allocates in steady state: recycled group backings, the flattened
	// window, the dependence matrix, head->tail requests, and the
	// priority-decoder claim bits.
	slotFree [][]slot
	winBuf   []*slot
	depBuf   [][2]int
	wantBuf  []int
	claimBuf []bool

	// Column-bitset dependence matrix: colBits holds one n-bit row mask
	// per window column (row i starts at i*wn), bit j meaning window row
	// j directly consumes column i's result. wn is the words-per-mask
	// for the current window. cycSeen/cycTodo are inducesCycle scratch.
	colBits []uint64
	wn      int
	cycSeen []uint64
	cycTodo []uint64
}

// NewDetector creates a detector installing into the given table.
func NewDetector(cfg config.MOPConfig, table *PointerTable) *Detector {
	return &Detector{cfg: cfg, table: table}
}

// Stats returns the accumulated detection statistics.
func (d *Detector) Stats() DetectStats { return d.stats }

// Observe feeds one rename group (program order) into the detector at the
// given cycle and runs a detection step over the current window.
func (d *Detector) Observe(cycle int64, group []*functional.DynInst) {
	if len(group) == 0 {
		return
	}
	if len(d.groups) == d.cfg.ScopeGroups {
		// Shift in place (keeping the groups backing array) and recycle
		// the evicted group's slot storage.
		d.slotFree = append(d.slotFree, d.groups[0][:0])
		copy(d.groups, d.groups[1:])
		d.groups = d.groups[:len(d.groups)-1]
	}
	var slots []slot
	if n := len(d.slotFree); n > 0 {
		slots = d.slotFree[n-1]
		d.slotFree = d.slotFree[:n-1]
	}
	for _, di := range group {
		slots = append(slots, newSlot(di))
	}
	d.groups = append(d.groups, slots)
	d.step(cycle)
}

// Reset clears the window (e.g. across a fetch redirect, when the
// instructions straddling the window are no longer consecutive). Group
// backings are recycled, not dropped: redirects are frequent enough that
// losing them would re-allocate the window continuously.
func (d *Detector) Reset() {
	for _, g := range d.groups {
		d.slotFree = append(d.slotFree, g[:0])
	}
	d.groups = d.groups[:0]
}

// window flattens the current groups into a single program-order slice of
// slot pointers.
func (d *Detector) window() []*slot {
	w := d.winBuf[:0]
	for gi := range d.groups {
		for si := range d.groups[gi] {
			w = append(w, &d.groups[gi][si])
		}
	}
	d.winBuf = w
	return w
}

// depMatrixRef computes direct register dependences within the window as
// the original triangle representation: dep[j] holds, for each row j, the
// column index of the producer of each of j's sources (or -1 when the
// producer is outside the window). Retained as the reference oracle the
// bitset matrix is differentially tested against (FuzzBitMatrix); the
// production scans in step use buildColBits.
func (d *Detector) depMatrixRef(w []*slot) [][2]int {
	dep := d.depBuf[:0]
	var lastWriter [isa.NumRegs]int
	for r := range lastWriter {
		lastWriter[r] = -1
	}
	for j, s := range w {
		row := [2]int{-1, -1}
		for k := 0; k < s.nsrc; k++ {
			row[k] = lastWriter[s.srcs[k]]
		}
		dep = append(dep, row)
		if s.dest != isa.NoReg {
			lastWriter[s.dest] = j
		}
	}
	d.depBuf = dep
	return dep
}

// dependsOn reports whether row j directly depends on column i in the
// triangle reference matrix.
func dependsOn(dep [][2]int, j, i int) bool {
	return dep[j][0] == i || dep[j][1] == i
}

// buildColBits computes the same dependence relation as depMatrixRef in
// column-bitset form: for each producer column i, an n-bit mask of the
// rows that directly consume it. The mark scan in step then walks only
// set bits instead of testing every (head, row) pair. A duplicate edge
// (two source registers with the same in-window producer) collapses to
// one bit, which is exactly the boolean dependsOn relation.
func (d *Detector) buildColBits(w []*slot) {
	n := len(w)
	wn := (n + 63) / 64
	d.wn = wn
	need := n * wn
	if cap(d.colBits) < need {
		d.colBits = make([]uint64, need)
	} else {
		d.colBits = d.colBits[:need]
		clear(d.colBits)
	}
	var lastWriter [isa.NumRegs]int
	for r := range lastWriter {
		lastWriter[r] = -1
	}
	for j, s := range w {
		for k := 0; k < s.nsrc; k++ {
			if p := lastWriter[s.srcs[k]]; p >= 0 {
				d.colBits[p*wn+j>>6] |= 1 << uint(j&63)
			}
		}
		if s.dest != isa.NoReg {
			lastWriter[s.dest] = j
		}
	}
}

// depBit reports whether row j directly depends on column i in the
// bitset matrix built by the last buildColBits call.
func (d *Detector) depBit(j, i int) bool {
	return d.colBits[i*d.wn+j>>6]&(1<<uint(j&63)) != 0
}

// step runs one detection pass over the window: dependent pairs first,
// then independent pairs (Section 5.4.1).
func (d *Detector) step(cycle int64) {
	w := d.window()
	if len(w) < 2 {
		return
	}
	d.buildColBits(w)

	// Dependent-pair detection: each eligible head column scans its
	// marks top to bottom and requests the first selectable tail. The
	// column mask walk visits exactly the marked rows (in ascending row
	// order, matching the reference triangle scan); rows without a mark
	// for column i contribute nothing to the decision and are skipped
	// wholesale.
	want := d.wantBuf[:0] // head index -> chosen tail index, -1 none
	for range w {
		want = append(want, -1)
	}
	d.wantBuf = want
	wn := d.wn
	for i, h := range w {
		if !d.headEligible(h) {
			continue
		}
		seenMark := false
		row := d.colBits[i*wn : (i+1)*wn]
	marks:
		for wi := 0; wi < wn; wi++ {
			for m := row[wi]; m != 0; m &= m - 1 {
				j := wi<<6 + bits.TrailingZeros64(m)
				t := w[j]
				// Row j carries a dependence mark for column i. The mark
				// value is the consumer's source-operand count: "1" is
				// selectable anywhere; "2" only as the first mark in the
				// column (the hardware encoding of the Section 5.1.1
				// cycle heuristic).
				selectable := t.nsrc == 1 || !seenMark
				seenMark = true
				if !d.tailEligible(t) {
					continue
				}
				if !selectable && !d.cfg.PreciseCycleDetection {
					d.stats.CycleRejects++
					continue
				}
				if d.cfg.PreciseCycleDetection && d.inducesCycle(i, j) {
					d.stats.CycleRejects++
					continue
				}
				if j-i > MaxOffset {
					break marks
				}
				if _, ok := controlClass(w, i, j); !ok {
					d.stats.ControlRejects++
					continue
				}
				if d.cfg.Wakeup == config.WakeupCAM2Src && unionSources(h, t) > 2 {
					d.stats.CAMRejects++
					continue
				}
				if d.table.Blacklisted(h.pc, t.pc) {
					continue
				}
				want[i] = j
				break marks
			}
		}
	}

	// Priority decoder: oldest head first. A selected tail is marked so
	// it is not examined again (Figure 9) — it neither serves a second
	// head nor starts its own pair in the same step (unless the chained
	// extension is enabled).
	claimedTail := d.claimBuf[:0]
	for range w {
		claimedTail = append(claimedTail, false)
	}
	d.claimBuf = claimedTail
	for i := 0; i < len(w); i++ {
		j := want[i]
		if j < 0 {
			continue
		}
		if claimedTail[i] && d.cfg.MaxMOPSize <= 2 {
			continue // this instruction just became a tail
		}
		if claimedTail[j] {
			d.stats.ConflictLosses++
			continue
		}
		claimedTail[j] = true
		h, t := w[i], w[j]
		h.head, t.tail = true, true
		ctrl, _ := controlClass(w, i, j)
		d.table.Install(h.pc, t.pc, Pointer{Control: ctrl, Offset: uint8(j - i)}, cycle+int64(d.cfg.DetectionDelay))
		d.stats.DependentPairs++
	}

	if d.cfg.GroupIndependent {
		d.pairIndependent(w, cycle)
	}
}

func (d *Detector) headEligible(s *slot) bool {
	if s.inval || s.head || !s.valueGen {
		return false
	}
	// A tail may start another pair only in the chained-MOP extension.
	if s.tail && d.cfg.MaxMOPSize <= 2 {
		return false
	}
	return true
}

func (d *Detector) tailEligible(s *slot) bool {
	return !s.inval && !s.head && !s.tail
}

// unionSources counts the distinct non-R0 source registers a MOP of h and
// t would expose to the wakeup array: the head's sources plus the tail's
// sources minus the intra-MOP edge (Section 5.2.2).
func unionSources(h, t *slot) int {
	var regs [4]isa.Reg // each slot exposes at most 2 distinct sources
	n := 0
	for k := 0; k < h.nsrc; k++ {
		regs[n] = h.srcs[k]
		n++
	}
outer:
	for k := 0; k < t.nsrc; k++ {
		r := t.srcs[k]
		if r == h.dest {
			continue // satisfied inside the MOP; no tag needed
		}
		for i := 0; i < n; i++ {
			if regs[i] == r {
				continue outer
			}
		}
		regs[n] = r
		n++
	}
	return n
}

// controlClass classifies the control flow between head i and tail j
// (window positions) per Section 5.1.3: returns the control bit and
// whether a pointer may be generated at all. An intervening indirect
// jump, or multiple control instructions with any taken, forbid grouping.
func controlClass(w []*slot, i, j int) (controlBit, ok bool) {
	nControl, nTaken := 0, 0
	for k := i; k < j; k++ {
		s := w[k]
		if !s.op.IsControl() {
			continue
		}
		if s.op.IsIndirect() {
			return false, false
		}
		nControl++
		if s.taken {
			nTaken++
		}
	}
	switch {
	case nTaken == 0:
		return false, true
	case nTaken == 1 && nControl == 1:
		return true, true
	default:
		return false, false
	}
}

// inducesCycle is the precise alternative to the heuristic: grouping head
// i with tail j deadlocks iff some window instruction x strictly between
// them lies on a dependence path i →+ x →+ j. The search is a bitset BFS
// over the column masks — frontier expansion never passes through j — and
// runs allocation-free on the detector's scratch words.
func (d *Detector) inducesCycle(i, j int) bool {
	wn := d.wn
	if cap(d.cycSeen) < wn {
		d.cycSeen = make([]uint64, wn)
		d.cycTodo = make([]uint64, wn)
	}
	seen := d.cycSeen[:wn]
	todo := d.cycTodo[:wn]
	jw, jb := j>>6, uint64(1)<<uint(j&63)
	row := d.colBits[i*wn : (i+1)*wn]
	copy(seen, row)
	seen[jw] &^= jb
	copy(todo, seen)
	for {
		// Pop any unexpanded reachable node x (≠ j by construction).
		x := -1
		for wi := 0; wi < wn; wi++ {
			if todo[wi] != 0 {
				x = wi<<6 + bits.TrailingZeros64(todo[wi])
				todo[wi] &= todo[wi] - 1
				break
			}
		}
		if x < 0 {
			return false
		}
		xr := d.colBits[x*wn : (x+1)*wn]
		if xr[jw]&jb != 0 {
			return true // i →+ x →+ j through x ≠ j
		}
		for wi := 0; wi < wn; wi++ {
			nw := xr[wi] &^ seen[wi]
			if wi == jw {
				nw &^= jb
			}
			seen[wi] |= nw
			todo[wi] |= nw
		}
	}
}

// inducesCycleRef is the retained triangle-matrix reference for
// inducesCycle, compared against it by FuzzBitMatrix.
func (d *Detector) inducesCycleRef(w []*slot, dep [][2]int, i, j int) bool {
	n := len(w)
	adj := make([][]int, n)
	for r := 0; r < n; r++ {
		for k := 0; k < 2; k++ {
			if p := dep[r][k]; p >= 0 {
				adj[p] = append(adj[p], r)
			}
		}
	}
	// reachable-from-i search that may not pass through j.
	seen := make([]bool, n)
	var stack []int
	for _, c := range adj[i] {
		if c != j {
			stack = append(stack, c)
		}
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[x] {
			continue
		}
		seen[x] = true
		for _, c := range adj[x] {
			if c == j {
				return true // i →+ x →+ j through x ≠ j
			}
			stack = append(stack, c)
		}
	}
	return false
}

// pairIndependent groups leftover candidate pairs with identical (or
// empty) source dependences, per Section 5.4.1. Both instructions must
// read the same values, so shared source registers must have the same
// in-window producer and must not be rewritten between the two.
func (d *Detector) pairIndependent(w []*slot, cycle int64) {
	for i := 0; i < len(w); i++ {
		h := w[i]
		if h.inval || h.head || h.tail {
			continue
		}
		for j := i + 1; j < len(w) && j-i <= MaxOffset; j++ {
			t := w[j]
			if t.inval || t.head || t.tail {
				continue
			}
			if !sameSources(w, i, j) {
				continue
			}
			if d.depBit(j, i) {
				continue // actually dependent; handled above
			}
			ctrl, ok := controlClass(w, i, j)
			if !ok {
				continue
			}
			if d.table.Blacklisted(h.pc, t.pc) {
				continue
			}
			h.head, t.tail = true, true
			d.table.Install(h.pc, t.pc, Pointer{Control: ctrl, Offset: uint8(j - i)}, cycle+int64(d.cfg.DetectionDelay))
			d.stats.IndependentPairs++
			break
		}
	}
}

// sameSources reports whether window rows i and j have identical source
// register sets reading identical values: for every shared register the
// last writer before i and before j must be the same instruction (so no
// instruction in [i, j) rewrites it).
func sameSources(w []*slot, i, j int) bool {
	a, b := w[i], w[j]
	if a.nsrc != b.nsrc {
		return false
	}
	lastWriterBefore := func(r isa.Reg, row int) int {
		for x := row - 1; x >= 0; x-- {
			if w[x].dest == r {
				return x
			}
		}
		return -1
	}
	for k := 0; k < b.nsrc; k++ {
		r := b.srcs[k]
		found := false
		for m := 0; m < a.nsrc; m++ {
			if a.srcs[m] == r {
				found = true
			}
		}
		if !found {
			return false
		}
		if lastWriterBefore(r, i) != lastWriterBefore(r, j) {
			return false
		}
	}
	return true
}
