package core

import "time"

// stageClock accumulates wall time per pipeline stage. The timed step
// brackets each stage with monotonic clock reads and hands the six
// timestamps to add; breakdown folds the sums into fractions.
type stageClock struct {
	commit, sched, execute, insert, fetch time.Duration
	cycles                                int64
}

// StageBreakdown is the wall-time split of the cycle loop across
// pipeline stages, as fractions of the total accounted time. "Sched" is
// the scheduler kernel tick; "Execute" is grant application (cache
// probes, load-result writeback); "Insert" covers rename + MOP formation
// + queue insertion.
type StageBreakdown struct {
	Cycles  int64   `json:"cycles"`
	Commit  float64 `json:"commit"`
	Sched   float64 `json:"sched"`
	Execute float64 `json:"execute"`
	Insert  float64 `json:"insert"`
	Fetch   float64 `json:"fetch"`
}

func (k *stageClock) now() time.Time { return time.Now() }

func (k *stageClock) add(t0, t1, t2, t3, t4, t5 time.Time) {
	k.commit += t1.Sub(t0)
	k.sched += t2.Sub(t1)
	k.execute += t3.Sub(t2)
	k.insert += t4.Sub(t3)
	k.fetch += t5.Sub(t4)
	k.cycles++
}

func (k *stageClock) breakdown() StageBreakdown {
	total := k.commit + k.sched + k.execute + k.insert + k.fetch
	if total <= 0 {
		return StageBreakdown{Cycles: k.cycles}
	}
	f := func(d time.Duration) float64 { return float64(d) / float64(total) }
	return StageBreakdown{
		Cycles:  k.cycles,
		Commit:  f(k.commit),
		Sched:   f(k.sched),
		Execute: f(k.execute),
		Insert:  f(k.insert),
		Fetch:   f(k.fetch),
	}
}
