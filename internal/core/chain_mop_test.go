package core

import (
	"testing"

	"macroop/internal/config"
	"macroop/internal/isa"
	"macroop/internal/workload"
	"macroop/internal/workload/workloadtest"
)

// TestChainedMOPSerialChain checks the future-work extension: with
// MaxMOPSize = 4 a serial single-cycle chain groups four instructions per
// entry, restoring back-to-back execution under pipelined scheduling and
// quartering queue pressure.
func TestChainedMOPSerialChain(t *testing.T) {
	p := loopProgram("chain", func(b *program2) {
		for i := 0; i < 16; i++ {
			b.OpImm(isa.ADDI, 8, 8, 1)
		}
	})
	mk := func(size int) config.Machine {
		mc := config.DefaultMOP()
		mc.MaxMOPSize = size
		mc.ExtraFormationStages = 0
		return config.Unrestricted().WithMOP(mc)
	}
	two := runProg(t, mk(2), p, 60000)
	four := runProg(t, mk(4), p, 60000)
	// Pure chains run at ~1 IPC under any MOP size (an N-op MOP takes N
	// cycles); the chained win is queue entries, not throughput, so only
	// near-parity is required here.
	if four.IPC < two.IPC*0.90 {
		t.Fatalf("4x MOPs (%.3f) much worse than 2x (%.3f) on a serial chain", four.IPC, two.IPC)
	}
	if four.InsertReduction() < two.InsertReduction()+0.15 {
		t.Fatalf("4x insert reduction %.2f vs 2x %.2f: chaining not reducing entries",
			four.InsertReduction(), two.InsertReduction())
	}
	if four.GroupedFrac() < 0.8 {
		t.Fatalf("4x grouping %.2f", four.GroupedFrac())
	}
}

// TestChainedMOPOnBenchmark sanity-checks chained MOPs on a full
// benchmark: correctness (completes, committed count) and monotone insert
// reduction.
func TestChainedMOPOnBenchmark(t *testing.T) {
	prof, _ := workload.ByName("gap")
	prog := workloadtest.Generate(t, prof)
	var prevRed float64
	for _, size := range []int{2, 3, 4} {
		mc := config.DefaultMOP()
		mc.MaxMOPSize = size
		res := runProg(t, config.Default().WithMOP(mc), prog, 40000)
		if res.Committed < 40000 {
			t.Fatalf("size %d: committed %d", size, res.Committed)
		}
		if res.InsertReduction() < prevRed-0.02 {
			t.Fatalf("size %d: insert reduction %.3f dropped from %.3f",
				size, res.InsertReduction(), prevRed)
		}
		prevRed = res.InsertReduction()
	}
}

func TestChainedMOPConfigValidation(t *testing.T) {
	mc := config.DefaultMOP()
	mc.MaxMOPSize = 3
	mc.Wakeup = config.WakeupCAM2Src
	m := config.Default().WithMOP(mc)
	if err := m.Validate(); err == nil {
		t.Fatal("chained MOPs with CAM wakeup accepted")
	}
	mc.MaxMOPSize = 9
	mc.Wakeup = config.WakeupWiredOR
	if err := config.Default().WithMOP(mc).Validate(); err == nil {
		t.Fatal("MOP size 9 accepted")
	}
}

// TestChainedMOP8x exercises the maximum chain size on a perfectly
// fusable serial chain: with MaxMOPSize = 8 the insertion reduction must
// clearly exceed the 4x configuration's.
func TestChainedMOP8x(t *testing.T) {
	p := loopProgram("chain8", func(b *program2) {
		for i := 0; i < 16; i++ {
			b.OpImm(isa.ADDI, 8, 8, 1)
		}
	})
	mk := func(size int) config.Machine {
		mc := config.DefaultMOP()
		mc.MaxMOPSize = size
		mc.ExtraFormationStages = 0
		return config.Unrestricted().WithMOP(mc)
	}
	four := runProg(t, mk(4), p, 60000)
	eight := runProg(t, mk(8), p, 60000)
	if eight.InsertReduction() < four.InsertReduction()+0.05 {
		t.Fatalf("8x insert reduction %.2f vs 4x %.2f", eight.InsertReduction(), four.InsertReduction())
	}
	if eight.Committed < 60000 {
		t.Fatalf("8x run incomplete: %d", eight.Committed)
	}
	// Serial-chain throughput stays near 1 IPC regardless of chain size.
	if eight.IPC < 0.85*four.IPC {
		t.Fatalf("8x IPC %.3f collapsed vs 4x %.3f", eight.IPC, four.IPC)
	}
}
