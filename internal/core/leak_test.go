package core

import (
	"runtime"
	"testing"

	"macroop/internal/config"
	"macroop/internal/sched"
	"macroop/internal/workload"
	"macroop/internal/workload/workloadtest"
)

// TestBoundedRetention guards against dependence-graph memory leaks: after
// a long run, the number of scheduler entries reachable from the core's
// live structures must be bounded by the machine window, not by the
// instruction count (regression test for the consumer-list accretion bug).
func TestBoundedRetention(t *testing.T) {
	p, _ := workload.ByName("bzip")
	prog := workloadtest.Generate(t, p)
	for _, m := range []config.Machine{
		config.Default(),
		config.Default().WithMOP(config.DefaultMOP()),
		config.Default().WithSched(config.SchedSelectFreeScoreboard),
	} {
		c, err := New(m, prog)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Run(200000); err != nil {
			t.Fatal(err)
		}
		if n := reachableEntries(c); n > 5000 {
			t.Fatalf("%v: %d entries reachable after 200k insts (leak)", m.Sched, n)
		}
	}
}

// TestRetainedHeapBounded is the byte-level version of the same guard.
func TestRetainedHeapBounded(t *testing.T) {
	p, _ := workload.ByName("gzip")
	prog := workloadtest.Generate(t, p)
	c, _ := New(config.Default(), prog)
	if _, err := c.Run(400000); err != nil {
		t.Fatal(err)
	}
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	runtime.KeepAlive(c)
	if ms.HeapAlloc > 64<<20 {
		t.Fatalf("retained heap %d MB after 400k insts", ms.HeapAlloc>>20)
	}
}

// reachableEntries walks every core-side root and counts distinct
// scheduler entries reachable through any reference chain.
func reachableEntries(c *Core) int {
	seenE := map[*sched.Entry]bool{}
	seenU := map[*uop]bool{}
	var queueE []*sched.Entry
	var queueU []*uop
	addE := func(e *sched.Entry) {
		if e != nil && !seenE[e] {
			seenE[e] = true
			queueE = append(queueE, e)
		}
	}
	addU := func(u *uop) {
		if u != nil && !seenU[u] {
			seenU[u] = true
			queueU = append(queueU, u)
		}
	}
	for _, u := range c.ring {
		addU(u)
	}
	for _, u := range c.rob {
		addU(u)
	}
	for i := 0; i < c.feqLen; i++ {
		addU(c.feq[(c.feqHead+i)%len(c.feq)])
	}
	for _, pr := range c.rename {
		addE(pr.entry)
	}
	for _, e := range c.sch.DebugActive() {
		addE(e)
	}
	for len(queueE) > 0 || len(queueU) > 0 {
		if len(queueE) > 0 {
			e := queueE[0]
			queueE = queueE[1:]
			refs, _ := e.DebugRefs()
			for _, r := range refs {
				addE(r)
			}
			if h, ok := e.UserData.(*uop); ok {
				addU(h)
			}
			continue
		}
		u := queueU[0]
		queueU = queueU[1:]
		addE(u.entry)
		for _, pr := range u.headProds {
			addE(pr.entry)
		}
		for _, pr := range u.tailProds {
			addE(pr.entry)
		}
		addE(u.dataProd.entry)
		addU(u.claimedBy)
		for _, m := range u.members {
			addU(m)
		}
	}
	return len(seenE)
}
