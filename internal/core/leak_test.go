package core

import (
	"runtime"
	"testing"

	"macroop/internal/config"
	"macroop/internal/sched"
	"macroop/internal/workload"
	"macroop/internal/workload/workloadtest"
)

// TestBoundedRetention guards against dependence-graph memory leaks: after
// a long run, the number of scheduler entries reachable from the core's
// live structures must be bounded by the machine window, not by the
// instruction count (regression test for the consumer-list accretion bug).
// Both layouts are walked with their own root set.
func TestBoundedRetention(t *testing.T) {
	p, _ := workload.ByName("bzip")
	prog := workloadtest.Generate(t, p)
	for _, layout := range []config.CoreLayout{config.LayoutSoA, config.LayoutEntry} {
		for _, m := range []config.Machine{
			config.Default(),
			config.Default().WithMOP(config.DefaultMOP()),
			config.Default().WithSched(config.SchedSelectFreeScoreboard),
		} {
			m = m.WithLayout(layout)
			c, err := New(m, prog)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.Run(200000); err != nil {
				t.Fatal(err)
			}
			if n := reachableEntries(c); n > 5000 {
				t.Fatalf("%v/%v: %d entries reachable after 200k insts (leak)",
					m.Sched, layout, n)
			}
		}
	}
}

// TestRetainedHeapBounded is the byte-level version of the same guard.
func TestRetainedHeapBounded(t *testing.T) {
	p, _ := workload.ByName("gzip")
	prog := workloadtest.Generate(t, p)
	c, _ := New(config.Default(), prog)
	if _, err := c.Run(400000); err != nil {
		t.Fatal(err)
	}
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	runtime.KeepAlive(c)
	if ms.HeapAlloc > 64<<20 {
		t.Fatalf("retained heap %d MB after 400k insts", ms.HeapAlloc>>20)
	}
}

// reachableEntries counts distinct scheduler entries reachable through
// any reference chain from the core's live structures.
func reachableEntries(c *Core) int {
	switch e := c.eng.(type) {
	case *entryCore:
		return reachableEntriesEntry(e)
	case *soaCore:
		return reachableEntriesSoa(e)
	}
	return -1
}

// reachableEntriesEntry walks the pointer-linked layout's roots.
func reachableEntriesEntry(c *entryCore) int {
	seenE := map[*sched.Entry]bool{}
	seenU := map[*uop]bool{}
	var queueE []*sched.Entry
	var queueU []*uop
	addE := func(e *sched.Entry) {
		if e != nil && !seenE[e] {
			seenE[e] = true
			queueE = append(queueE, e)
		}
	}
	addU := func(u *uop) {
		if u != nil && !seenU[u] {
			seenU[u] = true
			queueU = append(queueU, u)
		}
	}
	for _, u := range c.ring {
		addU(u)
	}
	for _, u := range c.rob {
		addU(u)
	}
	for i := 0; i < c.feqLen; i++ {
		addU(c.feq[(c.feqHead+i)%len(c.feq)])
	}
	for _, pr := range c.rename {
		addE(pr.entry)
	}
	for _, e := range c.sch.DebugActive() {
		addE(e)
	}
	for len(queueE) > 0 || len(queueU) > 0 {
		if len(queueE) > 0 {
			e := queueE[0]
			queueE = queueE[1:]
			refs, _ := e.DebugRefs()
			for _, r := range refs {
				addE(r)
			}
			if h, ok := e.UserData.(*uop); ok {
				addU(h)
			}
			continue
		}
		u := queueU[0]
		queueU = queueU[1:]
		addE(u.entry)
		for _, pr := range u.headProds {
			addE(pr.entry)
		}
		for _, pr := range u.tailProds {
			addE(pr.entry)
		}
		addE(u.dataProd.entry)
		addU(u.claimedBy)
		for _, m := range u.members {
			addU(m)
		}
	}
	return len(seenE)
}

// reachableEntriesSoa walks the arena layout: live handles are the fetch
// ring's valid refs, the ROB and fetch-buffer rings, and the active
// fetch stall; per-handle entry references live in the entry column and
// the prodRef segment prefixes.
func reachableEntriesSoa(c *soaCore) int {
	ar := &c.ar
	seenE := map[*sched.Entry]bool{}
	seenU := map[uint32]bool{}
	var queueE []*sched.Entry
	var queueU []uint32
	addE := func(e *sched.Entry) {
		if e != nil && !seenE[e] {
			seenE[e] = true
			queueE = append(queueE, e)
		}
	}
	addU := func(h uint32) {
		if h != nilHandle && !seenU[h] {
			seenU[h] = true
			queueU = append(queueU, h)
		}
	}
	for _, r := range c.ring {
		if ar.valid(r) {
			addU(r.idx)
		}
	}
	for i := 0; i < c.robCount; i++ {
		addU(c.rob[(c.robHead+i)&c.robMask])
	}
	for i := 0; i < c.feqLen; i++ {
		addU(c.feq[(c.feqHead+i)&c.feqMask])
	}
	if ar.valid(c.stallBranch) {
		addU(c.stallBranch.idx)
	}
	for _, pr := range c.rename {
		addE(pr.entry)
	}
	for _, e := range c.sch.DebugActive() {
		addE(e)
	}
	for len(queueE) > 0 || len(queueU) > 0 {
		if len(queueE) > 0 {
			e := queueE[0]
			queueE = queueE[1:]
			refs, _ := e.DebugRefs()
			for _, r := range refs {
				addE(r)
			}
			if v := e.UserIdx; v != 0 {
				h, gen := unpackUser(v)
				if ar.gen[h] == gen {
					addU(h)
				}
			}
			continue
		}
		h := queueU[0]
		queueU = queueU[1:]
		addE(ar.entry[h])
		hb := int(h) * headProdStride
		for i := 0; i < int(ar.nHeadProds[h]); i++ {
			addE(ar.headProds[hb+i].entry)
		}
		tb := int(h) * tailProdStride
		for i := 0; i < int(ar.nTailProds[h]); i++ {
			addE(ar.tailProds[tb+i].entry)
		}
		addE(ar.dataProd[h].entry)
		if cb := ar.claimedBy[h]; ar.valid(cb) {
			addU(cb.idx)
		}
		mb := int(h) * memberStride
		for i := 0; i < int(ar.nMembers[h]); i++ {
			addU(ar.members[mb+i])
		}
	}
	return len(seenE)
}
