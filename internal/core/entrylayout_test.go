package core

import (
	"testing"

	"macroop/internal/config"
	"macroop/internal/workload"
)

// sliceInsideArr reports whether slice s (with non-zero capacity) is a
// window into the backing array whose elements arr[i] enumerates. The
// comparison is by element address, so a slice that was ever reassigned
// to a heap-allocated array (an accidental append past capacity, say)
// fails it.
func uopSliceInsideArr(base *uop, s []*uop) bool {
	if cap(s) == 0 {
		return true // nil or empty-with-no-backing: nothing to alias
	}
	p := &s[:1][0]
	for i := range base.membersArr {
		if p == &base.membersArr[i] {
			return cap(s) <= len(base.membersArr)-i
		}
	}
	return false
}

func prodSliceInsideArr(s []prodRef, arr []prodRef) bool {
	if cap(s) == 0 {
		return true
	}
	p := &s[:1][0]
	for i := range arr {
		if p == &arr[i] {
			return cap(s) <= len(arr)-i
		}
	}
	return false
}

// TestEntryLayoutEmbeddedSliceHeaders checks the entry layout's
// zero-alloc invariant at the data-structure level: every live uop's
// members/headProds/tailProds slice header stays inside the uop's own
// embedded backing array across pool reuse. If the rename or MOP
// formation path ever appends past the embedded capacity, the slice
// silently migrates to a fresh heap array — correctness survives but the
// steady state starts allocating — so the aliasing itself is the
// property pinned here, not just allocs/op.
func TestEntryLayoutEmbeddedSliceHeaders(t *testing.T) {
	prof, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := workload.Generate(prof)
	if err != nil {
		t.Fatal(err)
	}
	m := config.Default().WithMOP(config.DefaultMOP()).WithLayout(config.LayoutEntry)
	c, err := New(m, prog)
	if err != nil {
		t.Fatal(err)
	}
	ec, ok := c.eng.(*entryCore)
	if !ok {
		t.Fatal("LayoutEntry did not select the entry core")
	}

	check := func(where string, u *uop) {
		if u == nil {
			return
		}
		if !uopSliceInsideArr(u, u.members) {
			t.Fatalf("%s: uop seq %d members escaped membersArr (cap %d)", where, u.d.Seq, cap(u.members))
		}
		if !prodSliceInsideArr(u.headProds, u.headProdsArr[:]) {
			t.Fatalf("%s: uop seq %d headProds escaped headProdsArr (cap %d)", where, u.d.Seq, cap(u.headProds))
		}
		if !prodSliceInsideArr(u.tailProds, u.tailProdsArr[:]) {
			t.Fatalf("%s: uop seq %d tailProds escaped tailProdsArr (cap %d)", where, u.d.Seq, cap(u.tailProds))
		}
	}

	// Warm past the cold-start region so the ring has wrapped at least
	// once and every uop below is pool-recycled, then sweep the live set
	// periodically while stepping: the ROB holds in-flight uops (slices
	// actively filled by formation), the fetch ring recently retired ones.
	if _, err := c.Run(50_000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30_000; i++ {
		c.step()
		if err := ec.runErr(); err != nil {
			t.Fatal(err)
		}
		if i%512 != 0 {
			continue
		}
		for j := range ec.rob {
			check("rob", ec.rob[j])
		}
		for j := range ec.ring {
			check("ring", ec.ring[j])
		}
	}
}
