package core

import (
	"fmt"
	"strings"
)

// Stage identifies a pipeline event for tracing.
type Stage uint8

// Traced pipeline stages.
const (
	StageFetch Stage = iota
	StageInsert
	StageIssue
	StageCommit
)

// Tracer observes per-instruction pipeline events. Tracing is passive:
// it never affects timing.
type Tracer interface {
	// Event reports that the instruction with the given dynamic sequence
	// number reached a stage at a cycle. Issue may fire multiple times
	// for one instruction (scheduling replays); the last one stands.
	Event(seq int64, pc int, text string, stage Stage, cycle int64)
}

func (c *entryCore) trace(u *uop, stage Stage, cycle int64) {
	if c.tracer == nil {
		return
	}
	c.tracer.Event(u.d.Seq, u.d.PC, u.d.Inst.String(), stage, cycle)
}

// Timeline is a bounded Tracer that renders a per-instruction pipeline
// table: fetch, queue-insert, (final) issue and commit cycles, with MOP
// fusion visible as shared issue cycles.
type Timeline struct {
	Limit int // maximum number of instructions recorded

	rows map[int64]*timelineRow
	seqs []int64
}

type timelineRow struct {
	pc     int
	text   string
	cycles [4]int64
	issues int
}

// NewTimeline returns a Timeline recording the first limit instructions.
func NewTimeline(limit int) *Timeline {
	return &Timeline{Limit: limit, rows: make(map[int64]*timelineRow)}
}

// Event implements Tracer.
func (t *Timeline) Event(seq int64, pc int, text string, stage Stage, cycle int64) {
	r, ok := t.rows[seq]
	if !ok {
		if len(t.seqs) >= t.Limit {
			return
		}
		r = &timelineRow{pc: pc, text: text, cycles: [4]int64{-1, -1, -1, -1}}
		t.rows[seq] = r
		t.seqs = append(t.seqs, seq)
	}
	r.cycles[stage] = cycle
	if stage == StageIssue {
		r.issues++
	}
}

// String renders the recorded timeline.
func (t *Timeline) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%5s %5s  %-24s %7s %7s %7s %7s %s\n",
		"seq", "pc", "instruction", "fetch", "insert", "issue", "commit", "")
	for _, seq := range t.seqs {
		r := t.rows[seq]
		note := ""
		if r.issues > 1 {
			note = fmt.Sprintf("(replayed x%d)", r.issues-1)
		}
		fmt.Fprintf(&b, "%5d %5d  %-24s %7s %7s %7s %7s %s\n",
			seq, r.pc, r.text,
			cyc(r.cycles[StageFetch]), cyc(r.cycles[StageInsert]),
			cyc(r.cycles[StageIssue]), cyc(r.cycles[StageCommit]), note)
	}
	return b.String()
}

// IssueCycle returns the final issue cycle of the seq-th instruction (-1
// if never recorded); useful for timing assertions in tests.
func (t *Timeline) IssueCycle(seq int64) int64 {
	if r, ok := t.rows[seq]; ok {
		return r.cycles[StageIssue]
	}
	return -1
}

// CommitCycle returns the commit cycle of the seq-th instruction.
func (t *Timeline) CommitCycle(seq int64) int64 {
	if r, ok := t.rows[seq]; ok {
		return r.cycles[StageCommit]
	}
	return -1
}

func cyc(v int64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprint(v)
}
