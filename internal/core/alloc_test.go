package core

import (
	"testing"

	"macroop/internal/config"
	"macroop/internal/workload"
	"macroop/internal/workload/workloadtest"
)

// allocConfigs are the five scheduler configurations whose steady-state
// cycle loop must not allocate (ISSUE 4 acceptance criterion).
func allocConfigs() map[string]config.Machine {
	camMOP := config.DefaultMOP()
	camMOP.Wakeup = config.WakeupCAM2Src
	worMOP := config.DefaultMOP()
	worMOP.Wakeup = config.WakeupWiredOR
	return map[string]config.Machine{
		"baseline":     config.Default(),
		"two-cycle":    config.Default().WithSched(config.SchedTwoCycle),
		"mop-cam":      config.Default().WithMOP(camMOP),
		"mop-wired-or": config.Default().WithMOP(worMOP),
		"select-free":  config.Default().WithSched(config.SchedSelectFreeScoreboard),
	}
}

// TestStepAllocFree asserts that once the pools and scratch buffers are
// warm, driving the pipeline allocates nothing: testing.AllocsPerRun over
// blocks of step() calls must report 0 for every scheduler model.
func TestStepAllocFree(t *testing.T) {
	prof, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	prog := workloadtest.Generate(t, prof)
	layouts := map[string]config.CoreLayout{
		"soa":   config.LayoutSoA,
		"entry": config.LayoutEntry,
	}
	for name, m := range allocConfigs() {
		for lname, layout := range layouts {
			m := m.WithLayout(layout)
			t.Run(name+"/"+lname, func(t *testing.T) {
				c, err := New(m, prog)
				if err != nil {
					t.Fatal(err)
				}
				// Warm-up: grow every pool, ring, and scratch buffer to its
				// steady-state footprint (and fault in the functional model's
				// memory pages).
				if _, err := c.Run(30_000); err != nil {
					t.Fatal(err)
				}
				avg := testing.AllocsPerRun(50, func() {
					for i := 0; i < 200; i++ {
						c.step()
					}
				})
				if avg != 0 {
					t.Errorf("%s: %.2f allocs per 200-cycle block in steady state, want 0", name, avg)
				}
				if err := c.eng.runErr(); err != nil {
					t.Fatalf("stepping failed: %v", err)
				}
			})
		}
	}
}
