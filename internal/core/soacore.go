package core

import (
	"errors"
	"fmt"
	"strings"

	"macroop/internal/branch"
	"macroop/internal/cache"
	"macroop/internal/config"
	"macroop/internal/functional"
	"macroop/internal/isa"
	"macroop/internal/mop"
	"macroop/internal/program"
	"macroop/internal/sched"
	"macroop/internal/simerr"
)

// ringMask indexes the recent-fetch ring (ringSize is a power of two).
const ringMask = ringSize - 1

// soaCore is the structure-of-arrays implementation of the core pipeline
// (config.LayoutSoA, the default): in-flight instructions are uint32
// handles into a uopArena, and every pipeline structure (fetch ring,
// front-end delay line, ROB, pending-head list) is an index ring over
// it. It is cycle-exact with entryCore — the golden net and the layout
// differential test hold the two byte-identical.
type soaCore struct {
	cfg  config.Machine
	name string
	src  functional.Source
	pred *branch.Predictor
	mem  *cache.Hierarchy
	sch  sched.Engine
	det  *mop.Detector
	ptab *mop.PointerTable

	ar uopArena

	cycle int64

	// Fetch state.
	nextStreamIdx int64
	fetchDone     bool   // functional stream exhausted
	stallUntil    int64  // IL1-miss stall
	stallBranch   uopRef // mispredicted branch blocking fetch
	pendingDyn    functional.DynInst
	havePending   bool

	ring [ringSize]uopRef // fetched uops by streamIdx&ringMask

	// Front-end delay line: fetched uops awaiting queue insertion. The
	// ring is sized to the next power of two above FetchBufEntries so
	// indexing is a mask, not a division; occupancy is still bounded by
	// cfg.FetchBufEntries.
	feq     []uint32
	feqMask int
	feqHead int
	feqLen  int

	// Rename state: architectural register -> producing entry/op.
	rename [isa.NumRegs]prodRef

	// MOP formation state.
	pendingHeads []uopRef

	// ROB: power-of-two ring, occupancy bounded by cfg.ROBEntries.
	rob      []uint32
	robMask  int
	robHead  int
	robCount int

	// Per-call scratch, reused every cycle (see entryCore).
	specsBuf [2]sched.SrcSpec
	prodsBuf [2]prodRef
	groupBuf []uint32
	dynsBuf  []*functional.DynInst
	claimBuf []uint32

	tracer  Tracer
	hooks   Hooks
	clock   *stageClock
	hookErr error
	srcErr  error

	cnt struct {
		committed, fetched, opsIssued                                         int64
		il1Misses, dl1Misses, branchMispredicts                               int64
		notCandidate, candNotGrouped, valueGenGrouped, nonValueGenGrouped     int64
		indepGrouped, mopsFormed, depMOPsFormed, indepMOPsFormed, mopsDemoted int64
		formCtrlMiss, formCycleAborts, formMissedScope, filterDeletes         int64
	}

	res Result
}

// nextPow2 rounds n up to a power of two (n >= 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// newSoaCore builds the SoA-layout core. The caller (core.NewFromSource)
// has already validated cfg.
func newSoaCore(cfg config.Machine, name string, src functional.Source) (*soaCore, error) {
	var fu [isa.NumClasses]int
	for c := range fu {
		fu[c] = cfg.FUCount(c)
	}
	pred, err := branch.New(cfg.Branch)
	if err != nil {
		return nil, err
	}
	mem, err := cache.NewHierarchy(cfg.Mem)
	if err != nil {
		return nil, err
	}
	c := &soaCore{
		cfg:      cfg,
		name:     name,
		src:      src,
		pred:     pred,
		mem:      mem,
		groupBuf: make([]uint32, 0, cfg.Width),
		dynsBuf:  make([]*functional.DynInst, 0, cfg.Width),
		claimBuf: make([]uint32, 0, sched.MaxMOPOps),
	}
	robCap := nextPow2(cfg.ROBEntries)
	c.rob = make([]uint32, robCap)
	c.robMask = robCap - 1
	feqCap := nextPow2(cfg.FetchBufEntries)
	c.feq = make([]uint32, feqCap)
	c.feqMask = feqCap - 1
	// Worst-case live set: every fetch-ring slot plus ROB and fetch-
	// buffer residents that have been overwritten in the ring, plus a
	// stalled branch. Sizing the arena to the sum means the steady-state
	// loop never grows it.
	c.ar.grow(ringSize + cfg.ROBEntries + cfg.FetchBufEntries + 2)
	for i := range c.ring {
		c.ring[i] = nilRef
	}
	c.stallBranch = nilRef
	c.sch = sched.NewEngine(cfg.Kernel, sched.Config{
		Model:         cfg.Sched,
		Width:         cfg.Width,
		IQEntries:     cfg.IQEntries,
		FU:            fu,
		ReplayPenalty: cfg.ReplayPenalty,
		ReplayLimit:   cfg.ReplayStormLimit,
		Window:        cfg.ROBEntries,
	})
	if cfg.Sched == config.SchedMOP {
		c.ptab = mop.NewPointerTable()
		c.det = mop.NewDetector(cfg.MOP, c.ptab)
	}
	c.res.Benchmark = name
	return c, nil
}

// engine interface accessors (see pipeline.go).

func (c *soaCore) drained() bool {
	return c.fetchDone && c.robCount == 0 && c.feqLen == 0
}

func (c *soaCore) progress() (cycles, committed int64) {
	return c.cycle, c.cnt.committed
}

func (c *soaCore) runErr() error {
	if c.srcErr != nil {
		return c.srcErr
	}
	return c.hookErr
}

func (c *soaCore) scheduler() sched.Engine     { return c.sch }
func (c *soaCore) setTracer(t Tracer)          { c.tracer = t }
func (c *soaCore) setHooks(h Hooks)            { c.hooks = h }
func (c *soaCore) setStageClock(k *stageClock) { c.clock = k }

func (c *soaCore) errCtx() simerr.Context {
	return simerr.Context{
		Benchmark: c.name,
		Sched:     c.cfg.Sched.String(),
		Cycle:     c.cycle,
		Committed: c.cnt.committed,
	}
}

func (c *soaCore) fillCtx(ctx *simerr.Context) {
	if ctx.Benchmark == "" {
		ctx.Benchmark = c.name
	}
	if ctx.Sched == "" {
		ctx.Sched = c.cfg.Sched.String()
	}
	if ctx.Cycle == 0 {
		ctx.Cycle = c.cycle
	}
	if ctx.Committed == 0 {
		ctx.Committed = c.cnt.committed
	}
}

func (c *soaCore) stateDump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle %d: ROB %d/%d, IQ %d occupied, fetch buffer %d, fetchDone=%v\n",
		c.cycle, c.robCount, c.cfg.ROBEntries, c.sch.Occupied(), c.feqLen, c.fetchDone)
	st := c.sch.Stats()
	fmt.Fprintf(&b, "sched: %d grants, %d replays\n", st.Grants, st.Replays)
	if c.robCount > 0 {
		u := c.rob[c.robHead]
		fmt.Fprintf(&b, "ROB head: seq %d pc %d op %v, fetched cycle %d (age %d)",
			c.ar.streamIdx[u], c.ar.d[u].PC, c.ar.d[u].Inst.Op, c.ar.fetchCycle[u],
			c.cycle-c.ar.fetchCycle[u])
		if e := c.ar.entry[u]; e != nil {
			fmt.Fprintf(&b, ", entry %d final=%v", e.ID(), e.Final())
		}
		b.WriteByte('\n')
	}
	b.WriteString(c.sch.DumpActive(8))
	return b.String()
}

// step advances one clock cycle.
func (c *soaCore) step() {
	if c.clock != nil {
		c.stepTimed()
		return
	}
	c.commit()
	c.applyGrants(c.sch.Tick(c.cycle))
	c.insert()
	c.fetch()
	if c.hooks != nil {
		c.hookCycle()
	}
	c.cycle++
}

// stepTimed is step with per-stage wall-time accounting.
func (c *soaCore) stepTimed() {
	k := c.clock
	t0 := k.now()
	c.commit()
	t1 := k.now()
	grants := c.sch.Tick(c.cycle)
	t2 := k.now()
	c.applyGrants(grants)
	t3 := k.now()
	c.insert()
	t4 := k.now()
	c.fetch()
	t5 := k.now()
	if c.hooks != nil {
		c.hookCycle()
	}
	c.cycle++
	k.add(t0, t1, t2, t3, t4, t5)
}

// ringPut installs a freshly fetched uop in the recent-fetch ring,
// releasing the handle whose slot it overwrites (if retired — a live
// handle still sits in the ROB or fetch buffer and is released at its
// own retire; a fetch-stalling branch is released when the stall
// clears).
func (c *soaCore) ringPut(h uint32) {
	idx := int(c.ar.streamIdx[h]) & ringMask
	if old := c.ring[idx]; old.idx != nilHandle &&
		c.ar.flags[old.idx]&fCommitted != 0 && old != c.stallBranch {
		c.ar.release(old.idx)
	}
	c.ring[idx] = c.ar.ref(h)
}

// feqPush appends to the front-end delay line ring.
func (c *soaCore) feqPush(h uint32) {
	c.feq[(c.feqHead+c.feqLen)&c.feqMask] = h
	c.feqLen++
}

// feqFront returns the oldest queued uop (feqLen must be > 0).
func (c *soaCore) feqFront() uint32 { return c.feq[c.feqHead] }

// feqPop removes the oldest queued uop.
func (c *soaCore) feqPop() {
	c.feqHead = (c.feqHead + 1) & c.feqMask
	c.feqLen--
}

// schedOpInfo builds the scheduler's view of a uop from its memoized
// metadata word.
func (c *soaCore) schedOpInfo(h uint32) sched.OpInfo {
	m := c.ar.meta[h]
	lat := int(m >> metaLatShift & 0xff)
	isLoad := m&metaLoad != 0
	if isLoad {
		lat += c.loadAssumed() // agen + assumed DL1 hit
	}
	return sched.OpInfo{
		Seq:     c.ar.d[h].Seq,
		FU:      isa.Class(m >> metaFUShift & 0xff),
		Latency: lat,
		IsLoad:  isLoad,
	}
}

// grouped reports whether the uop ended up inside a MOP.
func (c *soaCore) grouped(h uint32) bool {
	e := c.ar.entry[h]
	return e != nil && e.IsMOP()
}

// ---------------------------------------------------------------------
// Issue (scheduling) stage.

// applyGrants applies the per-grant consequences of one scheduler tick.
func (c *soaCore) applyGrants(grants []sched.Grant) {
	ar := &c.ar
	for _, g := range grants {
		// UserIdx holds the entry's packed head-uop handle (an integer,
		// so storing it never allocates); member slot 0 is the head
		// itself, later slots the attached chain members.
		v := g.Entry.UserIdx
		if v == 0 {
			continue
		}
		h, gen := unpackUser(v)
		if ar.gen[h] != gen || g.OpIdx >= int(ar.nMembers[h]) {
			continue
		}
		uo := ar.members[int(h)*memberStride+g.OpIdx]
		c.cnt.opsIssued++
		if c.tracer != nil {
			c.trace(uo, StageIssue, g.Cycle)
		}
		if c.hooks != nil {
			c.hookIssue(uo, g.Cycle)
		}
		if m := ar.meta[uo]; m&metaLoad != 0 {
			// Probe the data hierarchy on the first grant only (issue
			// order is deterministic); if the load replays, its data
			// still arrives when the original access completes.
			agen := int64(m >> metaLatShift & 0xff)
			if ar.flags[uo]&fMemProbed == 0 {
				if !c.sch.OperandsValid(g.Entry) {
					// Invalidly issued: no cache access happens; this
					// grant will be rescinded and the load reissued.
					continue
				}
				lat, hit := c.mem.Data(ar.d[uo].MemAddr)
				if !hit {
					c.cnt.dl1Misses++
				}
				ar.flags[uo] |= fMemProbed
				ar.memFillAt[uo] = g.Cycle + agen + int64(lat)
			}
			actual := maxI64(g.Cycle+agen+int64(c.loadAssumed()), ar.memFillAt[uo])
			discover := g.Cycle + int64(c.cfg.ExecOffset) + 1
			c.sch.SetLoadResult(g.Entry, g.OpIdx, actual, discover)
		}
	}
}

// ---------------------------------------------------------------------
// Fetch stage.

func (c *soaCore) fetch() {
	if c.fetchDone {
		return
	}
	ar := &c.ar
	// Mispredicted branch: fetch resumes after it finally resolves. A
	// committed branch's entry is already released, so retire snapshots
	// the resolve cycle into branchResolveAt for us. The handle stays
	// allocated for as long as it is the active stall (ringPut and
	// retire both exclude it).
	if b := c.stallBranch; b.idx != nilHandle {
		h := b.idx
		var resolve int64
		switch {
		case ar.flags[h]&fCommitted != 0:
			resolve = ar.branchResolveAt[h]
		case ar.entry[h] != nil && ar.entry[h].Final():
			// (chain members execute opIdx cycles after the MOP issues)
			resolve = ar.entry[h].Grant() + int64(c.cfg.ExecOffset) + int64(ar.opIdx[h])
		default:
			return
		}
		resume := maxI64(resolve+1, ar.fetchCycle[h]+int64(c.cfg.MinBranchPenalty))
		if c.cycle < resume {
			return
		}
		c.stallBranch = nilRef
		// The branch may have been overwritten in the ring while it was
		// the active stall (ringPut skipped the release); if it is
		// retired and gone from the ring, nothing references it anymore.
		if ar.flags[h]&fCommitted != 0 && c.ring[int(ar.streamIdx[h])&ringMask] != b {
			ar.release(h)
		}
	}
	if c.cycle < c.stallUntil {
		return
	}

	var curLine uint64
	haveLine := false
	for n := 0; n < c.cfg.Width && c.feqLen < c.cfg.FetchBufEntries; n++ {
		d := c.peekDyn()
		if d == nil {
			c.fetchDone = true
			return
		}
		// Instruction cache: one line access per group; crossing into a
		// new line probes again, and a miss cuts the group.
		line := program.ByteAddr(d.PC) / uint64(c.cfg.Mem.IL1.LineBytes)
		if !haveLine || line != curLine {
			lat, hit := c.mem.Fetch(program.ByteAddr(d.PC))
			if !hit {
				c.cnt.il1Misses++
				c.stallUntil = c.cycle + int64(lat-c.cfg.Mem.IL1.Latency)
				if n == 0 {
					return // group starts next cycle, after the fill
				}
				break
			}
			curLine, haveLine = line, true
		}

		u := c.takeDyn()
		ar.fetchCycle[u] = c.cycle
		if c.tracer != nil {
			c.trace(u, StageFetch, c.cycle)
		}
		ar.insertAt[u] = c.cycle + int64(c.cfg.FrontLatency)
		if c.cfg.Sched == config.SchedMOP {
			ar.insertAt[u] += int64(c.cfg.MOP.ExtraFormationStages)
		}
		c.ringPut(u)
		c.feqPush(u)
		c.cnt.fetched++

		if ar.meta[u]&metaBranch != 0 {
			if c.predictBranch(u) {
				break // taken (or mispredicted): group ends
			}
		}
	}
}

// predictBranch runs fetch-time prediction for u, updates predictor state,
// and reports whether the fetch group must end (redirect or mispredict).
func (c *soaCore) predictBranch(u uint32) bool {
	d := &c.ar.d[u]
	op := d.Inst.Op
	switch {
	case op.IsCondBranch():
		pred := c.pred.PredictDirection(d.PC)
		c.pred.UpdateDirection(d.PC, d.Taken)
		if pred != d.Taken {
			c.ar.flags[u] |= fMispredicted
			c.cnt.branchMispredicts++
			c.stallBranch = c.ar.ref(u)
			return true
		}
		if d.Taken {
			c.pred.UpdateTarget(d.PC, d.NextPC)
		}
		return d.Taken
	case op.IsDirectJump():
		// Direct targets are available from predecode; JAL pushes the RAS.
		if op == isa.JAL {
			c.pred.PushRAS(d.PC + 1)
		}
		c.pred.UpdateTarget(d.PC, d.NextPC)
		return true
	case op.IsIndirect():
		target, ok := c.pred.PopRAS()
		c.pred.RecordTargetOutcome(true, target, d.NextPC)
		if !ok || target != d.NextPC {
			c.ar.flags[u] |= fMispredicted
			c.cnt.branchMispredicts++
			c.stallBranch = c.ar.ref(u)
		}
		return true
	}
	return false
}

// peekDyn returns the next fused dynamic instruction without consuming
// it (see entryCore.peekDyn).
func (c *soaCore) peekDyn() *functional.DynInst {
	if c.havePending {
		return &c.pendingDyn
	}
	if err := c.src.Step(&c.pendingDyn); err != nil {
		if errors.Is(err, functional.ErrHalted) {
			return nil
		}
		if c.srcErr == nil {
			e := simerr.New(simerr.KindInternal, c.errCtx(),
				"instruction source fault at stream index %d: %v", c.nextStreamIdx, err)
			e.Err = err
			c.srcErr = e
		}
		return nil
	}
	c.havePending = true
	return &c.pendingDyn
}

// takeDyn consumes the next fused dynamic instruction as a uop handle,
// merging a following STD into its STA and memoizing the hot predicates
// into the metadata word.
func (c *soaCore) takeDyn() uint32 {
	d := c.peekDyn()
	c.havePending = false
	ar := &c.ar
	u := ar.alloc()
	ar.d[u] = *d
	ar.streamIdx[u] = c.nextStreamIdx
	ar.dataReg[u] = isa.NoReg
	ar.meta[u] = packMeta(d.Inst)
	c.nextStreamIdx++
	if ar.d[u].Inst.Op == isa.STA {
		// peekDyn reuses the pending buffer, so consult the arena copy
		// (already made) rather than d from here on.
		std := c.peekDyn()
		if std == nil || std.Inst.Op != isa.STD {
			if c.srcErr == nil {
				c.srcErr = simerr.New(simerr.KindInternal, c.errCtx(),
					"STA at pc %d (stream index %d) not followed by STD",
					ar.d[u].PC, ar.streamIdx[u])
			}
			return u
		}
		ar.dataReg[u] = std.Inst.Src1
		c.havePending = false
	}
	return u
}

// ---------------------------------------------------------------------
// Queue-insert stage (rename + MOP formation + issue queue insertion).

func (c *soaCore) insert() {
	inserted := 0
	group := c.groupBuf[:0]
	for c.feqLen > 0 && inserted < c.cfg.Width {
		u := c.feqFront()
		if c.ar.insertAt[u] > c.cycle {
			break
		}
		if c.robCount >= c.cfg.ROBEntries {
			break
		}
		// A claimed tail shares its head's entry; everything else needs a
		// fresh one.
		needsEntry := c.ar.claimedBy[u].idx == nilHandle
		if needsEntry && !c.sch.HasSpace(1) {
			break
		}
		c.feqPop()
		c.renameAndInsert(u)
		c.robPush(u)
		group = append(group, u)
		inserted++
	}
	if len(group) > 0 {
		c.afterInsertGroup(group)
	}
	c.groupBuf = group[:0]
}

// robPush appends to the ROB ring.
func (c *soaCore) robPush(u uint32) {
	c.rob[(c.robHead+c.robCount)&c.robMask] = u
	c.robCount++
	c.ar.flags[u] |= fInserted
}

// srcSpecs builds the scheduler source list for u's register operands,
// excluding exclude (the intra-MOP producer) when attaching a tail.
// The returned slices are scratch valid until the next srcSpecs call.
func (c *soaCore) srcSpecs(u uint32, exclude *sched.Entry) ([]sched.SrcSpec, []prodRef) {
	specs := c.specsBuf[:0]
	prods := c.prodsBuf[:0]
	inst := &c.ar.d[u].Inst
	for _, r := range [2]isa.Reg{inst.Src1, inst.Src2} {
		if r == isa.NoReg || r == isa.R0 {
			continue
		}
		p := c.rename[r]
		if p.entry == exclude && exclude != nil {
			continue // satisfied inside the MOP; no tag broadcast needed
		}
		specs = append(specs, sched.SrcSpec{Prod: p.entry, ProdOp: p.opIdx})
		prods = append(prods, p)
	}
	return specs, prods
}

func (c *soaCore) loadAssumed() int { return c.mem.LoadAssumedLatency() }

func (c *soaCore) finishStats() *Result {
	c.res.Cycles = c.cycle
	if c.cycle > 0 {
		c.res.IPC = float64(c.cnt.committed) / float64(c.cycle)
	}
	c.res.Committed = c.cnt.committed
	c.res.Fetched = c.cnt.fetched
	c.res.OpsIssued = c.cnt.opsIssued
	c.res.IL1Misses = c.cnt.il1Misses
	c.res.DL1Misses = c.cnt.dl1Misses
	c.res.BranchMispredicts = c.cnt.branchMispredicts
	c.res.NotCandidate = c.cnt.notCandidate
	c.res.CandNotGrouped = c.cnt.candNotGrouped
	c.res.ValueGenGrouped = c.cnt.valueGenGrouped
	c.res.NonValueGenGrouped = c.cnt.nonValueGenGrouped
	c.res.IndepGrouped = c.cnt.indepGrouped
	c.res.MOPsFormed = c.cnt.mopsFormed
	c.res.DepMOPsFormed = c.cnt.depMOPsFormed
	c.res.IndepMOPsFormed = c.cnt.indepMOPsFormed
	c.res.MOPsDemoted = c.cnt.mopsDemoted
	c.res.FormCtrlMiss = c.cnt.formCtrlMiss
	c.res.FormCycleAborts = c.cnt.formCycleAborts
	c.res.FormMissedScope = c.cnt.formMissedScope
	c.res.FilterDeletes = c.cnt.filterDeletes
	c.res.SchedStats = c.sch.Stats()
	if c.det != nil {
		c.res.DetectStats = c.det.Stats()
	}
	condSeen, condHit, _, _, rasSeen, rasHit := c.pred.Stats()
	c.res.CondBranches, c.res.CondCorrect = condSeen, condHit
	c.res.Returns, c.res.ReturnsCorrect = rasSeen, rasHit
	c.res.IL1MissRate = c.mem.IL1().MissRate()
	c.res.DL1MissRate = c.mem.DL1().MissRate()
	c.res.L2MissRate = c.mem.L2().MissRate()
	if c.ptab != nil {
		c.res.PointerInstalls = c.ptab.Installs()
		c.res.PointerDeletes = c.ptab.Deletes()
	}
	return &c.res
}

// ---------------------------------------------------------------------
// Commit stage.

func (c *soaCore) commit() {
	for n := 0; n < c.cfg.Width && c.robCount > 0; n++ {
		u := c.rob[c.robHead]
		if !c.committable(u) {
			return
		}
		c.retire(u)
		c.robHead = (c.robHead + 1) & c.robMask
		c.robCount--
	}
}

// committable reports whether the ROB head has fully completed. The
// commit-ready cycle is immutable once the entry (and a store's data
// producer) are final — actual-ready times cannot change after finality
// — so it is memoized and a blocked ROB head re-checks with one compare.
func (c *soaCore) committable(u uint32) bool {
	ar := &c.ar
	if ca := ar.commitAt[u]; ca != 0 {
		return c.cycle >= ca
	}
	e := ar.entry[u]
	if e == nil || !e.Final() {
		return false
	}
	if ar.meta[u]&metaStore != 0 && ar.dataProd[u].entry != nil && !ar.dataProd[u].entry.Final() {
		return false
	}
	ca := c.commitReadyAt(u)
	ar.commitAt[u] = ca
	return c.cycle >= ca
}

// commitReadyAt returns the earliest cycle u may commit (see
// entryCore.commitReadyAt).
func (c *soaCore) commitReadyAt(u uint32) int64 {
	ar := &c.ar
	done := ar.entry[u].ActualReady(int(ar.opIdx[u])) + int64(c.cfg.ExecOffset)
	if ar.meta[u]&metaStore != 0 && ar.dataProd[u].entry != nil {
		p := ar.dataProd[u]
		done = maxI64(done, p.entry.ActualReady(p.opIdx)+int64(c.cfg.ExecOffset))
	}
	return done
}

// retire commits one instruction: stores write the data cache, MOP
// statistics and the last-arriving filter run here. The handle is
// released once nothing can still read it — immediately, unless it is
// still fetch-ring resident (released when its slot is overwritten) or
// the active fetch stall (released when the stall clears).
func (c *soaCore) retire(u uint32) {
	ar := &c.ar
	ar.flags[u] |= fCommitted
	if c.tracer != nil {
		c.trace(u, StageCommit, c.cycle)
	}
	if c.hooks != nil {
		c.hookCommit(u)
	}
	c.cnt.committed++
	if ar.meta[u]&metaStore != 0 {
		// Stores write memory at commit (Section 2.1); the tag fill keeps
		// the data cache warm for later loads.
		c.mem.DL1().Touch(ar.d[u].MemAddr)
	}
	c.accountMOP(u)
	if ar.flags[u]&fMOPHead != 0 && c.cfg.Sched == config.SchedMOP && c.cfg.MOP.LastArrivingFilter {
		c.lastArrivingFilter(u)
	}
	e := ar.entry[u]
	if ar.flags[u]&fMispredicted != 0 {
		// Snapshot the resolve cycle before the entry reference is
		// dropped: the fetch stage may still be stalled on this branch
		// after its entry has been released and recycled.
		ar.branchResolveAt[u] = e.Grant() + int64(c.cfg.ExecOffset) + int64(ar.opIdx[u])
	}
	// Drop every entry reference this uop retained at rename time, in
	// reverse order of acquisition; the scheduler recycles an entry onto
	// its free list when the last reference goes.
	hb := int(u) * headProdStride
	for i := 0; i < int(ar.nHeadProds[u]); i++ {
		if p := ar.headProds[hb+i]; p.entry != nil {
			c.sch.Release(p.entry)
		}
	}
	tb := int(u) * tailProdStride
	for i := 0; i < int(ar.nTailProds[u]); i++ {
		if p := ar.tailProds[tb+i]; p.entry != nil {
			c.sch.Release(p.entry)
		}
	}
	if ar.dataProd[u].entry != nil {
		c.sch.Release(ar.dataProd[u].entry)
	}
	ar.nHeadProds[u] = 0
	ar.nTailProds[u] = 0
	ar.dataProd[u] = prodRef{}
	ar.claimedBy[u] = nilRef
	if int(ar.opIdx[u]) == e.NumOps()-1 {
		// Last member of the entry to commit: no more grants can arrive,
		// so the payload back-link can go too.
		e.UserIdx = 0
	}
	c.sch.Release(e) // the member op's own reference
	ar.entry[u] = nil
	r := ar.ref(u)
	if c.ring[int(ar.streamIdx[u])&ringMask] != r && r != c.stallBranch {
		ar.release(u)
	}
}
