package core

import (
	"macroop/internal/functional"
	"macroop/internal/isa"
)

// IssueEvent reports one scheduler grant as seen by the core: the op that
// was selected, which entry it lives in, and the grant cycle. A single op
// may produce several issue events (speculative-scheduling replays); the
// last one before commit is the one that stands.
type IssueEvent struct {
	Cycle   int64
	Seq     int64 // dynamic sequence number of the issued instruction
	EntryID int64
	OpIdx   int
}

// CommitEvent reports one instruction retiring from the ROB, carrying
// everything an external oracle needs to cross-check the architectural
// work and the pipeline invariants around it.
type CommitEvent struct {
	Cycle int64
	// Dyn is the dynamic instruction being committed (a fused STA+STD
	// store commits once, as the STA, with DataReg naming the merged
	// store-data register).
	Dyn     *functional.DynInst
	DataReg isa.Reg

	// Issue queue entry identity, for MOP atomicity checks.
	EntryID int64
	OpIdx   int
	NumOps  int
	IsMOP   bool

	// EntryFinal is whether the scheduler considers the entry settled (no
	// replays outstanding); ReadyAt is the earliest cycle the result was
	// architecturally available, so Cycle >= ReadyAt must hold.
	EntryFinal bool
	ReadyAt    int64
}

// Hooks observes pipeline events for verification. All methods may veto
// by returning an error, which aborts the simulation: Core.Run returns
// the error verbatim. Attaching hooks never changes timing; a nil hook
// set costs one pointer test per event site.
type Hooks interface {
	// OnIssue fires for every grant the core acts on.
	OnIssue(ev *IssueEvent) error
	// OnCommit fires for every instruction retiring, in program order.
	OnCommit(ev *CommitEvent) error
	// OnMOPFormed fires when a macro-op closes with its member sequence
	// numbers in op order (index == OpIdx at commit). Demoted heads that
	// kept at least one attached member also fire, with the smaller
	// member set they ended up with.
	OnMOPFormed(entryID int64, seqs []int64) error
	// OnCycle fires once at the end of every simulated cycle with the
	// current issue queue occupancy.
	OnCycle(cycle int64, iqOccupied int) error
}

// hookIssue forwards a grant to the hooks, capturing the first error.
func (c *entryCore) hookIssue(u *uop, cycle int64) {
	if c.hooks == nil || c.hookErr != nil {
		return
	}
	c.hookErr = c.hooks.OnIssue(&IssueEvent{
		Cycle:   cycle,
		Seq:     u.d.Seq,
		EntryID: u.entry.ID(),
		OpIdx:   u.opIdx,
	})
}

// hookCommit forwards a retirement to the hooks. It must run before
// retire severs the uop's producer references, while commitReadyAt can
// still see the store-data producer.
func (c *entryCore) hookCommit(u *uop) {
	if c.hooks == nil || c.hookErr != nil {
		return
	}
	c.hookErr = c.hooks.OnCommit(&CommitEvent{
		Cycle:      c.cycle,
		Dyn:        &u.d,
		DataReg:    u.dataReg,
		EntryID:    u.entry.ID(),
		OpIdx:      u.opIdx,
		NumOps:     u.entry.NumOps(),
		IsMOP:      u.entry.IsMOP(),
		EntryFinal: u.entry.Final(),
		ReadyAt:    c.commitReadyAt(u),
	})
}

// hookMOPFormed reports a closed (or demoted-but-nonempty) macro-op.
func (c *entryCore) hookMOPFormed(h *uop) {
	if c.hooks == nil || c.hookErr != nil {
		return
	}
	seqs := make([]int64, len(h.members))
	for i, m := range h.members {
		seqs[i] = m.d.Seq
	}
	c.hookErr = c.hooks.OnMOPFormed(h.entry.ID(), seqs)
}

func (c *entryCore) hookCycle() {
	if c.hooks == nil || c.hookErr != nil {
		return
	}
	c.hookErr = c.hooks.OnCycle(c.cycle, c.sch.Occupied())
}
