package core

import (
	"strings"
	"testing"

	"macroop/internal/config"
	"macroop/internal/isa"
	"macroop/internal/program"
)

// traceRun simulates the program with a timeline attached.
func traceRun(t *testing.T, m config.Machine, p *program.Program, n int64, limit int) *Timeline {
	t.Helper()
	c, err := New(m, p)
	if err != nil {
		t.Fatal(err)
	}
	tl := NewTimeline(limit)
	c.SetTracer(tl)
	if _, err := c.Run(n); err != nil {
		t.Fatal(err)
	}
	return tl
}

func TestTimelineRecordsAllStages(t *testing.T) {
	b := program.NewBuilder("t")
	b.MovI(1, 1)
	b.OpImm(isa.ADDI, 2, 1, 1)
	b.Halt()
	tl := traceRun(t, config.Default(), b.MustBuild(), 100, 10)
	for seq := int64(0); seq < 2; seq++ {
		if tl.IssueCycle(seq) < 0 || tl.CommitCycle(seq) < 0 {
			t.Fatalf("seq %d missing stages: %s", seq, tl)
		}
	}
	out := tl.String()
	for _, want := range []string{"movi", "addi", "fetch", "commit"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}

// TestTimelineFigure5EndToEnd drives the paper's Figure 5 example through
// the WHOLE pipeline (not just the scheduler) and checks the relative
// issue timing under all three schedulers: the dependent chain add->sub->
// bez issues at +1 per hop under base, +2 under 2-cycle, and fused pairs
// restore +1 spacing under macro-op scheduling.
func TestTimelineFigure5EndToEnd(t *testing.T) {
	build := func() *program.Program {
		b := program.NewBuilder("fig5")
		b.MovI(7, 1<<40)
		b.MovI(9, 0x4000)
		b.Label("top")
		b.OpImm(isa.ADDI, 1, 1, 1)          // 1: add r1
		b.Load(4, 9, 0)                     // 2: lw r4, 0(r9)
		b.OpImm(isa.SUB, 5, 1, 1)           // 3: sub r5 <- r1
		b.Branch(isa.BNE, 5, isa.R0, "top") // 4: bez-like, never taken (r5=0... r1-1? SUB imm form is ADDI-only; use Op3)
		b.OpImm(isa.ADDI, 7, 7, -1)
		b.Branch(isa.BNE, 7, isa.R0, "top")
		b.Halt()
		return b.MustBuild()
	}
	gap := func(m config.Machine) (addToSub int64) {
		tl := traceRun(t, m, build(), 4000, 4000)
		// Find a steady-state iteration: instructions at seq 4k+2 (addi r1)
		// and 4k+4 (sub r5) — compute typical issue distance.
		var best int64 = -1
		for seq := int64(200); seq < 3000; seq++ {
			// locate the addi r1 by its +2 relationship with the sub
			a, s := tl.IssueCycle(seq), tl.IssueCycle(seq+2)
			if a > 0 && s > a {
				d := s - a
				if best == -1 || d < best {
					best = d
				}
			}
		}
		return best
	}
	base := gap(config.Unrestricted().WithSched(config.SchedBase))
	two := gap(config.Unrestricted().WithSched(config.SchedTwoCycle))
	mc := config.DefaultMOP()
	mc.ExtraFormationStages = 0
	mop := gap(config.Unrestricted().WithMOP(mc))
	if base != 1 {
		t.Fatalf("base dependent spacing %d, want 1", base)
	}
	if two != 2 {
		t.Fatalf("2-cycle dependent spacing %d, want 2", two)
	}
	if mop != 1 {
		t.Fatalf("macro-op fused spacing %d, want 1 (sequenced back-to-back)", mop)
	}
}

func TestTimelineLimitRespected(t *testing.T) {
	b := program.NewBuilder("t")
	b.MovI(7, 100)
	b.Label("l")
	b.OpImm(isa.ADDI, 7, 7, -1)
	b.Branch(isa.BNE, 7, isa.R0, "l")
	b.Halt()
	tl := traceRun(t, config.Default(), b.MustBuild(), 10000, 5)
	if got := strings.Count(tl.String(), "\n"); got > 7 {
		t.Fatalf("timeline rows exceed limit: %d lines", got)
	}
	if tl.IssueCycle(99) != -1 {
		t.Fatal("recorded past the limit")
	}
}

func TestTimelineShowsReplays(t *testing.T) {
	// A load that misses with a dependent in its shadow: the dependent's
	// row must show a replay.
	b := program.NewBuilder("t")
	b.MovI(7, 1<<40)
	b.MovI(4, 16*1024*1024-8)
	b.MovI(6, 4096+520)
	b.Label("top")
	b.Load(8, 5, 0)
	b.OpImm(isa.ADDI, 9, 8, 1)
	b.Op3(isa.ADD, 5, 5, 6)
	b.Op3(isa.AND, 5, 5, 4)
	b.OpImm(isa.ADDI, 7, 7, -1)
	b.Branch(isa.BNE, 7, isa.R0, "top")
	b.Halt()
	tl := traceRun(t, config.Default(), b.MustBuild(), 3000, 3000)
	if !strings.Contains(tl.String(), "replayed") {
		t.Fatal("no replays visible in the timeline")
	}
}
